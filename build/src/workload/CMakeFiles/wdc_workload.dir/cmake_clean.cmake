file(REMOVE_RECURSE
  "CMakeFiles/wdc_workload.dir/database.cpp.o"
  "CMakeFiles/wdc_workload.dir/database.cpp.o.d"
  "CMakeFiles/wdc_workload.dir/query_gen.cpp.o"
  "CMakeFiles/wdc_workload.dir/query_gen.cpp.o.d"
  "CMakeFiles/wdc_workload.dir/sleep_model.cpp.o"
  "CMakeFiles/wdc_workload.dir/sleep_model.cpp.o.d"
  "CMakeFiles/wdc_workload.dir/traffic_gen.cpp.o"
  "CMakeFiles/wdc_workload.dir/traffic_gen.cpp.o.d"
  "libwdc_workload.a"
  "libwdc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
