file(REMOVE_RECURSE
  "libwdc_workload.a"
)
