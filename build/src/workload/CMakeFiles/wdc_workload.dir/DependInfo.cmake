
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/database.cpp" "src/workload/CMakeFiles/wdc_workload.dir/database.cpp.o" "gcc" "src/workload/CMakeFiles/wdc_workload.dir/database.cpp.o.d"
  "/root/repo/src/workload/query_gen.cpp" "src/workload/CMakeFiles/wdc_workload.dir/query_gen.cpp.o" "gcc" "src/workload/CMakeFiles/wdc_workload.dir/query_gen.cpp.o.d"
  "/root/repo/src/workload/sleep_model.cpp" "src/workload/CMakeFiles/wdc_workload.dir/sleep_model.cpp.o" "gcc" "src/workload/CMakeFiles/wdc_workload.dir/sleep_model.cpp.o.d"
  "/root/repo/src/workload/traffic_gen.cpp" "src/workload/CMakeFiles/wdc_workload.dir/traffic_gen.cpp.o" "gcc" "src/workload/CMakeFiles/wdc_workload.dir/traffic_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wdc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wdc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
