# Empty compiler generated dependencies file for wdc_workload.
# This may be replaced when dependencies are built.
