# Empty compiler generated dependencies file for wdc_stats.
# This may be replaced when dependencies are built.
