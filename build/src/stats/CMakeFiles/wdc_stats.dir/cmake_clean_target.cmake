file(REMOVE_RECURSE
  "libwdc_stats.a"
)
