file(REMOVE_RECURSE
  "CMakeFiles/wdc_stats.dir/ci.cpp.o"
  "CMakeFiles/wdc_stats.dir/ci.cpp.o.d"
  "CMakeFiles/wdc_stats.dir/histogram.cpp.o"
  "CMakeFiles/wdc_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/wdc_stats.dir/summary.cpp.o"
  "CMakeFiles/wdc_stats.dir/summary.cpp.o.d"
  "CMakeFiles/wdc_stats.dir/table.cpp.o"
  "CMakeFiles/wdc_stats.dir/table.cpp.o.d"
  "CMakeFiles/wdc_stats.dir/time_weighted.cpp.o"
  "CMakeFiles/wdc_stats.dir/time_weighted.cpp.o.d"
  "libwdc_stats.a"
  "libwdc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
