
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ci.cpp" "src/stats/CMakeFiles/wdc_stats.dir/ci.cpp.o" "gcc" "src/stats/CMakeFiles/wdc_stats.dir/ci.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/wdc_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/wdc_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/wdc_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/wdc_stats.dir/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/stats/CMakeFiles/wdc_stats.dir/table.cpp.o" "gcc" "src/stats/CMakeFiles/wdc_stats.dir/table.cpp.o.d"
  "/root/repo/src/stats/time_weighted.cpp" "src/stats/CMakeFiles/wdc_stats.dir/time_weighted.cpp.o" "gcc" "src/stats/CMakeFiles/wdc_stats.dir/time_weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
