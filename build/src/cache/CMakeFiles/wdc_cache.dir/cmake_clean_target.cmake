file(REMOVE_RECURSE
  "libwdc_cache.a"
)
