# Empty dependencies file for wdc_cache.
# This may be replaced when dependencies are built.
