file(REMOVE_RECURSE
  "CMakeFiles/wdc_cache.dir/lru_cache.cpp.o"
  "CMakeFiles/wdc_cache.dir/lru_cache.cpp.o.d"
  "libwdc_cache.a"
  "libwdc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
