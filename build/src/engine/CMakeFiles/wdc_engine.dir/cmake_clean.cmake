file(REMOVE_RECURSE
  "CMakeFiles/wdc_engine.dir/metrics.cpp.o"
  "CMakeFiles/wdc_engine.dir/metrics.cpp.o.d"
  "CMakeFiles/wdc_engine.dir/replication.cpp.o"
  "CMakeFiles/wdc_engine.dir/replication.cpp.o.d"
  "CMakeFiles/wdc_engine.dir/scenario.cpp.o"
  "CMakeFiles/wdc_engine.dir/scenario.cpp.o.d"
  "CMakeFiles/wdc_engine.dir/simulation.cpp.o"
  "CMakeFiles/wdc_engine.dir/simulation.cpp.o.d"
  "libwdc_engine.a"
  "libwdc_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
