file(REMOVE_RECURSE
  "libwdc_engine.a"
)
