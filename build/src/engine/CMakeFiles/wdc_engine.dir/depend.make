# Empty dependencies file for wdc_engine.
# This may be replaced when dependencies are built.
