file(REMOVE_RECURSE
  "CMakeFiles/wdc_phy.dir/amc.cpp.o"
  "CMakeFiles/wdc_phy.dir/amc.cpp.o.d"
  "CMakeFiles/wdc_phy.dir/mcs.cpp.o"
  "CMakeFiles/wdc_phy.dir/mcs.cpp.o.d"
  "libwdc_phy.a"
  "libwdc_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdc_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
