# Empty dependencies file for wdc_phy.
# This may be replaced when dependencies are built.
