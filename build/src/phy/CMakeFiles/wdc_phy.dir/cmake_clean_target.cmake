file(REMOVE_RECURSE
  "libwdc_phy.a"
)
