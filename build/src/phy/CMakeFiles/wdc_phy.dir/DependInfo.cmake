
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/amc.cpp" "src/phy/CMakeFiles/wdc_phy.dir/amc.cpp.o" "gcc" "src/phy/CMakeFiles/wdc_phy.dir/amc.cpp.o.d"
  "/root/repo/src/phy/mcs.cpp" "src/phy/CMakeFiles/wdc_phy.dir/mcs.cpp.o" "gcc" "src/phy/CMakeFiles/wdc_phy.dir/mcs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wdc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wdc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wdc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
