# Empty compiler generated dependencies file for wdc_analysis.
# This may be replaced when dependencies are built.
