file(REMOVE_RECURSE
  "libwdc_analysis.a"
)
