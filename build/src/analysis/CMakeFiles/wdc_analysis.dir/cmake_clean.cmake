file(REMOVE_RECURSE
  "CMakeFiles/wdc_analysis.dir/fading_theory.cpp.o"
  "CMakeFiles/wdc_analysis.dir/fading_theory.cpp.o.d"
  "CMakeFiles/wdc_analysis.dir/ir_theory.cpp.o"
  "CMakeFiles/wdc_analysis.dir/ir_theory.cpp.o.d"
  "libwdc_analysis.a"
  "libwdc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
