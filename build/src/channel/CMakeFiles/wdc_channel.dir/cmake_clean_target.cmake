file(REMOVE_RECURSE
  "libwdc_channel.a"
)
