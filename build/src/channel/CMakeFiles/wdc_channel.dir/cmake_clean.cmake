file(REMOVE_RECURSE
  "CMakeFiles/wdc_channel.dir/fsmc.cpp.o"
  "CMakeFiles/wdc_channel.dir/fsmc.cpp.o.d"
  "CMakeFiles/wdc_channel.dir/gilbert_elliott.cpp.o"
  "CMakeFiles/wdc_channel.dir/gilbert_elliott.cpp.o.d"
  "CMakeFiles/wdc_channel.dir/jakes.cpp.o"
  "CMakeFiles/wdc_channel.dir/jakes.cpp.o.d"
  "CMakeFiles/wdc_channel.dir/pathloss.cpp.o"
  "CMakeFiles/wdc_channel.dir/pathloss.cpp.o.d"
  "CMakeFiles/wdc_channel.dir/shadowing.cpp.o"
  "CMakeFiles/wdc_channel.dir/shadowing.cpp.o.d"
  "CMakeFiles/wdc_channel.dir/snr_process.cpp.o"
  "CMakeFiles/wdc_channel.dir/snr_process.cpp.o.d"
  "libwdc_channel.a"
  "libwdc_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdc_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
