# Empty compiler generated dependencies file for wdc_channel.
# This may be replaced when dependencies are built.
