
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/fsmc.cpp" "src/channel/CMakeFiles/wdc_channel.dir/fsmc.cpp.o" "gcc" "src/channel/CMakeFiles/wdc_channel.dir/fsmc.cpp.o.d"
  "/root/repo/src/channel/gilbert_elliott.cpp" "src/channel/CMakeFiles/wdc_channel.dir/gilbert_elliott.cpp.o" "gcc" "src/channel/CMakeFiles/wdc_channel.dir/gilbert_elliott.cpp.o.d"
  "/root/repo/src/channel/jakes.cpp" "src/channel/CMakeFiles/wdc_channel.dir/jakes.cpp.o" "gcc" "src/channel/CMakeFiles/wdc_channel.dir/jakes.cpp.o.d"
  "/root/repo/src/channel/pathloss.cpp" "src/channel/CMakeFiles/wdc_channel.dir/pathloss.cpp.o" "gcc" "src/channel/CMakeFiles/wdc_channel.dir/pathloss.cpp.o.d"
  "/root/repo/src/channel/shadowing.cpp" "src/channel/CMakeFiles/wdc_channel.dir/shadowing.cpp.o" "gcc" "src/channel/CMakeFiles/wdc_channel.dir/shadowing.cpp.o.d"
  "/root/repo/src/channel/snr_process.cpp" "src/channel/CMakeFiles/wdc_channel.dir/snr_process.cpp.o" "gcc" "src/channel/CMakeFiles/wdc_channel.dir/snr_process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wdc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wdc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
