# Empty compiler generated dependencies file for wdc_proto.
# This may be replaced when dependencies are built.
