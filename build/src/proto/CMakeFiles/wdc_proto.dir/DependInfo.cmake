
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/at.cpp" "src/proto/CMakeFiles/wdc_proto.dir/at.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/at.cpp.o.d"
  "/root/repo/src/proto/baselines.cpp" "src/proto/CMakeFiles/wdc_proto.dir/baselines.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/baselines.cpp.o.d"
  "/root/repo/src/proto/bs.cpp" "src/proto/CMakeFiles/wdc_proto.dir/bs.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/bs.cpp.o.d"
  "/root/repo/src/proto/cbl.cpp" "src/proto/CMakeFiles/wdc_proto.dir/cbl.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/cbl.cpp.o.d"
  "/root/repo/src/proto/client_base.cpp" "src/proto/CMakeFiles/wdc_proto.dir/client_base.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/client_base.cpp.o.d"
  "/root/repo/src/proto/factory.cpp" "src/proto/CMakeFiles/wdc_proto.dir/factory.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/factory.cpp.o.d"
  "/root/repo/src/proto/hyb.cpp" "src/proto/CMakeFiles/wdc_proto.dir/hyb.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/hyb.cpp.o.d"
  "/root/repo/src/proto/lair.cpp" "src/proto/CMakeFiles/wdc_proto.dir/lair.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/lair.cpp.o.d"
  "/root/repo/src/proto/pig.cpp" "src/proto/CMakeFiles/wdc_proto.dir/pig.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/pig.cpp.o.d"
  "/root/repo/src/proto/protocol.cpp" "src/proto/CMakeFiles/wdc_proto.dir/protocol.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/protocol.cpp.o.d"
  "/root/repo/src/proto/reports.cpp" "src/proto/CMakeFiles/wdc_proto.dir/reports.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/reports.cpp.o.d"
  "/root/repo/src/proto/server_base.cpp" "src/proto/CMakeFiles/wdc_proto.dir/server_base.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/server_base.cpp.o.d"
  "/root/repo/src/proto/sig.cpp" "src/proto/CMakeFiles/wdc_proto.dir/sig.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/sig.cpp.o.d"
  "/root/repo/src/proto/stats_sink.cpp" "src/proto/CMakeFiles/wdc_proto.dir/stats_sink.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/stats_sink.cpp.o.d"
  "/root/repo/src/proto/ts.cpp" "src/proto/CMakeFiles/wdc_proto.dir/ts.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/ts.cpp.o.d"
  "/root/repo/src/proto/uir.cpp" "src/proto/CMakeFiles/wdc_proto.dir/uir.cpp.o" "gcc" "src/proto/CMakeFiles/wdc_proto.dir/uir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wdc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wdc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wdc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wdc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/wdc_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wdc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/wdc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wdc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
