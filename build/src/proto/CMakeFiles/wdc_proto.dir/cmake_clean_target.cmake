file(REMOVE_RECURSE
  "libwdc_proto.a"
)
