file(REMOVE_RECURSE
  "libwdc_mac.a"
)
