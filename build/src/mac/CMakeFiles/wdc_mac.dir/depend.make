# Empty dependencies file for wdc_mac.
# This may be replaced when dependencies are built.
