file(REMOVE_RECURSE
  "CMakeFiles/wdc_mac.dir/broadcast_mac.cpp.o"
  "CMakeFiles/wdc_mac.dir/broadcast_mac.cpp.o.d"
  "CMakeFiles/wdc_mac.dir/uplink.cpp.o"
  "CMakeFiles/wdc_mac.dir/uplink.cpp.o.d"
  "libwdc_mac.a"
  "libwdc_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdc_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
