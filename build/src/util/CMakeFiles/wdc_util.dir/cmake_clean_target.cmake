file(REMOVE_RECURSE
  "libwdc_util.a"
)
