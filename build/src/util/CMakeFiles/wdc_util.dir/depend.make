# Empty dependencies file for wdc_util.
# This may be replaced when dependencies are built.
