file(REMOVE_RECURSE
  "CMakeFiles/wdc_util.dir/config.cpp.o"
  "CMakeFiles/wdc_util.dir/config.cpp.o.d"
  "CMakeFiles/wdc_util.dir/log.cpp.o"
  "CMakeFiles/wdc_util.dir/log.cpp.o.d"
  "CMakeFiles/wdc_util.dir/rng.cpp.o"
  "CMakeFiles/wdc_util.dir/rng.cpp.o.d"
  "CMakeFiles/wdc_util.dir/string_util.cpp.o"
  "CMakeFiles/wdc_util.dir/string_util.cpp.o.d"
  "CMakeFiles/wdc_util.dir/variates.cpp.o"
  "CMakeFiles/wdc_util.dir/variates.cpp.o.d"
  "libwdc_util.a"
  "libwdc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
