file(REMOVE_RECURSE
  "CMakeFiles/wdc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/wdc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/wdc_sim.dir/simulator.cpp.o"
  "CMakeFiles/wdc_sim.dir/simulator.cpp.o.d"
  "libwdc_sim.a"
  "libwdc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
