file(REMOVE_RECURSE
  "libwdc_sim.a"
)
