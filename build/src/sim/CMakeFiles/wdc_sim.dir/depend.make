# Empty dependencies file for wdc_sim.
# This may be replaced when dependencies are built.
