file(REMOVE_RECURSE
  "CMakeFiles/channel_tests.dir/channel/fsmc_test.cpp.o"
  "CMakeFiles/channel_tests.dir/channel/fsmc_test.cpp.o.d"
  "CMakeFiles/channel_tests.dir/channel/gilbert_elliott_test.cpp.o"
  "CMakeFiles/channel_tests.dir/channel/gilbert_elliott_test.cpp.o.d"
  "CMakeFiles/channel_tests.dir/channel/jakes_test.cpp.o"
  "CMakeFiles/channel_tests.dir/channel/jakes_test.cpp.o.d"
  "CMakeFiles/channel_tests.dir/channel/pathloss_test.cpp.o"
  "CMakeFiles/channel_tests.dir/channel/pathloss_test.cpp.o.d"
  "CMakeFiles/channel_tests.dir/channel/shadowing_test.cpp.o"
  "CMakeFiles/channel_tests.dir/channel/shadowing_test.cpp.o.d"
  "CMakeFiles/channel_tests.dir/channel/snr_process_test.cpp.o"
  "CMakeFiles/channel_tests.dir/channel/snr_process_test.cpp.o.d"
  "channel_tests"
  "channel_tests.pdb"
  "channel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
