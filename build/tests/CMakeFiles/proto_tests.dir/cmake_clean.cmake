file(REMOVE_RECURSE
  "CMakeFiles/proto_tests.dir/proto/baselines_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/baselines_test.cpp.o.d"
  "CMakeFiles/proto_tests.dir/proto/bs_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/bs_test.cpp.o.d"
  "CMakeFiles/proto_tests.dir/proto/cbl_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/cbl_test.cpp.o.d"
  "CMakeFiles/proto_tests.dir/proto/digest_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/digest_test.cpp.o.d"
  "CMakeFiles/proto_tests.dir/proto/reports_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/reports_test.cpp.o.d"
  "CMakeFiles/proto_tests.dir/proto/semantics_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/semantics_test.cpp.o.d"
  "CMakeFiles/proto_tests.dir/proto/sig_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/sig_test.cpp.o.d"
  "CMakeFiles/proto_tests.dir/proto/timeout_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/timeout_test.cpp.o.d"
  "CMakeFiles/proto_tests.dir/proto/tuning_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/tuning_test.cpp.o.d"
  "proto_tests"
  "proto_tests.pdb"
  "proto_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
