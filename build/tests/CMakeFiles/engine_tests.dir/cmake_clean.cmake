file(REMOVE_RECURSE
  "CMakeFiles/engine_tests.dir/engine/accounting_test.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/accounting_test.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/determinism_test.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/determinism_test.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/invariants_test.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/invariants_test.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/ordering_test.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/ordering_test.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/replication_test.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/replication_test.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/scenario_test.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/scenario_test.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/simulation_test.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/simulation_test.cpp.o.d"
  "engine_tests"
  "engine_tests.pdb"
  "engine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
