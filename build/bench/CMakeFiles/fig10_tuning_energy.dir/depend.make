# Empty dependencies file for fig10_tuning_energy.
# This may be replaced when dependencies are built.
