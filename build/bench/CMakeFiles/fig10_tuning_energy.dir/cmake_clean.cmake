file(REMOVE_RECURSE
  "CMakeFiles/fig10_tuning_energy.dir/fig10_tuning_energy.cpp.o"
  "CMakeFiles/fig10_tuning_energy.dir/fig10_tuning_energy.cpp.o.d"
  "fig10_tuning_energy"
  "fig10_tuning_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tuning_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
