file(REMOVE_RECURSE
  "CMakeFiles/fig2_hitratio_vs_updates.dir/fig2_hitratio_vs_updates.cpp.o"
  "CMakeFiles/fig2_hitratio_vs_updates.dir/fig2_hitratio_vs_updates.cpp.o.d"
  "fig2_hitratio_vs_updates"
  "fig2_hitratio_vs_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hitratio_vs_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
