# Empty dependencies file for fig2_hitratio_vs_updates.
# This may be replaced when dependencies are built.
