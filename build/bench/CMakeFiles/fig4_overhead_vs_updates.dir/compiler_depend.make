# Empty compiler generated dependencies file for fig4_overhead_vs_updates.
# This may be replaced when dependencies are built.
