file(REMOVE_RECURSE
  "CMakeFiles/fig4_overhead_vs_updates.dir/fig4_overhead_vs_updates.cpp.o"
  "CMakeFiles/fig4_overhead_vs_updates.dir/fig4_overhead_vs_updates.cpp.o.d"
  "fig4_overhead_vs_updates"
  "fig4_overhead_vs_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_overhead_vs_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
