# Empty compiler generated dependencies file for fig6_vs_snr.
# This may be replaced when dependencies are built.
