# Empty compiler generated dependencies file for tab3_baselines.
# This may be replaced when dependencies are built.
