file(REMOVE_RECURSE
  "CMakeFiles/tab3_baselines.dir/tab3_baselines.cpp.o"
  "CMakeFiles/tab3_baselines.dir/tab3_baselines.cpp.o.d"
  "tab3_baselines"
  "tab3_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
