file(REMOVE_RECURSE
  "CMakeFiles/tab1_summary.dir/tab1_summary.cpp.o"
  "CMakeFiles/tab1_summary.dir/tab1_summary.cpp.o.d"
  "tab1_summary"
  "tab1_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
