# Empty dependencies file for tab1_summary.
# This may be replaced when dependencies are built.
