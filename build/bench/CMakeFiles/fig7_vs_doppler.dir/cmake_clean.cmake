file(REMOVE_RECURSE
  "CMakeFiles/fig7_vs_doppler.dir/fig7_vs_doppler.cpp.o"
  "CMakeFiles/fig7_vs_doppler.dir/fig7_vs_doppler.cpp.o.d"
  "fig7_vs_doppler"
  "fig7_vs_doppler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_vs_doppler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
