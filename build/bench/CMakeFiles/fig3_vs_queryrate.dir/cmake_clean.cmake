file(REMOVE_RECURSE
  "CMakeFiles/fig3_vs_queryrate.dir/fig3_vs_queryrate.cpp.o"
  "CMakeFiles/fig3_vs_queryrate.dir/fig3_vs_queryrate.cpp.o.d"
  "fig3_vs_queryrate"
  "fig3_vs_queryrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vs_queryrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
