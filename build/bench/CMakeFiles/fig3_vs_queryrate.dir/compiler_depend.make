# Empty compiler generated dependencies file for fig3_vs_queryrate.
# This may be replaced when dependencies are built.
