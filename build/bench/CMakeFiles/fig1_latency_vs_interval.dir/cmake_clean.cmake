file(REMOVE_RECURSE
  "CMakeFiles/fig1_latency_vs_interval.dir/fig1_latency_vs_interval.cpp.o"
  "CMakeFiles/fig1_latency_vs_interval.dir/fig1_latency_vs_interval.cpp.o.d"
  "fig1_latency_vs_interval"
  "fig1_latency_vs_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_latency_vs_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
