# Empty compiler generated dependencies file for fig1_latency_vs_interval.
# This may be replaced when dependencies are built.
