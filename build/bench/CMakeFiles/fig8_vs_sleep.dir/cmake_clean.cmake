file(REMOVE_RECURSE
  "CMakeFiles/fig8_vs_sleep.dir/fig8_vs_sleep.cpp.o"
  "CMakeFiles/fig8_vs_sleep.dir/fig8_vs_sleep.cpp.o.d"
  "fig8_vs_sleep"
  "fig8_vs_sleep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_vs_sleep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
