file(REMOVE_RECURSE
  "CMakeFiles/tab2_ablation.dir/tab2_ablation.cpp.o"
  "CMakeFiles/tab2_ablation.dir/tab2_ablation.cpp.o.d"
  "tab2_ablation"
  "tab2_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
