# Empty compiler generated dependencies file for tab2_ablation.
# This may be replaced when dependencies are built.
