# Empty dependencies file for fig5_vs_downlink_load.
# This may be replaced when dependencies are built.
