# Empty compiler generated dependencies file for wdc_sim_cli.
# This may be replaced when dependencies are built.
