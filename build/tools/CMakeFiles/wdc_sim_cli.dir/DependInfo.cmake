
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/wdc_sim.cpp" "tools/CMakeFiles/wdc_sim_cli.dir/wdc_sim.cpp.o" "gcc" "tools/CMakeFiles/wdc_sim_cli.dir/wdc_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/wdc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/wdc_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/wdc_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wdc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wdc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wdc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/wdc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wdc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wdc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
