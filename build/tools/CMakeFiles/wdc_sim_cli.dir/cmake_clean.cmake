file(REMOVE_RECURSE
  "CMakeFiles/wdc_sim_cli.dir/wdc_sim.cpp.o"
  "CMakeFiles/wdc_sim_cli.dir/wdc_sim.cpp.o.d"
  "wdc_sim"
  "wdc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdc_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
