file(REMOVE_RECURSE
  "CMakeFiles/channel_explorer.dir/channel_explorer.cpp.o"
  "CMakeFiles/channel_explorer.dir/channel_explorer.cpp.o.d"
  "channel_explorer"
  "channel_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
