file(REMOVE_RECURSE
  "CMakeFiles/campus_webcache.dir/campus_webcache.cpp.o"
  "CMakeFiles/campus_webcache.dir/campus_webcache.cpp.o.d"
  "campus_webcache"
  "campus_webcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_webcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
