# Empty compiler generated dependencies file for campus_webcache.
# This may be replaced when dependencies are built.
