# Empty dependencies file for lease_vs_report.
# This may be replaced when dependencies are built.
