file(REMOVE_RECURSE
  "CMakeFiles/lease_vs_report.dir/lease_vs_report.cpp.o"
  "CMakeFiles/lease_vs_report.dir/lease_vs_report.cpp.o.d"
  "lease_vs_report"
  "lease_vs_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_vs_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
