#include "analysis/fading_theory.hpp"

#include <cmath>
#include <stdexcept>

namespace wdc::analysis {

namespace {
constexpr double kSqrt2Pi = 2.5066282746310002;

double rho_of(double threshold_db, double mean_snr_db) {
  return std::sqrt(std::pow(10.0, (threshold_db - mean_snr_db) / 10.0));
}
}  // namespace

double rayleigh_outage_prob(double threshold_db, double mean_snr_db) {
  const double rho = rho_of(threshold_db, mean_snr_db);
  return 1.0 - std::exp(-rho * rho);
}

double rayleigh_lcr(double threshold_db, double mean_snr_db, double doppler_hz) {
  if (doppler_hz <= 0.0) throw std::invalid_argument("rayleigh_lcr: doppler > 0");
  const double rho = rho_of(threshold_db, mean_snr_db);
  return kSqrt2Pi * doppler_hz * rho * std::exp(-rho * rho);
}

double rayleigh_afd(double threshold_db, double mean_snr_db, double doppler_hz) {
  if (doppler_hz <= 0.0) throw std::invalid_argument("rayleigh_afd: doppler > 0");
  const double rho = rho_of(threshold_db, mean_snr_db);
  if (rho <= 0.0) return 0.0;
  return (std::exp(rho * rho) - 1.0) / (rho * doppler_hz * kSqrt2Pi);
}

}  // namespace wdc::analysis
