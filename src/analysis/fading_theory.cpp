#include "analysis/fading_theory.hpp"

#include <cmath>
#include <stdexcept>

namespace wdc::analysis {

namespace {
constexpr double kSqrt2Pi = 2.5066282746310002;

double rho_of(double threshold_db, double mean_snr_db) {
  return std::sqrt(std::pow(10.0, (threshold_db - mean_snr_db) / 10.0));
}
}  // namespace

double rayleigh_outage_prob(double threshold_db, double mean_snr_db) {
  const double rho = rho_of(threshold_db, mean_snr_db);
  return 1.0 - std::exp(-rho * rho);
}

double rayleigh_lcr(double threshold_db, double mean_snr_db, double doppler_hz) {
  if (doppler_hz <= 0.0) throw std::invalid_argument("rayleigh_lcr: doppler > 0");
  const double rho = rho_of(threshold_db, mean_snr_db);
  return kSqrt2Pi * doppler_hz * rho * std::exp(-rho * rho);
}

double rayleigh_afd(double threshold_db, double mean_snr_db, double doppler_hz) {
  if (doppler_hz <= 0.0) throw std::invalid_argument("rayleigh_afd: doppler > 0");
  const double rho = rho_of(threshold_db, mean_snr_db);
  if (rho <= 0.0) return 0.0;
  return (std::exp(rho * rho) - 1.0) / (rho * doppler_hz * kSqrt2Pi);
}

double bessel_j0(double x) {
  // Abramowitz & Stegun: 9.4.1 (polynomial, |x| <= 3) and 9.4.3 (modulus /
  // phase form, |x| > 3). J0 is even, so work with |x|.
  const double ax = std::fabs(x);
  if (ax <= 3.0) {
    const double t = (ax / 3.0) * (ax / 3.0);
    return 1.0 +
           t * (-2.2499997 +
                t * (1.2656208 +
                     t * (-0.3163866 +
                          t * (0.0444479 +
                               t * (-0.0039444 + t * 0.0002100)))));
  }
  const double t = 3.0 / ax;
  const double f0 =
      0.79788456 +
      t * (-0.00000077 +
           t * (-0.00552740 +
                t * (-0.00009512 +
                     t * (0.00137237 + t * (-0.00072805 + t * 0.00014476)))));
  const double theta0 =
      ax - 0.78539816 +
      t * (-0.04166397 +
           t * (-0.00003954 +
                t * (0.00262573 +
                     t * (-0.00054125 + t * (-0.00029333 + t * 0.00013558)))));
  return f0 * std::cos(theta0) / std::sqrt(ax);
}

double jakes_power_autocorr(double doppler_hz, double tau_s) {
  const double j0 = bessel_j0(2.0 * 3.14159265358979323846 * doppler_hz * tau_s);
  return j0 * j0;
}

}  // namespace wdc::analysis
