#ifndef WDC_ANALYSIS_IR_THEORY_HPP
#define WDC_ANALYSIS_IR_THEORY_HPP

/// @file ir_theory.hpp
/// Closed-form expectations for IR-based invalidation — the analytic results the
/// classic papers derive, used here to cross-validate the simulator (the
/// tests/analysis suite asserts simulation ≈ theory where theory exists).

#include <cstdint>

namespace wdc::analysis {

/// Expected wait from a Poisson-arriving query to the next consistency point
/// when points are evenly spaced every `interval_s / m` (TS: m = 1, UIR: m
/// points per interval): interval/(2m).
double expected_consistency_wait(double interval_s, unsigned m = 1);

/// Effective mean wait when each point is independently missed (decode failure)
/// with probability `loss`: the residual wait plus loss·gap geometric repeats,
///   interval/(2m) + interval/m · loss/(1−loss).
double expected_wait_with_loss(double interval_s, unsigned m, double loss);

/// Probability an exponential sleep episode (mean `mean_sleep_s`) exceeds the
/// coverage window `window_s` — the per-episode TS cache-drop probability.
double sleep_drop_prob(double window_s, double mean_sleep_s);

/// Expected number of DISTINCT items updated in a window of `window_s` seconds
/// under the hot/cold Poisson update process (rate split hot_frac on hot_items).
/// Distinct count per class n with per-item rate r: n·(1 − e^{−r·w}).
double expected_distinct_updates(double window_s, double update_rate,
                                 std::uint32_t num_items, std::uint32_t hot_items,
                                 double hot_frac);

/// TS full-report wire size expectation (bits) given the distinct-update count.
double expected_ts_report_bits(double window_s, double update_rate,
                               std::uint32_t num_items, std::uint32_t hot_items,
                               double hot_frac, std::uint64_t header_bits,
                               std::uint64_t entry_bits);

/// Steady-state upper-bound hit ratio of an uncapacitated per-client cache under
/// the hot/cold query/update model with consistency interval L:
/// an arriving query for item i hits iff the item was queried by this client
/// more recently than its last effective invalidation. With per-client per-item
/// query rate q_i and per-item update rate u_i (both Poisson), the renewal
/// argument gives P(hit_i) = q_i / (q_i + u_i), aggregated over the query mix.
/// Ignores capacity, cold start, cache drops and report quantisation — an upper
/// bound the simulator must stay below (and approach as those effects vanish).
double hit_ratio_upper_bound(double client_query_rate, double query_hot_frac,
                             std::uint32_t query_hot_items, double update_rate,
                             double update_hot_frac, std::uint32_t update_hot_items,
                             std::uint32_t num_items);

}  // namespace wdc::analysis

#endif  // WDC_ANALYSIS_IR_THEORY_HPP
