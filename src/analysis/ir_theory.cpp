#include "analysis/ir_theory.hpp"

#include <cmath>
#include <stdexcept>

namespace wdc::analysis {

double expected_consistency_wait(double interval_s, unsigned m) {
  if (interval_s <= 0.0 || m == 0)
    throw std::invalid_argument("expected_consistency_wait: bad args");
  return interval_s / (2.0 * static_cast<double>(m));
}

double expected_wait_with_loss(double interval_s, unsigned m, double loss) {
  if (!(loss >= 0.0 && loss < 1.0))
    throw std::invalid_argument("expected_wait_with_loss: loss in [0,1)");
  const double gap = interval_s / static_cast<double>(m);
  return expected_consistency_wait(interval_s, m) + gap * loss / (1.0 - loss);
}

double sleep_drop_prob(double window_s, double mean_sleep_s) {
  if (mean_sleep_s <= 0.0) return 0.0;
  return std::exp(-window_s / mean_sleep_s);
}

double expected_distinct_updates(double window_s, double update_rate,
                                 std::uint32_t num_items, std::uint32_t hot_items,
                                 double hot_frac) {
  if (num_items == 0) throw std::invalid_argument("expected_distinct_updates");
  if (hot_items > num_items) hot_items = num_items;
  const double hot = static_cast<double>(hot_items);
  const double cold = static_cast<double>(num_items - hot_items);
  double expected = 0.0;
  if (hot > 0.0) {
    const double per_item = update_rate * hot_frac / hot;
    expected += hot * (1.0 - std::exp(-per_item * window_s));
  }
  if (cold > 0.0) {
    const double per_item = update_rate * (1.0 - hot_frac) / cold;
    expected += cold * (1.0 - std::exp(-per_item * window_s));
  }
  return expected;
}

double expected_ts_report_bits(double window_s, double update_rate,
                               std::uint32_t num_items, std::uint32_t hot_items,
                               double hot_frac, std::uint64_t header_bits,
                               std::uint64_t entry_bits) {
  return static_cast<double>(header_bits) +
         static_cast<double>(entry_bits) *
             expected_distinct_updates(window_s, update_rate, num_items, hot_items,
                                       hot_frac);
}

double hit_ratio_upper_bound(double client_query_rate, double query_hot_frac,
                             std::uint32_t query_hot_items, double update_rate,
                             double update_hot_frac, std::uint32_t update_hot_items,
                             std::uint32_t num_items) {
  if (num_items == 0) throw std::invalid_argument("hit_ratio_upper_bound");
  const auto per_item_update = [&](std::uint32_t id) {
    double rate = 0.0;
    if (id < update_hot_items)
      rate += update_rate * update_hot_frac / static_cast<double>(update_hot_items);
    else if (num_items > update_hot_items)
      rate += update_rate * (1.0 - update_hot_frac) /
              static_cast<double>(num_items - update_hot_items);
    return rate;
  };
  const auto per_item_query = [&](std::uint32_t id) {
    double rate = 0.0;
    if (id < query_hot_items)
      rate += client_query_rate * query_hot_frac /
              static_cast<double>(query_hot_items);
    else if (num_items > query_hot_items)
      rate += client_query_rate * (1.0 - query_hot_frac) /
              static_cast<double>(num_items - query_hot_items);
    return rate;
  };
  double hit = 0.0;
  double total_q = 0.0;
  for (std::uint32_t id = 0; id < num_items; ++id) {
    const double q = per_item_query(id);
    const double u = per_item_update(id);
    total_q += q;
    if (q > 0.0) hit += q * (q / (q + u));
  }
  return total_q > 0.0 ? hit / total_q : 0.0;
}

}  // namespace wdc::analysis
