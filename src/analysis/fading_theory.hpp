#ifndef WDC_ANALYSIS_FADING_THEORY_HPP
#define WDC_ANALYSIS_FADING_THEORY_HPP

/// @file fading_theory.hpp
/// Rayleigh second-order statistics (Jakes spectrum): level-crossing rate,
/// average fade duration, outage probability. Used to cross-validate the Jakes
/// and FSMC channel models, and to reason about LAIR's deferral window (a slide
/// helps when the window exceeds the average fade duration at the decode
/// threshold).

namespace wdc::analysis {

/// P(instantaneous SNR < threshold) for Rayleigh with the given mean SNR:
/// 1 − exp(−γ_thr/γ̄), arguments in dB.
double rayleigh_outage_prob(double threshold_db, double mean_snr_db);

/// Level-crossing rate (crossings/s, downward) at the threshold:
/// N(ρ) = √(2π)·f_d·ρ·exp(−ρ²) with ρ = √(γ_thr/γ̄).
double rayleigh_lcr(double threshold_db, double mean_snr_db, double doppler_hz);

/// Average fade duration below the threshold:
/// AFD = (exp(ρ²) − 1) / (ρ·f_d·√(2π)).
double rayleigh_afd(double threshold_db, double mean_snr_db, double doppler_hz);

/// Bessel function of the first kind, order zero (Abramowitz & Stegun 9.4.1 /
/// 9.4.3 rational approximations, |error| < 2e-8). The Jakes Doppler spectrum
/// gives the complex envelope autocorrelation J₀(2π·f_d·τ); the *power*-gain
/// autocovariance is its square — the target the `-L channel` equivalence
/// tier checks both fader generations against.
double bessel_j0(double x);

/// Normalized power-gain autocovariance of ideal Jakes/Clarke fading at lag
/// tau: corr(g(t), g(t+τ)) = J₀(2π·f_d·τ)².
double jakes_power_autocorr(double doppler_hz, double tau_s);

}  // namespace wdc::analysis

#endif  // WDC_ANALYSIS_FADING_THEORY_HPP
