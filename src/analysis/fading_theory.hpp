#ifndef WDC_ANALYSIS_FADING_THEORY_HPP
#define WDC_ANALYSIS_FADING_THEORY_HPP

/// @file fading_theory.hpp
/// Rayleigh second-order statistics (Jakes spectrum): level-crossing rate,
/// average fade duration, outage probability. Used to cross-validate the Jakes
/// and FSMC channel models, and to reason about LAIR's deferral window (a slide
/// helps when the window exceeds the average fade duration at the decode
/// threshold).

namespace wdc::analysis {

/// P(instantaneous SNR < threshold) for Rayleigh with the given mean SNR:
/// 1 − exp(−γ_thr/γ̄), arguments in dB.
double rayleigh_outage_prob(double threshold_db, double mean_snr_db);

/// Level-crossing rate (crossings/s, downward) at the threshold:
/// N(ρ) = √(2π)·f_d·ρ·exp(−ρ²) with ρ = √(γ_thr/γ̄).
double rayleigh_lcr(double threshold_db, double mean_snr_db, double doppler_hz);

/// Average fade duration below the threshold:
/// AFD = (exp(ρ²) − 1) / (ρ·f_d·√(2π)).
double rayleigh_afd(double threshold_db, double mean_snr_db, double doppler_hz);

}  // namespace wdc::analysis

#endif  // WDC_ANALYSIS_FADING_THEORY_HPP
