#include "trace/trace_event.hpp"

namespace wdc {

const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kQuerySubmit: return "QUERY_SUBMIT";
    case TraceEventKind::kIrWaitBegin: return "IR_WAIT_BEGIN";
    case TraceEventKind::kIrWaitEnd: return "IR_WAIT_END";
    case TraceEventKind::kCacheHit: return "CACHE_HIT";
    case TraceEventKind::kCacheStale: return "CACHE_STALE";
    case TraceEventKind::kCacheMiss: return "CACHE_MISS";
    case TraceEventKind::kUplinkSend: return "UPLINK_SEND";
    case TraceEventKind::kUplinkRetry: return "UPLINK_RETRY";
    case TraceEventKind::kUplinkDeliver: return "UPLINK_DELIVER";
    case TraceEventKind::kBroadcastReceive: return "BCAST_RECEIVE";
    case TraceEventKind::kAnswer: return "ANSWER";
    case TraceEventKind::kQueryDrop: return "QUERY_DROP";
    case TraceEventKind::kSleep: return "SLEEP";
    case TraceEventKind::kWake: return "WAKE";
    case TraceEventKind::kMcsSwitch: return "MCS_SWITCH";
    case TraceEventKind::kFaultDownlinkDrop: return "FAULT_DL_DROP";
    case TraceEventKind::kFaultUplinkDrop: return "FAULT_UL_DROP";
    case TraceEventKind::kChurnDisconnect: return "CHURN_DISCONNECT";
    case TraceEventKind::kChurnRejoin: return "CHURN_REJOIN";
    case TraceEventKind::kRecovery: return "RECOVERY";
    case TraceEventKind::kFaultCorrupt: return "FAULT_CORRUPT";
    case TraceEventKind::kServerCrash: return "SERVER_CRASH";
    case TraceEventKind::kServerRecover: return "SERVER_RECOVER";
  }
  return "?";
}

}  // namespace wdc
