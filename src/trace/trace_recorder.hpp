#ifndef WDC_TRACE_TRACE_RECORDER_HPP
#define WDC_TRACE_TRACE_RECORDER_HPP

/// @file trace_recorder.hpp
/// Per-simulation trace recorder, owned by the Simulator so every component
/// that can schedule events can also emit trace events.
///
/// Two gates, mirroring the event-kernel perf counters (kernel_counters.hpp):
///  * compile time — with WDC_TRACE_ENABLED=0 (CMake -DWDC_TRACE=OFF) the
///    recorder is an empty no-op class, every emit folds away, and the binary
///    pays nothing;
///  * run time — an instrumented build still records nothing until a Scenario
///    enables tracing (TraceConfig::enabled), so production sweeps pay one
///    predictable branch per emit site.
///
/// Everything the recorder accumulates is instrumentation: it is surfaced in
/// Metrics (the latency decomposition means) and wdc_bench json= output but
/// deliberately EXCLUDED from metrics_digest(), so traced, untraced, and
/// stripped builds all stay digest-identical.

#include <cstdint>
#include <memory>
#include <string>

#include "trace/trace_event.hpp"
#include "trace/trace_ring.hpp"
#include "util/types.hpp"

#ifndef WDC_TRACE_ENABLED
#define WDC_TRACE_ENABLED 1
#endif

namespace wdc {

class TraceFileWriter;

/// Runtime tracing knobs (part of Scenario; config keys trace / trace_ring /
/// trace_file). Unconditional — present even in stripped builds so scenarios
/// and sweeps parse identically; the recorder just ignores it there.
struct TraceConfig {
  bool enabled = false;             ///< master runtime switch
  std::uint32_t ring_capacity = 1u << 16;  ///< events buffered in memory
  /// Binary sink path. Non-empty: the ring drains here whenever it fills and
  /// at finalize(), so the file holds EVERY event. Empty: the ring keeps the
  /// newest `ring_capacity` events and counts what it overwrote.
  std::string file;
};

/// Run identity stamped into the trace file header.
struct TraceMeta {
  std::string protocol;
  std::uint64_t seed = 0;
  double sim_time_s = 0.0;
  double warmup_s = 0.0;
  std::uint32_t num_clients = 0;
};

/// One answered query's latency, split over the lifecycle phases. The four
/// parts sum exactly to the answer latency (the emit site clamps a monotone
/// timestamp chain — see ClientProtocol).
struct LatencyBreakdown {
  double ir_wait_s = 0.0;    ///< submit → consistency-point decision
  double uplink_s = 0.0;     ///< decision → request delivered at the server
  double bcast_wait_s = 0.0; ///< delivery → item transmission begins
  double airtime_s = 0.0;    ///< item transmission time
};

/// Running sums of LatencyBreakdown over counted (post-warm-up) answers.
struct TraceDecomp {
  double ir_wait_s = 0.0;
  double uplink_s = 0.0;
  double bcast_wait_s = 0.0;
  double airtime_s = 0.0;
  std::uint64_t answers = 0;
};

#if WDC_TRACE_ENABLED

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Arm (or disarm) the recorder for one run. Opens the file sink when
  /// configured; a sink that cannot be opened degrades to ring-only capture.
  void configure(const TraceConfig& cfg, const TraceMeta& meta);

  /// Emit sites branch on this so a disabled run pays one predictable test.
  bool enabled() const { return enabled_; }

  /// Record one event. No-op when disabled.
  void emit(TraceEventKind kind, double t, ClientId client, ItemId item,
            double a = 0.0, double b = 0.0, std::uint8_t flags = 0);

  /// Record a kAnswer event and fold its breakdown into the decomposition
  /// sums (counted answers only, per kTraceFlagCounted).
  void answer(double t, ClientId client, ItemId item,
              const LatencyBreakdown& bd, std::uint8_t flags);

  TraceDecomp decomposition() const { return decomp_; }
  std::uint64_t events() const { return ring_.pushed(); }
  std::uint64_t dropped() const { return ring_.overwritten(); }
  const TraceRing& ring() const { return ring_; }

  /// Drain the ring into the file sink (if any) and close it. Idempotent;
  /// called by Simulation::run() after the clock stops.
  void finalize();

 private:
  void push(const TraceEvent& ev);
  void drain_to_sink();

  bool enabled_ = false;
  TraceRing ring_;
  TraceDecomp decomp_;
  std::unique_ptr<TraceFileWriter> sink_;
};

#else

/// Stripped build: every call compiles to nothing; enabled() is a constant so
/// guarded emit sites fold away entirely.
class TraceRecorder {
 public:
  void configure(const TraceConfig&, const TraceMeta&) {}
  bool enabled() const { return false; }
  void emit(TraceEventKind, double, ClientId, ItemId, double = 0.0,
            double = 0.0, std::uint8_t = 0) {}
  void answer(double, ClientId, ItemId, const LatencyBreakdown&,
              std::uint8_t) {}
  TraceDecomp decomposition() const { return {}; }
  std::uint64_t events() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  void finalize() {}
};

#endif  // WDC_TRACE_ENABLED

}  // namespace wdc

#endif  // WDC_TRACE_TRACE_RECORDER_HPP
