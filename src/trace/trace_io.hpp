#ifndef WDC_TRACE_TRACE_IO_HPP
#define WDC_TRACE_TRACE_IO_HPP

/// @file trace_io.hpp
/// Trace sinks: the compact binary .wdct file format (writer + reader) and a
/// JSONL export for ad-hoc tooling.
///
/// Format: a fixed 64-byte header (magic "WDCTRC01", format constants, run
/// identity) followed by sizeof(TraceEvent)-byte records to EOF, all native
/// endian — a trace is a machine-local diagnostic, written and read on the
/// same host, so no serialisation layer is warranted. The reader validates
/// magic, version, and record size so a stale tool fails loudly instead of
/// misparsing.

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace_event.hpp"
#include "trace/trace_recorder.hpp"

namespace wdc {

inline constexpr char kTraceMagic[8] = {'W', 'D', 'C', 'T', 'R', 'C', '0', '1'};
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// On-disk header, written verbatim.
struct TraceFileHeader {
  char magic[8] = {};
  std::uint32_t version = 0;
  std::uint32_t event_bytes = 0;  ///< sizeof(TraceEvent) at write time
  char protocol[16] = {};         ///< NUL-padded protocol name
  std::uint64_t seed = 0;
  double sim_time_s = 0.0;
  double warmup_s = 0.0;
  std::uint32_t num_clients = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(TraceFileHeader) == 64, "header layout is pinned");
static_assert(std::is_trivially_copyable_v<TraceFileHeader>,
              "header is written verbatim");

/// Stamp run identity into a header ready for TraceFileWriter::open().
TraceFileHeader make_trace_header(const TraceMeta& meta);

/// Streaming event writer (the recorder drains its ring through this).
class TraceFileWriter {
 public:
  /// Open `path` and write the header. False (and ok() false) on failure.
  bool open(const std::string& path, const TraceFileHeader& header);
  void append(const TraceEvent* events, std::size_t count);
  void close();
  bool ok() const { return ok_; }

 private:
  std::ofstream os_;
  bool ok_ = false;
};

/// A fully loaded trace.
struct TraceFile {
  TraceFileHeader header;
  std::vector<TraceEvent> events;
  /// header.protocol as a string (NUL padding stripped).
  std::string protocol() const;
};

/// Load a .wdct file. On failure returns false and, when `error` is non-null,
/// stores a one-line reason.
bool read_trace_file(const std::string& path, TraceFile* out,
                     std::string* error = nullptr);

/// Export every event as one JSON object per line.
void write_trace_jsonl(const TraceFile& file, std::ostream& os);

}  // namespace wdc

#endif  // WDC_TRACE_TRACE_IO_HPP
