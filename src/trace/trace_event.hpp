#ifndef WDC_TRACE_TRACE_EVENT_HPP
#define WDC_TRACE_TRACE_EVENT_HPP

/// @file trace_event.hpp
/// Typed POD trace events — the wire/record format of the query-lifecycle
/// tracing subsystem (DESIGN.md; docs/ANALYSIS.md "Query-lifecycle tracing").
///
/// One record is exactly 32 bytes, trivially copyable, and carries no pointers,
/// so a ring of them is cache-friendly, a file of them is seekable, and the
/// binary format is a straight memcpy of the in-memory layout (native endian —
/// traces are machine-local diagnostics, not interchange files).

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "util/types.hpp"

namespace wdc {

/// What happened. The kinds follow one query's lifecycle (submit → IR wait →
/// hit, or → miss → uplink → broadcast → answer), plus the client/channel
/// state changes that explain why a phase was slow (sleep/wake, MCS switches).
enum class TraceEventKind : std::uint8_t {
  kQuerySubmit = 0,     ///< application issued a query
  kIrWaitBegin = 1,     ///< query queued until the next consistency point
  kIrWaitEnd = 2,       ///< consistency point reached; query decided
  kCacheHit = 3,        ///< decided as a hit (answered immediately)
  kCacheStale = 4,      ///< decided as a hit that the oracle calls stale
  kCacheMiss = 5,       ///< decided as a miss (uplink fetch begins)
  kUplinkSend = 6,      ///< uplink message left the client (a = bits)
  kUplinkRetry = 7,     ///< re-request after request_timeout_s
  kUplinkDeliver = 8,   ///< uplink message arrived at the server
  kBroadcastReceive = 9,///< awaited item broadcast decoded (a = airtime_s)
  kAnswer = 10,         ///< query answered (a..d = latency decomposition)
  kQueryDrop = 11,      ///< pending query abandoned (client went to sleep)
  kSleep = 12,          ///< client radio off (sleep model)
  kWake = 13,           ///< client radio back on
  kMcsSwitch = 14,      ///< broadcast MCS changed (a = new, b = previous)
  // Fault-injection kinds (src/faults; absent unless a scenario enables them).
  kFaultDownlinkDrop = 15,  ///< decoded reception erased by a fault (a = MsgKind)
  kFaultUplinkDrop = 16,    ///< uplink request lost on the air
  kChurnDisconnect = 17,    ///< client churned away (radio unreachable)
  kChurnRejoin = 18,        ///< churned client reconnected
  kRecovery = 19,           ///< consistency re-established after a rejoin
                            ///< (a = recovery seconds, b = exposed entries)
  // Incident-replay kinds (scripted FaultSchedule + byzantine corruption).
  kFaultCorrupt = 20,       ///< report frame corrupted in flight (a = MsgKind,
                            ///< b = 1 if the codec accepted the damaged frame)
  kServerCrash = 21,        ///< scripted server crash edge (server down)
  kServerRecover = 22,      ///< server back up; report-log replay broadcast
};
inline constexpr std::size_t kNumTraceEventKinds = 23;

const char* to_string(TraceEventKind k);

// kAnswer flag bits.
inline constexpr std::uint8_t kTraceFlagHit = 0x01;
inline constexpr std::uint8_t kTraceFlagStale = 0x02;
inline constexpr std::uint8_t kTraceFlagCounted = 0x04;  ///< past warm-up
inline constexpr std::uint8_t kTraceFlagViaDigest = 0x08;

/// One trace record. `a`..`d` are kind-specific payload slots; for kAnswer they
/// carry the latency decomposition (ir_wait, uplink, bcast_wait, airtime in
/// seconds). Exact sums live in Metrics; the floats here are for inspection.
struct TraceEvent {
  double t = 0.0;  ///< simulation time of the event
  float a = 0.0f;
  float b = 0.0f;
  float c = 0.0f;
  float d = 0.0f;
  std::uint32_t item = 0;
  std::uint16_t client = 0;
  std::uint8_t kind = 0;
  std::uint8_t flags = 0;
};
static_assert(sizeof(TraceEvent) == 32, "TraceEvent must stay 32 bytes");
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent records are memcpy'd into rings and files");

/// ClientId → record field. The record narrows to 16 bits; kInvalidClient (and
/// any id that would not fit) maps to the all-ones sentinel.
inline constexpr std::uint16_t kTraceNoClient = 0xffff;
constexpr std::uint16_t trace_client(ClientId id) {
  return id >= kTraceNoClient ? kTraceNoClient : static_cast<std::uint16_t>(id);
}

}  // namespace wdc

#endif  // WDC_TRACE_TRACE_EVENT_HPP
