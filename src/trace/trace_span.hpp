#ifndef WDC_TRACE_TRACE_SPAN_HPP
#define WDC_TRACE_TRACE_SPAN_HPP

/// @file trace_span.hpp
/// Per-query lifecycle spans derived from a raw event stream: submit → answer
/// (or drop) pairing per (client, item), carrying the latency decomposition
/// the answer event recorded. The foundation of wdc_trace's summaries and
/// top-K slowest-queries report.

#include <cstdint>
#include <vector>

#include "trace/trace_event.hpp"
#include "trace/trace_recorder.hpp"
#include "util/types.hpp"

namespace wdc {

struct QuerySpan {
  ClientId client = kInvalidClient;
  ItemId item = kInvalidItem;
  double submit_t = 0.0;
  double end_t = 0.0;  ///< answer (or drop) time
  LatencyBreakdown parts;
  bool hit = false;
  bool stale = false;
  bool counted = false;   ///< past warm-up
  bool dropped = false;   ///< abandoned (sleep), never answered

  double latency_s() const { return end_t - submit_t; }
};

/// Pair kQuerySubmit with kAnswer/kQueryDrop events, FIFO per (client, item) —
/// the protocol answers same-item queries in submission order. An answer whose
/// submit predates the capture window (ring overwrote it) reconstructs its
/// submit time from the recorded decomposition. Unmatched submits (queries
/// still pending when the trace ended) yield no span.
std::vector<QuerySpan> derive_spans(const std::vector<TraceEvent>& events);

/// Aggregate of a span set (the per-protocol summary wdc_trace prints).
struct SpanSummary {
  std::uint64_t spans = 0;  ///< answered
  std::uint64_t hits = 0;
  std::uint64_t stale = 0;
  std::uint64_t drops = 0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;
  LatencyBreakdown mean_parts;  ///< per answered query
};

/// Summarise spans; with `counted_only`, warm-up answers are skipped (drops
/// are tallied regardless — they carry no counted flag).
SpanSummary summarize_spans(const std::vector<QuerySpan>& spans,
                            bool counted_only);

}  // namespace wdc

#endif  // WDC_TRACE_TRACE_SPAN_HPP
