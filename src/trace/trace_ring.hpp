#ifndef WDC_TRACE_TRACE_RING_HPP
#define WDC_TRACE_TRACE_RING_HPP

/// @file trace_ring.hpp
/// Fixed-capacity ring of trace events, one per simulation.
///
/// The simulation kernel is single-threaded (parallelism is across
/// replications, never inside one run — DESIGN.md §6), so each ring has
/// exactly one producer and needs no locks or atomics: push() is a store and
/// two index bumps, which is what keeps tracing cheap enough to leave enabled
/// on hot paths. Capacity is rounded up to a power of two so the index wrap is
/// a mask, not a modulo.
///
/// Overflow policy is the caller's: the recorder drains the ring into a file
/// sink when one is configured; without a sink the ring keeps the NEWEST
/// events and counts the overwritten ones.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace_event.hpp"

namespace wdc {

class TraceRing {
 public:
  TraceRing() = default;
  explicit TraceRing(std::uint32_t capacity) { reset(capacity); }

  /// (Re)allocate for at least `capacity` events (rounded up to a power of
  /// two) and forget any recorded history. Capacity 0 releases the buffer.
  void reset(std::uint32_t capacity) {
    std::size_t cap = 0;
    if (capacity > 0) {
      cap = 1;
      while (cap < capacity) cap <<= 1;
    }
    buf_.assign(cap, TraceEvent{});
    mask_ = cap == 0 ? 0 : cap - 1;
    head_ = 0;
    size_ = 0;
    overwritten_ = 0;
  }

  /// Record one event. When full, the oldest event is overwritten (the caller
  /// drains the ring first if it wants lossless capture).
  void push(const TraceEvent& ev) {
    if (buf_.empty()) return;
    buf_[static_cast<std::size_t>(head_) & mask_] = ev;
    ++head_;
    if (size_ < buf_.size())
      ++size_;
    else
      ++overwritten_;
  }

  bool full() const { return size_ == buf_.size() && !buf_.empty(); }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  /// Total push() calls since reset() (monotone across clear()).
  std::uint64_t pushed() const { return head_; }
  /// Events lost to overwriting (0 whenever a sink drains in time).
  std::uint64_t overwritten() const { return overwritten_; }

  /// Forget buffered events (after a drain); pushed()/overwritten() persist.
  void clear() { size_ = 0; }

  /// Visit buffered events oldest → newest.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint64_t i = head_ - size_; i < head_; ++i)
      fn(buf_[static_cast<std::size_t>(i) & mask_]);
  }

 private:
  std::vector<TraceEvent> buf_;
  std::size_t mask_ = 0;
  std::uint64_t head_ = 0;   ///< next write position (total pushes)
  std::size_t size_ = 0;     ///< buffered (≤ capacity)
  std::uint64_t overwritten_ = 0;
};

}  // namespace wdc

#endif  // WDC_TRACE_TRACE_RING_HPP
