#include "trace/trace_recorder.hpp"

#if WDC_TRACE_ENABLED

#include <vector>

#include "trace/trace_io.hpp"

namespace wdc {

TraceRecorder::TraceRecorder() = default;
TraceRecorder::~TraceRecorder() { finalize(); }

void TraceRecorder::configure(const TraceConfig& cfg, const TraceMeta& meta) {
  finalize();
  enabled_ = cfg.enabled;
  decomp_ = TraceDecomp{};
  if (!enabled_) {
    ring_.reset(0);
    return;
  }
  ring_.reset(cfg.ring_capacity);
  if (!cfg.file.empty()) {
    auto sink = std::make_unique<TraceFileWriter>();
    // An unopenable sink degrades to ring-only capture rather than aborting
    // the run: tracing is diagnostics, never a correctness dependency.
    if (sink->open(cfg.file, make_trace_header(meta))) sink_ = std::move(sink);
  }
}

void TraceRecorder::emit(TraceEventKind kind, double t, ClientId client,
                         ItemId item, double a, double b, std::uint8_t flags) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.t = t;
  ev.a = static_cast<float>(a);
  ev.b = static_cast<float>(b);
  ev.item = item;
  ev.client = trace_client(client);
  ev.kind = static_cast<std::uint8_t>(kind);
  ev.flags = flags;
  push(ev);
}

void TraceRecorder::answer(double t, ClientId client, ItemId item,
                           const LatencyBreakdown& bd, std::uint8_t flags) {
  if (!enabled_) return;
  if ((flags & kTraceFlagCounted) != 0) {
    decomp_.ir_wait_s += bd.ir_wait_s;
    decomp_.uplink_s += bd.uplink_s;
    decomp_.bcast_wait_s += bd.bcast_wait_s;
    decomp_.airtime_s += bd.airtime_s;
    ++decomp_.answers;
  }
  TraceEvent ev;
  ev.t = t;
  ev.a = static_cast<float>(bd.ir_wait_s);
  ev.b = static_cast<float>(bd.uplink_s);
  ev.c = static_cast<float>(bd.bcast_wait_s);
  ev.d = static_cast<float>(bd.airtime_s);
  ev.item = item;
  ev.client = trace_client(client);
  ev.kind = static_cast<std::uint8_t>(TraceEventKind::kAnswer);
  ev.flags = flags;
  push(ev);
}

void TraceRecorder::push(const TraceEvent& ev) {
  // Lossless capture with a sink: drain before the ring would overwrite.
  if (sink_ != nullptr && ring_.full()) drain_to_sink();
  ring_.push(ev);
}

void TraceRecorder::drain_to_sink() {
  std::vector<TraceEvent> batch;
  batch.reserve(ring_.size());
  ring_.for_each([&batch](const TraceEvent& ev) { batch.push_back(ev); });
  sink_->append(batch.data(), batch.size());
  ring_.clear();
}

void TraceRecorder::finalize() {
  if (sink_ != nullptr) {
    drain_to_sink();
    sink_->close();
    sink_.reset();
  }
}

}  // namespace wdc

#endif  // WDC_TRACE_ENABLED
