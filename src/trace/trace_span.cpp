#include "trace/trace_span.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace wdc {

namespace {

std::uint64_t span_key(std::uint16_t client, std::uint32_t item) {
  return (static_cast<std::uint64_t>(client) << 32) | item;
}

}  // namespace

std::vector<QuerySpan> derive_spans(const std::vector<TraceEvent>& events) {
  std::vector<QuerySpan> spans;
  std::unordered_map<std::uint64_t, std::deque<double>> open;
  for (const TraceEvent& ev : events) {
    const auto kind = static_cast<TraceEventKind>(ev.kind);
    if (kind == TraceEventKind::kQuerySubmit) {
      open[span_key(ev.client, ev.item)].push_back(ev.t);
      continue;
    }
    if (kind != TraceEventKind::kAnswer && kind != TraceEventKind::kQueryDrop)
      continue;
    QuerySpan span;
    span.client = ev.client == kTraceNoClient ? kInvalidClient
                                              : static_cast<ClientId>(ev.client);
    span.item = ev.item;
    span.end_t = ev.t;
    auto it = open.find(span_key(ev.client, ev.item));
    if (it != open.end() && !it->second.empty()) {
      span.submit_t = it->second.front();
      it->second.pop_front();
    } else {
      // Submit fell off the ring: reconstruct from the recorded breakdown.
      span.submit_t = ev.t - (static_cast<double>(ev.a) +
                              static_cast<double>(ev.b) +
                              static_cast<double>(ev.c) +
                              static_cast<double>(ev.d));
    }
    if (kind == TraceEventKind::kQueryDrop) {
      span.dropped = true;
    } else {
      span.parts.ir_wait_s = static_cast<double>(ev.a);
      span.parts.uplink_s = static_cast<double>(ev.b);
      span.parts.bcast_wait_s = static_cast<double>(ev.c);
      span.parts.airtime_s = static_cast<double>(ev.d);
      span.hit = (ev.flags & kTraceFlagHit) != 0;
      span.stale = (ev.flags & kTraceFlagStale) != 0;
      span.counted = (ev.flags & kTraceFlagCounted) != 0;
    }
    spans.push_back(span);
  }
  return spans;
}

SpanSummary summarize_spans(const std::vector<QuerySpan>& spans,
                            bool counted_only) {
  SpanSummary out;
  for (const QuerySpan& s : spans) {
    if (s.dropped) {
      ++out.drops;
      continue;
    }
    if (counted_only && !s.counted) continue;
    ++out.spans;
    if (s.hit) ++out.hits;
    if (s.stale) ++out.stale;
    out.mean_latency_s += s.latency_s();
    out.max_latency_s = std::max(out.max_latency_s, s.latency_s());
    out.mean_parts.ir_wait_s += s.parts.ir_wait_s;
    out.mean_parts.uplink_s += s.parts.uplink_s;
    out.mean_parts.bcast_wait_s += s.parts.bcast_wait_s;
    out.mean_parts.airtime_s += s.parts.airtime_s;
  }
  if (out.spans > 0) {
    const double n = static_cast<double>(out.spans);
    out.mean_latency_s /= n;
    out.mean_parts.ir_wait_s /= n;
    out.mean_parts.uplink_s /= n;
    out.mean_parts.bcast_wait_s /= n;
    out.mean_parts.airtime_s /= n;
  }
  return out;
}

}  // namespace wdc
