#include "trace/trace_io.hpp"

#include <cstring>
#include <ostream>

#include "util/string_util.hpp"

namespace wdc {

TraceFileHeader make_trace_header(const TraceMeta& meta) {
  TraceFileHeader h;
  std::memcpy(h.magic, kTraceMagic, sizeof(h.magic));
  h.version = kTraceFormatVersion;
  h.event_bytes = sizeof(TraceEvent);
  // NUL-padded, silently truncated: the protocol field is a label, not data.
  std::memset(h.protocol, 0, sizeof(h.protocol));
  std::memcpy(h.protocol, meta.protocol.data(),
              std::min(meta.protocol.size(), sizeof(h.protocol) - 1));
  h.seed = meta.seed;
  h.sim_time_s = meta.sim_time_s;
  h.warmup_s = meta.warmup_s;
  h.num_clients = meta.num_clients;
  return h;
}

bool TraceFileWriter::open(const std::string& path,
                           const TraceFileHeader& header) {
  os_.open(path, std::ios::binary | std::ios::trunc);
  if (!os_) {
    ok_ = false;
    return false;
  }
  os_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  ok_ = static_cast<bool>(os_);
  return ok_;
}

void TraceFileWriter::append(const TraceEvent* events, std::size_t count) {
  if (!ok_ || count == 0) return;
  os_.write(reinterpret_cast<const char*>(events),
            static_cast<std::streamsize>(count * sizeof(TraceEvent)));
  ok_ = static_cast<bool>(os_);
}

void TraceFileWriter::close() {
  if (os_.is_open()) {
    os_.close();
    ok_ = ok_ && !os_.fail();
  }
}

std::string TraceFile::protocol() const {
  const char* p = header.protocol;
  return std::string(p, strnlen(p, sizeof(header.protocol)));
}

bool read_trace_file(const std::string& path, TraceFile* out,
                     std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::ifstream is(path, std::ios::binary);
  if (!is) return fail("cannot open " + path);
  TraceFileHeader h;
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!is) return fail(path + ": truncated header");
  if (std::memcmp(h.magic, kTraceMagic, sizeof(h.magic)) != 0)
    return fail(path + ": not a wdc trace (bad magic)");
  if (h.version != kTraceFormatVersion)
    return fail(strfmt("%s: format version %u (reader understands %u)",
                       path.c_str(), h.version, kTraceFormatVersion));
  if (h.event_bytes != sizeof(TraceEvent))
    return fail(strfmt("%s: %u-byte records (reader expects %zu)", path.c_str(),
                       h.event_bytes, sizeof(TraceEvent)));
  out->header = h;
  out->events.clear();
  TraceEvent ev;
  while (is.read(reinterpret_cast<char*>(&ev), sizeof(ev)))
    out->events.push_back(ev);
  if (is.gcount() != 0) return fail(path + ": trailing partial record");
  return true;
}

void write_trace_jsonl(const TraceFile& file, std::ostream& os) {
  for (const TraceEvent& ev : file.events) {
    os << strfmt(
        "{\"t\": %.9f, \"kind\": \"%s\", \"client\": %u, \"item\": %u, "
        "\"a\": %g, \"b\": %g, \"c\": %g, \"d\": %g, \"flags\": %u}\n",
        ev.t, to_string(static_cast<TraceEventKind>(ev.kind)),
        static_cast<unsigned>(ev.client), ev.item,
        static_cast<double>(ev.a), static_cast<double>(ev.b),
        static_cast<double>(ev.c), static_cast<double>(ev.d),
        static_cast<unsigned>(ev.flags));
  }
}

}  // namespace wdc
