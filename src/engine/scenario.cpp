#include "engine/scenario.hpp"

#include <stdexcept>

#include "faults/fault_injector.hpp"

namespace wdc {

SnrAssignment snr_assignment_from_string(const std::string& name) {
  if (name == "uniform") return SnrAssignment::kUniform;
  if (name == "pathloss") return SnrAssignment::kPathLoss;
  throw std::invalid_argument("unknown snr assignment: " + name);
}

std::string to_string(SnrAssignment a) {
  switch (a) {
    case SnrAssignment::kUniform: return "uniform";
    case SnrAssignment::kPathLoss: return "pathloss";
  }
  return "?";
}

RadioTable radio_table_from_string(const std::string& name) {
  if (name == "edge") return RadioTable::kEdge;
  if (name == "wifi" || name == "80211b") return RadioTable::kWifi11b;
  throw std::invalid_argument("unknown radio table: " + name);
}

std::string to_string(RadioTable r) {
  switch (r) {
    case RadioTable::kEdge: return "edge";
    case RadioTable::kWifi11b: return "wifi";
  }
  return "?";
}

McsTable Scenario::make_mcs_table() const {
  switch (radio) {
    case RadioTable::kEdge: return McsTable::edge(edge_timeslots);
    case RadioTable::kWifi11b: return McsTable::wifi11b();
  }
  throw std::logic_error("make_mcs_table: unreachable");
}

Scenario Scenario::from_config(const Config& c) {
  return from_config(c, Scenario{});
}

Scenario Scenario::from_config(const Config& c, const Scenario& base) {
  Scenario s = base;
  s.seed = static_cast<std::uint64_t>(c.get_int("seed", static_cast<std::int64_t>(s.seed)));
  s.sim_time_s = c.get_double("sim_time", s.sim_time_s);
  s.warmup_s = c.get_double("warmup", s.warmup_s);
  s.protocol = protocol_from_string(c.get_string("protocol", to_string(s.protocol)));
  s.num_clients = static_cast<std::uint32_t>(c.get_int("clients", s.num_clients));

  s.db.num_items = static_cast<std::uint32_t>(c.get_int("items", s.db.num_items));
  s.db.item_bits =
      static_cast<Bits>(c.get_int(
          "item_bytes", static_cast<std::int64_t>(s.db.item_bits / 8))) * 8;
  s.db.item_size_sigma = c.get_double("item_size_sigma", s.db.item_size_sigma);
  s.db.update_rate = c.get_double("update_rate", s.db.update_rate);
  s.db.hot_items = static_cast<std::uint32_t>(c.get_int("hot_items", s.db.hot_items));
  s.db.hot_update_frac = c.get_double("hot_update_frac", s.db.hot_update_frac);

  s.query.model =
      query_model_from_string(c.get_string("query_model", to_string(s.query.model)));
  s.query.rate = c.get_double("query_rate", s.query.rate);
  s.query.hot_items =
      static_cast<std::uint32_t>(c.get_int("query_hot_items", s.query.hot_items));
  s.query.hot_frac = c.get_double("query_hot_frac", s.query.hot_frac);
  s.query.zipf_theta = c.get_double("zipf_theta", s.query.zipf_theta);

  s.sleep.sleep_ratio = c.get_double("sleep_ratio", s.sleep.sleep_ratio);
  s.sleep.mean_sleep_s = c.get_double("mean_sleep", s.sleep.mean_sleep_s);

  s.traffic.model =
      traffic_model_from_string(c.get_string("traffic_model", to_string(s.traffic.model)));
  s.traffic.offered_bps = c.get_double("traffic_bps", s.traffic.offered_bps);
  s.traffic.frame_bits =
      static_cast<Bits>(c.get_int(
          "traffic_frame_bytes",
          static_cast<std::int64_t>(s.traffic.frame_bits / 8))) * 8;
  s.traffic.pareto_alpha = c.get_double("traffic_pareto_alpha", s.traffic.pareto_alpha);
  s.traffic.burst_mean_frames =
      c.get_double("traffic_burst_frames", s.traffic.burst_mean_frames);

  s.proto.ir_interval_s = c.get_double("ir_interval", s.proto.ir_interval_s);
  s.proto.window_mult = c.get_double("window_mult", s.proto.window_mult);
  s.proto.uir_m = static_cast<unsigned>(c.get_int("uir_m", s.proto.uir_m));
  s.proto.cache_capacity =
      static_cast<std::size_t>(c.get_int("cache_capacity", s.proto.cache_capacity));
  s.proto.request_timeout_s = c.get_double("request_timeout", s.proto.request_timeout_s);
  s.proto.sig_fp_prob = c.get_double("sig_fp_prob", s.proto.sig_fp_prob);
  s.proto.sig_window_mult = c.get_double("sig_window_mult", s.proto.sig_window_mult);
  s.proto.lair_window_s = c.get_double("lair_window", s.proto.lair_window_s);
  s.proto.lair_step_s = c.get_double("lair_step", s.proto.lair_step_s);
  s.proto.lair_min_snr_db = c.get_double("lair_min_snr", s.proto.lair_min_snr_db);
  s.proto.pig_horizon_s = c.get_double("pig_horizon", s.proto.pig_horizon_s);
  s.proto.pig_max_ids =
      static_cast<unsigned>(c.get_int("pig_max_ids", s.proto.pig_max_ids));
  s.proto.hyb_target_gap_s = c.get_double("hyb_target_gap", s.proto.hyb_target_gap_s);
  s.proto.hyb_max_m = static_cast<unsigned>(c.get_int("hyb_max_m", s.proto.hyb_max_m));
  s.proto.bs_levels = static_cast<unsigned>(c.get_int("bs_levels", s.proto.bs_levels));
  s.proto.cbl_lease_s = c.get_double("cbl_lease", s.proto.cbl_lease_s);
  s.proto.selective_tuning =
      c.get_bool("selective_tuning", s.proto.selective_tuning);
  s.proto.tune_guard_s = c.get_double("tune_guard", s.proto.tune_guard_s);
  s.proto.tune_linger_s = c.get_double("tune_linger", s.proto.tune_linger_s);

  s.fading.model =
      fading_model_from_string(c.get_string("fading", to_string(s.fading.model)));
  s.fading.channel_version = channel_version_from_string(
      c.get_string("channel_version", to_string(s.fading.channel_version)));
  s.fading.doppler_hz = c.get_double("doppler", s.fading.doppler_hz);
  s.fading.shadow_sigma_db = c.get_double("shadow_sigma", s.fading.shadow_sigma_db);

  s.mac.amc.adaptive = c.get_bool("amc", s.mac.amc.adaptive);
  s.mac.amc.fixed_mcs =
      static_cast<std::size_t>(c.get_int("fixed_mcs", s.mac.amc.fixed_mcs));
  s.mac.amc.target_bler = c.get_double("target_bler", s.mac.amc.target_bler);
  s.mac.amc.csi_delay_s = c.get_double("csi_delay", s.mac.amc.csi_delay_s);
  s.mac.broadcast_percentile =
      c.get_double("broadcast_percentile", s.mac.broadcast_percentile);
  s.mac.max_retx = static_cast<unsigned>(c.get_int("max_retx", s.mac.max_retx));

  s.uplink.base_delay_s = c.get_double("uplink_delay", s.uplink.base_delay_s);

  s.trace.enabled = c.get_bool("trace", s.trace.enabled);
  s.trace.ring_capacity = static_cast<std::uint32_t>(
      c.get_int("trace_ring", s.trace.ring_capacity));
  s.trace.file = c.get_string("trace_file", s.trace.file);

  s.faults.enabled = c.get_bool("faults", s.faults.enabled);
  s.faults.loss_mode = fault_loss_mode_from_string(
      c.get_string("fault_loss_mode", to_string(s.faults.loss_mode)));
  s.faults.ir_loss = c.get_double("fault_ir_loss", s.faults.ir_loss);
  s.faults.bcast_loss = c.get_double("fault_bcast_loss", s.faults.bcast_loss);
  s.faults.burst_mean_good_s =
      c.get_double("fault_burst_good", s.faults.burst_mean_good_s);
  s.faults.burst_mean_bad_s =
      c.get_double("fault_burst_bad", s.faults.burst_mean_bad_s);
  s.faults.uplink_drop = c.get_double("fault_uplink_drop", s.faults.uplink_drop);
  s.faults.backoff_mult = c.get_double("fault_backoff_mult", s.faults.backoff_mult);
  s.faults.backoff_cap_s = c.get_double("fault_backoff_cap", s.faults.backoff_cap_s);
  s.faults.churn_rate = c.get_double("fault_churn_rate", s.faults.churn_rate);
  s.faults.churn_mean_down_s =
      c.get_double("fault_churn_down", s.faults.churn_mean_down_s);
  s.faults.rejoin = rejoin_policy_from_string(
      c.get_string("fault_rejoin", to_string(s.faults.rejoin)));
  const std::string sched_path = c.get_string("fault_schedule", "");
  if (!sched_path.empty())
    s.faults.schedule = FaultSchedule::load_file(sched_path);

  s.snr_assignment = snr_assignment_from_string(
      c.get_string("snr_assignment", to_string(s.snr_assignment)));
  s.mean_snr_db = c.get_double("mean_snr", s.mean_snr_db);
  s.snr_spread_db = c.get_double("snr_spread", s.snr_spread_db);
  s.tx_power_dbm = c.get_double("tx_power", s.tx_power_dbm);
  s.noise_dbm = c.get_double("noise", s.noise_dbm);
  s.radio = radio_table_from_string(c.get_string("radio", to_string(s.radio)));
  s.edge_timeslots = static_cast<unsigned>(c.get_int("timeslots", s.edge_timeslots));

  s.shard_cells =
      static_cast<std::uint32_t>(c.get_int("shard_cells", s.shard_cells));
  s.shards = static_cast<std::uint32_t>(c.get_int("shards", s.shards));
  s.shard_threads =
      static_cast<std::uint32_t>(c.get_int("shard_threads", s.shard_threads));
  s.shard_lag = static_cast<std::uint32_t>(c.get_int("shard_lag", s.shard_lag));

  s.validate();
  return s;
}

void Scenario::validate() const {
  if (num_clients == 0) throw std::invalid_argument("Scenario: clients > 0");
  if (sim_time_s <= warmup_s)
    throw std::invalid_argument("Scenario: sim_time must exceed warmup");
  if (proto.ir_interval_s <= 0.0)
    throw std::invalid_argument("Scenario: ir_interval > 0");
  if (proto.window_mult < 1.0)
    throw std::invalid_argument("Scenario: window_mult >= 1 (window must cover L)");
  if (proto.uir_m == 0) throw std::invalid_argument("Scenario: uir_m >= 1");
  if (proto.lair_window_s >= (proto.window_mult - 1.0) * proto.ir_interval_s &&
      (protocol == ProtocolKind::kLair || protocol == ProtocolKind::kHyb))
    throw std::invalid_argument(
        "Scenario: LAIR deferral window must stay below (w-1)*L or sliding could "
        "break window coverage");
  if (proto.cache_capacity == 0)
    throw std::invalid_argument("Scenario: cache_capacity > 0");
  if (db.num_items == 0) throw std::invalid_argument("Scenario: items > 0");
  if (edge_timeslots == 0) throw std::invalid_argument("Scenario: timeslots >= 1");
  if (shard_cells == 0) throw std::invalid_argument("Scenario: shard_cells >= 1");
  if (shard_cells > num_clients)
    throw std::invalid_argument(
        "Scenario: shard_cells <= clients (every cell needs a client)");
  if (shards == 0) throw std::invalid_argument("Scenario: shards >= 1");
  if (shard_lag == 0)
    throw std::invalid_argument("Scenario: shard_lag >= 1 (0 would serialize "
                                "cells inside one epoch)");
  if (trace.enabled && trace.ring_capacity == 0)
    throw std::invalid_argument("Scenario: trace_ring > 0 when tracing");
  faults.validate();
  if (faults.enabled && WDC_FAULTS_ENABLED == 0)
    throw std::invalid_argument(
        "Scenario: faults requested but the fault layer was compiled out "
        "(-DWDC_FAULTS=OFF)");
}

}  // namespace wdc
