#ifndef WDC_ENGINE_SHARDED_HPP
#define WDC_ENGINE_SHARDED_HPP

/// @file sharded.hpp
/// Sharded-cell within-run parallelism: one scenario, many cores.
///
/// The client population is partitioned into `shard_cells` contiguous blocks;
/// each cell is a complete replica system — its own event kernel, channel
/// processes, MAC, uplink, fault injector, server and database replica —
/// simulating only its block. Cells interact solely through the authoritative
/// database state every broadcast report derives from, which is replicated
/// deterministically (identical seeds ⇒ identical update streams) and
/// *verified* at every IR-epoch barrier via sealed content digests
/// (EpochLedger). The IR cadence is the conservative sync horizon: with the
/// default lag of 1 a cell may run one epoch ahead of the slowest.
///
/// Determinism contract: the result is a pure function of
/// (scenario, seed, shard map = shard_cells). The execution knobs —
/// `shards` (executors; cell c → executor c % shards) and `shard_threads`
/// (executor x → thread x % shard_threads) — only schedule WHERE cells run;
/// per-cell event order is untouched and the metrics fold is in fixed cell
/// order, so digests are bit-identical across any K/thread combination (the
/// `-L scale` tier proves it). At shard_cells=1 the cell IS the legacy
/// simulation: same seed chain, same event order, same golden digests.

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/epoch_ledger.hpp"
#include "engine/metrics.hpp"
#include "engine/scenario.hpp"
#include "engine/simulation.hpp"

namespace wdc {

class ShardedSimulation {
 public:
  explicit ShardedSimulation(Scenario scenario);
  ~ShardedSimulation();

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  /// Run all cells to scenario.sim_time_s and fold their metrics. Call once.
  Metrics run();

  std::uint32_t num_cells() const { return cells_n_; }
  std::uint32_t num_executors() const { return execs_; }
  std::uint32_t num_threads() const { return threads_; }

  /// Global client block of cell `c` under `cells`-way sharding: contiguous,
  /// balanced to within one client, covering [0, clients) exactly.
  static ClientSpan cell_span(std::uint32_t c, std::uint32_t cells,
                              std::uint32_t clients);

  // --- white-box accessors (valid after run()) ---
  const Simulation& cell(std::uint32_t c) const { return *cells_.at(c); }
  const EpochLedger& ledger() const { return ledger_; }

 private:
  /// Epoch loop for thread `t`: builds and steps every cell whose executor
  /// lives on this thread (cell c → executor c % execs_ → thread x % threads_).
  void run_cells(std::uint32_t t, double epoch_s, std::uint64_t epochs);

  Scenario scenario_;
  std::uint32_t cells_n_;
  std::uint32_t execs_;
  std::uint32_t threads_;
  EpochLedger ledger_;
  std::vector<std::unique_ptr<Simulation>> cells_;
  bool ran_ = false;
};

}  // namespace wdc

#endif  // WDC_ENGINE_SHARDED_HPP
