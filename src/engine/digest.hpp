#ifndef WDC_ENGINE_DIGEST_HPP
#define WDC_ENGINE_DIGEST_HPP

/// @file digest.hpp
/// FNV-1a fingerprints of Metrics records, shared by the determinism tooling
/// (tools/wdc_audit), the sweep engine's regression tests, and anything else
/// that compares runs bit-for-bit. Hashing walks the fields explicitly (never
/// raw struct bytes) so padding can never alias into the digest.

#include <cstdint>

namespace wdc {

struct Metrics;

/// Incremental FNV-1a 64-bit hasher over 64-bit words.
class Fnv1aDigest {
 public:
  void mix(std::uint64_t v);
  void mix(double v);
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Digest over every field of a Metrics record.
std::uint64_t metrics_digest(const Metrics& m);

}  // namespace wdc

#endif  // WDC_ENGINE_DIGEST_HPP
