#ifndef WDC_ENGINE_METRICS_HPP
#define WDC_ENGINE_METRICS_HPP

/// @file metrics.hpp
/// Flattened result record of one simulation run — every number a bench or test
/// might want, as plain doubles/counters so replications aggregate trivially.

#include <cstdint>
#include <iosfwd>

#include "sim/kernel_counters.hpp"
#include "util/types.hpp"

namespace wdc {

struct Metrics {
  // --- run identity ---
  std::uint64_t seed = 0;
  double sim_time_s = 0.0;
  double measured_s = 0.0;  ///< sim_time − warmup
  std::uint64_t events = 0;

  // --- query service ---
  std::uint64_t queries = 0;
  std::uint64_t answered = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale_serves = 0;  ///< consistency violations (must be 0)
  std::uint64_t dropped_queries = 0;
  double hit_ratio = 0.0;
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p90_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_hit_latency_s = 0.0;
  double mean_miss_latency_s = 0.0;

  // --- uplink ---
  std::uint64_t uplink_requests = 0;
  double uplink_per_query = 0.0;
  std::uint64_t request_retries = 0;

  // --- reports / cache dynamics ---
  std::uint64_t reports_sent = 0;
  std::uint64_t minis_sent = 0;
  std::uint64_t reports_heard = 0;
  std::uint64_t reports_missed = 0;
  double report_loss_rate = 0.0;  ///< missed / (heard + missed)
  std::uint64_t cache_drops = 0;
  std::uint64_t false_invalidations = 0;
  std::uint64_t digests_applied = 0;
  std::uint64_t digest_answers = 0;

  // --- downlink airtime ---
  double mac_busy_frac = 0.0;
  double report_airtime_s = 0.0;   ///< IR + mini airtime
  double item_airtime_s = 0.0;
  double data_airtime_s = 0.0;
  double report_overhead_frac = 0.0;  ///< report airtime / measured time
  double data_queue_delay_s = 0.0;    ///< mean MAC queueing of data frames
  double mean_broadcast_mcs = 0.0;
  Bits report_bits = 0;
  Bits piggyback_bits = 0;
  std::uint64_t item_broadcasts = 0;
  std::uint64_t coalesced_requests = 0;
  std::uint64_t data_frames_dropped = 0;

  // --- energy proxy ---
  double listen_airtime_s = 0.0;       ///< summed over clients
  double listen_airtime_per_query = 0.0;
  double radio_on_frac = 0.0;          ///< mean fraction of time radios were powered

  // --- new-algorithm telemetry ---
  std::uint64_t lair_deferred = 0;
  double lair_mean_deferral_s = 0.0;
  double hyb_mean_m = 0.0;

  // --- query-latency decomposition (trace-derived) ---
  /// Per-counted-answer means of the four latency components; their sum equals
  /// mean_latency_s up to float rounding. All zero when tracing is disabled or
  /// compiled out (-DWDC_TRACE=OFF), and — like `kernel` — excluded from
  /// metrics_digest() so traced and untraced runs digest identically.
  double ir_wait_s = 0.0;     ///< query → consistency-point decision
  double uplink_s = 0.0;      ///< decision → request reaches the server
  double bcast_wait_s = 0.0;  ///< server → item broadcast starts
  double airtime_s = 0.0;     ///< item broadcast airtime
  std::uint64_t trace_events = 0;   ///< events emitted into the trace ring
  std::uint64_t trace_dropped = 0;  ///< ring overwrites (no file sink attached)

  // --- fault injection / recovery (src/faults) ---
  /// All zero when the fault layer is disabled (faults=false) or compiled out
  /// (-DWDC_FAULTS=OFF), and — like `kernel` and the decomposition means —
  /// excluded from metrics_digest() so faulted-capable and stripped builds
  /// digest identically.
  std::uint64_t fault_ir_drops = 0;     ///< report receptions erased
  std::uint64_t fault_bcast_drops = 0;  ///< item/data/control receptions erased
  std::uint64_t fault_uplink_drops = 0; ///< uplink requests lost
  std::uint64_t churn_events = 0;       ///< client disconnects
  std::uint64_t churn_rejoins = 0;      ///< client reconnects
  std::uint64_t recoveries = 0;         ///< consistency points after rejoins
  double mean_recovery_s = 0.0;         ///< mean rejoin → consistency time
  std::uint64_t stale_exposure = 0;     ///< suspect entries shed in recoveries
  std::uint64_t fault_corrupt_rejected = 0;  ///< byzantine frames codec caught
  std::uint64_t fault_corrupt_accepted = 0;  ///< byzantine frames that decoded
  std::uint64_t server_crashes = 0;     ///< scripted server-down edges
  std::uint64_t server_recoveries = 0;  ///< restarts (log-replay full reports)
  std::uint64_t crash_suppressed = 0;   ///< server sends/receptions swallowed
  std::uint64_t schedule_misses = 0;    ///< scripted point events never matched

  // --- event-kernel perf counters ---
  /// Instrumentation only: all zero under -DWDC_PERF_COUNTERS=OFF, and
  /// deliberately excluded from metrics_digest() so instrumented and stripped
  /// builds produce identical digests.
  KernelCounters kernel;

  /// Human-readable dump (examples use it).
  void print(std::ostream& os) const;
};

}  // namespace wdc

#endif  // WDC_ENGINE_METRICS_HPP
