#include "engine/metrics.hpp"

#include <ostream>

#include "util/string_util.hpp"

namespace {
/// %llu-friendly view of a counter (uint64_t's underlying type varies).
constexpr unsigned long long ull(std::uint64_t v) { return v; }
}  // namespace

namespace wdc {

void Metrics::print(std::ostream& os) const {
  os << strfmt("queries            %llu (answered %llu, dropped %llu)\n",
               ull(queries), ull(answered), ull(dropped_queries));
  os << strfmt("hit ratio          %.4f (%llu hits / %llu misses)\n", hit_ratio,
               ull(hits), ull(misses));
  os << strfmt(
      "latency            mean %.3fs  p50 %.3fs  p90 %.3fs  p99 %.3fs\n",
      mean_latency_s, p50_latency_s, p90_latency_s, p99_latency_s);
  os << strfmt("  hit/miss         %.3fs / %.3fs\n", mean_hit_latency_s,
               mean_miss_latency_s);
  os << strfmt("stale serves       %llu (consistency violations)\n",
               ull(stale_serves));
  os << strfmt(
      "uplink             %llu requests (%.3f per query, %llu retries)\n",
      ull(uplink_requests), uplink_per_query, ull(request_retries));
  os << strfmt("reports            %llu full + %llu mini sent; loss rate %.4f\n",
               ull(reports_sent), ull(minis_sent), report_loss_rate);
  os << strfmt("cache              %llu drops, %llu false invalidations\n",
               ull(cache_drops), ull(false_invalidations));
  os << strfmt("digests            %llu applied, %llu early answers\n",
               ull(digests_applied), ull(digest_answers));
  os << strfmt(
      "airtime            busy %.3f; reports %.1fs items %.1fs data %.1fs\n",
      mac_busy_frac, report_airtime_s, item_airtime_s, data_airtime_s);
  os << strfmt("report overhead    %.4f of wall clock; mean broadcast MCS %.2f\n",
               report_overhead_frac, mean_broadcast_mcs);
  os << strfmt("data queue delay   %.3fs mean; %llu frames dropped\n",
               data_queue_delay_s, ull(data_frames_dropped));
  os << strfmt(
      "energy proxy       %.4fs listen airtime per query; radio on %.3f "
      "of the time\n",
      listen_airtime_per_query, radio_on_frac);
  if (lair_deferred > 0)
    os << strfmt("LAIR               %llu deferred reports, mean slide %.3fs\n",
                 ull(lair_deferred), lair_mean_deferral_s);
  if (hyb_mean_m > 0.0)
    os << strfmt("HYB                mean m %.2f\n", hyb_mean_m);
  if (ir_wait_s + uplink_s + bcast_wait_s + airtime_s > 0.0)
    os << strfmt(
        "latency decomp     ir-wait %.3fs  uplink %.3fs  bcast-wait %.3fs  "
        "airtime %.3fs\n",
        ir_wait_s, uplink_s, bcast_wait_s, airtime_s);
  if (trace_events > 0)
    os << strfmt("trace              %llu events (%llu overwritten)\n",
                 ull(trace_events), ull(trace_dropped));
  if (fault_ir_drops + fault_bcast_drops + fault_uplink_drops + churn_events > 0)
    os << strfmt(
        "faults             %llu IR / %llu bcast / %llu uplink drops; "
        "%llu churns, %llu recoveries (mean %.3fs, %llu entries exposed)\n",
        ull(fault_ir_drops), ull(fault_bcast_drops), ull(fault_uplink_drops),
        ull(churn_events), ull(recoveries), mean_recovery_s,
        ull(stale_exposure));
  if (fault_corrupt_rejected + fault_corrupt_accepted + server_crashes > 0)
    os << strfmt(
        "incidents          %llu corrupt frames rejected (%llu accepted); "
        "%llu crashes / %llu recoveries, %llu sends suppressed, "
        "%llu schedule misses\n",
        ull(fault_corrupt_rejected), ull(fault_corrupt_accepted),
        ull(server_crashes), ull(server_recoveries), ull(crash_suppressed),
        ull(schedule_misses));
  if (kernel.scheduled > 0)
    os << strfmt(
        "event kernel       %llu scheduled / %llu fired / %llu cancelled; "
        "heap peak %llu, %llu slots reused\n",
        ull(kernel.scheduled), ull(kernel.fired), ull(kernel.cancelled),
        ull(kernel.heap_peak), ull(kernel.slots_reused));
}

}  // namespace wdc
