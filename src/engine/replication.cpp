#include "engine/replication.hpp"

#include <atomic>
#include <thread>

#include "engine/simulation.hpp"
#include "util/rng.hpp"

namespace wdc {

std::vector<Metrics> run_replications(const Scenario& scenario, unsigned reps,
                                      unsigned threads) {
  if (reps == 0) return {};
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads = std::min(threads, reps);

  // Pre-derive per-replication seeds so results don't depend on scheduling.
  std::vector<std::uint64_t> seeds(reps);
  SplitMix64 seeder(scenario.seed);
  for (auto& s : seeds) s = seeder.next();

  std::vector<Metrics> results(reps);
  std::atomic<unsigned> next{0};
  const auto worker = [&] {
    for (;;) {
      const unsigned i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= reps) return;
      Scenario sc = scenario;
      sc.seed = seeds[i];
      results[i] = run_scenario(sc);
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  return results;
}

ConfidenceInterval ci_of(const std::vector<Metrics>& reps,
                         const std::function<double(const Metrics&)>& field,
                         double conf) {
  std::vector<double> samples;
  samples.reserve(reps.size());
  for (const auto& m : reps) samples.push_back(field(m));
  return confidence_interval(samples, conf);
}

Metrics mean_of(const std::vector<Metrics>& reps) {
  Metrics out;
  if (reps.empty()) return out;
  const double n = static_cast<double>(reps.size());
  const auto avg = [&](auto getter) {
    double acc = 0.0;
    for (const auto& m : reps) acc += static_cast<double>(getter(m));
    return acc / n;
  };
  out.sim_time_s = avg([](const Metrics& m) { return m.sim_time_s; });
  out.measured_s = avg([](const Metrics& m) { return m.measured_s; });
  out.queries = static_cast<std::uint64_t>(avg([](const Metrics& m) { return m.queries; }));
  out.answered = static_cast<std::uint64_t>(avg([](const Metrics& m) { return m.answered; }));
  out.hits = static_cast<std::uint64_t>(avg([](const Metrics& m) { return m.hits; }));
  out.misses = static_cast<std::uint64_t>(avg([](const Metrics& m) { return m.misses; }));
  out.stale_serves = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.stale_serves; }));
  out.dropped_queries = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.dropped_queries; }));
  out.hit_ratio = avg([](const Metrics& m) { return m.hit_ratio; });
  out.mean_latency_s = avg([](const Metrics& m) { return m.mean_latency_s; });
  out.p50_latency_s = avg([](const Metrics& m) { return m.p50_latency_s; });
  out.p90_latency_s = avg([](const Metrics& m) { return m.p90_latency_s; });
  out.p99_latency_s = avg([](const Metrics& m) { return m.p99_latency_s; });
  out.mean_hit_latency_s = avg([](const Metrics& m) { return m.mean_hit_latency_s; });
  out.mean_miss_latency_s = avg([](const Metrics& m) { return m.mean_miss_latency_s; });
  out.uplink_requests = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.uplink_requests; }));
  out.uplink_per_query = avg([](const Metrics& m) { return m.uplink_per_query; });
  out.request_retries = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.request_retries; }));
  out.reports_sent = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.reports_sent; }));
  out.minis_sent = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.minis_sent; }));
  out.reports_heard = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.reports_heard; }));
  out.reports_missed = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.reports_missed; }));
  out.report_loss_rate = avg([](const Metrics& m) { return m.report_loss_rate; });
  out.cache_drops = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.cache_drops; }));
  out.false_invalidations = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.false_invalidations; }));
  out.digests_applied = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.digests_applied; }));
  out.digest_answers = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.digest_answers; }));
  out.mac_busy_frac = avg([](const Metrics& m) { return m.mac_busy_frac; });
  out.report_airtime_s = avg([](const Metrics& m) { return m.report_airtime_s; });
  out.item_airtime_s = avg([](const Metrics& m) { return m.item_airtime_s; });
  out.data_airtime_s = avg([](const Metrics& m) { return m.data_airtime_s; });
  out.report_overhead_frac =
      avg([](const Metrics& m) { return m.report_overhead_frac; });
  out.data_queue_delay_s = avg([](const Metrics& m) { return m.data_queue_delay_s; });
  out.mean_broadcast_mcs = avg([](const Metrics& m) { return m.mean_broadcast_mcs; });
  out.report_bits =
      static_cast<Bits>(avg([](const Metrics& m) { return m.report_bits; }));
  out.piggyback_bits =
      static_cast<Bits>(avg([](const Metrics& m) { return m.piggyback_bits; }));
  out.item_broadcasts = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.item_broadcasts; }));
  out.coalesced_requests = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.coalesced_requests; }));
  out.data_frames_dropped = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.data_frames_dropped; }));
  out.listen_airtime_s = avg([](const Metrics& m) { return m.listen_airtime_s; });
  out.listen_airtime_per_query =
      avg([](const Metrics& m) { return m.listen_airtime_per_query; });
  out.radio_on_frac = avg([](const Metrics& m) { return m.radio_on_frac; });
  out.lair_deferred = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.lair_deferred; }));
  out.lair_mean_deferral_s =
      avg([](const Metrics& m) { return m.lair_mean_deferral_s; });
  out.hyb_mean_m = avg([](const Metrics& m) { return m.hyb_mean_m; });
  out.ir_wait_s = avg([](const Metrics& m) { return m.ir_wait_s; });
  out.uplink_s = avg([](const Metrics& m) { return m.uplink_s; });
  out.bcast_wait_s = avg([](const Metrics& m) { return m.bcast_wait_s; });
  out.airtime_s = avg([](const Metrics& m) { return m.airtime_s; });
  out.trace_events = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.trace_events; }));
  out.trace_dropped = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.trace_dropped; }));
  out.fault_ir_drops = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.fault_ir_drops; }));
  out.fault_bcast_drops = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.fault_bcast_drops; }));
  out.fault_uplink_drops = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.fault_uplink_drops; }));
  out.churn_events = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.churn_events; }));
  out.churn_rejoins = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.churn_rejoins; }));
  out.recoveries = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.recoveries; }));
  out.mean_recovery_s = avg([](const Metrics& m) { return m.mean_recovery_s; });
  out.stale_exposure = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.stale_exposure; }));
  out.fault_corrupt_rejected = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.fault_corrupt_rejected; }));
  out.fault_corrupt_accepted = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.fault_corrupt_accepted; }));
  out.server_crashes = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.server_crashes; }));
  out.server_recoveries = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.server_recoveries; }));
  out.crash_suppressed = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.crash_suppressed; }));
  out.schedule_misses = static_cast<std::uint64_t>(
      avg([](const Metrics& m) { return m.schedule_misses; }));
  const auto avg_count = [&](auto field) {
    return static_cast<std::uint64_t>(
        avg([field](const Metrics& m) { return static_cast<double>(m.kernel.*field); }));
  };
  out.kernel.scheduled = avg_count(&KernelCounters::scheduled);
  out.kernel.fired = avg_count(&KernelCounters::fired);
  out.kernel.cancelled = avg_count(&KernelCounters::cancelled);
  out.kernel.dead_skipped = avg_count(&KernelCounters::dead_skipped);
  out.kernel.slots_reused = avg_count(&KernelCounters::slots_reused);
  out.kernel.heap_peak = avg_count(&KernelCounters::heap_peak);
  for (std::size_t p = 0; p < kNumEventPriorities; ++p)
    out.kernel.scheduled_by_prio[p] = static_cast<std::uint64_t>(avg(
        [p](const Metrics& m) { return static_cast<double>(m.kernel.scheduled_by_prio[p]); }));
  return out;
}

}  // namespace wdc
