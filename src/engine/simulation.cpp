#include "engine/simulation.hpp"

#include <stdexcept>
#include <utility>

#include "proto/hyb.hpp"

namespace wdc {

Simulation::Simulation(Scenario scenario)
    : scenario_(std::move(scenario)), table_(scenario_.make_mcs_table()) {
  scenario_.validate();
  Rng master(scenario_.seed);
  Rng geo_rng = master.split();
  Rng chan_rng = master.split();
  Rng mac_rng = master.split();
  Rng db_rng = master.split();
  Rng wl_rng = master.split();

  mac_ = std::make_unique<BroadcastMac>(sim_, table_, scenario_.mac, mac_rng);
  uplink_ = std::make_unique<UplinkChannel>(sim_, scenario_.uplink, master.split());
  // The fault layer splits off the master LAST, after every model stream, and
  // a disabled injector draws nothing — so seeds chain identically with faults
  // compiled in, disabled, or compiled out (the digest tests prove it).
  faults_ = std::make_unique<FaultInjector>(sim_, scenario_.faults,
                                            scenario_.num_clients, master.split());
  mac_->set_fault_injector(faults_.get());
  uplink_->set_fault_injector(faults_.get());
  db_ = std::make_unique<Database>(sim_, scenario_.db, db_rng);
  sink_ = std::make_unique<StatsSink>(scenario_.warmup_s);
  server_ = make_server(scenario_.protocol, sim_, *mac_, *db_, scenario_.proto);

  // Per-client channel processes and sleep models, then the protocol clients
  // (which register with the MAC in construction order ⇒ ClientId = index).
  const std::uint32_t M = scenario_.num_clients;
  links_.reserve(M);
  sleeps_.reserve(M);
  clients_.reserve(M);
  queries_.reserve(M);
  for (std::uint32_t i = 0; i < M; ++i) {
    Rng link_rng = chan_rng.split();
    links_.push_back(
        make_snr_process(scenario_.fading, client_mean_snr(geo_rng), link_rng));
    sleeps_.push_back(std::make_unique<SleepModel>(
        sim_, scenario_.sleep, wl_rng.split(),
        [this, i](bool awake) {
          if (i < clients_.size()) clients_[i]->on_sleep_transition(awake);
        },
        static_cast<ClientId>(i)));
  }
  for (std::uint32_t i = 0; i < M; ++i) {
    SleepModel* sleep = sleeps_[i].get();
    FaultInjector* faults = faults_.get();
    // A churned-away client is deaf exactly like a sleeping one: the composed
    // gate feeds radio_needed() (connected() is constant-true when disabled).
    clients_.push_back(make_client(
        scenario_.protocol, sim_, *mac_, *uplink_, *server_, *db_, scenario_.proto,
        links_[i].get(),
        [sleep, faults, i] { return sleep->awake() && faults->connected(i); },
        *sink_, wl_rng.split()));
    if (clients_.back()->id() != i)
      throw std::logic_error("Simulation: client registration order violated");
    clients_.back()->set_fault_injector(faults_.get());
  }
  for (std::uint32_t i = 0; i < M; ++i) {
    ClientProtocol* client = clients_[i].get();
    SleepModel* sleep = sleeps_[i].get();
    FaultInjector* faults = faults_.get();
    queries_.push_back(std::make_unique<QueryGenerator>(
        sim_, scenario_.query, scenario_.db.num_items, wl_rng.split(),
        [sleep, faults, i] { return sleep->awake() && faults->connected(i); },
        [client](ItemId item) { client->on_query(item); }));
  }
  faults_->set_churn_handler([this](ClientId c, bool connected) {
    if (c < clients_.size()) clients_[c]->on_churn(connected);
  });
  faults_->set_server_handler(
      [this](bool down) { server_->on_server_state(down); });

  traffic_ = std::make_unique<TrafficGenerator>(
      sim_, scenario_.traffic, M, wl_rng.split(),
      [this](const TrafficFrame& frame) { server_->on_downlink_frame(frame); });

  // Tracing is configured last (it never consumes randomness, so enabling it
  // cannot perturb the seed chain above).
  TraceMeta meta;
  meta.protocol = to_string(scenario_.protocol);
  meta.seed = scenario_.seed;
  meta.sim_time_s = scenario_.sim_time_s;
  meta.warmup_s = scenario_.warmup_s;
  meta.num_clients = scenario_.num_clients;
  sim_.trace().configure(scenario_.trace, meta);

  server_->start();
  faults_->start();
}

Simulation::~Simulation() = default;

double Simulation::client_mean_snr(Rng& rng) const {
  switch (scenario_.snr_assignment) {
    case SnrAssignment::kUniform:
      return scenario_.mean_snr_db +
             scenario_.snr_spread_db * (rng.uniform() - 0.5);
    case SnrAssignment::kPathLoss: {
      const double d = scenario_.cell.sample_distance(rng);
      return scenario_.tx_power_dbm - scenario_.pathloss.loss_db(d) -
             scenario_.noise_dbm;
    }
  }
  throw std::logic_error("client_mean_snr: unreachable");
}

Metrics Simulation::run() {
  if (ran_) throw std::logic_error("Simulation::run called twice");
  ran_ = true;
  sim_.run_until(scenario_.sim_time_s);
  sim_.trace().finalize();  // flush any trace file before metrics are read
  return collect();
}

Metrics Simulation::collect() const {
  Metrics m;
  m.seed = scenario_.seed;
  m.sim_time_s = sim_.now();
  m.measured_s = sim_.now() - scenario_.warmup_s;
  m.events = sim_.events_executed();

  const StatsSink& s = *sink_;
  m.queries = s.queries();
  m.answered = s.answered();
  m.hits = s.hits();
  m.misses = s.misses();
  m.stale_serves = s.stale_serves();
  m.dropped_queries = s.dropped();
  m.hit_ratio = s.hit_ratio();
  m.mean_latency_s = s.latency().mean();
  m.p50_latency_s = s.latency_hist().quantile(0.50);
  m.p90_latency_s = s.latency_hist().quantile(0.90);
  m.p99_latency_s = s.latency_hist().quantile(0.99);
  m.mean_hit_latency_s = s.hit_latency().mean();
  m.mean_miss_latency_s = s.miss_latency().mean();

  m.uplink_requests = uplink_->requests();
  m.uplink_per_query =
      m.answered ? static_cast<double>(m.uplink_requests) /
                       static_cast<double>(m.answered)
                 : 0.0;
  m.request_retries = s.request_retries();

  m.reports_sent = server_->reports_sent();
  m.minis_sent = server_->minis_sent();
  m.reports_heard = s.reports_heard();
  m.reports_missed = s.reports_missed();
  const auto offered = m.reports_heard + m.reports_missed;
  m.report_loss_rate =
      offered ? static_cast<double>(m.reports_missed) / static_cast<double>(offered)
              : 0.0;
  m.cache_drops = s.cache_drops();
  m.false_invalidations = s.false_invalidations();
  m.digests_applied = s.digests_applied();
  m.digest_answers = s.digest_answers();

  m.mac_busy_frac = mac_->busy_fraction(sim_.now());
  const auto& ir = mac_->stats(MsgKind::kInvalidationReport);
  const auto& mini = mac_->stats(MsgKind::kMiniReport);
  const auto& item = mac_->stats(MsgKind::kItemData);
  const auto& data = mac_->stats(MsgKind::kDownlinkData);
  m.report_airtime_s = ir.airtime_s + mini.airtime_s;
  m.item_airtime_s = item.airtime_s;
  m.data_airtime_s = data.airtime_s;
  m.report_overhead_frac =
      sim_.now() > 0.0 ? m.report_airtime_s / sim_.now() : 0.0;
  m.data_queue_delay_s = data.queue_delay.mean();
  m.mean_broadcast_mcs = mac_->broadcast_mcs_used().mean();
  m.report_bits = ir.bits + mini.bits;
  m.piggyback_bits = server_->digest_bits();
  m.item_broadcasts = server_->item_broadcasts();
  m.coalesced_requests = server_->coalesced_requests();
  m.data_frames_dropped = data.dropped;

  m.listen_airtime_s = s.listen_airtime_s();
  m.listen_airtime_per_query =
      m.answered ? m.listen_airtime_s / static_cast<double>(m.answered) : 0.0;
  if (!clients_.empty() && sim_.now() > 0.0) {
    double on = 0.0;
    for (const auto& c : clients_) on += c->radio_on_time(sim_.now());
    m.radio_on_frac = on / (sim_.now() * static_cast<double>(clients_.size()));
  }

  m.lair_deferred = server_->lair_deferred();
  m.lair_mean_deferral_s =
      m.lair_deferred
          ? server_->lair_deferral_s() / static_cast<double>(m.lair_deferred)
          : 0.0;
  if (const auto* hyb = dynamic_cast<const ServerHyb*>(server_.get()))
    m.hyb_mean_m = hyb->m_history().mean();

  // Latency decomposition (zero when tracing is off or compiled out). Means
  // over counted answered queries; excluded from digests like m.kernel.
  const TraceDecomp td = sim_.trace().decomposition();
  if (td.answers > 0) {
    const double n = static_cast<double>(td.answers);
    m.ir_wait_s = td.ir_wait_s / n;
    m.uplink_s = td.uplink_s / n;
    m.bcast_wait_s = td.bcast_wait_s / n;
    m.airtime_s = td.airtime_s / n;
  }
  m.trace_events = sim_.trace().events();
  m.trace_dropped = sim_.trace().dropped();

  // Fault/recovery telemetry (all zero when the layer is disabled or compiled
  // out). Excluded from digests like m.kernel and the decomposition means.
  const FaultStats fs = faults_->stats();
  m.fault_ir_drops = fs.ir_drops;
  m.fault_bcast_drops = fs.bcast_drops;
  m.fault_uplink_drops = fs.uplink_drops;
  m.churn_events = fs.churn_events;
  m.churn_rejoins = fs.rejoins;
  m.recoveries = fs.recoveries;
  m.mean_recovery_s =
      fs.recoveries
          ? fs.recovery_time_s / static_cast<double>(fs.recoveries)
          : 0.0;
  m.stale_exposure = fs.stale_exposure;
  m.fault_corrupt_rejected = fs.corrupt_rejected;
  m.fault_corrupt_accepted = fs.corrupt_accepted;
  m.server_crashes = fs.server_crashes;
  m.server_recoveries = fs.server_recoveries;
  m.crash_suppressed = server_->crash_suppressed();
  m.schedule_misses = fs.schedule_misses;

  m.kernel = sim_.kernel_counters();
  return m;
}

Metrics run_scenario(const Scenario& scenario) {
  Simulation sim(scenario);
  return sim.run();
}

}  // namespace wdc
