#include "engine/simulation.hpp"

#include <stdexcept>
#include <utility>

#include "engine/digest.hpp"
#include "engine/sharded.hpp"
#include "proto/hyb.hpp"

namespace wdc {

Simulation::Simulation(Scenario scenario)
    : Simulation(scenario, ClientSpan{0, scenario.num_clients}) {}

Simulation::Simulation(Scenario scenario, ClientSpan span)
    : scenario_(std::move(scenario)), span_(span),
      table_(scenario_.make_mcs_table()) {
  scenario_.validate();
  if (span_.begin > span_.end || span_.end > scenario_.num_clients ||
      span_.size() == 0)
    throw std::invalid_argument("Simulation: client span out of range");
  Rng master(scenario_.seed);
  Rng geo_rng = master.split();
  Rng chan_rng = master.split();
  Rng mac_rng = master.split();
  Rng db_rng = master.split();
  Rng wl_rng = master.split();

  mac_ = std::make_unique<BroadcastMac>(sim_, table_, scenario_.mac, mac_rng);
  uplink_ = std::make_unique<UplinkChannel>(sim_, scenario_.uplink, master.split());
  // The fault layer splits off the master LAST, after every model stream, and
  // a disabled injector draws nothing — so seeds chain identically with faults
  // compiled in, disabled, or compiled out (the digest tests prove it).
  faults_ = std::make_unique<FaultInjector>(sim_, scenario_.faults,
                                            span_.size(), master.split());
  mac_->set_fault_injector(faults_.get());
  uplink_->set_fault_injector(faults_.get());
  db_ = std::make_unique<Database>(sim_, scenario_.db, db_rng);
  sink_ = std::make_unique<StatsSink>(scenario_.warmup_s);
  server_ = make_server(scenario_.protocol, sim_, *mac_, *db_, scenario_.proto);

  // Per-client channel processes and sleep models, then the protocol clients
  // (which register with the MAC in construction order ⇒ ClientId = index).
  // Every loop walks the GLOBAL client range and derives each client's RNG
  // streams at its global index g — out-of-span clients burn exactly the
  // splits/draws the legacy construction consumed for them, so a client's
  // randomness is invariant under the shard map and the full span reproduces
  // the single-cell seed chain bit-for-bit.
  const std::uint32_t M = scenario_.num_clients;
  links_.reserve(span_.size());
  sleeps_.reserve(span_.size());
  clients_.reserve(span_.size());
  queries_.reserve(span_.size());
  for (std::uint32_t g = 0; g < M; ++g) {
    Rng link_rng = chan_rng.split();
    const double mean_snr = client_mean_snr(geo_rng);
    Rng sleep_rng = wl_rng.split();
    if (g < span_.begin || g >= span_.end) continue;
    const std::uint32_t i = g - span_.begin;
    links_.push_back(make_snr_process(scenario_.fading, mean_snr, link_rng));
    sleeps_.push_back(std::make_unique<SleepModel>(
        sim_, scenario_.sleep, sleep_rng,
        [this, i](bool awake) {
          if (i < clients_.size()) clients_[i]->on_sleep_transition(awake);
        },
        static_cast<ClientId>(i)));
  }
  for (std::uint32_t g = 0; g < M; ++g) {
    Rng client_rng = wl_rng.split();
    if (g < span_.begin || g >= span_.end) continue;
    const std::uint32_t i = g - span_.begin;
    SleepModel* sleep = sleeps_[i].get();
    FaultInjector* faults = faults_.get();
    // A churned-away client is deaf exactly like a sleeping one: the composed
    // gate feeds radio_needed() (connected() is constant-true when disabled).
    clients_.push_back(make_client(
        scenario_.protocol, sim_, *mac_, *uplink_, *server_, *db_, scenario_.proto,
        links_[i].get(),
        [sleep, faults, i] { return sleep->awake() && faults->connected(i); },
        *sink_, client_rng));
    if (clients_.back()->id() != i)
      throw std::logic_error("Simulation: client registration order violated");
    clients_.back()->set_fault_injector(faults_.get());
  }
  for (std::uint32_t g = 0; g < M; ++g) {
    Rng query_rng = wl_rng.split();
    if (g < span_.begin || g >= span_.end) continue;
    const std::uint32_t i = g - span_.begin;
    ClientProtocol* client = clients_[i].get();
    SleepModel* sleep = sleeps_[i].get();
    FaultInjector* faults = faults_.get();
    queries_.push_back(std::make_unique<QueryGenerator>(
        sim_, scenario_.query, scenario_.db.num_items, query_rng,
        [sleep, faults, i] { return sleep->awake() && faults->connected(i); },
        [client](ItemId item) { client->on_query(item); }));
  }
  faults_->set_churn_handler([this](ClientId c, bool connected) {
    if (c < clients_.size()) clients_[c]->on_churn(connected);
  });
  faults_->set_server_handler(
      [this](bool down) { server_->on_server_state(down); });

  // The cell's traffic generator spans its local population (frame times and
  // sizes come from the shared wl stream, so they are identical across
  // cells); each cell carries the full offered load, matching the replica
  // semantics of shard_cells > 1 documented in docs/ANALYSIS.md.
  traffic_ = std::make_unique<TrafficGenerator>(
      sim_, scenario_.traffic, span_.size(), wl_rng.split(),
      [this](const TrafficFrame& frame) { server_->on_downlink_frame(frame); });

  // Tracing is configured last (it never consumes randomness, so enabling it
  // cannot perturb the seed chain above).
  TraceMeta meta;
  meta.protocol = to_string(scenario_.protocol);
  meta.seed = scenario_.seed;
  meta.sim_time_s = scenario_.sim_time_s;
  meta.warmup_s = scenario_.warmup_s;
  meta.num_clients = scenario_.num_clients;
  sim_.trace().configure(scenario_.trace, meta);

  server_->start();
  faults_->start();
}

Simulation::~Simulation() = default;

double Simulation::client_mean_snr(Rng& rng) const {
  switch (scenario_.snr_assignment) {
    case SnrAssignment::kUniform:
      return scenario_.mean_snr_db +
             scenario_.snr_spread_db * (rng.uniform() - 0.5);
    case SnrAssignment::kPathLoss: {
      const double d = scenario_.cell.sample_distance(rng);
      return scenario_.tx_power_dbm - scenario_.pathloss.loss_db(d) -
             scenario_.noise_dbm;
    }
  }
  throw std::logic_error("client_mean_snr: unreachable");
}

Metrics Simulation::run() {
  if (ran_) throw std::logic_error("Simulation::run called twice");
  ran_ = true;
  sim_.run_until(scenario_.sim_time_s);
  sim_.trace().finalize();  // flush any trace file before metrics are read
  return collect();
}

RunStats Simulation::run_stats() const {
  RunStats rs;
  rs.cells = 1;
  rs.now_s = sim_.now();
  rs.events = sim_.events_executed();
  rs.clients = clients_.size();

  rs.sink = *sink_;
  rs.uplink_requests = uplink_->requests();

  rs.reports_sent = server_->reports_sent();
  rs.minis_sent = server_->minis_sent();
  rs.item_broadcasts = server_->item_broadcasts();
  rs.coalesced_requests = server_->coalesced_requests();
  rs.digest_bits = server_->digest_bits();
  rs.lair_deferred = server_->lair_deferred();
  rs.lair_deferral_s = server_->lair_deferral_s();
  rs.crash_suppressed = server_->crash_suppressed();
  if (const auto* hyb = dynamic_cast<const ServerHyb*>(server_.get()))
    rs.hyb_m = hyb->m_history();

  rs.ir = mac_->stats(MsgKind::kInvalidationReport);
  rs.mini = mac_->stats(MsgKind::kMiniReport);
  rs.item = mac_->stats(MsgKind::kItemData);
  rs.data = mac_->stats(MsgKind::kDownlinkData);
  rs.busy_frac_sum = mac_->busy_fraction(sim_.now());
  rs.bcast_mcs = mac_->broadcast_mcs_used();

  for (const auto& c : clients_) rs.radio_on_s += c->radio_on_time(sim_.now());

  rs.decomp = sim_.trace().decomposition();
  rs.trace_events = sim_.trace().events();
  rs.trace_dropped = sim_.trace().dropped();
  rs.faults = faults_->stats();
  rs.kernel = sim_.kernel_counters();
  return rs;
}

Metrics Simulation::collect() const { return finalize_run(scenario_, run_stats()); }

std::uint64_t Simulation::epoch_seal() const {
  Fnv1aDigest d;
  d.mix(sim_.now());
  d.mix(db_->total_updates());
  const std::uint32_t n = db_->num_items();
  for (std::uint32_t i = 0; i < n; ++i) {
    d.mix(db_->version(i));
    d.mix(db_->last_update(i));
  }
  return d.value();
}

Metrics run_scenario(const Scenario& scenario) {
  if (scenario.sharded()) return ShardedSimulation(scenario).run();
  Simulation sim(scenario);
  return sim.run();
}

}  // namespace wdc
