#include "engine/digest.hpp"

#include <bit>

#include "engine/metrics.hpp"

namespace wdc {

void Fnv1aDigest::mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xffu;
    h_ *= 0x100000001b3ull;
  }
}

void Fnv1aDigest::mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }

std::uint64_t metrics_digest(const Metrics& m) {
  Fnv1aDigest d;
  d.mix(m.seed);
  d.mix(m.sim_time_s);
  d.mix(m.measured_s);
  d.mix(m.events);
  d.mix(m.queries);
  d.mix(m.answered);
  d.mix(m.hits);
  d.mix(m.misses);
  d.mix(m.stale_serves);
  d.mix(m.dropped_queries);
  d.mix(m.hit_ratio);
  d.mix(m.mean_latency_s);
  d.mix(m.p50_latency_s);
  d.mix(m.p90_latency_s);
  d.mix(m.p99_latency_s);
  d.mix(m.mean_hit_latency_s);
  d.mix(m.mean_miss_latency_s);
  d.mix(m.uplink_requests);
  d.mix(m.uplink_per_query);
  d.mix(m.request_retries);
  d.mix(m.reports_sent);
  d.mix(m.minis_sent);
  d.mix(m.reports_heard);
  d.mix(m.reports_missed);
  d.mix(m.report_loss_rate);
  d.mix(m.cache_drops);
  d.mix(m.false_invalidations);
  d.mix(m.digests_applied);
  d.mix(m.digest_answers);
  d.mix(m.mac_busy_frac);
  d.mix(m.report_airtime_s);
  d.mix(m.item_airtime_s);
  d.mix(m.data_airtime_s);
  d.mix(m.report_overhead_frac);
  d.mix(m.data_queue_delay_s);
  d.mix(m.mean_broadcast_mcs);
  d.mix(m.report_bits);
  d.mix(m.piggyback_bits);
  d.mix(m.item_broadcasts);
  d.mix(m.coalesced_requests);
  d.mix(m.data_frames_dropped);
  d.mix(m.listen_airtime_s);
  d.mix(m.listen_airtime_per_query);
  d.mix(m.radio_on_frac);
  d.mix(m.lair_deferred);
  d.mix(m.lair_mean_deferral_s);
  d.mix(m.hyb_mean_m);
  // Deliberately NOT mixed — the machine-readable exclusion list below is
  // cross-checked against struct Metrics by `wdc_lint --check digest-purity`:
  // a new Metrics field must be mixed above or added here, never silently
  // neither (and never both).
  //
  // m.kernel: perf counters describe how the kernel did the work, not what
  // the model computed, and must not perturb digests between instrumented
  // (-DWDC_PERF_COUNTERS=ON) and stripped builds.
  //   wdc-lint: digest-exclude(kernel)
  // The trace-derived fields are excluded for the same reason: digests must
  // be bit-identical between -DWDC_TRACE=ON and OFF builds, traced or not.
  //   wdc-lint: digest-exclude(ir_wait_s, uplink_s, bcast_wait_s, airtime_s)
  //   wdc-lint: digest-exclude(trace_events, trace_dropped)
  // The fault-layer fields are likewise excluded: a disabled injector must
  // digest identically to a -DWDC_FAULTS=OFF build.
  //   wdc-lint: digest-exclude(fault_ir_drops, fault_bcast_drops)
  //   wdc-lint: digest-exclude(fault_uplink_drops, churn_events)
  //   wdc-lint: digest-exclude(churn_rejoins, recoveries, mean_recovery_s)
  //   wdc-lint: digest-exclude(stale_exposure)
  //   wdc-lint: digest-exclude(fault_corrupt_rejected, fault_corrupt_accepted)
  //   wdc-lint: digest-exclude(server_crashes, server_recoveries)
  //   wdc-lint: digest-exclude(crash_suppressed, schedule_misses)
  return d.value();
}

}  // namespace wdc
