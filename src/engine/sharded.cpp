#include "engine/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "engine/run_stats.hpp"
#include "util/check.hpp"

namespace wdc {

namespace {

std::uint32_t auto_threads(std::uint32_t execs) {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::uint32_t>(execs, hw ? hw : 1u);
}

}  // namespace

ShardedSimulation::ShardedSimulation(Scenario scenario)
    : scenario_(std::move(scenario)),
      cells_n_(scenario_.shard_cells),
      execs_(std::min(scenario_.shards, scenario_.shard_cells)),
      threads_(scenario_.shard_threads
                   ? std::min(scenario_.shard_threads, execs_)
                   : auto_threads(execs_)),
      ledger_(cells_n_, scenario_.shard_lag) {
  scenario_.validate();
}

ShardedSimulation::~ShardedSimulation() = default;

ClientSpan ShardedSimulation::cell_span(std::uint32_t c, std::uint32_t cells,
                                        std::uint32_t clients) {
  WDC_ASSERT(cells > 0 && c < cells, "cell ", c, " of ", cells);
  const std::uint32_t base = clients / cells;
  const std::uint32_t rem = clients % cells;
  const std::uint32_t begin = c * base + std::min(c, rem);
  const std::uint32_t size = base + (c < rem ? 1u : 0u);
  return ClientSpan{begin, begin + size};
}

void ShardedSimulation::run_cells(std::uint32_t t, double epoch_s,
                                  std::uint64_t epochs) {
  // Construction is the expensive part at large populations (channel
  // trajectory precompute is per-client and stays cell-local), so each
  // thread builds its own cells — in parallel with the other threads.
  for (std::uint32_t c = 0; c < cells_n_; ++c) {
    if ((c % execs_) % threads_ != t) continue;
    Scenario cs = scenario_;
    // Each cell writes its own trace file: the .wdct format carries one
    // cell's event stream, and concurrent writers must never share a sink.
    if (!cs.trace.file.empty() && cells_n_ > 1)
      cs.trace.file += ".cell" + std::to_string(c);
    cells_[c] = std::make_unique<Simulation>(
        cs, cell_span(c, cells_n_, scenario_.num_clients));
  }
  for (std::uint64_t e = 0; e < epochs; ++e) {
    for (std::uint32_t c = 0; c < cells_n_; ++c) {
      if ((c % execs_) % threads_ != t) continue;
      ledger_.begin_epoch(c, e);
      const double until =
          std::min(epoch_s * static_cast<double>(e + 1), scenario_.sim_time_s);
      cells_[c]->run_until(until);
      ledger_.complete_epoch(c, e, cells_[c]->epoch_seal());
    }
  }
  for (std::uint32_t c = 0; c < cells_n_; ++c) {
    if ((c % execs_) % threads_ != t) continue;
    cells_[c]->run_until(scenario_.sim_time_s);
    cells_[c]->simulator().trace().finalize();
  }
}

Metrics ShardedSimulation::run() {
  if (ran_) throw std::logic_error("ShardedSimulation::run called twice");
  ran_ = true;

  const double epoch_s = scenario_.proto.ir_interval_s;
  const std::uint64_t epochs = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(scenario_.sim_time_s / epoch_s)));
  cells_.resize(cells_n_);

  if (threads_ <= 1) {
    run_cells(0, epoch_s, epochs);
  } else {
    std::vector<std::exception_ptr> errors(threads_);
    std::vector<std::thread> pool;
    pool.reserve(threads_);
    for (std::uint32_t t = 0; t < threads_; ++t)
      pool.emplace_back([this, t, epoch_s, epochs, &errors] {
        try {
          run_cells(t, epoch_s, epochs);
        } catch (...) {
          errors[t] = std::current_exception();
          // Release every cell this thread owns so the surviving threads
          // don't wait forever at the barrier; the error rethrows after join.
          for (std::uint32_t c = 0; c < cells_n_; ++c)
            if ((c % execs_) % threads_ == t) ledger_.abandon(c);
        }
      });
    for (auto& th : pool) th.join();
    for (auto& err : errors)
      if (err) std::rethrow_exception(err);
  }

  // The fold runs on the collecting thread in fixed cell order 0..C-1 — the
  // float-valued Summary reductions are order-sensitive, and this ordering is
  // what keeps the digest independent of the executor/thread schedule.
  RunStats total;
  for (const auto& cell : cells_) total.merge(cell->run_stats());
  return finalize_run(scenario_, total);
}

}  // namespace wdc
