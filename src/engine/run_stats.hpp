#ifndef WDC_ENGINE_RUN_STATS_HPP
#define WDC_ENGINE_RUN_STATS_HPP

/// @file run_stats.hpp
/// Raw per-cell accumulator snapshot and the shared finalize path that turns
/// it into a Metrics record.
///
/// The split exists for the sharded core: every cell gathers a RunStats, the
/// collector folds them in cell order 0..C-1 (RunStats::merge), and ONE
/// finalize function computes every derived ratio/mean. Because the legacy
/// single-cell Simulation::collect() routes through the same
/// gather → finalize pipeline, a 1-cell run is bit-identical to the
/// pre-sharding engine by construction: merging a populated snapshot into an
/// empty one copies every accumulator bit-for-bit, and finalize evaluates the
/// exact expressions collect() used to inline.

#include <cstdint>

#include "engine/metrics.hpp"
#include "faults/fault_config.hpp"
#include "mac/broadcast_mac.hpp"
#include "proto/stats_sink.hpp"
#include "sim/kernel_counters.hpp"
#include "stats/summary.hpp"
#include "trace/trace_recorder.hpp"
#include "util/types.hpp"

namespace wdc {

struct Scenario;

/// Everything a finished cell contributes to the run's metrics, in raw
/// (pre-ratio) form so cells aggregate exactly.
struct RunStats {
  std::uint64_t cells = 0;    ///< snapshots folded in (1 per gathered cell)
  double now_s = 0.0;         ///< cell clock at gather; equal across cells
  std::uint64_t events = 0;
  std::uint64_t clients = 0;

  StatsSink sink;             ///< client-side query/report accumulators

  std::uint64_t uplink_requests = 0;

  // --- server-side counters ---
  std::uint64_t reports_sent = 0;
  std::uint64_t minis_sent = 0;
  std::uint64_t item_broadcasts = 0;
  std::uint64_t coalesced_requests = 0;
  Bits digest_bits = 0;
  std::uint64_t lair_deferred = 0;
  double lair_deferral_s = 0.0;
  std::uint64_t crash_suppressed = 0;
  Summary hyb_m;              ///< HYB adaptive-m history (empty otherwise)

  // --- MAC / downlink airtime ---
  MacKindStats ir;
  MacKindStats mini;
  MacKindStats item;
  MacKindStats data;
  double busy_frac_sum = 0.0;  ///< Σ per-cell busy fractions (mean over cells)
  Summary bcast_mcs;           ///< broadcast MCS choices

  // --- energy proxy ---
  double radio_on_s = 0.0;     ///< Σ per-client radio-on time

  // --- digest-inert instrumentation ---
  TraceDecomp decomp;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  FaultStats faults;
  KernelCounters kernel;

  /// Fold another cell's snapshot into this one. Order matters for the
  /// float-valued Summary reductions, so the collector always folds in cell
  /// index order — that is what makes the merged digest a pure function of
  /// (scenario, seed, shard map), independent of executor/thread schedule.
  void merge(const RunStats& other);
};

/// Compute the final Metrics record from a (possibly merged) snapshot. The
/// single source of truth for every derived ratio/mean — legacy and sharded
/// runs share it, so they cannot drift apart.
Metrics finalize_run(const Scenario& scenario, const RunStats& rs);

}  // namespace wdc

#endif  // WDC_ENGINE_RUN_STATS_HPP
