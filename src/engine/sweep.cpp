#include "engine/sweep.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "engine/replication.hpp"
#include "engine/simulation.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace wdc {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The scenario of one grid cell: base + variant mutation + axis value.
Scenario cell_scenario(const SweepSpec& spec, const Scenario& base,
                       std::size_t variant, std::size_t point) {
  Scenario s = base;
  if (spec.variants[variant].apply) spec.variants[variant].apply(s);
  if (spec.axis.apply) spec.axis.apply(s, spec.axis.values[point]);
  return s;
}

}  // namespace

std::vector<SweepVariant> protocol_variants(
    const std::vector<ProtocolKind>& protocols) {
  std::vector<SweepVariant> out;
  out.reserve(protocols.size());
  for (const auto p : protocols)
    out.push_back({to_string(p), [p](Scenario& s) { s.protocol = p; }});
  return out;
}

SweepAxis fault_ir_loss_axis(std::vector<double> values) {
  return {"IR loss p", std::move(values), [](Scenario& s, double v) {
            s.faults.enabled = true;
            s.faults.ir_loss = v;
          }};
}

SweepAxis fault_uplink_drop_axis(std::vector<double> values) {
  return {"uplink drop p", std::move(values), [](Scenario& s, double v) {
            s.faults.enabled = true;
            s.faults.uplink_drop = v;
          }};
}

SweepAxis fault_churn_rate_axis(std::vector<double> values) {
  return {"churn rate (1/s)", std::move(values), [](Scenario& s, double v) {
            s.faults.enabled = true;
            s.faults.churn_rate = v;
          }};
}

const SweepCell& SweepGrid::cell(std::size_t variant, std::size_t point) const {
  if (variant >= num_variants() || point >= num_points())
    throw std::out_of_range("SweepGrid::cell: index out of range");
  return cells[variant * num_points() + point];
}

ConfidenceInterval SweepGrid::ci(std::size_t variant, std::size_t point,
                                 const MetricField& field, double conf) const {
  return ci_of(cell(variant, point).reps, field, conf);
}

SweepGrid run_sweep(const SweepSpec& spec, const SweepOptions& opts,
                    const SweepProgressFn& progress) {
  const auto t0 = std::chrono::steady_clock::now();

  SweepGrid grid;
  grid.x_name = spec.axis.name;
  grid.xs = spec.axis.values;
  grid.reps = opts.reps;
  for (const auto& v : spec.variants) grid.variant_names.push_back(v.name);

  const std::size_t nv = spec.variants.size();
  const std::size_t np = spec.axis.values.size();
  const std::size_t ncells = nv * np;
  if (ncells == 0) {
    grid.wall_s = seconds_since(t0);
    return grid;
  }

  // Materialise every cell scenario and its replication seeds up front — the
  // seed derivation matches run_replications exactly (SplitMix64 fan-out from
  // the cell scenario's seed), so a sweep cell and a standalone replication
  // batch of the same scenario are bit-identical.
  std::vector<Scenario> scenarios;
  scenarios.reserve(ncells);
  grid.cells.resize(ncells);
  for (std::size_t v = 0; v < nv; ++v) {
    for (std::size_t p = 0; p < np; ++p) {
      const std::size_t c = v * np + p;
      scenarios.push_back(cell_scenario(spec, opts.base, v, p));
      SweepCell& cell = grid.cells[c];
      cell.variant = v;
      cell.point = p;
      cell.x = spec.axis.values[p];
      cell.seeds.resize(opts.reps);
      SplitMix64 seeder(scenarios.back().seed);
      for (auto& s : cell.seeds) s = seeder.next();
      cell.reps.resize(opts.reps);
    }
  }

  const std::size_t ntasks = ncells * opts.reps;
  if (ntasks == 0) {
    // reps == 0: the cells exist, with no replications to run.
    for (auto& cell : grid.cells) {
      cell.seeds.clear();
      cell.reps.clear();
    }
    grid.wall_s = seconds_since(t0);
    return grid;
  }

  if (opts.trace_every > 0 && !opts.trace_dir.empty()) {
    std::error_code ec;  // best-effort: a failed mkdir degrades to ring-only
    std::filesystem::create_directories(opts.trace_dir, ec);
  }

  unsigned threads = opts.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, ntasks));
  grid.threads_used = threads;

  // One flat work queue over every (cell, replication) task. Each task writes
  // its own pre-sized slot, so workers never contend on results; only the
  // per-cell completion countdown and the progress callback are synchronised.
  std::vector<double> task_wall(ntasks, 0.0);
  std::vector<std::atomic<unsigned>> remaining(ncells);
  for (auto& r : remaining) r.store(opts.reps, std::memory_order_relaxed);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> cells_done{0};
  std::mutex progress_mu;

  const auto worker = [&] {
    for (;;) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= ntasks) return;
      const std::size_t c = t / opts.reps;
      const std::size_t r = t % opts.reps;
      SweepCell& cell = grid.cells[c];
      Scenario sc = scenarios[c];
      sc.seed = cell.seeds[r];
      // Trace sampling rides on the already-derived seed, so enabling it can
      // never change which scenarios run or what they compute.
      if (opts.trace_every > 0 && r % opts.trace_every == 0) {
        sc.trace.enabled = true;
        if (!opts.trace_dir.empty())
          sc.trace.file = strfmt("%s/%s_v%zu_p%zu_r%zu.wdct",
                                 opts.trace_dir.c_str(), spec.key.c_str(),
                                 cell.variant, cell.point, r);
      }
      const auto rep_t0 = std::chrono::steady_clock::now();
      cell.reps[r] = run_scenario(sc);
      task_wall[t] = seconds_since(rep_t0);
      if (remaining[c].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last replication of this cell: its siblings' walls are visible now.
        for (std::size_t i = 0; i < opts.reps; ++i)
          cell.wall_s += task_wall[c * opts.reps + i];
        const std::size_t done =
            cells_done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (progress) {
          std::lock_guard<std::mutex> lock(progress_mu);
          progress(SweepProgress{done, ncells, &cell});
        }
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  grid.wall_s = seconds_since(t0);
  return grid;
}

void print_banner(const SweepSpec& spec, const SweepOptions& opts,
                  std::ostream& os) {
  os << "=== " << spec.id << ": " << spec.title << " ===\n";
  os << "(reconstructed evaluation — see EXPERIMENTS.md; " << opts.reps
     << " replications per point, " << opts.base.sim_time_s << "s simulated, "
     << opts.base.num_clients << " clients)\n\n";
}

void render_series(const SweepSpec& spec, const SweepGrid& grid,
                   std::ostream& os, const SweepRenderCtx& ctx) {
  for (const auto& series : spec.series) {
    os << series.title << ":\n";
    std::vector<std::string> cols{grid.x_name};
    for (const auto& name : grid.variant_names) cols.push_back(name);
    Table t(cols);
    for (std::size_t p = 0; p < grid.num_points(); ++p) {
      t.begin_row();
      t.cell(strfmt("%g", grid.xs[p]));
      for (std::size_t v = 0; v < grid.num_variants(); ++v) {
        const auto ci = grid.ci(v, p, series.field);
        t.cell_ci(ci.mean, ci.half_width, series.precision);
      }
    }
    t.print_text(os, "  ");
    if (!ctx.csv.empty()) {
      const std::string path = series.csv_prefix + ctx.csv;
      if (t.write_csv(path))
        os << "\n  [csv written to " << path << "]\n";
      else
        os << "\n  [FAILED to write " << path << "]\n";
    }
    os << "\n";
  }
}

void render(const SweepSpec& spec, const SweepGrid& grid, std::ostream& os,
            const SweepRenderCtx& ctx) {
  if (spec.render)
    spec.render(spec, grid, os, ctx);
  else
    render_series(spec, grid, os, ctx);
}

namespace {

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strfmt("\\u%04x", static_cast<unsigned>(c) & 0xffu);
        else
          out += c;
    }
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  return strfmt("%.17g", v);
}

/// JSON keys for KernelCounters::scheduled_by_prio, in EventPriority order.
constexpr const char* kPrioNames[kNumEventPriorities] = {
    "channel", "tx_done", "protocol", "workload", "default", "stats"};

/// Mean of one kernel counter across a cell's replications.
template <typename Field>
double kernel_mean(const std::vector<Metrics>& reps, Field field) {
  if (reps.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : reps) sum += static_cast<double>(field(m.kernel));
  return sum / static_cast<double>(reps.size());
}

/// Per-cell event-kernel telemetry block (all zero when the build strips
/// perf counters — the schema stays stable either way).
void write_kernel_block(std::ostream& os, const std::vector<Metrics>& reps) {
  os << "\"kernel\": {"
     << "\"scheduled\": "
     << json_num(kernel_mean(reps, [](const KernelCounters& k) { return k.scheduled; }))
     << ", \"fired\": "
     << json_num(kernel_mean(reps, [](const KernelCounters& k) { return k.fired; }))
     << ", \"cancelled\": "
     << json_num(kernel_mean(reps, [](const KernelCounters& k) { return k.cancelled; }))
     << ", \"dead_skipped\": "
     << json_num(kernel_mean(reps, [](const KernelCounters& k) { return k.dead_skipped; }))
     << ", \"slots_reused\": "
     << json_num(kernel_mean(reps, [](const KernelCounters& k) { return k.slots_reused; }))
     << ", \"heap_peak\": "
     << json_num(kernel_mean(reps, [](const KernelCounters& k) { return k.heap_peak; }))
     << ", \"scheduled_by_prio\": {";
  for (std::size_t p = 0; p < kNumEventPriorities; ++p) {
    os << (p ? ", " : "") << "\"" << kPrioNames[p] << "\": "
       << json_num(kernel_mean(
              reps, [p](const KernelCounters& k) { return k.scheduled_by_prio[p]; }));
  }
  os << "}}";
}

/// Mean of one Metrics double across a cell's replications.
template <typename Field>
double metrics_mean(const std::vector<Metrics>& reps, Field field) {
  if (reps.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : reps) sum += field(m);
  return sum / static_cast<double>(reps.size());
}

/// Per-cell trace-derived latency decomposition (all zero when tracing was off
/// for every replication — the schema stays stable either way).
void write_decomp_block(std::ostream& os, const std::vector<Metrics>& reps) {
  os << "\"latency_decomposition\": {"
     << "\"ir_wait_s\": "
     << json_num(metrics_mean(reps, [](const Metrics& m) { return m.ir_wait_s; }))
     << ", \"uplink_s\": "
     << json_num(metrics_mean(reps, [](const Metrics& m) { return m.uplink_s; }))
     << ", \"bcast_wait_s\": "
     << json_num(
            metrics_mean(reps, [](const Metrics& m) { return m.bcast_wait_s; }))
     << ", \"airtime_s\": "
     << json_num(metrics_mean(reps, [](const Metrics& m) { return m.airtime_s; }))
     << "}";
}

/// Per-cell fault/recovery telemetry (all zero when the fault layer is
/// disabled or compiled out — the schema stays stable either way).
void write_faults_block(std::ostream& os, const std::vector<Metrics>& reps) {
  os << "\"faults\": {"
     << "\"ir_drops\": "
     << json_num(metrics_mean(
            reps, [](const Metrics& m) { return static_cast<double>(m.fault_ir_drops); }))
     << ", \"bcast_drops\": "
     << json_num(metrics_mean(
            reps,
            [](const Metrics& m) { return static_cast<double>(m.fault_bcast_drops); }))
     << ", \"uplink_drops\": "
     << json_num(metrics_mean(
            reps,
            [](const Metrics& m) { return static_cast<double>(m.fault_uplink_drops); }))
     << ", \"churn_events\": "
     << json_num(metrics_mean(
            reps, [](const Metrics& m) { return static_cast<double>(m.churn_events); }))
     << ", \"churn_rejoins\": "
     << json_num(metrics_mean(
            reps, [](const Metrics& m) { return static_cast<double>(m.churn_rejoins); }))
     << ", \"recoveries\": "
     << json_num(metrics_mean(
            reps, [](const Metrics& m) { return static_cast<double>(m.recoveries); }))
     << ", \"mean_recovery_s\": "
     << json_num(
            metrics_mean(reps, [](const Metrics& m) { return m.mean_recovery_s; }))
     << ", \"stale_exposure\": "
     << json_num(metrics_mean(
            reps, [](const Metrics& m) { return static_cast<double>(m.stale_exposure); }))
     << ", \"corrupt_rejected\": "
     << json_num(metrics_mean(reps, [](const Metrics& m) {
          return static_cast<double>(m.fault_corrupt_rejected);
        }))
     << ", \"corrupt_accepted\": "
     << json_num(metrics_mean(reps, [](const Metrics& m) {
          return static_cast<double>(m.fault_corrupt_accepted);
        }))
     << ", \"server_crashes\": "
     << json_num(metrics_mean(reps, [](const Metrics& m) {
          return static_cast<double>(m.server_crashes);
        }))
     << ", \"server_recoveries\": "
     << json_num(metrics_mean(reps, [](const Metrics& m) {
          return static_cast<double>(m.server_recoveries);
        }))
     << ", \"crash_suppressed\": "
     << json_num(metrics_mean(reps, [](const Metrics& m) {
          return static_cast<double>(m.crash_suppressed);
        }))
     << ", \"schedule_misses\": "
     << json_num(metrics_mean(reps, [](const Metrics& m) {
          return static_cast<double>(m.schedule_misses);
        }))
     << "}";
}

}  // namespace

bool write_json(const SweepSpec& spec, const SweepOptions& opts,
                const SweepGrid& grid, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n";
  os << "  \"schema\": \"wdc.sweep.v1\",\n";
  os << "  \"key\": \"" << json_escaped(spec.key) << "\",\n";
  os << "  \"id\": \"" << json_escaped(spec.id) << "\",\n";
  os << "  \"title\": \"" << json_escaped(spec.title) << "\",\n";
  os << "  \"x_name\": \"" << json_escaped(grid.x_name) << "\",\n";
  os << "  \"reps\": " << grid.reps << ",\n";
  os << "  \"threads\": " << grid.threads_used << ",\n";
  os << "  \"wall_s\": " << json_num(grid.wall_s) << ",\n";
  os << "  \"base\": {\n";
  os << "    \"seed\": " << opts.base.seed << ",\n";
  os << "    \"sim_time_s\": " << json_num(opts.base.sim_time_s) << ",\n";
  os << "    \"warmup_s\": " << json_num(opts.base.warmup_s) << ",\n";
  os << "    \"clients\": " << opts.base.num_clients << ",\n";
  os << "    \"items\": " << opts.base.db.num_items << "\n";
  os << "  },\n";
  os << "  \"cells\": [";
  for (std::size_t c = 0; c < grid.cells.size(); ++c) {
    const SweepCell& cell = grid.cells[c];
    os << (c == 0 ? "\n" : ",\n");
    os << "    {\"variant\": \""
       << json_escaped(grid.variant_names[cell.variant]) << "\", \"x\": "
       << json_num(cell.x) << ", \"wall_s\": " << json_num(cell.wall_s)
       << ",\n     \"seeds\": [";
    for (std::size_t i = 0; i < cell.seeds.size(); ++i)
      os << (i ? ", " : "") << cell.seeds[i];
    os << "],\n     \"series\": {";
    for (std::size_t s = 0; s < spec.series.size(); ++s) {
      const auto ci = ci_of(cell.reps, spec.series[s].field);
      os << (s ? ", " : "") << "\"" << json_escaped(spec.series[s].title)
         << "\": {\"mean\": " << json_num(ci.mean) << ", \"half_width\": "
         << json_num(ci.half_width) << ", \"n\": " << ci.n << "}";
    }
    os << "},\n     ";
    write_decomp_block(os, cell.reps);
    os << ",\n     ";
    write_faults_block(os, cell.reps);
    os << ",\n     ";
    write_kernel_block(os, cell.reps);
    os << "}";
  }
  os << "\n  ]\n}\n";
  return static_cast<bool>(os);
}

}  // namespace wdc
