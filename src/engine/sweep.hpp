#ifndef WDC_ENGINE_SWEEP_HPP
#define WDC_ENGINE_SWEEP_HPP

/// @file sweep.hpp
/// Declarative sweep grids — the engine behind every reconstructed figure and
/// table (src/sweeps) and their shape-regression tests (tests/shapes).
///
/// A SweepSpec names a grid: one x-axis, a set of scenario variants (usually
/// protocols), and the metric series to extract. run_sweep() executes the full
/// (variant × point × replication) grid on ONE shared worker pool, so a
/// 5-protocol × 5-point figure keeps every core busy instead of serialising 25
/// per-cell replication batches. Results are bit-identical whatever the thread
/// count: per-cell replication seeds are derived exactly as run_replications
/// derives them (SplitMix64 from the cell scenario's seed), and cells are
/// stored in (variant, point, replication) order.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "engine/metrics.hpp"
#include "engine/scenario.hpp"
#include "stats/ci.hpp"

namespace wdc {

/// One metric extracted from a run.
using MetricField = std::function<double(const Metrics&)>;

/// One column of a grid: a named mutation of the base scenario.
struct SweepVariant {
  std::string name;                      ///< column label ("TS", "TS+AMC", …)
  std::function<void(Scenario&)> apply;  ///< may be empty (base as-is)
};

/// The usual variant set: one per protocol, labelled by to_string().
std::vector<SweepVariant> protocol_variants(
    const std::vector<ProtocolKind>& protocols);

/// The swept knob. Single-point tables use one dummy value and no apply.
struct SweepAxis {
  std::string name;                              ///< x column header ("L (s)")
  std::vector<double> values;
  std::function<void(Scenario&, double)> apply;  ///< may be empty
};

/// Fault-grid axes (src/faults): each applied value also flips faults on, so a
/// zero point still exercises the enabled-but-lossless path.
SweepAxis fault_ir_loss_axis(std::vector<double> values);
SweepAxis fault_uplink_drop_axis(std::vector<double> values);
SweepAxis fault_churn_rate_axis(std::vector<double> values);

/// One reported metric: a printed/CSV table and a JSON series.
struct SweepSeries {
  std::string title;       ///< heading above the table / JSON series key
  std::string csv_prefix;  ///< prepended to the csv path; "" = bare path
  MetricField field;
  int precision = 3;
};

struct SweepGrid;
struct SweepSpec;

/// Presentation inputs shared by the standard and custom renderers.
struct SweepRenderCtx {
  std::string csv;  ///< base CSV path; empty = don't write files
};

/// A figure/table declaration. Execution state lives in SweepGrid, not here,
/// so one spec can be run at many operating points (bench scale, test scale).
struct SweepSpec {
  std::string key;    ///< driver selector ("fig1")
  std::string id;     ///< banner id ("FIG-1")
  std::string title;  ///< banner title
  SweepAxis axis;
  std::vector<SweepVariant> variants;
  std::vector<SweepSeries> series;
  /// Spec-specific operating point applied on top of the resolved base
  /// (FIG-7's small-population fading regime, TAB-2's loaded cell, …).
  std::function<void(Scenario&)> adjust_base;
  /// Custom presentation (TAB-1's metric rows, FIG-10's paired columns);
  /// empty = the standard per-series tables of render_series().
  std::function<void(const SweepSpec&, const SweepGrid&, std::ostream&,
                     const SweepRenderCtx&)>
      render;
};

struct SweepOptions {
  unsigned reps = 3;
  unsigned threads = 0;  ///< workers shared across the whole grid; 0 = hardware
  Scenario base;
  /// Trace sampling: record a query-lifecycle trace for every k-th replication
  /// of each cell (0 = never). Sampled replications write one .wdct file into
  /// trace_dir, named <key>_v<variant>_p<point>_r<rep>.wdct. Tracing never
  /// perturbs results: seeds are derived before the trace config is applied.
  unsigned trace_every = 0;
  std::string trace_dir = "traces";
};

/// One executed (variant, point) cell.
struct SweepCell {
  std::size_t variant = 0;
  std::size_t point = 0;
  double x = 0.0;
  std::vector<std::uint64_t> seeds;  ///< per-replication seeds actually used
  std::vector<Metrics> reps;         ///< ordered by replication index
  double wall_s = 0.0;               ///< summed replication wall-clock time
};

/// Fired once per completed cell (all its replications done), serialised by an
/// internal mutex; `cell` points into the grid under construction.
struct SweepProgress {
  std::size_t cells_done = 0;
  std::size_t cells_total = 0;
  const SweepCell* cell = nullptr;
};
using SweepProgressFn = std::function<void(const SweepProgress&)>;

/// An executed grid: cells ordered by (variant, point), replications within a
/// cell ordered by index — scheduling can never reorder results.
struct SweepGrid {
  std::vector<std::string> variant_names;
  std::string x_name;
  std::vector<double> xs;
  unsigned reps = 0;
  unsigned threads_used = 1;
  double wall_s = 0.0;  ///< wall-clock of the whole grid execution
  std::vector<SweepCell> cells;

  std::size_t num_variants() const { return variant_names.size(); }
  std::size_t num_points() const { return xs.size(); }
  const SweepCell& cell(std::size_t variant, std::size_t point) const;
  /// CI of `field` over the cell's replications.
  ConfidenceInterval ci(std::size_t variant, std::size_t point,
                        const MetricField& field, double conf = 0.95) const;
};

/// Execute the grid. Empty variant/axis sets yield an empty grid; reps = 0
/// yields cells with no replications.
SweepGrid run_sweep(const SweepSpec& spec, const SweepOptions& opts,
                    const SweepProgressFn& progress = {});

/// The classic bench banner ("=== FIG-1: … ===" plus the operating point).
void print_banner(const SweepSpec& spec, const SweepOptions& opts,
                  std::ostream& os);

/// Standard presentation: per series, a "title:" heading and an aligned table
/// (x column + one column per variant, cells "mean ± hw"), with a CSV written
/// to csv_prefix + ctx.csv. Byte-compatible with the pre-engine bench output.
void render_series(const SweepSpec& spec, const SweepGrid& grid,
                   std::ostream& os, const SweepRenderCtx& ctx);

/// Dispatch to the spec's custom renderer, or render_series when absent.
void render(const SweepSpec& spec, const SweepGrid& grid, std::ostream& os,
            const SweepRenderCtx& ctx);

/// Machine-readable record of a run: spec identity, operating point, and per
/// cell the seeds, wall time, and a CI per series. False on I/O failure.
bool write_json(const SweepSpec& spec, const SweepOptions& opts,
                const SweepGrid& grid, const std::string& path);

}  // namespace wdc

#endif  // WDC_ENGINE_SWEEP_HPP
