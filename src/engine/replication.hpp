#ifndef WDC_ENGINE_REPLICATION_HPP
#define WDC_ENGINE_REPLICATION_HPP

/// @file replication.hpp
/// Independent-replication runner with thread-pool fan-out.
///
/// Each replication runs the same Scenario under a distinct seed derived from the
/// base seed via SplitMix64 — results are identical whatever the thread count
/// (per-replication state is fully isolated; see DESIGN.md §6).

#include <functional>
#include <vector>

#include "engine/metrics.hpp"
#include "engine/scenario.hpp"
#include "stats/ci.hpp"

namespace wdc {

/// Run `reps` replications of `scenario`. `threads` = 0 picks
/// hardware_concurrency (min 1). Results are ordered by replication index.
std::vector<Metrics> run_replications(const Scenario& scenario, unsigned reps,
                                      unsigned threads = 0);

/// Extract one field from every replication and form its confidence interval.
ConfidenceInterval ci_of(const std::vector<Metrics>& reps,
                         const std::function<double(const Metrics&)>& field,
                         double conf = 0.95);

/// Field-wise mean across replications (counters averaged as doubles) for the
/// fields benches report most; convenience over calling ci_of repeatedly.
Metrics mean_of(const std::vector<Metrics>& reps);

}  // namespace wdc

#endif  // WDC_ENGINE_REPLICATION_HPP
