#ifndef WDC_ENGINE_SCENARIO_HPP
#define WDC_ENGINE_SCENARIO_HPP

/// @file scenario.hpp
/// Complete description of one simulation run — the single input of the public
/// API. Field defaults define the *default operating point* used throughout
/// EXPERIMENTS.md; benches sweep one knob at a time from here.

#include <cstdint>
#include <string>

#include "channel/pathloss.hpp"
#include "channel/snr_process.hpp"
#include "faults/fault_config.hpp"
#include "mac/broadcast_mac.hpp"
#include "mac/uplink.hpp"
#include "phy/mcs.hpp"
#include "proto/protocol.hpp"
#include "trace/trace_recorder.hpp"
#include "util/config.hpp"
#include "workload/database.hpp"
#include "workload/query_gen.hpp"
#include "workload/sleep_model.hpp"
#include "workload/traffic_gen.hpp"

namespace wdc {

/// How per-client mean SNR is assigned.
enum class SnrAssignment {
  kUniform,   ///< uniform in [mean − spread/2, mean + spread/2] (sweep-friendly)
  kPathLoss,  ///< link budget: tx_power − PL(distance) − noise, uniform-area drop
};

SnrAssignment snr_assignment_from_string(const std::string& name);
std::string to_string(SnrAssignment a);

/// Which PHY rate table the cell runs.
enum class RadioTable {
  kEdge,     ///< EDGE MCS-1…9, rates scaled by `edge_timeslots`
  kWifi11b,  ///< 802.11b 1/2/5.5/11 Mb/s
};

RadioTable radio_table_from_string(const std::string& name);
std::string to_string(RadioTable r);

struct Scenario {
  std::uint64_t seed = 1;
  double sim_time_s = 4000.0;
  double warmup_s = 400.0;

  ProtocolKind protocol = ProtocolKind::kTs;
  std::uint32_t num_clients = 50;

  DatabaseConfig db;
  QueryConfig query;
  SleepConfig sleep;
  TrafficConfig traffic;
  ProtoConfig proto;
  FadingConfig fading;
  MacConfig mac;
  UplinkConfig uplink;
  /// Query-lifecycle tracing (off by default; zero-cost when WDC_TRACE=OFF).
  TraceConfig trace;
  /// Fault injection (off by default; zero-cost when WDC_FAULTS=OFF).
  FaultConfig faults;

  // --- radio geometry / link budget ---
  SnrAssignment snr_assignment = SnrAssignment::kUniform;
  double mean_snr_db = 22.0;    ///< population mean (uniform mode)
  double snr_spread_db = 12.0;  ///< uniform mode: clients span mean ± spread/2
  PathLossModel pathloss;       ///< path-loss mode
  CellGeometry cell;
  double tx_power_dbm = 21.0;
  double noise_dbm = -100.0;
  RadioTable radio = RadioTable::kEdge;
  unsigned edge_timeslots = 4;  ///< EDGE downlink timeslot bundle

  // --- sharded-cell within-run parallelism (engine/sharded.hpp) ---
  /// The shard map: number of independent sub-cells the client population is
  /// partitioned into (contiguous blocks). Part of the *scenario semantics*:
  /// each cell is a full replica system (own kernel, MAC, server, fault
  /// injector) over its client block, synchronized at IR-epoch barriers.
  /// `shard_cells=1` is exactly the legacy single-cell simulation.
  std::uint32_t shard_cells = 1;
  /// Executor shards the cells are distributed over (cell c → executor
  /// c % shards). Execution-only: results are a pure function of
  /// (scenario, seed, shard map) and independent of this knob.
  std::uint32_t shards = 1;
  /// OS threads running the executors (executor x → thread x % shard_threads;
  /// 0 = one thread per executor, capped at the hardware). Execution-only,
  /// like `shards`.
  std::uint32_t shard_threads = 0;
  /// Bounded-lag horizon in IR epochs: a cell may run at most this many
  /// epochs ahead of the slowest cell. Execution-only (any lag >= 1 admits
  /// the same per-cell event order).
  std::uint32_t shard_lag = 1;

  /// True when the run uses the sharded multi-cell core.
  bool sharded() const { return shard_cells > 1; }

  /// The MCS table the scenario's radio uses.
  McsTable make_mcs_table() const;

  /// Read overrides from a Config (key names documented in README). Unknown keys
  /// are left for the caller to report via Config::unused_keys().
  static Scenario from_config(const Config& cfg);

  /// Same, but each override lands on top of `base` — the single-source-of-
  /// truth path for harnesses whose defaults differ from Scenario's (the
  /// bench-scale operating point of sweeps::default_scenario()). Keys absent
  /// from `cfg` keep base's values exactly; no key=value round-trip.
  static Scenario from_config(const Config& cfg, const Scenario& base);

  /// Validate cross-field invariants; throws std::invalid_argument on nonsense
  /// (e.g. a TS window smaller than the report period).
  void validate() const;
};

}  // namespace wdc

#endif  // WDC_ENGINE_SCENARIO_HPP
