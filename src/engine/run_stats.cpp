#include "engine/run_stats.hpp"

#include "engine/scenario.hpp"
#include "util/check.hpp"

namespace wdc {

void RunStats::merge(const RunStats& other) {
  // All cells stop on the same epoch grid, so their clocks agree at gather
  // time; a mismatch means the barrier let a cell escape.
  WDC_CHECK(cells == 0 || now_s == other.now_s,
            "cell clocks diverged at merge: ", now_s, " vs ", other.now_s);
  now_s = other.now_s;
  cells += other.cells;
  events += other.events;
  clients += other.clients;

  sink.merge_from(other.sink);
  uplink_requests += other.uplink_requests;

  reports_sent += other.reports_sent;
  minis_sent += other.minis_sent;
  item_broadcasts += other.item_broadcasts;
  coalesced_requests += other.coalesced_requests;
  digest_bits += other.digest_bits;
  lair_deferred += other.lair_deferred;
  lair_deferral_s += other.lair_deferral_s;
  crash_suppressed += other.crash_suppressed;
  hyb_m.merge(other.hyb_m);

  ir.merge_from(other.ir);
  mini.merge_from(other.mini);
  item.merge_from(other.item);
  data.merge_from(other.data);
  busy_frac_sum += other.busy_frac_sum;
  bcast_mcs.merge(other.bcast_mcs);

  radio_on_s += other.radio_on_s;

  decomp.ir_wait_s += other.decomp.ir_wait_s;
  decomp.uplink_s += other.decomp.uplink_s;
  decomp.bcast_wait_s += other.decomp.bcast_wait_s;
  decomp.airtime_s += other.decomp.airtime_s;
  decomp.answers += other.decomp.answers;
  trace_events += other.trace_events;
  trace_dropped += other.trace_dropped;
  faults.merge_from(other.faults);
  kernel.merge_from(other.kernel);
}

Metrics finalize_run(const Scenario& scenario, const RunStats& rs) {
  Metrics m;
  m.seed = scenario.seed;
  m.sim_time_s = rs.now_s;
  m.measured_s = rs.now_s - scenario.warmup_s;
  m.events = rs.events;

  const StatsSink& s = rs.sink;
  m.queries = s.queries();
  m.answered = s.answered();
  m.hits = s.hits();
  m.misses = s.misses();
  m.stale_serves = s.stale_serves();
  m.dropped_queries = s.dropped();
  m.hit_ratio = s.hit_ratio();
  m.mean_latency_s = s.latency().mean();
  m.p50_latency_s = s.latency_hist().quantile(0.50);
  m.p90_latency_s = s.latency_hist().quantile(0.90);
  m.p99_latency_s = s.latency_hist().quantile(0.99);
  m.mean_hit_latency_s = s.hit_latency().mean();
  m.mean_miss_latency_s = s.miss_latency().mean();

  m.uplink_requests = rs.uplink_requests;
  m.uplink_per_query =
      m.answered ? static_cast<double>(m.uplink_requests) /
                       static_cast<double>(m.answered)
                 : 0.0;
  m.request_retries = s.request_retries();

  m.reports_sent = rs.reports_sent;
  m.minis_sent = rs.minis_sent;
  m.reports_heard = s.reports_heard();
  m.reports_missed = s.reports_missed();
  const auto offered = m.reports_heard + m.reports_missed;
  m.report_loss_rate =
      offered ? static_cast<double>(m.reports_missed) / static_cast<double>(offered)
              : 0.0;
  m.cache_drops = s.cache_drops();
  m.false_invalidations = s.false_invalidations();
  m.digests_applied = s.digests_applied();
  m.digest_answers = s.digest_answers();

  // Mean of the per-cell busy fractions: each cell's MAC covers the same
  // wall of simulated time, so the unweighted mean is the population figure.
  // At one cell this divides by 1.0 — bit-exact with the legacy path.
  m.mac_busy_frac =
      rs.cells ? rs.busy_frac_sum / static_cast<double>(rs.cells) : 0.0;
  m.report_airtime_s = rs.ir.airtime_s + rs.mini.airtime_s;
  m.item_airtime_s = rs.item.airtime_s;
  m.data_airtime_s = rs.data.airtime_s;
  m.report_overhead_frac =
      rs.now_s > 0.0 ? m.report_airtime_s / rs.now_s : 0.0;
  m.data_queue_delay_s = rs.data.queue_delay.mean();
  m.mean_broadcast_mcs = rs.bcast_mcs.mean();
  m.report_bits = rs.ir.bits + rs.mini.bits;
  m.piggyback_bits = rs.digest_bits;
  m.item_broadcasts = rs.item_broadcasts;
  m.coalesced_requests = rs.coalesced_requests;
  m.data_frames_dropped = rs.data.dropped;

  m.listen_airtime_s = s.listen_airtime_s();
  m.listen_airtime_per_query =
      m.answered ? m.listen_airtime_s / static_cast<double>(m.answered) : 0.0;
  if (rs.clients > 0 && rs.now_s > 0.0)
    m.radio_on_frac = rs.radio_on_s / (rs.now_s * static_cast<double>(rs.clients));

  m.lair_deferred = rs.lair_deferred;
  m.lair_mean_deferral_s =
      m.lair_deferred
          ? rs.lair_deferral_s / static_cast<double>(m.lair_deferred)
          : 0.0;
  m.hyb_mean_m = rs.hyb_m.mean();

  // Latency decomposition (zero when tracing is off or compiled out). Means
  // over counted answered queries; excluded from digests like m.kernel.
  if (rs.decomp.answers > 0) {
    const double n = static_cast<double>(rs.decomp.answers);
    m.ir_wait_s = rs.decomp.ir_wait_s / n;
    m.uplink_s = rs.decomp.uplink_s / n;
    m.bcast_wait_s = rs.decomp.bcast_wait_s / n;
    m.airtime_s = rs.decomp.airtime_s / n;
  }
  m.trace_events = rs.trace_events;
  m.trace_dropped = rs.trace_dropped;

  // Fault/recovery telemetry (all zero when the layer is disabled or compiled
  // out). Excluded from digests like m.kernel and the decomposition means.
  m.fault_ir_drops = rs.faults.ir_drops;
  m.fault_bcast_drops = rs.faults.bcast_drops;
  m.fault_uplink_drops = rs.faults.uplink_drops;
  m.churn_events = rs.faults.churn_events;
  m.churn_rejoins = rs.faults.rejoins;
  m.recoveries = rs.faults.recoveries;
  m.mean_recovery_s =
      rs.faults.recoveries
          ? rs.faults.recovery_time_s / static_cast<double>(rs.faults.recoveries)
          : 0.0;
  m.stale_exposure = rs.faults.stale_exposure;
  m.fault_corrupt_rejected = rs.faults.corrupt_rejected;
  m.fault_corrupt_accepted = rs.faults.corrupt_accepted;
  m.server_crashes = rs.faults.server_crashes;
  m.server_recoveries = rs.faults.server_recoveries;
  m.crash_suppressed = rs.crash_suppressed;
  m.schedule_misses = rs.faults.schedule_misses;

  m.kernel = rs.kernel;
  return m;
}

}  // namespace wdc
