#include "engine/epoch_ledger.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace wdc {

EpochLedger::EpochLedger(std::uint32_t cells, std::uint32_t lag_epochs)
    : completed_(cells, 0), lag_(lag_epochs) {
  if (cells == 0) throw std::invalid_argument("EpochLedger: cells >= 1");
  if (lag_epochs == 0)
    throw std::invalid_argument("EpochLedger: lag >= 1 (0 would deadlock the "
                                "first epoch)");
}

std::uint64_t EpochLedger::min_completed_locked() const {
  return *std::min_element(completed_.begin(), completed_.end());
}

std::uint64_t EpochLedger::min_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_completed_locked();
}

std::uint64_t EpochLedger::completed(std::uint32_t cell) const {
  std::lock_guard<std::mutex> lock(mu_);
  WDC_ASSERT(cell < completed_.size(), "cell ", cell, " of ", completed_.size());
  return completed_[cell];
}

bool EpochLedger::admissible(std::uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch <= min_completed_locked() + lag_;
}

void EpochLedger::begin_epoch(std::uint32_t cell, std::uint64_t epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  WDC_ASSERT(cell < completed_.size(), "cell ", cell, " of ", completed_.size());
  WDC_CHECK(epoch == completed_[cell], "cell ", cell, " began epoch ", epoch,
            " out of order (", completed_[cell], " completed)");
  // Waits only on strictly earlier epochs of other cells, which every thread
  // finishes in bounded work — progress, never wall-clock, so the wait is
  // deadlock-free by construction (see docs/ANALYSIS.md).
  cv_.wait(lock, [&] { return epoch <= min_completed_locked() + lag_; });
}

void EpochLedger::complete_epoch(std::uint32_t cell, std::uint64_t epoch,
                                 std::uint64_t seal) {
  std::lock_guard<std::mutex> lock(mu_);
  WDC_ASSERT(cell < completed_.size(), "cell ", cell, " of ", completed_.size());
  WDC_CHECK(epoch == completed_[cell], "cell ", cell, " completed epoch ",
            epoch, " out of order (", completed_[cell], " completed)");
  if (seals_.size() <= epoch) seals_.resize(epoch + 1);
  Seal& s = seals_[epoch];
  if (!s.sealed) {
    s.sealed = true;
    s.value = seal;
    s.sealer = cell;
  } else {
    WDC_CHECK(s.value == seal, "cell ", cell,
              " diverged from the sealed report stream at epoch ", epoch,
              " (sealed by cell ", s.sealer, ")");
  }
  completed_[cell] = epoch + 1;
  cv_.notify_all();
}

void EpochLedger::abandon(std::uint32_t cell) {
  std::lock_guard<std::mutex> lock(mu_);
  WDC_ASSERT(cell < completed_.size(), "cell ", cell, " of ", completed_.size());
  completed_[cell] = std::numeric_limits<std::uint64_t>::max();
  cv_.notify_all();
}

std::uint64_t EpochLedger::consume_seal(std::uint32_t cell,
                                        std::uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  WDC_ASSERT(cell < completed_.size(), "cell ", cell, " of ", completed_.size());
  WDC_CHECK(epoch < completed_[cell], "cell ", cell, " consumed epoch ", epoch,
            " sealed at/after its lag horizon (", completed_[cell],
            " completed)");
  if (epoch >= seals_.size() || !seals_[epoch].sealed) return 0;
  return seals_[epoch].value;
}

}  // namespace wdc
