#ifndef WDC_ENGINE_EPOCH_LEDGER_HPP
#define WDC_ENGINE_EPOCH_LEDGER_HPP

/// @file epoch_ledger.hpp
/// The bounded-lag barrier of the sharded core.
///
/// Cells step through IR epochs in order. Before simulating epoch `e` a cell
/// calls begin_epoch(cell, e), which blocks until `e` is within `lag` epochs
/// of the slowest cell — with the default lag of 1, a cell may run at most
/// one epoch ahead. After finishing `e` it calls complete_epoch with its
/// content seal (the digest of the authoritative database state every
/// broadcast report derives from): the first cell to arrive seals the epoch,
/// and every later cell is verified against that seal (WDC_CHECK), proving
/// all replica cells observed the identical report-content stream.
///
/// consume_seal enforces the lag-horizon contract: a cell may only read seals
/// of epochs it has fully completed — consuming content sealed at or beyond
/// its own horizon is a WDC_CHECK violation (the `-L scale` death test).
///
/// Thread-safety: all methods are safe to call from any executor thread. The
/// wait is purely on simulation progress, never wall-clock (no sleeps — the
/// lint determinism fence stays intact).

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace wdc {

class EpochLedger {
 public:
  EpochLedger(std::uint32_t cells, std::uint32_t lag_epochs);

  EpochLedger(const EpochLedger&) = delete;
  EpochLedger& operator=(const EpochLedger&) = delete;

  std::uint32_t cells() const { return static_cast<std::uint32_t>(completed_.size()); }
  std::uint32_t lag() const { return lag_; }

  /// Block until `cell` may enter `epoch` (epoch <= slowest cell + lag).
  /// Epochs must be begun in order, 0,1,2,… per cell.
  void begin_epoch(std::uint32_t cell, std::uint64_t epoch);

  /// Non-blocking admission probe (what begin_epoch waits on); exposed for
  /// the barrier property tests.
  bool admissible(std::uint64_t epoch) const;

  /// Publish `cell`'s content seal for a finished `epoch`. First publisher
  /// seals; later publishers must match bit-for-bit (WDC_CHECK) — a mismatch
  /// means the replica report streams diverged.
  void complete_epoch(std::uint32_t cell, std::uint64_t epoch, std::uint64_t seal);

  /// Sealed content of `epoch`, read by `cell`. WDC_CHECK: only epochs the
  /// cell has fully completed are behind its lag horizon and observable.
  std::uint64_t consume_seal(std::uint32_t cell, std::uint64_t epoch) const;

  /// Epochs completed by the slowest cell.
  std::uint64_t min_completed() const;

  /// Epochs completed by `cell` (its lag horizon).
  std::uint64_t completed(std::uint32_t cell) const;

  /// Mark `cell` as never blocking anyone again (its executor died on an
  /// exception). Keeps the surviving threads from waiting forever on a cell
  /// that will not progress; the owning thread's error is rethrown after join.
  void abandon(std::uint32_t cell);

 private:
  std::uint64_t min_completed_locked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Per cell: number of epochs fully completed (== the epoch it runs next).
  std::vector<std::uint64_t> completed_;
  struct Seal {
    bool sealed = false;
    std::uint64_t value = 0;
    std::uint32_t sealer = 0;  ///< cell that arrived first (diagnostics)
  };
  std::vector<Seal> seals_;
  std::uint32_t lag_;
};

}  // namespace wdc

#endif  // WDC_ENGINE_EPOCH_LEDGER_HPP
