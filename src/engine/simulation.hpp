#ifndef WDC_ENGINE_SIMULATION_HPP
#define WDC_ENGINE_SIMULATION_HPP

/// @file simulation.hpp
/// The top of the public API: build a full system from a Scenario and run it.
///
///   Scenario sc;                       // or Scenario::from_config(cfg)
///   sc.protocol = ProtocolKind::kHyb;
///   Simulation sim(sc);
///   Metrics m = sim.run();
///
/// A Simulation owns every component (kernel, channel processes, PHY/MAC, server
/// database, protocols, workload generators) wired exactly as DESIGN.md describes.
/// Accessors expose the internals for white-box tests.

#include <memory>
#include <vector>

#include "engine/metrics.hpp"
#include "engine/run_stats.hpp"
#include "engine/scenario.hpp"
#include "faults/fault_injector.hpp"
#include "mac/broadcast_mac.hpp"
#include "mac/uplink.hpp"
#include "phy/mcs.hpp"
#include "proto/factory.hpp"
#include "proto/stats_sink.hpp"
#include "sim/simulator.hpp"
#include "workload/database.hpp"
#include "workload/query_gen.hpp"
#include "workload/sleep_model.hpp"
#include "workload/traffic_gen.hpp"

namespace wdc {

/// Contiguous block of global client indices one cell simulates (sharded
/// runs; the legacy constructor uses the full [0, num_clients) span).
struct ClientSpan {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;  ///< one past the last client
  std::uint32_t size() const { return end - begin; }
};

class Simulation {
 public:
  explicit Simulation(Scenario scenario);

  /// Build one cell of a sharded run: only clients in `span` exist here, but
  /// every per-client RNG stream is derived at its GLOBAL index — the seed
  /// chain draws (and discards) for out-of-span clients in exactly the legacy
  /// order, so client g's randomness is the same no matter which cell owns it
  /// and the full span reproduces the legacy construction bit-for-bit.
  Simulation(Scenario scenario, ClientSpan span);

  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Run to scenario.sim_time_s and collect metrics. Call once.
  Metrics run();

  /// Advance the clock without finishing (incremental runs for tests/examples
  /// and the sharded core's epoch stepping).
  void run_until(SimTime t) { sim_.run_until(t); }
  /// Collect metrics for the interval simulated so far.
  Metrics collect() const;

  /// Raw accumulator snapshot (the sharded core folds one per cell, in cell
  /// order, then calls finalize_run — see run_stats.hpp).
  RunStats run_stats() const;

  /// Digest of the authoritative database state (update count, per-item
  /// versions and update times) plus the clock — the content every broadcast
  /// report derives from. Cells publish it at each epoch barrier; the ledger
  /// seals the first copy and WDC_CHECKs the rest against it, proving all
  /// cells observed the identical report-content stream.
  std::uint64_t epoch_seal() const;

  // --- white-box accessors ---
  Simulator& simulator() { return sim_; }
  BroadcastMac& mac() { return *mac_; }
  Database& database() { return *db_; }
  ServerProtocol& server() { return *server_; }
  ClientProtocol& client(std::size_t i) { return *clients_.at(i); }
  std::size_t num_clients() const { return clients_.size(); }
  const StatsSink& sink() const { return *sink_; }
  const Scenario& scenario() const { return scenario_; }
  const FaultInjector& faults() const { return *faults_; }
  const ClientSpan& span() const { return span_; }
  /// Global index of local client `i` (cells address clients locally).
  std::uint32_t global_client_id(std::uint32_t i) const { return span_.begin + i; }

 private:
  double client_mean_snr(Rng& rng) const;

  Scenario scenario_;
  ClientSpan span_;
  Simulator sim_;
  McsTable table_;
  std::unique_ptr<BroadcastMac> mac_;
  std::unique_ptr<UplinkChannel> uplink_;
  std::unique_ptr<FaultInjector> faults_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<StatsSink> sink_;
  std::unique_ptr<ServerProtocol> server_;
  std::vector<std::unique_ptr<SnrProcess>> links_;
  std::vector<std::unique_ptr<SleepModel>> sleeps_;
  std::vector<std::unique_ptr<ClientProtocol>> clients_;
  std::vector<std::unique_ptr<QueryGenerator>> queries_;
  std::unique_ptr<TrafficGenerator> traffic_;
  bool ran_ = false;
};

/// One-call convenience: build, run, return metrics.
Metrics run_scenario(const Scenario& scenario);

}  // namespace wdc

#endif  // WDC_ENGINE_SIMULATION_HPP
