/// FIG-9 — Energy proxy: client listen-airtime per answered query, as the IR
/// interval varies.
///
/// Expected shape: longer intervals mean less report airtime but longer waits
/// (during which awake clients keep listening to item/data traffic), so the
/// energy per query exhibits the classic U/monotone trade-off. SIG pays the
/// most (big fixed reports); HYB's digests come almost free (they ride on
/// frames clients would have received anyway).

#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

SweepSpec fig9() {
  SweepSpec s;
  s.key = "fig9";
  s.id = "FIG-9";
  s.title = "listen airtime per query (energy proxy)";
  s.axis = {"L (s)",
            {5.0, 10.0, 20.0, 40.0},
            [](Scenario& sc, double L) { sc.proto.ir_interval_s = L; }};
  s.variants = protocol_variants({ProtocolKind::kTs, ProtocolKind::kSig,
                                  ProtocolKind::kUir, ProtocolKind::kHyb});
  s.series = {{"listen airtime per answered query (s)", "",
               [](const Metrics& m) { return m.listen_airtime_per_query; }, 4},
              {"report airtime fraction of the downlink", "overhead_",
               [](const Metrics& m) { return m.report_overhead_frac; }, 5}};
  return s;
}

}  // namespace wdc::sweeps
