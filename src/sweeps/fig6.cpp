/// FIG-6 — The *link adaptation* axis: performance vs population mean SNR, with
/// adaptive MCS (AMC) against the fixed-MCS ablation.
///
/// Expected shape: with AMC, latency falls smoothly as SNR rises (rate tracks
/// channel); with a fixed middle MCS, low-SNR cells suffer mass report/item
/// loss (left end blows up) while high-SNR cells waste capacity (flattening
/// above the AMC curve). Report loss rate falls with SNR for all variants,
/// LAIR's sitting below TS at every point.

#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

namespace {

SweepVariant system_variant(const char* name, ProtocolKind kind,
                            bool adaptive) {
  return {name, [kind, adaptive](Scenario& sc) {
            sc.protocol = kind;
            sc.mac.amc.adaptive = adaptive;
            sc.mac.amc.fixed_mcs = 4;  // MCS-5
          }};
}

}  // namespace

SweepSpec fig6() {
  SweepSpec s;
  s.key = "fig6";
  s.id = "FIG-6";
  s.title = "impact of mean SNR and link adaptation";
  s.axis = {"mean SNR (dB)",
            {10.0, 14.0, 18.0, 22.0, 26.0, 30.0},
            [](Scenario& sc, double snr) { sc.mean_snr_db = snr; }};
  // Three system variants, all running TS content, plus LAIR:
  //   TS+AMC, TS+fixed MCS-5, LAIR(+AMC).
  s.variants = {system_variant("TS+AMC", ProtocolKind::kTs, true),
                system_variant("TS+MCS5", ProtocolKind::kTs, false),
                system_variant("LAIR+AMC", ProtocolKind::kLair, true)};
  s.series = {{"mean query latency (s)", "latency_",
               [](const Metrics& m) { return m.mean_latency_s; }, 2},
              {"invalidation report loss rate", "loss_",
               [](const Metrics& m) { return m.report_loss_rate; }, 4}};
  return s;
}

}  // namespace wdc::sweeps
