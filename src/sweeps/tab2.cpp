/// TAB-2 — Ablation of HYB: remove each mechanism in turn and measure the cost.
///
///   HYB        full hybrid (LAIR sliding + piggyback digests + adaptive m)
///   −slide     deferral window = 0 (reports on the nominal grid)
///   −digest    piggybacking off (pig capacity 0 ⇒ digests never attach? —
///              realised as UIR-with-sliding: compare against UIR instead)
///   −adaptm    m pinned to 1 (full reports only + digests)
///
/// Realisation notes: "−digest" is UIR + LAIR-style sliding ≈ LAIR with minis;
/// the closest runnable configuration is plain UIR (no slide, no digest) and
/// LAIR (slide, no digest, no minis) — both included for triangulation.

#include <ostream>

#include "stats/table.hpp"
#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

namespace {

/// One row per ablation variant, one column per metric.
void render_tab2(const SweepSpec& spec, const SweepGrid& grid, std::ostream& os,
                 const SweepRenderCtx& ctx) {
  std::vector<std::string> cols{"variant"};
  for (const auto& series : spec.series) cols.push_back(series.title);
  Table t(cols);
  for (std::size_t v = 0; v < grid.num_variants(); ++v) {
    t.begin_row();
    t.cell(grid.variant_names[v]);
    for (const auto& series : spec.series) {
      const auto ci = grid.ci(v, 0, series.field);
      t.cell_ci(ci.mean, ci.half_width, series.precision);
    }
  }
  t.print_text(os, "  ");
  if (!ctx.csv.empty() && t.write_csv(ctx.csv))
    os << "\n  [csv written to " << ctx.csv << "]\n";
  os << "\n";
}

}  // namespace

SweepSpec tab2() {
  SweepSpec s;
  s.key = "tab2";
  s.id = "TAB-2";
  s.title = "HYB ablation";
  // A regime where all three mechanisms matter: moderate SNR, real traffic.
  s.adjust_base = [](Scenario& sc) {
    sc.mean_snr_db = 16.0;
    sc.traffic.offered_bps = 25e3;
  };
  s.axis = {"point", {0.0}, nullptr};
  s.variants = {
      {"HYB (full)", [](Scenario& sc) { sc.protocol = ProtocolKind::kHyb; }},
      {"HYB -slide",
       [](Scenario& sc) {
         sc.protocol = ProtocolKind::kHyb;
         sc.proto.lair_window_s = 0.0;
       }},
      {"HYB -adaptm",
       [](Scenario& sc) {
         sc.protocol = ProtocolKind::kHyb;
         sc.proto.hyb_target_gap_s = sc.proto.ir_interval_s;  // needed=1 ⇒ m=1
       }},
      {"UIR (no slide/digest)",
       [](Scenario& sc) { sc.protocol = ProtocolKind::kUir; }},
      {"LAIR (slide only)",
       [](Scenario& sc) { sc.protocol = ProtocolKind::kLair; }},
      {"PIG (digest only)",
       [](Scenario& sc) { sc.protocol = ProtocolKind::kPig; }},
  };
  s.series = {{"latency (s)", "",
               [](const Metrics& m) { return m.mean_latency_s; }, 2},
              {"p90 (s)", "", [](const Metrics& m) { return m.p90_latency_s; },
               2},
              {"hit ratio", "", [](const Metrics& m) { return m.hit_ratio; },
               3},
              {"report loss", "",
               [](const Metrics& m) { return m.report_loss_rate; }, 4},
              {"signalling kbit/s", "",
               [](const Metrics& m) {
                 return (static_cast<double>(m.report_bits) +
                         static_cast<double>(m.piggyback_bits)) /
                        m.measured_s / 1000.0;
               },
               2}};
  s.render = render_tab2;
  return s;
}

}  // namespace wdc::sweeps
