#ifndef WDC_SWEEPS_SWEEPS_HPP
#define WDC_SWEEPS_SWEEPS_HPP

/// @file sweeps.hpp
/// The reconstructed evaluation as data: every figure/table of EXPERIMENTS.md
/// is one SweepSpec registration, executed by the shared grid engine
/// (engine/sweep.hpp). The wdc_bench driver runs them at the bench-scale
/// operating point; the shape-regression tests (tests/shapes) re-instantiate
/// the very same specs at a scaled-down point and assert the qualitative
/// claims.

#include <string>
#include <vector>

#include "engine/sweep.hpp"

namespace wdc {

class Config;

namespace sweeps {

/// Bench-scale default operating point: small enough that a full sweep
/// finishes in tens of seconds on one core, large enough that orderings are
/// stable. The single source of truth for every harness default.
Scenario default_scenario();

/// reps/threads plus the base scenario with `cfg` overrides applied — each
/// override lands exactly once, via Scenario::from_config on top of
/// default_scenario() (no intermediate key=value round-trip).
SweepOptions options_from_config(const Config& cfg);

/// Every registered figure/table sweep, in EXPERIMENTS.md order.
const std::vector<SweepSpec>& all();

/// Find a spec by driver key ("fig1" … "fig10", "tab1" … "tab3").
const SweepSpec* find(const std::string& key);

// One maker per reconstructed figure/table; registry.cpp assembles them.
SweepSpec fig1();   ///< latency vs IR interval L
SweepSpec fig2();   ///< hit ratio vs update rate
SweepSpec fig3();   ///< latency & hit ratio vs query rate
SweepSpec fig4();   ///< signalling overhead vs update rate
SweepSpec fig5();   ///< impact of downlink traffic load
SweepSpec fig6();   ///< impact of mean SNR and link adaptation
SweepSpec fig7();   ///< LAIR gain vs Doppler
SweepSpec fig8();   ///< impact of client disconnection (sleep)
SweepSpec fig9();   ///< listen airtime per query (energy proxy)
SweepSpec fig10();  ///< selective tuning: radio-on time vs latency
SweepSpec figf();   ///< resilience vs injected IR loss (fault layer)
SweepSpec tab1();   ///< protocol summary at the default operating point
SweepSpec tab2();   ///< HYB ablation
SweepSpec tab3();   ///< IR schemes vs non-IR baselines

}  // namespace sweeps
}  // namespace wdc

#endif  // WDC_SWEEPS_SWEEPS_HPP
