/// FIG-4 — Signalling overhead vs update rate: uplink requests per query and
/// report bits on the downlink.
///
/// Expected shape: requests/query grow with update rate for every scheme (more
/// invalidations ⇒ more misses). Report bits grow linearly for TS/AT/UIR
/// (entries per report ∝ updates), stay FLAT for SIG (fixed signature budget —
/// the two curves must cross), and grow for PIG/HYB via digest bits.

#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

SweepSpec fig4() {
  SweepSpec s;
  s.key = "fig4";
  s.id = "FIG-4";
  s.title = "signalling overhead vs update rate";
  s.axis = {"updates/s",
            {0.1, 0.5, 1.0, 2.0, 5.0},
            [](Scenario& sc, double u) { sc.db.update_rate = u; }};
  s.variants = protocol_variants({ProtocolKind::kTs, ProtocolKind::kSig,
                                  ProtocolKind::kUir, ProtocolKind::kHyb});
  s.series = {{"uplink requests per answered query", "uplink_",
               [](const Metrics& m) { return m.uplink_per_query; }, 3},
              {"signalling load on the downlink (kbit/s, reports + digests)",
               "bits_",
               [](const Metrics& m) {
                 return (static_cast<double>(m.report_bits) +
                         static_cast<double>(m.piggyback_bits)) /
                        m.measured_s / 1000.0;
               },
               3}};
  return s;
}

}  // namespace wdc::sweeps
