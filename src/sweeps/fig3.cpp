/// FIG-3 — Latency and hit ratio vs per-client query rate.
///
/// Expected shape: hit ratio *rises* with query rate (more re-references
/// between updates), so latency falls slightly until the miss traffic loads the
/// downlink, after which item-queueing pushes latency back up.

#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

SweepSpec fig3() {
  SweepSpec s;
  s.key = "fig3";
  s.id = "FIG-3";
  s.title = "latency & hit ratio vs per-client query rate";
  s.axis = {"q/s/client",
            {0.02, 0.05, 0.1, 0.2, 0.4},
            [](Scenario& sc, double q) { sc.query.rate = q; }};
  s.variants = protocol_variants(
      {ProtocolKind::kTs, ProtocolKind::kUir, ProtocolKind::kHyb});
  s.series = {{"mean query latency (s)", "latency_",
               [](const Metrics& m) { return m.mean_latency_s; }, 3},
              {"cache hit ratio", "hits_",
               [](const Metrics& m) { return m.hit_ratio; }, 4}};
  return s;
}

}  // namespace wdc::sweeps
