/// TAB-3 — IR schemes against the non-IR anchors (NC, PER, BS).
///
/// Expected shape: NC has the lowest latency on an idle channel but the highest
/// uplink cost and zero hit ratio, and it saturates the downlink first as query
/// load grows. PER matches IR hit ratios with sub-second validation latency but
/// pays one uplink message per read — the per-read cost that IR broadcasting
/// amortises away (watch uplink msgs/query). BS tracks TS with a fixed ~2N-bit
/// report and a bigger disconnection window. CBL (stateful leases + callbacks)
/// answers leased reads with ZERO wait — and is the only column whose `stale`
/// cell is non-zero under fading/sleep: the measured consistency violations
/// that motivate the stateless IR family.

#include <ostream>

#include "stats/table.hpp"
#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

namespace {

/// One row per protocol; the stale column is a plain count, not a CI.
void render_tab3(const SweepSpec& spec, const SweepGrid& grid, std::ostream& os,
                 const SweepRenderCtx& ctx) {
  std::vector<std::string> cols{"protocol"};
  for (const auto& series : spec.series) cols.push_back(series.title);
  Table t(cols);
  for (std::size_t v = 0; v < grid.num_variants(); ++v) {
    t.begin_row();
    t.cell(grid.variant_names[v]);
    for (const auto& series : spec.series) {
      const auto ci = grid.ci(v, 0, series.field);
      if (series.title == "stale")
        t.cell(ci.mean, series.precision);
      else
        t.cell_ci(ci.mean, ci.half_width, series.precision);
    }
  }
  t.print_text(os, "  ");
  if (!ctx.csv.empty() && t.write_csv(ctx.csv))
    os << "\n  [csv written to " << ctx.csv << "]\n";
  os << "\n";
}

}  // namespace

SweepSpec tab3() {
  SweepSpec s;
  s.key = "tab3";
  s.id = "TAB-3";
  s.title = "IR schemes vs non-IR baselines";
  s.axis = {"point", {0.0}, nullptr};
  s.variants = protocol_variants({ProtocolKind::kNc, ProtocolKind::kPer,
                                  ProtocolKind::kCbl, ProtocolKind::kBs,
                                  ProtocolKind::kTs, ProtocolKind::kUir,
                                  ProtocolKind::kHyb});
  s.series = {{"latency (s)", "",
               [](const Metrics& m) { return m.mean_latency_s; }, 2},
              {"hit ratio", "", [](const Metrics& m) { return m.hit_ratio; },
               3},
              {"uplink msg/query", "",
               [](const Metrics& m) { return m.uplink_per_query; }, 3},
              {"report kbit/s", "",
               [](const Metrics& m) {
                 return (static_cast<double>(m.report_bits) +
                         static_cast<double>(m.piggyback_bits)) /
                        m.measured_s / 1000.0;
               },
               2},
              {"MAC busy", "",
               [](const Metrics& m) { return m.mac_busy_frac; }, 3},
              {"stale", "",
               [](const Metrics& m) {
                 return static_cast<double>(m.stale_serves);
               },
               0}};
  s.render = render_tab3;
  return s;
}

}  // namespace wdc::sweeps
