/// FIG-7 — Effect of channel coherence (Doppler) on LAIR's deferral gain.
///
/// Expected shape: at low Doppler (slow fading, long coherence) deferring a
/// report can outwait a fade, so LAIR cuts report loss markedly below TS; as
/// Doppler grows the channel decorrelates within the probe step and the gain
/// shrinks toward zero (the channel seen at emission is uncorrelated with the
/// probe). This is the ablation that justifies the deferral window.

#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

SweepSpec fig7() {
  SweepSpec s;
  s.key = "fig7";
  s.id = "FIG-7";
  s.title = "LAIR gain vs Doppler (channel coherence)";
  // The regime where sliding matters: a small listener population covered at
  // the minimum (the percentile reference tracks individual fades rather than
  // averaging them away), low SNR, and a deferral window that outwaits a fade.
  s.adjust_base = [](Scenario& sc) {
    sc.num_clients = 8;
    sc.mac.broadcast_percentile = 0.0;
    sc.mean_snr_db = 12.0;
    sc.snr_spread_db = 4.0;
    sc.proto.lair_window_s = 8.0;
    sc.proto.lair_min_snr_db = 7.0;
  };
  s.axis = {"doppler Hz",
            {0.5, 1.5, 4.0, 10.0, 30.0},
            [](Scenario& sc, double fd) { sc.fading.doppler_hz = fd; }};
  s.variants = protocol_variants({ProtocolKind::kTs, ProtocolKind::kLair});
  s.series = {{"invalidation report loss rate", "loss_",
               [](const Metrics& m) { return m.report_loss_rate; }, 4},
              {"mean query latency (s)", "latency_",
               [](const Metrics& m) { return m.mean_latency_s; }, 3}};
  return s;
}

}  // namespace wdc::sweeps
