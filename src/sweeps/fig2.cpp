/// FIG-2 — Cache hit ratio vs server update rate.
///
/// Expected shape: all schemes decay monotonically as updates invalidate cached
/// copies faster than clients re-reference them. AT sits below TS (drops under
/// any report loss); SIG tracks TS minus its false-invalidation tax; the digest
/// schemes match TS (hit ratio is governed by invalidation, which they do not
/// change) — their win is latency, not hit ratio (FIG-1).

#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

SweepSpec fig2() {
  SweepSpec s;
  s.key = "fig2";
  s.id = "FIG-2";
  s.title = "cache hit ratio vs update rate";
  s.axis = {"updates/s",
            {0.05, 0.2, 0.5, 1.0, 2.0, 5.0},
            [](Scenario& sc, double u) { sc.db.update_rate = u; }};
  s.variants = protocol_variants({ProtocolKind::kTs, ProtocolKind::kAt,
                                  ProtocolKind::kSig, ProtocolKind::kUir,
                                  ProtocolKind::kHyb});
  s.series = {{"cache hit ratio", "",
               [](const Metrics& m) { return m.hit_ratio; }, 4}};
  return s;
}

}  // namespace wdc::sweeps
