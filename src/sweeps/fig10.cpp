/// FIG-10 — Selective tuning: the energy/latency frontier.
///
/// For each protocol, run always-on vs selectively-tuned radios and report the
/// radio-on fraction (energy) against mean latency. Expected shape: tuning cuts
/// radio-on time to ≈ (guard+rx)/L for the grid schemes at (nearly) unchanged
/// latency for TS/UIR; PIG/HYB lose their early-answer advantage when dozing
/// (latency reverts toward TS) — energy and digest-responsiveness trade off.
/// LAIR's deferral window inflates the tuned listening budget: the hidden cost
/// of report sliding.

#include <ostream>

#include "stats/table.hpp"
#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

namespace {

const MetricField kRadioOn = [](const Metrics& m) { return m.radio_on_frac; };
const MetricField kLatency = [](const Metrics& m) { return m.mean_latency_s; };

/// Paired-column table: one row per protocol, always-on vs tuned side by side
/// (the grid's axis is the tuning flag).
void render_fig10(const SweepSpec&, const SweepGrid& grid, std::ostream& os,
                  const SweepRenderCtx& ctx) {
  Table t({"protocol", "radio-on (always)", "latency (always)",
           "radio-on (tuned)", "latency (tuned)"});
  for (std::size_t v = 0; v < grid.num_variants(); ++v) {
    t.begin_row();
    t.cell(grid.variant_names[v]);
    for (const std::size_t tuned : {std::size_t{0}, std::size_t{1}}) {
      t.cell(grid.ci(v, tuned, kRadioOn).mean, 3);
      t.cell(grid.ci(v, tuned, kLatency).mean, 2);
    }
  }
  t.print_text(os, "  ");
  if (!ctx.csv.empty() && t.write_csv(ctx.csv))
    os << "\n  [csv written to " << ctx.csv << "]\n";
  os << "\n";
}

}  // namespace

SweepSpec fig10() {
  SweepSpec s;
  s.key = "fig10";
  s.id = "FIG-10";
  s.title = "selective tuning: radio-on time vs latency";
  s.axis = {"tuned",
            {0.0, 1.0},
            [](Scenario& sc, double tuned) {
              sc.proto.selective_tuning = tuned != 0.0;
            }};
  s.variants = protocol_variants({ProtocolKind::kTs, ProtocolKind::kUir,
                                  ProtocolKind::kLair, ProtocolKind::kHyb});
  s.series = {{"radio-on fraction", "radio_", kRadioOn, 3},
              {"mean query latency (s)", "latency_", kLatency, 2}};
  s.render = render_fig10;
  return s;
}

}  // namespace wdc::sweeps
