/// FIG-F — Resilience under injected IR loss (fault layer, src/faults).
///
/// Expected shape: every scheme's latency grows with the loss probability (a
/// missed report stalls the consistency point a full interval), and stateless
/// schemes pay with cache drops where UIR's minis and PIG/HYB's digests patch
/// the gap sooner. Stale serves stay zero throughout — loss degrades latency,
/// never consistency.

#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

SweepSpec figf() {
  SweepSpec s;
  s.key = "figf";
  s.id = "FIG-F";
  s.title = "resilience vs injected IR loss";
  s.axis = fault_ir_loss_axis({0.0, 0.1, 0.2, 0.4});
  s.variants = protocol_variants({ProtocolKind::kTs, ProtocolKind::kUir,
                                  ProtocolKind::kLair, ProtocolKind::kPig,
                                  ProtocolKind::kHyb});
  s.series = {{"mean latency (s)", "lat_",
               [](const Metrics& m) { return m.mean_latency_s; }, 3},
              {"cache hit ratio", "hits_",
               [](const Metrics& m) { return m.hit_ratio; }, 4},
              {"report loss rate (PHY + fault)", "loss_",
               [](const Metrics& m) { return m.report_loss_rate; }, 4},
              {"stale serves (must stay 0)", "stale_",
               [](const Metrics& m) {
                 return static_cast<double>(m.stale_serves);
               },
               1}};
  return s;
}

}  // namespace wdc::sweeps
