/// TAB-1 — All seven protocols at the default operating point: every headline
/// metric with 95% confidence intervals. The table a reviewer reads first.

#include <ostream>

#include "stats/table.hpp"
#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

namespace {

/// Transposed presentation: one row per metric, one column per protocol.
void render_tab1(const SweepSpec& spec, const SweepGrid& grid, std::ostream& os,
                 const SweepRenderCtx& ctx) {
  std::vector<std::string> cols{"metric"};
  for (const auto& name : grid.variant_names) cols.push_back(name);
  Table t(cols);
  for (const auto& series : spec.series) {
    t.begin_row();
    t.cell(series.title);
    for (std::size_t v = 0; v < grid.num_variants(); ++v) {
      const auto ci = grid.ci(v, 0, series.field);
      t.cell_ci(ci.mean, ci.half_width, series.precision);
    }
  }
  t.print_text(os, "  ");
  if (!ctx.csv.empty() && t.write_csv(ctx.csv))
    os << "\n  [csv written to " << ctx.csv << "]\n";
  os << "\n";
}

}  // namespace

SweepSpec tab1() {
  SweepSpec s;
  s.key = "tab1";
  s.id = "TAB-1";
  s.title = "protocol summary at the default operating point";
  s.axis = {"point", {0.0}, nullptr};
  s.variants = protocol_variants(
      std::vector<ProtocolKind>(std::begin(kAllProtocols),
                                std::end(kAllProtocols)));
  s.series = {
      {"mean latency (s)", "",
       [](const Metrics& m) { return m.mean_latency_s; }, 2},
      {"p90 latency (s)", "",
       [](const Metrics& m) { return m.p90_latency_s; }, 2},
      {"hit ratio", "", [](const Metrics& m) { return m.hit_ratio; }, 3},
      {"uplink req/query", "",
       [](const Metrics& m) { return m.uplink_per_query; }, 3},
      {"report loss rate", "",
       [](const Metrics& m) { return m.report_loss_rate; }, 3},
      {"cache drops", "",
       [](const Metrics& m) { return static_cast<double>(m.cache_drops); }, 1},
      {"report kbit/s", "",
       [](const Metrics& m) {
         return (static_cast<double>(m.report_bits) +
                 static_cast<double>(m.piggyback_bits)) /
                m.measured_s / 1000.0;
       },
       2},
      {"listen s/query", "",
       [](const Metrics& m) { return m.listen_airtime_per_query; }, 3},
      {"MAC busy frac", "",
       [](const Metrics& m) { return m.mac_busy_frac; }, 3},
      {"stale serves", "",
       [](const Metrics& m) { return static_cast<double>(m.stale_serves); }, 0},
  };
  s.render = render_tab1;
  return s;
}

}  // namespace wdc::sweeps
