/// FIG-8 — Disconnection tolerance: hit ratio and cache drops vs sleep ratio.
///
/// Expected shape: AT collapses first (any missed report ⇒ drop), TS survives
/// until sleeps exceed w·L, SIG survives longest (huge window) at its constant
/// overhead, UIR tracks TS. Cache-drop counts make the mechanism visible.

#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

SweepSpec fig8() {
  SweepSpec s;
  s.key = "fig8";
  s.id = "FIG-8";
  s.title = "impact of client disconnection (sleep)";
  s.adjust_base = [](Scenario& sc) {
    sc.sleep.mean_sleep_s = 80.0;  // comparable to TS window w·L = 60
  };
  s.axis = {"sleep ratio",
            {0.0, 0.1, 0.2, 0.3, 0.5},
            [](Scenario& sc, double r) { sc.sleep.sleep_ratio = r; }};
  s.variants = protocol_variants({ProtocolKind::kTs, ProtocolKind::kAt,
                                  ProtocolKind::kSig, ProtocolKind::kUir});
  s.series = {{"cache hit ratio", "hits_",
               [](const Metrics& m) { return m.hit_ratio; }, 4},
              {"cache drops (total across clients)", "drops_",
               [](const Metrics& m) {
                 return static_cast<double>(m.cache_drops);
               },
               1}};
  return s;
}

}  // namespace wdc::sweeps
