#include "sweeps/sweeps.hpp"

#include "util/config.hpp"

namespace wdc::sweeps {

Scenario default_scenario() {
  Scenario s;
  s.num_clients = 30;
  s.db.num_items = 600;
  s.sim_time_s = 2000.0;
  s.warmup_s = 300.0;
  s.seed = 20040426;  // IPDPS 2004
  return s;
}

SweepOptions options_from_config(const Config& cfg) {
  SweepOptions opts;
  opts.reps = static_cast<unsigned>(cfg.get_int("reps", 3));
  opts.threads = static_cast<unsigned>(cfg.get_int("threads", 0));
  opts.trace_every = static_cast<unsigned>(cfg.get_int("trace_every", 0));
  opts.trace_dir = cfg.get_string("trace_dir", opts.trace_dir);
  opts.base = Scenario::from_config(cfg, default_scenario());
  return opts;
}

const std::vector<SweepSpec>& all() {
  static const std::vector<SweepSpec> specs = {
      fig1(), fig2(), fig3(), fig4(),  fig5(), fig6(), fig7(),
      fig8(), fig9(), fig10(), figf(), tab1(), tab2(), tab3()};
  return specs;
}

const SweepSpec* find(const std::string& key) {
  for (const auto& spec : all())
    if (spec.key == key) return &spec;
  return nullptr;
}

}  // namespace wdc::sweeps
