/// FIG-1 — Mean query latency vs IR interval L.
///
/// The canonical first figure of every IR-scheme paper: latency grows ≈ L/2 for
/// report-bound schemes; UIR flattens it by ≈ m; PIG/HYB flatten it further by
/// answering at ambient-traffic timescales. Expected shape: TS/AT/SIG linear in
/// L, UIR linear with slope/m, HYB nearly flat while traffic provides digests.

#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

SweepSpec fig1() {
  SweepSpec s;
  s.key = "fig1";
  s.id = "FIG-1";
  s.title = "mean query latency vs IR interval L";
  s.axis = {"L (s)",
            {5.0, 10.0, 20.0, 40.0, 60.0},
            [](Scenario& sc, double L) { sc.proto.ir_interval_s = L; }};
  s.variants = protocol_variants({ProtocolKind::kTs, ProtocolKind::kAt,
                                  ProtocolKind::kUir, ProtocolKind::kPig,
                                  ProtocolKind::kHyb});
  s.series = {{"mean query latency (s)", "",
               [](const Metrics& m) { return m.mean_latency_s; }, 3}};
  return s;
}

}  // namespace wdc::sweeps
