/// FIG-5 — The *downlink traffic* axis: query latency and data-frame queueing
/// delay vs offered background downlink load.
///
/// Expected shape: report-bound schemes (TS/UIR) degrade as data traffic delays
/// item broadcasts; PIG/HYB *improve* relative to them — every data frame is a
/// consistency point, so more traffic means earlier answers. The crossover
/// between UIR and PIG as load grows is the figure's story. Data queue delay
/// grows for everyone (strict priority: reports pre-empt data).

#include "sweeps/sweeps.hpp"

namespace wdc::sweeps {

SweepSpec fig5() {
  SweepSpec s;
  s.key = "fig5";
  s.id = "FIG-5";
  s.title = "impact of downlink traffic load";
  s.axis = {"load kb/s",
            {0.0, 10.0, 20.0, 40.0, 60.0},
            [](Scenario& sc, double kbps) {
              sc.traffic.offered_bps = kbps * 1000.0;
            }};
  s.variants = protocol_variants({ProtocolKind::kTs, ProtocolKind::kUir,
                                  ProtocolKind::kPig, ProtocolKind::kHyb});
  s.series = {{"mean query latency (s)", "latency_",
               [](const Metrics& m) { return m.mean_latency_s; }, 3},
              {"background data frame queueing delay (s)", "qdelay_",
               [](const Metrics& m) { return m.data_queue_delay_s; }, 3}};
  return s;
}

}  // namespace wdc::sweeps
