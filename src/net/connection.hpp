#ifndef WDC_NET_CONNECTION_HPP
#define WDC_NET_CONNECTION_HPP

/// @file connection.hpp
/// One framed, nonblocking stream endpoint: incremental frame reassembly on
/// the read side, a bounded write queue with flush-watermark callbacks on the
/// write side. Used by both the daemon (per accepted client) and the load
/// driver (per outbound connection).
///
/// Backpressure contract: queue_frame() refuses (kShed) once the backlog
/// exceeds the configured ceiling — the caller chooses per message class
/// whether a refusal means "drop the frame" (background data) or "shed the
/// connection" (a peer too slow to accept answers). Nothing here blocks.
///
/// Flush watermarks are how the daemon measures the `flush` leg of the
/// per-answer latency decomposition: a callback registered at queue time
/// fires exactly when the kernel has accepted every byte up to and including
/// that frame.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/frame.hpp"
#include "net/sockets.hpp"

namespace wdc::net {

class Connection {
 public:
  enum class IoResult {
    kOk,      ///< made progress (possibly zero bytes; would-block)
    kClosed,  ///< orderly EOF from the peer
    kError,   ///< hard socket error (errno preserved in error())
  };

  Connection(FdGuard fd, std::size_t max_frame_payload,
             std::size_t max_write_backlog);

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  Connection(Connection&&) = default;
  Connection& operator=(Connection&&) = default;

  int fd() const { return fd_.get(); }
  bool open() const { return fd_.valid(); }
  void close() { fd_.reset(); }

  // --- read side ---

  /// Drain every readable byte into the frame decoder (until EAGAIN).
  IoResult read_some();
  /// Pop the next completed inbound frame payload.
  bool next_frame(std::vector<std::uint8_t>* out) {
    return decoder_.next(out);
  }
  /// The inbound stream declared an oversized frame; the connection is
  /// unrecoverable (framing sync is lost).
  bool read_poisoned() const { return decoder_.broken(); }
  const std::string& read_error() const { return decoder_.error(); }

  // --- write side ---

  enum class QueueResult { kQueued, kShed };

  /// Frame `payload` and append it to the write queue, then attempt an
  /// immediate flush. kShed (frame not queued) when the backlog already
  /// exceeds the ceiling. `force` bypasses the ceiling — reserved for the
  /// final best-effort kShed notice before the owner drops the connection.
  QueueResult queue_frame(const std::vector<std::uint8_t>& payload,
                          bool force = false);

  /// Push queued bytes into the kernel until EAGAIN or empty.
  IoResult flush();

  bool wants_write() const { return !write_queue_.empty(); }
  std::size_t backlog_bytes() const { return backlog_bytes_; }

  /// Total bytes ever accepted into the queue / flushed into the kernel.
  std::uint64_t bytes_queued() const { return bytes_queued_; }
  std::uint64_t bytes_flushed() const { return bytes_flushed_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t frames_shed() const { return frames_shed_; }

  /// Fire `cb` once bytes_flushed() reaches `watermark` (watermarks are
  /// registered in nondecreasing order by construction: queue time).
  void on_flushed(std::uint64_t watermark, std::function<void()> cb);

  /// Wall-clock bookkeeping slots maintained by the owning loop (seconds on
  /// its monotonic clock): last inbound byte, last outbound progress.
  double last_read_s = 0.0;
  double last_write_progress_s = 0.0;

  const std::string& error() const { return io_error_; }

 private:
  void fire_watermarks();

  FdGuard fd_;
  FrameDecoder decoder_;
  std::size_t max_write_backlog_;

  std::deque<std::vector<std::uint8_t>> write_queue_;
  std::size_t write_offset_ = 0;  ///< bytes of the front chunk already written
  std::size_t backlog_bytes_ = 0;
  std::uint64_t bytes_queued_ = 0;
  std::uint64_t bytes_flushed_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t frames_shed_ = 0;
  std::deque<std::pair<std::uint64_t, std::function<void()>>> watermarks_;
  std::string io_error_;
};

}  // namespace wdc::net

#endif  // WDC_NET_CONNECTION_HPP
