#include "net/sockets.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace wdc::net {

namespace {

FdGuard fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + errno_string(errno);
  return FdGuard();
}

bool fill_unix_addr(const std::string& path, sockaddr_un* addr,
                    std::string* error) {
  if (path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr)
      *error = "unix socket path too long (" + std::to_string(path.size()) +
               " bytes): " + path;
    return false;
  }
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

bool fill_inet_addr(const std::string& host, int port, sockaddr_in* addr,
                    std::string* error) {
  std::memset(addr, 0, sizeof *addr);
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) *error = "not a dotted-quad IPv4 address: " + host;
    return false;
  }
  return true;
}

}  // namespace

void FdGuard::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  const int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags >= 0) ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
  return true;
}

void set_nodelay(int fd) {
  const int one = 1;
  // Fails with ENOTSUP/EOPNOTSUPP on AF_UNIX — deliberately ignored.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

FdGuard tcp_listen(const std::string& host, int port, int backlog,
                   int* bound_port, std::string* error) {
  sockaddr_in addr{};
  if (!fill_inet_addr(host, port, &addr, error)) return FdGuard();
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return fail(error, "socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0)
    return fail(error, "bind " + host + ":" + std::to_string(port));
  if (::listen(fd.get(), backlog) < 0) return fail(error, "listen");
  if (!set_nonblocking(fd.get())) return fail(error, "fcntl(O_NONBLOCK)");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0)
      return fail(error, "getsockname");
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

FdGuard unix_listen(const std::string& path, int backlog, std::string* error) {
  sockaddr_un addr{};
  if (!fill_unix_addr(path, &addr, error)) return FdGuard();
  ::unlink(path.c_str());
  FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return fail(error, "socket");
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0)
    return fail(error, "bind " + path);
  if (::listen(fd.get(), backlog) < 0) return fail(error, "listen");
  if (!set_nonblocking(fd.get())) return fail(error, "fcntl(O_NONBLOCK)");
  return fd;
}

namespace {

FdGuard connect_common(FdGuard fd, const sockaddr* addr, socklen_t len,
                       bool* in_progress, std::string* error) {
  if (!fd.valid()) return fail(error, "socket");
  if (!set_nonblocking(fd.get())) return fail(error, "fcntl(O_NONBLOCK)");
  *in_progress = false;
  if (::connect(fd.get(), addr, len) == 0) return fd;
  if (errno == EINPROGRESS) {
    *in_progress = true;
    return fd;
  }
  // Note EAGAIN is NOT in-progress: a Unix-domain connect returns it when
  // the listen backlog is full, and that connection never completes — it
  // must go back through the caller's backoff-retry path.
  return fail(error, "connect");
}

}  // namespace

FdGuard tcp_connect(const std::string& host, int port, bool* in_progress,
                    std::string* error) {
  sockaddr_in addr{};
  if (!fill_inet_addr(host, port, &addr, error)) return FdGuard();
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  return connect_common(std::move(fd),
                        reinterpret_cast<const sockaddr*>(&addr), sizeof addr,
                        in_progress, error);
}

FdGuard unix_connect(const std::string& path, bool* in_progress,
                     std::string* error) {
  sockaddr_un addr{};
  if (!fill_unix_addr(path, &addr, error)) return FdGuard();
  FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  return connect_common(std::move(fd),
                        reinterpret_cast<const sockaddr*>(&addr), sizeof addr,
                        in_progress, error);
}

int take_connect_error(int fd) {
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return errno;
  return err;
}

long raise_fd_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0)
    return -1;
  if (lim.rlim_cur < lim.rlim_max) {
    rlimit want = lim;
    want.rlim_cur = lim.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &want) == 0) lim = want;
  }
  return static_cast<long>(lim.rlim_cur);
}

std::string errno_string(int err) {
  return std::string(std::strerror(err)) + " (" + std::to_string(err) + ")";
}

}  // namespace wdc::net
