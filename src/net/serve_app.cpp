#include "net/serve_app.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "proto/baselines.hpp"
#include "proto/factory.hpp"
#include "proto/report_codec.hpp"
#include "util/check.hpp"

namespace wdc::net {

namespace {

/// Timeout/pacing sweep granularity: the loop wakes at least this often even
/// when both the sim queue and the sockets are quiet.
constexpr double kSweepPeriodS = 0.25;

/// Listen backlog. A whole load fleet connecting at once must fit: a full
/// backlog refuses TCP connects and makes Unix-domain connects fail EAGAIN
/// while the accept sweep is busy advancing the simulation.
constexpr int kListenBacklog = 4096;

/// Encode whichever concrete report payload `p` is; empty when unrecognised.
std::vector<std::uint8_t> encode_report_payload(const Payload* p) {
  if (const auto* full = dynamic_cast<const FullReport*>(p))
    return encode_report(*full);
  if (const auto* mini = dynamic_cast<const MiniReport*>(p))
    return encode_report(*mini);
  if (const auto* sig = dynamic_cast<const SigReport*>(p))
    return encode_report(*sig);
  if (const auto* bs = dynamic_cast<const BsReport*>(p))
    return encode_report(*bs);
  if (const auto* dig = dynamic_cast<const PiggyDigest*>(p))
    return encode_report(*dig);
  return {};
}

}  // namespace

ServeApp::ServeApp(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      mcs_table_(cfg_.scenario.make_mcs_table()),
      link_snr_(cfg_.link_snr_db) {}

ServeApp::~ServeApp() {
  if (tracing_) trace_writer_.close();
}

double ServeApp::mono_s() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

double ServeApp::target_sim_time() const {
  return (mono_s() - epoch_s_) * cfg_.time_scale;
}

void ServeApp::advance_sim() { sim_->run_until(target_sim_time()); }

bool ServeApp::start(std::string* error) {
  raise_fd_limit();
  if (!loop_.ok()) {
    if (error) *error = loop_.error();
    return false;
  }

  // --- listener ---
  if (!cfg_.unix_path.empty()) {
    listener_ = unix_listen(cfg_.unix_path, kListenBacklog, error);
  } else {
    listener_ = tcp_listen(cfg_.host, cfg_.port, kListenBacklog, &port_, error);
  }
  if (!listener_.valid()) return false;

  // --- the protocol world (mirrors the engine's seed-chain order, so the
  // daemon at seed S is the twin of the simulation at seed S) ---
  const Scenario& sc = cfg_.scenario;
  Rng master(sc.seed);
  Rng geo_rng = master.split();
  Rng chan_rng = master.split();
  Rng mac_rng = master.split();
  Rng db_rng = master.split();
  Rng wl_rng = master.split();
  (void)geo_rng;
  (void)chan_rng;

  sim_ = std::make_unique<Simulator>();
  mac_ = std::make_unique<BroadcastMac>(*sim_, mcs_table_, sc.mac, mac_rng);
  db_ = std::make_unique<Database>(*sim_, sc.db, db_rng);
  server_ = make_server(sc.protocol, *sim_, *mac_, *db_, sc.proto);

  // Pre-register one MAC port per scenario client so traffic destinations are
  // always valid; connections bind to (and release) these slots as they churn.
  slot_conn_.reserve(sc.num_clients);
  for (std::uint32_t i = 0; i < sc.num_clients; ++i) register_slot();
  free_slots_.reserve(sc.num_clients);
  for (std::uint32_t i = sc.num_clients; i > 0; --i)
    free_slots_.push_back(static_cast<ClientId>(i - 1));

  if (sc.traffic.model != TrafficModel::kOff) {
    traffic_ = std::make_unique<TrafficGenerator>(
        *sim_, sc.traffic, sc.num_clients, wl_rng,
        [this](const TrafficFrame& f) { server_->on_downlink_frame(f); });
  }
  server_->start();

  if (!cfg_.trace_path.empty()) {
    TraceMeta meta;
    meta.protocol = to_string(sc.protocol);
    meta.seed = sc.seed;
    meta.sim_time_s = 0.0;  // open-ended measured run
    meta.warmup_s = 0.0;
    meta.num_clients = sc.num_clients;
    if (!trace_writer_.open(cfg_.trace_path, make_trace_header(meta))) {
      if (error) *error = "cannot open trace file: " + cfg_.trace_path;
      return false;
    }
    tracing_ = true;
  }

  // --- wake pipe (request_stop() from other threads / signal handlers) ---
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    if (error) *error = "pipe: " + errno_string(errno);
    return false;
  }
  wake_rd_ = FdGuard(pipefd[0]);
  wake_wr_ = FdGuard(pipefd[1]);
  set_nonblocking(wake_rd_.get());
  set_nonblocking(wake_wr_.get());
  loop_.add(wake_rd_.get(), EPOLLIN, [this](std::uint32_t) {
    std::uint8_t buf[64];
    while (::read(wake_rd_.get(), buf, sizeof buf) > 0) {
    }
  });

  set_nonblocking(listener_.get());
  loop_.add(listener_.get(), EPOLLIN,
            [this](std::uint32_t) { on_listener_ready(); });

  epoch_s_ = mono_s();
  next_sweep_s_ = epoch_s_ + kSweepPeriodS;
  return true;
}

void ServeApp::register_slot() {
  const ClientId expect = static_cast<ClientId>(slot_conn_.size());
  slot_conn_.push_back(nullptr);
  const ClientId got = mac_->register_client(ClientPort{
      &link_snr_,
      [this, expect] { return slot_conn_[expect] != nullptr; },
      [this, expect](const Reception& rx) { on_reception(expect, rx); }});
  WDC_CHECK(got == expect, "MAC port ids must stay dense");
}

ClientId ServeApp::bind_slot(Conn& c) {
  if (free_slots_.empty()) register_slot();
  ClientId slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<ClientId>(slot_conn_.size() - 1);
  }
  slot_conn_[slot] = &c;
  c.cid = slot;
  return slot;
}

void ServeApp::request_stop() {
  stop_ = true;
  const std::uint8_t one = 1;
  if (wake_wr_.valid()) {
    [[maybe_unused]] ssize_t n = ::write(wake_wr_.get(), &one, 1);
  }
}

void ServeApp::run() {
  while (!stop_) {
    advance_sim();
    const double now = mono_s();
    if (now >= next_sweep_s_) {
      sweep_timeouts(now);
      next_sweep_s_ = now + kSweepPeriodS;
    }
    // Sleep until the next simulated instant, the next sweep, or a socket —
    // whichever is first.
    double wait_s = next_sweep_s_ - now;
    const SimTime next_ev = sim_->next_event_time();
    if (next_ev != kNever) {
      const double ev_wall = epoch_s_ + next_ev / cfg_.time_scale;
      wait_s = std::min(wait_s, ev_wall - now);
    }
    const int timeout_ms =
        std::max(0, std::min(250, static_cast<int>(wait_s * 1000.0)));
    if (loop_.poll_once(timeout_ms) < 0) break;
  }
  // Orderly teardown: anything still pending on a live connection was never
  // answered.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, c] : conns_) fds.push_back(fd);
  for (int fd : fds) close_conn(fd, "shutdown");
  if (tracing_) {
    trace_writer_.close();
    tracing_ = false;
  }
}

void ServeApp::on_listener_ready() {
  for (;;) {
    const int fd = ::accept4(listener_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure (EMFILE, ECONNABORTED): retry later
    }
    set_nodelay(fd);
    auto conn = std::make_unique<Conn>(
        Connection(FdGuard(fd), cfg_.max_frame_bytes, cfg_.max_write_backlog));
    const double now = mono_s();
    conn->accepted_s = now;
    conn->io.last_read_s = now;
    conn->io.last_write_progress_s = now;
    ++stats_.accepted;
    loop_.add(fd, EPOLLIN,
              [this, fd](std::uint32_t events) { on_conn_event(fd, events); });
    conns_.emplace(fd, std::move(conn));
  }
}

void ServeApp::on_conn_event(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(fd, "hangup");
    return;
  }
  if (events & EPOLLIN) {
    const auto r = c.io.read_some();
    c.io.last_read_s = mono_s();
    if (!handle_frames(c)) return;  // closed during dispatch
    if (r == Connection::IoResult::kClosed) {
      close_conn(fd, "eof");
      return;
    }
    if (r == Connection::IoResult::kError) {
      close_conn(fd, "read error");
      return;
    }
  }
  if (events & EPOLLOUT) {
    const std::uint64_t before = c.io.bytes_flushed();
    const auto r = c.io.flush();
    if (c.io.bytes_flushed() != before) c.io.last_write_progress_s = mono_s();
    if (r != Connection::IoResult::kOk) {
      close_conn(fd, "write error");
      return;
    }
    update_write_interest(c);
  }
}

bool ServeApp::handle_frames(Conn& c) {
  const int fd = c.io.fd();
  std::vector<std::uint8_t> frame;
  while (c.io.next_frame(&frame)) {
    ++stats_.frames_rx;
    ServeMessage m;
    std::string err;
    if (!decode_serve(frame, &m, &err)) {
      ++stats_.decode_errors;
      close_conn(fd, "decode error");
      return false;
    }
    if (!on_message(c, m, mono_s())) return false;
  }
  if (c.io.read_poisoned()) {
    ++stats_.decode_errors;
    close_conn(fd, "frame error");
    return false;
  }
  return true;
}

bool ServeApp::on_message(Conn& c, const ServeMessage& m, double t_read) {
  // Keep the twin's clock ahead of the request it is about to serve. The
  // advance can deliver frames to *this* connection and shed it — re-check
  // liveness before touching `c` again.
  const int fd = c.io.fd();
  advance_sim();
  const auto self = conns_.find(fd);
  if (self == conns_.end() || self->second.get() != &c) return false;
  switch (m.kind) {
    case ServeWireKind::kHello: {
      if (c.helloed) {
        close_conn(c.io.fd(), "duplicate hello");
        return false;
      }
      c.helloed = true;
      ++stats_.hellos;
      bind_slot(c);
      ServeMessage ack;
      ack.kind = ServeWireKind::kHelloAck;
      ack.client_nonce = m.client_nonce;
      ack.client_id = c.cid;
      ack.num_items = db_->num_items();
      ack.protocol = static_cast<std::uint8_t>(cfg_.scenario.protocol);
      ack.ir_interval_s = cfg_.scenario.proto.ir_interval_s;
      if (c.io.queue_frame(encode_serve(ack)) ==
          Connection::QueueResult::kShed) {
        shed_connection(c);
        return false;
      }
      update_write_interest(c);
      return true;
    }
    case ServeWireKind::kRequest: {
      if (!c.helloed) {
        close_conn(c.io.fd(), "request before hello");
        return false;
      }
      if (m.item >= db_->num_items()) {
        close_conn(c.io.fd(), "item out of range");
        return false;
      }
      ++stats_.requests;
      PendingAnswer pa;
      pa.seq = m.seq;
      pa.sent_at = cfg_.trust_client_clock ? std::min(m.sent_at, t_read) : t_read;
      pa.t_read = t_read;
      auto& fifo = c.pending[m.item];
      fifo.push_back(pa);
      ++c.outstanding;
      if (tracing_) {
        TraceEvent ev;
        ev.t = pa.sent_at;
        ev.item = m.item;
        ev.client = trace_client(c.cid);
        ev.kind = static_cast<std::uint8_t>(TraceEventKind::kQuerySubmit);
        emit_trace(ev);
      }
      server_->on_request(c.cid, m.item);
      fifo.back().t_serve = mono_s();
      return true;
    }
    case ServeWireKind::kPoll: {
      if (!c.helloed) {
        close_conn(c.io.fd(), "poll before hello");
        return false;
      }
      if (m.item >= db_->num_items()) {
        close_conn(c.io.fd(), "item out of range");
        return false;
      }
      ++stats_.polls;
      auto* per = dynamic_cast<ServerPer*>(server_.get());
      if (per == nullptr) return true;  // protocol answers no polls; ignore
      PendingAnswer pa;
      pa.seq = m.seq;
      pa.sent_at = cfg_.trust_client_clock ? std::min(m.sent_at, t_read) : t_read;
      pa.t_read = t_read;
      auto& fifo = c.pending_polls[m.item];
      fifo.push_back(pa);
      ++c.outstanding;
      if (tracing_) {
        TraceEvent ev;
        ev.t = pa.sent_at;
        ev.item = m.item;
        ev.client = trace_client(c.cid);
        ev.kind = static_cast<std::uint8_t>(TraceEventKind::kQuerySubmit);
        emit_trace(ev);
      }
      per->on_poll(c.cid, m.item, m.version);
      fifo.back().t_serve = mono_s();
      return true;
    }
    case ServeWireKind::kBye:
      ++stats_.byes;
      // An orderly goodbye withdraws the client's unanswered ops — items
      // still queued in the simulated MAC for a departing client are not
      // drops. Only abnormal closes (timeouts, sheds, EOF mid-request) leave
      // `outstanding` for close_conn to count.
      c.pending.clear();
      c.pending_polls.clear();
      c.outstanding = 0;
      close_conn(c.io.fd(), "bye");
      return false;
    default:
      close_conn(c.io.fd(), "unexpected client frame kind");
      return false;
  }
}

const std::vector<std::uint8_t>& ServeApp::encoded_frame(const Message& msg) {
  const void* payload = msg.payload.get();
  if (enc_key_.filled && enc_key_.payload == payload &&
      enc_key_.kind == msg.kind && enc_key_.dest == msg.dest &&
      enc_key_.item == msg.item && enc_key_.version == msg.version &&
      enc_key_.bits == msg.bits) {
    return encoded_;
  }
  ServeMessage m;
  switch (msg.kind) {
    case MsgKind::kInvalidationReport:
    case MsgKind::kMiniReport:
      m.kind = ServeWireKind::kReport;
      m.report_frame = encode_report_payload(msg.payload.get());
      break;
    case MsgKind::kItemData: {
      m.kind = ServeWireKind::kItem;
      m.item = msg.item;
      m.version = msg.version;
      m.payload_bits = msg.bits;
      if (const auto* ip = dynamic_cast<const ItemPayload*>(msg.payload.get())) {
        m.content_time = ip->content_time;
        m.lease_s = ip->lease_s;
        if (ip->digest) m.digest_frame = encode_report(*ip->digest);
      }
      break;
    }
    case MsgKind::kDownlinkData: {
      m.kind = ServeWireKind::kData;
      m.payload_bits = msg.bits;
      if (const auto* dp = dynamic_cast<const DataPayload*>(msg.payload.get())) {
        if (dp->digest) m.digest_frame = encode_report(*dp->digest);
      }
      break;
    }
    case MsgKind::kControl: {
      if (const auto* ack = dynamic_cast<const PollAck*>(msg.payload.get())) {
        m.kind = ServeWireKind::kPollAck;
        m.item = ack->item;
        m.version = ack->version;
        m.content_time = ack->content_time;
        m.valid = ack->valid;
      } else if (const auto* inv =
                     dynamic_cast<const InvalidateNotice*>(msg.payload.get())) {
        m.kind = ServeWireKind::kInvalidate;
        m.item = inv->item;
        m.update_time = inv->update_time;
      } else {
        m.kind = ServeWireKind::kData;  // unknown control: opaque frame
        m.payload_bits = msg.bits;
      }
      break;
    }
  }
  encoded_ = encode_serve(m);
  enc_key_ = EncKey{payload,  msg.kind, msg.dest,
                    msg.item, msg.version, msg.bits, true};
  return encoded_;
}

void ServeApp::on_reception(ClientId slot, const Reception& rx) {
  Conn* c = slot_conn_[slot];
  if (c == nullptr) return;
  const Message& msg = rx.msg;
  if (!msg.is_broadcast()) {
    // Unicast rides the MAC's ARQ: deliver only the successfully decoded
    // attempt addressed to this slot (failed attempts retransmit).
    if (msg.dest != slot || !rx.decoded) return;
  }
  // Broadcast frames are delivered regardless of the decode draw: TCP is the
  // reliable PHY here; the MAC's airtime/link-adaptation dynamics are kept,
  // its loss process is not re-imposed on a lossless transport.
  deliver(*c, rx);
}

void ServeApp::deliver(Conn& c, const Reception& rx) {
  const Message& msg = rx.msg;
  const std::vector<std::uint8_t>& frame = encoded_frame(msg);

  const bool critical = msg.kind != MsgKind::kDownlinkData;
  const auto queued = c.io.queue_frame(frame);
  if (queued == Connection::QueueResult::kShed) {
    if (critical) {
      shed_connection(c);
    } else {
      ++stats_.shed_frames;
    }
    return;
  }

  switch (msg.kind) {
    case MsgKind::kInvalidationReport:
    case MsgKind::kMiniReport:
      ++stats_.reports_tx;
      break;
    case MsgKind::kItemData: {
      ++stats_.items_tx;
      auto it = c.pending.find(msg.item);
      if (it != c.pending.end() && !it->second.empty()) {
        std::vector<PendingAnswer> answered(it->second.begin(),
                                            it->second.end());
        c.pending.erase(it);
        c.outstanding -= answered.size();
        const double t_tx = mono_s();
        const ClientId cid = c.cid;
        const ItemId item = msg.item;
        c.io.on_flushed(c.io.bytes_queued(),
                        [this, cid, item, answered = std::move(answered),
                         t_tx]() mutable {
                          record_answers(cid, item, std::move(answered), t_tx,
                                         mono_s());
                        });
      }
      break;
    }
    case MsgKind::kControl: {
      ++stats_.control_tx;
      if (dynamic_cast<const PollAck*>(msg.payload.get()) != nullptr) {
        auto it = c.pending_polls.find(msg.item);
        if (it != c.pending_polls.end() && !it->second.empty()) {
          std::vector<PendingAnswer> answered;
          answered.push_back(it->second.front());
          it->second.pop_front();
          if (it->second.empty()) c.pending_polls.erase(it);
          --c.outstanding;
          const double t_tx = mono_s();
          const ClientId cid = c.cid;
          const ItemId item = msg.item;
          c.io.on_flushed(c.io.bytes_queued(),
                          [this, cid, item, answered = std::move(answered),
                           t_tx]() mutable {
                            record_answers(cid, item, std::move(answered),
                                           t_tx, mono_s());
                          });
        }
      }
      break;
    }
    case MsgKind::kDownlinkData:
      ++stats_.data_tx;
      break;
  }
  update_write_interest(c);
}

void ServeApp::record_answers(ClientId cid, ItemId item,
                              std::vector<PendingAnswer> answered, double t_tx,
                              double t_flush) {
  for (const PendingAnswer& pa : answered) {
    ++stats_.answers;
    if (!tracing_) continue;
    // Clamp the stamp chain monotone, then decompose; the last part is the
    // residual, so the four parts telescope exactly to the measured latency.
    const double sent = pa.sent_at;
    const double read = std::max(sent, pa.t_read);
    const double served = std::max(read, pa.t_serve);
    const double tx = std::max(served, t_tx);
    const double flush = std::max(tx, t_flush);
    const double latency = flush - sent;
    const double uplink = read - sent;
    const double serve = served - read;
    const double queue = tx - served;
    const double residual = latency - uplink - serve - queue;
    TraceEvent ev;
    ev.t = flush;
    ev.a = static_cast<float>(serve);
    ev.b = static_cast<float>(uplink);
    ev.c = static_cast<float>(queue);
    ev.d = static_cast<float>(residual);
    ev.item = item;
    ev.client = trace_client(cid);
    ev.kind = static_cast<std::uint8_t>(TraceEventKind::kAnswer);
    ev.flags = kTraceFlagCounted;
    emit_trace(ev);
  }
}

void ServeApp::shed_connection(Conn& c) {
  ++stats_.shed_connections;
  ServeMessage notice;
  notice.kind = ServeWireKind::kShed;
  notice.shed_reason = 1;
  c.io.queue_frame(encode_serve(notice), /*force=*/true);  // best effort
  close_conn(c.io.fd(), "backpressure shed");
}

void ServeApp::update_write_interest(Conn& c) {
  const bool want = c.io.wants_write();
  if (want == c.epollout) return;
  c.epollout = want;
  loop_.modify(c.io.fd(), EPOLLIN | (want ? EPOLLOUT : 0u));
}

void ServeApp::close_conn(int fd, const char* reason) {
  (void)reason;
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  stats_.dropped_answers += c.outstanding;
  if (c.cid != kInvalidClient) {
    slot_conn_[c.cid] = nullptr;
    free_slots_.push_back(c.cid);
  }
  loop_.remove(fd);
  ++stats_.closed;
  conns_.erase(it);  // FdGuard closes the socket
}

void ServeApp::sweep_timeouts(double now) {
  std::vector<int> read_timed_out;
  std::vector<int> write_timed_out;
  for (const auto& [fd, conn] : conns_) {
    const Conn& c = *conn;
    if (now - c.io.last_read_s > cfg_.read_timeout_s) {
      read_timed_out.push_back(fd);
      continue;
    }
    if (c.io.wants_write() &&
        now - c.io.last_write_progress_s > cfg_.write_timeout_s) {
      write_timed_out.push_back(fd);
    }
  }
  for (int fd : read_timed_out) {
    ++stats_.read_timeouts;
    close_conn(fd, "read timeout");
  }
  for (int fd : write_timed_out) {
    ++stats_.write_timeouts;
    close_conn(fd, "write timeout");
  }
}

void ServeApp::emit_trace(const TraceEvent& ev) {
  if (tracing_) trace_writer_.append(&ev, 1);
}

}  // namespace wdc::net
