#include "net/connection.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace wdc::net {

Connection::Connection(FdGuard fd, std::size_t max_frame_payload,
                       std::size_t max_write_backlog)
    : fd_(std::move(fd)),
      decoder_(max_frame_payload),
      max_write_backlog_(max_write_backlog) {}

Connection::IoResult Connection::read_some() {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), buf, sizeof buf, 0);
    if (n > 0) {
      bytes_read_ += static_cast<std::uint64_t>(n);
      decoder_.feed(buf, static_cast<std::size_t>(n));
      // Keep draining: poisoned streams still consume bytes so the caller
      // sees read_poisoned() rather than a stuck EPOLLIN.
      continue;
    }
    if (n == 0) return IoResult::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
    if (errno == EINTR) continue;
    io_error_ = "recv: " + errno_string(errno);
    return IoResult::kError;
  }
}

Connection::QueueResult Connection::queue_frame(
    const std::vector<std::uint8_t>& payload, bool force) {
  if (!force && backlog_bytes_ > max_write_backlog_) {
    ++frames_shed_;
    return QueueResult::kShed;
  }
  std::vector<std::uint8_t> framed = frame_encode(payload);
  backlog_bytes_ += framed.size();
  bytes_queued_ += framed.size();
  write_queue_.push_back(std::move(framed));
  flush();
  return QueueResult::kQueued;
}

Connection::IoResult Connection::flush() {
  while (!write_queue_.empty()) {
    const std::vector<std::uint8_t>& front = write_queue_.front();
    const ssize_t n = ::send(fd_.get(), front.data() + write_offset_,
                             front.size() - write_offset_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return IoResult::kClosed;
      io_error_ = "send: " + errno_string(errno);
      return IoResult::kError;
    }
    bytes_flushed_ += static_cast<std::uint64_t>(n);
    backlog_bytes_ -= static_cast<std::size_t>(n);
    write_offset_ += static_cast<std::size_t>(n);
    if (write_offset_ == front.size()) {
      write_queue_.pop_front();
      write_offset_ = 0;
    }
    fire_watermarks();
  }
  return IoResult::kOk;
}

void Connection::on_flushed(std::uint64_t watermark, std::function<void()> cb) {
  if (bytes_flushed_ >= watermark) {
    cb();
    return;
  }
  watermarks_.emplace_back(watermark, std::move(cb));
}

void Connection::fire_watermarks() {
  while (!watermarks_.empty() && watermarks_.front().first <= bytes_flushed_) {
    auto cb = std::move(watermarks_.front().second);
    watermarks_.pop_front();
    cb();
  }
}

}  // namespace wdc::net
