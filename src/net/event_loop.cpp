#include "net/event_loop.hpp"

#include <sys/epoll.h>

#include <array>
#include <cerrno>
#include <utility>

namespace wdc::net {

EventLoop::EventLoop() : epoll_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epoll_.valid()) error_ = "epoll_create1: " + errno_string(errno);
}

EventLoop::~EventLoop() = default;

bool EventLoop::add(int fd, std::uint32_t events, Handler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    error_ = "epoll_ctl(ADD): " + errno_string(errno);
    return false;
  }
  handlers_[fd] = Entry{std::move(handler), ++generation_};
  return true;
}

bool EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    error_ = "epoll_ctl(MOD): " + errno_string(errno);
    return false;
  }
  return true;
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

int EventLoop::poll_once(int timeout_ms) {
  std::array<epoll_event, 256> events;
  const int n = ::epoll_wait(epoll_.get(), events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    error_ = "epoll_wait: " + errno_string(errno);
    return -1;
  }
  // Snapshot generations first: a handler may close its fd and the slot may
  // be reused by an add() later in this same batch — the stale event must
  // then be dropped, not delivered to the new handler.
  std::array<std::uint64_t, 256> gens{};
  for (int i = 0; i < n; ++i) {
    const auto it = handlers_.find(events[static_cast<std::size_t>(i)].data.fd);
    gens[static_cast<std::size_t>(i)] = it == handlers_.end()
                                            ? 0
                                            : it->second.generation;
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const auto& ev = events[static_cast<std::size_t>(i)];
    const auto it = handlers_.find(ev.data.fd);
    if (it == handlers_.end()) continue;  // removed earlier in this batch
    if (it->second.generation != gens[static_cast<std::size_t>(i)])
      continue;  // slot reused within the batch; event belongs to the old fd
    // Copy: the handler may remove itself (invalidating the map entry).
    const Handler handler = it->second.handler;
    handler(ev.events);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace wdc::net
