#ifndef WDC_NET_LOAD_DRIVER_HPP
#define WDC_NET_LOAD_DRIVER_HPP

/// @file load_driver.hpp
/// The wdc_load engine: a closed-loop client fleet against one wdc_serve
/// daemon, all on a single epoll thread. Each connection runs the serve_codec
/// handshake, keeps up to `max_in_flight` operations outstanding, matches
/// answers FIFO-per-item (the same coalescing semantics the server applies),
/// and records one wall-clock latency sample per answered operation.
///
/// Two operation sources:
///  * synthetic — items drawn from a seeded Rng, `requests_per_conn` each (or
///    open-ended in duration mode);
///  * replay — the kQuerySubmit records of a .wdct trace, partitioned over
///    the fleet by traced client id, replayed in order.
///
/// Connect failures back off exponentially (capped), so a fleet racing a
/// just-starting daemon converges instead of stampeding.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "proto/serve_codec.hpp"
#include "util/rng.hpp"

namespace wdc::net {

struct LoadConfig {
  /// Target: TCP host:port, or a Unix-domain path (non-empty wins).
  std::string host = "127.0.0.1";
  int port = 0;
  std::string unix_path;

  std::size_t connections = 8;
  std::size_t max_in_flight = 1;  ///< outstanding ops per connection
  /// Ops per connection (synthetic mode). 0 with duration_s > 0 = soak: run
  /// open-loop-capped until the clock expires.
  std::uint64_t requests_per_conn = 100;
  double duration_s = 0.0;

  std::uint64_t seed = 1;
  /// Fraction of ops issued as kPoll instead of kRequest (PER scenarios).
  double poll_fraction = 0.0;

  /// Replay mode: path of a .wdct trace whose kQuerySubmit records define the
  /// op sequence (overrides requests_per_conn / poll_fraction).
  std::string replay_path;

  // --- connect retry ---
  double backoff_initial_s = 0.05;
  double backoff_max_s = 2.0;
  unsigned max_connect_attempts = 10;

  /// Abort the run when no answer arrives for this long while ops are
  /// outstanding (a wedged daemon, not a slow one).
  double stall_timeout_s = 30.0;

  std::size_t max_frame_bytes = kMaxFramePayload;
  std::size_t max_write_backlog = 1u << 22;
};

struct LoadReport {
  std::uint64_t connects = 0;
  std::uint64_t reconnect_attempts = 0;
  std::uint64_t hellos_acked = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t polls_sent = 0;
  std::uint64_t answers = 0;       ///< kItem answers matched to our requests
  std::uint64_t poll_acks = 0;     ///< kPollAck answers matched to our polls
  std::uint64_t reports_rx = 0;
  std::uint64_t items_rx = 0;      ///< all kItem frames (incl. unsolicited)
  std::uint64_t data_rx = 0;
  std::uint64_t invalidates_rx = 0;
  std::uint64_t sheds_rx = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t conn_failures = 0; ///< connections lost before finishing

  /// One sample per answered op, seconds.
  std::vector<double> latencies;

  std::uint64_t ops_sent() const { return requests_sent + polls_sent; }
  std::uint64_t ops_answered() const { return answers + poll_acks; }
  /// Sent-but-never-answered ops — the zero-drop contract checks this.
  std::uint64_t dropped() const {
    const std::uint64_t sent = ops_sent();
    const std::uint64_t got = ops_answered();
    return sent > got ? sent - got : 0;
  }
  /// q in [0,1]; 0 when no samples. Sorts a copy (call after the run).
  double latency_quantile(double q) const;
};

class LoadDriver {
 public:
  explicit LoadDriver(LoadConfig cfg);
  ~LoadDriver();
  LoadDriver(const LoadDriver&) = delete;
  LoadDriver& operator=(const LoadDriver&) = delete;

  /// Run the whole fleet to completion. False + `error` on setup failure,
  /// stall, or when any connection exhausts its connect attempts.
  bool run(std::string* error);

  const LoadReport& report() const { return report_; }
  void request_stop() { stop_ = true; }

 private:
  enum class ConnState {
    kIdle,
    kConnecting,
    kAwaitHelloAck,
    kRunning,
    kDraining,  ///< goodbye said; flushing the queued tail before close
    kDone,
  };

  struct Pending {
    double sent_at = 0.0;
    bool is_poll = false;
  };

  struct Worker {
    std::size_t index = 0;
    ConnState state = ConnState::kIdle;
    std::unique_ptr<Connection> io;
    std::uint32_t nonce = 0;
    std::uint32_t num_items = 1;
    Rng rng{1};
    /// Replay mode: this worker's item script (empty = synthetic).
    std::vector<ItemId> script;
    std::size_t script_pos = 0;
    std::uint64_t ops_issued = 0;
    std::uint64_t ops_done = 0;
    std::size_t outstanding = 0;
    std::unordered_map<ItemId, std::deque<Pending>> pending;
    // --- connect retry ---
    unsigned attempts = 0;
    double next_attempt_s = 0.0;
    double backoff_s = 0.0;
    double drain_start_s = 0.0;  ///< when kDraining began (grace-period cut)
  };

  static double mono_s();
  bool setup_replay(std::string* error);
  void start_connect(Worker& w, double now);
  void on_writable_connecting(Worker& w);
  void on_event(std::size_t index, std::uint32_t events);
  bool handle_frames(Worker& w);
  bool on_message(Worker& w, const ServeMessage& m, double now);
  void issue_ops(Worker& w);
  void finish_worker(Worker& w, bool success);
  void close_worker(Worker& w);
  void fail_worker(Worker& w, const std::string& why);
  void update_write_interest(Worker& w, bool force_out = false);
  bool done() const;

  LoadConfig cfg_;
  LoadReport report_;
  EventLoop loop_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t live_ = 0;   ///< workers not yet kDone
  volatile bool stop_ = false;
  double start_s_ = 0.0;
  double last_progress_s_ = 0.0;
  std::string failure_;
};

}  // namespace wdc::net

#endif  // WDC_NET_LOAD_DRIVER_HPP
