#include "net/load_driver.hpp"

#include <sys/epoll.h>
#include <time.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "trace/trace_event.hpp"
#include "trace/trace_io.hpp"

namespace wdc::net {

namespace {
constexpr double kTickS = 0.05;  ///< housekeeping granularity of the run loop
}

double LoadReport::latency_quantile(double q) const {
  if (latencies.empty()) return 0.0;
  std::vector<double> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t idx =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(std::lround(std::max(0.0, pos))));
  return sorted[idx];
}

LoadDriver::LoadDriver(LoadConfig cfg) : cfg_(std::move(cfg)) {}

LoadDriver::~LoadDriver() = default;

double LoadDriver::mono_s() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

bool LoadDriver::setup_replay(std::string* error) {
  TraceFile file;
  if (!read_trace_file(cfg_.replay_path, &file, error)) return false;
  std::size_t submits = 0;
  for (const TraceEvent& ev : file.events) {
    if (ev.kind != static_cast<std::uint8_t>(TraceEventKind::kQuerySubmit))
      continue;
    // Partition the traced population over the fleet by traced client id, so
    // one traced client's ops stay ordered on one connection.
    Worker& w = *workers_[ev.client % workers_.size()];
    w.script.push_back(ev.item);
    ++submits;
  }
  if (submits == 0) {
    if (error) *error = "replay trace has no kQuerySubmit records";
    return false;
  }
  return true;
}

bool LoadDriver::run(std::string* error) {
  if (!loop_.ok()) {
    if (error) *error = loop_.error();
    return false;
  }
  raise_fd_limit();

  Rng master(cfg_.seed);
  workers_.reserve(cfg_.connections);
  for (std::size_t i = 0; i < cfg_.connections; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->nonce = static_cast<std::uint32_t>(i + 1);
    w->rng = master.split();
    workers_.push_back(std::move(w));
  }
  live_ = workers_.size();
  if (!cfg_.replay_path.empty() && !setup_replay(error)) return false;

  start_s_ = mono_s();
  last_progress_s_ = start_s_;
  for (auto& w : workers_) start_connect(*w, start_s_);

  while (!stop_ && !done()) {
    const double now = mono_s();

    // Due connect retries; a drain stuck past the stall threshold — the same
    // wedged-vs-slow line the answer watchdog draws — is cut (the ops were
    // already answered, only the unread tail is lost).
    for (auto& wp : workers_) {
      Worker& w = *wp;
      if (w.state == ConnState::kIdle && now >= w.next_attempt_s)
        start_connect(w, now);
      else if (w.state == ConnState::kDraining &&
               now - w.drain_start_s > cfg_.stall_timeout_s)
        close_worker(w);
    }

    // Duration-mode drain: once the clock expires, workers stop issuing and
    // finish as soon as their outstanding ops are answered.
    if (cfg_.duration_s > 0.0 && now - start_s_ >= cfg_.duration_s) {
      for (auto& wp : workers_) {
        Worker& w = *wp;
        if (w.state == ConnState::kRunning && w.outstanding == 0)
          finish_worker(w, true);
      }
      if (done()) break;
    }

    // Stall watchdog: outstanding ops but no answer for too long.
    bool any_outstanding = false;
    for (const auto& wp : workers_)
      any_outstanding = any_outstanding || wp->outstanding > 0;
    if (any_outstanding && now - last_progress_s_ > cfg_.stall_timeout_s) {
      failure_ = "stalled: no answers for " +
                 std::to_string(cfg_.stall_timeout_s) + "s";
      break;
    }
    if (!failure_.empty()) break;

    if (loop_.poll_once(static_cast<int>(kTickS * 1000.0)) < 0) {
      failure_ = loop_.error();
      break;
    }
  }

  if (!failure_.empty()) {
    if (error) *error = failure_;
    return false;
  }
  return true;
}

void LoadDriver::start_connect(Worker& w, double now) {
  ++report_.reconnect_attempts;
  ++w.attempts;
  bool in_progress = false;
  std::string err;
  FdGuard fd = cfg_.unix_path.empty()
                   ? tcp_connect(cfg_.host, cfg_.port, &in_progress, &err)
                   : unix_connect(cfg_.unix_path, &in_progress, &err);
  if (!fd.valid()) {
    if (w.attempts >= cfg_.max_connect_attempts) {
      failure_ = "connect: " + err;
      finish_worker(w, false);
      return;
    }
    // Capped exponential backoff before the next attempt.
    w.backoff_s = w.backoff_s == 0.0
                      ? cfg_.backoff_initial_s
                      : std::min(cfg_.backoff_max_s, w.backoff_s * 2.0);
    w.next_attempt_s = now + w.backoff_s;
    w.state = ConnState::kIdle;
    return;
  }
  const int rawfd = fd.get();
  w.io = std::make_unique<Connection>(std::move(fd), cfg_.max_frame_bytes,
                                      cfg_.max_write_backlog);
  w.state = ConnState::kConnecting;
  const std::size_t index = w.index;
  loop_.add(rawfd, EPOLLIN | EPOLLOUT,
            [this, index](std::uint32_t events) { on_event(index, events); });
  if (!in_progress) on_writable_connecting(w);
}

void LoadDriver::on_writable_connecting(Worker& w) {
  const int err = take_connect_error(w.io->fd());
  if (err != 0) {
    loop_.remove(w.io->fd());
    w.io.reset();
    if (w.attempts >= cfg_.max_connect_attempts) {
      failure_ = "connect: " + errno_string(err);
      finish_worker(w, false);
      return;
    }
    w.backoff_s = w.backoff_s == 0.0
                      ? cfg_.backoff_initial_s
                      : std::min(cfg_.backoff_max_s, w.backoff_s * 2.0);
    w.next_attempt_s = mono_s() + w.backoff_s;
    w.state = ConnState::kIdle;
    return;
  }
  ++report_.connects;
  set_nodelay(w.io->fd());
  ServeMessage hello;
  hello.kind = ServeWireKind::kHello;
  hello.client_nonce = w.nonce;
  if (w.io->queue_frame(encode_serve(hello)) ==
      Connection::QueueResult::kShed) {
    fail_worker(w, "hello shed");
    return;
  }
  w.state = ConnState::kAwaitHelloAck;
  update_write_interest(w);
}

void LoadDriver::on_event(std::size_t index, std::uint32_t events) {
  Worker& w = *workers_[index];
  if (w.state == ConnState::kDone || !w.io) return;

  if (w.state == ConnState::kConnecting) {
    if (events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) on_writable_connecting(w);
    return;
  }
  if (w.state == ConnState::kDraining) {
    // The goodbye is queued; push the tail out and go. Inbound broadcast
    // frames are still read and discarded so the kernel buffer cannot fill
    // and wedge the server's writer against a departing client.
    if (events & (EPOLLHUP | EPOLLERR)) {
      close_worker(w);
      return;
    }
    if (events & EPOLLIN) {
      const auto r = w.io->read_some();
      std::vector<std::uint8_t> frame;
      while (w.io->next_frame(&frame)) {
      }
      if (r != Connection::IoResult::kOk || w.io->read_poisoned()) {
        close_worker(w);
        return;
      }
    }
    if (events & EPOLLOUT) {
      if (w.io->flush() != Connection::IoResult::kOk) {
        close_worker(w);
        return;
      }
    }
    if (!w.io->wants_write()) close_worker(w);
    return;
  }
  if (events & (EPOLLHUP | EPOLLERR)) {
    fail_worker(w, "hangup");
    return;
  }
  if (events & EPOLLIN) {
    const auto r = w.io->read_some();
    if (!handle_frames(w)) return;
    if (r != Connection::IoResult::kOk) {
      fail_worker(w, "peer closed");
      return;
    }
  }
  if (events & EPOLLOUT) {
    if (w.io->flush() != Connection::IoResult::kOk) {
      fail_worker(w, "write error");
      return;
    }
    update_write_interest(w);
  }
}

bool LoadDriver::handle_frames(Worker& w) {
  std::vector<std::uint8_t> frame;
  while (w.io->next_frame(&frame)) {
    ServeMessage m;
    std::string err;
    if (!decode_serve(frame, &m, &err)) {
      ++report_.decode_errors;
      fail_worker(w, "decode: " + err);
      return false;
    }
    if (!on_message(w, m, mono_s())) return false;
  }
  if (w.io->read_poisoned()) {
    ++report_.decode_errors;
    fail_worker(w, "frame: " + w.io->read_error());
    return false;
  }
  return true;
}

bool LoadDriver::on_message(Worker& w, const ServeMessage& m, double now) {
  switch (m.kind) {
    case ServeWireKind::kHelloAck: {
      if (w.state != ConnState::kAwaitHelloAck || m.client_nonce != w.nonce) {
        fail_worker(w, "bad hello ack");
        return false;
      }
      ++report_.hellos_acked;
      w.num_items = std::max<std::uint32_t>(1, m.num_items);
      w.state = ConnState::kRunning;
      issue_ops(w);
      return w.state != ConnState::kDone;
    }
    case ServeWireKind::kItem: {
      ++report_.items_rx;
      auto it = w.pending.find(m.item);
      if (it != w.pending.end()) {
        // A broadcast item answers every outstanding request for that item on
        // this connection (mirrors the server's coalescing); polls stay.
        auto& fifo = it->second;
        for (auto p = fifo.begin(); p != fifo.end();) {
          if (p->is_poll) {
            ++p;
            continue;
          }
          report_.latencies.push_back(now - p->sent_at);
          ++report_.answers;
          ++w.ops_done;
          --w.outstanding;
          last_progress_s_ = now;
          p = fifo.erase(p);
        }
        if (fifo.empty()) w.pending.erase(it);
      }
      issue_ops(w);
      return w.state != ConnState::kDone;
    }
    case ServeWireKind::kPollAck: {
      auto it = w.pending.find(m.item);
      if (it != w.pending.end()) {
        auto& fifo = it->second;
        for (auto p = fifo.begin(); p != fifo.end(); ++p) {
          if (!p->is_poll) continue;
          report_.latencies.push_back(now - p->sent_at);
          ++report_.poll_acks;
          ++w.ops_done;
          --w.outstanding;
          last_progress_s_ = now;
          fifo.erase(p);
          break;
        }
        if (fifo.empty()) w.pending.erase(it);
      }
      issue_ops(w);
      return w.state != ConnState::kDone;
    }
    case ServeWireKind::kReport:
      ++report_.reports_rx;
      return true;
    case ServeWireKind::kData:
      ++report_.data_rx;
      return true;
    case ServeWireKind::kInvalidate:
      ++report_.invalidates_rx;
      return true;
    case ServeWireKind::kShed:
      ++report_.sheds_rx;
      return true;
    default:
      fail_worker(w, "unexpected server frame kind");
      return false;
  }
}

void LoadDriver::issue_ops(Worker& w) {
  if (w.state != ConnState::kRunning) return;
  const double now = mono_s();
  const bool replay = !w.script.empty() || !cfg_.replay_path.empty();
  while (w.outstanding < cfg_.max_in_flight) {
    bool more;
    if (replay) {
      more = w.script_pos < w.script.size();
    } else if (cfg_.requests_per_conn > 0) {
      more = w.ops_issued < cfg_.requests_per_conn;
    } else {
      more = cfg_.duration_s > 0.0 && now - start_s_ < cfg_.duration_s;
    }
    if (!more) break;

    ServeMessage m;
    ItemId item;
    bool is_poll = false;
    if (replay) {
      item = w.script[w.script_pos++] % w.num_items;
    } else {
      item = static_cast<ItemId>(w.rng.uniform_int(w.num_items));
      is_poll = cfg_.poll_fraction > 0.0 && w.rng.uniform() < cfg_.poll_fraction;
    }
    m.kind = is_poll ? ServeWireKind::kPoll : ServeWireKind::kRequest;
    m.item = item;
    m.seq = static_cast<std::uint32_t>(w.ops_issued);
    m.sent_at = mono_s();
    m.version = 0;  // polls: deliberately stale, exercising the invalid path
    if (w.io->queue_frame(encode_serve(m)) == Connection::QueueResult::kShed) {
      fail_worker(w, "request shed locally");
      return;
    }
    w.pending[item].push_back(Pending{m.sent_at, is_poll});
    ++w.ops_issued;
    ++w.outstanding;
    if (is_poll)
      ++report_.polls_sent;
    else
      ++report_.requests_sent;
  }
  update_write_interest(w);

  // All ops issued and answered: orderly goodbye.
  bool exhausted;
  if (replay) {
    exhausted = w.script_pos >= w.script.size();
  } else if (cfg_.requests_per_conn > 0) {
    exhausted = w.ops_issued >= cfg_.requests_per_conn;
  } else {
    exhausted = cfg_.duration_s > 0.0 && now - start_s_ >= cfg_.duration_s;
  }
  if (exhausted && w.outstanding == 0) finish_worker(w, true);
}

void LoadDriver::finish_worker(Worker& w, bool success) {
  if (w.state == ConnState::kDone) return;
  if (!success || !w.io || !w.io->open()) {
    close_worker(w);
    return;
  }
  if (w.state != ConnState::kDraining) {
    ServeMessage bye;
    bye.kind = ServeWireKind::kBye;
    w.io->queue_frame(encode_serve(bye), /*force=*/true);
  }
  if (w.io->wants_write()) {
    // Under fan-out pressure the tail (late requests + the bye) may still sit
    // in the write queue; linger until it drains so the server reads every op
    // we counted as sent instead of a truncated stream.
    if (w.state != ConnState::kDraining) {
      w.state = ConnState::kDraining;
      w.drain_start_s = mono_s();
    }
    update_write_interest(w);
    return;
  }
  close_worker(w);
}

void LoadDriver::close_worker(Worker& w) {
  if (w.state == ConnState::kDone) return;
  if (w.io && w.io->open()) {
    loop_.remove(w.io->fd());
    w.io->close();
  }
  w.state = ConnState::kDone;
  if (live_ > 0) --live_;
}

void LoadDriver::fail_worker(Worker& w, const std::string& why) {
  (void)why;
  ++report_.conn_failures;
  finish_worker(w, false);
}

void LoadDriver::update_write_interest(Worker& w, bool force_out) {
  if (!w.io || !w.io->open()) return;
  const bool want = force_out || w.io->wants_write();
  loop_.modify(w.io->fd(), EPOLLIN | (want ? EPOLLOUT : 0u));
}

bool LoadDriver::done() const { return live_ == 0; }

}  // namespace wdc::net
