#ifndef WDC_NET_SOCKETS_HPP
#define WDC_NET_SOCKETS_HPP

/// @file sockets.hpp
/// Thin POSIX socket helpers for the serve subsystem: RAII fds, non-blocking
/// listeners/connectors over TCP loopback-or-not and Unix-domain sockets, and
/// the fd-limit raiser the ≥1000-connection contract depends on. src/net is
/// the project's only I/O boundary (the no-blocking-io lint check carves it
/// out); everything here is nonblocking-by-default so a single epoll thread
/// can own thousands of sockets.

#include <string>
#include <utility>

namespace wdc::net {

/// Owning fd wrapper; closes on destruction. -1 = empty.
class FdGuard {
 public:
  FdGuard() = default;
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() { reset(); }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  FdGuard(FdGuard&& o) noexcept : fd_(o.release()) {}
  FdGuard& operator=(FdGuard&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// O_NONBLOCK + FD_CLOEXEC; false on fcntl failure.
bool set_nonblocking(int fd);

/// Disable Nagle on a TCP socket (harmless no-op for Unix-domain sockets).
void set_nodelay(int fd);

/// Nonblocking TCP listener on host:port (port 0 = ephemeral). On success
/// stores the actually bound port in `bound_port`. Invalid FdGuard + `error`
/// on failure.
FdGuard tcp_listen(const std::string& host, int port, int backlog,
                   int* bound_port, std::string* error);

/// Nonblocking Unix-domain listener at `path` (any stale socket file is
/// unlinked first).
FdGuard unix_listen(const std::string& path, int backlog, std::string* error);

/// Begin a nonblocking connect. `in_progress` is set when the connect needs
/// an EPOLLOUT completion (check take_connect_error() then).
FdGuard tcp_connect(const std::string& host, int port, bool* in_progress,
                    std::string* error);
FdGuard unix_connect(const std::string& path, bool* in_progress,
                     std::string* error);

/// SO_ERROR after a writability event completes a nonblocking connect;
/// 0 = connected.
int take_connect_error(int fd);

/// Raise RLIMIT_NOFILE's soft limit to its hard limit (the ≥1000-connection
/// loopback contract needs >2048 fds in one process). Returns the resulting
/// soft limit; never throws, never lowers.
long raise_fd_limit();

/// errno as a short string ("ECONNREFUSED (111)" style).
std::string errno_string(int err);

}  // namespace wdc::net

#endif  // WDC_NET_SOCKETS_HPP
