#include "net/frame.hpp"

#include <algorithm>
#include <cstring>

namespace wdc::net {

std::vector<std::uint8_t> frame_encode(const std::uint8_t* payload,
                                       std::size_t size) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + size);
  const auto len = static_cast<std::uint32_t>(size);
  const auto* lp = reinterpret_cast<const std::uint8_t*>(&len);
  out.insert(out.end(), lp, lp + kFrameHeaderBytes);
  out.insert(out.end(), payload, payload + size);
  return out;
}

bool FrameDecoder::feed(const std::uint8_t* p, std::size_t n) {
  if (broken_) return false;
  while (n > 0) {
    if (!in_payload_) {
      // Reassemble the 4-byte length prefix, possibly one byte per feed().
      const std::size_t take = std::min(n, kFrameHeaderBytes - header_filled_);
      std::memcpy(header_ + header_filled_, p, take);
      header_filled_ += take;
      p += take;
      n -= take;
      if (header_filled_ < kFrameHeaderBytes) return true;
      std::uint32_t len = 0;
      std::memcpy(&len, header_, sizeof len);
      header_filled_ = 0;
      // Ceiling check happens HERE, before partial_ ever grows: a hostile
      // 4 GiB declaration never reaches an allocator.
      if (len > max_payload_) {
        broken_ = true;
        error_ = "declared frame length " + std::to_string(len) +
                 " exceeds ceiling " + std::to_string(max_payload_);
        return false;
      }
      in_payload_ = true;
      expect_ = len;
      partial_.clear();
      partial_.reserve(expect_);
    }
    const std::size_t take = std::min(n, expect_ - partial_.size());
    partial_.insert(partial_.end(), p, p + take);
    p += take;
    n -= take;
    if (partial_.size() == expect_) {
      ready_.push_back(std::move(partial_));
      partial_ = {};
      in_payload_ = false;
      expect_ = 0;
    }
  }
  return true;
}

bool FrameDecoder::next(std::vector<std::uint8_t>* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

}  // namespace wdc::net
