#ifndef WDC_NET_FRAME_HPP
#define WDC_NET_FRAME_HPP

/// @file frame.hpp
/// The length-prefixed frame layer under the serve/report codecs: a TCP or
/// Unix-domain stream carries `u32 length || payload` records, nothing else.
///
/// Decoding is incremental by construction: FrameDecoder::feed() accepts any
/// byte granularity — a whole frame, a partial read, or one byte at a time —
/// and reassembles across calls. The declared length is validated against the
/// configured ceiling BEFORE any payload allocation, mirroring the codec
/// discipline (a flipped length byte cannot balloon memory), and a violation
/// poisons the decoder permanently: a stream that lied about a length has
/// lost sync and nothing after the lie can be trusted.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace wdc::net {

/// Default per-frame payload ceiling. Generous against real frames (a
/// full-database report is ~12 kB) while keeping a hostile 4 GiB declaration
/// unallocatable.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// Bytes of the length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Wrap `payload` in a frame: u32 length (native endian) + bytes.
std::vector<std::uint8_t> frame_encode(const std::uint8_t* payload,
                                       std::size_t size);
inline std::vector<std::uint8_t> frame_encode(
    const std::vector<std::uint8_t>& payload) {
  return frame_encode(payload.data(), payload.size());
}

/// Incremental reassembler for one stream direction.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Absorb `n` bytes from the stream. Returns false once the stream is
  /// poisoned (oversized declared length); feeding a poisoned decoder stays
  /// false and absorbs nothing.
  bool feed(const std::uint8_t* p, std::size_t n);

  /// Pop the next completed frame payload; false when none is ready.
  bool next(std::vector<std::uint8_t>* out);

  /// Permanently broken (a declared length exceeded the ceiling)?
  bool broken() const { return broken_; }
  const std::string& error() const { return error_; }

  /// Bytes absorbed but not yet surfaced as completed frames (partial header
  /// + partial payload; completed-but-unpopped frames are not counted).
  std::size_t partial_bytes() const {
    return header_filled_ + partial_.size();
  }
  std::size_t frames_ready() const { return ready_.size(); }

 private:
  std::size_t max_payload_;
  // Header reassembly: the length prefix itself can arrive byte-at-a-time.
  std::uint8_t header_[kFrameHeaderBytes] = {};
  std::size_t header_filled_ = 0;
  // Payload reassembly for the frame in progress.
  bool in_payload_ = false;
  std::size_t expect_ = 0;
  std::vector<std::uint8_t> partial_;
  std::deque<std::vector<std::uint8_t>> ready_;
  bool broken_ = false;
  std::string error_;
};

}  // namespace wdc::net

#endif  // WDC_NET_FRAME_HPP
