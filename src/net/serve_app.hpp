#ifndef WDC_NET_SERVE_APP_HPP
#define WDC_NET_SERVE_APP_HPP

/// @file serve_app.hpp
/// The wdc_serve daemon core: one epoll thread (one shard) hosting the real
/// protocol state machines over real sockets. The simulator is the
/// deterministic twin of this server — the SAME ServerProtocol subclass, the
/// SAME Database update process and BroadcastMac link-adaptation machinery
/// run here, driven by socket requests instead of simulated clients, with
/// simulation time paced against CLOCK_MONOTONIC (`time_scale` simulated
/// seconds per wall second).
///
/// Connection ↔ MAC bridge: every connection binds to a MAC ClientPort slot
/// (pre-registered for the scenario's client population, grown and reused as
/// connections churn — MAC ports are never unregistered, so slots are a free
/// list). Completed MAC transmissions are encoded as serve_codec envelopes:
/// broadcasts fan out to every live connection, unicast frames reach only
/// their destination slot. TCP replaces the fading channel as a reliable
/// PHY: broadcast frames are delivered regardless of the per-client decode
/// draw (the MAC's airtime, queueing, and link-adaptation behaviour is kept;
/// its loss process is not re-imposed on a lossless transport — unicast
/// frames ride the MAC's own ARQ).
///
/// Measured latency decomposition: every answered request gets a monotone
/// wall-clock stamp chain (client send → uplink read → serve return → MAC
/// delivery → kernel flush) recorded as kQuerySubmit/kAnswer TraceEvents in
/// a .wdct file, so wdc_trace and derive_spans() work unchanged on measured
/// traces and the parts telescope to the measured latency by construction
/// (the last part is the residual).

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "channel/snr_process.hpp"
#include "engine/scenario.hpp"
#include "mac/broadcast_mac.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "proto/serve_codec.hpp"
#include "proto/server_base.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_io.hpp"
#include "workload/database.hpp"
#include "workload/traffic_gen.hpp"

namespace wdc::net {

struct ServeConfig {
  /// TCP listen address (used when `unix_path` is empty); port 0 = ephemeral.
  std::string host = "127.0.0.1";
  int port = 0;
  /// Unix-domain listener path; non-empty selects UDS instead of TCP.
  std::string unix_path;

  /// Simulated seconds advanced per wall-clock second (>1 compresses report
  /// schedules for tests; 1.0 = real time).
  double time_scale = 1.0;

  /// Per-connection timeouts: close after this long with no inbound bytes /
  /// with a non-empty write backlog making no progress.
  double read_timeout_s = 60.0;
  double write_timeout_s = 10.0;

  std::size_t max_frame_bytes = kMaxFramePayload;
  /// Write-queue backpressure ceiling per connection (bytes).
  std::size_t max_write_backlog = 1u << 20;

  /// Downlink SNR presented to the MAC for every connection port (TCP does
  /// not fade; the MAC still runs link adaptation against this reference).
  double link_snr_db = 30.0;

  /// Measured-trace output (.wdct); empty disables.
  std::string trace_path;
  /// Use the client-supplied send timestamp as the span origin (same-host
  /// monotonic clock). Off: spans start at the uplink read instant.
  bool trust_client_clock = true;

  /// Protocol / database / traffic / MAC operating point (the deterministic
  /// twin's scenario).
  Scenario scenario;
};

struct ServeStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t hellos = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t requests = 0;
  std::uint64_t polls = 0;
  std::uint64_t byes = 0;
  std::uint64_t answers = 0;        ///< answered requests (flushed to kernel)
  std::uint64_t dropped_answers = 0;///< requests pending when their conn died
  std::uint64_t reports_tx = 0;
  std::uint64_t items_tx = 0;
  std::uint64_t data_tx = 0;
  std::uint64_t control_tx = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t read_timeouts = 0;
  std::uint64_t write_timeouts = 0;
  std::uint64_t shed_frames = 0;
  std::uint64_t shed_connections = 0;
};

class ServeApp {
 public:
  explicit ServeApp(ServeConfig cfg);
  ~ServeApp();
  ServeApp(const ServeApp&) = delete;
  ServeApp& operator=(const ServeApp&) = delete;

  /// Bind the listener and build the protocol world. False + `error` on
  /// failure; on success port() is the actually bound TCP port.
  bool start(std::string* error);
  int port() const { return port_; }

  /// Serve until request_stop(). Runs the epoll loop on the calling thread.
  void run();
  /// Signal-safe / cross-thread stop request (wakes the loop via a pipe).
  void request_stop();

  const ServeStats& stats() const { return stats_; }
  const ServeConfig& config() const { return cfg_; }
  std::size_t active_connections() const { return conns_.size(); }

 private:
  struct PendingAnswer {
    std::uint32_t seq = 0;
    double sent_at = 0.0;   ///< client clock (or read instant when untrusted)
    double t_read = 0.0;    ///< request frame decoded off the socket
    double t_serve = 0.0;   ///< ServerProtocol::on_request returned
  };

  struct Conn {
    explicit Conn(Connection io_) : io(std::move(io_)) {}
    Connection io;
    ClientId cid = kInvalidClient;
    bool helloed = false;
    bool epollout = false;
    double accepted_s = 0.0;
    /// FIFO per item — the protocol answers same-item requests in order.
    std::unordered_map<ItemId, std::deque<PendingAnswer>> pending;
    /// PER polls awaiting their unicast PollAck, FIFO per item.
    std::unordered_map<ItemId, std::deque<PendingAnswer>> pending_polls;
    std::uint64_t outstanding = 0;
  };

  static double mono_s();
  double target_sim_time() const;
  void advance_sim();

  void on_listener_ready();
  void on_conn_event(int fd, std::uint32_t events);
  /// Decode + dispatch every completed inbound frame. False = conn closed.
  bool handle_frames(Conn& c);
  bool on_message(Conn& c, const ServeMessage& m, double t_read);
  void on_reception(ClientId slot, const Reception& rx);
  void deliver(Conn& c, const Reception& rx);
  /// Encode `msg` as a serve_codec envelope, memoised across the fan-out of
  /// one MAC delivery sweep.
  const std::vector<std::uint8_t>& encoded_frame(const Message& msg);
  void shed_connection(Conn& c);
  void update_write_interest(Conn& c);
  void close_conn(int fd, const char* reason);
  void sweep_timeouts(double now);

  ClientId bind_slot(Conn& c);
  void register_slot();

  void emit_trace(const TraceEvent& ev);
  void record_answers(ClientId cid, ItemId item,
                      std::vector<PendingAnswer> answered, double t_tx,
                      double t_flush);

  ServeConfig cfg_;
  ServeStats stats_;

  // --- the deterministic twin's world ---
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Database> db_;
  McsTable mcs_table_;
  std::unique_ptr<BroadcastMac> mac_;
  std::unique_ptr<ServerProtocol> server_;
  std::unique_ptr<TrafficGenerator> traffic_;
  FixedSnr link_snr_{30.0};

  // --- sockets ---
  EventLoop loop_;
  FdGuard listener_;
  int port_ = 0;
  FdGuard wake_rd_, wake_wr_;
  volatile bool stop_ = false;
  double epoch_s_ = 0.0;
  double next_sweep_s_ = 0.0;

  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  /// ClientId (MAC port slot) → live connection, nullptr when unbound.
  std::vector<Conn*> slot_conn_;
  std::vector<ClientId> free_slots_;

  /// Broadcast frames encode once per MAC delivery sweep, not once per port.
  /// Keyed on the message identity tuple (the MAC reuses the in-flight slot's
  /// storage, so the Message address alone cannot distinguish transmissions;
  /// an identical tuple implies identical bytes, so reuse is always sound).
  struct EncKey {
    const void* payload = nullptr;
    MsgKind kind = MsgKind::kDownlinkData;
    ClientId dest = 0;
    ItemId item = 0;
    Version version = 0;
    Bits bits = 0;
    bool filled = false;
  };
  EncKey enc_key_;
  std::vector<std::uint8_t> encoded_;

  TraceFileWriter trace_writer_;
  bool tracing_ = false;
};

}  // namespace wdc::net

#endif  // WDC_NET_SERVE_APP_HPP
