#ifndef WDC_NET_EVENT_LOOP_HPP
#define WDC_NET_EVENT_LOOP_HPP

/// @file event_loop.hpp
/// Single-threaded epoll readiness loop — the reactor both wdc_serve and the
/// load driver run on. One fd, one callback; the callback receives the ready
/// event mask. Removal during dispatch is safe: handlers are looked up per
/// event and a generation counter voids callbacks whose fd slot was reused
/// within the same poll batch.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/sockets.hpp"

namespace wdc::net {

class EventLoop {
 public:
  using Handler = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool ok() const { return epoll_.valid(); }
  const std::string& error() const { return error_; }

  /// Register `fd` for `events` (EPOLLIN/EPOLLOUT/...); the loop does NOT own
  /// the fd. False on EPOLL_CTL_ADD failure.
  bool add(int fd, std::uint32_t events, Handler handler);
  bool modify(int fd, std::uint32_t events);
  void remove(int fd);
  std::size_t size() const { return handlers_.size(); }

  /// One epoll_wait + dispatch pass. `timeout_ms` < 0 blocks indefinitely.
  /// Returns the number of fds dispatched, 0 on timeout, -1 on error (EINTR
  /// is reported as 0, not an error).
  int poll_once(int timeout_ms);

 private:
  struct Entry {
    Handler handler;
    std::uint64_t generation = 0;
  };

  FdGuard epoll_;
  std::unordered_map<int, Entry> handlers_;
  std::uint64_t generation_ = 0;
  std::string error_;
};

}  // namespace wdc::net

#endif  // WDC_NET_EVENT_LOOP_HPP
