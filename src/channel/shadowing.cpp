#include "channel/shadowing.hpp"

#include <cassert>
#include <cmath>

namespace wdc {

Shadowing::Shadowing(double sigma_db, double decorr_time, Rng rng)
    : sigma_db_(sigma_db), decorr_time_(decorr_time), rng_(rng) {
  value_db_ = sigma_db_ > 0.0 ? sigma_db_ * unit_normal_.sample(rng_) : 0.0;
}

double Shadowing::gain_db(SimTime t) {
  if (sigma_db_ <= 0.0) return 0.0;
  if (decorr_time_ <= 0.0 || t <= last_t_) return value_db_;
  // Ornstein–Uhlenbeck exact discretisation: stationary N(0, sigma²) with
  // autocorrelation exp(-Δt/τ).
  const double dt = t - last_t_;
  const double rho = std::exp(-dt / decorr_time_);
  const double innov = std::sqrt(1.0 - rho * rho) * sigma_db_;
  value_db_ = rho * value_db_ + innov * unit_normal_.sample(rng_);
  last_t_ = t;
  return value_db_;
}

}  // namespace wdc
