#include "channel/gilbert_elliott.hpp"

namespace wdc {

GilbertElliott::GilbertElliott(double mean_good_s, double mean_bad_s,
                               double good_snr_db, double bad_snr_db, Rng rng)
    : good_hold_(1.0 / mean_good_s),
      bad_hold_(1.0 / mean_bad_s),
      good_snr_db_(good_snr_db),
      bad_snr_db_(bad_snr_db),
      rng_(rng) {
  // Start Good with the stationary probability, then draw the first sojourn.
  is_good_ = rng_.bernoulli(stationary_good());
  next_switch_ = (is_good_ ? good_hold_ : bad_hold_).sample(rng_);
}

void GilbertElliott::advance(SimTime t) {
  while (next_switch_ <= t) {
    is_good_ = !is_good_;
    next_switch_ += (is_good_ ? good_hold_ : bad_hold_).sample(rng_);
  }
}

bool GilbertElliott::good(SimTime t) {
  advance(t);
  return is_good_;
}

double GilbertElliott::snr_db(SimTime t) {
  return good(t) ? good_snr_db_ : bad_snr_db_;
}

double GilbertElliott::stationary_good() const {
  const double mg = good_hold_.mean();
  const double mb = bad_hold_.mean();
  return mg / (mg + mb);
}

}  // namespace wdc
