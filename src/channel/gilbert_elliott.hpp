#ifndef WDC_CHANNEL_GILBERT_ELLIOTT_HPP
#define WDC_CHANNEL_GILBERT_ELLIOTT_HPP

/// @file gilbert_elliott.hpp
/// Classic two-state Gilbert–Elliott burst-error channel, kept as the simplest
/// baseline channel model (and for tests that need analytically known behaviour).
/// Continuous-time variant: exponential sojourns in Good/Bad.

#include "util/rng.hpp"
#include "util/types.hpp"
#include "util/variates.hpp"

namespace wdc {

class GilbertElliott {
 public:
  /// @param mean_good_s  mean sojourn in Good
  /// @param mean_bad_s   mean sojourn in Bad
  /// @param good_snr_db  SNR reported while Good
  /// @param bad_snr_db   SNR reported while Bad
  GilbertElliott(double mean_good_s, double mean_bad_s, double good_snr_db,
                 double bad_snr_db, Rng rng);

  /// True if the channel is Good at time t (t non-decreasing across calls).
  bool good(SimTime t);
  double snr_db(SimTime t);

  /// Stationary probability of Good.
  double stationary_good() const;

 private:
  void advance(SimTime t);

  Exponential good_hold_;
  Exponential bad_hold_;
  double good_snr_db_;
  double bad_snr_db_;
  Rng rng_;
  bool is_good_ = true;
  SimTime next_switch_ = 0.0;
};

}  // namespace wdc

#endif  // WDC_CHANNEL_GILBERT_ELLIOTT_HPP
