#ifndef WDC_CHANNEL_FASTCOS_HPP
#define WDC_CHANNEL_FASTCOS_HPP

/// @file fastcos.hpp
/// Pinned-precision cosine kernel for the channel hot path.
///
/// `cos_turns(u)` computes cos(2π·u) from plain IEEE-754 double arithmetic —
/// no libm call, no table, no branch — so the fading substrate's per-sample
/// cost stops being a glibc `cos` call and its result stops depending on which
/// libm the host links. The argument is in *turns* (cycles, 1 turn = 2π rad):
/// the Jakes fader stores oscillator frequencies and phases pre-divided by 2π,
/// which makes range reduction a single round-to-nearest instead of a
/// Payne–Hanek dance.
///
/// Pipeline (all branch-free, auto-vectorizable):
///   1. r = u − round(u)           via the 1.5·2⁵² magic-number trick
///   2. quarter-wave fold          cos(2πr) = ±sin(2πw), w ∈ [0, ¼]
///   3. odd polynomial             sin(2πw) = w·P(w²), degree 15
///
/// The coefficients are the Taylor coefficients (−1)ᵏ(2π)^(2k+1)/(2k+1)!,
/// printed to full double precision and pinned below; the first neglected
/// term at the fold edge (w = ¼) is 6.1e-12, and with coefficient/Horner
/// rounding the measured worst case is |cos_turns(u) − cos(2πu)| ≈ 1.1e-11,
/// pinned at < 2e-11 by tests/channel against std::cos.
///
/// Determinism contract: the result is a pure function of the bit pattern of
/// `u` *provided contraction is off* — an FMA fusing `c*x + c'` would change
/// low bits between compilers. TUs that must agree bit-for-bit (the channel
/// library and its differential tests) are therefore compiled with
/// `-ffp-contract=off` (see src/channel/CMakeLists.txt). The magic-number
/// rounding additionally requires round-to-nearest-even (the default FP
/// environment) and |u| < 2⁵¹ — a fader argument is f_d·t + φ, at most a few
/// 1e6 for any plausible Doppler × sim-length product.

namespace wdc::fastmath {

/// Largest |u| for which the magic-number range reduction is exact.
inline constexpr double kCosTurnsMaxArg = 2251799813685248.0;  // 2^51

/// cos(2π·u). See file comment for the accuracy/determinism contract.
inline double cos_turns(double u) {
  // Round-to-nearest-integer without a libm call: adding 1.5·2⁵² forces the
  // fraction out of the significand (round-to-nearest-even), subtracting it
  // back leaves the rounded integer. Exact for |u| < 2⁵¹.
  constexpr double kRound = 6755399441055744.0;  // 1.5 * 2^52
  const double r = u - ((u + kRound) - kRound);  // r ∈ [-0.5, 0.5]

  // Quarter-wave fold: cos(2πr) is even, and on v = |r| ∈ [0, ½] it equals
  // sign(¼ − v)·sin(2π·|¼ − v|): for v ≤ ¼, cos(2πv) = sin(2π(¼ − v)); for
  // v ≥ ¼ it is −sin(2π(v − ¼)). Both folds are sign-bit operations, so the
  // whole reduction stays branch-free.
  const double v = r < 0.0 ? -r : r;  // compiles to andpd, not a branch
  const double sgn = 0.25 - v;        // carries the quadrant sign
  const double w = sgn < 0.0 ? -sgn : sgn;  // |¼ − v| ∈ [0, ¼]

  // sin(2πw) = w·P(w²): Taylor coefficients (−1)ᵏ(2π)^(2k+1)/(2k+1)!,
  // pinned to full double precision (do not "simplify" — goldens depend on
  // these exact bit patterns).
  constexpr double kS0 = 6.283185307179586;     // (2π)^1 / 1!
  constexpr double kS1 = -41.34170224039976;    // (2π)^3 / 3!
  constexpr double kS2 = 81.60524927607506;     // (2π)^5 / 5!
  constexpr double kS3 = -76.70585975306139;    // (2π)^7 / 7!
  constexpr double kS4 = 42.058693944897655;    // (2π)^9 / 9!
  constexpr double kS5 = -15.09464257682299;    // (2π)^11 / 11!
  constexpr double kS6 = 3.819952584848282;     // (2π)^13 / 13!
  constexpr double kS7 = -0.7181223017785006;   // (2π)^15 / 15!
  const double x = w * w;
  const double p =
      kS0 +
      x * (kS1 +
           x * (kS2 +
                x * (kS3 + x * (kS4 + x * (kS5 + x * (kS6 + x * kS7))))));
  const double s = w * p;  // sin(2πw) ≥ 0 on [0, ¼]

  // Restore the quadrant sign. s is non-negative, so a sign copy suffices;
  // written as a select (not copysign) to stay dependency-free of <cmath>.
  return sgn < 0.0 ? -s : s;
}

}  // namespace wdc::fastmath

#endif  // WDC_CHANNEL_FASTCOS_HPP
