#ifndef WDC_CHANNEL_PATHLOSS_HPP
#define WDC_CHANNEL_PATHLOSS_HPP

/// @file pathloss.hpp
/// Large-scale propagation: log-distance path loss and cell geometry.
///
/// PL(d) = PL(d0) + 10·n·log10(d/d0)   [dB]
/// with reference distance d0, exponent n (2 free space … 4 dense urban).

#include "util/rng.hpp"

namespace wdc {

struct PathLossModel {
  double ref_loss_db = 30.0;   ///< PL(d0) at the reference distance
  double ref_distance_m = 1.0; ///< d0
  double exponent = 3.0;       ///< n

  /// Path loss in dB at distance `d_m` (clamped to >= d0).
  double loss_db(double d_m) const;
};

/// Circular cell geometry; clients are dropped uniformly *by area* in the annulus
/// [min_radius, radius] around the base station.
struct CellGeometry {
  double radius_m = 500.0;
  double min_radius_m = 10.0;

  /// Sample a client distance from the base station.
  double sample_distance(Rng& rng) const;
};

}  // namespace wdc

#endif  // WDC_CHANNEL_PATHLOSS_HPP
