#include "channel/jakes.hpp"

#include <cmath>
#include <stdexcept>

namespace wdc {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

JakesFader::JakesFader(double doppler_hz, Rng& rng, unsigned oscillators)
    : doppler_hz_(doppler_hz) {
  if (doppler_hz <= 0.0) throw std::invalid_argument("JakesFader: doppler_hz > 0");
  if (oscillators < 4) throw std::invalid_argument("JakesFader: need >= 4 oscillators");
  const unsigned n = oscillators;
  omega_.reserve(n);
  phi_i_.reserve(n);
  phi_q_.reserve(n);
  const double wd = 2.0 * kPi * doppler_hz;
  for (unsigned k = 0; k < n; ++k) {
    // Arrival angles alpha_k = (2πk + θ)/N with a random rotation θ per fader
    // (Pop–Beaulieu): keeps the Doppler spectrum shape, decorrelates faders.
    const double theta = rng.uniform(0.0, 2.0 * kPi);
    const double alpha = (2.0 * kPi * k + theta) / (4.0 * n);
    omega_.push_back(wd * std::cos(alpha));
    phi_i_.push_back(rng.uniform(0.0, 2.0 * kPi));
    phi_q_.push_back(rng.uniform(0.0, 2.0 * kPi));
  }
  norm_ = std::sqrt(1.0 / static_cast<double>(n));
}

double JakesFader::power_gain(SimTime t) const {
  double hi = 0.0, hq = 0.0;
  for (std::size_t k = 0; k < omega_.size(); ++k) {
    const double w = omega_[k] * t;
    hi += std::cos(w + phi_i_[k]);
    hq += std::cos(w + phi_q_[k]);
  }
  hi *= norm_;
  hq *= norm_;
  return hi * hi + hq * hq;
}

double JakesFader::power_gain_db(SimTime t) const {
  return 10.0 * std::log10(std::max(power_gain(t), 1e-12));
}

}  // namespace wdc
