#include "channel/jakes_v2.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "channel/fastcos.hpp"

namespace wdc {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kInvTwoPi = 0.15915494309189535;  // 1 / 2π
}  // namespace

JakesFaderV2::JakesFaderV2(double doppler_hz, Rng& rng, unsigned oscillators)
    : doppler_hz_(doppler_hz), n_(oscillators) {
  if (doppler_hz <= 0.0)
    throw std::invalid_argument("JakesFaderV2: doppler_hz > 0");
  if (oscillators < 4)
    throw std::invalid_argument("JakesFaderV2: need >= 4 oscillators");
  if (oscillators > kMaxOscillators)
    throw std::invalid_argument("JakesFaderV2: oscillators exceed kMaxOscillators");
  const unsigned n = oscillators;
  freq_turns_.resize(2 * static_cast<std::size_t>(n));
  phase_turns_.resize(2 * static_cast<std::size_t>(n));
  for (unsigned k = 0; k < n; ++k) {
    // Same Pop–Beaulieu geometry and the same three draws per oscillator as
    // v1 (θ, φ_I, φ_Q in that order): a v1 and a v2 constructed from the same
    // Rng state share every phase, and anything split() off afterwards (the
    // shadowing stream) is unperturbed by the version choice.
    const double theta = rng.uniform(0.0, 2.0 * kPi);
    const double alpha = (2.0 * kPi * k + theta) / (4.0 * n);
    // Stored in turns: ω/2π = f_d·cos(α) (Hz), φ/2π ∈ [0, 1).
    freq_turns_[k] = doppler_hz * std::cos(alpha);
    freq_turns_[n + k] = freq_turns_[k];
    phase_turns_[k] = rng.uniform(0.0, 2.0 * kPi) * kInvTwoPi;
    phase_turns_[n + k] = rng.uniform(0.0, 2.0 * kPi) * kInvTwoPi;
  }
  norm_ = std::sqrt(1.0 / static_cast<double>(n));
}

double JakesFaderV2::power_gain(SimTime t) const {
  const std::size_t n = n_;
  const double* f = freq_turns_.data();
  const double* p = phase_turns_.data();
  // Straight-line kernel into a scratch buffer (no cross-iteration dependency)
  // so the compiler vectorizes the polynomial across all 2n sinusoids; the
  // reductions stay scalar and in fixed k-ascending order — the same order
  // power_gain_block uses, which is what makes the two paths bit-identical.
  double buf[2 * kMaxOscillators];
  for (std::size_t k = 0; k < 2 * n; ++k)
    buf[k] = fastmath::cos_turns(f[k] * t + p[k]);
  double hi = 0.0, hq = 0.0;
  for (std::size_t k = 0; k < n; ++k) hi += buf[k];
  for (std::size_t k = 0; k < n; ++k) hq += buf[n + k];
  hi *= norm_;
  hq *= norm_;
  return hi * hi + hq * hq;
}

double JakesFaderV2::power_gain_db(SimTime t) const {
  return 10.0 * std::log10(std::max(power_gain(t), 1e-12));
}

void JakesFaderV2::power_gain_block(SimTime t0, double dt, std::size_t count,
                                    double* out) const {
  // Tile the grid; within a tile run oscillators outer / samples inner so the
  // inner loop is a contiguous non-reducing stream the vectorizer loves.
  // Accumulation order over k is ascending exactly as in power_gain, and each
  // sample time is the same t0 + dt·i expression — bit-identity with the
  // pointwise path is by construction, and tests/channel pins it.
  constexpr std::size_t kTile = 128;
  const std::size_t n = n_;
  const double* f = freq_turns_.data();
  const double* p = phase_turns_.data();
  double ts[kTile], hi[kTile], hq[kTile];
  for (std::size_t base = 0; base < count; base += kTile) {
    const std::size_t m = std::min(kTile, count - base);
    for (std::size_t i = 0; i < m; ++i)
      ts[i] = t0 + dt * static_cast<double>(base + i);
    for (std::size_t i = 0; i < m; ++i) hi[i] = 0.0;
    for (std::size_t i = 0; i < m; ++i) hq[i] = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const double fk = f[k];
      const double pk = p[k];
      for (std::size_t i = 0; i < m; ++i)
        hi[i] += fastmath::cos_turns(fk * ts[i] + pk);
    }
    for (std::size_t k = 0; k < n; ++k) {
      const double fk = f[n + k];
      const double pk = p[n + k];
      for (std::size_t i = 0; i < m; ++i)
        hq[i] += fastmath::cos_turns(fk * ts[i] + pk);
    }
    for (std::size_t i = 0; i < m; ++i) {
      const double a = hi[i] * norm_;
      const double b = hq[i] * norm_;
      out[base + i] = a * a + b * b;
    }
  }
}

}  // namespace wdc
