#ifndef WDC_CHANNEL_SHADOWING_HPP
#define WDC_CHANNEL_SHADOWING_HPP

/// @file shadowing.hpp
/// Lognormal shadow fading. Shadowing is quasi-static per client (drawn once at
/// placement) with an optional slow exponentially-correlated drift (Gudmundson-style
/// decorrelation) so long runs see shadowing dynamics without per-event cost.

#include "util/rng.hpp"
#include "util/types.hpp"
#include "util/variates.hpp"

namespace wdc {

class Shadowing {
 public:
  /// @param sigma_db    standard deviation of the dB-domain Gaussian (0 disables)
  /// @param decorr_time time constant of the OU drift in seconds (<=0: static)
  Shadowing(double sigma_db, double decorr_time, Rng rng);

  /// Shadowing gain in dB at time `t`. Calls must be non-decreasing in `t`.
  double gain_db(SimTime t);

  double sigma_db() const { return sigma_db_; }

 private:
  double sigma_db_;
  double decorr_time_;
  Rng rng_;
  Normal unit_normal_{0.0, 1.0};
  SimTime last_t_ = 0.0;
  double value_db_;
};

}  // namespace wdc

#endif  // WDC_CHANNEL_SHADOWING_HPP
