#include "channel/fsmc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace wdc {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Fsmc::Fsmc(double mean_snr_db, double doppler_hz, unsigned num_states, double slot_s,
           Rng rng)
    : slot_s_(slot_s), rng_(rng) {
  if (num_states < 2) throw std::invalid_argument("Fsmc: need >= 2 states");
  if (slot_s <= 0.0) throw std::invalid_argument("Fsmc: slot must be > 0");
  if (doppler_hz <= 0.0) throw std::invalid_argument("Fsmc: doppler must be > 0");
  rep_snr_db_.resize(num_states);
  p_up_.resize(num_states);
  p_down_.resize(num_states);
  build(mean_snr_db, doppler_hz);
  // Start in a state drawn from the stationary distribution (equiprobable).
  state_ = static_cast<unsigned>(rng_.uniform_int(num_states));
}

void Fsmc::build(double mean_snr_db, double doppler_hz) {
  const unsigned K = static_cast<unsigned>(rep_snr_db_.size());
  const double mean_lin = std::pow(10.0, mean_snr_db / 10.0);

  // Equiprobable thresholds: F(Γ_k) = k/K with F(γ) = 1−exp(−γ/γ̄)
  // ⇒ Γ_k = −γ̄·ln(1 − k/K).
  thresholds_lin_.resize(K + 1);
  thresholds_lin_[0] = 0.0;
  for (unsigned k = 1; k < K; ++k)
    thresholds_lin_[k] =
        -mean_lin * std::log(1.0 - static_cast<double>(k) / static_cast<double>(K));
  thresholds_lin_[K] = std::numeric_limits<double>::infinity();

  // Representative SNR: conditional mean within [Γ_k, Γ_{k+1}) under Exp(γ̄):
  // E[γ | Γ_k ≤ γ < Γ_{k+1}] = γ̄ + (Γ_k e^{−Γ_k/γ̄} − Γ_{k+1} e^{−Γ_{k+1}/γ̄}) / (π_k)
  // with π_k = e^{−Γ_k/γ̄} − e^{−Γ_{k+1}/γ̄} = 1/K.
  const double pi_k = 1.0 / static_cast<double>(K);
  for (unsigned k = 0; k < K; ++k) {
    const double a = thresholds_lin_[k];
    const double b = thresholds_lin_[k + 1];
    const double ea = std::exp(-a / mean_lin);
    const double eb = std::isinf(b) ? 0.0 : std::exp(-b / mean_lin);
    const double term_b = std::isinf(b) ? 0.0 : b * eb;
    const double cond_mean = mean_lin + (a * ea - term_b) / pi_k;
    rep_snr_db_[k] = 10.0 * std::log10(std::max(cond_mean, 1e-12));
  }

  // Level-crossing rates and per-slot adjacent transition probabilities.
  const auto lcr = [&](double gamma) {
    if (gamma <= 0.0 || std::isinf(gamma)) return 0.0;
    return std::sqrt(2.0 * kPi * gamma / mean_lin) * doppler_hz *
           std::exp(-gamma / mean_lin);
  };
  for (unsigned k = 0; k < K; ++k) {
    const double up = k + 1 < K ? lcr(thresholds_lin_[k + 1]) * slot_s_ / pi_k : 0.0;
    const double down = k > 0 ? lcr(thresholds_lin_[k]) * slot_s_ / pi_k : 0.0;
    // Clamp so the slot approximation stays a proper distribution even for large
    // f_d·T_s; warn-level accuracy loss is acceptable, correctness is not.
    p_up_[k] = std::min(up, 0.45);
    p_down_[k] = std::min(down, 0.45);
  }
}

void Fsmc::step() {
  const double u = rng_.uniform();
  if (u < p_up_[state_]) {
    ++state_;
  } else if (u < p_up_[state_] + p_down_[state_]) {
    --state_;
  }
}

unsigned Fsmc::state(SimTime t) {
  WDC_ASSERT(t >= 0.0, "Fsmc: negative query time ", t);
  // Queries behind the frontier (delayed-CSI sampling) see the newest state;
  // the chain only ever advances.
  const auto target = static_cast<std::int64_t>(t / slot_s_);
  while (slots_done_ < target) {
    step();
    ++slots_done_;
  }
  return state_;
}

double Fsmc::snr_db(SimTime t) { return rep_snr_db_[state(t)]; }

double Fsmc::threshold_db(unsigned k) const {
  if (k >= thresholds_lin_.size())
    throw std::out_of_range("Fsmc::threshold_db");
  const double lin = thresholds_lin_[k];
  if (lin <= 0.0) return -std::numeric_limits<double>::infinity();
  if (std::isinf(lin)) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(lin);
}

double Fsmc::stationary_prob(unsigned) const {
  return 1.0 / static_cast<double>(rep_snr_db_.size());
}

}  // namespace wdc
