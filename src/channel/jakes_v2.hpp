#ifndef WDC_CHANNEL_JAKES_V2_HPP
#define WDC_CHANNEL_JAKES_V2_HPP

/// @file jakes_v2.hpp
/// Second-generation Jakes fader: the same Pop–Beaulieu sum-of-sinusoids model
/// as JakesFader (identical oscillator geometry, identical RNG draw order, so
/// a v1 and a v2 built from the same stream share every arrival angle and
/// phase), but the per-sample evaluation runs through the pinned polynomial
/// kernel in fastcos.hpp instead of 32 glibc `cos` calls.
///
/// Consequences of that swap:
///  - ~an order of magnitude cheaper per sample, and the cost is plain
///    vectorizable arithmetic rather than a libm call;
///  - bit-deterministic across platforms/libms (glibc `cos` is only pinned
///    per libm build) — the hot loop is pure IEEE arithmetic compiled with
///    contraction off;
///  - NOT bit-identical to v1: the kernel differs from libm cos by ~1e-11 per
///    oscillator, so simulation digests drift and goldens are re-pinned under
///    `channel_version=jakes_v2`. Statistical equivalence (moments, J₀²
///    autocorrelation, level crossings, fade durations) is locked by the
///    `-L channel` differential tier; v1 stays reachable via
///    `channel_version=jakes_v1` and keeps its own pinned goldens.
///
/// Like v1, g(t) is a pure function of t given the phases — no state advance,
/// safe to evaluate from any thread, bit-stable under re-evaluation. The block
/// API streams a uniform grid of power gains bit-identically to the pointwise
/// path (same summation order), trading the per-call setup for long
/// vectorizable inner loops — the substrate sweep workers use to precompute
/// per-client SNR trajectories instead of re-evaluating the fader per event.

#include <cstddef>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace wdc {

class JakesFaderV2 {
 public:
  /// Hard cap on oscillators per quadrature branch (stack scratch bound).
  static constexpr unsigned kMaxOscillators = 64;

  /// Draws 3 uniforms per oscillator in exactly v1's order (θ, φ_I, φ_Q), so
  /// the two versions consume identical randomness from a shared stream.
  JakesFaderV2(double doppler_hz, Rng& rng, unsigned oscillators = 16);

  /// Instantaneous power gain |h(t)|² (linear, mean ≈ 1).
  double power_gain(SimTime t) const;

  /// Power gain in dB.
  double power_gain_db(SimTime t) const;

  /// Fill out[0..count) with power_gain(t0 + i·dt) — bit-identical to calling
  /// power_gain at those times, but evaluated sample-blocked so the kernel
  /// vectorizes over the grid as well as over oscillators.
  void power_gain_block(SimTime t0, double dt, std::size_t count,
                        double* out) const;

  double doppler_hz() const { return doppler_hz_; }
  unsigned oscillators() const { return n_; }

 private:
  double doppler_hz_;
  unsigned n_;
  // Per-sinusoid frequency (in turns/s = Hz) and phase (in turns), I branch in
  // [0, n), Q branch in [n, 2n) — flat so both loops stream contiguously.
  std::vector<double> freq_turns_;
  std::vector<double> phase_turns_;
  double norm_;
};

}  // namespace wdc

#endif  // WDC_CHANNEL_JAKES_V2_HPP
