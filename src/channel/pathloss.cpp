#include "channel/pathloss.hpp"

#include <algorithm>
#include <cmath>

namespace wdc {

double PathLossModel::loss_db(double d_m) const {
  const double d = std::max(d_m, ref_distance_m);
  return ref_loss_db + 10.0 * exponent * std::log10(d / ref_distance_m);
}

double CellGeometry::sample_distance(Rng& rng) const {
  // Uniform by area: r = sqrt(U*(R²−r0²)+r0²).
  const double r0sq = min_radius_m * min_radius_m;
  const double rsq = rng.uniform() * (radius_m * radius_m - r0sq) + r0sq;
  return std::sqrt(rsq);
}

}  // namespace wdc
