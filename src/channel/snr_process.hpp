#ifndef WDC_CHANNEL_SNR_PROCESS_HPP
#define WDC_CHANNEL_SNR_PROCESS_HPP

/// @file snr_process.hpp
/// Per-link received-SNR process — the single abstraction the PHY/MAC consume.
///
/// A process combines the static link budget (tx power − path loss + shadowing −
/// noise) with a small-scale fading model. Queries must be non-decreasing in time
/// (discrete-event simulations naturally satisfy this).

#include <memory>
#include <string>

#include "channel/fsmc.hpp"
#include "channel/gilbert_elliott.hpp"
#include "channel/jakes.hpp"
#include "channel/shadowing.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wdc {

class SnrProcess {
 public:
  virtual ~SnrProcess() = default;
  /// Instantaneous SNR (dB) at time t; calls non-decreasing in t.
  virtual double snr_db(SimTime t) = 0;
  /// Long-run average SNR (dB) of the link (the γ̄ driving the fading model).
  virtual double mean_snr_db() const = 0;
};

/// Constant SNR — unit tests and "ideal channel" ablations.
class FixedSnr final : public SnrProcess {
 public:
  explicit FixedSnr(double snr_db) : snr_db_(snr_db) {}
  double snr_db(SimTime) override { return snr_db_; }
  double mean_snr_db() const override { return snr_db_; }

 private:
  double snr_db_;
};

/// Rayleigh fading (Jakes) around a mean SNR, with optional lognormal shadowing.
class RayleighSnr final : public SnrProcess {
 public:
  RayleighSnr(double mean_snr_db, double doppler_hz, double shadow_sigma_db,
              double shadow_decorr_s, Rng& rng, unsigned oscillators = 16);
  double snr_db(SimTime t) override;
  double mean_snr_db() const override { return mean_snr_db_; }

 private:
  double mean_snr_db_;
  JakesFader fader_;
  Shadowing shadowing_;
};

/// FSMC-driven SNR.
class FsmcSnr final : public SnrProcess {
 public:
  FsmcSnr(double mean_snr_db, double doppler_hz, unsigned num_states, double slot_s,
          Rng& rng);
  double snr_db(SimTime t) override { return fsmc_.snr_db(t); }
  double mean_snr_db() const override { return mean_snr_db_; }
  Fsmc& chain() { return fsmc_; }

 private:
  double mean_snr_db_;
  Fsmc fsmc_;
};

/// Gilbert–Elliott-driven SNR.
class GilbertElliottSnr final : public SnrProcess {
 public:
  GilbertElliottSnr(double mean_good_s, double mean_bad_s, double good_snr_db,
                    double bad_snr_db, Rng& rng);
  double snr_db(SimTime t) override { return ge_.snr_db(t); }
  /// Stationary linear-domain mix of the Good/Bad levels, in dB.
  double mean_snr_db() const override;

 private:
  GilbertElliott ge_;
  double good_snr_db_;
  double bad_snr_db_;
};

/// Which small-scale model a scenario uses.
enum class FadingModel { kNone, kRayleigh, kFsmc, kGilbertElliott };

/// Parse "none" / "rayleigh" / "fsmc" / "ge"; throws on unknown name.
FadingModel fading_model_from_string(const std::string& name);
std::string to_string(FadingModel m);

/// Parameters shared by all links of a scenario (per-link mean SNR differs).
struct FadingConfig {
  FadingModel model = FadingModel::kRayleigh;
  double doppler_hz = 8.0;          ///< pedestrian-ish at 2 GHz
  double shadow_sigma_db = 0.0;     ///< lognormal shadowing σ (0 = off)
  double shadow_decorr_s = 30.0;
  unsigned fsmc_states = 8;
  double fsmc_slot_s = 0.005;
  double ge_mean_good_s = 1.0;      ///< Gilbert–Elliott sojourns
  double ge_mean_bad_s = 0.2;
  double ge_bad_snr_db = -5.0;
};

/// Build a process with long-run mean `mean_snr_db` under `cfg`; draws all needed
/// randomness from `rng` (which should be a dedicated per-link stream).
std::unique_ptr<SnrProcess> make_snr_process(const FadingConfig& cfg,
                                             double mean_snr_db, Rng& rng);

}  // namespace wdc

#endif  // WDC_CHANNEL_SNR_PROCESS_HPP
