#ifndef WDC_CHANNEL_SNR_PROCESS_HPP
#define WDC_CHANNEL_SNR_PROCESS_HPP

/// @file snr_process.hpp
/// Per-link received-SNR process — the single abstraction the PHY/MAC consume.
///
/// A process combines the static link budget (tx power − path loss + shadowing −
/// noise) with a small-scale fading model. Queries must be non-decreasing in time
/// (discrete-event simulations naturally satisfy this).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "channel/fsmc.hpp"
#include "channel/gilbert_elliott.hpp"
#include "channel/jakes.hpp"
#include "channel/jakes_v2.hpp"
#include "channel/shadowing.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wdc {

/// Which generation of the Rayleigh fading substrate a scenario runs.
///
/// v1 is the original libm-cos sum-of-sinusoids; v2 is the vectorized
/// pinned-polynomial kernel (jakes_v2.hpp) — statistically equivalent (proven
/// by the `-L channel` differential tier) though not bit-identical per sample
/// (≤ ~5e-9 dB apart). Each version is regression-locked by its own golden
/// table (tests/engine/golden_table.hpp; the tables coincide today because
/// the kernel gap crosses no decision boundary at the pinned operating
/// point). New scenarios default to v2; v1 stays reachable for reproducing
/// pre-v2 results.
enum class ChannelVersion { kJakesV1, kJakesV2 };

/// Parse "jakes_v1" / "jakes_v2"; throws on unknown name.
ChannelVersion channel_version_from_string(const std::string& name);
std::string to_string(ChannelVersion v);

class SnrProcess {
 public:
  virtual ~SnrProcess() = default;
  /// Instantaneous SNR (dB) at time t; calls non-decreasing in t.
  virtual double snr_db(SimTime t) = 0;
  /// Long-run average SNR (dB) of the link (the γ̄ driving the fading model).
  virtual double mean_snr_db() const = 0;

  /// Block form of snr_db: fill out[0..count) with snr_db(t0 + i·dt), i
  /// ascending. Same non-decreasing-time contract as snr_db (the block may
  /// not rewind behind an earlier query). The default loops over snr_db;
  /// RayleighSnr overrides it with the fader's vectorized block kernel,
  /// bit-identically to the loop — sweep workers can precompute per-client
  /// trajectories and stream them instead of re-evaluating per event.
  virtual void fill_snr_db(SimTime t0, double dt, std::size_t count,
                           double* out);
};

/// A per-client SNR trajectory precomputed on a uniform grid — the streaming
/// substrate for block-mode sweep workers. Construction drains `proc` through
/// fill_snr_db once; samples are then O(1) lookups with no trig at all.
class SnrTrajectory {
 public:
  SnrTrajectory(SnrProcess& proc, SimTime t0, double dt, std::size_t count);

  double snr_db_at(std::size_t i) const { return snr_db_[i]; }
  SimTime time_at(std::size_t i) const {
    return t0_ + dt_ * static_cast<double>(i);
  }
  std::size_t size() const { return snr_db_.size(); }
  SimTime t0() const { return t0_; }
  double dt() const { return dt_; }

 private:
  SimTime t0_;
  double dt_;
  std::vector<double> snr_db_;
};

/// Constant SNR — unit tests and "ideal channel" ablations.
class FixedSnr final : public SnrProcess {
 public:
  explicit FixedSnr(double snr_db) : snr_db_(snr_db) {}
  double snr_db(SimTime) override { return snr_db_; }
  double mean_snr_db() const override { return snr_db_; }

 private:
  double snr_db_;
};

/// Rayleigh fading (Jakes) around a mean SNR, with optional lognormal shadowing.
///
/// `version` selects the fader generation. Both generations draw identical
/// randomness in identical order (3 uniforms per oscillator, then one split
/// for shadowing), so the version choice never perturbs the scenario's seed
/// chain — switching it changes only how each cosine is evaluated.
class RayleighSnr final : public SnrProcess {
 public:
  RayleighSnr(double mean_snr_db, double doppler_hz, double shadow_sigma_db,
              double shadow_decorr_s, Rng& rng, unsigned oscillators = 16,
              ChannelVersion version = ChannelVersion::kJakesV2);
  double snr_db(SimTime t) override;
  double mean_snr_db() const override { return mean_snr_db_; }
  /// Block path: v2 streams power gains through the fader's vectorized block
  /// kernel (bit-identical to the pointwise loop); v1 falls back to the loop.
  void fill_snr_db(SimTime t0, double dt, std::size_t count,
                   double* out) override;

 private:
  double mean_snr_db_;
  // Exactly one of the two faders is live, per `version` (a predictable
  // branch per sample beats a virtual hop on the hottest call in the repo).
  std::unique_ptr<JakesFader> v1_;
  std::unique_ptr<JakesFaderV2> v2_;
  Shadowing shadowing_;
};

/// FSMC-driven SNR.
class FsmcSnr final : public SnrProcess {
 public:
  FsmcSnr(double mean_snr_db, double doppler_hz, unsigned num_states, double slot_s,
          Rng& rng);
  double snr_db(SimTime t) override { return fsmc_.snr_db(t); }
  double mean_snr_db() const override { return mean_snr_db_; }
  Fsmc& chain() { return fsmc_; }

 private:
  double mean_snr_db_;
  Fsmc fsmc_;
};

/// Gilbert–Elliott-driven SNR.
class GilbertElliottSnr final : public SnrProcess {
 public:
  GilbertElliottSnr(double mean_good_s, double mean_bad_s, double good_snr_db,
                    double bad_snr_db, Rng& rng);
  double snr_db(SimTime t) override { return ge_.snr_db(t); }
  /// Stationary linear-domain mix of the Good/Bad levels, in dB.
  double mean_snr_db() const override;

 private:
  GilbertElliott ge_;
  double good_snr_db_;
  double bad_snr_db_;
};

/// Which small-scale model a scenario uses.
enum class FadingModel { kNone, kRayleigh, kFsmc, kGilbertElliott };

/// Parse "none" / "rayleigh" / "fsmc" / "ge"; throws on unknown name.
FadingModel fading_model_from_string(const std::string& name);
std::string to_string(FadingModel m);

/// Parameters shared by all links of a scenario (per-link mean SNR differs).
struct FadingConfig {
  FadingModel model = FadingModel::kRayleigh;
  /// Rayleigh substrate generation (`channel_version` scenario key).
  ChannelVersion channel_version = ChannelVersion::kJakesV2;
  double doppler_hz = 8.0;          ///< pedestrian-ish at 2 GHz
  double shadow_sigma_db = 0.0;     ///< lognormal shadowing σ (0 = off)
  double shadow_decorr_s = 30.0;
  unsigned fsmc_states = 8;
  double fsmc_slot_s = 0.005;
  double ge_mean_good_s = 1.0;      ///< Gilbert–Elliott sojourns
  double ge_mean_bad_s = 0.2;
  double ge_bad_snr_db = -5.0;
};

/// Build a process with long-run mean `mean_snr_db` under `cfg`; draws all needed
/// randomness from `rng` (which should be a dedicated per-link stream).
std::unique_ptr<SnrProcess> make_snr_process(const FadingConfig& cfg,
                                             double mean_snr_db, Rng& rng);

}  // namespace wdc

#endif  // WDC_CHANNEL_SNR_PROCESS_HPP
