#ifndef WDC_CHANNEL_FSMC_HPP
#define WDC_CHANNEL_FSMC_HPP

/// @file fsmc.hpp
/// Finite-State Markov Channel (Wang & Moayeri style) derived from the Rayleigh
/// SNR distribution.
///
/// The received-SNR range is partitioned into K equiprobable states by thresholds
/// Γ₀=0 < Γ₁ < … < Γ_K=∞ with P(Γ_k ≤ γ < Γ_{k+1}) = 1/K under the exponential SNR
/// pdf (mean γ̄). Transitions happen only between adjacent states once per slot T_s,
/// with probabilities from the level-crossing rate
///     N(Γ) = sqrt(2πΓ/γ̄) · f_d · exp(−Γ/γ̄):
///     p_{k,k+1} = N(Γ_{k+1})·T_s / π_k ,  p_{k,k−1} = N(Γ_k)·T_s / π_k .
///
/// The FSMC advances lazily: a state(t) / snr_db(t) query fast-forwards the
/// chain by the needed number of slots. A query *behind* the frontier (the MAC
/// samples delayed CSI at now − csi_delay while decode draws sample at now)
/// returns the newest state — a Markov chain cannot rewind, and the frontier
/// only ever moves forward.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace wdc {

class Fsmc {
 public:
  /// @param mean_snr_db average received SNR γ̄ (dB)
  /// @param doppler_hz  maximum Doppler frequency
  /// @param num_states  K (≥ 2)
  /// @param slot_s      slot duration T_s; must satisfy f_d·T_s ≪ 1
  Fsmc(double mean_snr_db, double doppler_hz, unsigned num_states, double slot_s,
       Rng rng);

  /// State index in [0, K) at time t (0 = deepest fade). Queries behind the
  /// already-simulated frontier return the newest state (see file comment).
  unsigned state(SimTime t);

  /// Representative SNR of the current state: the conditional mean SNR within the
  /// state's threshold interval, in dB.
  double snr_db(SimTime t);

  unsigned num_states() const { return static_cast<unsigned>(rep_snr_db_.size()); }
  double threshold_db(unsigned k) const;        ///< Γ_k in dB (k in [0, K]); Γ_0 = −inf
  double stationary_prob(unsigned k) const;     ///< π_k (≈ 1/K by construction)
  double p_up(unsigned k) const { return p_up_[k]; }
  double p_down(unsigned k) const { return p_down_[k]; }
  double slot_s() const { return slot_s_; }

 private:
  void build(double mean_snr_db, double doppler_hz);
  void step();

  double slot_s_;
  Rng rng_;
  std::vector<double> thresholds_lin_;  ///< Γ_0..Γ_K (linear), Γ_0=0, Γ_K=inf
  std::vector<double> rep_snr_db_;      ///< per-state representative SNR (dB)
  std::vector<double> p_up_;            ///< per-state upward transition prob per slot
  std::vector<double> p_down_;          ///< per-state downward transition prob per slot
  unsigned state_ = 0;
  std::int64_t slots_done_ = 0;
};

}  // namespace wdc

#endif  // WDC_CHANNEL_FSMC_HPP
