#ifndef WDC_CHANNEL_JAKES_HPP
#define WDC_CHANNEL_JAKES_HPP

/// @file jakes.hpp
/// Rayleigh fast fading via a sum-of-sinusoids Jakes simulator (Pop–Beaulieu
/// improved variant with random phases). Produces a *time-coherent* power gain
/// g(t) = |h(t)|², E[g] = 1, with autocorrelation ≈ J₀(2π·f_d·τ)² — the property
/// link adaptation exploits (good now ⇒ probably good a moment later).
///
/// Being a deterministic function of t given the random phases, g(t) can be
/// evaluated at arbitrary event times with no state advance — ideal for
/// discrete-event use.

#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace wdc {

class JakesFader {
 public:
  /// @param doppler_hz maximum Doppler frequency f_d = v/λ (e.g. 1.2 m/s at 900 MHz
  ///                   ⇒ ≈3.6 Hz pedestrian; 14 m/s ⇒ ≈42 Hz vehicular)
  /// @param rng        source of the oscillator phases
  /// @param oscillators number of sinusoids per quadrature branch (≥8 recommended)
  JakesFader(double doppler_hz, Rng& rng, unsigned oscillators = 16);

  /// Instantaneous power gain |h(t)|² (linear, mean ≈ 1).
  double power_gain(SimTime t) const;

  /// Power gain in dB.
  double power_gain_db(SimTime t) const;

  double doppler_hz() const { return doppler_hz_; }

 private:
  double doppler_hz_;
  // Per-oscillator Doppler shift (rad/s) and phases for the I and Q branches.
  std::vector<double> omega_;
  std::vector<double> phi_i_;
  std::vector<double> phi_q_;
  double norm_;
};

}  // namespace wdc

#endif  // WDC_CHANNEL_JAKES_HPP
