#include "channel/snr_process.hpp"

#include <cmath>
#include <stdexcept>

namespace wdc {

RayleighSnr::RayleighSnr(double mean_snr_db, double doppler_hz,
                         double shadow_sigma_db, double shadow_decorr_s, Rng& rng,
                         unsigned oscillators)
    : mean_snr_db_(mean_snr_db),
      fader_(doppler_hz, rng, oscillators),
      shadowing_(shadow_sigma_db, shadow_decorr_s, rng.split()) {}

double RayleighSnr::snr_db(SimTime t) {
  return mean_snr_db_ + shadowing_.gain_db(t) + fader_.power_gain_db(t);
}

FsmcSnr::FsmcSnr(double mean_snr_db, double doppler_hz, unsigned num_states,
                 double slot_s, Rng& rng)
    : mean_snr_db_(mean_snr_db),
      fsmc_(mean_snr_db, doppler_hz, num_states, slot_s, rng.split()) {}

GilbertElliottSnr::GilbertElliottSnr(double mean_good_s, double mean_bad_s,
                                     double good_snr_db, double bad_snr_db, Rng& rng)
    : ge_(mean_good_s, mean_bad_s, good_snr_db, bad_snr_db, rng.split()),
      good_snr_db_(good_snr_db),
      bad_snr_db_(bad_snr_db) {}

double GilbertElliottSnr::mean_snr_db() const {
  const double pg = ge_.stationary_good();
  const double lin = pg * std::pow(10.0, good_snr_db_ / 10.0) +
                     (1.0 - pg) * std::pow(10.0, bad_snr_db_ / 10.0);
  return 10.0 * std::log10(lin);
}

FadingModel fading_model_from_string(const std::string& name) {
  if (name == "none") return FadingModel::kNone;
  if (name == "rayleigh") return FadingModel::kRayleigh;
  if (name == "fsmc") return FadingModel::kFsmc;
  if (name == "ge" || name == "gilbert-elliott") return FadingModel::kGilbertElliott;
  throw std::invalid_argument("unknown fading model: " + name);
}

std::string to_string(FadingModel m) {
  switch (m) {
    case FadingModel::kNone: return "none";
    case FadingModel::kRayleigh: return "rayleigh";
    case FadingModel::kFsmc: return "fsmc";
    case FadingModel::kGilbertElliott: return "ge";
  }
  return "?";
}

std::unique_ptr<SnrProcess> make_snr_process(const FadingConfig& cfg,
                                             double mean_snr_db, Rng& rng) {
  switch (cfg.model) {
    case FadingModel::kNone:
      return std::make_unique<FixedSnr>(mean_snr_db);
    case FadingModel::kRayleigh:
      return std::make_unique<RayleighSnr>(mean_snr_db, cfg.doppler_hz,
                                           cfg.shadow_sigma_db, cfg.shadow_decorr_s,
                                           rng);
    case FadingModel::kFsmc:
      return std::make_unique<FsmcSnr>(mean_snr_db, cfg.doppler_hz, cfg.fsmc_states,
                                       cfg.fsmc_slot_s, rng);
    case FadingModel::kGilbertElliott:
      return std::make_unique<GilbertElliottSnr>(cfg.ge_mean_good_s, cfg.ge_mean_bad_s,
                                                 mean_snr_db, cfg.ge_bad_snr_db, rng);
  }
  throw std::logic_error("make_snr_process: unreachable");
}

}  // namespace wdc
