#include "channel/snr_process.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace wdc {

void SnrProcess::fill_snr_db(SimTime t0, double dt, std::size_t count,
                             double* out) {
  for (std::size_t i = 0; i < count; ++i)
    out[i] = snr_db(t0 + dt * static_cast<double>(i));
}

SnrTrajectory::SnrTrajectory(SnrProcess& proc, SimTime t0, double dt,
                             std::size_t count)
    : t0_(t0), dt_(dt), snr_db_(count) {
  proc.fill_snr_db(t0, dt, count, snr_db_.data());
}

RayleighSnr::RayleighSnr(double mean_snr_db, double doppler_hz,
                         double shadow_sigma_db, double shadow_decorr_s, Rng& rng,
                         unsigned oscillators, ChannelVersion version)
    : mean_snr_db_(mean_snr_db),
      // Both faders consume identical randomness (3 uniforms per oscillator,
      // same order), so the split() the shadowing stream sees is independent
      // of the version choice — switching versions perturbs nothing else.
      v1_(version == ChannelVersion::kJakesV1
              ? std::make_unique<JakesFader>(doppler_hz, rng, oscillators)
              : nullptr),
      v2_(version == ChannelVersion::kJakesV2
              ? std::make_unique<JakesFaderV2>(doppler_hz, rng, oscillators)
              : nullptr),
      shadowing_(shadow_sigma_db, shadow_decorr_s, rng.split()) {}

double RayleighSnr::snr_db(SimTime t) {
  const double fade_db = v2_ ? v2_->power_gain_db(t) : v1_->power_gain_db(t);
  return mean_snr_db_ + shadowing_.gain_db(t) + fade_db;
}

void RayleighSnr::fill_snr_db(SimTime t0, double dt, std::size_t count,
                              double* out) {
  if (!v2_) {
    SnrProcess::fill_snr_db(t0, dt, count, out);
    return;
  }
  std::vector<double> gain(count);
  v2_->power_gain_block(t0, dt, count, gain.data());
  for (std::size_t i = 0; i < count; ++i) {
    const SimTime t = t0 + dt * static_cast<double>(i);
    out[i] = mean_snr_db_ + shadowing_.gain_db(t) +
             10.0 * std::log10(std::max(gain[i], 1e-12));
  }
}

FsmcSnr::FsmcSnr(double mean_snr_db, double doppler_hz, unsigned num_states,
                 double slot_s, Rng& rng)
    : mean_snr_db_(mean_snr_db),
      fsmc_(mean_snr_db, doppler_hz, num_states, slot_s, rng.split()) {}

GilbertElliottSnr::GilbertElliottSnr(double mean_good_s, double mean_bad_s,
                                     double good_snr_db, double bad_snr_db, Rng& rng)
    : ge_(mean_good_s, mean_bad_s, good_snr_db, bad_snr_db, rng.split()),
      good_snr_db_(good_snr_db),
      bad_snr_db_(bad_snr_db) {}

double GilbertElliottSnr::mean_snr_db() const {
  const double pg = ge_.stationary_good();
  const double lin = pg * std::pow(10.0, good_snr_db_ / 10.0) +
                     (1.0 - pg) * std::pow(10.0, bad_snr_db_ / 10.0);
  return 10.0 * std::log10(lin);
}

ChannelVersion channel_version_from_string(const std::string& name) {
  if (name == "jakes_v1") return ChannelVersion::kJakesV1;
  if (name == "jakes_v2") return ChannelVersion::kJakesV2;
  throw std::invalid_argument("unknown channel version: " + name);
}

std::string to_string(ChannelVersion v) {
  switch (v) {
    case ChannelVersion::kJakesV1: return "jakes_v1";
    case ChannelVersion::kJakesV2: return "jakes_v2";
  }
  return "?";
}

FadingModel fading_model_from_string(const std::string& name) {
  if (name == "none") return FadingModel::kNone;
  if (name == "rayleigh") return FadingModel::kRayleigh;
  if (name == "fsmc") return FadingModel::kFsmc;
  if (name == "ge" || name == "gilbert-elliott") return FadingModel::kGilbertElliott;
  throw std::invalid_argument("unknown fading model: " + name);
}

std::string to_string(FadingModel m) {
  switch (m) {
    case FadingModel::kNone: return "none";
    case FadingModel::kRayleigh: return "rayleigh";
    case FadingModel::kFsmc: return "fsmc";
    case FadingModel::kGilbertElliott: return "ge";
  }
  return "?";
}

std::unique_ptr<SnrProcess> make_snr_process(const FadingConfig& cfg,
                                             double mean_snr_db, Rng& rng) {
  switch (cfg.model) {
    case FadingModel::kNone:
      return std::make_unique<FixedSnr>(mean_snr_db);
    case FadingModel::kRayleigh:
      return std::make_unique<RayleighSnr>(mean_snr_db, cfg.doppler_hz,
                                           cfg.shadow_sigma_db, cfg.shadow_decorr_s,
                                           rng, 16, cfg.channel_version);
    case FadingModel::kFsmc:
      return std::make_unique<FsmcSnr>(mean_snr_db, cfg.doppler_hz, cfg.fsmc_states,
                                       cfg.fsmc_slot_s, rng);
    case FadingModel::kGilbertElliott:
      return std::make_unique<GilbertElliottSnr>(cfg.ge_mean_good_s, cfg.ge_mean_bad_s,
                                                 mean_snr_db, cfg.ge_bad_snr_db, rng);
  }
  throw std::logic_error("make_snr_process: unreachable");
}

}  // namespace wdc
