#ifndef WDC_PROTO_AT_HPP
#define WDC_PROTO_AT_HPP

/// @file at.hpp
/// AT — Amnesic Terminals (Barbara & Imielinski, 1994).
///
/// Server: every L seconds, broadcast only the ids updated since the *previous*
/// report (window = L). Client: the default window logic then forces a full cache
/// drop whenever a single report is missed — the scheme's defining fragility.

#include "proto/client_base.hpp"
#include "proto/server_base.hpp"
#include "sim/periodic.hpp"

namespace wdc {

class ServerAt final : public ServerProtocol {
 public:
  using ServerProtocol::ServerProtocol;
  void start() override;

 private:
  std::unique_ptr<PeriodicTimer> timer_;
};

class ClientAt final : public ClientProtocol {
 public:
  using ClientProtocol::ClientProtocol;
};

}  // namespace wdc

#endif  // WDC_PROTO_AT_HPP
