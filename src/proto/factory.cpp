#include "proto/factory.hpp"

#include <stdexcept>

#include "proto/at.hpp"
#include "proto/baselines.hpp"
#include "proto/bs.hpp"
#include "proto/cbl.hpp"
#include "proto/hyb.hpp"
#include "proto/lair.hpp"
#include "proto/pig.hpp"
#include "proto/sig.hpp"
#include "proto/ts.hpp"
#include "proto/uir.hpp"

namespace wdc {

std::unique_ptr<ServerProtocol> make_server(ProtocolKind kind, Simulator& sim,
                                            BroadcastMac& mac, Database& db,
                                            const ProtoConfig& cfg) {
  switch (kind) {
    case ProtocolKind::kTs: return std::make_unique<ServerTs>(sim, mac, db, cfg);
    case ProtocolKind::kAt: return std::make_unique<ServerAt>(sim, mac, db, cfg);
    case ProtocolKind::kSig: return std::make_unique<ServerSig>(sim, mac, db, cfg);
    case ProtocolKind::kUir: return std::make_unique<ServerUir>(sim, mac, db, cfg);
    case ProtocolKind::kLair: return std::make_unique<ServerLair>(sim, mac, db, cfg);
    case ProtocolKind::kPig: return std::make_unique<ServerPig>(sim, mac, db, cfg);
    case ProtocolKind::kHyb: return std::make_unique<ServerHyb>(sim, mac, db, cfg);
    case ProtocolKind::kNc: return std::make_unique<ServerNull>(sim, mac, db, cfg);
    case ProtocolKind::kPer: return std::make_unique<ServerPer>(sim, mac, db, cfg);
    case ProtocolKind::kBs: return std::make_unique<ServerBs>(sim, mac, db, cfg);
    case ProtocolKind::kCbl: return std::make_unique<ServerCbl>(sim, mac, db, cfg);
  }
  throw std::logic_error("make_server: unreachable");
}

std::unique_ptr<ClientProtocol> make_client(ProtocolKind kind, Simulator& sim,
                                            BroadcastMac& mac, UplinkChannel& uplink,
                                            ServerProtocol& server,
                                            const Database& oracle,
                                            const ProtoConfig& cfg, SnrProcess* link,
                                            std::function<bool()> is_awake,
                                            StatsSink& sink, Rng rng) {
  switch (kind) {
    case ProtocolKind::kTs:
      return std::make_unique<ClientTs>(sim, mac, uplink, server, oracle, cfg, link,
                                        std::move(is_awake), sink, rng);
    case ProtocolKind::kAt:
      return std::make_unique<ClientAt>(sim, mac, uplink, server, oracle, cfg, link,
                                        std::move(is_awake), sink, rng);
    case ProtocolKind::kSig:
      return std::make_unique<ClientSig>(sim, mac, uplink, server, oracle, cfg, link,
                                         std::move(is_awake), sink, rng);
    case ProtocolKind::kUir:
      return std::make_unique<ClientUir>(sim, mac, uplink, server, oracle, cfg, link,
                                         std::move(is_awake), sink, rng);
    case ProtocolKind::kLair:
      return std::make_unique<ClientLair>(sim, mac, uplink, server, oracle, cfg, link,
                                          std::move(is_awake), sink, rng);
    case ProtocolKind::kPig:
      return std::make_unique<ClientPig>(sim, mac, uplink, server, oracle, cfg, link,
                                         std::move(is_awake), sink, rng);
    case ProtocolKind::kHyb:
      return std::make_unique<ClientHyb>(sim, mac, uplink, server, oracle, cfg, link,
                                         std::move(is_awake), sink, rng);
    case ProtocolKind::kNc:
      return std::make_unique<ClientNc>(sim, mac, uplink, server, oracle, cfg, link,
                                        std::move(is_awake), sink, rng);
    case ProtocolKind::kPer:
      return std::make_unique<ClientPer>(sim, mac, uplink, server, oracle, cfg, link,
                                         std::move(is_awake), sink, rng);
    case ProtocolKind::kBs:
      return std::make_unique<ClientBs>(sim, mac, uplink, server, oracle, cfg, link,
                                        std::move(is_awake), sink, rng);
    case ProtocolKind::kCbl:
      return std::make_unique<ClientCbl>(sim, mac, uplink, server, oracle, cfg, link,
                                         std::move(is_awake), sink, rng);
  }
  throw std::logic_error("make_client: unreachable");
}

}  // namespace wdc
