#ifndef WDC_PROTO_HYB_HPP
#define WDC_PROTO_HYB_HPP

/// @file hyb.hpp
/// HYB — hybrid adaptive invalidation. **Reconstruction** combining all three
/// mechanisms this paper's title promises (see DESIGN.md):
///
///  * TS-style full reports on the L grid, slid LAIR-style to good channel states;
///  * UIR-style mini reports between fulls — but their count m−1 *adapts* to the
///    observed downlink traffic: every digest-bearing frame sent in the previous
///    interval substitutes for one mini report, because overheard digests already
///    provide consistency points (m = 1 + max(0, ⌈L/target_gap⌉ − 1 − piggybacked));
///  * PIG digests on every item broadcast and data frame.
///
/// Under heavy downlink load HYB spends almost nothing on dedicated mini reports
/// (the traffic carries the signal); on an idle channel it degrades gracefully to
/// LAIR + UIR.

#include "proto/client_base.hpp"
#include "proto/server_base.hpp"
#include "stats/summary.hpp"

namespace wdc {

class ServerHyb final : public ServerProtocol {
 public:
  using ServerProtocol::ServerProtocol;
  void start() override;

  /// m chosen for the current interval (telemetry for the ablation bench).
  unsigned current_m() const { return m_; }
  const Summary& m_history() const { return m_history_; }

 protected:
  void decorate_item(Message& msg, ItemPayload& payload) override;
  void decorate_data(Message& msg, DataPayload& payload) override;

 private:
  void probe_full(SimTime nominal);
  void emit_full(SimTime nominal);
  void schedule_full_tick();
  unsigned adapt_m();

  std::uint64_t tick_ = 0;
  SimTime anchor_ = 0.0;
  unsigned m_ = 1;
  std::uint64_t digest_frames_at_interval_start_ = 0;
  Summary m_history_;
};

class ClientHyb final : public ClientProtocol {
 public:
  using ClientProtocol::ClientProtocol;

 protected:
  void handle_mini(const MiniReport& report) override { apply_mini(report); }
  void handle_digest(const PiggyDigest& digest) override { apply_digest(digest); }
  /// Full reports slide LAIR-style: tuned radios allow for the window.
  double report_slack() const override { return cfg_.lair_window_s; }
};

}  // namespace wdc

#endif  // WDC_PROTO_HYB_HPP
