#ifndef WDC_PROTO_TS_HPP
#define WDC_PROTO_TS_HPP

/// @file ts.hpp
/// TS — Broadcasting Timestamps (Barbara & Imielinski, 1994).
///
/// Server: every L seconds, broadcast the ids and update timestamps of all items
/// updated in the last w·L seconds. Client: if it has been consistent within the
/// window, invalidate per-timestamp; otherwise drop the whole cache.

#include "proto/client_base.hpp"
#include "proto/server_base.hpp"
#include "sim/periodic.hpp"

namespace wdc {

class ServerTs final : public ServerProtocol {
 public:
  using ServerProtocol::ServerProtocol;
  void start() override;

 private:
  std::unique_ptr<PeriodicTimer> timer_;
};

/// TS client behaviour is exactly the ClientProtocol default handle_full().
class ClientTs final : public ClientProtocol {
 public:
  using ClientProtocol::ClientProtocol;
};

}  // namespace wdc

#endif  // WDC_PROTO_TS_HPP
