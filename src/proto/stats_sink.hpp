#ifndef WDC_PROTO_STATS_SINK_HPP
#define WDC_PROTO_STATS_SINK_HPP

/// @file stats_sink.hpp
/// Shared collector all clients write into. One sink per simulation run.
///
/// Warm-up handling: events attributed to queries issued before `warmup` are not
/// recorded (the cache starts cold; the first intervals are transient).

#include <cstdint>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"
#include "util/types.hpp"

namespace wdc {

class StatsSink {
 public:
  explicit StatsSink(SimTime warmup = 0.0) : warmup_(warmup) {}

  bool counted(SimTime query_time) const { return query_time >= warmup_; }
  SimTime warmup() const { return warmup_; }

  /// A query was issued (already past the warm-up filter when counted).
  void record_query(SimTime qtime);
  /// A query was answered. `hit` = served from cache (no uplink round trip).
  void record_answer(SimTime qtime, double latency_s, bool hit, bool stale);
  /// A pending query was abandoned because the client went to sleep.
  void record_dropped(SimTime qtime);

  void record_report_heard() { ++reports_heard_; }
  void record_report_missed() { ++reports_missed_; }
  void record_digest_applied() { ++digests_applied_; }
  void record_digest_answer() { ++digest_answers_; }
  void record_cache_drop() { ++cache_drops_; }
  void record_false_invalidation() { ++false_invalidations_; }
  void record_request_retry() { ++request_retries_; }
  void add_listen_airtime(double s) { listen_airtime_s_ += s; }

  // --- readers ---
  std::uint64_t queries() const { return queries_; }
  std::uint64_t answered() const { return answered_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t stale_serves() const { return stale_serves_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t reports_heard() const { return reports_heard_; }
  std::uint64_t reports_missed() const { return reports_missed_; }
  std::uint64_t digests_applied() const { return digests_applied_; }
  std::uint64_t digest_answers() const { return digest_answers_; }
  std::uint64_t cache_drops() const { return cache_drops_; }
  std::uint64_t false_invalidations() const { return false_invalidations_; }
  std::uint64_t request_retries() const { return request_retries_; }
  double listen_airtime_s() const { return listen_airtime_s_; }

  const Summary& latency() const { return latency_; }
  const Summary& hit_latency() const { return hit_latency_; }
  const Summary& miss_latency() const { return miss_latency_; }
  const Histogram& latency_hist() const { return latency_hist_; }

  double hit_ratio() const;

  /// Fold another sink's accumulators into this one (the sharded core's
  /// ordered per-cell metrics merge). Counters add; Summary/Histogram merge.
  /// Merging a populated sink into a default-constructed one reproduces the
  /// source bit-for-bit, which is what keeps single-cell runs pinned.
  void merge_from(const StatsSink& other);

 private:
  SimTime warmup_;
  std::uint64_t queries_ = 0;
  std::uint64_t answered_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stale_serves_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t reports_heard_ = 0;
  std::uint64_t reports_missed_ = 0;
  std::uint64_t digests_applied_ = 0;
  std::uint64_t digest_answers_ = 0;
  std::uint64_t cache_drops_ = 0;
  std::uint64_t false_invalidations_ = 0;
  std::uint64_t request_retries_ = 0;
  double listen_airtime_s_ = 0.0;
  SimTime last_query_time_ = -kNever;  ///< audit: queries arrive in event order
  Summary latency_;
  Summary hit_latency_;
  Summary miss_latency_;
  Histogram latency_hist_{0.0, 120.0, 1200};
};

}  // namespace wdc

#endif  // WDC_PROTO_STATS_SINK_HPP
