#include "proto/at.hpp"

namespace wdc {

void ServerAt::start() {
  const double L = cfg_.ir_interval_s;
  timer_ = std::make_unique<PeriodicTimer>(
      sim_, /*first=*/L, /*period=*/L, [this](std::uint64_t) {
        // Amnesic: the report covers exactly one interval. A client that failed
        // to decode the previous report cannot bridge the gap.
        enqueue_full_report(build_full_report(cfg_.ir_interval_s));
      });
}

}  // namespace wdc
