#ifndef WDC_PROTO_REPORT_CODEC_HPP
#define WDC_PROTO_REPORT_CODEC_HPP

/// @file report_codec.hpp
/// Binary (de)serialization of the broadcastable report payloads.
///
/// In-simulator messages travel as shared_ptr<Payload>; this codec defines the
/// byte-level wire image for anything that needs to leave the process (trace
/// tooling, future record/replay, test fixtures). Layout, native-endian like
/// the .wdct trace format (machine-local, not interchange):
///
///   'W' 'R'  version:u8  kind:u8  <kind-specific fields>  checksum:u32
///
/// Variable-length lists are u32-count-prefixed; the decoder rejects any count
/// whose entries could not fit in the remaining bytes BEFORE allocating, so a
/// flipped length byte cannot balloon memory. Every read is bounds-checked and
/// trailing bytes are an error — corrupt input fails cleanly with a reason,
/// never UB (the fuzz-style tests in tests/proto hammer exactly this).
///
/// Version 2 seals every frame with a trailing FNV-1a-32 checksum over all
/// preceding bytes, verified after the body parses and before the
/// trailing-byte check. The structural checks above catch corruption that
/// breaks the *shape* of a frame; the checksum deterministically catches the
/// damage that doesn't — a flipped timestamp bit, a swapped item id — which
/// is exactly what the fault layer's byzantine mode injects in-protocol.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "proto/reports.hpp"

namespace wdc {

inline constexpr std::uint8_t kReportCodecVersion = 2;

/// Wire discriminator of the encoded payload type.
enum class ReportWireKind : std::uint8_t {
  kFull = 0,
  kMini = 1,
  kSig = 2,
  kDigest = 3,
  kBs = 4,
};

const char* to_string(ReportWireKind k);

std::vector<std::uint8_t> encode_report(const FullReport& r);
std::vector<std::uint8_t> encode_report(const MiniReport& r);
std::vector<std::uint8_t> encode_report(const SigReport& r);
std::vector<std::uint8_t> encode_report(const PiggyDigest& r);
std::vector<std::uint8_t> encode_report(const BsReport& r);

/// A successfully decoded payload; cast `payload` per `kind`.
struct DecodedReport {
  ReportWireKind kind = ReportWireKind::kFull;
  std::shared_ptr<const Payload> payload;
};

/// Decode one encoded report. Returns false (and sets *error when non-null)
/// on any structural defect: short buffer, bad magic/version/kind, list that
/// overruns the buffer, non-finite timestamp, checksum mismatch, or trailing
/// bytes.
bool decode_report(const std::uint8_t* data, std::size_t size,
                   DecodedReport* out, std::string* error = nullptr);

}  // namespace wdc

#endif  // WDC_PROTO_REPORT_CODEC_HPP
