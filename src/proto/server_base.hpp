#ifndef WDC_PROTO_SERVER_BASE_HPP
#define WDC_PROTO_SERVER_BASE_HPP

/// @file server_base.hpp
/// Server-side protocol machinery shared by every invalidation scheme:
///  * answering cache-miss requests with (coalesced) item broadcasts,
///  * forwarding background downlink traffic to the MAC (with a hook protocols
///    override to attach piggyback digests),
///  * report-building helpers over the database.

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "mac/broadcast_mac.hpp"
#include "proto/protocol.hpp"
#include "proto/reports.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"
#include "workload/database.hpp"
#include "workload/traffic_gen.hpp"

namespace wdc {

class ServerProtocol {
 public:
  ServerProtocol(Simulator& sim, BroadcastMac& mac, Database& db, ProtoConfig cfg);
  virtual ~ServerProtocol() = default;

  ServerProtocol(const ServerProtocol&) = delete;
  ServerProtocol& operator=(const ServerProtocol&) = delete;

  /// Begin report scheduling. Call once after wiring is complete.
  virtual void start() = 0;

  /// A cache-miss request for `item` arrived on the uplink: broadcast the item
  /// (current content), coalescing with an already-queued broadcast. Protocols
  /// customise via decorate_item(); stateful protocols (CBL) override to record
  /// the requester, then call the base.
  virtual void on_request(ClientId from, ItemId item);

  /// A background downlink frame is ready: forward it to the MAC. Protocols
  /// customise via decorate_data() (PIG/HYB attach a digest there).
  void on_downlink_frame(const TrafficFrame& frame);

  /// Scripted server crash/recovery edge from the fault layer. While down the
  /// server answers nothing and sends nothing (every suppressed action is
  /// counted); on recovery it replays its report log as one full report whose
  /// window spans the entire outage plus the normal reporting window, so
  /// surviving clients' window-coverage checks find no gap.
  void on_server_state(bool down);

  // --- accounting ---
  std::uint64_t reports_sent() const { return reports_sent_; }
  std::uint64_t minis_sent() const { return minis_sent_; }
  std::uint64_t item_broadcasts() const { return item_broadcasts_; }
  std::uint64_t coalesced_requests() const { return coalesced_; }
  Bits digest_bits() const { return digest_bits_; }
  std::uint64_t digest_frames() const { return digest_frames_; }
  double lair_deferral_s() const { return lair_deferral_s_; }
  std::uint64_t lair_deferred() const { return lair_deferred_; }
  std::uint64_t crash_suppressed() const { return crash_suppressed_; }

  const ProtoConfig& config() const { return cfg_; }

 protected:
  /// Build a TS-style full report covering (now − w·L, now].
  std::shared_ptr<const FullReport> build_full_report(double window_s) const;
  /// Build a mini report listing updates since `anchor`.
  std::shared_ptr<const MiniReport> build_mini_report(SimTime anchor) const;
  /// Build a piggyback digest covering (now − G, now], clipped to pig_max_ids.
  std::shared_ptr<const PiggyDigest> build_digest() const;

  void enqueue_full_report(std::shared_ptr<const FullReport> report);
  void enqueue_mini_report(std::shared_ptr<const MiniReport> report);

  /// True while the server is scripted down. Subclasses with their own MAC
  /// enqueue sites (SIG/BS timers, CBL notices, PER poll acks) must gate them
  /// on crash_suppress() — the central enqueue/request paths already do.
  bool crashed() const { return down_; }
  /// Counted suppression gate: returns true (and records the suppression)
  /// exactly when the server is down.
  bool crash_suppress();

  /// Hooks to extend outgoing item broadcasts / data frames (e.g. with digests).
  /// Default: no-op. Implementations adjusting payload size must also grow
  /// `msg.bits` (and `msg.piggyback_bits` for accounting).
  virtual void decorate_item(Message& msg, ItemPayload& payload);
  virtual void decorate_data(Message& msg, DataPayload& payload);

  /// Shared digest attachment used by PIG and HYB.
  void attach_digest_to(Message& msg, std::shared_ptr<const PiggyDigest>& slot);

  /// Called by the MAC's tx observer; subclasses may extend (keep calling base).
  virtual void on_transmitted(const Message& msg, std::size_t mcs, double airtime_s);

  Simulator& sim_;
  BroadcastMac& mac_;
  Database& db_;
  ProtoConfig cfg_;

  std::uint64_t reports_sent_ = 0;
  std::uint64_t minis_sent_ = 0;
  std::uint64_t item_broadcasts_ = 0;
  std::uint64_t coalesced_ = 0;
  Bits digest_bits_ = 0;
  std::uint64_t digest_frames_ = 0;
  double lair_deferral_s_ = 0.0;
  std::uint64_t lair_deferred_ = 0;

 private:
  std::unordered_set<ItemId> pending_broadcast_;
  bool down_ = false;
  SimTime crash_start_ = 0.0;
  std::uint64_t crash_suppressed_ = 0;
};

}  // namespace wdc

#endif  // WDC_PROTO_SERVER_BASE_HPP
