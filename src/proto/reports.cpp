#include "proto/reports.hpp"

namespace wdc {

Bits FullReport::wire_bits(const ProtoConfig& cfg) const {
  return cfg.report_header_bits +
         static_cast<Bits>(updates.size()) * (cfg.id_bits + cfg.ts_bits);
}

Bits MiniReport::wire_bits(const ProtoConfig& cfg) const {
  // anchor + stamp live in the header; entries are bare ids.
  return cfg.report_header_bits + static_cast<Bits>(updated.size()) * cfg.id_bits;
}

Bits SigReport::wire_bits(const ProtoConfig& cfg, std::uint32_t num_items) const {
  return cfg.report_header_bits +
         static_cast<Bits>(num_items) * cfg.sig_bits_per_item;
}

Bits PiggyDigest::wire_bits(const ProtoConfig& cfg) const {
  // Small sub-header (stamp, horizon, count, complete-flag) folded into 48 bits.
  return 48 + static_cast<Bits>(updated.size()) * cfg.id_bits;
}

Bits BsReport::wire_bits(const ProtoConfig& cfg, std::uint32_t num_items) const {
  // Jing et al.'s classic space bound: the nested sequences total ~2n bits.
  return cfg.report_header_bits +
         static_cast<Bits>(boundaries.size()) * cfg.ts_bits +
         2u * static_cast<Bits>(num_items);
}

}  // namespace wdc
