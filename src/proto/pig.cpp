#include "proto/pig.hpp"

namespace wdc {

void ServerPig::start() {
  const double L = cfg_.ir_interval_s;
  timer_ = std::make_unique<PeriodicTimer>(
      sim_, /*first=*/L, /*period=*/L, [this](std::uint64_t) {
        enqueue_full_report(build_full_report(cfg_.window_mult * cfg_.ir_interval_s));
      });
}

void ServerPig::decorate_item(Message& msg, ItemPayload& payload) {
  attach_digest_to(msg, payload.digest);
}

void ServerPig::decorate_data(Message& msg, DataPayload& payload) {
  attach_digest_to(msg, payload.digest);
}

}  // namespace wdc
