#include "proto/sig.hpp"

#include <unordered_set>

namespace wdc {

void ServerSig::start() {
  const double L = cfg_.ir_interval_s;
  timer_ = std::make_unique<PeriodicTimer>(
      sim_, /*first=*/L, /*period=*/L, [this](std::uint64_t) {
        if (crash_suppress()) return;
        auto rep = std::make_shared<SigReport>();
        rep->stamp = sim_.now();
        rep->window_start = sim_.now() - cfg_.sig_window_mult * cfg_.ir_interval_s;
        rep->updated = db_.updated_between(rep->window_start, rep->stamp);
        rep->fp_prob = cfg_.sig_fp_prob;

        Message msg;
        msg.kind = MsgKind::kInvalidationReport;
        msg.bits = rep->wire_bits(cfg_, db_.num_items());
        msg.payload = std::move(rep);
        ++reports_sent_;
        mac_.enqueue(std::move(msg));
      });
}

void ClientSig::handle_sig(const SigReport& report) {
  if (tc_ + 1e-9 < report.window_start) {
    drop_cache_and_resync(report.stamp);
    return;
  }
  // True updates: always detected by the signature comparison.
  std::unordered_set<ItemId> changed(report.updated.begin(), report.updated.end());
  for (const ItemId id : report.updated) invalidate(id);
  // Signature collisions: unchanged resident entries are diagnosed as updated with
  // probability fp_prob, costing a needless refetch on the next query.
  for (const ItemId id : cache_.resident()) {
    if (changed.count(id) > 0) continue;
    if (rng_.bernoulli(report.fp_prob)) {
      invalidate(id);
      sink_.record_false_invalidation();
    }
  }
  finish_report(report.stamp);
}

}  // namespace wdc
