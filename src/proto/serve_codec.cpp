#include "proto/serve_codec.hpp"

#include "proto/wire_bytes.hpp"

namespace wdc {
namespace {

constexpr std::uint8_t kMagic0 = 'W';
constexpr std::uint8_t kMagic1 = 'S';

using wire::ByteReader;
using wire::ByteWriter;
using wire::fnv1a32;

ByteWriter header(ServeWireKind kind, std::size_t reserve) {
  ByteWriter w(reserve + 8);
  w.u8(kMagic0);
  w.u8(kMagic1);
  w.u8(kServeCodecVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  return w;
}

void write_byte_run(ByteWriter& w, const std::vector<std::uint8_t>& bytes) {
  w.count(bytes.size());
  w.bytes(bytes.data(), bytes.size());
}

bool decode_body(ByteReader& r, ServeWireKind kind, ServeMessage* m) {
  switch (kind) {
    case ServeWireKind::kHello:
      return r.u32(&m->client_nonce, "hello.nonce");
    case ServeWireKind::kHelloAck:
      return r.u32(&m->client_nonce, "hello_ack.nonce") &&
             r.u32(&m->client_id, "hello_ack.client_id") &&
             r.u32(&m->num_items, "hello_ack.num_items") &&
             r.u8(&m->protocol, "hello_ack.protocol") &&
             r.f64(&m->ir_interval_s, "hello_ack.ir_interval");
    case ServeWireKind::kRequest:
      return r.u32(&m->item, "request.item") && r.u32(&m->seq, "request.seq") &&
             r.f64(&m->sent_at, "request.sent_at");
    case ServeWireKind::kPoll:
      return r.u32(&m->item, "poll.item") &&
             r.u64(&m->version, "poll.version") &&
             r.u32(&m->seq, "poll.seq") && r.f64(&m->sent_at, "poll.sent_at");
    case ServeWireKind::kBye:
      return true;
    case ServeWireKind::kReport:
      return r.byte_run(&m->report_frame, "report.frame");
    case ServeWireKind::kItem:
      return r.u32(&m->item, "item.id") && r.u64(&m->version, "item.version") &&
             r.f64(&m->content_time, "item.content_time") &&
             r.f64(&m->lease_s, "item.lease") &&
             r.u64(&m->payload_bits, "item.bits") &&
             r.byte_run(&m->digest_frame, "item.digest");
    case ServeWireKind::kData:
      return r.u64(&m->payload_bits, "data.bits") &&
             r.byte_run(&m->digest_frame, "data.digest");
    case ServeWireKind::kInvalidate:
      return r.u32(&m->item, "invalidate.item") &&
             r.f64(&m->update_time, "invalidate.update_time");
    case ServeWireKind::kPollAck: {
      std::uint8_t valid = 0;
      if (!r.u32(&m->item, "poll_ack.item") ||
          !r.u64(&m->version, "poll_ack.version") ||
          !r.f64(&m->content_time, "poll_ack.content_time") ||
          !r.u8(&valid, "poll_ack.valid"))
        return false;
      if (valid > 1) return r.fail("boolean out of {0,1}:", "poll_ack.valid");
      m->valid = valid != 0;
      return true;
    }
    case ServeWireKind::kShed:
      return r.u8(&m->shed_reason, "shed.reason");
  }
  return r.fail("unknown", "serve kind");
}

}  // namespace

const char* to_string(ServeWireKind k) {
  switch (k) {
    case ServeWireKind::kHello: return "HELLO";
    case ServeWireKind::kHelloAck: return "HELLO_ACK";
    case ServeWireKind::kRequest: return "REQUEST";
    case ServeWireKind::kPoll: return "POLL";
    case ServeWireKind::kBye: return "BYE";
    case ServeWireKind::kReport: return "REPORT";
    case ServeWireKind::kItem: return "ITEM";
    case ServeWireKind::kData: return "DATA";
    case ServeWireKind::kInvalidate: return "INVALIDATE";
    case ServeWireKind::kPollAck: return "POLL_ACK";
    case ServeWireKind::kShed: return "SHED";
  }
  return "?";
}

std::vector<std::uint8_t> encode_serve(const ServeMessage& m) {
  ByteWriter w = header(
      m.kind, 40 + m.report_frame.size() + m.digest_frame.size());
  switch (m.kind) {
    case ServeWireKind::kHello:
      w.u32(m.client_nonce);
      break;
    case ServeWireKind::kHelloAck:
      w.u32(m.client_nonce);
      w.u32(m.client_id);
      w.u32(m.num_items);
      w.u8(m.protocol);
      w.f64(m.ir_interval_s);
      break;
    case ServeWireKind::kRequest:
      w.u32(m.item);
      w.u32(m.seq);
      w.f64(m.sent_at);
      break;
    case ServeWireKind::kPoll:
      w.u32(m.item);
      w.u64(m.version);
      w.u32(m.seq);
      w.f64(m.sent_at);
      break;
    case ServeWireKind::kBye:
      break;
    case ServeWireKind::kReport:
      write_byte_run(w, m.report_frame);
      break;
    case ServeWireKind::kItem:
      w.u32(m.item);
      w.u64(m.version);
      w.f64(m.content_time);
      w.f64(m.lease_s);
      w.u64(m.payload_bits);
      write_byte_run(w, m.digest_frame);
      break;
    case ServeWireKind::kData:
      w.u64(m.payload_bits);
      write_byte_run(w, m.digest_frame);
      break;
    case ServeWireKind::kInvalidate:
      w.u32(m.item);
      w.f64(m.update_time);
      break;
    case ServeWireKind::kPollAck:
      w.u32(m.item);
      w.u64(m.version);
      w.f64(m.content_time);
      w.u8(m.valid ? 1 : 0);
      break;
    case ServeWireKind::kShed:
      w.u8(m.shed_reason);
      break;
  }
  return w.take();
}

bool decode_serve(const std::uint8_t* data, std::size_t size,
                  ServeMessage* out, std::string* error) {
  const auto set_error = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  ByteReader r(data, size);
  std::uint8_t m0 = 0, m1 = 0, version = 0, kind = 0;
  if (!r.u8(&m0, "magic") || !r.u8(&m1, "magic")) return set_error(r.error());
  if (m0 != kMagic0 || m1 != kMagic1) return set_error("bad magic");
  if (!r.u8(&version, "version")) return set_error(r.error());
  if (version != kServeCodecVersion)
    return set_error("unsupported version " + std::to_string(version));
  if (!r.u8(&kind, "kind")) return set_error(r.error());
  if (kind > kMaxServeWireKind)
    return set_error("unknown serve kind " + std::to_string(kind));

  ServeMessage m;
  m.kind = static_cast<ServeWireKind>(kind);
  if (!decode_body(r, m.kind, &m)) return set_error(r.error());
  // The checksum seals everything before it: header + body, but not any
  // trailing garbage (which the strictness check below still rejects).
  const std::size_t sealed = size - r.remaining();
  std::uint32_t expect = 0;
  if (!r.u32(&expect, "checksum")) return set_error(r.error());
  if (expect != fnv1a32(data, sealed)) return set_error("checksum mismatch");
  if (r.remaining() != 0)
    return set_error(std::to_string(r.remaining()) + " trailing bytes");
  *out = std::move(m);
  return true;
}

}  // namespace wdc
