#ifndef WDC_PROTO_BASELINES_HPP
#define WDC_PROTO_BASELINES_HPP

/// @file baselines.hpp
/// The two non-IR anchor baselines every wireless-caching evaluation includes:
///
/// * **NC** (no caching): every query goes to the server — an uplink request and
///   a broadcast item per query. Zero consistency machinery (a fetched copy is
///   trivially current), zero cache benefit. The latency floor when the channel
///   is idle, and the first casualty when it is not.
///
/// * **PER** (poll each read): clients cache items but validate every hit with a
///   per-query uplink poll; the server confirms with a small unicast control ack
///   (version match) or re-broadcasts the item. Strong consistency without
///   reports, at one uplink message per query — exactly the cost IR schemes
///   amortise away.

#include "proto/client_base.hpp"
#include "proto/server_base.hpp"

namespace wdc {

/// Report-less server shared by NC and the PER fallback path.
class ServerNull : public ServerProtocol {
 public:
  using ServerProtocol::ServerProtocol;
  void start() override {}  // no reports, ever
};

class ClientNc final : public ClientProtocol {
 public:
  using ClientProtocol::ClientProtocol;

  void on_query(ItemId item) override;

 protected:
  bool should_cache() const override { return false; }
};

/// PER server: answers polls; otherwise a plain item server.
class ServerPer final : public ServerNull {
 public:
  using ServerNull::ServerNull;

  /// A client polled `item` at `version`: reply valid/invalid; on invalid also
  /// broadcast the current item (the client will need it).
  void on_poll(ClientId from, ItemId item, Version version);

  std::uint64_t polls() const { return polls_; }
  std::uint64_t poll_hits() const { return poll_hits_; }

 private:
  std::uint64_t polls_ = 0;
  std::uint64_t poll_hits_ = 0;
};

class ClientPer final : public ClientProtocol {
 public:
  using ClientProtocol::ClientProtocol;

  void on_query(ItemId item) override;
  void on_sleep_transition(bool awake) override;

 protected:
  void handle_control(const Message& msg) override;

 private:
  /// Queries waiting for a poll verdict, per item.
  std::unordered_map<ItemId, std::vector<SimTime>> polls_in_flight_;
};

}  // namespace wdc

#endif  // WDC_PROTO_BASELINES_HPP
