#ifndef WDC_PROTO_FACTORY_HPP
#define WDC_PROTO_FACTORY_HPP

/// @file factory.hpp
/// Construct matching server/client protocol instances by ProtocolKind.

#include <memory>

#include "proto/client_base.hpp"
#include "proto/protocol.hpp"
#include "proto/server_base.hpp"

namespace wdc {

std::unique_ptr<ServerProtocol> make_server(ProtocolKind kind, Simulator& sim,
                                            BroadcastMac& mac, Database& db,
                                            const ProtoConfig& cfg);

std::unique_ptr<ClientProtocol> make_client(ProtocolKind kind, Simulator& sim,
                                            BroadcastMac& mac, UplinkChannel& uplink,
                                            ServerProtocol& server,
                                            const Database& oracle,
                                            const ProtoConfig& cfg, SnrProcess* link,
                                            std::function<bool()> is_awake,
                                            StatsSink& sink, Rng rng);

}  // namespace wdc

#endif  // WDC_PROTO_FACTORY_HPP
