#ifndef WDC_PROTO_SIG_HPP
#define WDC_PROTO_SIG_HPP

/// @file sig.hpp
/// SIG — signature-based invalidation (Barbara & Imielinski's third scheme).
///
/// The server periodically broadcasts combined signatures (superimposed checksums)
/// of the whole database. The report cost is *fixed* (∝ number of items), which
/// buys tolerance of very long disconnections (window = sig_window_mult·L), at the
/// price of (a) a large report and (b) false invalidations from signature
/// collisions. We model the behaviour (see reports.hpp): true updates in the
/// window are always detected; each unchanged resident entry is false-invalidated
/// with probability `sig_fp_prob` per applied report.

#include "proto/client_base.hpp"
#include "proto/server_base.hpp"
#include "sim/periodic.hpp"

namespace wdc {

class ServerSig final : public ServerProtocol {
 public:
  using ServerProtocol::ServerProtocol;
  void start() override;

 private:
  std::unique_ptr<PeriodicTimer> timer_;
};

class ClientSig final : public ClientProtocol {
 public:
  using ClientProtocol::ClientProtocol;

 protected:
  void handle_sig(const SigReport& report) override;
};

}  // namespace wdc

#endif  // WDC_PROTO_SIG_HPP
