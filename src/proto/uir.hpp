#ifndef WDC_PROTO_UIR_HPP
#define WDC_PROTO_UIR_HPP

/// @file uir.hpp
/// UIR — Updated Invalidation Reports (Cao, ICDE 2000 / TKDE 2001).
///
/// A full TS report every L seconds anchors consistency; between full reports,
/// m−1 small "updated" reports (ids changed since the anchor) are broadcast at
/// L/m spacing. A synchronised client can answer queries at any (full or mini)
/// report, cutting the expected wait from L/2 to L/(2m) at a small overhead cost.

#include "proto/client_base.hpp"
#include "proto/server_base.hpp"
#include "sim/periodic.hpp"

namespace wdc {

class ServerUir final : public ServerProtocol {
 public:
  using ServerProtocol::ServerProtocol;
  void start() override;

 private:
  std::unique_ptr<PeriodicTimer> timer_;
  SimTime anchor_ = 0.0;  ///< stamp of the latest full report
};

class ClientUir final : public ClientProtocol {
 public:
  using ClientProtocol::ClientProtocol;

 protected:
  void handle_mini(const MiniReport& report) override { apply_mini(report); }
};

}  // namespace wdc

#endif  // WDC_PROTO_UIR_HPP
