#ifndef WDC_PROTO_LAIR_HPP
#define WDC_PROTO_LAIR_HPP

/// @file lair.hpp
/// LAIR — Link-Adaptation-aware Invalidation Reports. **Reconstruction** of the
/// paper's channel-aware algorithm (original pseudocode unavailable; see
/// DESIGN.md).
///
/// Content is identical to TS, but the server exploits link adaptation when
/// *scheduling* each report: at the nominal tick it probes the broadcast AMC — if
/// the reference channel currently selects a low MCS (long airtime, high loss for
/// cell-edge listeners), the report is deferred in small steps, re-probing, until
/// either the coverage-reference SNR clears lair_min_snr_db or the window δmax
/// expires. Because consistency points are content-based and the TS window w·L
/// exceeds L + δmax, sliding never compromises correctness — it trades a bounded
/// extra wait for (a) cheaper report airtime and (b) fewer missed reports.

#include "proto/client_base.hpp"
#include "proto/server_base.hpp"

namespace wdc {

class ServerLair final : public ServerProtocol {
 public:
  using ServerProtocol::ServerProtocol;
  void start() override;

 private:
  void probe(SimTime nominal);
  void emit();
  void schedule_tick();

  std::uint64_t tick_ = 0;
};

/// Client behaviour: TS (reports may arrive late; the w·L window absorbs it).
/// Under selective tuning the radio must stay on through the deferral window.
class ClientLair final : public ClientProtocol {
 public:
  using ClientProtocol::ClientProtocol;

 protected:
  double report_slack() const override { return cfg_.lair_window_s; }
};

}  // namespace wdc

#endif  // WDC_PROTO_LAIR_HPP
