#include "proto/bs.hpp"

#include <algorithm>

namespace wdc {

void ServerBs::start() {
  const double L = cfg_.ir_interval_s;
  timer_ = std::make_unique<PeriodicTimer>(
      sim_, /*first=*/L, /*period=*/L, [this](std::uint64_t) {
        if (crash_suppress()) return;
        auto rep = std::make_shared<BsReport>();
        rep->stamp = sim_.now();
        // Boundaries stamp − L·2^(levels−1) … stamp − L, ascending (oldest first).
        const unsigned levels = cfg_.bs_levels > 0 ? cfg_.bs_levels : 1;
        for (unsigned i = levels; i >= 1; --i)
          rep->boundaries.push_back(sim_.now() -
                                    cfg_.ir_interval_s * double(1u << (i - 1)));
        rep->updates.clear();
        for (const ItemId id :
             db_.updated_between(rep->boundaries.front(), rep->stamp))
          rep->updates.emplace_back(id, db_.last_update(id));

        Message msg;
        msg.kind = MsgKind::kInvalidationReport;
        msg.bits = rep->wire_bits(cfg_, db_.num_items());
        msg.payload = std::move(rep);
        ++reports_sent_;
        mac_.enqueue(std::move(msg));
      });
}

void ClientBs::handle_bs(const BsReport& report) {
  if (report.boundaries.empty()) return;
  if (tc_ + 1e-9 < report.boundaries.front()) {
    // Disconnected past even the oldest window: resynchronise from scratch.
    drop_cache_and_resync(report.stamp);
    return;
  }
  // Quantisation: for each updated item the receiver learns only the dyadic
  // interval (B[m], B[m+1]] containing its latest update (B[last]..stamp for the
  // newest). Keep an entry only when its fetch provably post-dates that whole
  // interval; otherwise invalidate conservatively.
  for (const auto& [id, updated_at] : report.updates) {
    const CacheEntry* entry = cache_.peek(id);
    if (entry == nullptr) continue;
    // Upper edge of the update's dyadic interval.
    const auto upper = std::upper_bound(report.boundaries.begin(),
                                        report.boundaries.end(), updated_at);
    const SimTime interval_top =
        upper != report.boundaries.end() ? *upper : report.stamp;
    if (entry->version_time + 1e-9 < interval_top) {
      // Telemetry: an over-invalidation is one TS's exact timestamps would have
      // avoided (the copy already contains the update).
      const bool over = entry->version_time + 1e-9 >= updated_at;
      invalidate(id);
      if (over) sink_.record_false_invalidation();
    }
  }
  finish_report(report.stamp);
}

}  // namespace wdc
