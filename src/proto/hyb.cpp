#include "proto/hyb.hpp"

#include <algorithm>
#include <cmath>

namespace wdc {

void ServerHyb::start() { schedule_full_tick(); }

void ServerHyb::schedule_full_tick() {
  ++tick_;
  const SimTime nominal = cfg_.ir_interval_s * static_cast<SimTime>(tick_);
  const SimTime at = nominal > sim_.now() ? nominal : sim_.now();
  sim_.schedule_at(at, [this, nominal] { probe_full(nominal); },
                   EventPriority::kProtocol);
}

void ServerHyb::probe_full(SimTime nominal) {
  // LAIR-style deferral of the full report.
  const SimTime deadline = nominal + cfg_.lair_window_s;
  const bool channel_good =
      mac_.broadcast_reference_snr(sim_.now()) >= cfg_.lair_min_snr_db;
  if (channel_good || sim_.now() + cfg_.lair_step_s > deadline) {
    if (sim_.now() > nominal) {
      ++lair_deferred_;
      lair_deferral_s_ += sim_.now() - nominal;
    }
    emit_full(nominal);
    schedule_full_tick();
    return;
  }
  sim_.schedule_in(cfg_.lair_step_s, [this, nominal] { probe_full(nominal); },
                   EventPriority::kProtocol);
}

unsigned ServerHyb::adapt_m() {
  // Consistency points wanted per interval: one per target_gap.
  const double L = cfg_.ir_interval_s;
  const auto needed = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(L / cfg_.hyb_target_gap_s)));
  // Digest-bearing frames sent since the previous full report substitute for
  // dedicated minis one-for-one.
  const std::uint64_t piggybacked =
      digest_frames() - digest_frames_at_interval_start_;
  const std::uint64_t minis_needed =
      needed > 1 + piggybacked ? needed - 1 - piggybacked : 0;
  const auto m = static_cast<unsigned>(
      std::min<std::uint64_t>(1 + minis_needed, cfg_.hyb_max_m));
  digest_frames_at_interval_start_ = digest_frames();
  return m;
}

void ServerHyb::emit_full(SimTime /*nominal*/) {
  auto full = build_full_report(cfg_.window_mult * cfg_.ir_interval_s);
  anchor_ = full->stamp;
  enqueue_full_report(std::move(full));

  m_ = adapt_m();
  m_history_.add(static_cast<double>(m_));
  if (m_ <= 1) return;
  // Schedule this interval's minis on an even grid after the full report.
  const double slice = cfg_.ir_interval_s / static_cast<double>(m_);
  const SimTime anchor = anchor_;
  for (unsigned j = 1; j < m_; ++j) {
    sim_.schedule_in(slice * j,
                     [this, anchor] {
                       // A newer full report supersedes these minis.
                       if (anchor_ > anchor) return;
                       enqueue_mini_report(build_mini_report(anchor_));
                     },
                     EventPriority::kProtocol);
  }
}

void ServerHyb::decorate_item(Message& msg, ItemPayload& payload) {
  attach_digest_to(msg, payload.digest);
}

void ServerHyb::decorate_data(Message& msg, DataPayload& payload) {
  attach_digest_to(msg, payload.digest);
}

}  // namespace wdc
