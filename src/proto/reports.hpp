#ifndef WDC_PROTO_REPORTS_HPP
#define WDC_PROTO_REPORTS_HPP

/// @file reports.hpp
/// Wire payloads of the invalidation protocols, with bit-exact size accounting.
///
/// Consistency points are *content-based*: every report carries the server time at
/// which its content was assembled (`stamp`). Queueing and airtime delay delivery,
/// but a client applying a report advances its consistency point to `stamp`, never
/// to the reception time — this keeps the schemes correct under arbitrary MAC delay
/// (including LAIR's deliberate sliding).

#include <vector>

#include "mac/message.hpp"
#include "proto/protocol.hpp"
#include "util/types.hpp"

namespace wdc {

/// Full invalidation report (TS/AT/LAIR and the anchor of UIR/HYB).
struct FullReport final : Payload {
  SimTime stamp = 0.0;         ///< content-assembly time T
  SimTime window_start = 0.0;  ///< report lists updates in (window_start, stamp]
  /// (id, latest-update-time) pairs for every item updated in the window.
  std::vector<std::pair<ItemId, SimTime>> updates;

  /// Wire size under the given size configuration.
  Bits wire_bits(const ProtoConfig& cfg) const;
};

/// UIR-style mini report: ids updated since the anchoring full report.
struct MiniReport final : Payload {
  SimTime stamp = 0.0;   ///< content time T_u
  SimTime anchor = 0.0;  ///< stamp of the full report this mini extends
  std::vector<ItemId> updated;

  Bits wire_bits(const ProtoConfig& cfg) const;
};

/// Signature report. The wire format of signature schemes is a vector of combined
/// checksums; we model its *behaviour*: the receiver detects every true update in
/// the coverage window and additionally false-invalidates unchanged entries with
/// probability `fp_prob` (signature collisions). The true update set rides along
/// for the receiver-side behavioural model; its size is NOT charged to the wire —
/// the wire cost is the fixed signature budget.
struct SigReport final : Payload {
  SimTime stamp = 0.0;
  SimTime window_start = 0.0;
  std::vector<ItemId> updated;  ///< ground truth within the window
  double fp_prob = 0.0;

  /// Fixed: num_items × sig_bits_per_item + header.
  Bits wire_bits(const ProtoConfig& cfg, std::uint32_t num_items) const;
};

/// Piggyback digest attached to downlink frames (PIG/HYB): ids updated in
/// (stamp − horizon, stamp]. `complete` is false when the digest capacity clipped
/// the list — an incomplete digest may invalidate but must not revalidate.
struct PiggyDigest final : Payload {
  SimTime stamp = 0.0;
  SimTime horizon_start = 0.0;
  std::vector<ItemId> updated;
  bool complete = true;

  Bits wire_bits(const ProtoConfig& cfg) const;
};

/// Content descriptor on item broadcasts: the copy's version and the server time
/// it is current as of.
struct ItemPayload final : Payload {
  Version version = 0;
  SimTime content_time = 0.0;
  /// CBL: lease granted to requesters, seconds past content_time (0 = none).
  double lease_s = 0.0;
  /// Optional digest piggybacked on the item broadcast (PIG/HYB); null otherwise.
  std::shared_ptr<const PiggyDigest> digest;
};

/// Downlink data frame payload: opaque app bytes plus an optional digest.
struct DataPayload final : Payload {
  std::shared_ptr<const PiggyDigest> digest;
};

/// CBL invalidation notice (unicast control message, ARQ'd by the MAC): the
/// server revokes a lease because the item changed.
struct InvalidateNotice final : Payload {
  ItemId item = kInvalidItem;
  SimTime update_time = 0.0;
};

/// PER poll reply (unicast control message): is the polled copy still current?
struct PollAck final : Payload {
  ItemId item = kInvalidItem;
  Version version = 0;        ///< server's current version of the item
  SimTime content_time = 0.0; ///< server time the verdict refers to
  bool valid = false;         ///< polled version == current version
};

/// Bit-Sequences report (Jing et al. 1997), modelled behaviourally.
///
/// The wire format is ~2·N bits of nested bit sequences plus one timestamp per
/// sequence; the information content is: for every item updated since the oldest
/// boundary, *which dyadic interval* its latest update falls into (not the exact
/// time). Receivers therefore keep an entry only when its fetch provably
/// post-dates the update's interval — the granularity over-invalidation that
/// distinguishes BS from TS.
struct BsReport final : Payload {
  SimTime stamp = 0.0;
  /// Dyadic window boundaries, ascending (oldest first): stamp − L·2^i reversed.
  std::vector<SimTime> boundaries;
  /// Ground truth (id, latest-update-time) for items updated since boundaries[0];
  /// receivers quantise the times to the boundary grid (see ClientBs).
  std::vector<std::pair<ItemId, SimTime>> updates;

  /// Fixed: header + |boundaries|·ts_bits + 2·num_items bits.
  Bits wire_bits(const ProtoConfig& cfg, std::uint32_t num_items) const;
};

}  // namespace wdc

#endif  // WDC_PROTO_REPORTS_HPP
