#include "proto/lair.hpp"

namespace wdc {

void ServerLair::start() { schedule_tick(); }

void ServerLair::schedule_tick() {
  ++tick_;
  const SimTime nominal =
      cfg_.ir_interval_s * static_cast<SimTime>(tick_);
  // A deferral window >= L could push the emission past the next nominal tick;
  // clamp so scheduling never goes backwards (the grid catches up afterwards).
  const SimTime at = nominal > sim_.now() ? nominal : sim_.now();
  sim_.schedule_at(at, [this, nominal] { probe(nominal); },
                   EventPriority::kProtocol);
}

void ServerLair::probe(SimTime nominal) {
  const SimTime deadline = nominal + cfg_.lair_window_s;
  const bool channel_good =
      mac_.broadcast_reference_snr(sim_.now()) >= cfg_.lair_min_snr_db;
  if (channel_good || sim_.now() + cfg_.lair_step_s > deadline) {
    if (sim_.now() > nominal) {
      ++lair_deferred_;
      lair_deferral_s_ += sim_.now() - nominal;
    }
    emit();
    schedule_tick();  // next nominal tick stays on the L grid (no drift)
    return;
  }
  sim_.schedule_in(cfg_.lair_step_s, [this, nominal] { probe(nominal); },
                   EventPriority::kProtocol);
}

void ServerLair::emit() {
  enqueue_full_report(build_full_report(cfg_.window_mult * cfg_.ir_interval_s));
}

}  // namespace wdc
