#include "proto/report_codec.hpp"

#include "proto/wire_bytes.hpp"

namespace wdc {
namespace {

constexpr std::uint8_t kMagic0 = 'W';
constexpr std::uint8_t kMagic1 = 'R';

// The byte-level writer/reader pair and the FNV-1a checksum live in
// proto/wire_bytes.hpp, shared with the socket envelope codec (serve_codec) —
// one bounds-checking / count-pre-validation discipline for every wire format.
using wire::ByteReader;
using wire::ByteWriter;
using wire::fnv1a32;

ByteWriter header(ReportWireKind kind, std::size_t reserve) {
  ByteWriter w(reserve + 4);
  w.u8(kMagic0);
  w.u8(kMagic1);
  w.u8(kReportCodecVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  return w;
}

bool read_id_time_pairs(ByteReader& r,
                        std::vector<std::pair<ItemId, SimTime>>* out,
                        const char* what) {
  std::size_t n = 0;
  if (!r.count(sizeof(ItemId) + sizeof(SimTime), &n, what)) return false;
  out->resize(n);
  for (auto& [id, t] : *out)
    if (!r.u32(&id, what) || !r.f64(&t, what)) return false;
  return true;
}

bool read_ids(ByteReader& r, std::vector<ItemId>* out, const char* what) {
  std::size_t n = 0;
  if (!r.count(sizeof(ItemId), &n, what)) return false;
  out->resize(n);
  for (auto& id : *out)
    if (!r.u32(&id, what)) return false;
  return true;
}

std::shared_ptr<const Payload> decode_body(ByteReader& r, ReportWireKind kind) {
  switch (kind) {
    case ReportWireKind::kFull: {
      auto p = std::make_shared<FullReport>();
      if (!r.f64(&p->stamp, "full.stamp") ||
          !r.f64(&p->window_start, "full.window_start") ||
          !read_id_time_pairs(r, &p->updates, "full.updates"))
        return nullptr;
      return p;
    }
    case ReportWireKind::kMini: {
      auto p = std::make_shared<MiniReport>();
      if (!r.f64(&p->stamp, "mini.stamp") ||
          !r.f64(&p->anchor, "mini.anchor") ||
          !read_ids(r, &p->updated, "mini.updated"))
        return nullptr;
      return p;
    }
    case ReportWireKind::kSig: {
      auto p = std::make_shared<SigReport>();
      if (!r.f64(&p->stamp, "sig.stamp") ||
          !r.f64(&p->window_start, "sig.window_start") ||
          !r.f64(&p->fp_prob, "sig.fp_prob") ||
          !read_ids(r, &p->updated, "sig.updated"))
        return nullptr;
      if (p->fp_prob < 0.0 || p->fp_prob > 1.0) {
        r.fail("probability out of [0,1]:", "sig.fp_prob");
        return nullptr;
      }
      return p;
    }
    case ReportWireKind::kDigest: {
      auto p = std::make_shared<PiggyDigest>();
      std::uint8_t complete = 0;
      if (!r.f64(&p->stamp, "digest.stamp") ||
          !r.f64(&p->horizon_start, "digest.horizon_start") ||
          !r.u8(&complete, "digest.complete") ||
          !read_ids(r, &p->updated, "digest.updated"))
        return nullptr;
      if (complete > 1) {
        r.fail("boolean out of {0,1}:", "digest.complete");
        return nullptr;
      }
      p->complete = complete != 0;
      return p;
    }
    case ReportWireKind::kBs: {
      auto p = std::make_shared<BsReport>();
      if (!r.f64(&p->stamp, "bs.stamp")) return nullptr;
      std::size_t nb = 0;
      if (!r.count(sizeof(SimTime), &nb, "bs.boundaries")) return nullptr;
      p->boundaries.resize(nb);
      for (auto& b : p->boundaries)
        if (!r.f64(&b, "bs.boundaries")) return nullptr;
      if (!read_id_time_pairs(r, &p->updates, "bs.updates")) return nullptr;
      return p;
    }
  }
  r.fail("unknown", "report kind");
  return nullptr;
}

}  // namespace

const char* to_string(ReportWireKind k) {
  switch (k) {
    case ReportWireKind::kFull: return "FULL";
    case ReportWireKind::kMini: return "MINI";
    case ReportWireKind::kSig: return "SIG";
    case ReportWireKind::kDigest: return "DIGEST";
    case ReportWireKind::kBs: return "BS";
  }
  return "?";
}

std::vector<std::uint8_t> encode_report(const FullReport& r) {
  ByteWriter w = header(ReportWireKind::kFull, 20 + 12 * r.updates.size());
  w.f64(r.stamp);
  w.f64(r.window_start);
  w.count(r.updates.size());
  for (const auto& [id, t] : r.updates) {
    w.u32(id);
    w.f64(t);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_report(const MiniReport& r) {
  ByteWriter w = header(ReportWireKind::kMini, 20 + 4 * r.updated.size());
  w.f64(r.stamp);
  w.f64(r.anchor);
  w.count(r.updated.size());
  for (const ItemId id : r.updated) w.u32(id);
  return w.take();
}

std::vector<std::uint8_t> encode_report(const SigReport& r) {
  ByteWriter w = header(ReportWireKind::kSig, 28 + 4 * r.updated.size());
  w.f64(r.stamp);
  w.f64(r.window_start);
  w.f64(r.fp_prob);
  w.count(r.updated.size());
  for (const ItemId id : r.updated) w.u32(id);
  return w.take();
}

std::vector<std::uint8_t> encode_report(const PiggyDigest& r) {
  ByteWriter w = header(ReportWireKind::kDigest, 21 + 4 * r.updated.size());
  w.f64(r.stamp);
  w.f64(r.horizon_start);
  w.u8(r.complete ? 1 : 0);
  w.count(r.updated.size());
  for (const ItemId id : r.updated) w.u32(id);
  return w.take();
}

std::vector<std::uint8_t> encode_report(const BsReport& r) {
  ByteWriter w = header(ReportWireKind::kBs,
                        16 + 8 * r.boundaries.size() + 12 * r.updates.size());
  w.f64(r.stamp);
  w.count(r.boundaries.size());
  for (const SimTime b : r.boundaries) w.f64(b);
  w.count(r.updates.size());
  for (const auto& [id, t] : r.updates) {
    w.u32(id);
    w.f64(t);
  }
  return w.take();
}

bool decode_report(const std::uint8_t* data, std::size_t size,
                   DecodedReport* out, std::string* error) {
  const auto set_error = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  ByteReader r(data, size);
  std::uint8_t m0 = 0, m1 = 0, version = 0, kind = 0;
  if (!r.u8(&m0, "magic") || !r.u8(&m1, "magic"))
    return set_error(r.error());
  if (m0 != kMagic0 || m1 != kMagic1) return set_error("bad magic");
  if (!r.u8(&version, "version")) return set_error(r.error());
  if (version != kReportCodecVersion)
    return set_error("unsupported version " + std::to_string(version));
  if (!r.u8(&kind, "kind")) return set_error(r.error());
  if (kind > static_cast<std::uint8_t>(ReportWireKind::kBs))
    return set_error("unknown report kind " + std::to_string(kind));

  const auto wire_kind = static_cast<ReportWireKind>(kind);
  auto payload = decode_body(r, wire_kind);
  if (payload == nullptr) return set_error(r.error());
  // The checksum seals everything before it: header + body, but not any
  // trailing garbage (which the strictness check below still rejects).
  const std::size_t sealed = size - r.remaining();
  std::uint32_t expect = 0;
  if (!r.u32(&expect, "checksum")) return set_error(r.error());
  if (expect != fnv1a32(data, sealed)) return set_error("checksum mismatch");
  if (r.remaining() != 0)
    return set_error(std::to_string(r.remaining()) + " trailing bytes");
  out->kind = wire_kind;
  out->payload = std::move(payload);
  return true;
}

}  // namespace wdc
