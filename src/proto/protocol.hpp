#ifndef WDC_PROTO_PROTOCOL_HPP
#define WDC_PROTO_PROTOCOL_HPP

/// @file protocol.hpp
/// Protocol taxonomy and shared configuration.
///
/// Baselines: TS, AT, SIG, UIR (classical invalidation-report schemes).
/// Reconstructions of the paper's new algorithms: LAIR, PIG, HYB (see DESIGN.md —
/// the original pseudocode is unavailable; these are built from the title's two
/// levers, link adaptation and downlink traffic).

#include <string>

#include "util/types.hpp"

namespace wdc {

enum class ProtocolKind {
  kTs,    ///< Broadcasting Timestamps (Barbara–Imielinski)
  kAt,    ///< Amnesic Terminals
  kSig,   ///< Signature-based reports
  kUir,   ///< Updated Invalidation Reports (Cao)
  kLair,  ///< NEW: Link-Adaptation-aware IR scheduling (TS content, slid reports)
  kPig,   ///< NEW: Piggybacked invalidation digests on downlink traffic
  kHyb,   ///< NEW: Hybrid adaptive (LAIR + PIG + adaptive UIR frequency)
  // --- non-IR baselines (papers include them to anchor the comparison) ---
  kNc,    ///< No caching: every query fetches from the server
  kPer,   ///< Poll-each-read: cached entries validated per query via uplink
  kBs,    ///< Bit-Sequences (Jing et al. '97): dyadic-window reports, fixed cost
  kCbl,   ///< Stateful callback with leases — the contrast that motivates IRs:
          ///< zero-wait answers, but server state ∝ clients×items and notices
          ///< lost to fades/sleep can produce measurable staleness.
};

/// The IR-based protocols the paper's family covers (used by TAB-1 etc.).
inline constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kTs,  ProtocolKind::kAt,   ProtocolKind::kSig, ProtocolKind::kUir,
    ProtocolKind::kLair, ProtocolKind::kPig, ProtocolKind::kHyb};

/// Every protocol, baselines included (TAB-3, invariants tests).
inline constexpr ProtocolKind kAllProtocolsAndBaselines[] = {
    ProtocolKind::kTs,   ProtocolKind::kAt,  ProtocolKind::kSig,
    ProtocolKind::kUir,  ProtocolKind::kLair, ProtocolKind::kPig,
    ProtocolKind::kHyb,  ProtocolKind::kNc,  ProtocolKind::kPer,
    ProtocolKind::kBs,   ProtocolKind::kCbl};

std::string to_string(ProtocolKind k);
ProtocolKind protocol_from_string(const std::string& name);

/// Everything the protocols need to know, shared by server and clients.
struct ProtoConfig {
  // --- report timing ---
  double ir_interval_s = 20.0;  ///< L: full-report period
  double window_mult = 3.0;     ///< w: TS/LAIR coverage window = w·L
  unsigned uir_m = 5;           ///< Cao's m: interval split into m slices, m−1 UIRs

  // --- message sizes (bits) ---
  Bits report_header_bits = 128;
  Bits id_bits = 32;
  Bits ts_bits = 32;
  Bits request_bits = 256;      ///< uplink cache-miss request
  Bits item_header_bits = 128;  ///< header on item broadcasts
  Bits data_header_bits = 96;   ///< header on downlink data frames

  // --- SIG ---
  Bits sig_bits_per_item = 8;    ///< compressed signature budget per database item
  double sig_fp_prob = 0.02;     ///< false-invalidation probability per report
  double sig_window_mult = 10.0; ///< signature coverage window = mult·L

  // --- LAIR (reconstruction) ---
  double lair_window_s = 4.0;    ///< max deferral δmax past the nominal tick
  double lair_step_s = 0.2;      ///< channel re-probe period while deferring
  /// "good channel" = the broadcast coverage-reference SNR clears this floor.
  /// The floor should sit near the lowest MCS's clean-decode point: below it the
  /// design-coverage listener is in a fade no modulation choice can punch
  /// through, and deferring (at low Doppler) can outwait the fade.
  double lair_min_snr_db = 6.0;

  // --- PIG (reconstruction) ---
  double pig_horizon_s = 30.0;   ///< G: digest covers updates in (t−G, t]
  unsigned pig_max_ids = 32;     ///< digest capacity (beyond ⇒ incomplete digest)

  // --- HYB (reconstruction) ---
  double hyb_target_gap_s = 4.0; ///< desired consistency-point spacing
  unsigned hyb_max_m = 16;

  // --- BS (Jing et al.) ---
  unsigned bs_levels = 6;        ///< dyadic windows L·2^0 … L·2^(levels−1)

  // --- PER ---
  Bits poll_ack_bits = 96;       ///< unicast poll-reply control message

  // --- CBL ---
  double cbl_lease_s = 120.0;    ///< callback lease duration
  Bits cbl_notice_bits = 96;     ///< unicast invalidation notice

  // --- client ---
  std::size_t cache_capacity = 150;  ///< items
  double request_timeout_s = 15.0;   ///< re-request a missing item after this long

  // --- selective tuning (energy) ---
  /// When true, a client keeps its radio off between reports and tunes in only
  /// around the expected report instants (plus while fetching items) — the
  /// classic IR energy optimisation. Costs the ability to overhear digests.
  bool selective_tuning = false;
  double tune_guard_s = 0.2;     ///< radio on this long before the expected report
  double tune_linger_s = 1.0;    ///< stay on this long past the expected instant
};

}  // namespace wdc

#endif  // WDC_PROTO_PROTOCOL_HPP
