#include "proto/baselines.hpp"

namespace wdc {

// ----------------------------------------------------------------------- NC --

void ClientNc::on_query(ItemId item) {
  sink_.record_query(sim_.now());
  auto& tr = sim_.trace();
  if (tr.enabled())
    tr.emit(TraceEventKind::kQuerySubmit, sim_.now(), id(), item);
  // Fetch immediately; no cache, no consistency wait. Multiple queries for the
  // same item share one in-flight request.
  const bool already = awaiting_item(item);
  enqueue_pending(item, sim_.now(), /*awaiting=*/true);
  if (!already) decide_miss(item);
}

// ---------------------------------------------------------------------- PER --

void ServerPer::on_poll(ClientId from, ItemId item, Version version) {
  if (crash_suppress()) return;  // unanswered poll; the client's timer re-asks
  ++polls_;
  const bool valid = db_.version(item) == version;
  if (valid) ++poll_hits_;

  auto ack = std::make_shared<PollAck>();
  ack->item = item;
  ack->version = db_.version(item);
  ack->content_time = sim_.now();
  ack->valid = valid;

  Message msg;
  msg.kind = MsgKind::kControl;
  msg.dest = from;
  msg.item = item;
  msg.bits = cfg_.poll_ack_bits;
  msg.payload = std::move(ack);
  mac_.enqueue(std::move(msg));

  // Poll miss ⇒ the client needs the fresh copy: push the broadcast unprompted.
  if (!valid) on_request(from, item);
}

void ClientPer::on_query(ItemId item) {
  sink_.record_query(sim_.now());
  auto& tr = sim_.trace();
  if (tr.enabled())
    tr.emit(TraceEventKind::kQuerySubmit, sim_.now(), id(), item);
  const CacheEntry* entry = cache_.peek(item);
  if (entry == nullptr) {
    // Plain miss: fetch (shares an in-flight request like NC).
    const bool already = awaiting_item(item);
    enqueue_pending(item, sim_.now(), /*awaiting=*/true);
    if (!already) decide_miss(item);
    return;
  }
  // Cached: validate this read with an uplink poll.
  auto& waiting = polls_in_flight_[item];
  waiting.push_back(sim_.now());
  if (waiting.size() > 1) return;  // a poll for this item is already out
  auto* per_server = dynamic_cast<ServerPer*>(&server());
  if (per_server == nullptr)
    throw std::logic_error("ClientPer requires ServerPer");
  const Version polled = entry->version;
  const ItemId polled_item = item;
  uplink().send(id(), cfg_.request_bits, [per_server, me = id(), polled_item,
                                          polled] {
    per_server->on_poll(me, polled_item, polled);
  });
}

void ClientPer::on_sleep_transition(bool awake) {
  ClientProtocol::on_sleep_transition(awake);
  if (awake) return;
  // Reads waiting on poll verdicts are abandoned like any pending query.
  // The iteration order over the unordered map reaches the drop accounting
  // and the trace stream, but every per-entry effect is order-insensitive
  // (record_dropped is a warmup-gated counter bump, never a float
  // accumulation), and the golden digests are pinned against the current
  // libstdc++ order — re-ordering here would break bit-identity for nothing.
  // Revisit when the goldens are next re-pinned (jakes_v2).
  auto& tr = sim_.trace();
  // wdc-lint: allow(ordered-iteration)
  for (const auto& [item, qtimes] : polls_in_flight_)
    for (const SimTime qtime : qtimes) {
      sink_.record_dropped(qtime);
      if (tr.enabled())
        tr.emit(TraceEventKind::kQueryDrop, sim_.now(), id(), item);
    }
  polls_in_flight_.clear();
}

void ClientPer::handle_control(const Message& msg) {
  const auto ack = std::dynamic_pointer_cast<const PollAck>(msg.payload);
  if (!ack) return;
  const auto waiting = polls_in_flight_.find(ack->item);
  if (waiting == polls_in_flight_.end()) return;
  const std::vector<SimTime> qtimes = std::move(waiting->second);
  polls_in_flight_.erase(waiting);

  if (ack->valid) {
    // The server certified our copy as of content_time: answer every read that
    // was waiting on this poll.
    if (CacheEntry* entry = cache_.get(ack->item)) {
      entry->validated_at = ack->content_time;
      for (const SimTime qtime : qtimes)
        record_hit_answer(qtime, ack->item, entry->version, ack->content_time);
      return;
    }
  }
  // Invalid (or the entry vanished): the server is already pushing the item.
  invalidate(ack->item);
  for (const SimTime qtime : qtimes)
    enqueue_pending(ack->item, qtime, /*awaiting=*/true);
  await_item(ack->item);
}

}  // namespace wdc
