#include "proto/stats_sink.hpp"

#include <algorithm>

namespace wdc {

void StatsSink::record_query(SimTime qtime) {
  // Clients record queries synchronously from the event loop, so arrival times
  // are non-decreasing across the whole population; a violation means some
  // component time-travelled.
  WDC_ASSERT(qtime >= last_query_time_, "query recorded at ", qtime,
             " after one at ", last_query_time_);
  last_query_time_ = qtime;
  if (!counted(qtime)) return;
  ++queries_;
}

void StatsSink::record_answer(SimTime qtime, double latency_s, bool hit, bool stale) {
  WDC_ASSERT(latency_s >= 0.0, "negative answer latency ", latency_s,
             " for a query at ", qtime);
  if (!counted(qtime)) return;
  ++answered_;
  latency_.add(latency_s);
  latency_hist_.add(latency_s);
  if (hit) {
    ++hits_;
    hit_latency_.add(latency_s);
  } else {
    ++misses_;
    miss_latency_.add(latency_s);
  }
  if (stale) ++stale_serves_;
}

void StatsSink::record_dropped(SimTime qtime) {
  if (!counted(qtime)) return;
  ++dropped_;
}

void StatsSink::merge_from(const StatsSink& other) {
  queries_ += other.queries_;
  answered_ += other.answered_;
  hits_ += other.hits_;
  misses_ += other.misses_;
  stale_serves_ += other.stale_serves_;
  dropped_ += other.dropped_;
  reports_heard_ += other.reports_heard_;
  reports_missed_ += other.reports_missed_;
  digests_applied_ += other.digests_applied_;
  digest_answers_ += other.digest_answers_;
  cache_drops_ += other.cache_drops_;
  false_invalidations_ += other.false_invalidations_;
  request_retries_ += other.request_retries_;
  listen_airtime_s_ += other.listen_airtime_s_;
  // The arrival-order audit is per-cell; the merged sink is read-only.
  last_query_time_ = std::max(last_query_time_, other.last_query_time_);
  latency_.merge(other.latency_);
  hit_latency_.merge(other.hit_latency_);
  miss_latency_.merge(other.miss_latency_);
  latency_hist_.merge(other.latency_hist_);
}

double StatsSink::hit_ratio() const {
  const std::uint64_t total = hits_ + misses_;
  return total ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
}

}  // namespace wdc
