#include "proto/stats_sink.hpp"

namespace wdc {

void StatsSink::record_query(SimTime qtime) {
  // Clients record queries synchronously from the event loop, so arrival times
  // are non-decreasing across the whole population; a violation means some
  // component time-travelled.
  WDC_ASSERT(qtime >= last_query_time_, "query recorded at ", qtime,
             " after one at ", last_query_time_);
  last_query_time_ = qtime;
  if (!counted(qtime)) return;
  ++queries_;
}

void StatsSink::record_answer(SimTime qtime, double latency_s, bool hit, bool stale) {
  WDC_ASSERT(latency_s >= 0.0, "negative answer latency ", latency_s,
             " for a query at ", qtime);
  if (!counted(qtime)) return;
  ++answered_;
  latency_.add(latency_s);
  latency_hist_.add(latency_s);
  if (hit) {
    ++hits_;
    hit_latency_.add(latency_s);
  } else {
    ++misses_;
    miss_latency_.add(latency_s);
  }
  if (stale) ++stale_serves_;
}

void StatsSink::record_dropped(SimTime qtime) {
  if (!counted(qtime)) return;
  ++dropped_;
}

double StatsSink::hit_ratio() const {
  const std::uint64_t total = hits_ + misses_;
  return total ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
}

}  // namespace wdc
