#ifndef WDC_PROTO_BS_HPP
#define WDC_PROTO_BS_HPP

/// @file bs.hpp
/// BS — Bit-Sequences (Jing, Elmagarmid, Helal, Alonso 1997), behavioural model.
///
/// The server broadcasts, every L seconds, a hierarchy of nested bit sequences
/// whose total size is ≈ 2·N bits regardless of the update rate, with one
/// timestamp per dyadic window L·2^i. A client disconnected for *any* duration
/// inside the oldest window can resynchronise; the price is granularity — the
/// receiver learns only which dyadic interval an update fell into, so entries
/// fetched within the same interval as a (possibly earlier) update must be
/// conservatively invalidated. Distinct from SIG: deterministic (no false
/// positives from collisions), fixed cost ~2 bits/item vs SIG's configurable
/// budget, and window 2^(levels−1)·L.

#include "proto/client_base.hpp"
#include "proto/server_base.hpp"
#include "sim/periodic.hpp"

namespace wdc {

class ServerBs final : public ServerProtocol {
 public:
  using ServerProtocol::ServerProtocol;
  void start() override;

 private:
  std::unique_ptr<PeriodicTimer> timer_;
};

class ClientBs final : public ClientProtocol {
 public:
  using ClientProtocol::ClientProtocol;

 protected:
  void handle_bs(const BsReport& report) override;
};

}  // namespace wdc

#endif  // WDC_PROTO_BS_HPP
