#include "proto/server_base.hpp"

#include <utility>

#include "util/check.hpp"

namespace wdc {

ServerProtocol::ServerProtocol(Simulator& sim, BroadcastMac& mac, Database& db,
                               ProtoConfig cfg)
    : sim_(sim), mac_(mac), db_(db), cfg_(std::move(cfg)) {
  mac_.set_tx_observer([this](const Message& msg, std::size_t mcs, double airtime) {
    on_transmitted(msg, mcs, airtime);
  });
}

void ServerProtocol::on_request(ClientId from, ItemId item) {
  if (crash_suppress()) return;  // a dead server hears nothing
  auto& tr = sim_.trace();
  if (tr.enabled())
    tr.emit(TraceEventKind::kUplinkDeliver, sim_.now(), from, item);
  if (pending_broadcast_.count(item) > 0) {
    ++coalesced_;
    return;  // a broadcast of this item is already queued; the requester snoops it
  }
  pending_broadcast_.insert(item);
  auto payload = std::make_shared<ItemPayload>();
  payload->version = db_.version(item);
  payload->content_time = sim_.now();

  Message msg;
  msg.kind = MsgKind::kItemData;
  msg.bits = cfg_.item_header_bits + db_.item_bits(item);
  msg.item = item;
  msg.version = payload->version;
  decorate_item(msg, *payload);
  msg.payload = std::move(payload);
  ++item_broadcasts_;
  mac_.enqueue(std::move(msg));
}

void ServerProtocol::on_downlink_frame(const TrafficFrame& frame) {
  if (crash_suppress()) return;
  auto payload = std::make_shared<DataPayload>();
  Message msg;
  msg.kind = MsgKind::kDownlinkData;
  msg.dest = frame.dest;
  msg.bits = cfg_.data_header_bits + frame.bits;
  decorate_data(msg, *payload);
  msg.payload = std::move(payload);
  mac_.enqueue(std::move(msg));
}

void ServerProtocol::decorate_item(Message&, ItemPayload&) {}
void ServerProtocol::decorate_data(Message&, DataPayload&) {}

void ServerProtocol::attach_digest_to(Message& msg,
                                      std::shared_ptr<const PiggyDigest>& slot) {
  auto digest = build_digest();
  const Bits extra = digest->wire_bits(cfg_);
  msg.bits += extra;
  msg.piggyback_bits += extra;
  digest_bits_ += extra;
  ++digest_frames_;
  slot = std::move(digest);
}

std::shared_ptr<const FullReport> ServerProtocol::build_full_report(
    double window_s) const {
  WDC_ASSERT(window_s > 0.0, "full report with non-positive window ", window_s);
  auto rep = std::make_shared<FullReport>();
  rep->stamp = sim_.now();
  rep->window_start = sim_.now() - window_s;
  for (const ItemId id : db_.updated_between(rep->window_start, rep->stamp)) {
    const SimTime at = db_.last_update(id);
    WDC_CHECK(at <= rep->stamp, "report lists item ", id,
              " updated in the future: ", at, " > stamp ", rep->stamp);
    rep->updates.emplace_back(id, at);
  }
  return rep;
}

std::shared_ptr<const MiniReport> ServerProtocol::build_mini_report(
    SimTime anchor) const {
  WDC_ASSERT(anchor <= sim_.now(), "mini report anchored in the future: anchor=",
             anchor, " now=", sim_.now());
  auto rep = std::make_shared<MiniReport>();
  rep->stamp = sim_.now();
  rep->anchor = anchor;
  rep->updated = db_.updated_between(anchor, rep->stamp);
  return rep;
}

std::shared_ptr<const PiggyDigest> ServerProtocol::build_digest() const {
  auto digest = std::make_shared<PiggyDigest>();
  digest->stamp = sim_.now();
  digest->horizon_start = sim_.now() - cfg_.pig_horizon_s;
  digest->updated = db_.updated_between(digest->horizon_start, digest->stamp);
  if (digest->updated.size() > cfg_.pig_max_ids) {
    // Keep the most recent ids (tail of the chronological list): recency maximises
    // the chance the digest still covers entries validated at the last report.
    digest->updated.erase(digest->updated.begin(),
                          digest->updated.end() - cfg_.pig_max_ids);
    digest->complete = false;
  }
  WDC_CHECK(!digest->complete || digest->updated.size() <= cfg_.pig_max_ids,
            "complete digest with ", digest->updated.size(),
            " ids over the capacity ", cfg_.pig_max_ids);
  return digest;
}

bool ServerProtocol::crash_suppress() {
  if (!down_) return false;
  ++crash_suppressed_;
  return true;
}

void ServerProtocol::on_server_state(bool down) {
  WDC_ASSERT(down != down_, "server crash/recovery edge repeated: down=", down);
  down_ = down;
  if (down) {
    crash_start_ = sim_.now();
    return;
  }
  // Report-log replay: the database is the log (it keeps every update time),
  // so recovery is one full report spanning the outage plus the normal
  // reporting window. Clients that slept through less than that see full
  // window coverage and recover without a Barbara–Imielinski cache drop.
  const double window =
      (sim_.now() - crash_start_) + cfg_.window_mult * cfg_.ir_interval_s;
  enqueue_full_report(build_full_report(window));
}

void ServerProtocol::enqueue_full_report(std::shared_ptr<const FullReport> report) {
  if (crash_suppress()) return;
  Message msg;
  msg.kind = MsgKind::kInvalidationReport;
  msg.bits = report->wire_bits(cfg_);
  msg.payload = std::move(report);
  ++reports_sent_;
  mac_.enqueue(std::move(msg));
}

void ServerProtocol::enqueue_mini_report(std::shared_ptr<const MiniReport> report) {
  if (crash_suppress()) return;
  Message msg;
  msg.kind = MsgKind::kMiniReport;
  msg.bits = report->wire_bits(cfg_);
  msg.payload = std::move(report);
  ++minis_sent_;
  mac_.enqueue(std::move(msg));
}

void ServerProtocol::on_transmitted(const Message& msg, std::size_t /*mcs*/,
                                    double /*airtime_s*/) {
  if (msg.kind == MsgKind::kItemData && msg.item != kInvalidItem)
    pending_broadcast_.erase(msg.item);
}

}  // namespace wdc
