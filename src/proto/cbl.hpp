#ifndef WDC_PROTO_CBL_HPP
#define WDC_PROTO_CBL_HPP

/// @file cbl.hpp
/// CBL — stateful callback invalidation with leases (Gray–Cheriton leases meet
/// the AS-style callback schemes). Implemented as the *contrast* protocol: it
/// shows what the IR family gives up (zero-wait answers) and what it buys
/// (statelessness and airtight consistency on a lossy broadcast medium).
///
/// Server: remembers, per item, which clients hold unexpired leases (granted to
/// requesters when an item is served). On every update it unicasts an
/// invalidation notice (MAC ARQ, max_retx) to each lease holder and revokes the
/// lease. State is O(outstanding leases) — the scalability cost IR schemes avoid.
///
/// Client: a query for a cached, *leased*, un-revoked entry is answered
/// immediately — no consistency wait at all. Everything else fetches like NC.
/// Going to sleep voids all leases (notices can no longer be heard).
///
/// Consistency: **best-effort**. A notice in flight, lost to a fade after ARQ
/// exhaustion, or sent while the client dozes opens a staleness window; the
/// oracle counts every stale answer (`Metrics::stale_serves`). On an ideal
/// channel with awake clients the count is 0 up to notification latency; under
/// fading it is measurably positive — the number that justifies the IR family.

#include <unordered_map>
#include <unordered_set>

#include "proto/client_base.hpp"
#include "proto/server_base.hpp"

namespace wdc {

class ServerCbl final : public ServerProtocol {
 public:
  ServerCbl(Simulator& sim, BroadcastMac& mac, Database& db, ProtoConfig cfg);

  void start() override {}  // no reports; updates drive notices

  /// Record the requester's lease, then serve the item as usual.
  void on_request(ClientId from, ItemId item) override;

  std::uint64_t notices_sent() const { return notices_sent_; }
  std::size_t outstanding_leases() const { return outstanding_; }
  std::uint64_t peak_leases() const { return peak_leases_; }

  /// Lease-table audit: the outstanding counter equals the number of recorded
  /// holders, no item maps to an empty holder set, and no recorded lease is for
  /// an unregistered client. Trips a WDC_CHECK on violation.
  void audit() const;

 protected:
  void decorate_item(Message& msg, ItemPayload& payload) override;

 private:
  void on_update(ItemId item, SimTime when);
  void prune(ItemId item, SimTime now);

  /// item → (client → lease expiry).
  std::unordered_map<ItemId, std::unordered_map<ClientId, SimTime>> leases_;
  std::size_t outstanding_ = 0;
  std::uint64_t peak_leases_ = 0;
  std::uint64_t notices_sent_ = 0;
};

class ClientCbl final : public ClientProtocol {
 public:
  using ClientProtocol::ClientProtocol;

  void on_query(ItemId item) override;
  void on_sleep_transition(bool awake) override;

  /// Best-effort consistency: a notice lost to a fade or sleep yields a counted
  /// stale serve — legitimate for CBL, so the no-stale-read audit is waived.
  bool guarantees_consistency() const override { return false; }

 protected:
  void handle_control(const Message& msg) override;
  void on_item_received(const Message& msg, const ItemPayload& payload,
                        bool fetched) override;

 private:
  /// item → lease expiry (granted when our own fetch completed).
  std::unordered_map<ItemId, SimTime> leases_;

  void note_lease(ItemId item, SimTime expiry) { leases_[item] = expiry; }

 public:
  /// White-box accessor for tests.
  bool holds_lease(ItemId item) const;
};

}  // namespace wdc

#endif  // WDC_PROTO_CBL_HPP
