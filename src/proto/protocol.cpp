#include "proto/protocol.hpp"

#include <stdexcept>

namespace wdc {

std::string to_string(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kTs: return "TS";
    case ProtocolKind::kAt: return "AT";
    case ProtocolKind::kSig: return "SIG";
    case ProtocolKind::kUir: return "UIR";
    case ProtocolKind::kLair: return "LAIR";
    case ProtocolKind::kPig: return "PIG";
    case ProtocolKind::kHyb: return "HYB";
    case ProtocolKind::kNc: return "NC";
    case ProtocolKind::kPer: return "PER";
    case ProtocolKind::kBs: return "BS";
    case ProtocolKind::kCbl: return "CBL";
  }
  return "?";
}

ProtocolKind protocol_from_string(const std::string& name) {
  if (name == "TS" || name == "ts") return ProtocolKind::kTs;
  if (name == "AT" || name == "at") return ProtocolKind::kAt;
  if (name == "SIG" || name == "sig") return ProtocolKind::kSig;
  if (name == "UIR" || name == "uir") return ProtocolKind::kUir;
  if (name == "LAIR" || name == "lair") return ProtocolKind::kLair;
  if (name == "PIG" || name == "pig") return ProtocolKind::kPig;
  if (name == "HYB" || name == "hyb") return ProtocolKind::kHyb;
  if (name == "NC" || name == "nc") return ProtocolKind::kNc;
  if (name == "PER" || name == "per") return ProtocolKind::kPer;
  if (name == "BS" || name == "bs") return ProtocolKind::kBs;
  if (name == "CBL" || name == "cbl") return ProtocolKind::kCbl;
  throw std::invalid_argument("unknown protocol: " + name);
}

}  // namespace wdc
