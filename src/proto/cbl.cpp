#include "proto/cbl.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wdc {

// --------------------------------------------------------------------- server --

ServerCbl::ServerCbl(Simulator& sim, BroadcastMac& mac, Database& db,
                     ProtoConfig cfg)
    : ServerProtocol(sim, mac, db, cfg) {
  db_.set_update_observer(
      [this](ItemId item, SimTime when) { on_update(item, when); });
}

void ServerCbl::prune(ItemId item, SimTime now) {
  const auto it = leases_.find(item);
  if (it == leases_.end()) return;
  for (auto holder = it->second.begin(); holder != it->second.end();) {
    if (holder->second <= now) {
      holder = it->second.erase(holder);
      --outstanding_;
    } else {
      ++holder;
    }
  }
  if (it->second.empty()) leases_.erase(it);
}

void ServerCbl::on_request(ClientId from, ItemId item) {
  if (crash_suppress()) return;  // down: no lease granted, no broadcast
  prune(item, sim_.now());
  auto& holders = leases_[item];
  const auto [it, inserted] =
      holders.insert_or_assign(from, sim_.now() + cfg_.cbl_lease_s);
  (void)it;
  if (inserted) {
    ++outstanding_;
    peak_leases_ = std::max<std::uint64_t>(peak_leases_, outstanding_);
  }
  ServerProtocol::on_request(from, item);
}

void ServerCbl::decorate_item(Message& /*msg*/, ItemPayload& payload) {
  payload.lease_s = cfg_.cbl_lease_s;
}

void ServerCbl::on_update(ItemId item, SimTime when) {
  prune(item, when);
  const auto it = leases_.find(item);
  if (it == leases_.end()) return;
  // Notice order follows the unordered holder map, and notices enter the MAC
  // queue in that order — observable downstream, so the lint flag is real.
  // But the order is deterministic for a fixed libstdc++ + insertion history
  // (which the determinism contract already pins), and sorting holders here
  // would shuffle MAC service order and break the pinned golden digests.
  // Keep the annotation until the goldens are next re-pinned (jakes_v2),
  // then switch to an ordered view in the same PR.
  // wdc-lint: allow(ordered-iteration)
  for (const auto& [client, expiry] : it->second) {
    // A crashed server still revokes leases (its own bookkeeping survives the
    // restart) but cannot notify the holders — CBL's best-effort consistency
    // degrades exactly here, and every unsent notice is counted.
    if (crash_suppress()) continue;
    auto notice = std::make_shared<InvalidateNotice>();
    notice->item = item;
    notice->update_time = when;
    Message msg;
    msg.kind = MsgKind::kControl;
    msg.dest = client;
    msg.item = item;
    msg.bits = cfg_.cbl_notice_bits;
    msg.payload = std::move(notice);
    ++notices_sent_;
    mac_.enqueue(std::move(msg));
  }
  WDC_ASSERT(outstanding_ >= it->second.size(), "revoking ", it->second.size(),
             " leases on item ", item, " with only ", outstanding_,
             " outstanding");
  outstanding_ -= it->second.size();
  leases_.erase(it);
  audit();
}

void ServerCbl::audit() const {
#if WDC_CHECKS_ENABLED
  std::size_t recorded = 0;
  for (const auto& [item, holders] : leases_) {
    WDC_CHECK(!holders.empty(), "item ", item,
              " kept in the lease table with no holders");
    recorded += holders.size();
  }
  WDC_CHECK(recorded == outstanding_, "outstanding-lease counter ", outstanding_,
            " != ", recorded, " recorded holders");
  WDC_CHECK(peak_leases_ >= outstanding_, "peak-lease watermark ", peak_leases_,
            " below the current count ", outstanding_);
#endif
}

// --------------------------------------------------------------------- client --

bool ClientCbl::holds_lease(ItemId item) const {
  const auto it = leases_.find(item);
  return it != leases_.end() && it->second > sim_.now();
}

void ClientCbl::on_query(ItemId item) {
  sink_.record_query(sim_.now());
  const CacheEntry* entry = cache_.peek(item);
  if (entry != nullptr && holds_lease(item)) {
    // Zero-wait answer: the lease contract says the server would have notified
    // us of any update. The oracle charges every violation of that promise
    // (notice in flight / lost / sent while we dozed) as a stale serve.
    record_hit_answer(sim_.now(), item, entry->version, sim_.now());
    return;
  }
  // No usable lease: fetch like NC (shares in-flight requests).
  const bool already = awaiting_item(item);
  enqueue_pending(item, sim_.now(), /*awaiting=*/true);
  if (!already) decide_miss(item);
}

void ClientCbl::on_sleep_transition(bool awake) {
  ClientProtocol::on_sleep_transition(awake);
  // Asleep we cannot hear invalidation notices: every lease is void. (The
  // server keeps sending notices to us in vain — the realistic failure mode.)
  if (!awake) leases_.clear();
}

void ClientCbl::handle_control(const Message& msg) {
  const auto notice = std::dynamic_pointer_cast<const InvalidateNotice>(msg.payload);
  if (!notice) return;
  invalidate(notice->item);
  leases_.erase(notice->item);
}

void ClientCbl::on_item_received(const Message& msg, const ItemPayload& payload,
                                 bool fetched) {
  // Leases are granted to requesters only (the server recorded us at request
  // time); snoopers may cache but must not claim the callback promise.
  if (fetched && payload.lease_s > 0.0 && msg.item != kInvalidItem)
    note_lease(msg.item, payload.content_time + payload.lease_s);
}

}  // namespace wdc
