#ifndef WDC_PROTO_PIG_HPP
#define WDC_PROTO_PIG_HPP

/// @file pig.hpp
/// PIG — Piggybacked invalidation digests. **Reconstruction** of the paper's
/// downlink-traffic-aware algorithm (original pseudocode unavailable; see
/// DESIGN.md).
///
/// TS reports anchor consistency as usual, but every downlink data frame and item
/// broadcast additionally carries a small digest: the ids updated in the last G
/// seconds. Any client that overhears any frame between reports learns the recent
/// invalidations early — a *complete* digest is a full consistency point, so
/// queries are answered at ambient-traffic timescales instead of waiting up to L.
/// The busier the downlink (the regime where dedicated reports hurt most), the
/// better PIG gets — the load *is* the signalling channel.

#include "proto/client_base.hpp"
#include "proto/server_base.hpp"
#include "sim/periodic.hpp"

namespace wdc {

class ServerPig final : public ServerProtocol {
 public:
  using ServerProtocol::ServerProtocol;
  void start() override;

 protected:
  /// Attach a digest to item broadcasts and background traffic alike.
  void decorate_item(Message& msg, ItemPayload& payload) override;
  void decorate_data(Message& msg, DataPayload& payload) override;

 private:
  std::unique_ptr<PeriodicTimer> timer_;
};

class ClientPig final : public ClientProtocol {
 public:
  using ClientProtocol::ClientProtocol;

 protected:
  void handle_digest(const PiggyDigest& digest) override { apply_digest(digest); }
};

}  // namespace wdc

#endif  // WDC_PROTO_PIG_HPP
