#ifndef WDC_PROTO_SERVE_CODEC_HPP
#define WDC_PROTO_SERVE_CODEC_HPP

/// @file serve_codec.hpp
/// The socket envelope: every message crossing a wdc_serve connection, both
/// directions, as one self-checking frame. Layout mirrors report_codec:
///
///   'W' 'S'  version:u8  kind:u8  <kind-specific fields>  checksum:u32
///
/// Invalidation reports are not re-modelled here — a kReport envelope nests
/// the report_codec frame verbatim (count-prefixed), so the fuzz-hardened
/// PR 5 codec remains the single wire definition of report content and the
/// envelope only adds transport envelope fields (sequence numbers, client
/// send timestamps for measured latency, shed notices).
///
/// Same corruption discipline as report_codec, enforced by the shared
/// wire_bytes primitives: bounds-checked reads, counts pre-validated before
/// allocation, trailing FNV-1a-32 checksum, trailing bytes rejected.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace wdc {

inline constexpr std::uint8_t kServeCodecVersion = 1;

/// Wire discriminator. kHello..kBye travel client → server; the rest
/// server → client.
enum class ServeWireKind : std::uint8_t {
  kHello = 0,      ///< open: client introduces itself (nonce echoes in the ack)
  kHelloAck = 1,   ///< server's reply: assigned client id + scenario identity
  kRequest = 2,    ///< cache-miss fetch of an item
  kPoll = 3,       ///< PER: validate a cached (item, version) pair
  kBye = 4,        ///< orderly close
  kReport = 5,     ///< nested report_codec frame (IR/UIR/SIG/BS broadcast)
  kItem = 6,       ///< item broadcast (the answer to kRequest)
  kData = 7,       ///< background downlink traffic frame
  kInvalidate = 8, ///< CBL unicast lease-revocation notice
  kPollAck = 9,    ///< PER unicast poll verdict
  kShed = 10,      ///< backpressure: server is about to drop this connection
};
inline constexpr std::uint8_t kMaxServeWireKind =
    static_cast<std::uint8_t>(ServeWireKind::kShed);

const char* to_string(ServeWireKind k);

/// Decoded (or to-be-encoded) envelope: `kind` selects which fields are
/// meaningful; encode_serve() writes exactly those, so unused fields never
/// reach the wire.
struct ServeMessage {
  ServeWireKind kind = ServeWireKind::kHello;

  // kHello / kHelloAck
  std::uint32_t client_nonce = 0;
  std::uint32_t client_id = 0;
  std::uint32_t num_items = 0;
  std::uint8_t protocol = 0;     ///< ProtocolKind the daemon runs
  double ir_interval_s = 0.0;

  // kRequest / kPoll / kItem / kInvalidate / kPollAck
  ItemId item = 0;
  std::uint32_t seq = 0;         ///< client-chosen request sequence number
  double sent_at = 0.0;          ///< client CLOCK_MONOTONIC seconds at send
  Version version = 0;
  double content_time = 0.0;
  double lease_s = 0.0;
  bool valid = false;            ///< kPollAck verdict
  double update_time = 0.0;      ///< kInvalidate

  // kItem / kData
  std::uint64_t payload_bits = 0;

  // kShed
  std::uint8_t shed_reason = 0;

  // Nested report_codec frames (verbatim bytes; empty = absent).
  std::vector<std::uint8_t> report_frame;  ///< kReport body
  std::vector<std::uint8_t> digest_frame;  ///< optional on kItem / kData
};

std::vector<std::uint8_t> encode_serve(const ServeMessage& m);

/// Strict decode: false (with a one-line reason) on any structural damage,
/// checksum mismatch, unknown kind, or trailing bytes. Never throws, never
/// allocates more than the input size.
bool decode_serve(const std::uint8_t* data, std::size_t size,
                  ServeMessage* out, std::string* error = nullptr);

inline bool decode_serve(const std::vector<std::uint8_t>& frame,
                         ServeMessage* out, std::string* error = nullptr) {
  return decode_serve(frame.data(), frame.size(), out, error);
}

}  // namespace wdc

#endif  // WDC_PROTO_SERVE_CODEC_HPP
