#include "proto/ts.hpp"

namespace wdc {

void ServerTs::start() {
  const double L = cfg_.ir_interval_s;
  timer_ = std::make_unique<PeriodicTimer>(
      sim_, /*first=*/L, /*period=*/L, [this](std::uint64_t) {
        enqueue_full_report(build_full_report(cfg_.window_mult * cfg_.ir_interval_s));
      });
}

}  // namespace wdc
