#ifndef WDC_PROTO_WIRE_BYTES_HPP
#define WDC_PROTO_WIRE_BYTES_HPP

/// @file wire_bytes.hpp
/// Shared byte-level (de)serialization primitives of the wire codecs: the
/// bounds-checked reader/writer pair and the FNV-1a-32 frame checksum that
/// report_codec (PR 5) established and serve_codec (the socket envelope)
/// reuses. One discipline, two codecs:
///
///  * every read is bounds-checked, the FIRST failure reason is kept;
///  * list counts are pre-validated against the bytes actually remaining
///    BEFORE any allocation, so a flipped length byte cannot balloon memory;
///  * ByteWriter::take() seals the frame with a trailing checksum over all
///    preceding bytes.
///
/// Native endian, like the .wdct trace format: frames are machine-local (the
/// daemon and its load driver run on the same host), not interchange.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace wdc::wire {

/// FNV-1a over a frame image — the trailing checksum of every sealed frame.
inline std::uint32_t fnv1a32(const std::uint8_t* p, std::size_t n) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

/// Append-only frame builder; take() seals with the checksum.
class ByteWriter {
 public:
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  void count(std::size_t n) { u32(static_cast<std::uint32_t>(n)); }

  /// Raw byte run (nested frames); the caller writes the count separately.
  void bytes(const std::uint8_t* p, std::size_t n) { raw(p, n); }

  /// Seal the frame: append the checksum of everything written so far, then
  /// hand the buffer over.
  std::vector<std::uint8_t> take() {
    u32(fnv1a32(buf_.data(), buf_.size()));
    return std::move(buf_);
  }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked cursor over the input buffer. Every accessor returns false
/// once the buffer is exhausted; `error` keeps the FIRST failure reason.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  const std::uint8_t* cursor() const { return p_; }

  bool u8(std::uint8_t* out, const char* what) {
    if (!need(1, what)) return false;
    *out = *p_++;
    return true;
  }
  bool u16(std::uint16_t* out, const char* what) { return fixed(out, what); }
  bool u32(std::uint32_t* out, const char* what) { return fixed(out, what); }
  bool u64(std::uint64_t* out, const char* what) { return fixed(out, what); }
  bool f64(double* out, const char* what) {
    if (!fixed(out, what)) return false;
    if (!std::isfinite(*out)) return fail("non-finite", what);
    return true;
  }

  /// Read a u32 element count and pre-validate it against the bytes actually
  /// left, so a corrupted count can neither overrun nor trigger a huge
  /// allocation.
  bool count(std::size_t entry_bytes, std::size_t* out, const char* what) {
    std::uint32_t n = 0;
    if (!u32(&n, what)) return false;
    if (static_cast<std::size_t>(n) * entry_bytes > remaining())
      return fail("list overruns buffer:", what);
    *out = n;
    return true;
  }

  /// Read a count-prefixed byte run (a nested frame) into `out`. The count is
  /// pre-validated like any other list, so allocation is bounded by input size.
  bool byte_run(std::vector<std::uint8_t>* out, const char* what) {
    std::size_t n = 0;
    if (!count(1, &n, what)) return false;
    out->assign(p_, p_ + n);
    p_ += n;
    return true;
  }

  bool fail(const char* why, const char* what) {
    if (error_.empty()) error_ = std::string(why) + " " + what;
    return false;
  }

  const std::string& error() const { return error_; }

 private:
  template <typename T>
  bool fixed(T* out, const char* what) {
    if (!need(sizeof *out, what)) return false;
    std::memcpy(out, p_, sizeof *out);
    p_ += sizeof *out;
    return true;
  }

  bool need(std::size_t n, const char* what) {
    if (remaining() >= n) return true;
    return fail("truncated at", what);
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  std::string error_;
};

}  // namespace wdc::wire

#endif  // WDC_PROTO_WIRE_BYTES_HPP
