#include "proto/uir.hpp"

namespace wdc {

void ServerUir::start() {
  const double L = cfg_.ir_interval_s;
  const unsigned m = cfg_.uir_m > 0 ? cfg_.uir_m : 1;
  const double slice = L / static_cast<double>(m);
  timer_ = std::make_unique<PeriodicTimer>(
      sim_, /*first=*/slice, /*period=*/slice, [this, m](std::uint64_t tick) {
        // Ticks 0..m−2 within each interval are minis; tick m−1 is the full report.
        if ((tick + 1) % m == 0) {
          auto full =
              build_full_report(cfg_.window_mult * cfg_.ir_interval_s);
          anchor_ = full->stamp;
          enqueue_full_report(std::move(full));
        } else {
          if (anchor_ <= 0.0) return;  // no anchor yet: skip leading minis
          enqueue_mini_report(build_mini_report(anchor_));
        }
      });
}

}  // namespace wdc
