#ifndef WDC_PROTO_CLIENT_BASE_HPP
#define WDC_PROTO_CLIENT_BASE_HPP

/// @file client_base.hpp
/// Client-side protocol machinery shared by every invalidation scheme.
///
/// ## Query discipline (classic latency-for-consistency)
/// A query is queued until the next *consistency point* — a report (or, for
/// PIG/HYB, a complete piggyback digest) whose content stamp is at or after the
/// query time. At that point:
///   * the item is resident (the report just certified it) → HIT, answered now;
///   * absent → MISS: an uplink request goes out and the query completes when the
///     item broadcast arrives (re-requested after `request_timeout_s`).
/// The NC/PER baselines override on_query() with their own immediate disciplines.
///
/// ## Consistency points are content-stamped
/// `tc_` advances to the report's *content* stamp, never the reception time, so
/// MAC queueing delay (including LAIR's deliberate sliding) cannot produce stale
/// answers. A staleness oracle (read-only peek at the server database) verifies
/// the guarantee; tests assert zero violations for every scheme.
///
/// ## Sleep
/// While asleep the radio is off: no receptions, queries are not generated, and
/// pending queries are dropped (counted). Recovery after wake-up is the
/// per-protocol window/gap logic in handle_full()/handle_mini().
///
/// ## Selective tuning (energy)
/// With `cfg.selective_tuning` the radio also dozes *between* reports: it powers
/// on `tune_guard_s` before each expected full-report instant and off again once
/// a report is applied (or after `report_slack() + tune_linger_s`). Fetching an
/// item keeps the radio on. Doze time is the classic IR energy win; the cost is
/// deafness to mini reports and digests between grid points.

#include <memory>
#include <vector>

#include "cache/lru_cache.hpp"
#include "channel/snr_process.hpp"
#include "mac/broadcast_mac.hpp"
#include "mac/uplink.hpp"
#include "proto/protocol.hpp"
#include "proto/reports.hpp"
#include "proto/server_base.hpp"
#include "proto/stats_sink.hpp"
#include "sim/simulator.hpp"
#include "stats/time_weighted.hpp"
#include "util/rng.hpp"
#include "workload/database.hpp"

namespace wdc {

class FaultInjector;

class ClientProtocol {
 public:
  /// Registers the client with the MAC. `oracle` is the server database, used
  /// exclusively for staleness verification (never for protocol decisions).
  ClientProtocol(Simulator& sim, BroadcastMac& mac, UplinkChannel& uplink,
                 ServerProtocol& server, const Database& oracle, ProtoConfig cfg,
                 SnrProcess* link, std::function<bool()> is_awake, StatsSink& sink,
                 Rng rng);
  virtual ~ClientProtocol() = default;

  ClientProtocol(const ClientProtocol&) = delete;
  ClientProtocol& operator=(const ClientProtocol&) = delete;

  /// A query from this client's application (QueryGenerator). Default: queue it
  /// until the next consistency point (IR discipline). NC/PER override.
  virtual void on_query(ItemId item);

  /// Sleep-model edge. Engine wires SleepModel::on_transition here. Overrides
  /// must call the base implementation.
  virtual void on_sleep_transition(bool awake);

  /// Churn edge from the fault layer (src/faults). Disconnecting abandons
  /// pending work like sleep does; rejoining starts the recovery clock. The
  /// cache disposition follows FaultConfig::rejoin — `cold` restarts from an
  /// empty, unsynchronised cache; `suspect` keeps entries and lets the next
  /// report decide (covered window → invalidate-and-certify; gap too long →
  /// Barbara–Imielinski full-cache drop via handle_full's window check).
  void on_churn(bool connected);

  /// Optional fault layer: enables backoff on re-requests and receives the
  /// recovery telemetry. The engine sets this before the simulation starts.
  void set_fault_injector(FaultInjector* f) { faults_ = f; }

  ClientId id() const { return id_; }
  const LruCache& cache() const { return cache_; }
  SimTime consistency_point() const { return tc_; }
  std::size_t pending_queries() const { return pending_.size(); }

  /// Whether this scheme promises zero stale answers. Every IR-family scheme
  /// does; CBL is best-effort (lost notices open staleness windows) and opts
  /// out. Under WDC checks, a stale answer from a guaranteeing scheme trips a
  /// WDC_CHECK at answer time instead of merely counting in the stats.
  virtual bool guarantees_consistency() const { return true; }

  /// True when the receiver is powered: awake, and — under selective tuning —
  /// inside a tuning window or fetching an item.
  bool radio_on() const;
  /// Cumulative powered-radio time up to `now` (energy accounting).
  double radio_on_time(SimTime now) const;

 protected:
  // --- per-protocol report handlers ---
  /// Full-report semantics. Default = TS family: drop the cache when the report's
  /// window does not cover this client's consistency point; otherwise invalidate
  /// listed items whose copies predate the listed update time.
  virtual void handle_full(const FullReport& report);
  virtual void handle_mini(const MiniReport& report);
  virtual void handle_sig(const SigReport& report);
  virtual void handle_digest(const PiggyDigest& digest);
  virtual void handle_bs(const BsReport& report);
  /// Unicast control messages (PER poll acks, CBL notices). Default: ignore.
  virtual void handle_control(const Message& msg);

  /// Called after an item broadcast is processed. `fetched` is true when this
  /// client had requested the item (its awaiting queries were just answered).
  /// CBL uses it to record leases. Default: no-op.
  virtual void on_item_received(const Message& msg, const ItemPayload& payload,
                                bool fetched);

  /// Items fetched from broadcasts enter the cache when true (NC: false).
  virtual bool should_cache() const { return true; }

  /// Extra time (beyond the nominal grid instant) a tuned radio must allow for
  /// the report to appear — LAIR/HYB clients return the deferral window.
  virtual double report_slack() const { return 0.0; }

  // --- building blocks for the handlers ---
  /// Drop everything and adopt `stamp` as the new consistency point.
  void drop_cache_and_resync(SimTime stamp);
  /// Invalidate `id` if the cached copy is older than `updated_at`.
  void invalidate_if_older(ItemId id, SimTime updated_at);
  /// Invalidate `id` unconditionally.
  void invalidate(ItemId id);
  /// Certify all remaining entries at `stamp`, advance tc_, answer what can be
  /// answered. Call exactly once at the end of a successfully applied report.
  void finish_report(SimTime stamp);
  /// UIR/HYB mini application (shared): requires continuity with the anchor.
  void apply_mini(const MiniReport& report);
  /// PIG/HYB digest application (shared): always safe to invalidate; a complete
  /// digest whose horizon covers tc_ also advances the consistency point.
  void apply_digest(const PiggyDigest& digest);

  /// Queue a query record; `awaiting` marks it as already fetching.
  void enqueue_pending(ItemId item, SimTime qtime, bool awaiting);
  /// Turn a pending query into an uplink fetch (idempotent per item).
  void decide_miss(ItemId item);
  /// Start waiting for an item the server will push unprompted (PER's
  /// invalid-poll path): arms the re-request timeout without an initial request.
  void await_item(ItemId item);
  /// Record a hit answered NOW for a query issued at `qtime`, certified at
  /// `consistency_time` with `version` (PER's immediate-answer path).
  void record_hit_answer(SimTime qtime, ItemId item, Version version,
                         SimTime consistency_time, bool via_digest = false);
  /// True if an uplink fetch for `item` is in flight.
  bool awaiting_item(ItemId item) const {
    for (const auto& rt : request_timers_)
      if (rt.item == item) return true;
    return false;
  }

  const Database& oracle() const { return oracle_; }
  UplinkChannel& uplink() { return uplink_; }
  ServerProtocol& server() { return server_; }

  LruCache cache_;
  SimTime tc_ = 0.0;  ///< consistency point (0 = never synchronised)
  Rng rng_;
  StatsSink& sink_;
  ProtoConfig cfg_;
  Simulator& sim_;

 private:
  void on_reception(const Reception& rx);
  /// Route a decoded report payload to the handle_* overrides.
  void dispatch_report(const Message& msg);
  /// Byzantine mode: re-encode the report through the wire codec, damage it
  /// deterministically, and let decode_report judge the result end-to-end —
  /// rejection degrades to an erasure, acceptance delivers what decoded.
  void byzantine_reception(const Reception& rx);
  void handle_item(const Message& msg, double airtime_s);
  void handle_data(const Message& msg);
  /// Answer pending queries decidable at the current consistency point.
  void answer_pending(bool via_digest = false);
  void send_request(ItemId item);
  void arm_request_timer(ItemId item);
  /// Uplink delivery callback: stamps the request's delivered_at (the t2 of
  /// the latency decomposition) just before the server handles it.
  void note_uplink_delivered(ItemId item);
  void complete_awaiting(ItemId item, Version version, SimTime content_time,
                         double airtime_s);

  // --- selective tuning ---
  void schedule_tune_open();
  void tune_open();
  void tune_close();
  void note_radio_state();
  bool radio_needed() const;

  struct PendingQuery {
    ItemId item;
    SimTime qtime;
    /// When the query's fate was decided (consistency point / immediate-fetch
    /// instant). Feeds the trace latency decomposition; equals qtime until a
    /// decision is made.
    SimTime decided_at;
    bool awaiting = false;  ///< miss decided; waiting for the item broadcast
  };

  /// Abandon pending queries and their re-request timers (sleep, churn).
  void abandon_pending();
  /// A consistency point was just (re-)established: close an open recovery
  /// window and report its telemetry to the fault layer.
  void note_consistency_reached();

  /// One in-flight uplink fetch: its re-request timer and, for the trace
  /// decomposition, when the last request for it reached the server.
  struct RequestState {
    ItemId item;
    EventId timer;
    SimTime delivered_at = -1.0;  ///< < 0: still in flight
    unsigned attempts = 0;        ///< re-requests so far (fault-layer backoff)
  };

  BroadcastMac& mac_;
  UplinkChannel& uplink_;
  ServerProtocol& server_;
  const Database& oracle_;
  std::function<bool()> is_awake_;
  ClientId id_ = kInvalidClient;
  std::vector<PendingQuery> pending_;
  /// In-flight uplink fetches and their re-request timers. A client awaits a
  /// handful of items at most, so a flat scan beats hashing — and report
  /// application probes this on the hot path.
  std::vector<RequestState> request_timers_;

  FaultInjector* faults_ = nullptr;
  bool recovering_ = false;    ///< rejoined, consistency not yet re-established
  SimTime rejoin_at_ = 0.0;
  std::uint64_t exposed_ = 0;  ///< suspect entries shed during this recovery

  bool tuned_on_ = true;       ///< selective tuning: window currently open
  std::uint64_t grid_tick_ = 0;
  EventId tune_timer_{};
  TimeWeighted radio_tw_{0.0, 1.0};
};

}  // namespace wdc

#endif  // WDC_PROTO_CLIENT_BASE_HPP
