#include "proto/client_base.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "faults/fault_injector.hpp"
#include "proto/report_codec.hpp"
#include "util/check.hpp"

namespace wdc {

namespace {
/// Tolerance for content-stamp continuity comparisons (report stamps are exact
/// doubles propagated through arithmetic; keep a safety epsilon).
constexpr SimTime kEps = 1e-9;
}  // namespace

ClientProtocol::ClientProtocol(Simulator& sim, BroadcastMac& mac,
                               UplinkChannel& uplink, ServerProtocol& server,
                               const Database& oracle, ProtoConfig cfg,
                               SnrProcess* link, std::function<bool()> is_awake,
                               StatsSink& sink, Rng rng)
    : cache_(cfg.cache_capacity),
      rng_(rng),
      sink_(sink),
      cfg_(std::move(cfg)),
      sim_(sim),
      mac_(mac),
      uplink_(uplink),
      server_(server),
      oracle_(oracle),
      is_awake_(std::move(is_awake)) {
  ClientPort port;
  port.link = link;
  port.is_listening = [this] { return radio_needed(); };
  port.on_reception = [this](const Reception& rx) { on_reception(rx); };
  id_ = mac_.register_client(std::move(port));
  // Under selective tuning the radio starts ON and stays on until the first
  // report synchronises us; finish_report() then begins the doze cycle.
  tuned_on_ = true;
}

void ClientProtocol::on_query(ItemId item) {
  sink_.record_query(sim_.now());
  auto& tr = sim_.trace();
  if (tr.enabled()) tr.emit(TraceEventKind::kQuerySubmit, sim_.now(), id_, item);
  // If a request for this item is already in flight, ride on it.
  enqueue_pending(item, sim_.now(), awaiting_item(item));
}

void ClientProtocol::enqueue_pending(ItemId item, SimTime qtime, bool awaiting) {
  // decided_at starts at the enqueue instant: for queries decided later it is
  // overwritten in answer_pending(); for queries enqueued already-awaiting
  // (ride-along fetches, PER's invalid-poll path) the decision IS now.
  pending_.push_back(PendingQuery{item, qtime, sim_.now(), awaiting});
  auto& tr = sim_.trace();
  if (tr.enabled() && !awaiting)
    tr.emit(TraceEventKind::kIrWaitBegin, sim_.now(), id_, item);
}

void ClientProtocol::on_sleep_transition(bool awake) {
  note_radio_state();
  if (awake) return;  // wake-up: the next report re-synchronises us
  abandon_pending();
}

void ClientProtocol::abandon_pending() {
  auto& tr = sim_.trace();
  for (const auto& q : pending_) {
    sink_.record_dropped(q.qtime);
    if (tr.enabled())
      tr.emit(TraceEventKind::kQueryDrop, sim_.now(), id_, q.item);
  }
  pending_.clear();
  for (auto& rt : request_timers_) sim_.cancel(rt.timer);
  request_timers_.clear();
}

void ClientProtocol::on_churn(bool connected) {
  note_radio_state();
  if (!connected) {
    // Radio gone: like sleep, pending work cannot complete.
    abandon_pending();
    recovering_ = false;
    return;
  }
  // Rejoin: recovery runs until the next consistency point certifies us.
  recovering_ = true;
  rejoin_at_ = sim_.now();
  exposed_ = 0;
  if (faults_ != nullptr && faults_->rejoin_cold() && !cache_.empty()) {
    // Cold rejoin: everything held through the outage is suspect — shed it and
    // restart unsynchronised (tc_ = 0 forces the full-resync path).
    exposed_ += cache_.size();
    sink_.record_cache_drop();
    cache_.clear();
    tc_ = 0.0;
  }
}

void ClientProtocol::note_consistency_reached() {
  if (!recovering_) return;
  recovering_ = false;
  const double recovery_s = sim_.now() - rejoin_at_;
  if (faults_ != nullptr) faults_->record_recovery(id_, recovery_s, exposed_);
  auto& tr = sim_.trace();
  if (tr.enabled())
    tr.emit(TraceEventKind::kRecovery, sim_.now(), id_, kInvalidItem, recovery_s,
            static_cast<double>(exposed_));
  exposed_ = 0;
}

// ------------------------------------------------------------ radio / tuning --

bool ClientProtocol::radio_needed() const {
  if (!is_awake_()) return false;
  if (!cfg_.selective_tuning) return true;
  return tuned_on_ || !request_timers_.empty();
}

bool ClientProtocol::radio_on() const { return radio_needed(); }

double ClientProtocol::radio_on_time(SimTime now) const {
  // TimeWeighted tracks the 0/1 power state; integral = average × span.
  return radio_tw_.average(now) * now;
}

void ClientProtocol::note_radio_state() {
  radio_tw_.update(sim_.now(), radio_needed() ? 1.0 : 0.0);
}

void ClientProtocol::schedule_tune_open() {
  if (!cfg_.selective_tuning) return;
  const double L = cfg_.ir_interval_s;
  // Next grid instant strictly in the future of now + guard.
  while (L * static_cast<double>(grid_tick_ + 1) - cfg_.tune_guard_s <= sim_.now())
    ++grid_tick_;
  ++grid_tick_;
  const SimTime at = L * static_cast<double>(grid_tick_) - cfg_.tune_guard_s;
  if (tune_timer_.valid()) sim_.cancel(tune_timer_);
  tune_timer_ = sim_.schedule_at(at, [this] { tune_open(); },
                                 EventPriority::kProtocol);
}

void ClientProtocol::tune_open() {
  tuned_on_ = true;
  note_radio_state();
  // Safety close: if the expected report never decodes, give up and retry at
  // the next grid point (accounting the wasted listening).
  const SimTime deadline = cfg_.ir_interval_s * static_cast<double>(grid_tick_) +
                           report_slack() + cfg_.tune_linger_s;
  tune_timer_ = sim_.schedule_at(std::max(deadline, sim_.now()),
                                 [this] { tune_close(); },
                                 EventPriority::kProtocol);
}

void ClientProtocol::tune_close() {
  tuned_on_ = false;
  note_radio_state();
  schedule_tune_open();
}

// ---------------------------------------------------------------- reception --

void ClientProtocol::on_reception(const Reception& rx) {
  sink_.add_listen_airtime(rx.airtime_s);
  const bool is_report = rx.msg.kind == MsgKind::kInvalidationReport ||
                         rx.msg.kind == MsgKind::kMiniReport;
  if (!rx.decoded) {
    if (is_report) sink_.record_report_missed();
    return;
  }
  if (is_report && faults_ != nullptr && faults_->enabled() &&
      faults_->corrupt_downlink(id_, rx.msg.kind, sim_.now())) {
    byzantine_reception(rx);
    return;
  }
  switch (rx.msg.kind) {
    case MsgKind::kInvalidationReport:
    case MsgKind::kMiniReport:
      dispatch_report(rx.msg);
      break;
    case MsgKind::kControl:
      if (rx.msg.dest == id_) handle_control(rx.msg);
      break;
    case MsgKind::kItemData:
      handle_item(rx.msg, rx.airtime_s);
      break;
    case MsgKind::kDownlinkData:
      handle_data(rx.msg);
      break;
  }
}

void ClientProtocol::dispatch_report(const Message& msg) {
  if (msg.kind == MsgKind::kInvalidationReport) {
    if (auto full = std::dynamic_pointer_cast<const FullReport>(msg.payload)) {
      sink_.record_report_heard();
      handle_full(*full);
    } else if (auto sig =
                   std::dynamic_pointer_cast<const SigReport>(msg.payload)) {
      sink_.record_report_heard();
      handle_sig(*sig);
    } else if (auto bs =
                   std::dynamic_pointer_cast<const BsReport>(msg.payload)) {
      sink_.record_report_heard();
      handle_bs(*bs);
    }
  } else if (msg.kind == MsgKind::kMiniReport) {
    if (auto mini = std::dynamic_pointer_cast<const MiniReport>(msg.payload)) {
      sink_.record_report_heard();
      handle_mini(*mini);
    }
  }
}

void ClientProtocol::byzantine_reception(const Reception& rx) {
  // Re-encode the payload through the wire codec so the damage hits real
  // frame bytes, not in-process object state.
  std::vector<std::uint8_t> bytes;
  if (auto full = std::dynamic_pointer_cast<const FullReport>(rx.msg.payload))
    bytes = encode_report(*full);
  else if (auto mini =
               std::dynamic_pointer_cast<const MiniReport>(rx.msg.payload))
    bytes = encode_report(*mini);
  else if (auto sig =
               std::dynamic_pointer_cast<const SigReport>(rx.msg.payload))
    bytes = encode_report(*sig);
  else if (auto bs = std::dynamic_pointer_cast<const BsReport>(rx.msg.payload))
    bytes = encode_report(*bs);
  bool accepted = false;
  DecodedReport repaired;
  if (!bytes.empty()) {
    // Flip three bits at positions hashed purely from (time, client, kind):
    // no RNG is consumed, so a replayed schedule damages the same frame the
    // same way, bit-identically.
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ull;
      }
    };
    mix(std::bit_cast<std::uint64_t>(sim_.now()));
    mix(static_cast<std::uint64_t>(id_));
    mix(static_cast<std::uint64_t>(rx.msg.kind));
    const std::size_t nbits = bytes.size() * 8;
    for (int flip = 0; flip < 3; ++flip) {
      const std::size_t pos = static_cast<std::size_t>(h % nbits);
      bytes[pos / 8] ^= static_cast<std::uint8_t>(1u << (pos % 8));
      h = h * 0x100000001b3ull + 0x9e3779b97f4a7c15ull;
    }
    // End-to-end judgment: the codec's own validation (structure + checksum)
    // decides whether the corruption is caught.
    accepted = decode_report(bytes.data(), bytes.size(), &repaired);
  }
  if (faults_ != nullptr) faults_->record_corrupt(accepted);
  auto& tr = sim_.trace();
  if (tr.enabled())
    tr.emit(TraceEventKind::kFaultCorrupt, sim_.now(), id_, rx.msg.item,
            static_cast<double>(rx.msg.kind), accepted ? 1.0 : 0.0);
  if (!accepted) {
    // Caught ⇒ the reception degrades to an erasure, indistinguishable from a
    // decode failure at the PHY.
    sink_.record_report_missed();
    return;
  }
  // The damaged frame still decoded (the corrupt_accepted canary counts it):
  // deliver whatever survived validation, as a real system would.
  Message repaired_msg = rx.msg;
  repaired_msg.payload = repaired.payload;
  dispatch_report(repaired_msg);
}

void ClientProtocol::handle_item(const Message& msg, double airtime_s) {
  const auto payload = std::dynamic_pointer_cast<const ItemPayload>(msg.payload);
  if (!payload || msg.item == kInvalidItem) return;

  const bool awaiting = awaiting_item(msg.item);
  const bool resident = cache_.peek(msg.item) != nullptr;
  if ((awaiting || resident) && should_cache()) {
    CacheEntry entry;
    entry.id = msg.item;
    entry.version = payload->version;
    entry.version_time = payload->content_time;
    entry.validated_at = payload->content_time;
    cache_.put(entry);
  }
  if (awaiting) {
    auto& tr = sim_.trace();
    if (tr.enabled())
      tr.emit(TraceEventKind::kBroadcastReceive, sim_.now(), id_, msg.item,
              airtime_s);
    complete_awaiting(msg.item, payload->version, payload->content_time,
                      airtime_s);
  }
  on_item_received(msg, *payload, awaiting);
  if (payload->digest) handle_digest(*payload->digest);
}

void ClientProtocol::handle_data(const Message& msg) {
  const auto payload = std::dynamic_pointer_cast<const DataPayload>(msg.payload);
  if (payload && payload->digest) handle_digest(*payload->digest);
}

// -------------------------------------------------------- report application --

void ClientProtocol::handle_full(const FullReport& report) {
  if (tc_ + kEps < report.window_start) {
    // Disconnected past the report window: nothing in the cache can be certified.
    drop_cache_and_resync(report.stamp);
    return;
  }
  for (const auto& [id, updated_at] : report.updates)
    invalidate_if_older(id, updated_at);
  finish_report(report.stamp);
}

void ClientProtocol::handle_mini(const MiniReport&) {}     // ignored by default
void ClientProtocol::handle_sig(const SigReport&) {}       // ignored by default
void ClientProtocol::handle_digest(const PiggyDigest&) {}  // ignored by default
void ClientProtocol::handle_bs(const BsReport&) {}         // ignored by default
void ClientProtocol::handle_control(const Message&) {}     // ignored by default
void ClientProtocol::on_item_received(const Message&, const ItemPayload&, bool) {}

void ClientProtocol::apply_mini(const MiniReport& report) {
  // Usable only with continuity: we must already be consistent as of the anchor
  // (the full report this mini extends) or later.
  if (tc_ + kEps < report.anchor) return;
  for (const ItemId id : report.updated) invalidate(id);
  finish_report(report.stamp);
}

void ClientProtocol::apply_digest(const PiggyDigest& digest) {
  // Invalidation from a digest is always safe (listed ids definitely changed).
  for (const ItemId id : digest.updated) invalidate(id);
  // Revalidation requires a complete digest whose horizon covers our consistency
  // point; then everything still resident is certified as of digest.stamp.
  if (digest.complete && tc_ > 0.0 && tc_ + kEps >= digest.horizon_start) {
    sink_.record_digest_applied();
    cache_.revalidate_all(digest.stamp);
    if (digest.stamp > tc_) tc_ = digest.stamp;
    answer_pending(/*via_digest=*/true);
    note_consistency_reached();
  }
}

void ClientProtocol::drop_cache_and_resync(SimTime stamp) {
  if (recovering_) exposed_ += cache_.size();
  if (!cache_.empty()) sink_.record_cache_drop();
  cache_.clear();
  finish_report(stamp);
}

void ClientProtocol::invalidate_if_older(ItemId id, SimTime updated_at) {
  const CacheEntry* entry = cache_.peek(id);
  if (entry != nullptr && entry->version_time + kEps < updated_at) invalidate(id);
}

void ClientProtocol::invalidate(ItemId id) {
  if (cache_.erase(id)) {
    cache_.note_invalidation();
    if (recovering_) ++exposed_;
  }
}

void ClientProtocol::finish_report(SimTime stamp) {
  cache_.revalidate_all(stamp);
  if (stamp > tc_) tc_ = stamp;
  answer_pending();
  note_consistency_reached();
  // Selective tuning: a consistency point ends the current listening window.
  if (cfg_.selective_tuning && tuned_on_) {
    if (tune_timer_.valid()) sim_.cancel(tune_timer_);
    tuned_on_ = false;
    note_radio_state();
    schedule_tune_open();
  }
}

// ------------------------------------------------------------------ answers --

void ClientProtocol::answer_pending(bool via_digest) {
  // Decide every pending, non-awaiting query issued at or before the consistency
  // point. Misses turn into awaiting queries (uplink request in flight).
  auto& tr = sim_.trace();
  for (auto& q : pending_) {
    if (q.awaiting || q.qtime > tc_ + kEps) continue;
    if (tr.enabled())
      tr.emit(TraceEventKind::kIrWaitEnd, sim_.now(), id_, q.item);
    CacheEntry* entry = cache_.get(q.item);
    if (entry != nullptr) {
      record_hit_answer(q.qtime, q.item, entry->version, tc_, via_digest);
      q.item = kInvalidItem;  // mark for removal
    } else {
      q.awaiting = true;
      q.decided_at = sim_.now();
      if (tr.enabled())
        tr.emit(TraceEventKind::kCacheMiss, sim_.now(), id_, q.item);
      decide_miss(q.item);
    }
  }
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [](const PendingQuery& q) {
                                  return q.item == kInvalidItem;
                                }),
                 pending_.end());
}

void ClientProtocol::record_hit_answer(SimTime qtime, ItemId item, Version version,
                                       SimTime consistency_time, bool via_digest) {
  const double latency = sim_.now() - qtime;
  WDC_ASSERT(latency >= 0.0, "client ", id_, " answers item ", item,
             " before its query: qtime=", qtime, " now=", sim_.now());
  WDC_ASSERT(consistency_time <= sim_.now() + kEps, "client ", id_,
             " certifies item ", item, " at a future consistency point ",
             consistency_time, " (now=", sim_.now(), ")");
  // Staleness oracle: the answer claims to be the latest version as of the
  // consistency point that certified it.
  const bool stale = oracle_.version_at(item, consistency_time) != version;
  WDC_CHECK(!stale || !guarantees_consistency(), "client ", id_,
            " served a STALE hit for item ", item, ": held version ", version,
            " != oracle version at consistency point ", consistency_time);
  sink_.record_answer(qtime, latency, /*hit=*/true, stale);
  if (via_digest) sink_.record_digest_answer();
  auto& tr = sim_.trace();
  if (tr.enabled()) {
    tr.emit(stale ? TraceEventKind::kCacheStale : TraceEventKind::kCacheHit,
            sim_.now(), id_, item);
    // A hit spends its whole life waiting for the certifying report: the
    // entire latency is IR wait.
    const LatencyBreakdown bd{latency, 0.0, 0.0, 0.0};
    uint8_t flags = kTraceFlagHit;
    if (stale) flags |= kTraceFlagStale;
    if (sink_.counted(qtime)) flags |= kTraceFlagCounted;
    if (via_digest) flags |= kTraceFlagViaDigest;
    tr.answer(sim_.now(), id_, item, bd, flags);
  }
}

void ClientProtocol::decide_miss(ItemId item) {
  if (awaiting_item(item)) return;  // request already in flight
  send_request(item);
  arm_request_timer(item);
  note_radio_state();  // fetching keeps a tuned radio on
}

void ClientProtocol::await_item(ItemId item) {
  if (awaiting_item(item)) return;
  arm_request_timer(item);
  note_radio_state();
}

void ClientProtocol::send_request(ItemId item) {
  uplink_.send(id_, cfg_.request_bits, [this, item] {
    note_uplink_delivered(item);
    server_.on_request(id_, item);
  });
}

void ClientProtocol::note_uplink_delivered(ItemId item) {
  for (auto& rt : request_timers_) {
    if (rt.item == item) {
      rt.delivered_at = sim_.now();
      return;
    }
  }
}

void ClientProtocol::arm_request_timer(ItemId item) {
  // Fault-layer backoff: each re-request stretches the timeout geometrically
  // (capped). With faults disabled the plain timeout applies, bit-identically.
  unsigned attempt = 0;
  for (const auto& rt : request_timers_)
    if (rt.item == item) {
      attempt = rt.attempts;
      break;
    }
  const double timeout =
      faults_ != nullptr && faults_->enabled()
          ? faults_->retry_timeout(cfg_.request_timeout_s, attempt)
          : cfg_.request_timeout_s;
  const EventId timer = sim_.schedule_in(
      timeout,
      [this, item] {
        // The broadcast never arrived (lost or dropped): ask again.
        sink_.record_request_retry();
        auto& tr = sim_.trace();
        if (tr.enabled())
          tr.emit(TraceEventKind::kUplinkRetry, sim_.now(), id_, item);
        for (auto& rt : request_timers_)
          if (rt.item == item) {
            ++rt.attempts;
            break;
          }
        send_request(item);
        arm_request_timer(item);
      },
      EventPriority::kProtocol);
  for (auto& rt : request_timers_) {
    if (rt.item == item) {
      rt.timer = timer;
      return;
    }
  }
  request_timers_.push_back(RequestState{item, timer, -1.0});
}

void ClientProtocol::complete_awaiting(ItemId item, Version version,
                                       SimTime content_time, double airtime_s) {
  SimTime delivered_at = -1.0;
  for (auto it = request_timers_.begin(); it != request_timers_.end(); ++it) {
    if (it->item != item) continue;
    delivered_at = it->delivered_at;
    sim_.cancel(it->timer);
    request_timers_.erase(it);
    note_radio_state();
    break;
  }
  auto& tr = sim_.trace();
  for (auto& q : pending_) {
    if (!q.awaiting || q.item != item) continue;
    const double latency = sim_.now() - q.qtime;
    WDC_ASSERT(latency >= 0.0, "client ", id_, " completes a fetch of item ",
               item, " before its query: qtime=", q.qtime, " now=", sim_.now());
    const bool stale = oracle_.version_at(item, content_time) != version;
    WDC_CHECK(!stale || !guarantees_consistency(), "client ", id_,
              " served a STALE fetched copy of item ", item, ": version ",
              version, " != oracle version at content time ", content_time);
    sink_.record_answer(q.qtime, latency, /*hit=*/false, stale);
    if (tr.enabled()) {
      // Clamped monotone timestamp chain: t0 <= t1 <= t2 <= t3 <= now, so the
      // four components telescope exactly to the measured latency.
      const SimTime now = sim_.now();
      const SimTime t0 = q.qtime;
      const SimTime t1 = std::clamp(q.decided_at, t0, now);
      const SimTime t2 =
          std::clamp(delivered_at < 0.0 ? t1 : delivered_at, t1, now);
      const SimTime t3 = std::clamp(now - airtime_s, t2, now);
      const LatencyBreakdown bd{t1 - t0, t2 - t1, t3 - t2, now - t3};
      uint8_t flags = 0;
      if (stale) flags |= kTraceFlagStale;
      if (sink_.counted(q.qtime)) flags |= kTraceFlagCounted;
      tr.answer(now, id_, item, bd, flags);
    }
    q.item = kInvalidItem;
  }
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [](const PendingQuery& q) {
                                  return q.item == kInvalidItem;
                                }),
                 pending_.end());
}

}  // namespace wdc
