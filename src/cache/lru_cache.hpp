#ifndef WDC_CACHE_LRU_CACHE_HPP
#define WDC_CACHE_LRU_CACHE_HPP

/// @file lru_cache.hpp
/// The client-side item cache: LRU replacement, capacity in items.
///
/// Each entry remembers when its copy was fetched/validated so invalidation
/// protocols can reason about consistency:
///  * `version_time` — server update time of the copy the client holds (the copy is
///    "as of" this time);
///  * `validated_at` — last consistency point at which the entry was certified
///    valid (report application time).
///
/// Hot-path layout: the recency list is an intrusive doubly-linked list over a
/// recycled slab (no node allocation after warm-up), and the id index is a
/// direct-mapped vector (item ids are dense — no hashing). Invalidation
/// protocols probe/erase every reported id against every client cache, so
/// lookup cost dominates; a vector probe is one load vs a hash-map find.

#include <cstdint>
#include <optional>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace wdc {

struct CacheEntry {
  ItemId id = kInvalidItem;
  Version version = 0;        ///< server version counter of the held copy
  SimTime version_time = 0.0; ///< server-side time the copy corresponds to
  SimTime validated_at = 0.0; ///< latest consistency point certifying validity
};

class LruCache {
 public:
  explicit LruCache(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Lookup without touching recency. nullptr if absent.
  const CacheEntry* peek(ItemId id) const;

  /// Lookup and mark most-recently-used. nullptr if absent.
  CacheEntry* get(ItemId id);

  /// Insert or overwrite; marks MRU; evicts LRU if over capacity.
  /// Returns the evicted item id, if any.
  std::optional<ItemId> put(const CacheEntry& entry);

  /// Update the validation stamp of every resident entry (after a report certifies
  /// the whole cache).
  void revalidate_all(SimTime consistency_point);

  /// Remove one entry. Returns true if it was present.
  bool erase(ItemId id);

  /// Drop everything (protocol fallback after losing report continuity).
  void clear();

  /// Ids of all resident entries (MRU-to-LRU order).
  std::vector<ItemId> resident() const;

  // Lifetime counters (monotonic).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t invalidations() const { return invalidations_; }
  std::uint64_t clears() const { return clears_; }

  /// Count an invalidation (callers use erase(); this separates protocol-initiated
  /// invalidation from capacity eviction in the stats).
  void note_invalidation() { ++invalidations_; }

  /// Structural audit: size bound, index↔list agreement (which rules out
  /// duplicate ids), list linkage, slab free-chain conservation. Trips a
  /// WDC_CHECK on corruption; no-op when checks are compiled out.
  void audit() const;

 private:
  friend struct LruCacheTestPeer;  // white-box corruption hook for death tests

  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Slab node of the intrusive recency list (front = MRU). Freed nodes are
  /// chained through `next`.
  struct Node {
    CacheEntry entry;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  /// Full audits are amortised: one every kAuditPeriod mutations.
  static constexpr std::uint64_t kAuditPeriod = 64;

  std::uint32_t slot_of(ItemId id) const {
    return id < index_.size() ? index_[id] : kNil;
  }
  std::uint32_t acquire_node();
  void release_node(std::uint32_t n);
  void unlink(std::uint32_t n);
  void link_front(std::uint32_t n);
  void maybe_audit() const;

  std::size_t capacity_;
  std::vector<Node> nodes_;           ///< recycled slab; never shrinks
  std::vector<std::uint32_t> index_;  ///< item id → slab slot (kNil = absent)
  std::uint32_t head_ = kNil;         ///< MRU end
  std::uint32_t tail_ = kNil;         ///< LRU end
  std::uint32_t free_head_ = kNil;
  std::size_t size_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t clears_ = 0;
  mutable std::uint64_t mutations_ = 0;
};

}  // namespace wdc

#endif  // WDC_CACHE_LRU_CACHE_HPP
