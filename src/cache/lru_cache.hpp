#ifndef WDC_CACHE_LRU_CACHE_HPP
#define WDC_CACHE_LRU_CACHE_HPP

/// @file lru_cache.hpp
/// The client-side item cache: LRU replacement, capacity in items.
///
/// Each entry remembers when its copy was fetched/validated so invalidation
/// protocols can reason about consistency:
///  * `version_time` — server update time of the copy the client holds (the copy is
///    "as of" this time);
///  * `validated_at` — last consistency point at which the entry was certified
///    valid (report application time).
/// O(1) get/put/invalidate via hash map + intrusive list (std::list + iterators).

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace wdc {

struct CacheEntry {
  ItemId id = kInvalidItem;
  Version version = 0;        ///< server version counter of the held copy
  SimTime version_time = 0.0; ///< server-side time the copy corresponds to
  SimTime validated_at = 0.0; ///< latest consistency point certifying validity
};

class LruCache {
 public:
  explicit LruCache(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Lookup without touching recency. nullptr if absent.
  const CacheEntry* peek(ItemId id) const;

  /// Lookup and mark most-recently-used. nullptr if absent.
  CacheEntry* get(ItemId id);

  /// Insert or overwrite; marks MRU; evicts LRU if over capacity.
  /// Returns the evicted item id, if any.
  std::optional<ItemId> put(const CacheEntry& entry);

  /// Update the validation stamp of every resident entry (after a report certifies
  /// the whole cache).
  void revalidate_all(SimTime consistency_point);

  /// Remove one entry. Returns true if it was present.
  bool erase(ItemId id);

  /// Drop everything (protocol fallback after losing report continuity).
  void clear();

  /// Ids of all resident entries (unspecified order).
  std::vector<ItemId> resident() const;

  // Lifetime counters (monotonic).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t invalidations() const { return invalidations_; }
  std::uint64_t clears() const { return clears_; }

  /// Count an invalidation (callers use erase(); this separates protocol-initiated
  /// invalidation from capacity eviction in the stats).
  void note_invalidation() { ++invalidations_; }

  /// Structural audit: size bound, map↔list agreement (which rules out duplicate
  /// ids), every index entry resolves to a node carrying its id. Trips a
  /// WDC_CHECK on corruption; no-op when checks are compiled out.
  void audit() const;

 private:
  using LruList = std::list<CacheEntry>;

  /// Full audits are amortised: one every kAuditPeriod mutations.
  static constexpr std::uint64_t kAuditPeriod = 64;

  void maybe_audit() const;

  std::size_t capacity_;
  LruList lru_;  ///< front = MRU
  std::unordered_map<ItemId, LruList::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t clears_ = 0;
  mutable std::uint64_t mutations_ = 0;
};

}  // namespace wdc

#endif  // WDC_CACHE_LRU_CACHE_HPP
