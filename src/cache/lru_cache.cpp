#include "cache/lru_cache.hpp"

#include <stdexcept>

namespace wdc {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("LruCache: capacity > 0");
  nodes_.reserve(capacity);
}

std::uint32_t LruCache::acquire_node() {
  if (free_head_ != kNil) {
    const std::uint32_t n = free_head_;
    free_head_ = nodes_[n].next;
    return n;
  }
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void LruCache::release_node(std::uint32_t n) {
  nodes_[n].entry = CacheEntry{};
  nodes_[n].prev = kNil;
  nodes_[n].next = free_head_;
  free_head_ = n;
}

void LruCache::unlink(std::uint32_t n) {
  Node& node = nodes_[n];
  if (node.prev != kNil) nodes_[node.prev].next = node.next;
  else head_ = node.next;
  if (node.next != kNil) nodes_[node.next].prev = node.prev;
  else tail_ = node.prev;
  node.prev = kNil;
  node.next = kNil;
}

void LruCache::link_front(std::uint32_t n) {
  Node& node = nodes_[n];
  node.prev = kNil;
  node.next = head_;
  if (head_ != kNil) nodes_[head_].prev = n;
  head_ = n;
  if (tail_ == kNil) tail_ = n;
}

const CacheEntry* LruCache::peek(ItemId id) const {
  const std::uint32_t n = slot_of(id);
  return n == kNil ? nullptr : &nodes_[n].entry;
}

CacheEntry* LruCache::get(ItemId id) {
  const std::uint32_t n = slot_of(id);
  if (n == kNil) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  if (n != head_) {
    unlink(n);
    link_front(n);
  }
  return &nodes_[n].entry;
}

std::optional<ItemId> LruCache::put(const CacheEntry& entry) {
  if (entry.id == kInvalidItem) throw std::invalid_argument("LruCache::put: bad id");
  if (const std::uint32_t n = slot_of(entry.id); n != kNil) {
    nodes_[n].entry = entry;
    if (n != head_) {
      unlink(n);
      link_front(n);
    }
    maybe_audit();
    return std::nullopt;
  }
  const std::uint32_t n = acquire_node();
  nodes_[n].entry = entry;
  link_front(n);
  if (entry.id >= index_.size()) index_.resize(entry.id + 1, kNil);
  index_[entry.id] = n;
  ++size_;
  if (size_ > capacity_) {
    const std::uint32_t victim_node = tail_;
    const ItemId victim = nodes_[victim_node].entry.id;
    WDC_ASSERT(victim != entry.id, "new entry ", entry.id,
               " became the LRU victim immediately");
    unlink(victim_node);
    index_[victim] = kNil;
    release_node(victim_node);
    --size_;
    ++evictions_;
    maybe_audit();
    return victim;
  }
  maybe_audit();
  return std::nullopt;
}

void LruCache::revalidate_all(SimTime consistency_point) {
  // `validated_at` is the *latest* certifying point: a report stamped behind an
  // entry's current certification (e.g. a digest delayed behind a full report
  // in the MAC queue) must not rewind it.
  for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next)
    if (consistency_point > nodes_[n].entry.validated_at)
      nodes_[n].entry.validated_at = consistency_point;
}

bool LruCache::erase(ItemId id) {
  const std::uint32_t n = slot_of(id);
  if (n == kNil) return false;
  unlink(n);
  index_[id] = kNil;
  release_node(n);
  --size_;
  maybe_audit();
  return true;
}

void LruCache::clear() {
  if (size_ != 0) ++clears_;
  while (head_ != kNil) {
    const std::uint32_t n = head_;
    index_[nodes_[n].entry.id] = kNil;
    unlink(n);
    release_node(n);
  }
  size_ = 0;
  maybe_audit();
}

std::vector<ItemId> LruCache::resident() const {
  std::vector<ItemId> out;
  out.reserve(size_);
  for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next)
    out.push_back(nodes_[n].entry.id);
  return out;
}

void LruCache::maybe_audit() const {
#if WDC_CHECKS_ENABLED
  if ((++mutations_ % kAuditPeriod) == 0) audit();
#endif
}

void LruCache::audit() const {
#if WDC_CHECKS_ENABLED
  WDC_CHECK(size_ <= capacity_, "cache holds ", size_,
            " entries over its capacity ", capacity_);
  // Walk the recency list: linkage must be consistent, every node's id must
  // index back to it (rules out duplicate ids), and the walk must visit
  // exactly size_ nodes.
  std::size_t walked = 0;
  std::uint32_t prev = kNil;
  for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next) {
    WDC_CHECK(n < nodes_.size(), "recency list references slab slot ", n,
              " outside the slab");
    WDC_CHECK(nodes_[n].prev == prev, "recency list back-link broken at slot ",
              n);
    const ItemId id = nodes_[n].entry.id;
    WDC_CHECK(id != kInvalidItem, "sentinel item id resident in the cache");
    WDC_CHECK(id < index_.size() && index_[id] == n, "index entry ", id,
              " does not resolve to the node carrying it (slot ", n, ")");
    WDC_CHECK(++walked <= size_, "recency list longer than size ", size_);
    prev = n;
  }
  WDC_CHECK(walked == size_, "recency list holds ", walked,
            " entries but size is ", size_);
  WDC_CHECK(tail_ == prev, "tail does not terminate the recency list");
  // Free-chain conservation: free + resident == slab size.
  std::size_t free_count = 0;
  for (std::uint32_t n = free_head_; n != kNil; n = nodes_[n].next) {
    WDC_CHECK(n < nodes_.size(), "free chain references slab slot ", n,
              " outside the slab");
    WDC_CHECK(++free_count <= nodes_.size(), "free chain cycle detected");
  }
  WDC_CHECK(free_count + size_ == nodes_.size(), "slab of ", nodes_.size(),
            " nodes but free=", free_count, " + resident=", size_);
  // Index entries must point at resident nodes carrying that id.
  for (std::size_t id = 0; id < index_.size(); ++id) {
    const std::uint32_t n = index_[id];
    if (n == kNil) continue;
    WDC_CHECK(n < nodes_.size(), "index entry ", id, " references slab slot ",
              n, " outside the slab");
    WDC_CHECK(nodes_[n].entry.id == id, "index entry ", id,
              " resolves to a node carrying id ", nodes_[n].entry.id);
  }
#endif
}

}  // namespace wdc
