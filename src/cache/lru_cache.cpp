#include "cache/lru_cache.hpp"

#include <stdexcept>

namespace wdc {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("LruCache: capacity > 0");
}

const CacheEntry* LruCache::peek(ItemId id) const {
  const auto it = map_.find(id);
  return it == map_.end() ? nullptr : &*it->second;
}

CacheEntry* LruCache::get(ItemId id) {
  const auto it = map_.find(id);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

std::optional<ItemId> LruCache::put(const CacheEntry& entry) {
  if (entry.id == kInvalidItem) throw std::invalid_argument("LruCache::put: bad id");
  if (const auto it = map_.find(entry.id); it != map_.end()) {
    *it->second = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    return std::nullopt;
  }
  lru_.push_front(entry);
  map_[entry.id] = lru_.begin();
  if (map_.size() > capacity_) {
    const ItemId victim = lru_.back().id;
    map_.erase(victim);
    lru_.pop_back();
    ++evictions_;
    return victim;
  }
  return std::nullopt;
}

void LruCache::revalidate_all(SimTime consistency_point) {
  for (auto& e : lru_) e.validated_at = consistency_point;
}

bool LruCache::erase(ItemId id) {
  const auto it = map_.find(id);
  if (it == map_.end()) return false;
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

void LruCache::clear() {
  if (!map_.empty()) ++clears_;
  lru_.clear();
  map_.clear();
}

std::vector<ItemId> LruCache::resident() const {
  std::vector<ItemId> out;
  out.reserve(map_.size());
  for (const auto& e : lru_) out.push_back(e.id);
  return out;
}

}  // namespace wdc
