#include "cache/lru_cache.hpp"

#include <stdexcept>

namespace wdc {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("LruCache: capacity > 0");
}

const CacheEntry* LruCache::peek(ItemId id) const {
  const auto it = map_.find(id);
  return it == map_.end() ? nullptr : &*it->second;
}

CacheEntry* LruCache::get(ItemId id) {
  const auto it = map_.find(id);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

std::optional<ItemId> LruCache::put(const CacheEntry& entry) {
  if (entry.id == kInvalidItem) throw std::invalid_argument("LruCache::put: bad id");
  if (const auto it = map_.find(entry.id); it != map_.end()) {
    *it->second = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    maybe_audit();
    return std::nullopt;
  }
  lru_.push_front(entry);
  map_[entry.id] = lru_.begin();
  if (map_.size() > capacity_) {
    const ItemId victim = lru_.back().id;
    WDC_ASSERT(victim != entry.id, "new entry ", entry.id,
               " became the LRU victim immediately");
    map_.erase(victim);
    lru_.pop_back();
    ++evictions_;
    maybe_audit();
    return victim;
  }
  maybe_audit();
  return std::nullopt;
}

void LruCache::revalidate_all(SimTime consistency_point) {
  // `validated_at` is the *latest* certifying point: a report stamped behind an
  // entry's current certification (e.g. a digest delayed behind a full report
  // in the MAC queue) must not rewind it.
  for (auto& e : lru_)
    if (consistency_point > e.validated_at) e.validated_at = consistency_point;
}

bool LruCache::erase(ItemId id) {
  const auto it = map_.find(id);
  if (it == map_.end()) return false;
  lru_.erase(it->second);
  map_.erase(it);
  maybe_audit();
  return true;
}

void LruCache::clear() {
  if (!map_.empty()) ++clears_;
  lru_.clear();
  map_.clear();
  maybe_audit();
}

std::vector<ItemId> LruCache::resident() const {
  std::vector<ItemId> out;
  out.reserve(map_.size());
  for (const auto& e : lru_) out.push_back(e.id);
  return out;
}

void LruCache::maybe_audit() const {
#if WDC_CHECKS_ENABLED
  if ((++mutations_ % kAuditPeriod) == 0) audit();
#endif
}

void LruCache::audit() const {
#if WDC_CHECKS_ENABLED
  WDC_CHECK(map_.size() <= capacity_, "cache holds ", map_.size(),
            " entries over its capacity ", capacity_);
  // Index and list must agree in size; combined with the per-entry id match
  // below this rules out duplicate ids in the recency list.
  WDC_CHECK(map_.size() == lru_.size(), "index size ", map_.size(),
            " != recency-list size ", lru_.size());
  for (const auto& [id, it] : map_) {
    WDC_CHECK(it->id == id, "index entry ", id,
              " resolves to a node carrying id ", it->id);
    WDC_CHECK(id != kInvalidItem, "sentinel item id resident in the cache");
  }
#endif
}

}  // namespace wdc
