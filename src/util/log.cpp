#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace wdc {

namespace {

LogLevel parse_level(const char* s) {
  if (!s) return LogLevel::kWarn;
  const std::string_view v(s);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& threshold_storage() {
  static std::atomic<LogLevel> level{parse_level(std::getenv("WDC_LOG"))};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

LogLevel log_threshold() { return threshold_storage().load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view msg) {
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[wdc %s] %.*s\n", level_tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace wdc
