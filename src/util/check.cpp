#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace wdc {
namespace detail {

namespace {
thread_local const double* g_check_clock = nullptr;
}  // namespace

void set_check_clock(const double* now) { g_check_clock = now; }
const double* check_clock() { return g_check_clock; }

void check_failed(const char* kind, const char* cond, const char* file,
                  int line, const char* func, const std::string& message) {
  std::fflush(stdout);
  std::fprintf(stderr, "\n*** WDC invariant violated: %s(%s)\n", kind, cond);
  std::fprintf(stderr, "    at %s:%d in %s\n", file, line, func);
  if (g_check_clock != nullptr)
    std::fprintf(stderr, "    sim-time: %.9f s\n", *g_check_clock);
  if (!message.empty()) std::fprintf(stderr, "    %s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace wdc
