#include "util/string_util.hpp"

#include <cstdarg>
#include <cstdio>

namespace wdc {

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace wdc
