#ifndef WDC_UTIL_TYPES_HPP
#define WDC_UTIL_TYPES_HPP

/// @file types.hpp
/// Fundamental identifier and time types shared by every wdc-sim module.

#include <cstdint>
#include <limits>

namespace wdc {

/// Simulation time in seconds. Continuous time, discrete events.
using SimTime = double;

/// Sentinel for "no time" / "never".
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();

/// Database item identifier (0-based dense index into the server database).
using ItemId = std::uint32_t;

/// Client (mobile terminal) identifier, 0-based dense.
using ClientId = std::uint32_t;

/// Monotonically increasing per-item version number. Version 0 is the initial value.
using Version = std::uint64_t;

/// Invalid-id sentinels.
inline constexpr ItemId kInvalidItem = std::numeric_limits<ItemId>::max();
inline constexpr ClientId kInvalidClient = std::numeric_limits<ClientId>::max();

/// Size of a protocol message in bits (reports are accounted at bit granularity so
/// that airtime under link adaptation can be computed exactly).
using Bits = std::uint64_t;

/// Bytes→bits helper, kept constexpr so message layouts can be computed at compile time.
constexpr Bits bits_from_bytes(std::uint64_t bytes) { return bytes * 8u; }

}  // namespace wdc

#endif  // WDC_UTIL_TYPES_HPP
