#include "util/variates.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wdc {

Exponential::Exponential(double rate) : rate_(rate) {
  if (!(rate > 0.0)) throw std::invalid_argument("Exponential: rate must be > 0");
}

double Exponential::sample(Rng& rng) const {
  // -log(1-U)/rate; 1-uniform() is in (0,1], avoiding log(0).
  return -std::log1p(-rng.uniform()) / rate_;
}

Normal::Normal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  if (!(stddev >= 0.0)) throw std::invalid_argument("Normal: stddev must be >= 0");
}

double Normal::sample(Rng& rng) {
  if (has_spare_) {
    has_spare_ = false;
    return mean_ + stddev_ * spare_;
  }
  double u, v, s;
  do {
    u = rng.uniform(-1.0, 1.0);
    v = rng.uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return mean_ + stddev_ * (u * mul);
}

Lognormal::Lognormal(double mu, double sigma) : normal_(mu, sigma) {}

double Lognormal::sample(Rng& rng) { return std::exp(normal_.sample(rng)); }

Pareto::Pareto(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  if (!(xm > 0.0)) throw std::invalid_argument("Pareto: xm must be > 0");
  if (!(alpha > 0.0)) throw std::invalid_argument("Pareto: alpha must be > 0");
}

double Pareto::sample(Rng& rng) const {
  // Inverse transform: xm * (1-U)^(-1/alpha).
  const double u = rng.uniform();
  return xm_ * std::pow(1.0 - u, -1.0 / alpha_);
}

double Pareto::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}

Zipf::Zipf(std::size_t n, double theta) : theta_(theta) {
  if (n == 0) throw std::invalid_argument("Zipf: n must be > 0");
  if (!(theta >= 0.0)) throw std::invalid_argument("Zipf: theta must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double Zipf::pmf(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

Discrete::Discrete(std::vector<double> weights) {
  if (weights.empty()) throw std::invalid_argument("Discrete: empty weights");
  double acc = 0.0;
  cdf_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) throw std::invalid_argument("Discrete: negative weight");
    acc += weights[i];
    cdf_[i] = acc;
  }
  if (!(acc > 0.0)) throw std::invalid_argument("Discrete: zero total weight");
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

std::size_t Discrete::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace wdc
