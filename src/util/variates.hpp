#ifndef WDC_UTIL_VARIATES_HPP
#define WDC_UTIL_VARIATES_HPP

/// @file variates.hpp
/// Random-variate generators used by the workload, channel and traffic models.
/// All are small value types drawing from an externally owned Rng so generators can
/// be mixed freely on one stream or isolated on private streams.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace wdc {

/// Exponential(rate) — inter-arrival times of Poisson processes.
class Exponential {
 public:
  /// @param rate events per second; must be > 0.
  explicit Exponential(double rate);
  double sample(Rng& rng) const;
  double rate() const { return rate_; }
  double mean() const { return 1.0 / rate_; }

 private:
  double rate_;
};

/// Standard normal via Marsaglia polar method (cached spare value).
class Normal {
 public:
  Normal(double mean, double stddev);
  double sample(Rng& rng);
  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

 private:
  double mean_;
  double stddev_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Lognormal: exp(Normal(mu, sigma)). Used for shadow fading (dB domain handled
/// by callers) and heavy-ish item sizes.
class Lognormal {
 public:
  Lognormal(double mu, double sigma);
  double sample(Rng& rng);

 private:
  Normal normal_;
};

/// Pareto (Lomax-style, xm scale, alpha shape) — heavy-tailed burst lengths.
class Pareto {
 public:
  /// @param xm    minimum value (scale), > 0
  /// @param alpha tail index, > 0 (alpha <= 1 has infinite mean)
  Pareto(double xm, double alpha);
  double sample(Rng& rng) const;
  /// Mean, valid for alpha > 1.
  double mean() const;

 private:
  double xm_;
  double alpha_;
};

/// Zipf distribution over {0, …, n−1} with exponent theta ≥ 0 (theta = 0 is uniform).
/// Item popularity in wireless-caching studies is canonically Zipf(0.5…1.0).
/// Sampling is O(log n) via inverse transform on the precomputed CDF.
class Zipf {
 public:
  Zipf(std::size_t n, double theta);
  std::size_t sample(Rng& rng) const;
  std::size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }
  /// P(X = k), k in [0, n).
  double pmf(std::size_t k) const;

 private:
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(X <= k)
};

/// Discrete distribution over {0,…,n−1} given arbitrary non-negative weights.
class Discrete {
 public:
  explicit Discrete(std::vector<double> weights);
  std::size_t sample(Rng& rng) const;
  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace wdc

#endif  // WDC_UTIL_VARIATES_HPP
