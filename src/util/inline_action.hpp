#ifndef WDC_UTIL_INLINE_ACTION_HPP
#define WDC_UTIL_INLINE_ACTION_HPP

/// @file inline_action.hpp
/// InlineFunction — a fixed-capacity, non-allocating, move-only callable.
///
/// The event kernel's replacement for std::function on the schedule/fire hot
/// path: the capture is constructed directly inside the object (no heap
/// allocation, ever) and dispatch is one indirect call through a per-type
/// static ops table. Oversized or potentially-throwing captures are rejected
/// at compile time rather than silently spilling to the heap — if a capture
/// outgrows the buffer, the static_assert points at the offending call site
/// and the capacity is raised deliberately.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace wdc {

template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                  "InlineFunction: callable has the wrong signature");
    static_assert(sizeof(Fn) <= Capacity,
                  "InlineFunction: capture too large for the inline buffer — "
                  "shrink the capture or raise the capacity deliberately");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "InlineFunction: over-aligned capture");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InlineFunction: capture must be nothrow-movable (records "
                  "relocate inside the kernel's slot pool)");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::ops;
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(static_cast<void*>(buf_),
                        std::forward<Args>(args)...);
  }

  /// Destroy the held callable (if any); leaves the object empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(static_cast<void*>(buf_));
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  struct OpsFor {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void steal(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(static_cast<void*>(buf_),
                     static_cast<void*>(other.buf_));
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace wdc

#endif  // WDC_UTIL_INLINE_ACTION_HPP
