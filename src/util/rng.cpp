#include "util/rng.hpp"

namespace wdc {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // xoshiro requires a nonzero state; SplitMix64 output of any seed is fine, but be
  // defensive against the astronomically unlikely all-zero expansion.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() { return Rng(next()); }

}  // namespace wdc
