#ifndef WDC_UTIL_LOG_HPP
#define WDC_UTIL_LOG_HPP

/// @file log.hpp
/// Minimal leveled logger. Simulation code logs rarely (the kernel is hot); logging
/// is mainly used by examples and by traced debugging runs (WDC_LOG=debug).

#include <sstream>
#include <string>
#include <string_view>

namespace wdc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Initialised from the WDC_LOG environment variable
/// ("debug" / "info" / "warn" / "error" / "off"); defaults to kWarn.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Emit one log line (with level prefix) to stderr if `level` passes the threshold.
void log_line(LogLevel level, std::string_view msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_threshold() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_threshold() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_threshold() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_threshold() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace wdc

#endif  // WDC_UTIL_LOG_HPP
