#ifndef WDC_UTIL_CONFIG_HPP
#define WDC_UTIL_CONFIG_HPP

/// @file config.hpp
/// Key=value configuration store shared by examples and benchmark harnesses.
///
/// Sources, later wins: programmatic defaults < config file (`# comment`, `key = value`
/// lines) < command-line overrides (`key=value` tokens). Typed getters validate and
/// record every key that was read, so unknown/misspelt keys can be reported.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace wdc {

class Config {
 public:
  Config() = default;

  /// Set (or overwrite) a value.
  void set(std::string key, std::string value);

  /// Parse `key = value` lines; '#' starts a comment. Throws std::runtime_error on
  /// unreadable file or malformed line.
  void load_file(const std::string& path);

  /// Consume argv-style `key=value` tokens; tokens without '=' are returned
  /// (positional arguments for the caller).
  std::vector<std::string> load_args(int argc, const char* const* argv);

  bool has(std::string_view key) const;

  /// Typed getters with defaults. Throw std::runtime_error on parse failure.
  std::string get_string(std::string_view key, std::string def) const;
  double get_double(std::string_view key, double def) const;
  std::int64_t get_int(std::string_view key, std::int64_t def) const;
  bool get_bool(std::string_view key, bool def) const;

  /// Keys present in the store that no getter has asked for (catch typos).
  std::vector<std::string> unused_keys() const;

  /// All key/value pairs, sorted by key (for echoing the effective config).
  std::vector<std::pair<std::string, std::string>> items() const;

 private:
  std::optional<std::string> raw(std::string_view key) const;

  std::map<std::string, std::string, std::less<>> values_;
  mutable std::set<std::string, std::less<>> used_;
};

}  // namespace wdc

#endif  // WDC_UTIL_CONFIG_HPP
