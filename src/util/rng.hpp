#ifndef WDC_UTIL_RNG_HPP
#define WDC_UTIL_RNG_HPP

/// @file rng.hpp
/// Deterministic, seedable pseudo-random number generation.
///
/// The simulator never uses std::mt19937 or global state: every stochastic process
/// owns an independent Rng stream derived from a master seed via SplitMix64, so that
/// (a) runs are bit-reproducible given a seed, and (b) replications farmed out to
/// worker threads produce results independent of the thread count.

#include <cstdint>

namespace wdc {

/// SplitMix64 — tiny, statistically strong seeding generator (Steele et al.).
/// Used to expand one master seed into many independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the simulator's workhorse generator.
/// Satisfies UniformRandomBitGenerator so it can also feed <random> if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64 (the recommended method).
  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Raw 64 random bits.
  result_type operator()() { return next(); }
  result_type next();

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derive an independent child stream; deterministic function of this stream's
  /// current state, advances this stream once.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace wdc

#endif  // WDC_UTIL_RNG_HPP
