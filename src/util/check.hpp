#ifndef WDC_UTIL_CHECK_HPP
#define WDC_UTIL_CHECK_HPP

/// @file check.hpp
/// The invariant-audit framework: WDC_ASSERT / WDC_CHECK.
///
/// * `WDC_ASSERT(cond, ...)` — cheap O(1) precondition/bookkeeping checks on hot
///   paths (replaces bare `assert`). The variadic tail is streamed into the
///   diagnostic, so failures carry the offending values.
/// * `WDC_CHECK(cond, ...)` — same contract, used by the dense structural audits
///   (heap order, cache integrity, slot conservation). Semantically: ASSERT
///   guards a call-site contract, CHECK states an internal invariant.
///
/// Both compile to real checks when `WDC_CHECKS_ENABLED` is 1 — that is, in
/// Debug builds (NDEBUG undefined) and in any build configured with
/// `-DWDC_CHECKED=ON` (the opt-in checked RelWithDebInfo mode) — and compile
/// out to nothing otherwise. The condition stays inside an unevaluated
/// `sizeof` in the compiled-out form so it keeps type-checking and cannot
/// bit-rot.
///
/// A failed check prints a formatted diagnostic to stderr — condition, source
/// location, the simulation clock of the enclosing Simulator (when one is
/// running on this thread), and the streamed message — then aborts. Death
/// tests match on the "WDC invariant violated" prefix.

#include <sstream>
#include <string>
#include <utility>

#if !defined(NDEBUG) || defined(WDC_CHECKED)
#define WDC_CHECKS_ENABLED 1
#else
#define WDC_CHECKS_ENABLED 0
#endif

namespace wdc {
namespace detail {

/// Register the simulation clock of the Simulator running on this thread so
/// check failures can report sim-time. Pass nullptr to unregister. Thread-local
/// (replications run one Simulator per worker thread).
void set_check_clock(const double* now);
const double* check_clock();

/// Print the diagnostic and abort. Always compiled (death tests and the audit
/// tool exercise it regardless of build type).
[[noreturn]] void check_failed(const char* kind, const char* cond,
                               const char* file, int line, const char* func,
                               const std::string& message);

template <typename... Args>
std::string check_message(Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
  }
}

}  // namespace detail

/// RAII guard a Simulator uses to publish its clock for diagnostics.
class CheckClockScope {
 public:
  explicit CheckClockScope(const double* now) : prev_(detail::check_clock()) {
    detail::set_check_clock(now);
  }
  ~CheckClockScope() { detail::set_check_clock(prev_); }
  CheckClockScope(const CheckClockScope&) = delete;
  CheckClockScope& operator=(const CheckClockScope&) = delete;

 private:
  const double* prev_;
};

}  // namespace wdc

#if WDC_CHECKS_ENABLED
#define WDC_DETAIL_CHECK_IMPL(kind, cond, ...)                               \
  do {                                                                       \
    if (!(cond))                                                             \
      ::wdc::detail::check_failed(kind, #cond, __FILE__, __LINE__, __func__, \
                                  ::wdc::detail::check_message(__VA_ARGS__)); \
  } while (false)
#else
#define WDC_DETAIL_CHECK_IMPL(kind, cond, ...) \
  do {                                         \
    (void)sizeof((cond) ? 1 : 0);              \
  } while (false)
#endif

#define WDC_ASSERT(cond, ...) WDC_DETAIL_CHECK_IMPL("WDC_ASSERT", cond, __VA_ARGS__)
#define WDC_CHECK(cond, ...) WDC_DETAIL_CHECK_IMPL("WDC_CHECK", cond, __VA_ARGS__)

#endif  // WDC_UTIL_CHECK_HPP
