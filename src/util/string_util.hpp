#ifndef WDC_UTIL_STRING_UTIL_HPP
#define WDC_UTIL_STRING_UTIL_HPP

/// @file string_util.hpp
/// Small string helpers used by config parsing and table writers.

#include <string>
#include <string_view>
#include <vector>

namespace wdc {

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace wdc

#endif  // WDC_UTIL_STRING_UTIL_HPP
