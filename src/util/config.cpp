#include "util/config.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace wdc {

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

void Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view v(line);
    if (const auto hash = v.find('#'); hash != std::string_view::npos)
      v = v.substr(0, hash);
    v = trim(v);
    if (v.empty()) continue;
    const auto eq = v.find('=');
    if (eq == std::string_view::npos)
      throw std::runtime_error("Config: malformed line " + std::to_string(lineno) +
                               " in " + path);
    set(std::string(trim(v.substr(0, eq))), std::string(trim(v.substr(eq + 1))));
  }
}

std::vector<std::string> Config::load_args(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view tok(argv[i]);
    const auto eq = tok.find('=');
    if (eq == std::string_view::npos) {
      positional.emplace_back(tok);
    } else {
      set(std::string(trim(tok.substr(0, eq))), std::string(trim(tok.substr(eq + 1))));
    }
  }
  return positional;
}

bool Config::has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::string> Config::raw(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  used_.insert(it->first);
  return it->second;
}

std::string Config::get_string(std::string_view key, std::string def) const {
  if (auto v = raw(key)) return *v;
  return def;
}

double Config::get_double(std::string_view key, double def) const {
  const auto v = raw(key);
  if (!v) return def;
  char* end = nullptr;
  const double d = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || !trim(std::string_view(end)).empty())
    throw std::runtime_error("Config: key '" + std::string(key) +
                             "' is not a double: " + *v);
  return d;
}

std::int64_t Config::get_int(std::string_view key, std::int64_t def) const {
  const auto v = raw(key);
  if (!v) return def;
  char* end = nullptr;
  const long long i = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || !trim(std::string_view(end)).empty())
    throw std::runtime_error("Config: key '" + std::string(key) +
                             "' is not an integer: " + *v);
  return i;
}

bool Config::get_bool(std::string_view key, bool def) const {
  const auto v = raw(key);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::runtime_error("Config: key '" + std::string(key) +
                           "' is not a bool: " + *v);
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_)
    if (used_.find(k) == used_.end()) out.push_back(k);
  return out;
}

std::vector<std::pair<std::string, std::string>> Config::items() const {
  return {values_.begin(), values_.end()};
}

}  // namespace wdc
