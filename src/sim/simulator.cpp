#include "sim/simulator.hpp"

#include <stdexcept>

namespace wdc {

EventId Simulator::schedule_at(SimTime at, EventAction action, EventPriority prio) {
  if (at < now_)
    throw std::logic_error("Simulator::schedule_at: time is in the past");
  return queue_.push(at, prio, std::move(action));
}

EventId Simulator::schedule_in(SimTime delay, EventAction action, EventPriority prio) {
  if (delay < 0.0)
    throw std::logic_error("Simulator::schedule_in: negative delay");
  return queue_.push(now_ + delay, prio, std::move(action));
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

void Simulator::run_until(SimTime end) {
  stopped_ = false;
  detail::EventRecord rec;
  while (!stopped_ && queue_.pop_due(end, rec)) {
    WDC_ASSERT(rec.time >= now_, "clock would go backwards: popped t=", rec.time,
               " with clock at ", now_);
    now_ = rec.time;
    ++executed_;
    rec.action();
  }
  if (!stopped_ && now_ < end) now_ = end;
}

void Simulator::run_all() {
  stopped_ = false;
  detail::EventRecord rec;
  while (!stopped_ && queue_.pop_due(kNever, rec)) {
    WDC_ASSERT(rec.time >= now_, "clock would go backwards: popped t=", rec.time,
               " with clock at ", now_);
    now_ = rec.time;
    ++executed_;
    rec.action();
  }
}

}  // namespace wdc
