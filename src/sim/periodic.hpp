#ifndef WDC_SIM_PERIODIC_HPP
#define WDC_SIM_PERIODIC_HPP

/// @file periodic.hpp
/// Self-rescheduling periodic timer (IR ticks, sampling probes). Header-only.

#include <utility>

#include "sim/simulator.hpp"
#include "util/inline_action.hpp"

namespace wdc {

/// Fires `action(tick_index)` every `period` seconds starting at `first`.
/// Ticks are computed as first + k*period (not cumulative adds), so long runs don't
/// accumulate floating-point drift — IR instants stay aligned across protocols.
class PeriodicTimer {
 public:
  /// Inline like EventAction: periodic timers are per-replication hot state
  /// (IR ticks fire throughout the run) and never touch the allocator.
  using TickAction = InlineFunction<void(std::uint64_t), 48>;

  PeriodicTimer(Simulator& sim, SimTime first, SimTime period, TickAction action,
                EventPriority prio = EventPriority::kProtocol)
      : sim_(sim), first_(first), period_(period), action_(std::move(action)),
        prio_(prio) {
    arm(0);
  }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  ~PeriodicTimer() { stop(); }

  void stop() {
    if (pending_.valid()) {
      sim_.cancel(pending_);
      pending_ = EventId{};
    }
  }

  std::uint64_t ticks_fired() const { return next_tick_; }

 private:
  void arm(std::uint64_t tick) {
    next_tick_ = tick;
    pending_ = sim_.schedule_at(first_ + period_ * static_cast<SimTime>(tick),
                                [this] { fire(); }, prio_);
  }

  void fire() {
    const std::uint64_t tick = next_tick_;
    arm(tick + 1);       // arm first so the action may stop() us
    action_(tick);
  }

  Simulator& sim_;
  SimTime first_;
  SimTime period_;
  TickAction action_;
  EventPriority prio_;
  EventId pending_{};
  std::uint64_t next_tick_ = 0;
};

}  // namespace wdc

#endif  // WDC_SIM_PERIODIC_HPP
