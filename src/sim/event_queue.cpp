#include "sim/event_queue.hpp"

#include <algorithm>

namespace wdc {

EventId EventQueue::push(SimTime time, EventPriority prio, EventAction action) {
  WDC_ASSERT(time >= last_pop_time_,
             "push at t=", time, " behind last pop t=", last_pop_time_);
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(detail::EventRecord{time, prio, seq, std::move(action), false});
  std::push_heap(heap_.begin(), heap_.end(), detail::EventLater{});
  pending_.insert(seq);
  ++live_;
  maybe_audit();
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  if (pending_.erase(id.seq) == 0) return false;  // already fired or never existed
  cancelled_.insert(id.seq);
  WDC_ASSERT(live_ > 0, "cancel of seq=", id.seq, " with live count 0");
  --live_;
  maybe_audit();
  return true;
}

void EventQueue::drop_dead() const {
  while (!heap_.empty() && cancelled_.count(heap_.front().seq) > 0) {
    std::pop_heap(heap_.begin(), heap_.end(), detail::EventLater{});
    cancelled_.erase(heap_.back().seq);
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  drop_dead();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_dead();
  return heap_.empty() ? kNever : heap_.front().time;
}

detail::EventRecord EventQueue::pop() {
  drop_dead();
  WDC_ASSERT(!heap_.empty(), "EventQueue::pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), detail::EventLater{});
  detail::EventRecord rec = std::move(heap_.back());
  heap_.pop_back();
  WDC_ASSERT(pending_.count(rec.seq) > 0,
             "popped seq=", rec.seq, " not in the pending set");
  pending_.erase(rec.seq);
  WDC_ASSERT(live_ > 0, "pop of seq=", rec.seq, " with live count 0");
  --live_;
  WDC_ASSERT(rec.time >= last_pop_time_, "pop time went backwards: ", rec.time,
             " after ", last_pop_time_, " (seq=", rec.seq, ")");
  last_pop_time_ = rec.time;
  maybe_audit();
  return rec;
}

void EventQueue::maybe_audit() const {
#if WDC_CHECKS_ENABLED
  if ((++mutations_ % kAuditPeriod) == 0) audit();
#endif
}

void EventQueue::audit() const {
#if WDC_CHECKS_ENABLED
  WDC_CHECK(live_ == pending_.size(),
            "live count ", live_, " != pending set size ", pending_.size());
  WDC_CHECK(heap_.size() == pending_.size() + cancelled_.size(),
            "heap holds ", heap_.size(), " records but pending=", pending_.size(),
            " + cancelled=", cancelled_.size());
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const auto& rec = heap_[i];
    const bool is_pending = pending_.count(rec.seq) > 0;
    const bool is_cancelled = cancelled_.count(rec.seq) > 0;
    WDC_CHECK(is_pending != is_cancelled, "heap seq=", rec.seq,
              " must be exactly one of pending/cancelled (pending=", is_pending,
              ", cancelled=", is_cancelled, ")");
    if (is_pending)
      WDC_CHECK(rec.time >= last_pop_time_, "pending seq=", rec.seq, " at t=",
                rec.time, " is behind the last popped time ", last_pop_time_);
    if (i > 0) {
      const auto& parent = heap_[(i - 1) / 2];
      WDC_CHECK(!detail::EventLater{}(parent, rec),
                "heap order broken: parent seq=", parent.seq, " t=", parent.time,
                " fires after child seq=", rec.seq, " t=", rec.time);
    }
  }
#endif
}

}  // namespace wdc
