#include "sim/event_queue.hpp"

namespace wdc {

namespace {
constexpr std::size_t kHeapArity = 4;
}  // namespace

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    Slot& s = slots_[index];
    WDC_ASSERT(s.state == SlotState::kFree,
               "freelist head slot=", index, " is not free");
    free_head_ = s.next_free;
    s.next_free = kNoSlot;
    counters_.slot_reuse();
    return index;
  }
  WDC_ASSERT(slots_.size() < kNoSlot, "slot pool exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) const {
  Slot& s = slots_[index];
  s.action.reset();
  // Bump the generation so any EventId still pointing at this slot goes stale.
  // Generation 0 is reserved for the invalid EventId{} handle.
  if (++s.gen == 0) s.gen = 1;
  s.state = SlotState::kFree;
  s.next_free = free_head_;
  free_head_ = index;
}

void EventQueue::sift_up(std::size_t i) {
  const detail::HeapEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!detail::fires_before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  const detail::HeapEntry entry = heap_[i];
  for (;;) {
    const std::size_t first = i * kHeapArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = (first + kHeapArity < n) ? first + kHeapArity : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (detail::fires_before(heap_[c], heap_[best])) best = c;
    }
    if (!detail::fires_before(heap_[best], entry)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

EventId EventQueue::push(SimTime time, EventPriority prio, EventAction action) {
  WDC_ASSERT(time >= last_pop_time_,
             "push at t=", time, " behind last pop t=", last_pop_time_);
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t index = acquire_slot();
  Slot& s = slots_[index];
  s.state = SlotState::kPending;
  s.action = std::move(action);
  heap_.push_back(detail::HeapEntry{time, seq, index, prio});
  sift_up(heap_.size() - 1);
  ++live_;
  counters_.schedule(prio, heap_.size());
  maybe_audit();
  return EventId{(static_cast<std::uint64_t>(s.gen) << 32) | index};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto index = static_cast<std::uint32_t>(id.raw & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id.raw >> 32);
  if (gen == 0 || index >= slots_.size()) return false;
  Slot& s = slots_[index];
  if (s.gen != gen || s.state != SlotState::kPending) {
    return false;  // already fired, already cancelled, or a recycled slot
  }
  s.state = SlotState::kCancelled;
  s.action.reset();  // release captures now; the heap key is removed lazily
  WDC_ASSERT(live_ > 0, "cancel of slot=", index, " with live count 0");
  --live_;
  counters_.cancel();
  maybe_audit();
  return true;
}

void EventQueue::drop_dead() const {
  while (!heap_.empty()) {
    const std::uint32_t index = heap_.front().slot;
    WDC_ASSERT(index < slots_.size(),
               "heap top references slot=", index, " outside the pool");
    if (slots_[index].state != SlotState::kCancelled) break;
    release_slot(index);
    remove_top();
    counters_.dead_skip();
  }
}

void EventQueue::remove_top() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

bool EventQueue::empty() const {
  drop_dead();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_dead();
  return heap_.empty() ? kNever : heap_.front().time;
}

detail::EventRecord EventQueue::take_top() {
  const detail::HeapEntry top = heap_.front();
  Slot& s = slots_[top.slot];
  WDC_ASSERT(s.state == SlotState::kPending,
             "popped slot=", top.slot, " (seq=", top.seq, ") is not pending");
  detail::EventRecord rec;
  rec.time = top.time;
  rec.prio = top.prio;
  rec.seq = top.seq;
  rec.action = std::move(s.action);
  release_slot(top.slot);
  remove_top();
  WDC_ASSERT(live_ > 0, "pop of seq=", rec.seq, " with live count 0");
  --live_;
  WDC_ASSERT(rec.time >= last_pop_time_, "pop time went backwards: ", rec.time,
             " after ", last_pop_time_, " (seq=", rec.seq, ")");
  last_pop_time_ = rec.time;
  counters_.fire();
  maybe_audit();
  return rec;
}

detail::EventRecord EventQueue::pop() {
  drop_dead();
  WDC_ASSERT(!heap_.empty(), "EventQueue::pop on empty queue");
  return take_top();
}

bool EventQueue::pop_due(SimTime limit, detail::EventRecord& out) {
  drop_dead();
  if (heap_.empty() || heap_.front().time > limit) return false;
  out = take_top();
  return true;
}

void EventQueue::maybe_audit() const {
#if WDC_CHECKS_ENABLED
  if ((++mutations_ % kAuditPeriod) == 0) audit();
#endif
}

void EventQueue::audit() const {
#if WDC_CHECKS_ENABLED
  std::size_t pending = 0;
  std::size_t cancelled = 0;
  std::size_t free_count = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    WDC_CHECK(s.gen != 0, "slot=", i, " has the reserved generation 0");
    switch (s.state) {
      case SlotState::kPending:
        ++pending;
        break;
      case SlotState::kCancelled:
        ++cancelled;
        WDC_CHECK(!s.action, "cancelled slot=", i,
                  " still holds an action (captures must be released at "
                  "cancel time)");
        break;
      case SlotState::kFree:
        ++free_count;
        WDC_CHECK(!s.action, "free slot=", i, " still holds an action");
        break;
    }
  }
  WDC_CHECK(live_ == pending,
            "live count ", live_, " != pending slot count ", pending);
  WDC_CHECK(heap_.size() == pending + cancelled,
            "heap holds ", heap_.size(), " keys but pending=", pending,
            " + cancelled=", cancelled);
  // Freelist conservation: it must thread through exactly the free slots.
  std::size_t chain = 0;
  for (std::uint32_t f = free_head_; f != kNoSlot; f = slots_[f].next_free) {
    WDC_CHECK(f < slots_.size(), "freelist references slot=", f,
              " outside the pool");
    WDC_CHECK(slots_[f].state == SlotState::kFree,
              "freelist slot=", f, " is not marked free");
    WDC_CHECK(++chain <= slots_.size(),
              "freelist cycle detected after ", chain, " links");
  }
  WDC_CHECK(chain == free_count, "freelist length ", chain,
            " != free slot count ", free_count);
  // Heap structure: unique live slots, 4-ary order, time monotonicity, seqs.
  std::vector<bool> seen(slots_.size(), false);
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const detail::HeapEntry& e = heap_[i];
    WDC_CHECK(e.slot < slots_.size(),
              "heap key i=", i, " references slot=", e.slot,
              " outside the pool");
    WDC_CHECK(!seen[e.slot], "slot=", e.slot, " appears twice in the heap");
    seen[e.slot] = true;
    WDC_CHECK(slots_[e.slot].state != SlotState::kFree,
              "heap key i=", i, " references free slot=", e.slot);
    WDC_CHECK(e.seq < next_seq_, "heap seq=", e.seq,
              " was never issued (next_seq=", next_seq_, ")");
    if (slots_[e.slot].state == SlotState::kPending) {
      WDC_CHECK(e.time >= last_pop_time_, "pending seq=", e.seq, " at t=",
                e.time, " is behind the last popped time ", last_pop_time_);
    }
    if (i > 0) {
      const detail::HeapEntry& parent = heap_[(i - 1) / kHeapArity];
      WDC_CHECK(!detail::fires_before(e, parent),
                "heap order broken: parent seq=", parent.seq,
                " t=", parent.time, " fires after child seq=", e.seq,
                " t=", e.time);
    }
  }
#endif
}

}  // namespace wdc
