#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace wdc {

EventId EventQueue::push(SimTime time, EventPriority prio, EventAction action) {
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(detail::EventRecord{time, prio, seq, std::move(action), false});
  std::push_heap(heap_.begin(), heap_.end(), detail::EventLater{});
  pending_.insert(seq);
  ++live_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  if (pending_.erase(id.seq) == 0) return false;  // already fired or never existed
  cancelled_.insert(id.seq);
  assert(live_ > 0);
  --live_;
  return true;
}

void EventQueue::drop_dead() const {
  while (!heap_.empty() && cancelled_.count(heap_.front().seq) > 0) {
    std::pop_heap(heap_.begin(), heap_.end(), detail::EventLater{});
    cancelled_.erase(heap_.back().seq);
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  drop_dead();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_dead();
  return heap_.empty() ? kNever : heap_.front().time;
}

detail::EventRecord EventQueue::pop() {
  drop_dead();
  assert(!heap_.empty() && "EventQueue::pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), detail::EventLater{});
  detail::EventRecord rec = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(rec.seq);
  assert(live_ > 0);
  --live_;
  return rec;
}

}  // namespace wdc
