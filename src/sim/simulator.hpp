#ifndef WDC_SIM_SIMULATOR_HPP
#define WDC_SIM_SIMULATOR_HPP

/// @file simulator.hpp
/// The discrete-event simulator: clock + event queue + run loop.
///
/// Usage:
///   Simulator sim;
///   sim.schedule_in(1.0, [] { ... });
///   sim.run_until(3600.0);
///
/// All model components hold a Simulator& and schedule through it. The kernel
/// is single-threaded by design: within-run parallelism lives one layer up,
/// where ShardedSimulation runs one serial kernel per sub-cell behind a
/// bounded-lag epoch barrier (engine/sharded.hpp), and replication/sweep
/// parallelism runs whole simulations per worker (engine/replication.hpp).
/// Nothing inside a kernel is ever shared across threads.

#include <cstdint>

#include "sim/event_queue.hpp"
#include "trace/trace_recorder.hpp"
#include "util/check.hpp"
#include "util/types.hpp"

namespace wdc {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `action` at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, EventAction action,
                      EventPriority prio = EventPriority::kDefault);

  /// Schedule `action` after a delay (must be >= 0).
  EventId schedule_in(SimTime delay, EventAction action,
                      EventPriority prio = EventPriority::kDefault);

  /// Cancel a pending event; returns false if it already fired or was cancelled.
  bool cancel(EventId id);

  /// Run until the queue drains or the clock would pass `end`. The clock finishes
  /// at exactly `end` (events at later times stay queued).
  void run_until(SimTime end);

  /// Run events until the queue is empty (use only for bounded models/tests).
  void run_all();

  /// Immediately stop the run loop after the current event returns.
  void stop() { stopped_ = true; }

  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return queue_.size(); }

  /// Time of the earliest pending event; kNever when the queue is empty.
  /// Lets an external pacer (the wdc_serve run loop) sleep exactly until the
  /// next simulated instant instead of polling.
  SimTime next_event_time() const { return queue_.next_time(); }

  /// Kernel perf counters (all-zero when compiled out; see kernel_counters.hpp).
  KernelCounters kernel_counters() const { return queue_.counters(); }

  /// Query-lifecycle trace recorder (a no-op under -DWDC_TRACE=OFF; see
  /// trace_recorder.hpp). Owned here so every component holding a Simulator&
  /// can emit without extra wiring.
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  /// Structural audit of the pending-event set (see EventQueue::audit()).
  void audit() const { queue_.audit(); }

 private:
  EventQueue queue_;
  TraceRecorder trace_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  /// Publishes the clock to the check framework so a tripped invariant
  /// anywhere in the model reports the simulation time.
  CheckClockScope check_clock_{&now_};
};

}  // namespace wdc

#endif  // WDC_SIM_SIMULATOR_HPP
