#ifndef WDC_SIM_EVENT_HPP
#define WDC_SIM_EVENT_HPP

/// @file event.hpp
/// Event types for the discrete-event kernel.
///
/// Events carry an arbitrary action (a fixed-capacity inline callable — never
/// heap-allocated; see util/inline_action.hpp). Ordering is by time, then by
/// priority (lower value fires first), then by insertion sequence — the
/// ns-2-style *stable* tie-break that makes runs bit-reproducible.

#include <cstdint>

#include "util/inline_action.hpp"
#include "util/types.hpp"

namespace wdc {

/// Handle used to cancel a scheduled event. Copyable, cheap. Encodes the
/// kernel's slot index (low 32 bits) and the slot's generation stamp (high 32
/// bits); a recycled slot bumps its generation, so stale handles can never
/// cancel an unrelated later event.
struct EventId {
  std::uint64_t raw = 0;
  bool valid() const { return raw != 0; }
};

/// Scheduling priority for simultaneous events. The MAC uses this to guarantee,
/// e.g., that a transmission-complete event is processed before anything scheduled
/// "at the same instant" reacts to the channel becoming free.
enum class EventPriority : std::uint8_t {
  kChannel = 0,   ///< channel-state transitions
  kTxDone = 1,    ///< transmission completions
  kProtocol = 2,  ///< protocol timers (IR ticks, windows)
  kWorkload = 3,  ///< query/update/traffic arrivals
  kDefault = 4,
  kStats = 5,     ///< sampling probes fire after everything else settles
};

inline constexpr std::size_t kNumEventPriorities = 6;

/// Fixed-capacity inline action: captures construct in place, scheduling and
/// firing never touch the allocator. 48 bytes covers every kernel client (the
/// largest capture in the tree is the uplink's this + std::function at 40).
using EventAction = InlineFunction<void(), 48>;

namespace detail {

/// A fired event as handed to the run loop (and to white-box tests).
struct EventRecord {
  SimTime time = 0.0;
  EventPriority prio = EventPriority::kDefault;
  std::uint64_t seq = 0;  ///< global insertion order (the final tie-break)
  EventAction action;
};

/// A heap entry is a 24-byte POD key — the action stays in the slot pool, so
/// heap sifts move keys, never callables.
struct HeapEntry {
  SimTime time;
  std::uint64_t seq;
  std::uint32_t slot;
  EventPriority prio;
};

/// Strict total order: earliest time, then lowest priority value, then lowest
/// seq. Total ⇒ the pop sequence is unique whatever the heap arity/layout.
inline bool fires_before(const HeapEntry& a, const HeapEntry& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.prio != b.prio) return a.prio < b.prio;
  return a.seq < b.seq;
}

}  // namespace detail

}  // namespace wdc

#endif  // WDC_SIM_EVENT_HPP
