#ifndef WDC_SIM_EVENT_HPP
#define WDC_SIM_EVENT_HPP

/// @file event.hpp
/// Event record for the discrete-event kernel.
///
/// Events carry an arbitrary action (type-erased callable). Ordering is by time,
/// then by priority (lower value fires first), then by insertion sequence — the
/// ns-2-style *stable* tie-break that makes runs bit-reproducible.

#include <cstdint>
#include <functional>

#include "util/types.hpp"

namespace wdc {

/// Handle used to cancel a scheduled event. Copyable, cheap.
struct EventId {
  std::uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

/// Scheduling priority for simultaneous events. The MAC uses this to guarantee,
/// e.g., that a transmission-complete event is processed before anything scheduled
/// "at the same instant" reacts to the channel becoming free.
enum class EventPriority : std::uint8_t {
  kChannel = 0,   ///< channel-state transitions
  kTxDone = 1,    ///< transmission completions
  kProtocol = 2,  ///< protocol timers (IR ticks, windows)
  kWorkload = 3,  ///< query/update/traffic arrivals
  kDefault = 4,
  kStats = 5,     ///< sampling probes fire after everything else settles
};

using EventAction = std::function<void()>;

namespace detail {
struct EventRecord {
  SimTime time;
  EventPriority prio;
  std::uint64_t seq;  // insertion order; doubles as the cancellation handle
  EventAction action;
  bool cancelled = false;
};

/// Min-heap ordering: earliest time, then lowest priority value, then lowest seq.
struct EventLater {
  bool operator()(const EventRecord& a, const EventRecord& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.prio != b.prio) return a.prio > b.prio;
    return a.seq > b.seq;
  }
};
}  // namespace detail

}  // namespace wdc

#endif  // WDC_SIM_EVENT_HPP
