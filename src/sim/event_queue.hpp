#ifndef WDC_SIM_EVENT_QUEUE_HPP
#define WDC_SIM_EVENT_QUEUE_HPP

/// @file event_queue.hpp
/// The pending-event set: a 4-ary heap of POD keys over a generation-stamped
/// slot pool, with lazy cancellation.
///
/// ## Hot-path design (see docs/ANALYSIS.md §kernel)
///  * Actions live in a recycled slot pool; heap entries are 24-byte POD keys,
///    so sift operations move keys, never callables, and push/cancel/pop never
///    hash — cancel is an O(1) indexed slot lookup (the old design paid two
///    unordered_set operations per event).
///  * The heap is 4-ary: ~half the depth of a binary heap, and the 4-child
///    minimum scan runs over one cache line of keys.
///  * Cancellation marks the slot and frees its action immediately; the dead
///    key is skipped when it surfaces at the heap top (lazy removal, the
///    standard trick for simulators with heavy timer churn — our protocols
///    cancel deferred-IR timers constantly).
///  * Freed slots go on an intrusive freelist and are recycled; EventId
///    handles carry the slot generation, so a stale handle can never cancel a
///    later event that reused its slot.
///
/// ## Invariants (audited under WDC_CHECKS_ENABLED)
///  * slot conservation: every slot is exactly one of free / pending /
///    cancelled; heap size == pending + cancelled; freelist length == free;
///    `live_` == pending;
///  * heap uniqueness: every heap entry resolves to a distinct non-free slot;
///  * heap order: every parent fires no later than its 4 children (time, then
///    priority, then insertion seq — the stable tie-break);
///  * monotonic pop: the sequence of popped records never goes back in time;
///    no pending record is earlier than the last popped time;
///  * cancelled slots hold no action (captures are released at cancel time).
/// Cheap O(1) slices run on every mutation; the full O(n) structural audit runs
/// every `kAuditPeriod` mutations and on demand via audit().

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/kernel_counters.hpp"
#include "util/check.hpp"

namespace wdc {

namespace detail {
struct EventQueueTestPeer;  // white-box corruption hook for death tests
}  // namespace detail

class EventQueue {
 public:
  /// Insert an event; returns a handle usable with cancel().
  EventId push(SimTime time, EventPriority prio, EventAction action);

  /// Cancel a pending event. Returns false if already fired/cancelled/unknown.
  /// O(1): one indexed slot lookup, no hashing, no heap work.
  bool cancel(EventId id);

  bool empty() const;
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; kNever when empty.
  SimTime next_time() const;

  /// Remove and return the earliest live event. Caller must check !empty().
  detail::EventRecord pop();

  /// Single-pass run-loop fast path: pop the earliest live event into `out` if
  /// it fires at or before `limit`; false when the queue is drained or the
  /// next event is later. Equivalent to !empty() && next_time() <= limit
  /// && (out = pop(), true), with one heap-top inspection instead of three.
  bool pop_due(SimTime limit, detail::EventRecord& out);

  /// Latest time handed out by pop() (-inf before the first pop).
  SimTime last_pop_time() const { return last_pop_time_; }

  /// Kernel perf counters (zeros when compiled out; see kernel_counters.hpp).
  KernelCounters counters() const { return counters_.snapshot(); }

  /// Full structural audit; trips a WDC_CHECK on corruption. No-op when checks
  /// are compiled out.
  void audit() const;

 private:
  friend struct detail::EventQueueTestPeer;

  /// Full audits are amortised: one every kAuditPeriod mutations.
  static constexpr std::uint64_t kAuditPeriod = 64;

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  enum class SlotState : std::uint8_t { kFree, kPending, kCancelled };

  struct Slot {
    EventAction action;
    std::uint32_t gen = 1;            ///< bumped on free; 0 never occurs
    std::uint32_t next_free = kNoSlot;
    SlotState state = SlotState::kFree;
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index) const;
  void sift_up(std::size_t i);
  void sift_down(std::size_t i) const;
  void remove_top() const;
  void drop_dead() const;
  detail::EventRecord take_top();
  void maybe_audit() const;

  // drop_dead() runs from the const observers (empty/next_time), exactly as
  // the old design's mutable heap did — lazy removal is bookkeeping, not
  // observable state.
  mutable std::vector<detail::HeapEntry> heap_;
  mutable std::vector<Slot> slots_;
  mutable std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
  SimTime last_pop_time_ = -kNever;
  mutable std::uint64_t mutations_ = 0;
  mutable KernelCounterHook counters_;
};

}  // namespace wdc

#endif  // WDC_SIM_EVENT_QUEUE_HPP
