#ifndef WDC_SIM_EVENT_QUEUE_HPP
#define WDC_SIM_EVENT_QUEUE_HPP

/// @file event_queue.hpp
/// Binary-heap pending-event set with lazy cancellation.
///
/// Cancellation marks the record via a side table and the heap skips dead records on
/// pop — O(1) cancel, amortised cleanup, the standard trick for simulators with many
/// timer cancellations (our protocols cancel deferred-IR timers frequently).
///
/// ## Invariants (audited under WDC_CHECKS_ENABLED)
///  * bookkeeping: `live_ == pending_.size()` and
///    `heap_.size() == pending_.size() + cancelled_.size()` — every heap record is
///    exactly one of live or awaiting-removal;
///  * heap order: every parent fires no later than its children (time, then
///    priority, then insertion seq — the stable tie-break);
///  * monotonic pop: the sequence of popped records never goes back in time;
///  * no record earlier than the last popped time can be pending.
/// Cheap O(1) slices run on every mutation; the full O(n) structural audit runs
/// every `kAuditPeriod` mutations and on demand via audit().

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"
#include "util/check.hpp"

namespace wdc {

namespace detail {
struct EventQueueTestPeer;  // white-box corruption hook for death tests
}  // namespace detail

class EventQueue {
 public:
  /// Insert an event; returns a handle usable with cancel().
  EventId push(SimTime time, EventPriority prio, EventAction action);

  /// Cancel a pending event. Returns false if already fired/cancelled/unknown.
  bool cancel(EventId id);

  bool empty() const;
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; kNever when empty.
  SimTime next_time() const;

  /// Remove and return the earliest live event. Caller must check !empty().
  detail::EventRecord pop();

  /// Latest time handed out by pop() (-inf before the first pop).
  SimTime last_pop_time() const { return last_pop_time_; }

  /// Full structural audit; trips a WDC_CHECK on corruption. No-op when checks
  /// are compiled out.
  void audit() const;

 private:
  friend struct detail::EventQueueTestPeer;

  /// Full audits are amortised: one every kAuditPeriod mutations.
  static constexpr std::uint64_t kAuditPeriod = 64;

  void drop_dead() const;
  void maybe_audit() const;

  mutable std::vector<detail::EventRecord> heap_;
  std::unordered_set<std::uint64_t> pending_;    ///< seqs alive in heap_
  mutable std::unordered_set<std::uint64_t> cancelled_;  ///< seqs awaiting removal
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
  SimTime last_pop_time_ = -kNever;
  mutable std::uint64_t mutations_ = 0;
};

}  // namespace wdc

#endif  // WDC_SIM_EVENT_QUEUE_HPP
