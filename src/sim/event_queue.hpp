#ifndef WDC_SIM_EVENT_QUEUE_HPP
#define WDC_SIM_EVENT_QUEUE_HPP

/// @file event_queue.hpp
/// Binary-heap pending-event set with lazy cancellation.
///
/// Cancellation marks the record via a side table and the heap skips dead records on
/// pop — O(1) cancel, amortised cleanup, the standard trick for simulators with many
/// timer cancellations (our protocols cancel deferred-IR timers frequently).

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"

namespace wdc {

class EventQueue {
 public:
  /// Insert an event; returns a handle usable with cancel().
  EventId push(SimTime time, EventPriority prio, EventAction action);

  /// Cancel a pending event. Returns false if already fired/cancelled/unknown.
  bool cancel(EventId id);

  bool empty() const;
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; kNever when empty.
  SimTime next_time() const;

  /// Remove and return the earliest live event. Caller must check !empty().
  detail::EventRecord pop();

 private:
  void drop_dead() const;

  mutable std::vector<detail::EventRecord> heap_;
  std::unordered_set<std::uint64_t> pending_;    ///< seqs alive in heap_
  mutable std::unordered_set<std::uint64_t> cancelled_;  ///< seqs awaiting removal
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace wdc

#endif  // WDC_SIM_EVENT_QUEUE_HPP
