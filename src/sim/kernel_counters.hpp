#ifndef WDC_SIM_KERNEL_COUNTERS_HPP
#define WDC_SIM_KERNEL_COUNTERS_HPP

/// @file kernel_counters.hpp
/// Perf-counter hook for the event kernel: events scheduled/fired/cancelled,
/// lazy-removal work, slot-pool recycling, heap depth high-water mark, and
/// per-subsystem schedule counts (keyed by EventPriority, which maps 1:1 onto
/// the scheduling subsystems — channel, MAC tx, protocol timers, workload,
/// stats probes).
///
/// The hook is compile-time zero-cost: with WDC_PERF_COUNTERS_ENABLED=0
/// (CMake -DWDC_PERF_COUNTERS=OFF) every bump inlines to nothing and the hook
/// object is empty. Counters are instrumentation only — they are surfaced in
/// Metrics and wdc_bench json= output but deliberately EXCLUDED from
/// metrics_digest, so instrumented and stripped builds stay digest-identical.

#include <cstddef>
#include <cstdint>

#include "sim/event.hpp"

#ifndef WDC_PERF_COUNTERS_ENABLED
#define WDC_PERF_COUNTERS_ENABLED 1
#endif

namespace wdc {

struct KernelCounters {
  std::uint64_t scheduled = 0;     ///< push() calls
  std::uint64_t fired = 0;         ///< events popped for execution
  std::uint64_t cancelled = 0;     ///< successful cancel() calls
  std::uint64_t dead_skipped = 0;  ///< cancelled records lazily removed
  std::uint64_t slots_reused = 0;  ///< pool recycling hits (vs fresh slots)
  std::uint64_t heap_peak = 0;     ///< heap depth high-water mark
  std::uint64_t scheduled_by_prio[kNumEventPriorities] = {};

  /// Fold another kernel's counters into this one (sharded metrics merge —
  /// one kernel per cell). Sums everywhere except the high-water mark, where
  /// the cells' peaks are concurrent and the max is the honest aggregate.
  void merge_from(const KernelCounters& other) {
    scheduled += other.scheduled;
    fired += other.fired;
    cancelled += other.cancelled;
    dead_skipped += other.dead_skipped;
    slots_reused += other.slots_reused;
    if (other.heap_peak > heap_peak) heap_peak = other.heap_peak;
    for (std::size_t i = 0; i < kNumEventPriorities; ++i)
      scheduled_by_prio[i] += other.scheduled_by_prio[i];
  }
};

#if WDC_PERF_COUNTERS_ENABLED

class KernelCounterHook {
 public:
  void schedule(EventPriority prio, std::size_t heap_size) {
    ++c_.scheduled;
    ++c_.scheduled_by_prio[static_cast<std::size_t>(prio)];
    if (heap_size > c_.heap_peak) c_.heap_peak = heap_size;
  }
  void fire() { ++c_.fired; }
  void cancel() { ++c_.cancelled; }
  void dead_skip() { ++c_.dead_skipped; }
  void slot_reuse() { ++c_.slots_reused; }
  KernelCounters snapshot() const { return c_; }

 private:
  KernelCounters c_;
};

#else

/// Stripped build: every hook call compiles to nothing.
class KernelCounterHook {
 public:
  void schedule(EventPriority, std::size_t) {}
  void fire() {}
  void cancel() {}
  void dead_skip() {}
  void slot_reuse() {}
  KernelCounters snapshot() const { return {}; }
};

#endif  // WDC_PERF_COUNTERS_ENABLED

}  // namespace wdc

#endif  // WDC_SIM_KERNEL_COUNTERS_HPP
