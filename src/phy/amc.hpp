#ifndef WDC_PHY_AMC_HPP
#define WDC_PHY_AMC_HPP

/// @file amc.hpp
/// Adaptive modulation-and-coding (link adaptation) controller.
///
/// Selects the MCS for each transmission from an SNR estimate. Models the two
/// imperfections that matter to the protocols under study:
///   * measurement delay — the estimate is the SNR `csi_delay_s` ago;
///   * hysteresis — a scheme switch requires the SNR to clear the switching point
///     by `hysteresis_db`, suppressing rate flapping near thresholds.
/// A fixed-MCS mode provides the no-link-adaptation ablation (FIG-6).

#include <cstddef>

#include "channel/snr_process.hpp"
#include "phy/mcs.hpp"

namespace wdc {

struct AmcConfig {
  double target_bler = 0.10;   ///< classic 10% residual-BLER operating point
  double hysteresis_db = 1.0;
  double csi_delay_s = 0.02;   ///< measurement/feedback staleness
  bool adaptive = true;        ///< false ⇒ always use fixed_mcs
  std::size_t fixed_mcs = 2;
  double backoff_db = 0.0;     ///< extra SNR margin subtracted before selection
};

class AmcController {
 public:
  AmcController(const McsTable& table, AmcConfig cfg);

  /// MCS index to use for a transmission of `bits` starting at time `t`, based on
  /// the (possibly stale) SNR of `link`. `bits` = 0 means a single radio block.
  std::size_t select(SnrProcess& link, SimTime t, Bits bits = 0);

  /// MCS choice from a raw SNR figure (no delay modelling) — used by the server's
  /// broadcast reference logic and by tests. The selection targets whole-message
  /// delivery at the configured BLER for a message of `bits` (0 ⇒ one block).
  std::size_t select_from_snr(double snr_db, Bits bits = 0);

  const McsTable& table() const { return table_; }
  const AmcConfig& config() const { return cfg_; }
  std::size_t last_choice() const { return last_; }

 private:
  const McsTable& table_;
  AmcConfig cfg_;
  std::size_t last_ = 0;
};

}  // namespace wdc

#endif  // WDC_PHY_AMC_HPP
