#ifndef WDC_PHY_MCS_HPP
#define WDC_PHY_MCS_HPP

/// @file mcs.hpp
/// Modulation-and-coding schemes and their error performance.
///
/// The default table is modelled on EDGE MCS-1…MCS-9 (the link-adaptation system a
/// 2004 wireless-data paper would assume): nine schemes from GMSK/heavy coding up to
/// 8-PSK/no coding, per-timeslot rates 8.8…59.2 kb/s scaled by a configurable number
/// of timeslots.
///
/// Block error rate is a logistic curve in the dB domain:
///     BLER(γ_dB) = 1 / (1 + exp((γ_dB − γ50) / s))
/// γ50 = SNR at 50% BLER, s = transition slope. This matches the shape of the
/// exponential PER fits used in the AMC literature while staying monotone,
/// invertible and trivially testable.

#include <cstddef>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace wdc {

struct Mcs {
  std::string name;
  double rate_bps;     ///< net data rate when this scheme is active
  double gamma50_db;   ///< SNR at 50% block error rate
  double slope_db;     ///< logistic transition width

  /// Block error probability at the given SNR.
  double bler(double snr_db) const;

  /// SNR (dB) at which this scheme reaches `target` BLER (inverse of bler()).
  double snr_for_bler(double target) const;
};

class McsTable {
 public:
  explicit McsTable(std::vector<Mcs> schemes);

  /// EDGE-like 9-scheme table; `timeslots` multiplies every rate (EDGE terminals
  /// commonly bundled 4 downlink timeslots ⇒ ≈237 kb/s peak).
  static McsTable edge(unsigned timeslots = 4);

  /// 802.11b-like 4-rate table (1/2/5.5/11 Mb/s DSSS/CCK) — the other radio a
  /// 2004 wireless-caching system would plausibly run on. Block size scaled up
  /// to WLAN fragment magnitudes.
  static McsTable wifi11b();

  /// Three-scheme toy table with widely separated thresholds (unit tests).
  static McsTable simple3();

  std::size_t size() const { return schemes_.size(); }
  const Mcs& at(std::size_t i) const { return schemes_[i]; }
  const Mcs& operator[](std::size_t i) const { return schemes_[i]; }

  /// Index of the highest-rate scheme whose BLER at `snr_db` is <= `target_bler`;
  /// returns 0 (the most robust scheme) if none qualifies.
  std::size_t best_for(double snr_db, double target_bler) const;

  /// Message-size-aware selection: picks the highest-rate scheme such that a
  /// message of `bits` (segmented into radio blocks) is fully decoded with
  /// probability >= 1 − frame_target at `snr_db`. Real link adaptation works per
  /// block; targeting the frame keeps multi-block reports/items deliverable.
  std::size_t best_for_message(double snr_db, double frame_target, Bits bits) const;

  /// Airtime in seconds to transmit `bits` with scheme `i`, including a fixed
  /// per-transmission preamble/header overhead.
  double airtime_s(Bits bits, std::size_t i) const;

  double preamble_s() const { return preamble_s_; }
  void set_preamble_s(double s) { preamble_s_ = s; }

  /// Radio-block payload size used for error segmentation (bits).
  Bits block_bits() const { return block_bits_; }
  void set_block_bits(Bits b) { block_bits_ = b; }

  /// Number of radio blocks a message of `bits` occupies (>= 1).
  std::size_t blocks_for(Bits bits) const;

  /// Probability that a receiver at `snr_db` decodes ALL blocks of a message of
  /// `bits` sent with scheme `i` (no ARQ — broadcast reception model).
  double decode_prob(Bits bits, std::size_t i, double snr_db) const;

 private:
  std::vector<Mcs> schemes_;
  double preamble_s_ = 0.002;     ///< 2 ms header/guard per transmission
  Bits block_bits_ = 456;         ///< EDGE radio block payload magnitude
};

}  // namespace wdc

#endif  // WDC_PHY_MCS_HPP
