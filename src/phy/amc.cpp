#include "phy/amc.hpp"

#include <algorithm>

namespace wdc {

AmcController::AmcController(const McsTable& table, AmcConfig cfg)
    : table_(table), cfg_(cfg) {
  if (cfg_.fixed_mcs >= table_.size()) cfg_.fixed_mcs = table_.size() - 1;
  last_ = cfg_.adaptive ? 0 : cfg_.fixed_mcs;
}

std::size_t AmcController::select(SnrProcess& link, SimTime t, Bits bits) {
  const SimTime when = std::max(0.0, t - cfg_.csi_delay_s);
  return select_from_snr(link.snr_db(when), bits);
}

std::size_t AmcController::select_from_snr(double snr_db, Bits bits) {
  if (!cfg_.adaptive) {
    last_ = cfg_.fixed_mcs;
    return last_;
  }
  const double snr = snr_db - cfg_.backoff_db;
  const auto pick = [&](double s) {
    return bits == 0 ? table_.best_for(s, cfg_.target_bler)
                     : table_.best_for_message(s, cfg_.target_bler, bits);
  };
  std::size_t candidate = pick(snr);
  if (candidate > last_) {
    // Upward switches must clear the switching point by the hysteresis margin;
    // downward switches are immediate (fail-fast under fades).
    candidate = std::max(pick(snr - cfg_.hysteresis_db), last_);
  }
  last_ = candidate;
  return last_;
}

}  // namespace wdc
