#include "phy/mcs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wdc {

double Mcs::bler(double snr_db) const {
  return 1.0 / (1.0 + std::exp((snr_db - gamma50_db) / slope_db));
}

double Mcs::snr_for_bler(double target) const {
  if (!(target > 0.0 && target < 1.0))
    throw std::invalid_argument("Mcs::snr_for_bler: target in (0,1)");
  return gamma50_db + slope_db * std::log((1.0 - target) / target);
}

McsTable::McsTable(std::vector<Mcs> schemes) : schemes_(std::move(schemes)) {
  if (schemes_.empty()) throw std::invalid_argument("McsTable: empty");
  for (std::size_t i = 1; i < schemes_.size(); ++i) {
    if (schemes_[i].rate_bps <= schemes_[i - 1].rate_bps)
      throw std::invalid_argument("McsTable: rates must be strictly increasing");
    if (schemes_[i].gamma50_db <= schemes_[i - 1].gamma50_db)
      throw std::invalid_argument("McsTable: thresholds must be strictly increasing");
  }
}

McsTable McsTable::edge(unsigned timeslots) {
  if (timeslots == 0) throw std::invalid_argument("McsTable::edge: timeslots >= 1");
  const double m = static_cast<double>(timeslots);
  // Per-timeslot EDGE rates (kb/s) and γ50 values placed so the 10%-BLER point of
  // each scheme lands at the classic EDGE switching thresholds (≈ 2.5 dB apart).
  std::vector<Mcs> v = {
      {"MCS-1", 8.8e3 * m, 1.0, 1.2},   {"MCS-2", 11.2e3 * m, 3.5, 1.2},
      {"MCS-3", 14.8e3 * m, 6.0, 1.2},  {"MCS-4", 17.6e3 * m, 8.5, 1.2},
      {"MCS-5", 22.4e3 * m, 11.0, 1.3}, {"MCS-6", 29.6e3 * m, 14.0, 1.3},
      {"MCS-7", 44.8e3 * m, 18.0, 1.4}, {"MCS-8", 54.4e3 * m, 21.5, 1.4},
      {"MCS-9", 59.2e3 * m, 24.5, 1.4},
  };
  return McsTable(std::move(v));
}

McsTable McsTable::wifi11b() {
  McsTable t({{"DSSS-1", 1e6, 1.0, 1.5},
              {"DSSS-2", 2e6, 4.0, 1.5},
              {"CCK-5.5", 5.5e6, 7.5, 1.5},
              {"CCK-11", 11e6, 10.5, 1.5}});
  t.set_block_bits(bits_from_bytes(256));  // WLAN fragment magnitude
  t.set_preamble_s(0.000192);              // long PLCP preamble
  return t;
}

McsTable McsTable::simple3() {
  return McsTable({{"LOW", 10e3, 0.0, 1.0},
                   {"MID", 50e3, 10.0, 1.0},
                   {"HIGH", 100e3, 20.0, 1.0}});
}

std::size_t McsTable::best_for(double snr_db, double target_bler) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < schemes_.size(); ++i)
    if (schemes_[i].bler(snr_db) <= target_bler) best = i;
  // If even scheme 0 misses the target we still return 0: transmissions always use
  // the most robust scheme as the floor (standard AMC behaviour).
  return best;
}

std::size_t McsTable::best_for_message(double snr_db, double frame_target,
                                       Bits bits) const {
  // Per-block target so that (1−b)^n >= 1−frame_target:
  //   b <= 1 − (1−frame_target)^(1/n).
  const double n = static_cast<double>(blocks_for(bits));
  const double per_block = 1.0 - std::pow(1.0 - frame_target, 1.0 / n);
  return best_for(snr_db, per_block);
}

double McsTable::airtime_s(Bits bits, std::size_t i) const {
  return preamble_s_ + static_cast<double>(bits) / schemes_.at(i).rate_bps;
}

std::size_t McsTable::blocks_for(Bits bits) const {
  if (bits == 0) return 1;
  return static_cast<std::size_t>((bits + block_bits_ - 1) / block_bits_);
}

double McsTable::decode_prob(Bits bits, std::size_t i, double snr_db) const {
  const double per_block_ok = 1.0 - schemes_.at(i).bler(snr_db);
  return std::pow(per_block_ok, static_cast<double>(blocks_for(bits)));
}

}  // namespace wdc
