#ifndef WDC_MAC_MESSAGE_HPP
#define WDC_MAC_MESSAGE_HPP

/// @file message.hpp
/// Downlink message model. The MAC treats payloads opaquely; protocols subclass
/// Payload to ship report contents (id lists, signatures, piggyback digests).

#include <cstdint>
#include <memory>

#include "util/types.hpp"

namespace wdc {

/// Downlink transmission classes, in strict priority order (lower = served first).
enum class MsgKind : std::uint8_t {
  kInvalidationReport = 0,  ///< full periodic IR
  kMiniReport = 1,          ///< UIR-style mini report
  kControl = 2,             ///< small per-client control messages (poll acks, …)
  kItemData = 3,            ///< database item broadcast after a cache miss
  kDownlinkData = 4,        ///< background downlink traffic (web, push, …)
};
inline constexpr std::size_t kNumMsgKinds = 5;

const char* to_string(MsgKind k);

/// Base class for protocol-defined message contents.
struct Payload {
  virtual ~Payload() = default;
};

struct Message {
  MsgKind kind = MsgKind::kDownlinkData;
  Bits bits = 0;
  /// Unicast destination; kInvalidClient means broadcast.
  ClientId dest = kInvalidClient;
  /// For kItemData: which item this transmission carries, and its version.
  ItemId item = kInvalidItem;
  Version version = 0;
  /// Piggyback digest space consumed on this frame (accounting; contents live in
  /// `payload`). Zero when the frame carries no digest.
  Bits piggyback_bits = 0;
  std::shared_ptr<const Payload> payload;

  bool is_broadcast() const { return dest == kInvalidClient; }
};

/// What a listening client learns about one completed downlink transmission.
struct Reception {
  const Message& msg;
  bool decoded;        ///< this client's decode outcome
  double airtime_s;    ///< how long the radio was occupied (energy accounting)
  std::size_t mcs;     ///< scheme the transmission used
};

}  // namespace wdc

#endif  // WDC_MAC_MESSAGE_HPP
