#ifndef WDC_MAC_UPLINK_HPP
#define WDC_MAC_UPLINK_HPP

/// @file uplink.hpp
/// Uplink request channel (client → server).
///
/// Cache-miss requests are short and ride a dedicated random-access channel, so the
/// model is a delay + contention-jitter pipe rather than a full MAC: delivery after
/// `base_delay_s` plus an exponential jitter whose mean grows linearly with the
/// number of requests currently in flight (a first-order contention effect).
/// The uplink is assumed reliable (ARQ on a tiny control message).

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wdc {

class FaultInjector;

struct UplinkConfig {
  double base_delay_s = 0.05;     ///< RACH + processing floor
  double jitter_mean_s = 0.02;    ///< mean exponential jitter per in-flight request
};

class UplinkChannel {
 public:
  UplinkChannel(Simulator& sim, UplinkConfig cfg, Rng rng);

  /// Send `bits` from `from`; `deliver` runs at the server when the request lands.
  /// A fault-injected drop silently swallows the request (the client's timeout
  /// and retry machinery is the recovery path, as on a real RACH).
  void send(ClientId from, Bits bits, std::function<void()> deliver);

  /// Optional fault layer (src/faults): when set, requests may vanish on the
  /// air. The drop check runs before the jitter draw, so the channel's Rng
  /// stream is untouched by requests that never make it.
  void set_fault_injector(FaultInjector* f) { faults_ = f; }

  std::uint64_t requests() const { return requests_; }
  Bits bits_sent() const { return bits_; }
  const Summary& delay() const { return delay_; }
  std::size_t in_flight() const { return in_flight_; }

 private:
  Simulator& sim_;
  UplinkConfig cfg_;
  Rng rng_;
  std::uint64_t requests_ = 0;
  Bits bits_ = 0;
  std::size_t in_flight_ = 0;
  Summary delay_;
  FaultInjector* faults_ = nullptr;
};

}  // namespace wdc

#endif  // WDC_MAC_UPLINK_HPP
