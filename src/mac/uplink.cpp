#include "mac/uplink.hpp"

#include <cmath>
#include <utility>

#include "faults/fault_injector.hpp"

namespace wdc {

UplinkChannel::UplinkChannel(Simulator& sim, UplinkConfig cfg, Rng rng)
    : sim_(sim), cfg_(cfg), rng_(rng) {}

void UplinkChannel::send(ClientId from, Bits bits, std::function<void()> deliver) {
  ++requests_;
  bits_ += bits;
  auto& tr = sim_.trace();
  if (tr.enabled())
    tr.emit(TraceEventKind::kUplinkSend, sim_.now(), from, kInvalidItem,
            static_cast<double>(bits));
  if (faults_ != nullptr && faults_->enabled() && faults_->drop_uplink(from)) {
    // Lost on the air: never enters the contention model, never delivers.
    if (tr.enabled())
      tr.emit(TraceEventKind::kFaultUplinkDrop, sim_.now(), from, kInvalidItem);
    return;
  }
  ++in_flight_;
  const double load = static_cast<double>(in_flight_);
  double delay = cfg_.base_delay_s;
  if (cfg_.jitter_mean_s > 0.0) {
    // Exponential jitter with mean scaled by the in-flight count.
    const double mean = cfg_.jitter_mean_s * load;
    delay += -mean * std::log1p(-rng_.uniform());
  }
  delay_.add(delay);
  sim_.schedule_in(delay, [this, fn = std::move(deliver)]() mutable {
    --in_flight_;
    fn();
  });
}

}  // namespace wdc
