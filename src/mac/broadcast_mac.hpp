#ifndef WDC_MAC_BROADCAST_MAC_HPP
#define WDC_MAC_BROADCAST_MAC_HPP

/// @file broadcast_mac.hpp
/// The shared downlink: one transmitter (the base station), many listeners.
///
/// * Strict-priority, FIFO-within-class transmit queues keyed by MsgKind — this is
///   where invalidation reports *compete with downlink traffic* for airtime.
/// * Link adaptation: every transmission picks an MCS at start time. Broadcast
///   messages use a coverage-percentile SNR reference over currently listening
///   clients; unicast messages use the destination's (CSI-delayed) SNR.
/// * Reception: each completed transmission is offered to every listening client
///   with an independent decode draw from the client's own SNR — a deep-faded
///   client can miss an IR, which is exactly the failure mode stateless
///   invalidation schemes are fragile to.
/// * Unicast ARQ: failed unicast frames retry (head-of-class) up to max_retx.

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "channel/snr_process.hpp"
#include "mac/message.hpp"
#include "phy/amc.hpp"
#include "phy/mcs.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"
#include "stats/time_weighted.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace wdc {

class FaultInjector;

struct MacConfig {
  AmcConfig amc;                     ///< link-adaptation settings (shared)
  double broadcast_percentile = 0.25;///< design coverage percentile of listener SNR
  unsigned max_retx = 3;             ///< unicast ARQ retry cap
};

/// A registered listener (one per client).
struct ClientPort {
  /// The client's downlink SNR process (owned by the caller, must outlive the MAC).
  SnrProcess* link = nullptr;
  /// Is the client's radio on right now?
  std::function<bool()> is_listening;
  /// Called for every transmission completed while listening.
  std::function<void(const Reception&)> on_reception;
};

/// Per-kind MAC statistics.
struct MacKindStats {
  std::uint64_t enqueued = 0;
  std::uint64_t transmitted = 0;  ///< transmissions incl. retries
  std::uint64_t completed = 0;    ///< messages leaving the MAC (delivered/abandoned)
  std::uint64_t dropped = 0;      ///< unicast frames abandoned after max_retx
  double airtime_s = 0.0;
  Bits bits = 0;
  Summary queue_delay;            ///< enqueue → start of first transmission

  /// Fold another cell's per-kind stats into this one (sharded metrics merge;
  /// merging into a default-constructed instance is a bit-exact copy).
  void merge_from(const MacKindStats& other) {
    enqueued += other.enqueued;
    transmitted += other.transmitted;
    completed += other.completed;
    dropped += other.dropped;
    airtime_s += other.airtime_s;
    bits += other.bits;
    queue_delay.merge(other.queue_delay);
  }
};

class BroadcastMac {
 public:
  BroadcastMac(Simulator& sim, const McsTable& table, MacConfig cfg, Rng rng);

  BroadcastMac(const BroadcastMac&) = delete;
  BroadcastMac& operator=(const BroadcastMac&) = delete;

  /// Register a client; returns its id (dense, in registration order).
  ClientId register_client(ClientPort port);

  /// Server-side observer invoked after every completed transmission (before
  /// listener delivery): protocols use it to clear pending-broadcast state and to
  /// learn the actual airtime/MCS of their reports.
  using TxObserver = std::function<void(const Message&, std::size_t mcs,
                                        double airtime_s)>;
  void set_tx_observer(TxObserver obs) { tx_observer_ = std::move(obs); }

  /// Optional fault layer (src/faults): when set, decoded receptions may be
  /// erased per client. The decode draw always happens first, so the MAC's Rng
  /// stream is identical whether or not faults then suppress the outcome.
  void set_fault_injector(FaultInjector* f) { faults_ = f; }

  /// Queue a message for transmission.
  void enqueue(Message msg);

  /// Number of queued messages of the given kind (excludes the in-flight one).
  std::size_t queued(MsgKind kind) const;
  bool busy() const { return current_.has_value(); }

  /// Coverage-reference SNR the broadcast link adaptation would use at time `t`
  /// (the percentile over listening clients). Exposed so LAIR can peek at the
  /// channel before committing a report to the queue.
  double broadcast_reference_snr(SimTime t) const;

  /// MCS the AMC would choose for a broadcast message of `bits` at time `t`
  /// (default: a typical small report).
  std::size_t broadcast_mcs_hint(SimTime t, Bits bits = 2048);

  const MacKindStats& stats(MsgKind kind) const;
  /// Fraction of time the transmitter was busy, measured up to `t`.
  double busy_fraction(SimTime t) const { return busy_tw_.average(t); }
  const McsTable& table() const { return table_; }
  const MacConfig& config() const { return cfg_; }

  /// Mean MCS index used for broadcast transmissions (rate-adaptation telemetry).
  const Summary& broadcast_mcs_used() const { return bcast_mcs_; }

  /// Slot-accounting audit: every enqueued message is exactly one of queued,
  /// in flight, or completed; drop/transmit counters stay consistent; the
  /// busy-time tracker agrees with the in-flight slot. Trips a WDC_CHECK on
  /// violation; no-op when checks are compiled out.
  void audit() const;

 private:
  /// Full audits are amortised: one every kAuditPeriod mutations.
  static constexpr std::uint64_t kAuditPeriod = 64;

  void maybe_audit() const;
  struct Queued {
    Message msg;
    SimTime enqueued_at;
    unsigned attempts = 0;
  };
  struct InFlight {
    Queued q;
    std::size_t mcs;
    double airtime_s;
  };

  void try_start();
  void finish();
  std::size_t pick_mcs(const Message& msg);

  Simulator& sim_;
  const McsTable& table_;
  MacConfig cfg_;
  Rng rng_;

  std::array<std::deque<Queued>, kNumMsgKinds> queues_;
  std::optional<InFlight> current_;

  struct PortEntry {
    ClientPort port;
    AmcController amc;  ///< per-destination hysteresis state for unicast
  };
  std::vector<PortEntry> ports_;
  AmcController bcast_amc_;

  /// Sentinel for "no broadcast transmitted yet" (MCS-switch trace events
  /// compare against the previous broadcast MCS).
  static constexpr std::size_t kNoMcsYet = static_cast<std::size_t>(-1);

  std::array<MacKindStats, kNumMsgKinds> kind_stats_;
  TimeWeighted busy_tw_;
  Summary bcast_mcs_;
  std::size_t last_bcast_mcs_ = kNoMcsYet;
  TxObserver tx_observer_;
  FaultInjector* faults_ = nullptr;
  mutable std::uint64_t mutations_ = 0;
};

}  // namespace wdc

#endif  // WDC_MAC_BROADCAST_MAC_HPP
