#include "mac/broadcast_mac.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "faults/fault_injector.hpp"

namespace wdc {

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::kInvalidationReport: return "IR";
    case MsgKind::kMiniReport: return "UIR";
    case MsgKind::kControl: return "CTRL";
    case MsgKind::kItemData: return "ITEM";
    case MsgKind::kDownlinkData: return "DATA";
  }
  return "?";
}

BroadcastMac::BroadcastMac(Simulator& sim, const McsTable& table, MacConfig cfg,
                           Rng rng)
    : sim_(sim), table_(table), cfg_(cfg), rng_(rng), bcast_amc_(table, cfg.amc) {
  if (!(cfg_.broadcast_percentile >= 0.0 && cfg_.broadcast_percentile <= 1.0))
    throw std::invalid_argument("MacConfig: broadcast_percentile in [0,1]");
}

ClientId BroadcastMac::register_client(ClientPort port) {
  if (port.link == nullptr || !port.is_listening || !port.on_reception)
    throw std::invalid_argument("BroadcastMac: incomplete ClientPort");
  ports_.push_back(PortEntry{std::move(port), AmcController(table_, cfg_.amc)});
  return static_cast<ClientId>(ports_.size() - 1);
}

void BroadcastMac::enqueue(Message msg) {
  WDC_ASSERT(msg.is_broadcast() || msg.dest < ports_.size(),
             "unicast ", to_string(msg.kind), " to unregistered client ", msg.dest);
  const auto k = static_cast<std::size_t>(msg.kind);
  kind_stats_[k].enqueued++;
  queues_[k].push_back(Queued{std::move(msg), sim_.now(), 0});
  try_start();
  maybe_audit();
}

std::size_t BroadcastMac::queued(MsgKind kind) const {
  return queues_[static_cast<std::size_t>(kind)].size();
}

double BroadcastMac::broadcast_reference_snr(SimTime t) const {
  // p-th percentile of listening clients' instantaneous SNR. With nobody
  // listening, fall back to the full population so the reference stays defined.
  std::vector<double> snrs;
  snrs.reserve(ports_.size());
  for (const auto& pe : ports_)
    if (pe.port.is_listening()) snrs.push_back(pe.port.link->snr_db(t));
  if (snrs.empty())
    for (const auto& pe : ports_) snrs.push_back(pe.port.link->snr_db(t));
  if (snrs.empty()) return 0.0;
  std::sort(snrs.begin(), snrs.end());
  const double pos = cfg_.broadcast_percentile * static_cast<double>(snrs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, snrs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return snrs[lo] * (1.0 - frac) + snrs[hi] * frac;
}

std::size_t BroadcastMac::broadcast_mcs_hint(SimTime t, Bits bits) {
  const SimTime when = std::max(0.0, t - cfg_.amc.csi_delay_s);
  return bcast_amc_.select_from_snr(broadcast_reference_snr(when), bits);
}

std::size_t BroadcastMac::pick_mcs(const Message& msg) {
  const SimTime when = std::max(0.0, sim_.now() - cfg_.amc.csi_delay_s);
  if (msg.is_broadcast())
    return bcast_amc_.select_from_snr(broadcast_reference_snr(when), msg.bits);
  auto& pe = ports_.at(msg.dest);
  return pe.amc.select_from_snr(pe.port.link->snr_db(when), msg.bits);
}

void BroadcastMac::try_start() {
  if (current_.has_value()) return;
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    Queued q = std::move(queue.front());
    queue.pop_front();
    const auto k = static_cast<std::size_t>(q.msg.kind);
    if (q.attempts == 0)
      kind_stats_[k].queue_delay.add(sim_.now() - q.enqueued_at);
    const std::size_t mcs = pick_mcs(q.msg);
    const double airtime = table_.airtime_s(q.msg.bits, mcs);
    if (q.msg.is_broadcast()) {
      bcast_mcs_.add(static_cast<double>(mcs));
      auto& tr = sim_.trace();
      if (tr.enabled() && last_bcast_mcs_ != kNoMcsYet && mcs != last_bcast_mcs_)
        tr.emit(TraceEventKind::kMcsSwitch, sim_.now(), kInvalidClient,
                kInvalidItem, static_cast<double>(mcs),
                static_cast<double>(last_bcast_mcs_));
      last_bcast_mcs_ = mcs;
    }
    current_ = InFlight{std::move(q), mcs, airtime};
    busy_tw_.update(sim_.now(), 1.0);
    sim_.schedule_in(airtime, [this] { finish(); }, EventPriority::kTxDone);
    return;
  }
}

void BroadcastMac::finish() {
  WDC_ASSERT(current_.has_value(), "transmission-complete with no frame in flight");
  InFlight fl = std::move(*current_);
  current_.reset();
  busy_tw_.update(sim_.now(), 0.0);

  WDC_ASSERT(fl.airtime_s > 0.0, "in-flight ", to_string(fl.q.msg.kind),
             " frame with non-positive airtime ", fl.airtime_s);
  WDC_ASSERT(fl.q.attempts == 0 || fl.q.attempts < cfg_.max_retx,
             "frame finished retry ", fl.q.attempts, " past the ARQ cap ",
             cfg_.max_retx);
  const auto k = static_cast<std::size_t>(fl.q.msg.kind);
  kind_stats_[k].transmitted++;
  kind_stats_[k].airtime_s += fl.airtime_s;
  kind_stats_[k].bits += fl.q.msg.bits;

  if (tx_observer_) tx_observer_(fl.q.msg, fl.mcs, fl.airtime_s);

  // Offer the completed transmission to every listening client with an
  // independent decode draw (broadcast medium: everyone overhears everything).
  bool dest_decoded = false;
  const SimTime t = sim_.now();
  for (std::size_t c = 0; c < ports_.size(); ++c) {
    auto& pe = ports_[c];
    if (!pe.port.is_listening()) continue;
    const double snr = pe.port.link->snr_db(t);
    const double p_ok = table_.decode_prob(fl.q.msg.bits, fl.mcs, snr);
    const bool decoded = rng_.bernoulli(p_ok);
    // Fault erasure applies AFTER the (unconditional) decode draw: an erased
    // reception looks exactly like a PHY decode failure downstream, and a
    // faulted unicast frame re-enters ARQ like any other loss.
    const bool faulted = faults_ != nullptr && faults_->enabled() && decoded &&
                         faults_->drop_downlink(static_cast<ClientId>(c),
                                                fl.q.msg.kind, t);
    const bool ok = decoded && !faulted;
    if (faulted) {
      auto& tr = sim_.trace();
      if (tr.enabled())
        tr.emit(TraceEventKind::kFaultDownlinkDrop, t,
                static_cast<ClientId>(c), fl.q.msg.item,
                static_cast<double>(fl.q.msg.kind));
    }
    if (ok && c == fl.q.msg.dest) dest_decoded = true;
    const Reception rx{fl.q.msg, ok, fl.airtime_s, fl.mcs};
    pe.port.on_reception(rx);
  }

  // Unicast ARQ: retry failed frames at the head of their class.
  if (!fl.q.msg.is_broadcast() && !dest_decoded) {
    const bool dest_listening =
        fl.q.msg.dest < ports_.size() && ports_[fl.q.msg.dest].port.is_listening();
    if (dest_listening && fl.q.attempts + 1 < cfg_.max_retx) {
      fl.q.attempts++;
      queues_[k].push_front(std::move(fl.q));
    } else {
      kind_stats_[k].dropped++;
      kind_stats_[k].completed++;
    }
  } else {
    kind_stats_[k].completed++;
  }

  try_start();
  maybe_audit();
}

void BroadcastMac::maybe_audit() const {
#if WDC_CHECKS_ENABLED
  if ((++mutations_ % kAuditPeriod) == 0) audit();
#endif
}

void BroadcastMac::audit() const {
#if WDC_CHECKS_ENABLED
  const auto in_flight_kind =
      current_.has_value() ? static_cast<std::size_t>(current_->q.msg.kind)
                           : kNumMsgKinds;
  for (std::size_t k = 0; k < kNumMsgKinds; ++k) {
    const auto& st = kind_stats_[k];
    const std::uint64_t in_system =
        queues_[k].size() + (k == in_flight_kind ? 1u : 0u);
    // Conservation: every enqueued message is queued, in flight, or completed.
    WDC_CHECK(st.enqueued == in_system + st.completed, to_string(MsgKind(k)),
              ": enqueued=", st.enqueued, " but queued=", queues_[k].size(),
              " + in-flight=", (k == in_flight_kind ? 1 : 0),
              " + completed=", st.completed);
    WDC_CHECK(st.dropped <= st.completed, to_string(MsgKind(k)), ": dropped=",
              st.dropped, " exceeds completed=", st.completed);
    WDC_CHECK(st.transmitted + in_system >= st.enqueued, to_string(MsgKind(k)),
              ": transmitted=", st.transmitted, " too small for enqueued=",
              st.enqueued, " with ", in_system, " in the system");
    WDC_CHECK(st.queue_delay.count() <= st.enqueued, to_string(MsgKind(k)),
              ": ", st.queue_delay.count(), " first-transmission samples for ",
              st.enqueued, " enqueued messages");
  }
  // The busy-time tracker mirrors the transmitter slot.
  WDC_CHECK((busy_tw_.current() != 0.0) == current_.has_value(),
            "busy tracker at ", busy_tw_.current(), " with in-flight=",
            current_.has_value());
  if (current_.has_value())
    WDC_CHECK(current_->q.msg.is_broadcast() ||
                  current_->q.msg.dest < ports_.size(),
              "in-flight unicast frame to unregistered client ",
              current_->q.msg.dest);
#endif
}

const MacKindStats& BroadcastMac::stats(MsgKind kind) const {
  return kind_stats_[static_cast<std::size_t>(kind)];
}

}  // namespace wdc
