#include "stats/table.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace wdc {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::begin_row() { rows_.emplace_back(); }

void Table::cell(std::string value) {
  if (rows_.empty()) throw std::logic_error("Table::cell before begin_row");
  if (rows_.back().size() >= columns_.size())
    throw std::logic_error("Table::cell: row already full");
  rows_.back().push_back(std::move(value));
}

void Table::cell(double value, int precision) {
  cell(strfmt("%.*f", precision, value));
}

void Table::cell(std::uint64_t value) {
  cell(strfmt("%llu", static_cast<unsigned long long>(value)));
}

void Table::cell_ci(double mean, double half_width, int precision) {
  cell(strfmt("%.*f ± %.*f", precision, mean, precision, half_width));
}

void Table::print_text(std::ostream& os, const std::string& indent) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& cells) {
    os << indent;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << v << std::string(widths[c] - v.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(columns_);
  os << indent;
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << std::string(widths[c], '-') << "  ";
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << (c ? "," : "") << csv_escape(columns_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c)
      os << (c ? "," : "") << (c < row.size() ? csv_escape(row[c]) : std::string());
    os << '\n';
  }
}

void Table::print_markdown(std::ostream& os) const {
  os << '|';
  for (const auto& c : columns_) os << ' ' << c << " |";
  os << "\n|";
  for (std::size_t c = 0; c < columns_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c)
      os << ' ' << (c < row.size() ? row[c] : std::string()) << " |";
    os << '\n';
  }
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  print_csv(out);
  return static_cast<bool>(out);
}

}  // namespace wdc
