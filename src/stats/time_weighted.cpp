#include "stats/time_weighted.hpp"

#include <cassert>

namespace wdc {

void TimeWeighted::update(SimTime t, double value) {
  assert(t >= last_time_ && "TimeWeighted: time must not go backwards");
  area_ += value_ * (t - last_time_);
  last_time_ = t;
  value_ = value;
}

double TimeWeighted::average(SimTime t) const {
  assert(t >= last_time_);
  const SimTime span = t - t0_;
  if (span <= 0.0) return value_;
  return (area_ + value_ * (t - last_time_)) / span;
}

}  // namespace wdc
