#include "stats/time_weighted.hpp"

#include "util/check.hpp"

namespace wdc {

void TimeWeighted::update(SimTime t, double value) {
  WDC_ASSERT(t >= last_time_, "TimeWeighted: time went backwards: ", t,
             " after ", last_time_);
  area_ += value_ * (t - last_time_);
  last_time_ = t;
  value_ = value;
}

double TimeWeighted::average(SimTime t) const {
  WDC_ASSERT(t >= last_time_, "TimeWeighted: average at ", t,
             " before the last update at ", last_time_);
  const SimTime span = t - t0_;
  if (span <= 0.0) return value_;
  return (area_ + value_ * (t - last_time_)) / span;
}

}  // namespace wdc
