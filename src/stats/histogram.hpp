#ifndef WDC_STATS_HISTOGRAM_HPP
#define WDC_STATS_HISTOGRAM_HPP

/// @file histogram.hpp
/// Fixed-width histogram with overflow bin and linear-interpolated quantiles.
/// Used for query-latency distributions (paper-style percentile reporting).

#include <cstdint>
#include <vector>

namespace wdc {

class Histogram {
 public:
  /// Bins of width (hi-lo)/nbins over [lo, hi); samples outside go to under/overflow.
  Histogram(double lo, double hi, std::size_t nbins);

  void add(double x);
  void merge(const Histogram& other);

  std::uint64_t count() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::size_t nbins() const { return bins_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return bins_[i]; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Quantile q in [0,1] via linear interpolation within the containing bin.
  /// Returns lo()/hi() bounds for quantiles falling in under/overflow.
  double quantile(double q) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace wdc

#endif  // WDC_STATS_HISTOGRAM_HPP
