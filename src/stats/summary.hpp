#ifndef WDC_STATS_SUMMARY_HPP
#define WDC_STATS_SUMMARY_HPP

/// @file summary.hpp
/// Streaming scalar summary (Welford): count, mean, variance, min, max.
/// Numerically stable for the millions of samples a long simulation produces.

#include <cstdint>
#include <limits>

namespace wdc {

class Summary {
 public:
  void add(double x);
  /// Merge another summary into this one (parallel reduction of replications).
  void merge(const Summary& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than 2 samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace wdc

#endif  // WDC_STATS_SUMMARY_HPP
