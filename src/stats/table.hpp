#ifndef WDC_STATS_TABLE_HPP
#define WDC_STATS_TABLE_HPP

/// @file table.hpp
/// Results table used by every benchmark harness: named columns, rows of cells,
/// rendered as aligned plain text (what the harness prints), CSV (for plotting), or
/// Markdown (for EXPERIMENTS.md). Cells are strings; numeric helpers format with a
/// chosen precision so the printed series look like a paper's table.

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace wdc {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Begin a new row; subsequent cell() calls fill it left to right.
  void begin_row();
  void cell(std::string value);
  void cell(const char* value) { cell(std::string(value)); }
  void cell(double value, int precision = 4);
  void cell(std::uint64_t value);
  void cell(int value) { cell(static_cast<std::uint64_t>(value)); }
  /// "mean ± hw" cell.
  void cell_ci(double mean, double half_width, int precision = 4);

  /// Render with space-padded columns; `indent` prefixes every line.
  void print_text(std::ostream& os, const std::string& indent = "") const;
  void print_csv(std::ostream& os) const;
  void print_markdown(std::ostream& os) const;

  /// Write CSV to a file (creates/truncates). Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wdc

#endif  // WDC_STATS_TABLE_HPP
