#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace wdc {

void Summary::add(double x) {
  // One NaN would silently poison every downstream mean/CI; fail loudly instead.
  WDC_ASSERT(!std::isnan(x), "Summary::add(NaN) after ", n_, " samples");
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel variance combination.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::stddev() const { return std::sqrt(variance()); }

}  // namespace wdc
