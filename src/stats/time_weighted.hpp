#ifndef WDC_STATS_TIME_WEIGHTED_HPP
#define WDC_STATS_TIME_WEIGHTED_HPP

/// @file time_weighted.hpp
/// Time-weighted average of a piecewise-constant signal (queue lengths, channel
/// occupancy, cache validity fraction, …).

#include "util/types.hpp"

namespace wdc {

class TimeWeighted {
 public:
  /// @param t0      time at which the signal starts being observed
  /// @param initial signal value on [t0, first update)
  explicit TimeWeighted(SimTime t0 = 0.0, double initial = 0.0)
      : t0_(t0), last_time_(t0), value_(initial) {}

  /// Record that the signal changed to `value` at time `t` (t >= last update time).
  void update(SimTime t, double value);

  /// Time average over [t0, t]; `t` must be >= the last update time. Returns the
  /// current value if no time has elapsed.
  double average(SimTime t) const;

  double current() const { return value_; }

 private:
  SimTime t0_;
  SimTime last_time_;
  double value_;
  double area_ = 0.0;
};

}  // namespace wdc

#endif  // WDC_STATS_TIME_WEIGHTED_HPP
