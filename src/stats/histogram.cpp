#include "stats/histogram.hpp"

#include <cmath>
#include <stdexcept>

namespace wdc {

Histogram::Histogram(double lo, double hi, std::size_t nbins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(nbins)), bins_(nbins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (nbins == 0) throw std::invalid_argument("Histogram: nbins must be > 0");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= bins_.size()) i = bins_.size() - 1;  // guard FP edge
    ++bins_[i];
  }
}

void Histogram::merge(const Histogram& other) {
  if (other.bins_.size() != bins_.size() || other.lo_ != lo_ || other.hi_ != hi_)
    throw std::invalid_argument("Histogram::merge: incompatible layout");
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  if (q <= 0.0) return lo_;
  if (q >= 1.0) return hi_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double c = static_cast<double>(bins_[i]);
    if (cum + c >= target) {
      const double frac = c > 0 ? (target - cum) / c : 0.0;
      return bin_lo(i) + frac * width_;
    }
    cum += c;
  }
  return hi_;
}

}  // namespace wdc
