#include "stats/ci.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/summary.hpp"

namespace wdc {

double ConfidenceInterval::relative() const {
  return mean != 0.0 ? half_width / std::fabs(mean) : 0.0;
}

namespace {

// Inverse standard-normal CDF (Acklam's rational approximation, ~1e-9 accurate).
double inv_normal_cdf(double p) {
  if (!(p > 0.0 && p < 1.0)) throw std::invalid_argument("inv_normal_cdf: p in (0,1)");
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

double student_t_critical(std::size_t df, double conf) {
  if (df == 0) throw std::invalid_argument("student_t_critical: df must be > 0");
  if (!(conf > 0.0 && conf < 1.0))
    throw std::invalid_argument("student_t_critical: conf in (0,1)");
  // Exact 95%/99% values for small df; otherwise the Peiser expansion around the
  // normal quantile, accurate to ~1e-3 for df >= 3 (ample for CI reporting).
  const double z = inv_normal_cdf(0.5 + conf / 2.0);
  if (df >= 30) return z;
  static const double t95[] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
                               2.306,  2.262, 2.228, 2.201, 2.179, 2.160, 2.145,
                               2.131,  2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
                               2.074,  2.069, 2.064, 2.060, 2.056, 2.052, 2.048,
                               2.045};
  if (conf > 0.949 && conf < 0.951 && df <= 29) return t95[df - 1];
  // Peiser correction: t ≈ z + (z^3+z)/(4 df) + higher-order terms.
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double dfd = static_cast<double>(df);
  return z + (z3 + z) / (4.0 * dfd) +
         (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * dfd * dfd);
}

ConfidenceInterval confidence_interval(const std::vector<double>& samples, double conf) {
  ConfidenceInterval ci;
  ci.n = samples.size();
  if (samples.empty()) return ci;
  Summary s;
  for (double x : samples) s.add(x);
  ci.mean = s.mean();
  if (samples.size() < 2) return ci;
  const double t = student_t_critical(samples.size() - 1, conf);
  ci.half_width = t * s.stddev() / std::sqrt(static_cast<double>(samples.size()));
  return ci;
}

}  // namespace wdc
