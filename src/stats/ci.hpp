#ifndef WDC_STATS_CI_HPP
#define WDC_STATS_CI_HPP

/// @file ci.hpp
/// Student-t confidence intervals across independent replications — the standard
/// way simulation papers report "mean ± half-width (95%)".

#include <cstddef>
#include <vector>

namespace wdc {

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  ///< 0 when fewer than 2 replications
  std::size_t n = 0;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
  /// Half-width as a fraction of |mean| (relative precision); 0 if mean is 0.
  double relative() const;
};

/// Two-sided Student-t critical value t_{df, (1+conf)/2}. Exact table for small df,
/// Cornish–Fisher style normal correction for large df. conf in (0,1), e.g. 0.95.
double student_t_critical(std::size_t df, double conf);

/// CI of the mean of `samples` at confidence level `conf` (default 95%).
ConfidenceInterval confidence_interval(const std::vector<double>& samples,
                                       double conf = 0.95);

}  // namespace wdc

#endif  // WDC_STATS_CI_HPP
