#ifndef WDC_FAULTS_FAULT_CONFIG_HPP
#define WDC_FAULTS_FAULT_CONFIG_HPP

/// @file fault_config.hpp
/// Runtime configuration and counters of the fault-injection subsystem.
///
/// Like TraceConfig, this struct is compiled unconditionally — scenarios and
/// sweeps parse identically whether the injector itself is built in
/// (-DWDC_FAULTS=ON, the default) or stripped (-DWDC_FAULTS=OFF); a stripped
/// build simply ignores it. The default (`enabled = false`) is digest-inert:
/// no randomness is consumed and no behaviour changes, so golden digests hold
/// bit-identically with the layer compiled in, disabled, or compiled out.

#include <cstdint>
#include <string>

#include "faults/fault_schedule.hpp"

namespace wdc {

/// How per-client downlink reception loss is drawn.
enum class FaultLossMode {
  kBernoulli,  ///< i.i.d. loss per reception
  kBurst,      ///< Gilbert–Elliott gated: losses only while the client's
               ///< two-state burst process is Bad (channel/gilbert_elliott)
};

FaultLossMode fault_loss_mode_from_string(const std::string& name);
std::string to_string(FaultLossMode m);

/// Cache disposition when a churned client reconnects.
enum class RejoinPolicy {
  kSuspect,  ///< keep entries, but nothing is certified until the next report
             ///< decides (window covered → invalidate-and-certify; gap too
             ///< long → Barbara–Imielinski full-cache drop)
  kCold,     ///< restart from an empty, unsynchronised cache
};

RejoinPolicy rejoin_policy_from_string(const std::string& name);
std::string to_string(RejoinPolicy p);

/// Deterministic, scenario-driven fault schedule (part of Scenario; config
/// keys `faults`, `fault_*` — see README). All probabilities are *additional*
/// impairments on top of the PHY decode model: a faulted reception is an
/// erasure at the radio, so it still costs listen airtime and still counts in
/// report-loss accounting.
struct FaultConfig {
  bool enabled = false;  ///< master runtime switch

  // --- downlink reception loss (per client, per completed transmission) ---
  FaultLossMode loss_mode = FaultLossMode::kBernoulli;
  double ir_loss = 0.0;     ///< loss prob. for report receptions (full + mini)
  double bcast_loss = 0.0;  ///< loss prob. for item/data/control receptions
  double burst_mean_good_s = 30.0;  ///< burst mode: mean Good sojourn
  double burst_mean_bad_s = 3.0;    ///< burst mode: mean Bad sojourn

  // --- uplink request drop ---
  double uplink_drop = 0.0;  ///< prob. a request vanishes on the air
  /// Client-side recovery: each re-request multiplies the timeout by
  /// backoff_mult (capped at backoff_cap_s). With faults disabled the plain
  /// request_timeout_s applies, bit-identically.
  double backoff_mult = 2.0;
  double backoff_cap_s = 120.0;

  // --- client churn (disconnect / rejoin) ---
  double churn_rate = 0.0;  ///< disconnects per client per second (0 disables)
  double churn_mean_down_s = 30.0;  ///< mean disconnection window
  RejoinPolicy rejoin = RejoinPolicy::kSuspect;

  // --- scripted incident replay ---
  /// Deterministic event timeline layered on top of (or instead of) the
  /// random axes above (`fault_schedule=<path>` scenario key). An empty
  /// schedule is digest-inert. Scripted disconnect windows are mutually
  /// exclusive with random churn (churn_rate > 0) — mixing the two would make
  /// the scripted windows collide with churn's own connectivity state.
  FaultSchedule schedule;

  /// Cross-field sanity; throws std::invalid_argument on nonsense.
  void validate() const;
};

/// Counters the injector accumulates over one run. Surfaced in Metrics (and
/// therefore replication means and wdc_bench JSON) but — like the kernel perf
/// counters — excluded from metrics_digest(), so builds with the layer
/// compiled in and compiled out digest identically.
struct FaultStats {
  std::uint64_t ir_drops = 0;      ///< report receptions suppressed
  std::uint64_t bcast_drops = 0;   ///< item/data/control receptions suppressed
  std::uint64_t uplink_drops = 0;  ///< uplink requests lost
  std::uint64_t churn_events = 0;  ///< client disconnects
  std::uint64_t rejoins = 0;       ///< client reconnects
  std::uint64_t recoveries = 0;    ///< consistency re-established post-rejoin
  double recovery_time_s = 0.0;    ///< summed rejoin → consistency-point time
  /// Cache entries invalidated or dropped at a post-rejoin recovery point —
  /// copies that were exposed as potentially stale during the outage.
  std::uint64_t stale_exposure = 0;
  // --- incident replay / byzantine corruption ---
  std::uint64_t corrupt_rejected = 0;  ///< damaged frames the codec caught
  std::uint64_t corrupt_accepted = 0;  ///< damaged frames that still decoded
                                       ///< (canary — expected to stay 0)
  std::uint64_t server_crashes = 0;    ///< scripted server down edges
  std::uint64_t server_recoveries = 0; ///< scripted server up edges
  /// Scripted point events whose exact timestamp never matched a hook call —
  /// a replay drifting from its recording shows up here, not silently.
  std::uint64_t schedule_misses = 0;

  /// Fold another injector's counters into this one (sharded metrics merge —
  /// each cell owns an independent injector; totals are plain sums).
  void merge_from(const FaultStats& other) {
    ir_drops += other.ir_drops;
    bcast_drops += other.bcast_drops;
    uplink_drops += other.uplink_drops;
    churn_events += other.churn_events;
    rejoins += other.rejoins;
    recoveries += other.recoveries;
    recovery_time_s += other.recovery_time_s;
    stale_exposure += other.stale_exposure;
    corrupt_rejected += other.corrupt_rejected;
    corrupt_accepted += other.corrupt_accepted;
    server_crashes += other.server_crashes;
    server_recoveries += other.server_recoveries;
    schedule_misses += other.schedule_misses;
  }
};

}  // namespace wdc

#endif  // WDC_FAULTS_FAULT_CONFIG_HPP
