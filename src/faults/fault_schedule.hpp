#ifndef WDC_FAULTS_FAULT_SCHEDULE_HPP
#define WDC_FAULTS_FAULT_SCHEDULE_HPP

/// @file fault_schedule.hpp
/// Deterministic, file-scripted incident timelines for the fault injector.
///
/// A FaultSchedule is a sorted list of scripted fault events — the replayable
/// complement to the injector's randomized axes (fault_config.hpp). Where the
/// random axes answer "how does protocol X degrade under p% loss on average",
/// a schedule answers "what happens in *this* incident, every time": a
/// specific blackout, a base-station restart, a server crash, a byzantine
/// corruption burst — observed once (in a `.wdct` trace or a live system),
/// distilled, and replayed forever as a regression test.
///
/// Like FaultConfig, this module is compiled unconditionally (pure data +
/// text I/O, no simulator dependency) so scenario files parse identically in
/// stripped (-DWDC_FAULTS=OFF) builds; only the injector that *acts* on a
/// schedule is compile-time gated.
///
/// ## File format (`.wdcsched`)
///
/// Line-oriented text. First non-comment line is the header
///
///     wdcsched v1 <count>
///
/// where <count> is the number of event lines that must follow — a truncated
/// file is rejected, mirroring the report codec's strictness. Each event line
/// is a kind word followed by `key=value` tokens; `#` starts a comment; blank
/// lines are ignored. Events must be sorted by non-decreasing start time.
/// Times are seconds; doubles serialize with %.17g so parse→serialize→parse
/// is bit-exact.
///
///     loss       client=<id|all> t0=<s> t1=<s> rate=<p> msgs=<report|data|all>
///     outage     t0=<s> t1=<s>             # cell-wide: all clients, rate 1
///     crash      t0=<s> t1=<s>             # server down, recovery at t1
///     corrupt    client=<id|all> t0=<s> t1=<s> rate=<p>
///     disconnect client=<id> t0=<s> t1=<s>
///     drop       client=<id> t=<s> msgs=<report|data>   # one exact reception
///     updrop     client=<id> t=<s> [n=<k>]              # one exact request
///     corruptat  client=<id> t=<s>                      # one exact corruption
///
/// Windows are half-open [t0, t1). Point events match one hook call at
/// exactly `t` (bit-equal doubles — distillation writes the trace's own
/// timestamps back, and %.17g round-trips them losslessly); a point whose
/// time passes unmatched is counted in FaultStats::schedule_misses.
///
/// `updrop` carries an optional ordinal `n` (default 0): one client can send
/// several uplink requests in the SAME simulation instant (a report answering
/// multiple pending misses at once), and the timestamp alone cannot say which
/// of them was lost. `n=k` matches the k-th send (0-based) of that client at
/// exactly `t`. Downlink receptions serialize through the broadcast MAC's
/// airtime, so drop/corruptat points never need one.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_event.hpp"
#include "util/types.hpp"

namespace wdc {

/// What a scripted event does. Window kinds span [t0, t1); point kinds fire
/// on the single hook call at exactly t0 (t1 == t0).
enum class FaultScheduleKind : std::uint8_t {
  kLossWindow,     ///< "loss": downlink receptions erased at `rate`
  kOutage,         ///< "outage": cell-wide blackout — every client, rate 1
  kServerCrash,    ///< "crash": server down t0..t1, report-log replay at t1
  kCorruptWindow,  ///< "corrupt": report frames corrupted at `rate`
  kDisconnect,     ///< "disconnect": scripted churn window for one client
  kDropPoint,      ///< "drop": erase the one reception at exactly t
  kUplinkDropPoint,   ///< "updrop": drop the one uplink request at exactly t
  kCorruptPoint,      ///< "corruptat": corrupt the one reception at exactly t
};

/// Which message kinds a loss window / drop point applies to.
enum class FaultMsgClass : std::uint8_t {
  kReport,  ///< invalidation + mini reports
  kData,    ///< item / data / control frames
  kAll,
};

FaultMsgClass fault_msg_class_from_string(const std::string& name);
std::string to_string(FaultMsgClass m);

/// One scripted event. `client == kInvalidClient` means "all clients" (only
/// meaningful for loss/corrupt windows; outage is implicitly all-clients).
struct FaultScheduleEvent {
  FaultScheduleKind kind = FaultScheduleKind::kLossWindow;
  ClientId client = kInvalidClient;
  SimTime t0 = 0.0;
  SimTime t1 = 0.0;                         ///< == t0 for point events
  double rate = 1.0;                        ///< window drop/corrupt probability
  FaultMsgClass msgs = FaultMsgClass::kAll;
  /// kUplinkDropPoint only: which of the client's same-instant sends to drop
  /// (0-based). Zero for every other kind.
  std::uint32_t ordinal = 0;

  bool is_point() const {
    return kind == FaultScheduleKind::kDropPoint ||
           kind == FaultScheduleKind::kUplinkDropPoint ||
           kind == FaultScheduleKind::kCorruptPoint;
  }
  bool is_window() const { return !is_point(); }

  friend bool operator==(const FaultScheduleEvent&,
                         const FaultScheduleEvent&) = default;
};

/// A validated, time-sorted scripted incident.
struct FaultSchedule {
  std::vector<FaultScheduleEvent> events;

  bool empty() const { return events.empty(); }

  /// Structural sanity; throws std::invalid_argument with a one-line reason:
  /// non-finite or negative times, t1 < t0, rate outside [0, 1], events out
  /// of t0 order, overlapping outage windows, overlapping crash windows, or
  /// overlapping disconnect windows for the same client.
  void validate() const;

  /// Canonical text form (always full key=value, %.17g doubles). The result
  /// parses back to an equal schedule, bit-for-bit.
  std::string serialize() const;

  /// Parse the text format; throws std::invalid_argument on malformed input
  /// (bad header, unknown event kind, unknown/missing/duplicate key, garbage
  /// or non-finite number, count mismatch / truncation). The parsed schedule
  /// is also validate()d.
  static FaultSchedule parse(const std::string& text);

  static FaultSchedule load_file(const std::string& path);
  void save_file(const std::string& path) const;

  /// Distill the fault events of an observed trace into a schedule whose
  /// replay reproduces the same fault sequence deterministically — drops and
  /// corruptions become point events carrying the trace's own timestamps;
  /// churn disconnect/rejoin pairs and server crash/recover pairs become
  /// windows. A window still open at the end of the trace is closed at
  /// 2·sim_time_s + 1 so its closing edge can never fire inside a replay of
  /// the same horizon (an event at exactly t == sim_time would still run).
  static FaultSchedule distill(const std::vector<TraceEvent>& trace,
                               double sim_time_s);

  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;
};

}  // namespace wdc

#endif  // WDC_FAULTS_FAULT_SCHEDULE_HPP
