#include "faults/fault_injector.hpp"

#if WDC_FAULTS_ENABLED

#include <algorithm>
#include <cmath>
#include <utility>

#include "channel/gilbert_elliott.hpp"
#include "util/check.hpp"
#include "util/variates.hpp"

namespace wdc {

FaultInjector::FaultInjector(Simulator& sim, FaultConfig cfg,
                             std::uint32_t num_clients, Rng rng)
    : sim_(sim), cfg_(std::move(cfg)), loss_rng_(rng.split()),
      churn_rng_(rng.split()) {
  cfg_.validate();
  connected_.assign(num_clients, 1);
  if (!cfg_.enabled) return;
  if (cfg_.loss_mode == FaultLossMode::kBurst) {
    burst_.reserve(num_clients);
    // The SNR arguments are irrelevant here: only the Good/Bad state gates
    // loss. Each client gets a private stream so the processes are
    // independent and insensitive to reception order.
    for (std::uint32_t c = 0; c < num_clients; ++c)
      burst_.push_back(std::make_unique<GilbertElliott>(
          cfg_.burst_mean_good_s, cfg_.burst_mean_bad_s, 0.0, 0.0,
          loss_rng_.split()));
  }
  index_schedule();
}

FaultInjector::~FaultInjector() = default;

void FaultInjector::load_schedule(FaultSchedule schedule) {
  WDC_CHECK(!started_,
            "fault schedule replayed after simulation start — every event "
            "before `now` would be silently skipped");
  cfg_.schedule = std::move(schedule);
  cfg_.validate();
  if (cfg_.enabled) index_schedule();
}

void FaultInjector::index_schedule() {
  loss_windows_.clear();
  corrupt_windows_.clear();
  timed_.clear();
  drop_points_.assign(connected_.size(), {});
  uplink_points_.assign(connected_.size(), {});
  corrupt_points_.assign(connected_.size(), {});
  for (const FaultScheduleEvent& e : cfg_.schedule.events) {
    switch (e.kind) {
      case FaultScheduleKind::kLossWindow:
        loss_windows_.push_back({e.client, e.t0, e.t1, e.rate, e.msgs});
        break;
      case FaultScheduleKind::kOutage:
        // A cell-wide blackout is a loss window over everyone, certainly.
        loss_windows_.push_back(
            {kInvalidClient, e.t0, e.t1, 1.0, FaultMsgClass::kAll});
        break;
      case FaultScheduleKind::kCorruptWindow:
        corrupt_windows_.push_back({e.client, e.t0, e.t1, e.rate, e.msgs});
        break;
      case FaultScheduleKind::kServerCrash:
      case FaultScheduleKind::kDisconnect:
        timed_.push_back(e);
        break;
      // Point events for clients beyond this scenario's population are
      // indexed nowhere; a replay against a smaller cell simply never
      // consults them.
      case FaultScheduleKind::kDropPoint:
        if (e.client < drop_points_.size()) {
          drop_points_[e.client].times.push_back(e.t0);
          drop_points_[e.client].ords.push_back(e.ordinal);
        }
        break;
      case FaultScheduleKind::kUplinkDropPoint:
        if (e.client < uplink_points_.size()) {
          uplink_points_[e.client].times.push_back(e.t0);
          uplink_points_[e.client].ords.push_back(e.ordinal);
        }
        break;
      case FaultScheduleKind::kCorruptPoint:
        if (e.client < corrupt_points_.size()) {
          corrupt_points_[e.client].times.push_back(e.t0);
          corrupt_points_[e.client].ords.push_back(e.ordinal);
        }
        break;
    }
  }
}

void FaultInjector::start() {
  WDC_CHECK(!started_, "FaultInjector::start() called twice");
  started_ = true;
  if (!cfg_.enabled) return;
  for (const FaultScheduleEvent& e : timed_) {
    if (e.kind == FaultScheduleKind::kServerCrash) {
      sim_.schedule_at(e.t0, [this] { server_edge(true); },
                       EventPriority::kProtocol);
      sim_.schedule_at(e.t1, [this] { server_edge(false); },
                       EventPriority::kProtocol);
    } else {
      const ClientId c = e.client;
      if (c >= connected_.size()) continue;
      sim_.schedule_at(e.t0, [this, c] { disconnect(c, /*scripted=*/true); },
                       EventPriority::kWorkload);
      sim_.schedule_at(e.t1, [this, c] { rejoin(c, /*scripted=*/true); },
                       EventPriority::kWorkload);
    }
  }
  if (cfg_.churn_rate <= 0.0) return;
  for (std::uint32_t c = 0; c < connected_.size(); ++c)
    schedule_disconnect(static_cast<ClientId>(c));
}

bool FaultInjector::connected(ClientId c) const {
  return c >= connected_.size() || connected_[c] != 0;
}

void FaultInjector::schedule_disconnect(ClientId c) {
  const double delay = Exponential(cfg_.churn_rate).sample(churn_rng_);
  sim_.schedule_in(delay, [this, c] { disconnect(c, /*scripted=*/false); },
                   EventPriority::kWorkload);
}

void FaultInjector::disconnect(ClientId c, bool scripted) {
  WDC_ASSERT(connected_[c] != 0, "client ", c, " disconnected twice");
  connected_[c] = 0;
  ++stats_.churn_events;
  auto& tr = sim_.trace();
  if (tr.enabled())
    tr.emit(TraceEventKind::kChurnDisconnect, sim_.now(), c, kInvalidItem);
  if (churn_) churn_(c, false);
  if (scripted) return;  // the rejoin edge is already on the timeline
  const double down = Exponential(1.0 / cfg_.churn_mean_down_s).sample(churn_rng_);
  sim_.schedule_in(down, [this, c] { rejoin(c, /*scripted=*/false); },
                   EventPriority::kWorkload);
}

void FaultInjector::rejoin(ClientId c, bool scripted) {
  WDC_ASSERT(connected_[c] == 0, "client ", c, " rejoined while connected");
  connected_[c] = 1;
  ++stats_.rejoins;
  auto& tr = sim_.trace();
  if (tr.enabled())
    tr.emit(TraceEventKind::kChurnRejoin, sim_.now(), c, kInvalidItem);
  if (churn_) churn_(c, true);
  if (!scripted) schedule_disconnect(c);
}

void FaultInjector::server_edge(bool down) {
  if (down)
    ++stats_.server_crashes;
  else
    ++stats_.server_recoveries;
  auto& tr = sim_.trace();
  if (tr.enabled())
    tr.emit(down ? TraceEventKind::kServerCrash
                 : TraceEventKind::kServerRecover,
            sim_.now(), kInvalidClient, kInvalidItem);
  if (server_) server_(down);
}

bool FaultInjector::point_due(PointQueue& q, SimTime t) {
  // Scripted points replay the recording's own timestamps, so a live replay
  // consumes them in order with bit-equal matches; anything the simulation
  // drove past without matching is a miss, counted rather than silent.
  // Within one instant, calls are disambiguated by ordinal: this is the
  // `ord`-th consultation of this queue at exactly `t`, and only the entry
  // scripted with that ordinal matches (a client can send several uplink
  // requests in the same instant — see fault_schedule.hpp).
  std::uint32_t ord = 0;
  if (q.call_t == t) {
    ord = q.calls++;
  } else {
    q.call_t = t;
    q.calls = 1;
  }
  while (q.cursor < q.times.size() &&
         (q.times[q.cursor] < t ||
          (q.times[q.cursor] == t && q.ords[q.cursor] < ord))) {
    ++q.cursor;
    ++stats_.schedule_misses;
  }
  if (q.cursor < q.times.size() && q.times[q.cursor] == t &&
      q.ords[q.cursor] == ord) {
    ++q.cursor;
    return true;
  }
  return false;
}

bool FaultInjector::match_windows(const std::vector<Window>& windows,
                                  ClientId c, bool is_report, SimTime t) {
  for (const Window& w : windows) {
    if (t < w.t0 || t >= w.t1) continue;
    if (w.client != kInvalidClient && w.client != c) continue;
    if (w.msgs == FaultMsgClass::kReport && !is_report) continue;
    if (w.msgs == FaultMsgClass::kData && is_report) continue;
    // Certain windows (rate 1 — every outage, every distilled event) consume
    // no randomness, so pure replays leave the loss stream untouched.
    if (w.rate >= 1.0) return true;
    if (w.rate > 0.0 && loss_rng_.bernoulli(w.rate)) return true;
  }
  return false;
}

bool FaultInjector::drop_downlink(ClientId c, MsgKind kind, SimTime t) {
  if (!cfg_.enabled) return false;
  const bool is_report = kind == MsgKind::kInvalidationReport ||
                         kind == MsgKind::kMiniReport;
  // Scripted axes first — a pure replay must consume no randomness at all.
  bool faulted = c < drop_points_.size() && point_due(drop_points_[c], t);
  if (!faulted && !loss_windows_.empty())
    faulted = match_windows(loss_windows_, c, is_report, t);
  if (!faulted) {
    const double p = is_report ? cfg_.ir_loss : cfg_.bcast_loss;
    if (p > 0.0) {
      if (cfg_.loss_mode == FaultLossMode::kBurst) {
        // Gilbert–Elliott gating: the impairment only bites while this
        // client's burst process is Bad; the state advance consumes no
        // per-call draws.
        if (c < burst_.size() && !burst_[c]->good(t))
          faulted = loss_rng_.bernoulli(p);
      } else {
        faulted = loss_rng_.bernoulli(p);
      }
    }
  }
  if (faulted) {
    if (is_report)
      ++stats_.ir_drops;
    else
      ++stats_.bcast_drops;
  }
  return faulted;
}

bool FaultInjector::drop_uplink(ClientId c) {
  if (!cfg_.enabled) return false;
  // Scripted points before the connectivity check: a distilled trace records
  // disconnection-caused drops as plain uplink-drop points, and the replay
  // must consume them here whatever this run's connectivity state is.
  if (c < uplink_points_.size() && point_due(uplink_points_[c], sim_.now())) {
    ++stats_.uplink_drops;
    return true;
  }
  if (!connected(c)) {
    // A churned-away radio cannot reach the base station; no randomness.
    ++stats_.uplink_drops;
    return true;
  }
  if (cfg_.uplink_drop <= 0.0) return false;
  if (!loss_rng_.bernoulli(cfg_.uplink_drop)) return false;
  ++stats_.uplink_drops;
  return true;
}

bool FaultInjector::corrupt_downlink(ClientId c, MsgKind kind, SimTime t) {
  if (!cfg_.enabled) return false;
  const bool is_report = kind == MsgKind::kInvalidationReport ||
                         kind == MsgKind::kMiniReport;
  if (!is_report) return false;  // byzantine mode targets the report codec
  if (c < corrupt_points_.size() && point_due(corrupt_points_[c], t))
    return true;
  return !corrupt_windows_.empty() &&
         match_windows(corrupt_windows_, c, /*is_report=*/true, t);
}

void FaultInjector::record_corrupt(bool accepted) {
  if (accepted)
    ++stats_.corrupt_accepted;
  else
    ++stats_.corrupt_rejected;
}

double FaultInjector::retry_timeout(double base_timeout_s,
                                    unsigned attempt) const {
  if (!cfg_.enabled) return base_timeout_s;
  const double scaled =
      base_timeout_s * std::pow(cfg_.backoff_mult, static_cast<double>(attempt));
  return std::min(scaled, cfg_.backoff_cap_s);
}

void FaultInjector::record_recovery(ClientId, double recovery_s,
                                    std::uint64_t exposed) {
  ++stats_.recoveries;
  stats_.recovery_time_s += recovery_s;
  stats_.stale_exposure += exposed;
}

FaultStats FaultInjector::stats() const {
  FaultStats s = stats_;
  // Points the run ended without ever reaching are misses too.
  const auto tail = [](const std::vector<PointQueue>& queues) {
    std::uint64_t n = 0;
    for (const PointQueue& q : queues) n += q.times.size() - q.cursor;
    return n;
  };
  s.schedule_misses +=
      tail(drop_points_) + tail(uplink_points_) + tail(corrupt_points_);
  return s;
}

}  // namespace wdc

#endif  // WDC_FAULTS_ENABLED
