#include "faults/fault_injector.hpp"

#if WDC_FAULTS_ENABLED

#include <algorithm>
#include <cmath>

#include "channel/gilbert_elliott.hpp"
#include "util/check.hpp"
#include "util/variates.hpp"

namespace wdc {

FaultInjector::FaultInjector(Simulator& sim, FaultConfig cfg,
                             std::uint32_t num_clients, Rng rng)
    : sim_(sim), cfg_(cfg), loss_rng_(rng.split()), churn_rng_(rng.split()) {
  cfg_.validate();
  connected_.assign(num_clients, 1);
  if (!cfg_.enabled) return;
  if (cfg_.loss_mode == FaultLossMode::kBurst) {
    burst_.reserve(num_clients);
    // The SNR arguments are irrelevant here: only the Good/Bad state gates
    // loss. Each client gets a private stream so the processes are
    // independent and insensitive to reception order.
    for (std::uint32_t c = 0; c < num_clients; ++c)
      burst_.push_back(std::make_unique<GilbertElliott>(
          cfg_.burst_mean_good_s, cfg_.burst_mean_bad_s, 0.0, 0.0,
          loss_rng_.split()));
  }
}

FaultInjector::~FaultInjector() = default;

void FaultInjector::start() {
  if (!cfg_.enabled || cfg_.churn_rate <= 0.0) return;
  for (std::uint32_t c = 0; c < connected_.size(); ++c)
    schedule_disconnect(static_cast<ClientId>(c));
}

bool FaultInjector::connected(ClientId c) const {
  return c >= connected_.size() || connected_[c] != 0;
}

void FaultInjector::schedule_disconnect(ClientId c) {
  const double delay = Exponential(cfg_.churn_rate).sample(churn_rng_);
  sim_.schedule_in(delay, [this, c] { disconnect(c); },
                   EventPriority::kWorkload);
}

void FaultInjector::disconnect(ClientId c) {
  WDC_ASSERT(connected_[c] != 0, "client ", c, " disconnected twice");
  connected_[c] = 0;
  ++stats_.churn_events;
  auto& tr = sim_.trace();
  if (tr.enabled())
    tr.emit(TraceEventKind::kChurnDisconnect, sim_.now(), c, kInvalidItem);
  if (churn_) churn_(c, false);
  const double down = Exponential(1.0 / cfg_.churn_mean_down_s).sample(churn_rng_);
  sim_.schedule_in(down, [this, c] { rejoin(c); }, EventPriority::kWorkload);
}

void FaultInjector::rejoin(ClientId c) {
  WDC_ASSERT(connected_[c] == 0, "client ", c, " rejoined while connected");
  connected_[c] = 1;
  ++stats_.rejoins;
  auto& tr = sim_.trace();
  if (tr.enabled())
    tr.emit(TraceEventKind::kChurnRejoin, sim_.now(), c, kInvalidItem);
  if (churn_) churn_(c, true);
  schedule_disconnect(c);
}

bool FaultInjector::drop_downlink(ClientId c, MsgKind kind, SimTime t) {
  if (!cfg_.enabled) return false;
  const bool is_report = kind == MsgKind::kInvalidationReport ||
                         kind == MsgKind::kMiniReport;
  const double p = is_report ? cfg_.ir_loss : cfg_.bcast_loss;
  if (p <= 0.0) return false;
  bool faulted = false;
  if (cfg_.loss_mode == FaultLossMode::kBurst) {
    // Gilbert–Elliott gating: the impairment only bites while this client's
    // burst process is Bad; the state advance consumes no per-call draws.
    if (c < burst_.size() && !burst_[c]->good(t))
      faulted = loss_rng_.bernoulli(p);
  } else {
    faulted = loss_rng_.bernoulli(p);
  }
  if (faulted) {
    if (is_report)
      ++stats_.ir_drops;
    else
      ++stats_.bcast_drops;
  }
  return faulted;
}

bool FaultInjector::drop_uplink(ClientId c) {
  if (!cfg_.enabled) return false;
  if (!connected(c)) {
    // A churned-away radio cannot reach the base station; no randomness.
    ++stats_.uplink_drops;
    return true;
  }
  if (cfg_.uplink_drop <= 0.0) return false;
  if (!loss_rng_.bernoulli(cfg_.uplink_drop)) return false;
  ++stats_.uplink_drops;
  return true;
}

double FaultInjector::retry_timeout(double base_timeout_s,
                                    unsigned attempt) const {
  if (!cfg_.enabled) return base_timeout_s;
  const double scaled =
      base_timeout_s * std::pow(cfg_.backoff_mult, static_cast<double>(attempt));
  return std::min(scaled, cfg_.backoff_cap_s);
}

void FaultInjector::record_recovery(ClientId, double recovery_s,
                                    std::uint64_t exposed) {
  ++stats_.recoveries;
  stats_.recovery_time_s += recovery_s;
  stats_.stale_exposure += exposed;
}

}  // namespace wdc

#endif  // WDC_FAULTS_ENABLED
