#include "faults/fault_schedule.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/string_util.hpp"

namespace wdc {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("fault schedule line " + std::to_string(line_no) +
                              ": " + what);
}

/// Parse a full-token double; rejects garbage, partial consumption, and
/// non-finite values (the file format has no business encoding inf/nan).
double parse_double(const std::string& s, std::size_t line_no,
                    const std::string& key) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0')
    fail(line_no, "bad number for " + key + ": '" + s + "'");
  if (!std::isfinite(v))
    fail(line_no, "non-finite " + key + ": '" + s + "'");
  return v;
}

ClientId parse_client(const std::string& s, std::size_t line_no) {
  if (s == "all") return kInvalidClient;
  errno = 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE ||
      v >= kInvalidClient)
    fail(line_no, "bad client id: '" + s + "'");
  return static_cast<ClientId>(v);
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

const char* kind_word(FaultScheduleKind k) {
  switch (k) {
    case FaultScheduleKind::kLossWindow: return "loss";
    case FaultScheduleKind::kOutage: return "outage";
    case FaultScheduleKind::kServerCrash: return "crash";
    case FaultScheduleKind::kCorruptWindow: return "corrupt";
    case FaultScheduleKind::kDisconnect: return "disconnect";
    case FaultScheduleKind::kDropPoint: return "drop";
    case FaultScheduleKind::kUplinkDropPoint: return "updrop";
    case FaultScheduleKind::kCorruptPoint: return "corruptat";
  }
  return "?";
}

std::string client_word(ClientId c) {
  return c == kInvalidClient ? std::string("all") : std::to_string(c);
}

/// Key → raw value map for one event line; duplicate keys rejected.
std::map<std::string, std::string> parse_kv(
    const std::vector<std::string>& toks, std::size_t line_no) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const std::string& tok = toks[i];
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size())
      fail(line_no, "expected key=value, got '" + tok + "'");
    const std::string key = tok.substr(0, eq);
    if (!kv.emplace(key, tok.substr(eq + 1)).second)
      fail(line_no, "duplicate key '" + key + "'");
  }
  return kv;
}

std::string take(std::map<std::string, std::string>& kv, const char* key,
                 std::size_t line_no) {
  auto it = kv.find(key);
  if (it == kv.end()) fail(line_no, std::string("missing key '") + key + "'");
  std::string v = std::move(it->second);
  kv.erase(it);
  return v;
}

}  // namespace

FaultMsgClass fault_msg_class_from_string(const std::string& name) {
  if (name == "report") return FaultMsgClass::kReport;
  if (name == "data") return FaultMsgClass::kData;
  if (name == "all") return FaultMsgClass::kAll;
  throw std::invalid_argument("unknown fault message class: '" + name + "'");
}

std::string to_string(FaultMsgClass m) {
  switch (m) {
    case FaultMsgClass::kReport: return "report";
    case FaultMsgClass::kData: return "data";
    case FaultMsgClass::kAll: return "all";
  }
  return "?";
}

void FaultSchedule::validate() const {
  const auto bad = [](std::size_t i, const std::string& what) {
    throw std::invalid_argument("fault schedule event " + std::to_string(i) +
                                ": " + what);
  };
  // Overlap tracking: previous window end per overlap class. Events are
  // sorted by t0, so each class only needs its running maximum end.
  double outage_end = 0.0;
  double crash_end = 0.0;
  std::map<ClientId, double> disconnect_end;
  double prev_t0 = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultScheduleEvent& e = events[i];
    if (!std::isfinite(e.t0) || !std::isfinite(e.t1) ||
        !std::isfinite(e.rate))
      bad(i, "non-finite time or rate");
    if (e.t0 < 0.0) bad(i, "scheduled before t=0");
    if (e.t1 < e.t0) bad(i, "window ends before it starts");
    if (e.is_point() && e.t1 != e.t0) bad(i, "point event with t1 != t0");
    if (e.rate < 0.0 || e.rate > 1.0) bad(i, "rate outside [0, 1]");
    if (e.ordinal != 0 && e.kind != FaultScheduleKind::kUplinkDropPoint)
      bad(i, "ordinal n= is only meaningful on updrop events");
    if (i > 0 && e.t0 < prev_t0) bad(i, "events out of time order");
    prev_t0 = e.t0;
    switch (e.kind) {
      case FaultScheduleKind::kOutage:
        if (e.t0 < outage_end) bad(i, "overlapping outage windows");
        outage_end = e.t1;
        break;
      case FaultScheduleKind::kServerCrash:
        if (e.t0 < crash_end) bad(i, "overlapping server crash windows");
        crash_end = e.t1;
        break;
      case FaultScheduleKind::kDisconnect: {
        if (e.client == kInvalidClient)
          bad(i, "disconnect window needs a concrete client");
        double& end = disconnect_end[e.client];
        if (e.t0 < end)
          bad(i, "overlapping disconnect windows for client " +
                     std::to_string(e.client));
        end = e.t1;
        break;
      }
      case FaultScheduleKind::kDropPoint:
      case FaultScheduleKind::kUplinkDropPoint:
      case FaultScheduleKind::kCorruptPoint:
        if (e.client == kInvalidClient)
          bad(i, "point event needs a concrete client");
        break;
      case FaultScheduleKind::kLossWindow:
      case FaultScheduleKind::kCorruptWindow:
        break;
    }
  }
}

std::string FaultSchedule::serialize() const {
  std::string out =
      "wdcsched v1 " + std::to_string(events.size()) + "\n";
  for (const FaultScheduleEvent& e : events) {
    out += kind_word(e.kind);
    switch (e.kind) {
      case FaultScheduleKind::kLossWindow:
        out += strfmt(" client=%s t0=%.17g t1=%.17g rate=%.17g msgs=%s",
                      client_word(e.client).c_str(), e.t0, e.t1, e.rate,
                      to_string(e.msgs).c_str());
        break;
      case FaultScheduleKind::kOutage:
      case FaultScheduleKind::kServerCrash:
        out += strfmt(" t0=%.17g t1=%.17g", e.t0, e.t1);
        break;
      case FaultScheduleKind::kCorruptWindow:
        out += strfmt(" client=%s t0=%.17g t1=%.17g rate=%.17g",
                      client_word(e.client).c_str(), e.t0, e.t1, e.rate);
        break;
      case FaultScheduleKind::kDisconnect:
        out += strfmt(" client=%s t0=%.17g t1=%.17g",
                      client_word(e.client).c_str(), e.t0, e.t1);
        break;
      case FaultScheduleKind::kDropPoint:
        out += strfmt(" client=%s t=%.17g msgs=%s",
                      client_word(e.client).c_str(), e.t0,
                      to_string(e.msgs).c_str());
        break;
      case FaultScheduleKind::kUplinkDropPoint:
        out += strfmt(" client=%s t=%.17g", client_word(e.client).c_str(),
                      e.t0);
        // Ordinal 0 (drop the first same-instant send) is the default and
        // stays implicit so the canonical form is a fixed point.
        if (e.ordinal != 0) out += strfmt(" n=%u", e.ordinal);
        break;
      case FaultScheduleKind::kCorruptPoint:
        out += strfmt(" client=%s t=%.17g", client_word(e.client).c_str(),
                      e.t0);
        break;
    }
    out += '\n';
  }
  return out;
}

FaultSchedule FaultSchedule::parse(const std::string& text) {
  FaultSchedule sched;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  std::size_t declared = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::vector<std::string> toks = split_tokens(line);
    if (toks.empty()) continue;
    if (!saw_header) {
      if (toks.size() != 3 || toks[0] != "wdcsched")
        fail(line_no, "expected header 'wdcsched v1 <count>'");
      if (toks[1] != "v1")
        fail(line_no, "unsupported schedule version '" + toks[1] + "'");
      errno = 0;
      char* end = nullptr;
      const unsigned long n = std::strtoul(toks[2].c_str(), &end, 10);
      if (end == toks[2].c_str() || *end != '\0' || errno == ERANGE)
        fail(line_no, "bad event count '" + toks[2] + "'");
      declared = static_cast<std::size_t>(n);
      saw_header = true;
      continue;
    }
    if (sched.events.size() == declared)
      fail(line_no, "more events than the header declared (" +
                        std::to_string(declared) + ")");
    FaultScheduleEvent e;
    auto kv = parse_kv(toks, line_no);
    const std::string& word = toks[0];
    const auto window = [&](FaultScheduleKind kind, bool has_client,
                            bool has_rate, bool has_msgs) {
      e.kind = kind;
      e.client = has_client ? parse_client(take(kv, "client", line_no), line_no)
                            : kInvalidClient;
      e.t0 = parse_double(take(kv, "t0", line_no), line_no, "t0");
      e.t1 = parse_double(take(kv, "t1", line_no), line_no, "t1");
      e.rate = has_rate
                   ? parse_double(take(kv, "rate", line_no), line_no, "rate")
                   : 1.0;
      e.msgs = has_msgs
                   ? fault_msg_class_from_string(take(kv, "msgs", line_no))
                   : FaultMsgClass::kAll;
    };
    const auto point = [&](FaultScheduleKind kind, bool has_msgs) {
      e.kind = kind;
      e.client = parse_client(take(kv, "client", line_no), line_no);
      e.t0 = parse_double(take(kv, "t", line_no), line_no, "t");
      e.t1 = e.t0;
      e.msgs = has_msgs
                   ? fault_msg_class_from_string(take(kv, "msgs", line_no))
                   : FaultMsgClass::kAll;
    };
    if (word == "loss") {
      window(FaultScheduleKind::kLossWindow, true, true, true);
    } else if (word == "outage") {
      window(FaultScheduleKind::kOutage, false, false, false);
    } else if (word == "crash") {
      window(FaultScheduleKind::kServerCrash, false, false, false);
    } else if (word == "corrupt") {
      window(FaultScheduleKind::kCorruptWindow, true, true, false);
    } else if (word == "disconnect") {
      window(FaultScheduleKind::kDisconnect, true, false, false);
    } else if (word == "drop") {
      point(FaultScheduleKind::kDropPoint, true);
    } else if (word == "updrop") {
      point(FaultScheduleKind::kUplinkDropPoint, false);
      if (const auto it = kv.find("n"); it != kv.end()) {
        const std::string& s = it->second;
        errno = 0;
        char* end = nullptr;
        const unsigned long n = std::strtoul(s.c_str(), &end, 10);
        if (s.empty() || s[0] == '-' || end == s.c_str() || *end != '\0' ||
            errno == ERANGE || n > 0xfffffffful)
          fail(line_no, "bad ordinal n: '" + s + "'");
        e.ordinal = static_cast<std::uint32_t>(n);
        kv.erase(it);
      }
    } else if (word == "corruptat") {
      point(FaultScheduleKind::kCorruptPoint, false);
    } else {
      fail(line_no, "unknown event kind '" + word + "'");
    }
    if (!kv.empty()) fail(line_no, "unknown key '" + kv.begin()->first + "'");
    sched.events.push_back(e);
  }
  if (!saw_header)
    throw std::invalid_argument("fault schedule: empty input (missing header)");
  if (sched.events.size() != declared)
    throw std::invalid_argument(
        "fault schedule: truncated — header declares " +
        std::to_string(declared) + " events, found " +
        std::to_string(sched.events.size()));
  sched.validate();
  return sched;
}

FaultSchedule FaultSchedule::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::invalid_argument("fault schedule: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void FaultSchedule::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw std::invalid_argument("fault schedule: cannot write '" + path + "'");
  out << serialize();
  if (!out)
    throw std::invalid_argument("fault schedule: write failed for '" + path +
                                "'");
}

FaultSchedule FaultSchedule::distill(const std::vector<TraceEvent>& trace,
                                     double sim_time_s) {
  // A window still open when the trace ends closes strictly past any replay
  // of the same horizon (see header comment).
  const double open_end = 2.0 * sim_time_s + 1.0;
  FaultSchedule sched;
  std::map<ClientId, double> down_since;  // open disconnect windows
  double crash_since = -1.0;              // open crash window (< 0 = none)
  // Per-client uplink sends at the current instant: a report answering
  // several misses at once sends more than one request at the same t, and
  // the timestamp alone can't say which one a drop erased. The MAC traces
  // kUplinkSend for every send BEFORE the drop check, so counting them
  // recovers each drop's 0-based ordinal among its instant's sends.
  struct SendCount {
    double t = -1.0;
    std::uint32_t n = 0;
  };
  std::map<ClientId, SendCount> uplink_sends;
  for (const TraceEvent& ev : trace) {
    const auto kind = static_cast<TraceEventKind>(ev.kind);
    const auto client = static_cast<ClientId>(ev.client);
    FaultScheduleEvent e;
    e.client = client;
    e.t0 = e.t1 = ev.t;
    switch (kind) {
      case TraceEventKind::kFaultDownlinkDrop:
        e.kind = FaultScheduleKind::kDropPoint;
        // `a` carries the MsgKind of the erased frame; 0/1 are the report
        // kinds (kInvalidationReport / kMiniReport).
        e.msgs = ev.a <= 1.0f ? FaultMsgClass::kReport : FaultMsgClass::kData;
        sched.events.push_back(e);
        break;
      case TraceEventKind::kUplinkSend: {
        SendCount& sc = uplink_sends[client];
        if (sc.t == ev.t)
          ++sc.n;
        else
          sc = {ev.t, 1};
        break;
      }
      case TraceEventKind::kFaultUplinkDrop: {
        e.kind = FaultScheduleKind::kUplinkDropPoint;
        // The dropped send's own kUplinkSend was already counted above.
        const auto it = uplink_sends.find(client);
        if (it != uplink_sends.end() && it->second.t == ev.t &&
            it->second.n > 0)
          e.ordinal = it->second.n - 1;
        sched.events.push_back(e);
        break;
      }
      case TraceEventKind::kFaultCorrupt:
        e.kind = FaultScheduleKind::kCorruptPoint;
        sched.events.push_back(e);
        break;
      case TraceEventKind::kChurnDisconnect:
        down_since[client] = ev.t;
        break;
      case TraceEventKind::kChurnRejoin: {
        auto it = down_since.find(client);
        if (it == down_since.end()) break;  // rejoin with no recorded start
        e.kind = FaultScheduleKind::kDisconnect;
        e.t0 = it->second;
        e.t1 = ev.t;
        down_since.erase(it);
        sched.events.push_back(e);
        break;
      }
      case TraceEventKind::kServerCrash:
        crash_since = ev.t;
        break;
      case TraceEventKind::kServerRecover:
        if (crash_since < 0.0) break;
        e.kind = FaultScheduleKind::kServerCrash;
        e.client = kInvalidClient;
        e.t0 = crash_since;
        e.t1 = ev.t;
        crash_since = -1.0;
        sched.events.push_back(e);
        break;
      default:
        break;
    }
  }
  for (const auto& [client, t0] : down_since) {
    FaultScheduleEvent e;
    e.kind = FaultScheduleKind::kDisconnect;
    e.client = client;
    e.t0 = t0;
    e.t1 = open_end;
    sched.events.push_back(e);
  }
  if (crash_since >= 0.0) {
    FaultScheduleEvent e;
    e.kind = FaultScheduleKind::kServerCrash;
    e.t0 = crash_since;
    e.t1 = open_end;
    sched.events.push_back(e);
  }
  std::stable_sort(
      sched.events.begin(), sched.events.end(),
      [](const FaultScheduleEvent& a, const FaultScheduleEvent& b) {
        return a.t0 < b.t0;
      });
  sched.validate();
  return sched;
}

}  // namespace wdc
