#ifndef WDC_FAULTS_FAULT_INJECTOR_HPP
#define WDC_FAULTS_FAULT_INJECTOR_HPP

/// @file fault_injector.hpp
/// Deterministic fault injection for the MAC and protocol layers.
///
/// Two gates, mirroring the trace recorder (trace/trace_recorder.hpp):
///  * compile time — with WDC_FAULTS_ENABLED=0 (CMake -DWDC_FAULTS=OFF) the
///    injector is an empty no-op class and every hook folds away;
///  * run time — a compiled-in injector does nothing until a Scenario enables
///    it (FaultConfig::enabled), so production sweeps pay one predictable
///    branch per hook site.
///
/// Determinism contract: the injector owns private Rng streams split from the
/// Simulation master AFTER every model stream, and a disabled injector never
/// consumes randomness — so golden digests are bit-identical with the layer
/// compiled in, disabled at run time, or compiled out entirely. Hook sites are
/// likewise arranged so the model's own streams are drawn identically whether
/// or not a fault then suppresses the outcome (see BroadcastMac::finish()).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "faults/fault_config.hpp"
#include "mac/message.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

#ifndef WDC_FAULTS_ENABLED
#define WDC_FAULTS_ENABLED 1
#endif

namespace wdc {

class GilbertElliott;

#if WDC_FAULTS_ENABLED

class FaultInjector {
 public:
  /// Fired on every churn edge: (client, connected). The engine wires this to
  /// ClientProtocol::on_churn.
  using ChurnHandler = std::function<void(ClientId, bool)>;

  FaultInjector(Simulator& sim, FaultConfig cfg, std::uint32_t num_clients,
                Rng rng);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Hook sites branch on this so a disabled run pays one predictable test.
  bool enabled() const { return cfg_.enabled; }
  const FaultConfig& config() const { return cfg_; }
  bool rejoin_cold() const { return cfg_.rejoin == RejoinPolicy::kCold; }

  void set_churn_handler(ChurnHandler fn) { churn_ = std::move(fn); }
  /// Schedule the first per-client disconnects (no-op unless churn is on).
  void start();

  /// False while client `c` is churned away.
  bool connected(ClientId c) const;

  /// Should this completed downlink transmission be erased for client `c`?
  /// Called only for receptions the PHY decoded (the decode draw happens
  /// FIRST, unconditionally, so the MAC's Rng stream never depends on the
  /// fault layer). Counts the drop when it happens.
  bool drop_downlink(ClientId c, MsgKind kind, SimTime t);

  /// Should this uplink request from `c` vanish on the air? Disconnected
  /// clients always lose their requests (without consuming randomness).
  bool drop_uplink(ClientId c);

  /// Re-request timeout for the given retry attempt (0 = first wait):
  /// min(base · backoff_mult^attempt, backoff_cap_s). Exactly `base` when the
  /// injector is disabled, bit-identically.
  double retry_timeout(double base_timeout_s, unsigned attempt) const;

  /// A rejoined client re-established a consistency point `recovery_s` after
  /// reconnecting, shedding `exposed` potentially stale cache entries.
  void record_recovery(ClientId c, double recovery_s, std::uint64_t exposed);

  FaultStats stats() const { return stats_; }

 private:
  void schedule_disconnect(ClientId c);
  void disconnect(ClientId c);
  void rejoin(ClientId c);

  Simulator& sim_;
  FaultConfig cfg_;
  Rng loss_rng_;
  Rng churn_rng_;
  std::vector<char> connected_;
  /// Burst mode: one two-state process per client (losses only while Bad).
  std::vector<std::unique_ptr<GilbertElliott>> burst_;
  ChurnHandler churn_;
  FaultStats stats_;
};

#else

/// Stripped build: every hook compiles to nothing; enabled() is a constant so
/// guarded call sites fold away entirely.
class FaultInjector {
 public:
  using ChurnHandler = std::function<void(ClientId, bool)>;

  FaultInjector(Simulator&, FaultConfig, std::uint32_t, Rng) {}
  bool enabled() const { return false; }
  FaultConfig config() const { return {}; }
  bool rejoin_cold() const { return false; }
  void set_churn_handler(ChurnHandler) {}
  void start() {}
  bool connected(ClientId) const { return true; }
  bool drop_downlink(ClientId, MsgKind, SimTime) { return false; }
  bool drop_uplink(ClientId) { return false; }
  double retry_timeout(double base_timeout_s, unsigned) const {
    return base_timeout_s;
  }
  void record_recovery(ClientId, double, std::uint64_t) {}
  FaultStats stats() const { return {}; }
};

#endif  // WDC_FAULTS_ENABLED

}  // namespace wdc

#endif  // WDC_FAULTS_FAULT_INJECTOR_HPP
