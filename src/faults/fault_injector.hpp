#ifndef WDC_FAULTS_FAULT_INJECTOR_HPP
#define WDC_FAULTS_FAULT_INJECTOR_HPP

/// @file fault_injector.hpp
/// Deterministic fault injection for the MAC and protocol layers.
///
/// Two gates, mirroring the trace recorder (trace/trace_recorder.hpp):
///  * compile time — with WDC_FAULTS_ENABLED=0 (CMake -DWDC_FAULTS=OFF) the
///    injector is an empty no-op class and every hook folds away;
///  * run time — a compiled-in injector does nothing until a Scenario enables
///    it (FaultConfig::enabled), so production sweeps pay one predictable
///    branch per hook site.
///
/// Determinism contract: the injector owns private Rng streams split from the
/// Simulation master AFTER every model stream, and a disabled injector never
/// consumes randomness — so golden digests are bit-identical with the layer
/// compiled in, disabled at run time, or compiled out entirely. Hook sites are
/// likewise arranged so the model's own streams are drawn identically whether
/// or not a fault then suppresses the outcome (see BroadcastMac::finish()).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "faults/fault_config.hpp"
#include "mac/message.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

#ifndef WDC_FAULTS_ENABLED
#define WDC_FAULTS_ENABLED 1
#endif

namespace wdc {

class GilbertElliott;

#if WDC_FAULTS_ENABLED

class FaultInjector {
 public:
  /// Fired on every churn edge: (client, connected). The engine wires this to
  /// ClientProtocol::on_churn.
  using ChurnHandler = std::function<void(ClientId, bool)>;
  /// Fired on every scripted server crash/recovery edge: (down). The engine
  /// wires this to ServerProtocol::on_server_state.
  using ServerHandler = std::function<void(bool)>;

  FaultInjector(Simulator& sim, FaultConfig cfg, std::uint32_t num_clients,
                Rng rng);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Hook sites branch on this so a disabled run pays one predictable test.
  bool enabled() const { return cfg_.enabled; }
  const FaultConfig& config() const { return cfg_; }
  bool rejoin_cold() const { return cfg_.rejoin == RejoinPolicy::kCold; }

  void set_churn_handler(ChurnHandler fn) { churn_ = std::move(fn); }
  void set_server_handler(ServerHandler fn) { server_ = std::move(fn); }

  /// Replace the scripted schedule before the run starts (the usual path is
  /// Scenario/FaultConfig; this is the tooling/test entry). WDC_CHECKs that
  /// the simulation has not started — a schedule replayed into a running
  /// simulation would skip every event before `now`.
  void load_schedule(FaultSchedule schedule);

  /// Schedule the scripted crash/disconnect timeline and the first random
  /// per-client disconnects. Called exactly once, at t = 0.
  void start();

  /// False while client `c` is churned away.
  bool connected(ClientId c) const;

  /// Should this completed downlink transmission be erased for client `c`?
  /// Called only for receptions the PHY decoded (the decode draw happens
  /// FIRST, unconditionally, so the MAC's Rng stream never depends on the
  /// fault layer). Counts the drop when it happens.
  bool drop_downlink(ClientId c, MsgKind kind, SimTime t);

  /// Should this uplink request from `c` vanish on the air? Disconnected
  /// clients always lose their requests (without consuming randomness).
  bool drop_uplink(ClientId c);

  /// Should this decoded report reception be corrupted in flight (byzantine
  /// mode)? Purely schedule-driven point matches consume no randomness;
  /// probabilistic corrupt windows draw from the private loss stream. The
  /// client layer performs the actual damage and feeds the frame back through
  /// the report codec — see ClientProtocol::on_reception.
  bool corrupt_downlink(ClientId c, MsgKind kind, SimTime t);

  /// Outcome of one byzantine round-trip: did the codec accept the damaged
  /// frame (accepted, the canary case) or reject it (the expected case)?
  void record_corrupt(bool accepted);

  /// Re-request timeout for the given retry attempt (0 = first wait):
  /// min(base · backoff_mult^attempt, backoff_cap_s). Exactly `base` when the
  /// injector is disabled, bit-identically.
  double retry_timeout(double base_timeout_s, unsigned attempt) const;

  /// A rejoined client re-established a consistency point `recovery_s` after
  /// reconnecting, shedding `exposed` potentially stale cache entries.
  void record_recovery(ClientId c, double recovery_s, std::uint64_t exposed);

  FaultStats stats() const;

 private:
  /// One indexed schedule window, normalized (an outage becomes an
  /// all-clients, rate-1, all-kinds loss window).
  struct Window {
    ClientId client;
    SimTime t0;
    SimTime t1;
    double rate;
    FaultMsgClass msgs;
  };
  /// Per-client scripted points, consumed in time order. Entries pair a
  /// timestamp with an ordinal selecting among multiple hook calls in the
  /// same simulation instant (uplink sends — see fault_schedule.hpp; the
  /// other point kinds always carry ordinal 0). `call_t`/`calls` count how
  /// often this queue has been consulted at the current instant, so the live
  /// call stream carries its own ordinals to match against.
  struct PointQueue {
    std::vector<SimTime> times;
    std::vector<std::uint32_t> ords;
    std::size_t cursor = 0;
    SimTime call_t = -1.0;
    std::uint32_t calls = 0;
  };

  void index_schedule();
  bool point_due(PointQueue& q, SimTime t);
  bool match_windows(const std::vector<Window>& windows, ClientId c,
                     bool is_report, SimTime t);
  void server_edge(bool down);
  void schedule_disconnect(ClientId c);
  void disconnect(ClientId c, bool scripted);
  void rejoin(ClientId c, bool scripted);

  Simulator& sim_;
  FaultConfig cfg_;
  Rng loss_rng_;
  Rng churn_rng_;
  std::vector<char> connected_;
  /// Burst mode: one two-state process per client (losses only while Bad).
  std::vector<std::unique_ptr<GilbertElliott>> burst_;
  ChurnHandler churn_;
  ServerHandler server_;
  FaultStats stats_;
  // Indexed view of cfg_.schedule (index_schedule()).
  std::vector<Window> loss_windows_;
  std::vector<Window> corrupt_windows_;
  std::vector<PointQueue> drop_points_;
  std::vector<PointQueue> uplink_points_;
  std::vector<PointQueue> corrupt_points_;
  /// Crash + disconnect windows, turned into simulator events at start().
  std::vector<FaultScheduleEvent> timed_;
  bool started_ = false;
};

#else

/// Stripped build: every hook compiles to nothing; enabled() is a constant so
/// guarded call sites fold away entirely.
class FaultInjector {
 public:
  using ChurnHandler = std::function<void(ClientId, bool)>;
  using ServerHandler = std::function<void(bool)>;

  FaultInjector(Simulator&, FaultConfig, std::uint32_t, Rng) {}
  bool enabled() const { return false; }
  FaultConfig config() const { return {}; }
  bool rejoin_cold() const { return false; }
  void set_churn_handler(ChurnHandler) {}
  void set_server_handler(ServerHandler) {}
  void load_schedule(FaultSchedule) {}
  void start() {}
  bool connected(ClientId) const { return true; }
  bool drop_downlink(ClientId, MsgKind, SimTime) { return false; }
  bool drop_uplink(ClientId) { return false; }
  bool corrupt_downlink(ClientId, MsgKind, SimTime) { return false; }
  void record_corrupt(bool) {}
  double retry_timeout(double base_timeout_s, unsigned) const {
    return base_timeout_s;
  }
  void record_recovery(ClientId, double, std::uint64_t) {}
  FaultStats stats() const { return {}; }
};

#endif  // WDC_FAULTS_ENABLED

}  // namespace wdc

#endif  // WDC_FAULTS_FAULT_INJECTOR_HPP
