#include "faults/fault_config.hpp"

#include <stdexcept>

namespace wdc {

FaultLossMode fault_loss_mode_from_string(const std::string& name) {
  if (name == "bernoulli") return FaultLossMode::kBernoulli;
  if (name == "burst") return FaultLossMode::kBurst;
  throw std::invalid_argument("unknown fault loss mode: " + name);
}

std::string to_string(FaultLossMode m) {
  switch (m) {
    case FaultLossMode::kBernoulli: return "bernoulli";
    case FaultLossMode::kBurst: return "burst";
  }
  return "?";
}

RejoinPolicy rejoin_policy_from_string(const std::string& name) {
  if (name == "suspect") return RejoinPolicy::kSuspect;
  if (name == "cold") return RejoinPolicy::kCold;
  throw std::invalid_argument("unknown rejoin policy: " + name);
}

std::string to_string(RejoinPolicy p) {
  switch (p) {
    case RejoinPolicy::kSuspect: return "suspect";
    case RejoinPolicy::kCold: return "cold";
  }
  return "?";
}

void FaultConfig::validate() const {
  const auto prob = [](double p, const char* what) {
    if (!(p >= 0.0 && p <= 1.0))
      throw std::invalid_argument(std::string("FaultConfig: ") + what +
                                  " must be in [0,1]");
  };
  prob(ir_loss, "ir_loss");
  prob(bcast_loss, "bcast_loss");
  prob(uplink_drop, "uplink_drop");
  if (loss_mode == FaultLossMode::kBurst &&
      (burst_mean_good_s <= 0.0 || burst_mean_bad_s <= 0.0))
    throw std::invalid_argument(
        "FaultConfig: burst sojourn means must be positive");
  if (backoff_mult < 1.0)
    throw std::invalid_argument("FaultConfig: backoff_mult >= 1");
  if (backoff_cap_s <= 0.0)
    throw std::invalid_argument("FaultConfig: backoff_cap_s > 0");
  if (churn_rate < 0.0)
    throw std::invalid_argument("FaultConfig: churn_rate >= 0");
  if (churn_rate > 0.0 && churn_mean_down_s <= 0.0)
    throw std::invalid_argument(
        "FaultConfig: churn_mean_down_s > 0 when churn is on");
  schedule.validate();
  if (churn_rate > 0.0) {
    for (const FaultScheduleEvent& e : schedule.events)
      if (e.kind == FaultScheduleKind::kDisconnect)
        throw std::invalid_argument(
            "FaultConfig: scripted disconnect windows are mutually exclusive "
            "with random churn (churn_rate > 0)");
  }
}

}  // namespace wdc
