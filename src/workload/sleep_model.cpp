#include "workload/sleep_model.hpp"

#include <stdexcept>
#include <utility>

namespace wdc {

SleepModel::SleepModel(Simulator& sim, const SleepConfig& cfg, Rng rng,
                       TransitionFn on_transition, ClientId trace_id)
    : sim_(sim),
      rng_(rng),
      on_transition_(std::move(on_transition)),
      trace_id_(trace_id) {
  if (!(cfg.sleep_ratio >= 0.0 && cfg.sleep_ratio < 1.0))
    throw std::invalid_argument("SleepConfig: sleep_ratio in [0,1)");
  enabled_ = cfg.sleep_ratio > 0.0;
  mean_sleep_s_ = cfg.mean_sleep_s;
  // sleep_ratio = mean_sleep / (mean_sleep + mean_awake)
  // ⇒ mean_awake = mean_sleep (1 − r) / r.
  mean_awake_s_ = enabled_
                      ? cfg.mean_sleep_s * (1.0 - cfg.sleep_ratio) / cfg.sleep_ratio
                      : 0.0;
  if (enabled_) schedule_transition();
}

void SleepModel::schedule_transition() {
  const double mean = awake_ ? mean_awake_s_ : mean_sleep_s_;
  const double dur = Exponential(1.0 / mean).sample(rng_);
  sim_.schedule_in(dur,
                   [this] {
                     awake_ = !awake_;
                     if (awake_) {
                       last_wakeup_ = sim_.now();
                     } else {
                       ++episodes_;
                     }
                     auto& tr = sim_.trace();
                     if (tr.enabled())
                       tr.emit(awake_ ? TraceEventKind::kWake
                                      : TraceEventKind::kSleep,
                               sim_.now(), trace_id_, kInvalidItem);
                     if (on_transition_) on_transition_(awake_);
                     schedule_transition();
                   },
                   EventPriority::kWorkload);
}

}  // namespace wdc
