#ifndef WDC_WORKLOAD_SLEEP_MODEL_HPP
#define WDC_WORKLOAD_SLEEP_MODEL_HPP

/// @file sleep_model.hpp
/// Client disconnection (doze/power-off) model: an alternating renewal process
/// with exponential awake and sleep durations. `sleep_ratio` (the fraction of time
/// disconnected) is the canonical x-axis of disconnection experiments (FIG-8).
///
/// Transitions are *events* so protocols can react (on reconnect a client must
/// re-validate its cache at the next report).

#include "sim/simulator.hpp"
#include "util/inline_action.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"
#include "util/variates.hpp"

namespace wdc {

struct SleepConfig {
  double sleep_ratio = 0.0;    ///< long-run fraction of time asleep (0 disables)
  double mean_sleep_s = 100.0; ///< mean duration of one sleep episode
};

class SleepModel {
 public:
  /// Small-buffer callback (same InlineFunction as the event kernel): the
  /// engine's capture is {this, index}, far under the inline capacity, so
  /// transitions never touch the heap.
  using TransitionFn = InlineFunction<void(bool awake)>;

  /// Client starts awake. `on_transition` fires at every awake<->sleep edge.
  /// `trace_id` labels this model's sleep/wake trace events (the owning
  /// client's id; kInvalidClient when unattributed).
  SleepModel(Simulator& sim, const SleepConfig& cfg, Rng rng,
             TransitionFn on_transition = {},
             ClientId trace_id = kInvalidClient);

  SleepModel(const SleepModel&) = delete;
  SleepModel& operator=(const SleepModel&) = delete;

  bool awake() const { return awake_; }
  /// Time of the most recent wake-up (0 if never slept).
  SimTime last_wakeup() const { return last_wakeup_; }
  std::uint64_t sleep_episodes() const { return episodes_; }

 private:
  void schedule_transition();

  Simulator& sim_;
  Rng rng_;
  double mean_awake_s_;
  double mean_sleep_s_;
  bool enabled_;
  bool awake_ = true;
  SimTime last_wakeup_ = 0.0;
  std::uint64_t episodes_ = 0;
  TransitionFn on_transition_;
  ClientId trace_id_;
};

}  // namespace wdc

#endif  // WDC_WORKLOAD_SLEEP_MODEL_HPP
