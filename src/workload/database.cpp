#include "workload/database.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wdc {

Database::Database(Simulator& sim, DatabaseConfig cfg, Rng rng)
    : sim_(sim),
      cfg_(cfg),
      rng_(rng),
      inter_update_(cfg.update_rate > 0.0 ? cfg.update_rate : 1.0),
      items_(cfg.num_items) {
  if (cfg_.num_items == 0) throw std::invalid_argument("Database: num_items > 0");
  if (cfg_.hot_items > cfg_.num_items) cfg_.hot_items = cfg_.num_items;
  if (!(cfg_.hot_update_frac >= 0.0 && cfg_.hot_update_frac <= 1.0))
    throw std::invalid_argument("Database: hot_update_frac in [0,1]");
  if (cfg_.item_size_sigma < 0.0)
    throw std::invalid_argument("Database: item_size_sigma >= 0");
  assign_item_sizes();
  if (cfg_.update_rate > 0.0) schedule_next();
}

void Database::assign_item_sizes() {
  item_bits_.resize(cfg_.num_items, cfg_.item_bits);
  if (cfg_.item_size_sigma <= 0.0) return;
  // Lognormal with mean preserved: mu = ln(mean) − sigma²/2.
  const double sigma = cfg_.item_size_sigma;
  const double mu = std::log(static_cast<double>(cfg_.item_bits)) - 0.5 * sigma * sigma;
  Lognormal dist(mu, sigma);
  for (auto& bits : item_bits_) {
    // Floor at one radio block's worth so airtime never degenerates.
    bits = static_cast<Bits>(std::max(64.0, dist.sample(rng_)));
  }
}

double Database::mean_item_bits() const {
  double acc = 0.0;
  for (const Bits b : item_bits_) acc += static_cast<double>(b);
  return acc / static_cast<double>(item_bits_.size());
}

void Database::schedule_next() {
  sim_.schedule_in(inter_update_.sample(rng_),
                   [this] {
                     // Pick the updated item: hot set w.p. hot_update_frac.
                     ItemId id;
                     if (cfg_.hot_items > 0 && rng_.bernoulli(cfg_.hot_update_frac)) {
                       id = static_cast<ItemId>(rng_.uniform_int(cfg_.hot_items));
                     } else {
                       const std::uint32_t cold = cfg_.num_items - cfg_.hot_items;
                       id = cold > 0 ? static_cast<ItemId>(cfg_.hot_items +
                                                           rng_.uniform_int(cold))
                                     : static_cast<ItemId>(
                                           rng_.uniform_int(cfg_.num_items));
                     }
                     apply_update(id);
                     schedule_next();
                   },
                   EventPriority::kWorkload);
}

void Database::apply_update(ItemId id) {
  if (id >= items_.size()) throw std::out_of_range("Database::apply_update");
  auto& item = items_[id];
  item.version++;
  item.last_update = sim_.now();
  item.history.push_back(sim_.now());
  log_.emplace_back(sim_.now(), id);
  ++total_updates_;
  if (observer_) observer_(id, sim_.now());
}

std::vector<ItemId> Database::updated_between(SimTime a, SimTime b) const {
  // Scan the global log from the first entry with time > a. Deduplicate ids.
  std::vector<ItemId> out;
  const auto first = std::upper_bound(
      log_.begin(), log_.end(), a,
      [](SimTime t, const std::pair<SimTime, ItemId>& e) { return t < e.first; });
  std::vector<bool> seen(items_.size(), false);
  for (auto it = first; it != log_.end() && it->first <= b; ++it) {
    if (!seen[it->second]) {
      seen[it->second] = true;
      out.push_back(it->second);
    }
  }
  return out;
}

bool Database::updated_in(ItemId id, SimTime a, SimTime b) const {
  const auto& h = items_[id].history;
  const auto it = std::upper_bound(h.begin(), h.end(), a);
  return it != h.end() && *it <= b;
}

Version Database::version_at(ItemId id, SimTime t) const {
  const auto& h = items_[id].history;
  return static_cast<Version>(std::upper_bound(h.begin(), h.end(), t) - h.begin());
}

}  // namespace wdc
