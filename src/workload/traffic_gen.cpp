#include "workload/traffic_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace wdc {

TrafficModel traffic_model_from_string(const std::string& name) {
  if (name == "off") return TrafficModel::kOff;
  if (name == "poisson") return TrafficModel::kPoisson;
  if (name == "pareto") return TrafficModel::kParetoBurst;
  throw std::invalid_argument("unknown traffic model: " + name);
}

std::string to_string(TrafficModel m) {
  switch (m) {
    case TrafficModel::kOff: return "off";
    case TrafficModel::kPoisson: return "poisson";
    case TrafficModel::kParetoBurst: return "pareto";
  }
  return "?";
}

TrafficGenerator::TrafficGenerator(Simulator& sim, const TrafficConfig& cfg,
                                   std::uint32_t num_clients, Rng rng, SinkFn sink)
    : sim_(sim), cfg_(cfg), num_clients_(num_clients), rng_(rng),
      sink_(std::move(sink)) {
  if (!sink_) throw std::invalid_argument("TrafficGenerator: sink required");
  if (num_clients_ == 0) throw std::invalid_argument("TrafficGenerator: clients > 0");
  if (cfg_.model == TrafficModel::kOff || cfg_.offered_bps <= 0.0) return;
  frame_rate_ = cfg_.offered_bps / static_cast<double>(cfg_.frame_bits);
  switch (cfg_.model) {
    case TrafficModel::kPoisson:
      schedule_poisson();
      break;
    case TrafficModel::kParetoBurst:
      burst_rate_ = frame_rate_ / cfg_.burst_mean_frames;
      schedule_burst_start();
      break;
    case TrafficModel::kOff:
      break;
  }
}

void TrafficGenerator::emit(ClientId dest) {
  ++frames_;
  bits_ += cfg_.frame_bits;
  sink_(TrafficFrame{dest, cfg_.frame_bits});
}

void TrafficGenerator::schedule_poisson() {
  const double gap = Exponential(frame_rate_).sample(rng_);
  sim_.schedule_in(gap,
                   [this] {
                     emit(static_cast<ClientId>(rng_.uniform_int(num_clients_)));
                     schedule_poisson();
                   },
                   EventPriority::kWorkload);
}

void TrafficGenerator::schedule_burst_start() {
  const double gap = Exponential(burst_rate_).sample(rng_);
  sim_.schedule_in(gap,
                   [this] {
                     // Burst length in frames: Pareto with the configured mean.
                     // xm = mean·(α−1)/α keeps E[len] = burst_mean_frames.
                     const double xm =
                         cfg_.burst_mean_frames * (cfg_.pareto_alpha - 1.0) /
                         cfg_.pareto_alpha;
                     const double len =
                         Pareto(std::max(xm, 1.0), cfg_.pareto_alpha).sample(rng_);
                     emit_burst(len);
                     schedule_burst_start();
                   },
                   EventPriority::kWorkload);
}

void TrafficGenerator::emit_burst(double remaining_frames) {
  if (remaining_frames < 1.0) return;
  // All frames of a burst go to one destination (a client fetching a page).
  const auto dest = static_cast<ClientId>(rng_.uniform_int(num_clients_));
  const auto n = static_cast<std::uint64_t>(remaining_frames);
  // Frames within a burst are spaced at the frame transmission timescale; the MAC
  // queue serialises them anyway, so emit with small constant spacing.
  const double spacing = 0.01;
  for (std::uint64_t i = 0; i < n; ++i) {
    sim_.schedule_in(spacing * static_cast<double>(i),
                     [this, dest] { emit(dest); }, EventPriority::kWorkload);
  }
}

}  // namespace wdc
