#ifndef WDC_WORKLOAD_DATABASE_HPP
#define WDC_WORKLOAD_DATABASE_HPP

/// @file database.hpp
/// The server's item database and its update process.
///
/// Items carry a version (update count) and the time of their latest update. A
/// Poisson update stream of rate λ_u selects items from a hot/cold partition
/// (fraction `hot_update_frac` of updates land uniformly in the first `hot_items`
/// ids — the canonical workload of the invalidation literature). The database keeps
/// the complete per-item update history so that (a) report builders can list "ids
/// updated in (a, b]" exactly and (b) the staleness oracle used by tests can decide
/// whether a served answer violated consistency.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"
#include "util/variates.hpp"

namespace wdc {

struct DatabaseConfig {
  std::uint32_t num_items = 1000;
  Bits item_bits = bits_from_bytes(1024);  ///< mean payload size of an item
  /// Lognormal spread of per-item sizes (σ of ln-size; 0 = every item identical).
  /// Sizes are fixed per item at construction with mean preserved — web-object
  /// style heterogeneity: most items small, a heavy tail of large ones.
  double item_size_sigma = 0.0;
  double update_rate = 0.5;                ///< server updates per second (total)
  std::uint32_t hot_items = 50;            ///< size of the hot update subset
  double hot_update_frac = 0.8;            ///< fraction of updates hitting the hot set
};

class Database {
 public:
  /// Constructs the database and, if `cfg.update_rate > 0`, starts the update
  /// process on `sim` immediately.
  Database(Simulator& sim, DatabaseConfig cfg, Rng rng);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  std::uint32_t num_items() const { return cfg_.num_items; }
  /// Wire size of one item's payload (per-item under heterogeneous sizing).
  Bits item_bits(ItemId id) const { return item_bits_[id]; }
  /// Mean item size across the database (bits).
  double mean_item_bits() const;

  Version version(ItemId id) const { return items_[id].version; }
  /// Time of the latest update of `id`; 0 when never updated.
  SimTime last_update(ItemId id) const { return items_[id].last_update; }

  /// Ids updated in the half-open interval (a, b], each listed once.
  std::vector<ItemId> updated_between(SimTime a, SimTime b) const;

  /// True if `id` received at least one update with time in (a, b].
  bool updated_in(ItemId id, SimTime a, SimTime b) const;

  /// Version of `id` as of time `t` (number of updates with time <= t).
  Version version_at(ItemId id, SimTime t) const;

  std::uint64_t total_updates() const { return total_updates_; }

  /// Manually apply one update (tests and trace-driven runs).
  void apply_update(ItemId id);

  /// Observer invoked after every update commits (stateful/callback protocols
  /// subscribe to push invalidation notices).
  using UpdateObserver = std::function<void(ItemId, SimTime)>;
  void set_update_observer(UpdateObserver obs) { observer_ = std::move(obs); }

  const DatabaseConfig& config() const { return cfg_; }

 private:
  void schedule_next();

  struct Item {
    Version version = 0;
    SimTime last_update = 0.0;
    std::vector<SimTime> history;  ///< ascending update times
  };

  void assign_item_sizes();

  Simulator& sim_;
  DatabaseConfig cfg_;
  Rng rng_;
  Exponential inter_update_;
  std::vector<Item> items_;
  std::vector<Bits> item_bits_;
  /// Global time-ordered update log: (time, id).
  std::deque<std::pair<SimTime, ItemId>> log_;
  std::uint64_t total_updates_ = 0;
  UpdateObserver observer_;
};

}  // namespace wdc

#endif  // WDC_WORKLOAD_DATABASE_HPP
