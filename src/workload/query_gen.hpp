#ifndef WDC_WORKLOAD_QUERY_GEN_HPP
#define WDC_WORKLOAD_QUERY_GEN_HPP

/// @file query_gen.hpp
/// Per-client query workload: Poisson arrivals; item choice from either
///  * the classic hot/cold model (fraction `hot_frac` of queries uniform over the
///    first `hot_items` ids, rest uniform over the cold remainder) — the workload
///    of the Barbara–Imielinski/Cao evaluations, or
///  * a Zipf popularity law over the whole item space.
///
/// A generator is gated by an `active` predicate (the sleep model): queries that
/// would arrive while the client is disconnected are not generated (a powered-off
/// terminal issues no queries). The Poisson clock keeps running so reconnection
/// does not cause a synchronized burst.

#include <functional>
#include <memory>
#include <string>

#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"
#include "util/variates.hpp"

namespace wdc {

enum class QueryModel { kHotCold, kZipf };

QueryModel query_model_from_string(const std::string& name);
std::string to_string(QueryModel m);

struct QueryConfig {
  QueryModel model = QueryModel::kHotCold;
  double rate = 0.1;           ///< queries per second per client
  // hot/cold parameters
  std::uint32_t hot_items = 100;  ///< ids [0, hot_items) form the hot query set
  double hot_frac = 0.8;          ///< fraction of queries hitting the hot set
  // zipf parameter
  double zipf_theta = 0.9;     ///< popularity skew over the whole item space
};

class QueryGenerator {
 public:
  using QueryFn = std::function<void(ItemId)>;
  using ActiveFn = std::function<bool()>;

  /// Starts generating immediately.
  QueryGenerator(Simulator& sim, const QueryConfig& cfg, std::uint32_t num_items,
                 Rng rng, ActiveFn active, QueryFn on_query);

  QueryGenerator(const QueryGenerator&) = delete;
  QueryGenerator& operator=(const QueryGenerator&) = delete;

  std::uint64_t generated() const { return generated_; }
  std::uint64_t suppressed() const { return suppressed_; }

 private:
  void schedule_next();
  ItemId sample_item();

  Simulator& sim_;
  QueryConfig cfg_;
  std::uint32_t num_items_;
  Exponential inter_arrival_;
  std::unique_ptr<Zipf> item_dist_;  ///< only for the Zipf model
  Rng rng_;
  ActiveFn active_;
  QueryFn on_query_;
  std::uint64_t generated_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace wdc

#endif  // WDC_WORKLOAD_QUERY_GEN_HPP
