#ifndef WDC_WORKLOAD_TRAFFIC_GEN_HPP
#define WDC_WORKLOAD_TRAFFIC_GEN_HPP

/// @file traffic_gen.hpp
/// Background downlink traffic — the load invalidation reports compete with.
///
/// Two generators:
///  * Poisson — independent frame arrivals, exponential-ish smooth load;
///  * Pareto-burst ON/OFF — heavy-tailed ON periods emitting back-to-back frames
///    (self-similar-like aggregate, the web-traffic regime).
/// Both are parameterised by *offered load* in bits/s so experiments sweep one knob.
/// Frames are handed to a sink callback (the server protocol, which may piggyback
/// invalidation digests before the frame reaches the MAC).

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"
#include "util/variates.hpp"

namespace wdc {

enum class TrafficModel { kOff, kPoisson, kParetoBurst };

TrafficModel traffic_model_from_string(const std::string& name);
std::string to_string(TrafficModel m);

struct TrafficConfig {
  TrafficModel model = TrafficModel::kPoisson;
  double offered_bps = 20e3;               ///< average downlink load
  Bits frame_bits = bits_from_bytes(500);  ///< mean frame size
  double pareto_alpha = 1.5;               ///< ON-period tail index
  double burst_mean_frames = 10.0;         ///< mean frames per ON burst
};

/// One downlink frame destined to a client.
struct TrafficFrame {
  ClientId dest;
  Bits bits;
};

class TrafficGenerator {
 public:
  using SinkFn = std::function<void(const TrafficFrame&)>;

  /// Starts generating immediately; destinations are uniform over [0, num_clients).
  TrafficGenerator(Simulator& sim, const TrafficConfig& cfg, std::uint32_t num_clients,
                   Rng rng, SinkFn sink);

  TrafficGenerator(const TrafficGenerator&) = delete;
  TrafficGenerator& operator=(const TrafficGenerator&) = delete;

  std::uint64_t frames() const { return frames_; }
  Bits bits() const { return bits_; }

 private:
  void schedule_poisson();
  void schedule_burst_start();
  void emit_burst(double remaining_frames);
  void emit(ClientId dest);

  Simulator& sim_;
  TrafficConfig cfg_;
  std::uint32_t num_clients_;
  Rng rng_;
  SinkFn sink_;
  double frame_rate_ = 0.0;     ///< frames/s to meet offered load
  double burst_rate_ = 0.0;     ///< bursts/s (pareto model)
  std::uint64_t frames_ = 0;
  Bits bits_ = 0;
};

}  // namespace wdc

#endif  // WDC_WORKLOAD_TRAFFIC_GEN_HPP
