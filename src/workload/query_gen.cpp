#include "workload/query_gen.hpp"

#include <stdexcept>
#include <utility>

namespace wdc {

QueryModel query_model_from_string(const std::string& name) {
  if (name == "hotcold") return QueryModel::kHotCold;
  if (name == "zipf") return QueryModel::kZipf;
  throw std::invalid_argument("unknown query model: " + name);
}

std::string to_string(QueryModel m) {
  switch (m) {
    case QueryModel::kHotCold: return "hotcold";
    case QueryModel::kZipf: return "zipf";
  }
  return "?";
}

QueryGenerator::QueryGenerator(Simulator& sim, const QueryConfig& cfg,
                               std::uint32_t num_items, Rng rng, ActiveFn active,
                               QueryFn on_query)
    : sim_(sim),
      cfg_(cfg),
      num_items_(num_items),
      inter_arrival_(cfg.rate > 0.0 ? cfg.rate : 1.0),
      rng_(rng),
      active_(std::move(active)),
      on_query_(std::move(on_query)) {
  if (!active_ || !on_query_)
    throw std::invalid_argument("QueryGenerator: callbacks required");
  if (num_items_ == 0) throw std::invalid_argument("QueryGenerator: items > 0");
  if (cfg_.hot_items > num_items_) cfg_.hot_items = num_items_;
  if (cfg_.model == QueryModel::kZipf)
    item_dist_ = std::make_unique<Zipf>(num_items_, cfg_.zipf_theta);
  if (cfg_.rate > 0.0) schedule_next();
}

ItemId QueryGenerator::sample_item() {
  if (cfg_.model == QueryModel::kZipf)
    return static_cast<ItemId>(item_dist_->sample(rng_));
  const std::uint32_t cold = num_items_ - cfg_.hot_items;
  if (cfg_.hot_items > 0 && (cold == 0 || rng_.bernoulli(cfg_.hot_frac)))
    return static_cast<ItemId>(rng_.uniform_int(cfg_.hot_items));
  return static_cast<ItemId>(cfg_.hot_items + rng_.uniform_int(cold));
}

void QueryGenerator::schedule_next() {
  sim_.schedule_in(inter_arrival_.sample(rng_),
                   [this] {
                     if (active_()) {
                       ++generated_;
                       on_query_(sample_item());
                     } else {
                       ++suppressed_;
                     }
                     schedule_next();
                   },
                   EventPriority::kWorkload);
}

}  // namespace wdc
