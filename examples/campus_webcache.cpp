/// @file campus_webcache.cpp
/// Scenario example: a campus hotspot cell serving cached web objects.
///
/// 60 laptops/PDAs spread over a 400 m cell (path-loss SNR assignment), bursty
/// Pareto web traffic on the downlink, pedestrian Doppler, light sleep (lids
/// closing). The question a deployment engineer asks: which invalidation scheme
/// keeps page-object queries fast while the cell is busy? Runs 3 replications
/// per protocol and prints a ranked comparison with 95% confidence intervals.
///
/// Usage: ./campus_webcache [reps=3] [any scenario key=value …]

#include <algorithm>
#include <iostream>

#include "engine/replication.hpp"
#include "engine/simulation.hpp"
#include "stats/table.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace wdc;
  Config cfg;
  cfg.load_args(argc, argv);
  const auto reps = static_cast<unsigned>(cfg.get_int("reps", 3));

  Scenario base;
  base.num_clients = 60;
  base.db.num_items = 2000;               // cacheable page objects
  base.db.item_bits = bits_from_bytes(800);
  base.db.update_rate = 0.3;              // CMS edits
  base.query.rate = 0.08;
  base.query.hot_items = 150;             // the portal pages
  base.snr_assignment = SnrAssignment::kPathLoss;
  base.tx_power_dbm = 24.0;
  base.cell.radius_m = 400.0;
  base.traffic.model = TrafficModel::kParetoBurst;
  base.traffic.offered_bps = 30e3;        // busy shared downlink
  base.fading.doppler_hz = 4.0;           // walking speed
  base.sleep.sleep_ratio = 0.1;
  base.sleep.mean_sleep_s = 60.0;
  base.sim_time_s = cfg.get_double("sim_time", 2500.0);
  base.warmup_s = cfg.get_double("warmup", 400.0);
  base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 17));

  std::cout << "campus_webcache — " << base.num_clients << " clients, "
            << base.db.num_items << " objects, bursty downlink "
            << base.traffic.offered_bps / 1000.0 << " kb/s, " << reps
            << " replications per protocol\n\n";

  struct Row {
    ProtocolKind kind;
    double latency, latency_hw, p90, hit, energy;
  };
  std::vector<Row> rows;
  for (const auto kind : kAllProtocols) {
    Scenario s = base;
    s.protocol = kind;
    const auto rs = run_replications(s, reps, 0);
    const auto lat = ci_of(rs, [](const Metrics& m) { return m.mean_latency_s; });
    rows.push_back(
        {kind, lat.mean, lat.half_width,
         ci_of(rs, [](const Metrics& m) { return m.p90_latency_s; }).mean,
         ci_of(rs, [](const Metrics& m) { return m.hit_ratio; }).mean,
         ci_of(rs, [](const Metrics& m) { return m.listen_airtime_per_query; })
             .mean});
    std::cout << "  simulated " << to_string(kind) << "\n";
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.latency < b.latency; });

  std::cout << "\nranked by mean query latency:\n\n";
  Table t({"rank", "protocol", "latency (s)", "p90 (s)", "hit ratio",
           "listen s/query"});
  int rank = 1;
  for (const auto& r : rows) {
    t.begin_row();
    t.cell(strfmt("%d", rank++));
    t.cell(to_string(r.kind));
    t.cell_ci(r.latency, r.latency_hw, 2);
    t.cell(r.p90, 2);
    t.cell(r.hit, 3);
    t.cell(r.energy, 3);
  }
  t.print_text(std::cout, "  ");
  std::cout << "\nReading: the digest-bearing schemes (HYB/PIG) should lead — on a"
               "\nbusy downlink every data burst doubles as an invalidation "
               "beacon.\n";
  return 0;
}
