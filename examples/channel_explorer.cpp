/// @file channel_explorer.cpp
/// Substrate example: the radio models without any caching protocol on top.
///
/// Prints (1) the EDGE-like MCS table with its BLER operating points, (2) a
/// short time trace of a Rayleigh-faded link with the AMC controller's choices,
/// and (3) the long-run throughput each fading model sustains at a given mean
/// SNR — the numbers behind FIG-6/FIG-7.
///
/// Usage: ./channel_explorer [mean_snr=18] [doppler=8] [trace_s=3]

#include <iostream>

#include "channel/snr_process.hpp"
#include "phy/amc.hpp"
#include "phy/mcs.hpp"
#include "stats/table.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace wdc;
  Config cfg;
  cfg.load_args(argc, argv);
  const double mean_snr = cfg.get_double("mean_snr", 18.0);
  const double doppler = cfg.get_double("doppler", 8.0);
  const double trace_s = cfg.get_double("trace_s", 3.0);

  const McsTable table = McsTable::edge(4);

  std::cout << "— MCS table (EDGE-like, 4 timeslots) —\n\n";
  Table mcs_table({"scheme", "rate kb/s", "SNR@10% BLER", "SNR@1% BLER"});
  for (std::size_t i = 0; i < table.size(); ++i) {
    mcs_table.begin_row();
    mcs_table.cell(table[i].name);
    mcs_table.cell(table[i].rate_bps / 1000.0, 1);
    mcs_table.cell(table[i].snr_for_bler(0.10), 1);
    mcs_table.cell(table[i].snr_for_bler(0.01), 1);
  }
  mcs_table.print_text(std::cout, "  ");

  std::cout << "\n— AMC trace: Rayleigh link, mean SNR " << mean_snr
            << " dB, Doppler " << doppler << " Hz —\n\n";
  Rng rng(42);
  RayleighSnr link(mean_snr, doppler, 0.0, 0.0, rng);
  AmcConfig amc_cfg;
  AmcController amc(table, amc_cfg);
  std::cout << strfmt("  %8s %10s %8s %12s\n", "t (ms)", "SNR (dB)", "MCS",
                      "rate kb/s");
  for (double t = 0.0; t <= trace_s; t += trace_s / 30.0) {
    const double snr = link.snr_db(t);
    const std::size_t mcs = amc.select_from_snr(snr);
    std::cout << strfmt("  %8.0f %10.1f %8s %12.1f\n", t * 1000.0, snr,
                        table[mcs].name.c_str(), table[mcs].rate_bps / 1000.0);
  }

  std::cout << "\n— Sustained goodput by fading model at mean SNR " << mean_snr
            << " dB —\n  (1000-bit frames, AMC with 20 ms CSI delay, decode "
               "failures discard the frame)\n\n";
  Table tput({"model", "goodput kb/s", "frame loss"});
  for (const auto model : {FadingModel::kNone, FadingModel::kRayleigh,
                           FadingModel::kFsmc, FadingModel::kGilbertElliott}) {
    FadingConfig fc;
    fc.model = model;
    fc.doppler_hz = doppler;
    Rng model_rng(7);
    auto proc = make_snr_process(fc, mean_snr, model_rng);
    AmcController ctrl(table, amc_cfg);
    Rng coin(8);
    const Bits frame_bits = 1000;
    double t = 0.0;
    double delivered_bits = 0.0;
    std::uint64_t frames = 0, lost = 0;
    while (t < 400.0) {
      const double est = proc->snr_db(std::max(0.0, t - amc_cfg.csi_delay_s));
      const std::size_t mcs = ctrl.select_from_snr(est, frame_bits);
      const double airtime = table.airtime_s(frame_bits, mcs);
      t += airtime;
      ++frames;
      const double p_ok = table.decode_prob(frame_bits, mcs, proc->snr_db(t));
      if (coin.bernoulli(p_ok))
        delivered_bits += static_cast<double>(frame_bits);
      else
        ++lost;
    }
    tput.begin_row();
    tput.cell(to_string(model));
    tput.cell(delivered_bits / t / 1000.0, 1);
    tput.cell(static_cast<double>(lost) / static_cast<double>(frames), 4);
  }
  tput.print_text(std::cout, "  ");
  std::cout << "\nReading: fading costs goodput twice — robust MCS choices and "
               "residual frame\nloss. The FSMC tracks the Rayleigh numbers; "
               "that is what FIG-6/7 build on.\n";
  return 0;
}
