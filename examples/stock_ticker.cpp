/// @file stock_ticker.cpp
/// Scenario example: mobile stock-quote terminals.
///
/// A small database of quotes (300 symbols) with a *hot* update process — the
/// top 30 symbols take 90% of the updates at 5 updates/s — and impatient
/// clients. Freshness pressure is maximal: cached quotes die quickly, so the
/// invalidation scheme's deferral time dominates user-visible latency.
///
/// Demonstrates the incremental API: the simulation advances in 5-minute slices
/// and prints the evolving metrics, the way a long measurement campaign would.
///
/// Usage: ./stock_ticker [protocol=UIR] [slices=6] [any scenario key=value …]

#include <iostream>

#include "engine/simulation.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace wdc;
  Config cfg;
  cfg.load_args(argc, argv);
  const auto slices = static_cast<int>(cfg.get_int("slices", 6));

  Scenario s;
  s.protocol = protocol_from_string(cfg.get_string("protocol", "UIR"));
  s.num_clients = 40;
  s.db.num_items = 300;
  s.db.item_bits = bits_from_bytes(64);  // a quote is tiny
  s.db.update_rate = 5.0;                // market hours
  s.db.hot_items = 30;
  s.db.hot_update_frac = 0.9;
  s.query.rate = 0.2;                    // impatient traders
  s.query.hot_items = 30;                // everyone watches the same symbols
  s.query.hot_frac = 0.9;
  s.proto.ir_interval_s = 10.0;          // freshness demands a short interval
  s.proto.uir_m = 5;
  s.proto.pig_horizon_s = 15.0;
  s.proto.cache_capacity = 300;          // quotes are small: cache everything
  s.traffic.offered_bps = 15e3;          // news/chart downloads
  s.sim_time_s = 300.0 * slices + 100.0;
  s.warmup_s = 100.0;
  s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 3));

  std::cout << "stock_ticker — protocol " << to_string(s.protocol) << ", "
            << s.db.update_rate << " updates/s on " << s.db.hot_items
            << " hot symbols, IR every " << s.proto.ir_interval_s << "s\n\n";
  std::cout << strfmt("%8s %10s %10s %10s %12s %12s\n", "t (s)", "answered",
                      "hit ratio", "latency", "stale", "req/query");

  Simulation sim(s);
  for (int slice = 1; slice <= slices; ++slice) {
    sim.run_until(100.0 + 300.0 * slice);
    const Metrics m = sim.collect();
    std::cout << strfmt("%8.0f %10llu %10.3f %9.2fs %12llu %12.3f\n",
                        m.sim_time_s,
                        static_cast<unsigned long long>(m.answered), m.hit_ratio,
                        m.mean_latency_s,
                        static_cast<unsigned long long>(m.stale_serves),
                        m.uplink_per_query);
  }

  const Metrics m = sim.collect();
  std::cout << "\nfinal: " << m.answered << " queries answered, mean latency "
            << strfmt("%.2f", m.mean_latency_s) << "s, p99 "
            << strfmt("%.2f", m.p99_latency_s) << "s, " << m.stale_serves
            << " stale quotes served (must be 0)\n";
  std::cout << "\nTip: rerun with protocol=TS to see what the quote staleness "
               "pressure does\nto a plain timestamp scheme, or protocol=HYB to "
               "let the news traffic carry\nthe invalidations.\n";
  return m.stale_serves == 0 ? 0 : 1;
}
