/// @file lease_vs_report.cpp
/// Scenario example: why did wireless data caching standardise on broadcast
/// invalidation reports instead of stateful callbacks?
///
/// Runs CBL (leases + unicast callback notices) against TS and HYB across
/// increasingly hostile channels and prints the three-way trade-off:
/// latency (CBL wins), server state (CBL pays), consistency (CBL leaks —
/// stale serves appear exactly when fading and sleep interrupt the callback
/// channel, while the IR schemes stay at zero by construction).
///
/// Usage: ./lease_vs_report [reps=2] [any scenario key=value …]

#include <iostream>

#include "engine/replication.hpp"
#include "engine/simulation.hpp"
#include "stats/table.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace wdc;
  Config cfg;
  cfg.load_args(argc, argv);
  const auto reps = static_cast<unsigned>(cfg.get_int("reps", 2));

  Scenario base;
  base.num_clients = 25;
  base.db.num_items = 400;
  base.db.update_rate = 1.0;  // callback traffic needs updates to exist
  base.query.rate = 0.1;
  base.sim_time_s = cfg.get_double("sim_time", 2000.0);
  base.warmup_s = cfg.get_double("warmup", 300.0);
  base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 11));
  base.proto.cbl_lease_s = 120.0;

  struct Env {
    const char* name;
    double mean_snr_db;
    double sleep_ratio;
  };
  const Env envs[] = {
      {"benign (26 dB, no sleep)", 26.0, 0.0},
      {"faded (14 dB, no sleep)", 14.0, 0.0},
      {"hostile (14 dB, 20% sleep)", 14.0, 0.2},
  };

  std::cout << "lease_vs_report — CBL (stateful callbacks) vs TS/HYB (broadcast "
               "reports)\n\n";
  Table t({"environment", "protocol", "latency (s)", "stale/10k answers",
           "uplink msg/query"});
  for (const auto& env : envs) {
    for (const auto kind :
         {ProtocolKind::kCbl, ProtocolKind::kTs, ProtocolKind::kHyb}) {
      Scenario s = base;
      s.mean_snr_db = env.mean_snr_db;
      s.sleep.sleep_ratio = env.sleep_ratio;
      s.protocol = kind;
      const auto rs = run_replications(s, reps, 0);
      const Metrics m = mean_of(rs);
      t.begin_row();
      t.cell(env.name);
      t.cell(to_string(kind));
      t.cell(m.mean_latency_s, 2);
      t.cell(m.answered ? 1e4 * double(m.stale_serves) / double(m.answered) : 0.0,
             2);
      t.cell(m.uplink_per_query, 3);
      std::cout << "  ran " << to_string(kind) << " in " << env.name << "\n";
    }
  }
  std::cout << "\n";
  t.print_text(std::cout, "  ");
  std::cout << "\nReading: CBL's zero-wait reads look unbeatable on the benign "
               "channel — but its\nstale column is never 0 (in-flight notices) and "
               "grows with fading, while the\nreport schemes stay at exactly 0 "
               "everywhere. Under sleep CBL leaks less only\nbecause voided "
               "leases also destroy its zero-wait benefit. That asymmetry is\nthe "
               "reason the IR family (this paper's subject) exists.\n";
  return 0;
}
