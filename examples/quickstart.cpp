/// @file quickstart.cpp
/// Smallest possible use of the public API: simulate one protocol at the default
/// operating point and print its metrics. Any scenario knob can be overridden on
/// the command line as key=value, e.g.:
///
///   ./quickstart protocol=HYB update_rate=20 traffic_bps=40000 seed=7

#include <iostream>

#include "engine/simulation.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  wdc::Config cfg;
  cfg.load_args(argc, argv);
  wdc::Scenario sc = wdc::Scenario::from_config(cfg);
  for (const auto& key : cfg.unused_keys())
    std::cerr << "warning: unknown config key '" << key << "'\n";

  std::cout << "wdc-sim quickstart — protocol " << wdc::to_string(sc.protocol)
            << ", " << sc.num_clients << " clients, " << sc.db.num_items
            << " items, " << sc.sim_time_s << "s simulated\n\n";

  const wdc::Metrics m = wdc::run_scenario(sc);
  m.print(std::cout);
  std::cout << "\n(" << m.events << " events executed)\n";
  // Exit status reflects the consistency contract — which CBL deliberately
  // relaxes (its stale count is the measurement, not a failure).
  const bool contract_holds =
      m.stale_serves == 0 || sc.protocol == wdc::ProtocolKind::kCbl;
  return contract_holds ? 0 : 1;
}
