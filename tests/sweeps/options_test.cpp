/// @file options_test.cpp
/// The driver's option resolution and the sweep registry.
///
/// Historically the bench harness re-derived scenario defaults through a
/// second Config round-trip (defaults were printf'd with %g and re-parsed), so
/// an override could land twice or a default could lose precision. Resolution
/// now goes through Scenario::from_config(cfg, base) — the single source of
/// truth — and these tests pin that down.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sweeps/sweeps.hpp"
#include "util/config.hpp"

namespace wdc {
namespace {

TEST(SweepOptionsTest, DefaultsAreTheBenchOperatingPoint) {
  const Config cfg;
  const SweepOptions opts = sweeps::options_from_config(cfg);
  EXPECT_EQ(opts.reps, 3u);
  EXPECT_EQ(opts.threads, 0u);
  EXPECT_EQ(opts.base.num_clients, 30u);
  EXPECT_EQ(opts.base.db.num_items, 600u);
  EXPECT_DOUBLE_EQ(opts.base.sim_time_s, 2000.0);
  EXPECT_DOUBLE_EQ(opts.base.warmup_s, 300.0);
  EXPECT_EQ(opts.base.seed, 20040426u);
}

TEST(SweepOptionsTest, OverridesLandExactlyOnce) {
  Config cfg;
  cfg.set("sim_time", "100");
  cfg.set("warmup", "20");  // sim_time must exceed warmup (default 300)
  cfg.set("seed", "7");
  cfg.set("clients", "12");
  cfg.set("reps", "5");
  const SweepOptions opts = sweeps::options_from_config(cfg);
  EXPECT_EQ(opts.reps, 5u);
  // Each override lands on the scenario once, everything else keeps the
  // bench-scale default.
  EXPECT_DOUBLE_EQ(opts.base.sim_time_s, 100.0);
  EXPECT_DOUBLE_EQ(opts.base.warmup_s, 20.0);
  EXPECT_EQ(opts.base.seed, 7u);
  EXPECT_EQ(opts.base.num_clients, 12u);
  EXPECT_EQ(opts.base.db.num_items, 600u);
}

TEST(SweepOptionsTest, NoRoundTripThroughTextFormatting) {
  // A value that %g formatting would truncate must survive bit-exact.
  Config cfg;
  cfg.set("sim_time", "1234.5678901234567");
  const SweepOptions opts = sweeps::options_from_config(cfg);
  EXPECT_DOUBLE_EQ(opts.base.sim_time_s, 1234.5678901234567);
}

TEST(SweepOptionsTest, FromConfigBaseOverloadLayersOnTop) {
  Scenario base = sweeps::default_scenario();
  base.proto.ir_interval_s = 42.0;
  Config cfg;
  cfg.set("clients", "9");
  const Scenario sc = Scenario::from_config(cfg, base);
  EXPECT_EQ(sc.num_clients, 9u);                     // overridden
  EXPECT_DOUBLE_EQ(sc.proto.ir_interval_s, 42.0);    // inherited from base
  EXPECT_EQ(sc.seed, 20040426u);                     // inherited from base
}

TEST(SweepRegistryTest, AllFourteenSweepsRegistered) {
  const auto& specs = sweeps::all();
  ASSERT_EQ(specs.size(), 14u);
  const std::vector<std::string> expected = {
      "fig1", "fig2", "fig3",  "fig4", "fig5", "fig6", "fig7",
      "fig8", "fig9", "fig10", "figf", "tab1", "tab2", "tab3"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(specs[i].key, expected[i]);
    EXPECT_FALSE(specs[i].title.empty());
    EXPECT_FALSE(specs[i].variants.empty()) << specs[i].key;
    EXPECT_FALSE(specs[i].axis.values.empty()) << specs[i].key;
    EXPECT_FALSE(specs[i].series.empty()) << specs[i].key;
  }
}

TEST(SweepRegistryTest, FindByKey) {
  const SweepSpec* fig1 = sweeps::find("fig1");
  ASSERT_NE(fig1, nullptr);
  EXPECT_EQ(fig1->id, "FIG-1");
  EXPECT_EQ(sweeps::find("fig99"), nullptr);
  EXPECT_EQ(sweeps::find(""), nullptr);
}

}  // namespace
}  // namespace wdc
