#include <gtest/gtest.h>

#include "phy/mcs.hpp"

/// Property sweeps over every MCS table the system ships: the invariants link
/// adaptation relies on must hold for any table, not just the EDGE default.

namespace wdc {
namespace {

struct TableCase {
  const char* name;
  McsTable (*make)();
};

McsTable make_edge() { return McsTable::edge(4); }
McsTable make_edge1() { return McsTable::edge(1); }
McsTable make_wifi() { return McsTable::wifi11b(); }
McsTable make_simple() { return McsTable::simple3(); }

class McsTableProperties : public ::testing::TestWithParam<TableCase> {};

TEST_P(McsTableProperties, RatesStrictlyIncrease) {
  const McsTable t = GetParam().make();
  for (std::size_t i = 1; i < t.size(); ++i)
    EXPECT_GT(t[i].rate_bps, t[i - 1].rate_bps);
}

TEST_P(McsTableProperties, ThresholdsStrictlyIncrease) {
  const McsTable t = GetParam().make();
  for (std::size_t i = 1; i < t.size(); ++i)
    EXPECT_GT(t[i].gamma50_db, t[i - 1].gamma50_db);
}

TEST_P(McsTableProperties, BlerMonotoneInSnrForEveryScheme) {
  const McsTable t = GetParam().make();
  for (std::size_t i = 0; i < t.size(); ++i) {
    double prev = 1.1;
    for (double snr = -20.0; snr <= 40.0; snr += 0.5) {
      const double b = t[i].bler(snr);
      // Strictly decreasing except where the logistic saturates at 1.0 in
      // double precision (deep below gamma50).
      ASSERT_LE(b, prev) << t[i].name << " at " << snr;
      if (prev < 1.0 - 1e-9) {
        ASSERT_LT(b, prev) << t[i].name << " at " << snr;
      }
      ASSERT_GE(b, 0.0);
      ASSERT_LE(b, 1.0);
      prev = b;
    }
  }
}

TEST_P(McsTableProperties, BlerMonotoneAcrossSchemesAtFixedSnr) {
  // Higher-rate schemes are never MORE robust at any SNR.
  const McsTable t = GetParam().make();
  for (double snr = -10.0; snr <= 40.0; snr += 1.0)
    for (std::size_t i = 1; i < t.size(); ++i)
      ASSERT_GE(t[i].bler(snr), t[i - 1].bler(snr)) << "snr=" << snr;
}

TEST_P(McsTableProperties, SelectionMonotoneInSnr) {
  const McsTable t = GetParam().make();
  std::size_t prev = 0;
  for (double snr = -20.0; snr <= 50.0; snr += 0.25) {
    const std::size_t i = t.best_for(snr, 0.1);
    ASSERT_GE(i, prev);
    prev = i;
  }
  EXPECT_EQ(prev, t.size() - 1);
}

TEST_P(McsTableProperties, SelectionMonotoneInTargetStrictness) {
  // A stricter BLER target never selects a faster scheme.
  const McsTable t = GetParam().make();
  for (double snr = -5.0; snr <= 40.0; snr += 2.5)
    ASSERT_LE(t.best_for(snr, 0.01), t.best_for(snr, 0.2)) << "snr=" << snr;
}

TEST_P(McsTableProperties, MessageSelectionNeverFasterThanBlockSelection) {
  const McsTable t = GetParam().make();
  for (double snr = 0.0; snr <= 40.0; snr += 2.0)
    ASSERT_LE(t.best_for_message(snr, 0.1, 50000), t.best_for(snr, 0.1));
}

TEST_P(McsTableProperties, AirtimeMonotoneInBitsAndScheme) {
  const McsTable t = GetParam().make();
  for (std::size_t i = 0; i < t.size(); ++i) {
    ASSERT_LT(t.airtime_s(100, i), t.airtime_s(10000, i));
    if (i > 0) {
      ASSERT_LT(t.airtime_s(10000, i), t.airtime_s(10000, i - 1));
    }
  }
}

TEST_P(McsTableProperties, DecodeProbMonotoneInSnr) {
  const McsTable t = GetParam().make();
  for (std::size_t i = 0; i < t.size(); ++i) {
    double prev = -1.0;
    for (double snr = -10.0; snr <= 40.0; snr += 1.0) {
      const double p = t.decode_prob(4000, i, snr);
      ASSERT_GE(p, prev);
      prev = p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTables, McsTableProperties,
                         ::testing::Values(TableCase{"edge4", &make_edge},
                                           TableCase{"edge1", &make_edge1},
                                           TableCase{"wifi11b", &make_wifi},
                                           TableCase{"simple3", &make_simple}),
                         [](const ::testing::TestParamInfo<TableCase>& tpi) {
                           return std::string(tpi.param.name);
                         });

}  // namespace
}  // namespace wdc
