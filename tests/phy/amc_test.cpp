#include "phy/amc.hpp"

#include <gtest/gtest.h>

namespace wdc {
namespace {

class AmcTest : public ::testing::Test {
 protected:
  McsTable table_ = McsTable::edge();
};

TEST_F(AmcTest, FixedModeAlwaysReturnsConfigured) {
  AmcConfig cfg;
  cfg.adaptive = false;
  cfg.fixed_mcs = 3;
  AmcController amc(table_, cfg);
  EXPECT_EQ(amc.select_from_snr(-20.0), 3u);
  EXPECT_EQ(amc.select_from_snr(40.0), 3u);
}

TEST_F(AmcTest, FixedModeClampsOutOfRange) {
  AmcConfig cfg;
  cfg.adaptive = false;
  cfg.fixed_mcs = 99;
  AmcController amc(table_, cfg);
  EXPECT_EQ(amc.select_from_snr(10.0), table_.size() - 1);
}

TEST_F(AmcTest, AdaptiveTracksSnr) {
  AmcConfig cfg;
  cfg.hysteresis_db = 0.0;
  AmcController amc(table_, cfg);
  const std::size_t low = amc.select_from_snr(2.0);
  const std::size_t high = amc.select_from_snr(30.0);
  EXPECT_LT(low, high);
  EXPECT_EQ(high, table_.size() - 1);
}

TEST_F(AmcTest, DownSwitchIsImmediate) {
  AmcConfig cfg;
  cfg.hysteresis_db = 2.0;
  AmcController amc(table_, cfg);
  amc.select_from_snr(30.0);
  EXPECT_EQ(amc.last_choice(), table_.size() - 1);
  const std::size_t after_fade = amc.select_from_snr(0.0);
  EXPECT_LE(after_fade, 1u);
}

TEST_F(AmcTest, UpSwitchRequiresHysteresisMargin) {
  AmcConfig cfg;
  cfg.hysteresis_db = 3.0;
  cfg.target_bler = 0.1;
  AmcController amc(table_, cfg);
  amc.select_from_snr(0.0);  // settle low
  const std::size_t settled = amc.last_choice();
  // An SNR just barely qualifying for the next scheme must NOT trigger an
  // up-switch (margin not cleared)…
  const double barely = table_[settled + 1].snr_for_bler(0.1) + 0.5;
  EXPECT_EQ(amc.select_from_snr(barely), settled);
  // …but clearing the margin does.
  const double cleared = table_[settled + 1].snr_for_bler(0.1) + 3.5;
  EXPECT_GT(amc.select_from_snr(cleared), settled);
}

TEST_F(AmcTest, BackoffShiftsSelectionDown) {
  AmcConfig plain;
  plain.hysteresis_db = 0.0;
  AmcConfig off;
  off.hysteresis_db = 0.0;
  off.backoff_db = 6.0;
  AmcController a(table_, plain), b(table_, off);
  EXPECT_GT(a.select_from_snr(15.0), b.select_from_snr(15.0));
}

TEST_F(AmcTest, MessageSizeLowersChoice) {
  AmcConfig cfg;
  cfg.hysteresis_db = 0.0;
  AmcController amc(table_, cfg);
  const std::size_t small = amc.select_from_snr(15.0, 456);
  AmcController amc2(table_, cfg);
  const std::size_t big = amc2.select_from_snr(15.0, 456 * 40);
  EXPECT_LE(big, small);
}

TEST_F(AmcTest, SelectUsesDelayedCsi) {
  AmcConfig cfg;
  cfg.csi_delay_s = 1.0;
  cfg.hysteresis_db = 0.0;
  AmcController amc(table_, cfg);
  // A channel whose SNR jumps at t=5: selection at t=5.5 still sees the OLD SNR.
  class Step final : public SnrProcess {
   public:
    double snr_db(SimTime t) override { return t < 5.0 ? 2.0 : 30.0; }
    double mean_snr_db() const override { return 16.0; }
  } link;
  const std::size_t before = amc.select(link, 5.5);
  EXPECT_LE(before, 1u);
  const std::size_t after = amc.select(link, 6.5);
  EXPECT_EQ(after, table_.size() - 1);
}

}  // namespace
}  // namespace wdc
