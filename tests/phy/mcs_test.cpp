#include "phy/mcs.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wdc {
namespace {

TEST(Mcs, BlerIsMonotoneDecreasingInSnr) {
  const Mcs m{"X", 10e3, 10.0, 1.0};
  double prev = 1.0;
  for (double snr = -10.0; snr <= 30.0; snr += 1.0) {
    const double b = m.bler(snr);
    EXPECT_LT(b, prev);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    prev = b;
  }
}

TEST(Mcs, BlerHalfAtGamma50) {
  const Mcs m{"X", 10e3, 12.0, 1.3};
  EXPECT_NEAR(m.bler(12.0), 0.5, 1e-12);
}

TEST(Mcs, SnrForBlerInvertsBler) {
  const Mcs m{"X", 10e3, 8.0, 1.1};
  for (const double target : {0.01, 0.1, 0.5, 0.9}) {
    EXPECT_NEAR(m.bler(m.snr_for_bler(target)), target, 1e-9);
  }
  EXPECT_THROW(m.snr_for_bler(0.0), std::invalid_argument);
  EXPECT_THROW(m.snr_for_bler(1.0), std::invalid_argument);
}

TEST(McsTable, EdgeTableShape) {
  const McsTable t = McsTable::edge(4);
  EXPECT_EQ(t.size(), 9u);
  EXPECT_EQ(t[0].name, "MCS-1");
  EXPECT_EQ(t[8].name, "MCS-9");
  EXPECT_NEAR(t[0].rate_bps, 8.8e3 * 4, 1);
  EXPECT_NEAR(t[8].rate_bps, 59.2e3 * 4, 1);
}

TEST(McsTable, TimeslotsScaleRates) {
  const McsTable t1 = McsTable::edge(1);
  const McsTable t8 = McsTable::edge(8);
  for (std::size_t i = 0; i < t1.size(); ++i)
    EXPECT_NEAR(t8[i].rate_bps, 8.0 * t1[i].rate_bps, 1e-6);
  EXPECT_THROW(McsTable::edge(0), std::invalid_argument);
}

TEST(McsTable, RejectsNonMonotoneTables) {
  EXPECT_THROW(McsTable({{"A", 20e3, 0.0, 1.0}, {"B", 10e3, 5.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(McsTable({{"A", 10e3, 5.0, 1.0}, {"B", 20e3, 0.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(McsTable({}), std::invalid_argument);
}

TEST(McsTable, BestForIsMonotoneInSnr) {
  const McsTable t = McsTable::edge();
  std::size_t prev = 0;
  for (double snr = -10.0; snr <= 40.0; snr += 0.5) {
    const std::size_t i = t.best_for(snr, 0.1);
    EXPECT_GE(i, prev);
    prev = i;
  }
  EXPECT_EQ(prev, t.size() - 1);  // high SNR reaches the top scheme
}

TEST(McsTable, BestForFloorsAtZero) {
  const McsTable t = McsTable::edge();
  EXPECT_EQ(t.best_for(-30.0, 0.1), 0u);
}

TEST(McsTable, BestForRespectsTarget) {
  const McsTable t = McsTable::edge();
  for (const double snr : {5.0, 12.0, 20.0}) {
    const std::size_t i = t.best_for(snr, 0.1);
    EXPECT_LE(t[i].bler(snr), 0.1);
    if (i + 1 < t.size()) {
      EXPECT_GT(t[i + 1].bler(snr), 0.1);
    }
  }
}

TEST(McsTable, BestForMessageMoreConservativeForBigMessages) {
  const McsTable t = McsTable::edge();
  const double snr = 15.0;
  const std::size_t small = t.best_for_message(snr, 0.1, 400);
  const std::size_t big = t.best_for_message(snr, 0.1, 40000);
  EXPECT_LE(big, small);
}

TEST(McsTable, AirtimeScalesWithBitsAndRate) {
  McsTable t = McsTable::edge(4);
  t.set_preamble_s(0.0);
  EXPECT_NEAR(t.airtime_s(35200, 0), 1.0, 1e-9);  // 35.2 kb at 35.2 kb/s
  EXPECT_GT(t.airtime_s(1000, 0), t.airtime_s(1000, 8));
}

TEST(McsTable, PreambleAddsConstant) {
  McsTable t = McsTable::edge();
  t.set_preamble_s(0.01);
  EXPECT_NEAR(t.airtime_s(0, 0), 0.01, 1e-12);
}

TEST(McsTable, BlocksForRoundsUp) {
  McsTable t = McsTable::edge();
  t.set_block_bits(100);
  EXPECT_EQ(t.blocks_for(0), 1u);
  EXPECT_EQ(t.blocks_for(1), 1u);
  EXPECT_EQ(t.blocks_for(100), 1u);
  EXPECT_EQ(t.blocks_for(101), 2u);
  EXPECT_EQ(t.blocks_for(1000), 10u);
}

TEST(McsTable, DecodeProbComposesPerBlock) {
  McsTable t = McsTable::edge();
  t.set_block_bits(456);
  const double snr = 10.0;
  const double one = t.decode_prob(456, 2, snr);
  const double five = t.decode_prob(456 * 5, 2, snr);
  EXPECT_NEAR(five, std::pow(one, 5.0), 1e-12);
  EXPECT_GT(one, five);
}

TEST(McsTable, DecodeProbHighAtHighSnr) {
  const McsTable t = McsTable::edge();
  EXPECT_GT(t.decode_prob(4560, 0, 30.0), 0.999);
  EXPECT_LT(t.decode_prob(4560, 8, 0.0), 0.001);
}

TEST(McsTable, Simple3IsValid) {
  const McsTable t = McsTable::simple3();
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.best_for(-10.0, 0.1), 0u);
  EXPECT_EQ(t.best_for(30.0, 0.1), 2u);
}

}  // namespace
}  // namespace wdc
