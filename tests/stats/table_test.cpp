#include "stats/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace wdc {
namespace {

TEST(Table, RejectsEmptyColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(Table, OverfullRowThrows) {
  Table t({"a"});
  t.begin_row();
  t.cell("1");
  EXPECT_THROW(t.cell("2"), std::logic_error);
}

TEST(Table, NumericFormatting) {
  Table t({"d", "u", "ci"});
  t.begin_row();
  t.cell(3.14159, 2);
  t.cell(std::uint64_t{42});
  t.cell_ci(1.5, 0.25, 2);
  const auto& row = t.rows()[0];
  EXPECT_EQ(row[0], "3.14");
  EXPECT_EQ(row[1], "42");
  EXPECT_EQ(row[2], "1.50 ± 0.25");
}

TEST(Table, TextRenderingAligned) {
  Table t({"name", "v"});
  t.begin_row();
  t.cell("x");
  t.cell("1");
  std::ostringstream os;
  t.print_text(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("x"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.begin_row();
  t.cell("plain");
  t.cell("with,comma \"and quotes\"");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"with,comma \"\"and quotes\"\"\""), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table t({"c1", "c2"});
  t.begin_row();
  t.cell("v1");
  t.cell("v2");
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_NE(os.str().find("| c1 | c2 |"), std::string::npos);
  EXPECT_NE(os.str().find("|---|---|"), std::string::npos);
  EXPECT_NE(os.str().find("| v1 | v2 |"), std::string::npos);
}

TEST(Table, WriteCsvRoundTrip) {
  const std::string path = testing::TempDir() + "/wdc_table_test.csv";
  Table t({"x"});
  t.begin_row();
  t.cell(1.0, 1);
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "1.0");
  std::remove(path.c_str());
}

TEST(Table, ShortRowRendersBlank) {
  Table t({"a", "b"});
  t.begin_row();
  t.cell("only");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("only,"), std::string::npos);
}

}  // namespace
}  // namespace wdc
