#include "stats/time_weighted.hpp"

#include <gtest/gtest.h>

namespace wdc {
namespace {

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw(0.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.average(10.0), 3.0);
}

TEST(TimeWeighted, StepSignal) {
  TimeWeighted tw(0.0, 0.0);
  tw.update(5.0, 1.0);  // 0 on [0,5), 1 on [5,10)
  EXPECT_DOUBLE_EQ(tw.average(10.0), 0.5);
}

TEST(TimeWeighted, MultipleSteps) {
  TimeWeighted tw(0.0, 2.0);
  tw.update(2.0, 4.0);
  tw.update(6.0, 0.0);
  // 2*2 + 4*4 + 0*4 = 20 over 10.
  EXPECT_DOUBLE_EQ(tw.average(10.0), 2.0);
}

TEST(TimeWeighted, NonzeroStart) {
  TimeWeighted tw(100.0, 1.0);
  tw.update(110.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.average(120.0), 2.0);
}

TEST(TimeWeighted, ZeroSpanReturnsCurrent) {
  TimeWeighted tw(5.0, 7.0);
  EXPECT_DOUBLE_EQ(tw.average(5.0), 7.0);
}

TEST(TimeWeighted, CurrentTracksLastValue) {
  TimeWeighted tw(0.0, 1.0);
  tw.update(1.0, 9.0);
  EXPECT_DOUBLE_EQ(tw.current(), 9.0);
}

TEST(TimeWeighted, RepeatedUpdatesAtSameInstant) {
  TimeWeighted tw(0.0, 0.0);
  tw.update(5.0, 1.0);
  tw.update(5.0, 2.0);  // zero-width interval contributes nothing
  EXPECT_DOUBLE_EQ(tw.average(10.0), 1.0);
}

TEST(TimeWeighted, NoUpdatesAtStartInstant) {
  // Averaging at t0 with no observation span and no updates: the signal has
  // only its initial value to report.
  TimeWeighted tw(3.0, -2.5);
  EXPECT_DOUBLE_EQ(tw.average(3.0), -2.5);
  EXPECT_DOUBLE_EQ(tw.current(), -2.5);
}

TEST(TimeWeighted, ConstantSeriesManyUpdates) {
  // A "constant series" written through update(): re-recording the same value
  // at many instants must not perturb the average (no drift from area
  // bookkeeping).
  TimeWeighted tw(0.0, 4.0);
  for (int i = 1; i <= 100; ++i) tw.update(0.1 * i, 4.0);
  EXPECT_DOUBLE_EQ(tw.average(10.0), 4.0);
}

TEST(TimeWeighted, SingleUpdateDominatedByLongTail) {
  // One step, then a long constant tail: the average must converge toward the
  // tail value as the window grows.
  TimeWeighted tw(0.0, 0.0);
  tw.update(1.0, 10.0);
  EXPECT_DOUBLE_EQ(tw.average(2.0), 5.0);
  EXPECT_DOUBLE_EQ(tw.average(100.0), 9.9);
}

}  // namespace
}  // namespace wdc
