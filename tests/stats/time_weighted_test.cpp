#include "stats/time_weighted.hpp"

#include <gtest/gtest.h>

namespace wdc {
namespace {

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw(0.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.average(10.0), 3.0);
}

TEST(TimeWeighted, StepSignal) {
  TimeWeighted tw(0.0, 0.0);
  tw.update(5.0, 1.0);  // 0 on [0,5), 1 on [5,10)
  EXPECT_DOUBLE_EQ(tw.average(10.0), 0.5);
}

TEST(TimeWeighted, MultipleSteps) {
  TimeWeighted tw(0.0, 2.0);
  tw.update(2.0, 4.0);
  tw.update(6.0, 0.0);
  // 2*2 + 4*4 + 0*4 = 20 over 10.
  EXPECT_DOUBLE_EQ(tw.average(10.0), 2.0);
}

TEST(TimeWeighted, NonzeroStart) {
  TimeWeighted tw(100.0, 1.0);
  tw.update(110.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.average(120.0), 2.0);
}

TEST(TimeWeighted, ZeroSpanReturnsCurrent) {
  TimeWeighted tw(5.0, 7.0);
  EXPECT_DOUBLE_EQ(tw.average(5.0), 7.0);
}

TEST(TimeWeighted, CurrentTracksLastValue) {
  TimeWeighted tw(0.0, 1.0);
  tw.update(1.0, 9.0);
  EXPECT_DOUBLE_EQ(tw.current(), 9.0);
}

TEST(TimeWeighted, RepeatedUpdatesAtSameInstant) {
  TimeWeighted tw(0.0, 0.0);
  tw.update(5.0, 1.0);
  tw.update(5.0, 2.0);  // zero-width interval contributes nothing
  EXPECT_DOUBLE_EQ(tw.average(10.0), 1.0);
}

}  // namespace
}  // namespace wdc
