#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace wdc {
namespace {

TEST(Histogram, RejectsBadLayout) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinBoundaries) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(9), 9.0);
}

TEST(Histogram, CountsIntoCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.9);
  h.add(9.99);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi boundary goes to overflow (half-open range)
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.02);
}

TEST(Histogram, QuantileEdges) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(Histogram, QuantileOnEmpty) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.add(1.5);
  b.add(1.6);
  b.add(11.0);
  a.merge(b);
  EXPECT_EQ(a.bin_count(1), 2u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.count(), 3u);
}

TEST(Histogram, MergeRejectsIncompatible) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 20);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

}  // namespace
}  // namespace wdc
