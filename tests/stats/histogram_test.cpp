#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace wdc {
namespace {

TEST(Histogram, RejectsBadLayout) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinBoundaries) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(9), 9.0);
}

TEST(Histogram, CountsIntoCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.9);
  h.add(9.99);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi boundary goes to overflow (half-open range)
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.02);
}

TEST(Histogram, QuantileEdges) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(Histogram, QuantileOnEmpty) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.add(1.5);
  b.add(1.6);
  b.add(11.0);
  a.merge(b);
  EXPECT_EQ(a.bin_count(1), 2u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.count(), 3u);
}

TEST(Histogram, MergeRejectsIncompatible) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 20);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, QuantileOfSingleSample) {
  // One sample: every interior quantile interpolates within its bin, and the
  // answer must bracket the sample's bin regardless of q.
  Histogram h(0.0, 10.0, 10);
  h.add(3.5);
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_GE(h.quantile(q), h.bin_lo(3));
    EXPECT_LE(h.quantile(q), h.bin_hi(3));
  }
}

TEST(Histogram, QuantileOfConstantSeries) {
  // All mass in one bin: every interior quantile lands inside that bin.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 1000; ++i) h.add(7.2);
  for (double q : {0.05, 0.5, 0.95}) {
    EXPECT_GE(h.quantile(q), 7.0);
    EXPECT_LE(h.quantile(q), 8.0);
  }
  EXPECT_EQ(h.bin_count(7), 1000u);
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a(0.0, 10.0, 10), empty(0.0, 10.0, 10);
  a.add(2.5);
  a.add(9.9);
  const double q50 = a.quantile(0.5);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), q50);
}

TEST(Histogram, AllMassUnderflowedQuantilesCollapseToLo) {
  // A pathological series entirely below the layout: quantiles must degrade
  // to the lower edge, not index off the bin array.
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 10; ++i) h.add(-5.0);
  EXPECT_EQ(h.underflow(), 10u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace wdc
