#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace wdc {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n−1: sum of squared devs = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeEqualsSequential) {
  Rng rng(1);
  Summary whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(Summary, NumericallyStableForLargeOffsets) {
  Summary s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000 / 999, 1e-3);
}

}  // namespace
}  // namespace wdc
