#include "stats/ci.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/variates.hpp"

namespace wdc {
namespace {

TEST(StudentT, MatchesTableAt95) {
  EXPECT_NEAR(student_t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(student_t_critical(4, 0.95), 2.776, 1e-3);
  EXPECT_NEAR(student_t_critical(9, 0.95), 2.262, 1e-3);
  EXPECT_NEAR(student_t_critical(29, 0.95), 2.045, 1e-3);
}

TEST(StudentT, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(student_t_critical(1000, 0.95), 1.960, 0.01);
  EXPECT_NEAR(student_t_critical(1000, 0.99), 2.576, 0.01);
}

TEST(StudentT, RejectsBadArgs) {
  EXPECT_THROW(student_t_critical(0, 0.95), std::invalid_argument);
  EXPECT_THROW(student_t_critical(5, 0.0), std::invalid_argument);
  EXPECT_THROW(student_t_critical(5, 1.0), std::invalid_argument);
}

TEST(ConfidenceIntervalTest, EmptyAndSingle) {
  EXPECT_EQ(confidence_interval({}).n, 0u);
  const auto ci = confidence_interval({5.0});
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(ConfidenceIntervalTest, KnownSmallSample) {
  // Samples {1,2,3}: mean 2, s = 1, hw = t(2,.95)·1/√3 = 4.303/1.732.
  const auto ci = confidence_interval({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  EXPECT_NEAR(ci.half_width, 4.303 / std::sqrt(3.0), 1e-3);
  EXPECT_NEAR(ci.lo(), 2.0 - ci.half_width, 1e-12);
  EXPECT_NEAR(ci.hi(), 2.0 + ci.half_width, 1e-12);
}

TEST(ConfidenceIntervalTest, CoverageIsRoughlyNominal) {
  // Repeatedly form a 95% CI for the mean of Exp(1) from 20 samples; the true
  // mean (1.0) should be inside ≈95% of the time.
  Rng rng(42);
  Exponential e(1.0);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs(20);
    for (auto& x : xs) x = e.sample(rng);
    const auto ci = confidence_interval(xs, 0.95);
    if (ci.lo() <= 1.0 && 1.0 <= ci.hi()) ++covered;
  }
  const double cov = static_cast<double>(covered) / trials;
  EXPECT_GT(cov, 0.90);
  EXPECT_LT(cov, 0.99);
}

TEST(ConfidenceIntervalTest, ConstantSeriesHasZeroWidth) {
  // Zero sample variance: the interval must collapse to the point estimate
  // with no NaN/negative artifacts from the s=0 edge.
  const auto ci = confidence_interval(std::vector<double>(12, -3.25));
  EXPECT_DOUBLE_EQ(ci.mean, -3.25);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_DOUBLE_EQ(ci.lo(), -3.25);
  EXPECT_DOUBLE_EQ(ci.hi(), -3.25);
  EXPECT_EQ(ci.n, 12u);
}

TEST(ConfidenceIntervalTest, TwoSampleInterval) {
  // Smallest n with a defined variance: hw = t(1,.95)·s/√2, s = √2/√2·|a−b|/√2.
  const auto ci = confidence_interval({1.0, 3.0});
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  // s = √2, t(1, .95) = 12.706 ⇒ hw = 12.706·√2/√2 = 12.706.
  EXPECT_NEAR(ci.half_width, 12.706, 1e-2);
}

TEST(ConfidenceIntervalTest, RelativePrecision) {
  const auto ci = confidence_interval({10.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(ci.relative(), 0.0);
  ConfidenceInterval manual{4.0, 1.0, 3};
  EXPECT_DOUBLE_EQ(manual.relative(), 0.25);
}

}  // namespace
}  // namespace wdc
