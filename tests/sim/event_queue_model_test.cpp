#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

/// Differential test of the event kernel against a naive std::multiset
/// reference: both structures see the same randomized push/cancel/pop script
/// and must agree on every popped record — time, priority AND sequence number,
/// which pins the FIFO tie-break exactly. Times are drawn from a coarse grid so
/// same-time and same-time-same-priority ties are the common case, not a fluke.
///
/// The script also probes the handle lifecycle the slot pool must get right:
/// cancel after fire, double cancel, and stale handles whose slot has been
/// recycled by later pushes (the generation stamp must reject them).

namespace wdc {
namespace {

/// One scheduled event as the reference model sees it.
struct ModelEvent {
  double time;
  EventPriority prio;
  std::uint64_t seq;
};

/// The kernel's documented total order: time, then priority, then seq.
struct FiresBefore {
  bool operator()(const ModelEvent& a, const ModelEvent& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (a.prio != b.prio) return a.prio < b.prio;
    return a.seq < b.seq;
  }
};

TEST(EventQueueModel, RandomScriptMatchesMultisetReference) {
  EventQueue q;
  Rng rng(90210);
  // Reference: the live event set, plus id→model entry for cancels. The model
  // counts sequence numbers exactly as the kernel does (first push = 1).
  std::multiset<ModelEvent, FiresBefore> model;
  std::map<std::uint64_t, std::multiset<ModelEvent, FiresBefore>::iterator>
      live_by_raw;
  std::vector<EventId> dead_ids;  // fired or cancelled: cancel() must say no
  std::uint64_t next_seq = 1;
  double frontier = 0.0;

  for (int step = 0; step < 30000; ++step) {
    const double u = rng.uniform();
    if (u < 0.45) {
      // Push on a half-second grid: collisions in time (and often priority)
      // are frequent, so the seq tie-break is continuously exercised.
      const double t = frontier + 0.5 * rng.uniform_int(8);
      const auto prio = static_cast<EventPriority>(rng.uniform_int(6));
      const EventId id = q.push(t, prio, [] {});
      const auto it = model.insert({t, prio, next_seq});
      ASSERT_TRUE(live_by_raw.emplace(id.raw, it).second)
          << "kernel handed out a live handle twice";
      ++next_seq;
    } else if (u < 0.60) {
      // Cancel a live event; both sides must agree it existed.
      if (live_by_raw.empty()) continue;
      auto pick = live_by_raw.begin();
      std::advance(pick, static_cast<long>(rng.uniform_int(live_by_raw.size())));
      EXPECT_TRUE(q.cancel(EventId{pick->first}));
      model.erase(pick->second);
      dead_ids.push_back(EventId{pick->first});
      live_by_raw.erase(pick);
    } else if (u < 0.70) {
      // A dead handle (fired or cancelled) must always be rejected, no matter
      // how many pushes have recycled its slot since.
      if (dead_ids.empty()) continue;
      const EventId stale =
          dead_ids[static_cast<std::size_t>(rng.uniform_int(dead_ids.size()))];
      EXPECT_FALSE(q.cancel(stale));
    } else {
      // Pop: must match the reference's earliest entry in time, priority and
      // sequence number.
      ASSERT_EQ(q.empty(), model.empty());
      if (model.empty()) continue;
      const auto rec = q.pop();
      const auto best = model.begin();
      ASSERT_DOUBLE_EQ(rec.time, best->time);
      ASSERT_EQ(rec.prio, best->prio);
      ASSERT_EQ(rec.seq, best->seq);
      frontier = rec.time;
      // The fired handle is now dead too.
      for (auto it = live_by_raw.begin(); it != live_by_raw.end(); ++it)
        if (it->second == best) {
          dead_ids.push_back(EventId{it->first});
          live_by_raw.erase(it);
          break;
        }
      model.erase(best);
    }
    ASSERT_EQ(q.size(), model.size());
  }

  // Drain in lockstep: the tail must agree record for record.
  q.audit();
  while (!model.empty()) {
    const auto rec = q.pop();
    const auto best = model.begin();
    ASSERT_DOUBLE_EQ(rec.time, best->time);
    ASSERT_EQ(rec.prio, best->prio);
    ASSERT_EQ(rec.seq, best->seq);
    model.erase(best);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueModel, PopDueMatchesReferenceAtEveryLimit) {
  EventQueue q;
  Rng rng(424242);
  std::multiset<ModelEvent, FiresBefore> model;
  std::uint64_t next_seq = 1;
  for (int i = 0; i < 500; ++i) {
    const double t = 0.5 * rng.uniform_int(40);
    const auto prio = static_cast<EventPriority>(rng.uniform_int(6));
    q.push(t, prio, [] {});
    model.insert({t, prio, next_seq++});
  }
  // Sweep the limit upward; pop_due must hand over exactly the records at or
  // before each limit, in the reference order, and refuse the rest.
  detail::EventRecord rec;
  for (double limit = 0.0; limit <= 20.0; limit += 0.5) {
    while (q.pop_due(limit, rec)) {
      const auto best = model.begin();
      ASSERT_TRUE(best != model.end());
      ASSERT_LE(best->time, limit);
      ASSERT_DOUBLE_EQ(rec.time, best->time);
      ASSERT_EQ(rec.prio, best->prio);
      ASSERT_EQ(rec.seq, best->seq);
      model.erase(best);
    }
    // Refusal is for the right reason: nothing left at or under the limit.
    ASSERT_TRUE(model.empty() || model.begin()->time > limit);
  }
  EXPECT_TRUE(model.empty());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueModel, CancelAfterFireOnRecycledSlotIsRejected) {
  EventQueue q;
  // Fire one event, then recycle its slot many times; the stale handle must
  // stay dead and never kill the slot's current tenant.
  const EventId first = q.push(1.0, EventPriority::kDefault, [] {});
  (void)q.pop();
  EXPECT_FALSE(q.cancel(first));
  std::vector<EventId> tenants;
  for (int i = 0; i < 8; ++i) {
    // Single-slot pool: each push reuses the slot `first` once occupied.
    const EventId id = q.push(2.0 + i, EventPriority::kDefault, [] {});
    EXPECT_FALSE(q.cancel(first));
    tenants.push_back(id);
    (void)q.pop();
    EXPECT_FALSE(q.cancel(id)) << "fired tenant must be dead";
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace wdc
