#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wdc {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, RunUntilAdvancesClockToEnd) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventsSeeTheirOwnTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(3.5, [&] { seen = sim.now(); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 3.5);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(1.5, [&] { seen = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 3.5);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::logic_error);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::logic_error);
}

TEST(Simulator, EventsBeyondEndStayQueued) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(20.0, [&] { fired = true; });
  sim.run_until(10.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run_until(30.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelWorksThroughSimulator) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until(5.0);
  EXPECT_FALSE(fired);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    sim.schedule_at(static_cast<double>(i), [&] {
      if (++count == 3) sim.stop();
    });
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);
  // Remaining events still pending; a new run resumes.
  sim.run_until(100.0);
  EXPECT_EQ(count, 10);
}

TEST(Simulator, EventsExecutedCounts) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_in(1.0, [] {});
  sim.run_until(2.0);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, RunAllDrainsEverything) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] {
    ++count;
    sim.schedule_in(1.0, [&] { ++count; });
  });
  sim.run_all();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, SimultaneousEventsOrderedByPriority) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); }, EventPriority::kStats);
  sim.schedule_at(1.0, [&] { order.push_back(0); }, EventPriority::kChannel);
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace wdc
