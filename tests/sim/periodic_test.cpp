#include "sim/periodic.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wdc {
namespace {

TEST(PeriodicTimer, FiresOnGrid) {
  Simulator sim;
  std::vector<double> times;
  PeriodicTimer t(sim, 2.0, 3.0, [&](std::uint64_t) { times.push_back(sim.now()); });
  sim.run_until(12.0);
  EXPECT_EQ(times, (std::vector<double>{2.0, 5.0, 8.0, 11.0}));
}

TEST(PeriodicTimer, TickIndicesIncrease) {
  Simulator sim;
  std::vector<std::uint64_t> ticks;
  PeriodicTimer t(sim, 1.0, 1.0, [&](std::uint64_t k) { ticks.push_back(k); });
  sim.run_until(4.5);
  EXPECT_EQ(ticks, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(PeriodicTimer, NoFloatDriftOverManyTicks) {
  Simulator sim;
  double last = 0.0;
  // 0.25 is exactly representable: ticks land on the grid with zero error, and
  // because ticks are first + k·period (not cumulative adds) this holds for any
  // number of ticks.
  PeriodicTimer t(sim, 0.25, 0.25, [&](std::uint64_t) { last = sim.now(); });
  sim.run_until(1000.0);
  EXPECT_DOUBLE_EQ(last, 1000.0);
  EXPECT_EQ(t.ticks_fired(), 4000u);
}

TEST(PeriodicTimer, StopCancelsFutureTicks) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer t(sim, 1.0, 1.0, [&](std::uint64_t) {
    if (++fired == 2) t.stop();
  });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTimer, DestructorCancels) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTimer t(sim, 1.0, 1.0, [&](std::uint64_t) { ++fired; });
    sim.run_until(2.5);
  }
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace wdc
