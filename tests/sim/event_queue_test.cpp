#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace wdc {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, EventPriority::kDefault, [&] { order.push_back(3); });
  q.push(1.0, EventPriority::kDefault, [&] { order.push_back(1); });
  q.push(2.0, EventPriority::kDefault, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBreaksTimeTies) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, EventPriority::kWorkload, [&] { order.push_back(2); });
  q.push(1.0, EventPriority::kChannel, [&] { order.push_back(0); });
  q.push(1.0, EventPriority::kTxDone, [&] { order.push_back(1); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, InsertionOrderBreaksFullTies) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.push(1.0, EventPriority::kDefault, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, EventPriority::kDefault, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(1.0, EventPriority::kDefault, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.push(1.0, EventPriority::kDefault, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{9999}));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, EventPriority::kDefault, [&] { order.push_back(1); });
  const EventId id =
      q.push(2.0, EventPriority::kDefault, [&] { order.push_back(2); });
  q.push(3.0, EventPriority::kDefault, [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(1.0, EventPriority::kDefault, [] {});
  q.push(5.0, EventPriority::kDefault, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, StressRandomOrderIsSorted) {
  EventQueue q;
  Rng rng(4);
  for (int i = 0; i < 5000; ++i)
    q.push(rng.uniform(0.0, 100.0), EventPriority::kDefault, [] {});
  double last = -1.0;
  while (!q.empty()) {
    const auto rec = q.pop();
    EXPECT_GE(rec.time, last);
    last = rec.time;
  }
}

TEST(EventQueue, StressWithRandomCancels) {
  EventQueue q;
  Rng rng(5);
  std::vector<EventId> ids;
  int live = 0;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(q.push(rng.uniform(0.0, 10.0), EventPriority::kDefault, [] {}));
    ++live;
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(q.cancel(ids[i]));
    --live;
  }
  EXPECT_EQ(q.size(), static_cast<std::size_t>(live));
  int popped = 0;
  while (!q.empty()) {
    q.pop();
    ++popped;
  }
  EXPECT_EQ(popped, live);
}

}  // namespace
}  // namespace wdc
