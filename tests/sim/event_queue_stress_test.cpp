#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

/// Cancellation-stress test against a naive reference model, plus death tests
/// proving the structural audit catches seeded corruption. The corruption is
/// injected through detail::EventQueueTestPeer (a friend of EventQueue), so
/// these tests reach the private heap without loosening the public API.

namespace wdc {
namespace detail {

struct EventQueueTestPeer {
  /// Make the last heap slot earlier than its parent: a heap-order violation.
  static void break_heap_order(EventQueue& q) { q.heap_.back().time = -1e18; }
  /// Claim one more live event than the pending set holds.
  static void inflate_live_count(EventQueue& q) { ++q.live_; }
  /// Mark the slot backing the heap top as free without unlinking it: the
  /// heap now references a slot the pool considers available.
  static void free_pending_slot(EventQueue& q) {
    q.slots_[q.heap_.front().slot].state = EventQueue::SlotState::kFree;
  }
  /// Tie the free list into a self-loop — the signature of a double release.
  static void cycle_freelist(EventQueue& q) {
    q.slots_[q.free_head_].next_free = q.free_head_;
  }
  /// Zero a live slot's generation: handles would alias across recycling.
  static void zero_generation(EventQueue& q) {
    q.slots_[q.heap_.front().slot].gen = 0;
  }
  /// Duplicate the top heap entry so two heap records share one slot.
  static void duplicate_top_entry(EventQueue& q) {
    q.heap_.push_back(q.heap_.front());
  }
};

}  // namespace detail

namespace {

/// Mirror of one scheduled event as the reference model sees it.
struct Ref {
  double time;
  EventPriority prio;
  std::uint64_t seq;
  EventId id;
  bool alive;
};

/// Earliest-first, the kernel's exact tie-break (time, priority, seq).
bool fires_before(const Ref& a, const Ref& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.prio != b.prio) return a.prio < b.prio;
  return a.seq < b.seq;
}

TEST(EventQueueStress, RandomPushCancelPopMatchesReferenceModel) {
  EventQueue q;
  Rng rng(2024);
  std::vector<Ref> model;
  std::uint64_t next_seq = 0;
  std::size_t live = 0;
  double last_pop = 0.0;

  const auto count_alive = [&] {
    return static_cast<std::size_t>(
        std::count_if(model.begin(), model.end(),
                      [](const Ref& r) { return r.alive; }));
  };

  for (int step = 0; step < 20000; ++step) {
    const double u = rng.uniform();
    if (u < 0.5) {
      // Push. New events must not land before the pop frontier.
      const double t = last_pop + rng.uniform(0.0, 10.0);
      const auto prio = static_cast<EventPriority>(rng.uniform_int(6));
      const EventId id = q.push(t, prio, [] {});
      model.push_back({t, prio, next_seq++, id, true});
      ++live;
    } else if (u < 0.75) {
      // Cancel a random model entry; dead entries must be rejected.
      if (model.empty()) continue;
      Ref& r = model[static_cast<std::size_t>(
          rng.uniform_int(model.size()))];
      EXPECT_EQ(q.cancel(r.id), r.alive);
      if (r.alive) {
        r.alive = false;
        --live;
      }
    } else {
      // Pop; must match the earliest alive entry exactly.
      if (live == 0) {
        EXPECT_TRUE(q.empty());
        continue;
      }
      auto best = model.end();
      for (auto it = model.begin(); it != model.end(); ++it)
        if (it->alive && (best == model.end() || fires_before(*it, *best)))
          best = it;
      const auto rec = q.pop();
      EXPECT_DOUBLE_EQ(rec.time, best->time);
      EXPECT_EQ(rec.prio, best->prio);
      EXPECT_GE(rec.time, last_pop);
      last_pop = rec.time;
      best->alive = false;
      --live;
    }
    ASSERT_EQ(q.size(), live);
    if (step % 500 == 0) {
      ASSERT_EQ(live, count_alive());
      q.audit();
    }
  }

  // Drain what's left; order must stay monotone and the count must agree.
  q.audit();
  std::size_t drained = 0;
  while (!q.empty()) {
    const auto rec = q.pop();
    EXPECT_GE(rec.time, last_pop);
    last_pop = rec.time;
    ++drained;
  }
  EXPECT_EQ(drained, live);
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(EventQueueStress, CancelHeavyChurnKeepsBookkeeping) {
  EventQueue q;
  Rng rng(77);
  // Waves of schedule-then-cancel, the deferred-IR timer pattern: most events
  // never fire, so the lazy-cancellation side table does the heavy lifting.
  for (int wave = 0; wave < 50; ++wave) {
    std::vector<EventId> ids;
    const double base = std::max(q.last_pop_time(), 0.0);
    for (int i = 0; i < 200; ++i)
      ids.push_back(q.push(base + rng.uniform(0.0, 5.0),
                           EventPriority::kProtocol, [] {}));
    for (std::size_t i = 0; i < ids.size(); ++i)
      if (i % 4 != 0) {
        EXPECT_TRUE(q.cancel(ids[i]));
      }
    // Fire roughly half of the survivors.
    const std::size_t target = q.size() / 2;
    for (std::size_t i = 0; i < target; ++i) q.pop();
    q.audit();
  }
}

using EventQueueDeathTest = ::testing::Test;

TEST(EventQueueDeathTest, AuditCatchesHeapOrderCorruption) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        EventQueue q;
        for (int i = 0; i < 8; ++i)
          q.push(1.0 + i, EventPriority::kDefault, [] {});
        detail::EventQueueTestPeer::break_heap_order(q);
        q.audit();
      },
      "WDC invariant violated");
#endif
}

TEST(EventQueueDeathTest, AuditCatchesLiveCountCorruption) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        EventQueue q;
        q.push(1.0, EventPriority::kDefault, [] {});
        detail::EventQueueTestPeer::inflate_live_count(q);
        q.audit();
      },
      "WDC invariant violated");
#endif
}

TEST(EventQueueDeathTest, PopOnEmptyTripsAssert) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        EventQueue q;
        q.pop();
      },
      "WDC invariant violated");
#endif
}

TEST(EventQueueDeathTest, AuditCatchesFreedPendingSlot) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        EventQueue q;
        for (int i = 0; i < 4; ++i)
          q.push(1.0 + i, EventPriority::kDefault, [] {});
        detail::EventQueueTestPeer::free_pending_slot(q);
        q.audit();
      },
      "WDC invariant violated");
#endif
}

TEST(EventQueueDeathTest, AuditCatchesFreelistCycle) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        EventQueue q;
        q.push(1.0, EventPriority::kDefault, [] {});
        q.push(2.0, EventPriority::kDefault, [] {});
        q.pop();  // releases one slot onto the free list
        detail::EventQueueTestPeer::cycle_freelist(q);
        q.audit();
      },
      "WDC invariant violated");
#endif
}

TEST(EventQueueDeathTest, AuditCatchesZeroedGeneration) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        EventQueue q;
        q.push(1.0, EventPriority::kDefault, [] {});
        detail::EventQueueTestPeer::zero_generation(q);
        q.audit();
      },
      "WDC invariant violated");
#endif
}

TEST(EventQueueDeathTest, AuditCatchesDuplicatedHeapSlot) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        EventQueue q;
        for (int i = 0; i < 4; ++i)
          q.push(1.0 + i, EventPriority::kDefault, [] {});
        detail::EventQueueTestPeer::duplicate_top_entry(q);
        q.audit();
      },
      "WDC invariant violated");
#endif
}

TEST(EventQueueDeathTest, PushBeforePopFrontierTripsAssert) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        EventQueue q;
        q.push(5.0, EventPriority::kDefault, [] {});
        q.pop();
        q.push(1.0, EventPriority::kDefault, [] {});  // behind the frontier
      },
      "WDC invariant violated");
#endif
}

}  // namespace
}  // namespace wdc
