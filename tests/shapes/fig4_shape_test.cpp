/// @file fig4_shape_test.cpp
/// FIG-4 shape regression: signalling overhead vs update rate.
///
/// The qualitative claims (EXPERIMENTS.md, "Shape ✓"):
///   - TS report bits grow with the update rate (entries per report ∝
///     updates) while SIG's signature budget is FIXED — so SIG's curve is
///     flat and the two curves must cross: TS cheaper at low update rates,
///     SIG cheaper at high ones. The crossover is the paper's core argument
///     for signature schemes under write-heavy workloads.
///   - No IR scheme ever serves stale data.

#include <gtest/gtest.h>

#include <algorithm>

#include "shape_common.hpp"

namespace wdc {
namespace {

TEST(Fig4Shape, SignallingCrossover) {
  const SweepGrid grid = shapes::run_scaled("fig4");
  // The spec's second series: downlink signalling load in kbit/s.
  const SweepSpec* spec = sweeps::find("fig4");
  ASSERT_NE(spec, nullptr);
  ASSERT_EQ(spec->series.size(), 2u);
  const MetricField& bits = spec->series[1].field;

  const std::size_t ts = shapes::variant_index(grid, "TS");
  const std::size_t sig = shapes::variant_index(grid, "SIG");
  const std::size_t last = grid.num_points() - 1;
  ASSERT_GE(grid.num_points(), 3u);

  // SIG's signalling load is flat: its max/min ratio over the sweep stays
  // near 1 while TS's grows several-fold.
  double sig_min = shapes::mean_of(grid, sig, 0, bits);
  double sig_max = sig_min;
  for (std::size_t p = 1; p < grid.num_points(); ++p) {
    const double b = shapes::mean_of(grid, sig, p, bits);
    sig_min = std::min(sig_min, b);
    sig_max = std::max(sig_max, b);
  }
  ASSERT_GT(sig_min, 0.0);
  EXPECT_LT(sig_max / sig_min, 1.1) << "SIG signalling load is not flat";

  // TS grows monotonically with the update rate...
  for (std::size_t p = 0; p + 1 < grid.num_points(); ++p)
    EXPECT_LT(shapes::mean_of(grid, ts, p, bits),
              shapes::mean_of(grid, ts, p + 1, bits))
        << "TS signalling not growing between " << grid.xs[p] << " and "
        << grid.xs[p + 1] << " updates/s";

  // ...and crosses SIG's flat curve inside the sweep.
  EXPECT_LT(shapes::mean_of(grid, ts, 0, bits),
            shapes::mean_of(grid, sig, 0, bits))
      << "TS should be cheaper than SIG at the low-update end";
  EXPECT_GT(shapes::mean_of(grid, ts, last, bits),
            shapes::mean_of(grid, sig, last, bits))
      << "TS should overtake SIG at the high-update end";

  shapes::expect_no_stale(grid);
}

}  // namespace
}  // namespace wdc
