#ifndef WDC_TESTS_SHAPES_SHAPE_COMMON_HPP
#define WDC_TESTS_SHAPES_SHAPE_COMMON_HPP

/// @file shape_common.hpp
/// Shared operating point and helpers for the shape-regression tier (ctest
/// label `shapes`). Each test instantiates a registered figure spec — the same
/// SweepSpec the `wdc_bench` driver runs — at a scaled-down operating point:
///
///     bench scale:   30 clients, 2000 s (300 s warmup), 3 replications
///     shapes scale:  12 clients,  600 s (100 s warmup), 2 replications
///
/// The scaling preserves the qualitative regimes EXPERIMENTS.md reports at
/// bench scale (hit-ratio decay, the L/2 latency law, the FIG-4 crossover);
/// only the confidence intervals widen, which is why these tests assert
/// shapes and orderings rather than absolute values. The full grid still runs
/// on the shared worker pool (threads=0 = all hardware), so the tier fits the
/// CI budget (< 5 min on 4 cores) and stays seed-deterministic regardless of
/// the thread count.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "engine/sweep.hpp"
#include "sweeps/sweeps.hpp"

namespace wdc::shapes {

inline SweepOptions scaled_options() {
  SweepOptions opts;
  opts.reps = 2;
  opts.threads = 0;  // whole grid on all hardware threads
  opts.base = sweeps::default_scenario();
  opts.base.num_clients = 12;
  opts.base.sim_time_s = 600.0;
  opts.base.warmup_s = 100.0;
  return opts;
}

/// Run a registered spec (by driver key) at the scaled operating point.
inline SweepGrid run_scaled(const std::string& key) {
  const SweepSpec* spec = sweeps::find(key);
  EXPECT_NE(spec, nullptr) << "unregistered sweep: " << key;
  SweepOptions opts = scaled_options();
  if (spec->adjust_base) spec->adjust_base(opts.base);
  return run_sweep(*spec, opts);
}

/// Column index of a variant by its printed name ("TS", "UIR", …).
inline std::size_t variant_index(const SweepGrid& grid,
                                 const std::string& name) {
  for (std::size_t v = 0; v < grid.num_variants(); ++v)
    if (grid.variant_names[v] == name) return v;
  ADD_FAILURE() << "variant not in grid: " << name;
  return 0;
}

/// Replication mean of one metric in one cell.
inline double mean_of(const SweepGrid& grid, std::size_t variant,
                      std::size_t point, const MetricField& field) {
  return grid.ci(variant, point, field).mean;
}

/// The no-stale-read discipline: every replication of every cell must serve
/// zero stale reads, except for variants named in `exempt` (CBL trades
/// consistency for latency by design — see TAB-3 in EXPERIMENTS.md).
inline void expect_no_stale(const SweepGrid& grid,
                            const std::string& exempt = "") {
  for (const auto& cell : grid.cells) {
    if (!exempt.empty() && grid.variant_names[cell.variant] == exempt)
      continue;
    for (const auto& m : cell.reps)
      EXPECT_EQ(m.stale_serves, 0u)
          << grid.variant_names[cell.variant] << " at "
          << grid.x_name << "=" << cell.x << " served stale data";
  }
}

}  // namespace wdc::shapes

#endif  // WDC_TESTS_SHAPES_SHAPE_COMMON_HPP
