/// @file stale_shape_test.cpp
/// The consistency discipline across the full protocol line-up: TAB-3 runs
/// the IR schemes next to the non-IR anchors (NC, PER, BS) at the default
/// operating point, and none of them may ever serve stale data. CBL is the
/// documented exemption — its leases + callbacks trade consistency for
/// zero-wait reads, and its `stale` column is the one place a non-zero count
/// is expected (see TAB-3 in EXPERIMENTS.md).

#include <gtest/gtest.h>

#include "shape_common.hpp"

namespace wdc {
namespace {

TEST(StaleShape, OnlyCblMayServeStale) {
  const SweepGrid grid = shapes::run_scaled("tab3");
  ASSERT_EQ(grid.num_points(), 1u);
  ASSERT_GE(grid.num_variants(), 7u);
  shapes::expect_no_stale(grid, /*exempt=*/"CBL");

  // Sanity on the anchors while the grid is hot: every variant answered
  // queries, and the no-cache baseline never hits.
  const MetricField hit = [](const Metrics& m) { return m.hit_ratio; };
  for (std::size_t v = 0; v < grid.num_variants(); ++v)
    for (const auto& m : grid.cell(v, 0).reps)
      EXPECT_GT(m.answered, 0u) << grid.variant_names[v];
  EXPECT_DOUBLE_EQ(
      shapes::mean_of(grid, shapes::variant_index(grid, "NC"), 0, hit), 0.0);
}

}  // namespace
}  // namespace wdc
