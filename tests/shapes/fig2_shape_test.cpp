/// @file fig2_shape_test.cpp
/// FIG-2 shape regression: cache hit ratio vs server update rate.
///
/// The qualitative claims (EXPERIMENTS.md, "Shape ✓"):
///   - Every scheme's hit ratio decays monotonically with the update rate —
///     updates invalidate cached copies faster than clients re-reference them.
///   - At every update rate, AT < SIG < TS: AT drops its whole cache after any
///     missed report, SIG pays a false-invalidation tax on top of TS's exact
///     invalidation.
///   - No IR scheme ever serves stale data.

#include <gtest/gtest.h>

#include "shape_common.hpp"

namespace wdc {
namespace {

TEST(Fig2Shape, HitRatioVsUpdateRate) {
  const SweepGrid grid = shapes::run_scaled("fig2");
  const MetricField hit = [](const Metrics& m) { return m.hit_ratio; };
  ASSERT_GE(grid.num_points(), 3u);

  // Monotone decay for every scheme, and a real end-to-end drop.
  for (std::size_t v = 0; v < grid.num_variants(); ++v) {
    for (std::size_t p = 0; p + 1 < grid.num_points(); ++p)
      EXPECT_LT(shapes::mean_of(grid, v, p + 1, hit),
                shapes::mean_of(grid, v, p, hit))
          << grid.variant_names[v] << " hit ratio not decaying between "
          << grid.xs[p] << " and " << grid.xs[p + 1] << " updates/s";
    const std::size_t last = grid.num_points() - 1;
    EXPECT_LT(shapes::mean_of(grid, v, last, hit),
              0.8 * shapes::mean_of(grid, v, 0, hit))
        << grid.variant_names[v] << " barely decays over the sweep";
  }

  // AT < SIG < TS at every update rate.
  const std::size_t ts = shapes::variant_index(grid, "TS");
  const std::size_t at = shapes::variant_index(grid, "AT");
  const std::size_t sig = shapes::variant_index(grid, "SIG");
  for (std::size_t p = 0; p < grid.num_points(); ++p) {
    EXPECT_LT(shapes::mean_of(grid, at, p, hit),
              shapes::mean_of(grid, sig, p, hit))
        << "AT not below SIG at " << grid.xs[p] << " updates/s";
    EXPECT_LT(shapes::mean_of(grid, sig, p, hit),
              shapes::mean_of(grid, ts, p, hit))
        << "SIG not below TS at " << grid.xs[p] << " updates/s";
  }

  shapes::expect_no_stale(grid);
}

}  // namespace
}  // namespace wdc
