/// @file fig1_shape_test.cpp
/// FIG-1 shape regression: mean query latency vs IR interval L.
///
/// The qualitative claims (EXPERIMENTS.md, "Shape ✓"):
///   - TS latency is monotone increasing in L: a report-bound client waits for
///     the next IR, on average L/2, before it can answer.
///   - The endpoint slope Δlatency/ΔL stays in [0.3, 1.0]. The pure L/2 wait
///     predicts 0.5; lost reports push queries into later intervals, which at
///     bench scale measures ≈ 0.70, while the fixed service-time floor pulls
///     the small-L end down. Outside the band the latency law is broken.
///   - UIR sits strictly below TS at every L: the m−1 minis inside the
///     interval answer queries early (latency ≈ L/2m).
///   - No IR scheme ever serves stale data, at any operating point.
///
/// One TEST per figure: ctest runs each TEST as its own process, so keeping
/// the grid in a single TEST means it is simulated exactly once.

#include <gtest/gtest.h>

#include "shape_common.hpp"

namespace wdc {
namespace {

TEST(Fig1Shape, LatencyVsInterval) {
  const SweepGrid grid = shapes::run_scaled("fig1");
  const MetricField latency = [](const Metrics& m) {
    return m.mean_latency_s;
  };
  const std::size_t ts = shapes::variant_index(grid, "TS");
  const std::size_t uir = shapes::variant_index(grid, "UIR");
  ASSERT_GE(grid.num_points(), 3u);

  // TS latency monotone increasing in L.
  for (std::size_t p = 0; p + 1 < grid.num_points(); ++p)
    EXPECT_LT(shapes::mean_of(grid, ts, p, latency),
              shapes::mean_of(grid, ts, p + 1, latency))
        << "TS latency not monotone between L=" << grid.xs[p] << " and L="
        << grid.xs[p + 1];

  // Endpoint slope within the L/2-law band.
  const std::size_t last = grid.num_points() - 1;
  const double slope = (shapes::mean_of(grid, ts, last, latency) -
                        shapes::mean_of(grid, ts, 0, latency)) /
                       (grid.xs[last] - grid.xs[0]);
  EXPECT_GE(slope, 0.3) << "TS latency grows much slower than L/2";
  EXPECT_LE(slope, 1.0) << "TS latency grows much faster than L/2";

  // UIR below TS at every point.
  for (std::size_t p = 0; p < grid.num_points(); ++p)
    EXPECT_LT(shapes::mean_of(grid, uir, p, latency),
              shapes::mean_of(grid, ts, p, latency))
        << "UIR not below TS at L=" << grid.xs[p];

  shapes::expect_no_stale(grid);
}

}  // namespace
}  // namespace wdc
