// Lint fixture: known-bad — a std::string copied by value into an event
// action's capture list. Expected: exactly one `inline-capture` finding.
#include <string>

namespace wdc::lintfix {

class Sim {
 public:
  template <typename F>
  void schedule_in(double delay, F&& action) {
    last_delay_ = delay;
    action();
  }

 private:
  double last_delay_ = 0.0;
};

class Component {
 public:
  void arm(Sim& sim) {
    std::string label = "tag";
    sim.schedule_in(1.0, [label] { consume(label); });
  }

  static void consume(const std::string& s) { (void)s; }
};

}  // namespace wdc::lintfix
