// Lint fixture: known-bad — range-for over an unordered map inside a function
// that feeds a CSV sink. Expected: exactly one `ordered-iteration` finding.
#include <cstdint>
#include <unordered_map>

namespace wdc::lintfix {

struct Row {
  std::uint64_t key = 0;
  double value = 0.0;
};

class CsvSink {
 public:
  void write_csv(const Row& row) { last_ = row.value; }

 private:
  double last_ = 0.0;
};

class Exporter {
 public:
  void flush() {
    for (const auto& [key, value] : cells_) {
      Row row;
      row.key = key;
      row.value = value;
      sink_.write_csv(row);
    }
  }

 private:
  std::unordered_map<std::uint64_t, double> cells_;
  CsvSink sink_;
};

}  // namespace wdc::lintfix
