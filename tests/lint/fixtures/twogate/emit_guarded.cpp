// Lint fixture: every two-gate idiom the tree uses — same-statement guard,
// braceless if, braced block, and `enabled() && hook()` in one expression.
// Expected: zero findings.
namespace wdc::lintfix {

class Recorder {
 public:
  bool enabled() const { return armed_; }
  void emit(int kind, double t) { last_ = t + kind; }
  bool drop_downlink(int c) { return armed_ && c > 0; }

 private:
  bool armed_ = false;
  double last_ = 0.0;
};

class Component {
 public:
  void on_event(double t) {
    if (rec_.enabled()) rec_.emit(1, t);
    if (rec_.enabled())
      rec_.emit(2, t);
    if (rec_.enabled()) {
      rec_.emit(3, t);
    }
    const bool dropped = rec_.enabled() && rec_.drop_downlink(7);
    if (dropped) last_ = t;
  }

 private:
  Recorder rec_;
  double last_ = 0.0;
};

}  // namespace wdc::lintfix
