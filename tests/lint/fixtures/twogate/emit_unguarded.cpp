// Lint fixture: known-bad — a trace emit site without its runtime gate.
// Expected: exactly one `two-gate` finding.
namespace wdc::lintfix {

class Recorder {
 public:
  bool enabled() const { return armed_; }
  void emit(int kind, double t) { last_ = t + kind; }

 private:
  bool armed_ = false;
  double last_ = 0.0;
};

class Component {
 public:
  void on_event(double t) {
    rec_.emit(1, t);  // compile-time gate only: the finding
  }

 private:
  Recorder rec_;
};

}  // namespace wdc::lintfix
