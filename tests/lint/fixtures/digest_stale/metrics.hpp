// Lint fixture: pair for the stale-exclusion case — every field is covered,
// but digest.cpp's exclude list names a field that no longer exists.
#ifndef WDC_TESTS_LINT_FIXTURES_DIGEST_STALE_METRICS_HPP
#define WDC_TESTS_LINT_FIXTURES_DIGEST_STALE_METRICS_HPP

#include <cstdint>

namespace wdc::lintfix {

struct Metrics {
  std::uint64_t seed = 0;
};

}  // namespace wdc::lintfix

#endif  // WDC_TESTS_LINT_FIXTURES_DIGEST_STALE_METRICS_HPP
