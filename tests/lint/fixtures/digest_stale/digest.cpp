// Lint fixture: the exclusion list survived a field rename. Expected: exactly
// one `digest-purity` finding ("digest-exclude lists 'renamed_away'...").
#include "metrics.hpp"

namespace wdc::lintfix {

struct Digest {
  void mix(std::uint64_t v) { h += v; }
  std::uint64_t value() const { return h; }
  std::uint64_t h = 0;
};

std::uint64_t metrics_digest(const Metrics& m) {
  Digest d;
  d.mix(m.seed);
  //   wdc-lint: digest-exclude(renamed_away)
  return d.value();
}

}  // namespace wdc::lintfix
