// Lint fixture: a miniature Metrics with one field that is neither mixed nor
// excluded in the paired digest.cpp. Expected: exactly one `digest-purity`
// finding naming `stray_counter`.
#ifndef WDC_TESTS_LINT_FIXTURES_DIGEST_METRICS_HPP
#define WDC_TESTS_LINT_FIXTURES_DIGEST_METRICS_HPP

#include <cstdint>

namespace wdc::lintfix {

struct Metrics {
  std::uint64_t seed = 0;
  double mean_latency_s = 0.0;
  std::uint64_t stray_counter = 0;  // the finding: in neither list
  double debug_probe_s = 0.0;       // excluded in digest.cpp
};

}  // namespace wdc::lintfix

#endif  // WDC_TESTS_LINT_FIXTURES_DIGEST_METRICS_HPP
