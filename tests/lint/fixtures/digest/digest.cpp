// Lint fixture: digest half of the digest-purity pair (see metrics.hpp).
#include "metrics.hpp"

namespace wdc::lintfix {

struct Digest {
  void mix(std::uint64_t v) { h += v; }
  void mix(double v) { h += static_cast<std::uint64_t>(v); }
  std::uint64_t value() const { return h; }
  std::uint64_t h = 0;
};

std::uint64_t metrics_digest(const Metrics& m) {
  Digest d;
  d.mix(m.seed);
  d.mix(m.mean_latency_s);
  // Instrumentation only, deliberately excluded:
  //   wdc-lint: digest-exclude(debug_probe_s)
  return d.value();
}

}  // namespace wdc::lintfix
