// Lint fixture: known-bad — C library rand() bypassing the seeded Rng
// streams. Expected: exactly one `determinism` finding.
#include <cstdlib>

namespace wdc::lintfix {

int ambient_draw() { return std::rand(); }

}  // namespace wdc::lintfix
