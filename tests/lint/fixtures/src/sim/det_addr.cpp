// Lint fixture: known-bad — address-as-value (an ASLR-dependent pointer cast
// to an integer). Expected: exactly one `determinism` finding.
#include <cstdint>

namespace wdc::lintfix {

std::uintptr_t key_of(const int* p) {
  return reinterpret_cast<std::uintptr_t>(p);
}

}  // namespace wdc::lintfix
