// Lint fixture: known-bad — wall-clock source inside a simulation directory.
// Expected: exactly one `determinism` finding (system_clock).
#include <chrono>

namespace wdc::lintfix {

double wall_seed() {
  const auto now = std::chrono::system_clock::now();
  return static_cast<double>(now.time_since_epoch().count());
}

}  // namespace wdc::lintfix
