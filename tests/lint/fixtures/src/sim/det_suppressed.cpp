// Lint fixture: the det_wall_clock violation with an explicit suppression —
// `// wdc-lint: allow(determinism)` on the line above silences it.
// Expected: zero findings.
#include <chrono>

namespace wdc::lintfix {

double wall_seed_for_logging() {
  // Justified: this fixture pretends to be log-timestamp code.
  // wdc-lint: allow(determinism)
  const auto now = std::chrono::system_clock::now();
  return static_cast<double>(now.time_since_epoch().count());
}

}  // namespace wdc::lintfix
