// Lint fixture: the same blocking calls silenced by allow() comments.
// Expected: zero `no-blocking-io` findings.
#include <chrono>
#include <thread>

namespace wdc::lintfix {

int leak_answer_quietly(int fd, const void* buf, unsigned len) {
  // wdc-lint: allow(no-blocking-io)
  const long n = ::send(fd, buf, len, 0);
  std::this_thread::sleep_for(  // wdc-lint: allow(no-blocking-io)
      std::chrono::milliseconds(1));
  return static_cast<int>(n);
}

}  // namespace wdc::lintfix
