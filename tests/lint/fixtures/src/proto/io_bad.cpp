// Lint fixture: known-bad — blocking I/O inside a protocol directory.
// Expected: exactly two `no-blocking-io` findings (::send, sleep_for).
#include <chrono>
#include <thread>

namespace wdc::lintfix {

// A member named send() is a legitimate project API: its declaration and
// member-call sites must NOT fire.
struct Channel {
  void send(int frame);
};

int leak_answer(int fd, const void* buf, unsigned len) {
  Channel ch;
  ch.send(fd);
  const long n = ::send(fd, buf, len, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  return static_cast<int>(n);
}

}  // namespace wdc::lintfix
