// Fixture tests for wdc_lint (ctest label `lint`).
//
// Each check is exercised in-process against a tiny known-bad source under
// tests/lint/fixtures/, asserting it fires exactly once at the expected line,
// and that `// wdc-lint: allow(<check>)` silences it.  The tree-wide run over
// the real sources is a separate ctest (`lint_tree`) registered in
// tests/CMakeLists.txt.

#include <initializer_list>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.hpp"

namespace {

using wdc::lint::Check;
using wdc::lint::Finding;
using wdc::lint::Options;
using wdc::lint::SourceFile;

std::string fixture_path(const std::string& rel) {
  return std::string(WDC_LINT_FIXTURE_DIR) + "/" + rel;
}

std::vector<SourceFile> load(std::initializer_list<const char*> rels) {
  std::vector<SourceFile> files;
  for (const char* rel : rels) {
    const std::string path = fixture_path(rel);
    auto text = wdc::lint::read_file(path);
    EXPECT_TRUE(text.has_value()) << "unreadable fixture: " << path;
    files.push_back({path, text.value_or(std::string())});
  }
  return files;
}

std::vector<Finding> run_check(Check check,
                               std::initializer_list<const char*> rels) {
  Options opts;
  opts.checks = {check};
  return wdc::lint::run_lint(load(rels), opts);
}

TEST(LintDeterminism, WallClockFiresExactlyOnce) {
  const auto findings =
      run_check(Check::kDeterminism, {"src/sim/det_wall_clock.cpp"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, Check::kDeterminism);
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_NE(findings[0].message.find("system_clock"), std::string::npos);
}

TEST(LintDeterminism, RandFiresExactlyOnce) {
  const auto findings =
      run_check(Check::kDeterminism, {"src/sim/det_rand.cpp"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, Check::kDeterminism);
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("rand"), std::string::npos);
}

TEST(LintDeterminism, AddressAsValueFiresExactlyOnce) {
  const auto findings =
      run_check(Check::kDeterminism, {"src/sim/det_addr.cpp"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, Check::kDeterminism);
  EXPECT_EQ(findings[0].line, 8);
}

TEST(LintDeterminism, AllowCommentSuppresses) {
  const auto findings =
      run_check(Check::kDeterminism, {"src/sim/det_suppressed.cpp"});
  EXPECT_TRUE(findings.empty());
}

TEST(LintDeterminism, OnlyAppliesToSimulationDirectories) {
  // The same wall-clock text outside src/sim|engine|channel|mac|cache|faults
  // is allowed (tools/ and bench/ may touch the wall clock).
  auto files = load({"src/sim/det_wall_clock.cpp"});
  files[0].path = "/root/repo/tools/det_wall_clock.cpp";
  Options opts;
  opts.checks = {Check::kDeterminism};
  EXPECT_TRUE(wdc::lint::run_lint(files, opts).empty());
}

TEST(LintDigestPurity, UncoveredFieldFiresExactlyOnce) {
  const auto findings = run_check(Check::kDigestPurity,
                                  {"digest/metrics.hpp", "digest/digest.cpp"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, Check::kDigestPurity);
  EXPECT_NE(findings[0].message.find("stray_counter"), std::string::npos);
}

TEST(LintDigestPurity, StaleExclusionFiresExactlyOnce) {
  const auto findings =
      run_check(Check::kDigestPurity,
                {"digest_stale/metrics.hpp", "digest_stale/digest.cpp"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, Check::kDigestPurity);
  EXPECT_NE(findings[0].message.find("renamed_away"), std::string::npos);
}

TEST(LintOrderedIteration, UnorderedRangeForIntoSinkFiresExactlyOnce) {
  const auto findings =
      run_check(Check::kOrderedIteration, {"ordered/iter_bad.cpp"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, Check::kOrderedIteration);
  EXPECT_EQ(findings[0].line, 24);
  EXPECT_NE(findings[0].message.find("cells_"), std::string::npos);
}

TEST(LintTwoGate, UnguardedEmitFiresExactlyOnce) {
  const auto findings =
      run_check(Check::kTwoGate, {"twogate/emit_unguarded.cpp"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, Check::kTwoGate);
  EXPECT_EQ(findings[0].line, 18);
}

TEST(LintTwoGate, GuardedIdiomsAreClean) {
  const auto findings =
      run_check(Check::kTwoGate, {"twogate/emit_guarded.cpp"});
  EXPECT_TRUE(findings.empty());
}

TEST(LintInlineCapture, ByValueStringCaptureFiresExactlyOnce) {
  const auto findings =
      run_check(Check::kInlineCapture, {"inline/capture_bad.cpp"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, Check::kInlineCapture);
  EXPECT_EQ(findings[0].line, 23);
  EXPECT_NE(findings[0].message.find("label"), std::string::npos);
}

TEST(LintNoBlockingIo, SyscallAndSleepFireAtExactLines) {
  const auto findings =
      run_check(Check::kNoBlockingIo, {"src/proto/io_bad.cpp"});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].check, Check::kNoBlockingIo);
  EXPECT_EQ(findings[0].line, 17);
  EXPECT_NE(findings[0].message.find("send"), std::string::npos);
  EXPECT_EQ(findings[1].check, Check::kNoBlockingIo);
  EXPECT_EQ(findings[1].line, 18);
  EXPECT_NE(findings[1].message.find("sleep_for"), std::string::npos);
}

TEST(LintNoBlockingIo, AllowCommentSuppresses) {
  const auto findings =
      run_check(Check::kNoBlockingIo, {"src/proto/io_suppressed.cpp"});
  EXPECT_TRUE(findings.empty());
}

TEST(LintNoBlockingIo, DoesNotApplyToTheIoBoundary) {
  // The same syscalls under src/net are the point of src/net.
  auto files = load({"src/proto/io_bad.cpp"});
  files[0].path = "/root/repo/src/net/io_bad.cpp";
  Options opts;
  opts.checks = {Check::kNoBlockingIo};
  EXPECT_TRUE(wdc::lint::run_lint(files, opts).empty());
}

TEST(LintRunner, FindingsAreSortedAndPerCheckSelectionWorks) {
  // All six checks over the whole fixture set: exactly the nine expected
  // findings (three determinism fixtures, two no-blocking-io, one each for
  // the other four checks), in (file, line, col, check) order.
  auto files = load({"src/sim/det_wall_clock.cpp", "src/sim/det_rand.cpp",
                     "src/sim/det_addr.cpp", "src/sim/det_suppressed.cpp",
                     "digest/metrics.hpp", "digest/digest.cpp",
                     "ordered/iter_bad.cpp", "twogate/emit_unguarded.cpp",
                     "twogate/emit_guarded.cpp", "inline/capture_bad.cpp",
                     "src/proto/io_bad.cpp", "src/proto/io_suppressed.cpp"});
  const auto findings = wdc::lint::run_lint(files, Options{});
  ASSERT_EQ(findings.size(), 9u);
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(findings[i - 1].file, findings[i].file);
  }
}

}  // namespace
