#include "mac/broadcast_mac.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wdc {
namespace {

/// Harness: a MAC with N fixed-SNR clients and simple recording listeners.
class MacTest : public ::testing::Test {
 protected:
  struct ClientRec {
    std::vector<Message> decoded;
    int heard = 0;
    bool listening = true;
  };

  MacTest() : table_(McsTable::simple3()) {}

  void build(MacConfig cfg, std::vector<double> snrs) {
    mac_ = std::make_unique<BroadcastMac>(sim_, table_, cfg, Rng(9));
    recs_.resize(snrs.size());
    for (std::size_t i = 0; i < snrs.size(); ++i) {
      links_.push_back(std::make_unique<FixedSnr>(snrs[i]));
      ClientRec* rec = &recs_[i];
      ClientPort port;
      port.link = links_.back().get();
      port.is_listening = [rec] { return rec->listening; };
      port.on_reception = [rec](const Reception& rx) {
        ++rec->heard;
        if (rx.decoded) rec->decoded.push_back(rx.msg);
      };
      mac_->register_client(std::move(port));
    }
  }

  static Message broadcast_msg(MsgKind kind, Bits bits) {
    Message m;
    m.kind = kind;
    m.bits = bits;
    return m;
  }

  Simulator sim_;
  McsTable table_;
  std::unique_ptr<BroadcastMac> mac_;
  std::vector<std::unique_ptr<FixedSnr>> links_;
  std::vector<ClientRec> recs_;
};

TEST_F(MacTest, RejectsIncompletePort) {
  build({}, {20.0});
  EXPECT_THROW(mac_->register_client(ClientPort{}), std::invalid_argument);
}

TEST_F(MacTest, BroadcastReachesAllListeners) {
  build({}, {30.0, 30.0, 30.0});
  mac_->enqueue(broadcast_msg(MsgKind::kInvalidationReport, 1000));
  sim_.run_until(10.0);
  for (const auto& rec : recs_) {
    EXPECT_EQ(rec.heard, 1);
    ASSERT_EQ(rec.decoded.size(), 1u);
    EXPECT_EQ(rec.decoded[0].kind, MsgKind::kInvalidationReport);
  }
}

TEST_F(MacTest, SleepingClientHearsNothing) {
  build({}, {30.0, 30.0});
  recs_[1].listening = false;
  mac_->enqueue(broadcast_msg(MsgKind::kItemData, 1000));
  sim_.run_until(10.0);
  EXPECT_EQ(recs_[0].heard, 1);
  EXPECT_EQ(recs_[1].heard, 0);
}

TEST_F(MacTest, StrictPriorityOrder) {
  build({}, {30.0});
  // Fill the queue while the channel is busy with a data frame, then check
  // service order: IR, mini, item, data.
  mac_->enqueue(broadcast_msg(MsgKind::kDownlinkData, 50000));  // occupies channel
  mac_->enqueue(broadcast_msg(MsgKind::kDownlinkData, 100));
  mac_->enqueue(broadcast_msg(MsgKind::kItemData, 100));
  mac_->enqueue(broadcast_msg(MsgKind::kMiniReport, 100));
  mac_->enqueue(broadcast_msg(MsgKind::kInvalidationReport, 100));
  sim_.run_until(100.0);
  ASSERT_EQ(recs_[0].decoded.size(), 5u);
  EXPECT_EQ(recs_[0].decoded[1].kind, MsgKind::kInvalidationReport);
  EXPECT_EQ(recs_[0].decoded[2].kind, MsgKind::kMiniReport);
  EXPECT_EQ(recs_[0].decoded[3].kind, MsgKind::kItemData);
  EXPECT_EQ(recs_[0].decoded[4].kind, MsgKind::kDownlinkData);
}

TEST_F(MacTest, FifoWithinClass) {
  build({}, {30.0});
  mac_->enqueue(broadcast_msg(MsgKind::kDownlinkData, 50000));
  Message a = broadcast_msg(MsgKind::kItemData, 100);
  a.item = 1;
  Message b = broadcast_msg(MsgKind::kItemData, 100);
  b.item = 2;
  mac_->enqueue(a);
  mac_->enqueue(b);
  sim_.run_until(100.0);
  ASSERT_EQ(recs_[0].decoded.size(), 3u);
  EXPECT_EQ(recs_[0].decoded[1].item, 1u);
  EXPECT_EQ(recs_[0].decoded[2].item, 2u);
}

TEST_F(MacTest, AirtimeAccounting) {
  MacConfig cfg;
  cfg.amc.adaptive = false;
  cfg.amc.fixed_mcs = 0;  // 10 kb/s in simple3
  build(cfg, {30.0});
  mac_->enqueue(broadcast_msg(MsgKind::kItemData, 10000));  // 1 s + preamble
  sim_.run_until(100.0);
  const auto& st = mac_->stats(MsgKind::kItemData);
  EXPECT_EQ(st.transmitted, 1u);
  EXPECT_NEAR(st.airtime_s, 1.0 + table_.preamble_s(), 1e-9);
  EXPECT_EQ(st.bits, 10000u);
}

TEST_F(MacTest, BusyFractionMatchesLoad) {
  MacConfig cfg;
  cfg.amc.adaptive = false;
  cfg.amc.fixed_mcs = 0;
  build(cfg, {30.0});
  mac_->enqueue(broadcast_msg(MsgKind::kItemData, 10000));
  sim_.run_until(10.0);
  EXPECT_NEAR(mac_->busy_fraction(10.0), (1.0 + table_.preamble_s()) / 10.0, 1e-6);
}

TEST_F(MacTest, LinkAdaptationUsesDestinationSnr) {
  MacConfig cfg;
  cfg.amc.hysteresis_db = 0.0;
  cfg.amc.csi_delay_s = 0.0;
  build(cfg, {30.0, -5.0});
  // Unicast to the strong client: fast scheme, short airtime.
  Message fast = broadcast_msg(MsgKind::kDownlinkData, 10000);
  fast.dest = 0;
  mac_->enqueue(fast);
  sim_.run_until(100.0);
  const double strong_airtime = mac_->stats(MsgKind::kDownlinkData).airtime_s;
  // Unicast to the weak client: robust scheme, much longer airtime.
  Message slow = broadcast_msg(MsgKind::kDownlinkData, 10000);
  slow.dest = 1;
  mac_->enqueue(slow);
  sim_.run_until(200.0);
  const double weak_airtime =
      mac_->stats(MsgKind::kDownlinkData).airtime_s - strong_airtime;
  EXPECT_GT(weak_airtime, 2.0 * strong_airtime);
}

TEST_F(MacTest, UnicastRetriesOnFailureThenDrops) {
  MacConfig cfg;
  cfg.amc.adaptive = false;
  cfg.amc.fixed_mcs = 2;  // 100 kb/s needs ~20 dB; dest at −20 dB always fails
  cfg.max_retx = 3;
  build(cfg, {-20.0});
  Message m = broadcast_msg(MsgKind::kDownlinkData, 1000);
  m.dest = 0;
  mac_->enqueue(m);
  sim_.run_until(100.0);
  const auto& st = mac_->stats(MsgKind::kDownlinkData);
  EXPECT_EQ(st.transmitted, 3u);  // initial + 2 retries
  EXPECT_EQ(st.dropped, 1u);
}

TEST_F(MacTest, BroadcastNeverRetries) {
  MacConfig cfg;
  cfg.amc.adaptive = false;
  cfg.amc.fixed_mcs = 2;
  build(cfg, {-20.0});
  mac_->enqueue(broadcast_msg(MsgKind::kInvalidationReport, 1000));
  sim_.run_until(100.0);
  EXPECT_EQ(mac_->stats(MsgKind::kInvalidationReport).transmitted, 1u);
  EXPECT_TRUE(recs_[0].decoded.empty());
  EXPECT_EQ(recs_[0].heard, 1);  // offered but not decoded
}

TEST_F(MacTest, BroadcastReferencePercentile) {
  MacConfig cfg;
  cfg.broadcast_percentile = 0.0;  // minimum over listeners
  build(cfg, {5.0, 15.0, 25.0});
  EXPECT_NEAR(mac_->broadcast_reference_snr(0.0), 5.0, 1e-9);
  recs_[0].listening = false;  // weakest asleep: reference moves up
  EXPECT_NEAR(mac_->broadcast_reference_snr(0.0), 15.0, 1e-9);
}

TEST_F(MacTest, BroadcastReferenceInterpolates) {
  MacConfig cfg;
  cfg.broadcast_percentile = 0.5;
  build(cfg, {0.0, 10.0});
  EXPECT_NEAR(mac_->broadcast_reference_snr(0.0), 5.0, 1e-9);
}

TEST_F(MacTest, TxObserverSeesEveryTransmission) {
  build({}, {30.0});
  int seen = 0;
  mac_->set_tx_observer(
      [&](const Message&, std::size_t, double) { ++seen; });
  mac_->enqueue(broadcast_msg(MsgKind::kItemData, 100));
  mac_->enqueue(broadcast_msg(MsgKind::kDownlinkData, 100));
  sim_.run_until(100.0);
  EXPECT_EQ(seen, 2);
}

TEST_F(MacTest, QueueDelayMeasuredFromEnqueue) {
  MacConfig cfg;
  cfg.amc.adaptive = false;
  cfg.amc.fixed_mcs = 0;
  build(cfg, {30.0});
  mac_->enqueue(broadcast_msg(MsgKind::kItemData, 10000));  // ~1s service
  mac_->enqueue(broadcast_msg(MsgKind::kItemData, 100));    // waits ~1s
  sim_.run_until(100.0);
  const auto& st = mac_->stats(MsgKind::kItemData);
  EXPECT_EQ(st.queue_delay.count(), 2u);
  EXPECT_NEAR(st.queue_delay.max(), 1.0 + table_.preamble_s(), 1e-6);
}

}  // namespace
}  // namespace wdc
