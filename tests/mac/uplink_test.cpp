#include "mac/uplink.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wdc {
namespace {

TEST(Uplink, DeliversAfterBaseDelay) {
  Simulator sim;
  UplinkConfig cfg;
  cfg.base_delay_s = 0.1;
  cfg.jitter_mean_s = 0.0;
  UplinkChannel up(sim, cfg, Rng(1));
  double delivered_at = -1.0;
  up.send(0, 100, [&] { delivered_at = sim.now(); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(delivered_at, 0.1);
}

TEST(Uplink, CountsRequestsAndBits) {
  Simulator sim;
  UplinkChannel up(sim, {}, Rng(2));
  up.send(1, 100, [] {});
  up.send(2, 200, [] {});
  EXPECT_EQ(up.requests(), 2u);
  EXPECT_EQ(up.bits_sent(), 300u);
}

TEST(Uplink, InFlightTracksOutstanding) {
  Simulator sim;
  UplinkConfig cfg;
  cfg.base_delay_s = 1.0;
  cfg.jitter_mean_s = 0.0;
  UplinkChannel up(sim, cfg, Rng(3));
  up.send(0, 100, [] {});
  up.send(0, 100, [] {});
  EXPECT_EQ(up.in_flight(), 2u);
  sim.run_until(5.0);
  EXPECT_EQ(up.in_flight(), 0u);
}

TEST(Uplink, JitterGrowsWithContention) {
  // With many requests in flight, mean delay grows.
  Simulator sim;
  UplinkConfig cfg;
  cfg.base_delay_s = 0.05;
  cfg.jitter_mean_s = 0.02;
  UplinkChannel up(sim, cfg, Rng(4));
  for (int i = 0; i < 100; ++i) up.send(0, 100, [] {});
  sim.run_until(100.0);
  // Mean sampled delay across a burst of 100 must clearly exceed the base.
  EXPECT_GT(up.delay().mean(), 0.1);
  EXPECT_GE(up.delay().min(), 0.05);
}

TEST(Uplink, DeliveryOrderNotNecessarilyFifoUnderJitter) {
  Simulator sim;
  UplinkConfig cfg;
  cfg.base_delay_s = 0.01;
  cfg.jitter_mean_s = 0.5;
  UplinkChannel up(sim, cfg, Rng(5));
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) up.send(0, 10, [&order, i] { order.push_back(i); });
  sim.run_until(100.0);
  ASSERT_EQ(order.size(), 20u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace wdc
