#include <gtest/gtest.h>

#include "harness.hpp"
#include "proto/baselines.hpp"

namespace wdc {
namespace {

TEST(NcSemantics, FetchesImmediatelyWithoutReports) {
  ProtoHarness h(ProtocolKind::kNc);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(3.0);
  // No reports exist; the answer arrives at uplink + broadcast timescales.
  EXPECT_EQ(h.server_->reports_sent(), 0u);
  EXPECT_EQ(h.sink_->answered(), 1u);
  EXPECT_EQ(h.sink_->misses(), 1u);
  EXPECT_LT(h.sink_->miss_latency().mean(), 1.0);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(NcSemantics, NeverCachesNeverHits) {
  ProtoHarness h(ProtocolKind::kNc);
  for (int i = 0; i < 5; ++i) {
    h.sim_.run_until(1.0 + 5.0 * i);
    h.clients_[0]->on_query(7);
  }
  h.sim_.run_until(40.0);
  EXPECT_EQ(h.sink_->hits(), 0u);
  EXPECT_EQ(h.sink_->misses(), 5u);
  EXPECT_EQ(h.clients_[0]->cache().size(), 0u);
  EXPECT_EQ(h.uplink_->requests(), 5u);
}

TEST(NcSemantics, ConcurrentQueriesShareOneFetch) {
  ProtoHarness h(ProtocolKind::kNc);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.clients_[0]->on_query(5);  // same instant, same item
  h.sim_.run_until(5.0);
  EXPECT_EQ(h.sink_->answered(), 2u);
  EXPECT_EQ(h.uplink_->requests(), 1u);
}

TEST(PerSemantics, FirstQueryMissesThenPollsValidate) {
  ProtoHarness h(ProtocolKind::kPer);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(3.0);  // fetched & cached
  EXPECT_EQ(h.sink_->misses(), 1u);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(5.0);
  // Validated by a poll round trip: a hit at sub-second latency.
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_LT(h.sink_->hit_latency().mean(), 1.0);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
  auto* server = dynamic_cast<ServerPer*>(h.server_.get());
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->polls(), 1u);
  EXPECT_EQ(server->poll_hits(), 1u);
}

TEST(PerSemantics, StaleCopyDetectedAndRefetched) {
  ProtoHarness h(ProtocolKind::kPer);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(3.0);
  h.db_->apply_update(5);  // cached copy is now old
  h.sim_.run_until(4.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(8.0);
  // The poll comes back invalid; the pushed item answers the query as a miss.
  EXPECT_EQ(h.sink_->hits(), 0u);
  EXPECT_EQ(h.sink_->misses(), 2u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
  auto* server = dynamic_cast<ServerPer*>(h.server_.get());
  EXPECT_EQ(server->polls(), 1u);
  EXPECT_EQ(server->poll_hits(), 0u);
}

TEST(PerSemantics, EveryReadCostsAnUplinkMessage) {
  ProtoHarness h(ProtocolKind::kPer);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(3.0);
  for (int i = 0; i < 4; ++i) {
    h.clients_[0]->on_query(5);
    h.sim_.run_until(4.0 + i);
  }
  h.sim_.run_until(12.0);
  // 1 fetch + 4 polls = 5 uplink messages for 5 reads.
  EXPECT_EQ(h.uplink_->requests(), 5u);
  EXPECT_EQ(h.sink_->hits(), 4u);
}

TEST(PerSemantics, ConcurrentReadsShareOnePoll) {
  ProtoHarness h(ProtocolKind::kPer);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(3.0);
  h.clients_[0]->on_query(5);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(6.0);
  EXPECT_EQ(h.sink_->hits(), 2u);
  auto* server = dynamic_cast<ServerPer*>(h.server_.get());
  EXPECT_EQ(server->polls(), 1u);
}

TEST(PerSemantics, SleepDropsOutstandingPolls) {
  ProtoHarness h(ProtocolKind::kPer);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(3.0);
  h.clients_[0]->on_query(5);  // poll goes out
  h.set_awake(0, false);       // sleep before the ack returns
  h.sim_.run_until(6.0);
  EXPECT_EQ(h.sink_->dropped(), 1u);
  h.set_awake(0, true);
  // A later read re-polls normally (no stuck in-flight state).
  h.clients_[0]->on_query(5);
  h.sim_.run_until(10.0);
  EXPECT_EQ(h.sink_->hits(), 1u);
}

}  // namespace
}  // namespace wdc
