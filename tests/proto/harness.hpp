#ifndef WDC_TESTS_PROTO_HARNESS_HPP
#define WDC_TESTS_PROTO_HARNESS_HPP

/// Deterministic protocol test harness: ideal channel (fixed SNR), no background
/// traffic, no automatic updates or queries — the test drives everything by hand
/// and reads the shared StatsSink.

#include <memory>
#include <vector>

#include "channel/snr_process.hpp"
#include "mac/broadcast_mac.hpp"
#include "mac/uplink.hpp"
#include "proto/factory.hpp"
#include "proto/stats_sink.hpp"
#include "sim/simulator.hpp"
#include "workload/database.hpp"

namespace wdc {

class ProtoHarness {
 public:
  explicit ProtoHarness(ProtocolKind kind, std::size_t num_clients = 2,
                        double snr_db = 50.0, ProtoConfig pcfg = default_proto(),
                        MacConfig mac_cfg = MacConfig{}) {
    table_ = std::make_unique<McsTable>(McsTable::edge());
    mac_ = std::make_unique<BroadcastMac>(sim_, *table_, mac_cfg, Rng(11));
    uplink_ = std::make_unique<UplinkChannel>(sim_, UplinkConfig{0.01, 0.0}, Rng(12));
    DatabaseConfig dbc;
    dbc.num_items = 100;
    dbc.update_rate = 0.0;  // manual updates only
    db_ = std::make_unique<Database>(sim_, dbc, Rng(13));
    sink_ = std::make_unique<StatsSink>(0.0);
    server_ = make_server(kind, sim_, *mac_, *db_, pcfg);
    for (std::size_t i = 0; i < num_clients; ++i) {
      links_.push_back(std::make_unique<FixedSnr>(snr_db));
      awake_.push_back(std::make_unique<bool>(true));
      bool* flag = awake_.back().get();
      clients_.push_back(make_client(kind, sim_, *mac_, *uplink_, *server_, *db_,
                                     pcfg, links_.back().get(),
                                     [flag] { return *flag; }, *sink_,
                                     Rng(100 + i)));
    }
    server_->start();
  }

  static ProtoConfig default_proto() {
    ProtoConfig cfg;
    cfg.ir_interval_s = 10.0;
    cfg.window_mult = 3.0;
    return cfg;
  }

  /// Put the client to sleep / wake it (mirrors what SleepModel would do).
  void set_awake(std::size_t i, bool awake) {
    if (*awake_[i] == awake) return;
    *awake_[i] = awake;
    clients_[i]->on_sleep_transition(awake);
  }

  Simulator sim_;
  std::unique_ptr<McsTable> table_;
  std::unique_ptr<BroadcastMac> mac_;
  std::unique_ptr<UplinkChannel> uplink_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<StatsSink> sink_;
  std::unique_ptr<ServerProtocol> server_;
  std::vector<std::unique_ptr<FixedSnr>> links_;
  std::vector<std::unique_ptr<bool>> awake_;
  std::vector<std::unique_ptr<ClientProtocol>> clients_;
};

}  // namespace wdc

#endif  // WDC_TESTS_PROTO_HARNESS_HPP
