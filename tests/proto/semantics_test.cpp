#include <gtest/gtest.h>

#include "harness.hpp"

namespace wdc {
namespace {

// Reports fire at t = 10, 20, 30, … (L = 10). The channel is ideal, so every
// transmission decodes and timings are predictable to within MAC airtime.

TEST(TsSemantics, FirstQueryIsMissDecidedAtNextReport) {
  ProtoHarness h(ProtocolKind::kTs);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(25.0);
  EXPECT_EQ(h.sink_->queries(), 1u);
  EXPECT_EQ(h.sink_->answered(), 1u);
  EXPECT_EQ(h.sink_->misses(), 1u);
  EXPECT_EQ(h.sink_->hits(), 0u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
  // Query at 1, decided at the t=10 report, item arrives shortly after.
  EXPECT_GT(h.sink_->miss_latency().mean(), 9.0);
  EXPECT_LT(h.sink_->miss_latency().mean(), 11.0);
  EXPECT_EQ(h.uplink_->requests(), 1u);
}

TEST(TsSemantics, RepeatQueryHitsFromCache) {
  ProtoHarness h(ProtocolKind::kTs);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(30.5);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  EXPECT_EQ(h.sink_->answered(), 2u);
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_EQ(h.sink_->misses(), 1u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
  // Hit waits from 30.5 to the t=40 report: ≈ 9.5 s.
  EXPECT_NEAR(h.sink_->hit_latency().mean(), 9.5, 0.5);
}

TEST(TsSemantics, UpdateInvalidatesCachedCopy) {
  ProtoHarness h(ProtocolKind::kTs);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(25.0);  // item cached around t=10
  h.db_->apply_update(5);  // update at t=25
  h.sim_.run_until(26.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  // The t=30 report lists item 5 (updated at 25 > fetch ~10) ⇒ miss + refetch.
  EXPECT_EQ(h.sink_->answered(), 2u);
  EXPECT_EQ(h.sink_->misses(), 2u);
  EXPECT_EQ(h.sink_->hits(), 0u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
  EXPECT_EQ(h.uplink_->requests(), 2u);
}

TEST(TsSemantics, UpdateToOtherItemDoesNotInvalidate) {
  ProtoHarness h(ProtocolKind::kTs);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(25.0);
  h.db_->apply_update(6);  // different item
  h.sim_.run_until(26.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  EXPECT_EQ(h.sink_->hits(), 1u);
}

TEST(TsSemantics, SurvivesShortDisconnectionWithinWindow) {
  ProtoHarness h(ProtocolKind::kTs);  // window = 3·L = 30
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(15.0);  // cached at ~10
  h.set_awake(0, false);   // miss the t=20 report only
  h.sim_.run_until(25.0);
  h.set_awake(0, true);
  h.sim_.run_until(31.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  // Reconnected within the window ⇒ cache retained ⇒ hit at t=40.
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_EQ(h.sink_->cache_drops(), 0u);
}

TEST(TsSemantics, DropsCacheAfterLongDisconnection) {
  ProtoHarness h(ProtocolKind::kTs);  // window = 30
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(15.0);
  h.set_awake(0, false);  // sleep 15 → 55: last applied report t=10; gap > 30
  h.sim_.run_until(55.0);
  h.set_awake(0, true);
  h.sim_.run_until(61.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(75.0);
  EXPECT_EQ(h.sink_->cache_drops(), 1u);
  EXPECT_EQ(h.sink_->hits(), 0u);
  EXPECT_EQ(h.sink_->misses(), 2u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(AtSemantics, DropsCacheWhenSingleReportMissed) {
  ProtoHarness h(ProtocolKind::kAt);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(15.0);  // cached at ~10
  h.set_awake(0, false);   // miss exactly the t=20 report
  h.sim_.run_until(25.0);
  h.set_awake(0, true);
  h.sim_.run_until(31.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  // Amnesic: one missed report ⇒ drop at t=30 ⇒ the second query misses.
  EXPECT_GE(h.sink_->cache_drops(), 1u);
  EXPECT_EQ(h.sink_->hits(), 0u);
  EXPECT_EQ(h.sink_->misses(), 2u);
}

TEST(AtSemantics, ContinuousListeningBehavesLikeTs) {
  ProtoHarness h(ProtocolKind::kAt);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(30.5);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_EQ(h.sink_->cache_drops(), 0u);
}

TEST(UirSemantics, MiniReportsAnswerQueriesEarly) {
  ProtoConfig cfg = ProtoHarness::default_proto();
  cfg.uir_m = 5;  // minis every 2 s
  ProtoHarness h(ProtocolKind::kUir, 2, 50.0, cfg);
  h.sim_.run_until(10.5);  // first full report was at t=10
  h.clients_[0]->on_query(5);
  h.sim_.run_until(20.0);
  // Decided at the t=12 mini, not the t=20 full report.
  EXPECT_EQ(h.sink_->answered(), 1u);
  EXPECT_LT(h.sink_->miss_latency().mean(), 3.0);
}

TEST(UirSemantics, MiniUselessWithoutAnchor) {
  ProtoConfig cfg = ProtoHarness::default_proto();
  cfg.uir_m = 5;
  ProtoHarness h(ProtocolKind::kUir, 2, 50.0, cfg);
  h.sim_.run_until(10.5);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(12.5);  // item 5 cached via the t=12 mini decision
  // Client sleeps through the t=20 full report; wakes for the t=22 mini. The
  // mini anchors at the t=20 full, which the client never heard ⇒ unusable; the
  // query waits for the t=30 full report.
  h.set_awake(0, false);
  h.sim_.run_until(21.0);
  h.set_awake(0, true);
  h.sim_.run_until(21.5);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(35.0);
  EXPECT_EQ(h.sink_->answered(), 2u);
  // Second answer had to wait ≈ 8.5 s (to t=30), not ≈ 0.5 s (to t=22).
  EXPECT_GT(h.sink_->hit_latency().mean(), 7.0);
}

TEST(RequestPath, ConcurrentRequestsCoalesce) {
  ProtoHarness h(ProtocolKind::kTs);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.clients_[1]->on_query(5);
  h.sim_.run_until(25.0);
  EXPECT_EQ(h.sink_->answered(), 2u);
  EXPECT_EQ(h.sink_->misses(), 2u);
  EXPECT_EQ(h.uplink_->requests(), 2u);
  EXPECT_EQ(h.server_->coalesced_requests(), 1u);
  EXPECT_EQ(h.server_->item_broadcasts(), 1u);
}

TEST(RequestPath, SnoopedBroadcastServesBothClients) {
  ProtoHarness h(ProtocolKind::kTs);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(25.0);
  // Client 1 never requested item 5 and must not have it cached (no snooping
  // into uninterested caches) — its first query for it is a miss.
  h.clients_[1]->on_query(5);
  h.sim_.run_until(45.0);
  EXPECT_EQ(h.sink_->misses(), 2u);
}

TEST(SleepHandling, PendingQueriesDroppedOnSleep) {
  ProtoHarness h(ProtocolKind::kTs);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.set_awake(0, false);  // sleep before the report decides the query
  h.sim_.run_until(25.0);
  EXPECT_EQ(h.sink_->answered(), 0u);
  EXPECT_EQ(h.sink_->dropped(), 1u);
}

TEST(LairSemantics, BehavesLikeTsOnIdealChannel) {
  // On a high-SNR channel the deferral window never triggers: LAIR ≡ TS.
  ProtoHarness h(ProtocolKind::kLair);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(30.5);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_EQ(h.server_->lair_deferred(), 0u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(LairSemantics, DefersOnBadChannelUpToWindow) {
  ProtoConfig cfg = ProtoHarness::default_proto();
  cfg.lair_window_s = 2.0;
  cfg.lair_step_s = 0.5;
  cfg.lair_min_snr_db = 6.0;
  // All clients at very low SNR: the channel never becomes "good", so every
  // report slides to the deadline and is then sent anyway.
  ProtoHarness h(ProtocolKind::kLair, 2, -5.0, cfg);
  h.sim_.run_until(35.0);
  EXPECT_GE(h.server_->lair_deferred(), 3u);
  EXPECT_GT(h.server_->lair_deferral_s(), 0.0);
  EXPECT_EQ(h.server_->reports_sent(), 3u);  // 10+2, 20+2, 30+2
}

}  // namespace
}  // namespace wdc
