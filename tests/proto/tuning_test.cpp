#include <gtest/gtest.h>

#include "harness.hpp"

namespace wdc {
namespace {

ProtoConfig tuned_cfg() {
  ProtoConfig cfg = ProtoHarness::default_proto();  // L = 10
  cfg.selective_tuning = true;
  cfg.tune_guard_s = 0.2;
  cfg.tune_linger_s = 0.5;
  return cfg;
}

TEST(SelectiveTuning, RadioDozesBetweenReports) {
  ProtoHarness h(ProtocolKind::kTs, 2, 50.0, tuned_cfg());
  h.sim_.run_until(100.0);
  // Radio needed ≈ (guard + report rx)/L plus the initial sync period: far
  // below always-on.
  const double on = h.clients_[0]->radio_on_time(100.0) / 100.0;
  EXPECT_LT(on, 0.35);
  EXPECT_GT(on, 0.01);
}

TEST(SelectiveTuning, AlwaysOnWithoutTheFlag) {
  ProtoHarness h(ProtocolKind::kTs);
  h.sim_.run_until(100.0);
  EXPECT_DOUBLE_EQ(h.clients_[0]->radio_on_time(100.0), 100.0);
  EXPECT_TRUE(h.clients_[0]->radio_on());
}

TEST(SelectiveTuning, StillHearsReportsAndServesQueries) {
  ProtoHarness h(ProtocolKind::kTs, 2, 50.0, tuned_cfg());
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(30.5);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  // Same outcomes as always-on TS: one miss, one hit, consistency intact.
  EXPECT_EQ(h.sink_->misses(), 1u);
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
  EXPECT_GT(h.sink_->reports_heard(), 2u);
}

TEST(SelectiveTuning, FetchKeepsRadioOn) {
  ProtoHarness h(ProtocolKind::kTs, 2, 50.0, tuned_cfg());
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(10.03);  // report applied, miss decided, fetch in flight
  EXPECT_TRUE(h.clients_[0]->radio_on());
  h.sim_.run_until(15.0);  // item long since arrived; mid-interval ⇒ dozing
  EXPECT_FALSE(h.clients_[0]->radio_on());
}

TEST(SelectiveTuning, MissesDigestsBetweenReports) {
  // A tuned PIG client is deaf to mid-interval digests: the early-answer
  // machinery silently degrades to plain TS behaviour.
  ProtoConfig cfg = tuned_cfg();
  ProtoHarness h(ProtocolKind::kPig, 2, 50.0, cfg);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(13.0);      // cached via the t=10 report
  h.clients_[0]->on_query(5);  // pending
  h.sim_.run_until(14.0);
  h.server_->on_downlink_frame(TrafficFrame{1, 4000});  // digest client 0 sleeps through
  h.sim_.run_until(16.0);
  EXPECT_EQ(h.sink_->answered(), 1u);  // not answered early
  h.sim_.run_until(25.0);
  EXPECT_EQ(h.sink_->answered(), 2u);  // resolved by the t=20 report
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(SelectiveTuning, LairSlackExtendsWindow) {
  // LAIR clients must budget for the deferral window; with reports actually
  // slid (bad channel) they still catch them.
  ProtoConfig cfg = tuned_cfg();
  cfg.lair_window_s = 2.0;
  cfg.lair_step_s = 0.5;
  cfg.lair_min_snr_db = 6.0;
  ProtoHarness h(ProtocolKind::kLair, 2, 50.0, cfg);
  // High SNR ⇒ no slide; tuned TS-like behaviour, everything heard.
  h.sim_.run_until(45.0);
  EXPECT_GT(h.sink_->reports_heard(), 4u);
  // Radio budget includes the slack: on-fraction above plain TS tuning but
  // still far below 1.
  const double on = h.clients_[0]->radio_on_time(45.0) / 45.0;
  EXPECT_LT(on, 0.6);
}

}  // namespace
}  // namespace wdc
