/// Round-trip and fuzz-style corruption tests for the report wire codec.
///
/// The corruption half is the point: every truncation prefix, every single-bit
/// flip, and a randomized mutation storm must either decode cleanly or fail
/// with a reason — never crash, never over-allocate, never read out of bounds
/// (the sanitizer CI job runs this file under ASan/UBSan).

#include "proto/report_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "util/rng.hpp"

namespace wdc {
namespace {

FullReport sample_full() {
  FullReport r;
  r.stamp = 120.25;
  r.window_start = 60.25;
  r.updates = {{3, 61.5}, {17, 90.0}, {599, 120.0}};
  return r;
}

MiniReport sample_mini() {
  MiniReport r;
  r.stamp = 130.0;
  r.anchor = 120.25;
  r.updated = {4, 8, 15, 16, 23, 42};
  return r;
}

SigReport sample_sig() {
  SigReport r;
  r.stamp = 200.0;
  r.window_start = 100.0;
  r.updated = {7, 11};
  r.fp_prob = 0.01;
  return r;
}

PiggyDigest sample_digest() {
  PiggyDigest r;
  r.stamp = 55.5;
  r.horizon_start = 25.5;
  r.updated = {1, 2, 3};
  r.complete = false;
  return r;
}

BsReport sample_bs() {
  BsReport r;
  r.stamp = 512.0;
  r.boundaries = {0.0, 256.0, 384.0, 448.0};
  r.updates = {{9, 300.0}, {10, 450.0}};
  return r;
}

template <typename T>
const T& decode_as(const std::vector<std::uint8_t>& bytes, ReportWireKind kind,
                   DecodedReport* out) {
  std::string error;
  EXPECT_TRUE(decode_report(bytes.data(), bytes.size(), out, &error)) << error;
  EXPECT_EQ(out->kind, kind);
  const auto* p = dynamic_cast<const T*>(out->payload.get());
  EXPECT_NE(p, nullptr);
  return *p;
}

TEST(ReportCodec, FullRoundTrip) {
  const FullReport in = sample_full();
  DecodedReport out;
  const auto& back =
      decode_as<FullReport>(encode_report(in), ReportWireKind::kFull, &out);
  EXPECT_EQ(back.stamp, in.stamp);
  EXPECT_EQ(back.window_start, in.window_start);
  EXPECT_EQ(back.updates, in.updates);
}

TEST(ReportCodec, MiniRoundTrip) {
  const MiniReport in = sample_mini();
  DecodedReport out;
  const auto& back =
      decode_as<MiniReport>(encode_report(in), ReportWireKind::kMini, &out);
  EXPECT_EQ(back.stamp, in.stamp);
  EXPECT_EQ(back.anchor, in.anchor);
  EXPECT_EQ(back.updated, in.updated);
}

TEST(ReportCodec, SigRoundTrip) {
  const SigReport in = sample_sig();
  DecodedReport out;
  const auto& back =
      decode_as<SigReport>(encode_report(in), ReportWireKind::kSig, &out);
  EXPECT_EQ(back.stamp, in.stamp);
  EXPECT_EQ(back.window_start, in.window_start);
  EXPECT_EQ(back.updated, in.updated);
  EXPECT_EQ(back.fp_prob, in.fp_prob);
}

TEST(ReportCodec, DigestRoundTrip) {
  const PiggyDigest in = sample_digest();
  DecodedReport out;
  const auto& back = decode_as<PiggyDigest>(encode_report(in),
                                            ReportWireKind::kDigest, &out);
  EXPECT_EQ(back.stamp, in.stamp);
  EXPECT_EQ(back.horizon_start, in.horizon_start);
  EXPECT_EQ(back.updated, in.updated);
  EXPECT_EQ(back.complete, in.complete);
}

TEST(ReportCodec, BsRoundTrip) {
  const BsReport in = sample_bs();
  DecodedReport out;
  const auto& back =
      decode_as<BsReport>(encode_report(in), ReportWireKind::kBs, &out);
  EXPECT_EQ(back.stamp, in.stamp);
  EXPECT_EQ(back.boundaries, in.boundaries);
  EXPECT_EQ(back.updates, in.updates);
}

TEST(ReportCodec, EmptyListsRoundTrip) {
  FullReport in;
  in.stamp = 1.0;
  DecodedReport out;
  const auto& back =
      decode_as<FullReport>(encode_report(in), ReportWireKind::kFull, &out);
  EXPECT_TRUE(back.updates.empty());
}

// --- corruption ------------------------------------------------------------

std::vector<std::vector<std::uint8_t>> all_samples() {
  return {encode_report(sample_full()), encode_report(sample_mini()),
          encode_report(sample_sig()), encode_report(sample_digest()),
          encode_report(sample_bs())};
}

TEST(ReportCodecCorruption, EveryTruncationFailsCleanly) {
  for (const auto& bytes : all_samples()) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      DecodedReport out;
      std::string error;
      EXPECT_FALSE(decode_report(bytes.data(), len, &out, &error))
          << "prefix of " << len << " bytes decoded";
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(ReportCodecCorruption, BadMagicVersionKind) {
  auto bytes = encode_report(sample_full());
  DecodedReport out;
  std::string error;

  auto corrupted = bytes;
  corrupted[0] = 'X';
  EXPECT_FALSE(decode_report(corrupted.data(), corrupted.size(), &out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);

  corrupted = bytes;
  corrupted[2] = kReportCodecVersion + 1;
  EXPECT_FALSE(decode_report(corrupted.data(), corrupted.size(), &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos);

  corrupted = bytes;
  corrupted[3] = 200;  // no such ReportWireKind
  EXPECT_FALSE(decode_report(corrupted.data(), corrupted.size(), &out, &error));
  EXPECT_NE(error.find("kind"), std::string::npos);
}

TEST(ReportCodecCorruption, TrailingBytesRejected) {
  auto bytes = encode_report(sample_mini());
  bytes.push_back(0);
  DecodedReport out;
  std::string error;
  EXPECT_FALSE(decode_report(bytes.data(), bytes.size(), &out, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(ReportCodecCorruption, HugeCountRejectedBeforeAllocation) {
  // Hand-build a FullReport whose update count claims 2^32-1 entries with no
  // bytes behind it: the decoder must reject on the remaining-bytes cap.
  std::vector<std::uint8_t> bytes = {'W', 'R', kReportCodecVersion, 0};
  const double zero = 0.0;
  for (int i = 0; i < 2; ++i) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&zero);
    bytes.insert(bytes.end(), p, p + sizeof zero);
  }
  const std::uint32_t huge = 0xffffffffu;
  const auto* p = reinterpret_cast<const std::uint8_t*>(&huge);
  bytes.insert(bytes.end(), p, p + sizeof huge);
  DecodedReport out;
  std::string error;
  EXPECT_FALSE(decode_report(bytes.data(), bytes.size(), &out, &error));
  EXPECT_NE(error.find("overruns"), std::string::npos);
}

TEST(ReportCodecCorruption, EverySingleBitFlipIsHandled) {
  for (const auto& bytes : all_samples()) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        auto corrupted = bytes;
        corrupted[i] = static_cast<std::uint8_t>(corrupted[i] ^ (1u << bit));
        DecodedReport out;
        std::string error;
        // Either verdict is acceptable; the requirement is a clean return and,
        // on success, a structurally sane payload.
        if (decode_report(corrupted.data(), corrupted.size(), &out, &error)) {
          ASSERT_NE(out.payload, nullptr);
        } else {
          EXPECT_FALSE(error.empty());
        }
      }
    }
  }
}

TEST(ReportCodecCorruption, RandomMutationStorm) {
  Rng rng(0xc0dec);
  const auto samples = all_samples();
  for (int round = 0; round < 2000; ++round) {
    auto bytes = samples[rng.uniform_int(samples.size())];
    const auto mutations = 1 + rng.uniform_int(8);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      const auto pos = rng.uniform_int(bytes.size());
      bytes[pos] = static_cast<std::uint8_t>(rng.uniform_int(256));
    }
    if (rng.bernoulli(0.3))
      bytes.resize(rng.uniform_int(bytes.size() + 1));
    DecodedReport out;
    std::string error;
    if (decode_report(bytes.data(), bytes.size(), &out, &error)) {
      ASSERT_NE(out.payload, nullptr);
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(ReportCodec, KindNames) {
  EXPECT_STREQ(to_string(ReportWireKind::kFull), "FULL");
  EXPECT_STREQ(to_string(ReportWireKind::kBs), "BS");
}

}  // namespace
}  // namespace wdc
