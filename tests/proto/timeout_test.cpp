#include <gtest/gtest.h>

#include <cmath>

#include "harness.hpp"

namespace wdc {
namespace {

TEST(RequestTimeout, LostItemBroadcastIsReRequested) {
  // Fixed MCS-3 (γ50 = 6 dB) with the client at the 15% per-block BLER point:
  // the tiny report (1 block) almost always decodes, but the 19-block item
  // broadcast almost never does — the timeout/retry path must converge.
  ProtoConfig cfg = ProtoHarness::default_proto();
  cfg.request_timeout_s = 3.0;
  MacConfig mac_cfg;
  mac_cfg.amc.adaptive = false;
  mac_cfg.amc.fixed_mcs = 2;  // EDGE MCS-3
  const double snr = 6.0 + 1.2 * std::log(0.85 / 0.15);  // ≈ 8.1 dB
  ProtoHarness h(ProtocolKind::kTs, 2, snr, cfg, mac_cfg);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(200.0);
  // Eventually answered (a ~4.6% per-attempt success compounds over retries),
  // with retries on the record.
  EXPECT_EQ(h.sink_->answered(), 1u);
  EXPECT_GE(h.sink_->request_retries(), 1u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(RequestTimeout, NoRetriesOnCleanChannel) {
  ProtoHarness h(ProtocolKind::kTs);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(30.0);
  EXPECT_EQ(h.sink_->answered(), 1u);
  EXPECT_EQ(h.sink_->request_retries(), 0u);
}

TEST(RequestTimeout, TimerCancelledOnArrival) {
  // After the item arrives, no spurious retry fires later.
  ProtoConfig cfg = ProtoHarness::default_proto();
  cfg.request_timeout_s = 2.0;
  ProtoHarness h(ProtocolKind::kTs, 2, 50.0, cfg);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(60.0);
  EXPECT_EQ(h.sink_->request_retries(), 0u);
  EXPECT_EQ(h.uplink_->requests(), 1u);
}

}  // namespace
}  // namespace wdc
