#include <gtest/gtest.h>

#include "harness.hpp"
#include "mac/broadcast_mac.hpp"

namespace wdc {
namespace {

ProtoConfig bs_cfg(unsigned levels = 4) {
  ProtoConfig cfg = ProtoHarness::default_proto();  // L = 10
  cfg.bs_levels = levels;                           // windows 10,20,40,80
  return cfg;
}

TEST(BsSemantics, BasicHitAndInvalidateLikeTs) {
  ProtoHarness h(ProtocolKind::kBs, 2, 50.0, bs_cfg());
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(30.5);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(BsSemantics, TrueUpdateInvalidates) {
  ProtoHarness h(ProtocolKind::kBs, 2, 50.0, bs_cfg());
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(25.0);
  h.db_->apply_update(5);
  h.sim_.run_until(26.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  EXPECT_EQ(h.sink_->misses(), 2u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(BsSemantics, SurvivesSleepBeyondTsWindowWithinOldestWindow) {
  // Sleep ≈ 45 s: beyond TS's w·L = 30 but inside BS's oldest window (80 s).
  ProtoHarness h(ProtocolKind::kBs, 2, 50.0, bs_cfg());
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(15.0);
  h.set_awake(0, false);
  h.sim_.run_until(59.0);
  h.set_awake(0, true);
  h.sim_.run_until(61.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(75.0);
  EXPECT_EQ(h.sink_->cache_drops(), 0u);
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(BsSemantics, DropsBeyondOldestWindow) {
  ProtoHarness h(ProtocolKind::kBs, 2, 50.0, bs_cfg(3));  // oldest window 40 s
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(15.0);
  h.set_awake(0, false);
  h.sim_.run_until(65.0);  // gap ≈ 50 s > 40 s
  h.set_awake(0, true);
  h.sim_.run_until(71.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(85.0);
  EXPECT_GE(h.sink_->cache_drops(), 1u);
  EXPECT_EQ(h.sink_->hits(), 0u);
}

TEST(BsSemantics, GranularityOverInvalidates) {
  // Fetch and update land in the SAME dyadic interval: exact timestamps (TS)
  // would keep the copy (fetch follows the update); BS must drop it.
  ProtoHarness h(ProtocolKind::kBs, 2, 50.0, bs_cfg());
  h.sim_.run_until(12.0);
  h.db_->apply_update(5);  // update at t=12
  h.sim_.run_until(13.0);
  h.clients_[0]->on_query(5);   // decided at t=20 report; fetched ~20.1 (> update)
  h.sim_.run_until(25.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(55.0);
  // Reports at 30 and 40 quantise the t=12 update into intervals topping out at
  // 20 < fetch (~20.1): the copy survives (and the t=25 query hits). The t=50
  // report coarsens the interval to (10, 30]: top 30 exceeds the fetch time ⇒
  // conservatively invalidated although the copy contains the update — the
  // granularity over-invalidation TS's exact timestamps avoid.
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_GE(h.sink_->false_invalidations(), 1u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(BsSemantics, FixedReportCost) {
  ProtoHarness h(ProtocolKind::kBs, 2, 50.0, bs_cfg());
  h.sim_.run_until(15.0);
  const Bits one = h.mac_->stats(MsgKind::kInvalidationReport).bits;
  for (ItemId i = 0; i < 40; ++i) h.db_->apply_update(i);
  h.sim_.run_until(25.0);
  EXPECT_EQ(h.mac_->stats(MsgKind::kInvalidationReport).bits, 2 * one);
  // ≈ 2 bits per item: 100 items ⇒ 200 bits + header + boundary stamps.
  EXPECT_EQ(one, 128u + 4u * 32u + 200u);
}

}  // namespace
}  // namespace wdc
