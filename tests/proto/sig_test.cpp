#include <gtest/gtest.h>

#include "harness.hpp"

namespace wdc {
namespace {

ProtoConfig sig_cfg(double fp) {
  ProtoConfig cfg = ProtoHarness::default_proto();
  cfg.sig_fp_prob = fp;
  cfg.sig_window_mult = 10.0;  // signature window = 100 s
  return cfg;
}

TEST(SigSemantics, ZeroFpBehavesLikeTs) {
  ProtoHarness h(ProtocolKind::kSig, 2, 50.0, sig_cfg(0.0));
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(30.5);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_EQ(h.sink_->false_invalidations(), 0u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(SigSemantics, CertainFpInvalidatesEverything) {
  ProtoHarness h(ProtocolKind::kSig, 2, 50.0, sig_cfg(1.0));
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(30.5);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  // The cached entry is false-invalidated at every report ⇒ the repeat query
  // misses and refetches.
  EXPECT_EQ(h.sink_->hits(), 0u);
  EXPECT_EQ(h.sink_->misses(), 2u);
  EXPECT_GE(h.sink_->false_invalidations(), 1u);
}

TEST(SigSemantics, TrueUpdatesAlwaysDetected) {
  ProtoHarness h(ProtocolKind::kSig, 2, 50.0, sig_cfg(0.0));
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(25.0);
  h.db_->apply_update(5);
  h.sim_.run_until(26.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  EXPECT_EQ(h.sink_->misses(), 2u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(SigSemantics, SurvivesDisconnectionBeyondTsWindow) {
  // Sleep 35 s: longer than TS's w·L = 30 but within SIG's 100 s window.
  ProtoHarness h(ProtocolKind::kSig, 2, 50.0, sig_cfg(0.0));
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(15.0);
  h.set_awake(0, false);
  h.sim_.run_until(52.0);
  h.set_awake(0, true);
  h.sim_.run_until(61.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(75.0);
  EXPECT_EQ(h.sink_->cache_drops(), 0u);
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(SigSemantics, ReportCostIndependentOfUpdateCount) {
  ProtoHarness h(ProtocolKind::kSig, 2, 50.0, sig_cfg(0.0));
  h.sim_.run_until(15.0);
  const Bits after_one = h.mac_->stats(MsgKind::kInvalidationReport).bits;
  for (ItemId i = 0; i < 50; ++i) h.db_->apply_update(i);
  h.sim_.run_until(25.0);
  const Bits after_two = h.mac_->stats(MsgKind::kInvalidationReport).bits;
  EXPECT_EQ(after_two, 2 * after_one);  // same size despite 50 updates
}

}  // namespace
}  // namespace wdc
