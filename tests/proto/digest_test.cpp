#include <gtest/gtest.h>

#include "harness.hpp"
#include "proto/hyb.hpp"
#include "workload/traffic_gen.hpp"

namespace wdc {
namespace {

// PIG: piggyback digests on downlink frames. The harness drives downlink frames
// by calling server->on_downlink_frame() directly.

TEST(PigSemantics, DigestInvalidatesAndAnswersBetweenReports) {
  ProtoHarness h(ProtocolKind::kPig);  // reports at 10, 20, 30 …
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(12.0);   // item 5 cached around t=10
  h.db_->apply_update(5);   // t=12
  h.sim_.run_until(13.0);
  h.clients_[0]->on_query(5);  // pending; without PIG waits for the t=20 report
  h.sim_.run_until(14.0);
  h.server_->on_downlink_frame(TrafficFrame{1, 4000});  // digest rides along
  h.sim_.run_until(16.0);
  // The digest at ~14 lists item 5 ⇒ invalidated ⇒ the query was decided as a
  // miss *before* the t=20 report (item refetched by ~14.5).
  EXPECT_EQ(h.sink_->answered(), 2u);
  EXPECT_EQ(h.sink_->misses(), 2u);
  EXPECT_GE(h.sink_->digests_applied(), 1u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
  EXPECT_LT(h.sink_->miss_latency().min(), 3.0);
}

TEST(PigSemantics, DigestAnswersCleanHitEarly) {
  ProtoHarness h(ProtocolKind::kPig);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(12.0);  // cached
  h.clients_[0]->on_query(5);  // would wait until t=20
  h.sim_.run_until(13.0);
  h.server_->on_downlink_frame(TrafficFrame{1, 4000});
  h.sim_.run_until(15.0);
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_GE(h.sink_->digest_answers(), 1u);
  // Answered at the ~13.1 digest, not the t=20 report.
  EXPECT_LT(h.sink_->hit_latency().mean(), 2.0);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(PigSemantics, IncompleteDigestOnlyInvalidates) {
  ProtoConfig cfg = ProtoHarness::default_proto();
  cfg.pig_max_ids = 2;  // tiny capacity forces truncation
  ProtoHarness h(ProtocolKind::kPig, 2, 50.0, cfg);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(12.0);
  for (ItemId i = 20; i < 25; ++i) h.db_->apply_update(i);  // 5 updates > cap
  h.sim_.run_until(13.0);
  h.clients_[0]->on_query(5);
  const auto digests_before = h.sink_->digests_applied();
  h.sim_.run_until(14.0);
  h.server_->on_downlink_frame(TrafficFrame{1, 4000});
  h.sim_.run_until(18.0);
  // Digest incomplete ⇒ no consistency-point advance ⇒ query still pending.
  EXPECT_EQ(h.sink_->digests_applied(), digests_before);
  EXPECT_EQ(h.sink_->answered(), 1u);  // only the first (t=10) answer
  h.sim_.run_until(25.0);              // the t=20 report resolves it
  EXPECT_EQ(h.sink_->answered(), 2u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(PigSemantics, DigestRidesOnItemBroadcastsToo) {
  ProtoHarness h(ProtocolKind::kPig);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(13.0);      // item 5 cached by client 0 around t=10
  h.clients_[0]->on_query(5);  // pending; the next report is only at t=20
  h.sim_.run_until(14.0);
  // A request lands at the server (client 1, different item): the item
  // broadcast it triggers carries a digest that client 0 overhears.
  h.server_->on_request(1, 7);
  h.sim_.run_until(16.0);
  // Two digest-bearing item broadcasts so far: item 5 (t≈10.2) and item 7 (~14.2).
  EXPECT_EQ(h.server_->digest_frames(), 2u);
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_GE(h.sink_->digest_answers(), 1u);
  // Answered at the ~14.2 item broadcast, not the t=20 report.
  EXPECT_LT(h.sink_->hit_latency().mean(), 3.0);
}

TEST(HybSemantics, AdaptiveMCollapsesUnderDigestTraffic) {
  ProtoConfig cfg = ProtoHarness::default_proto();
  cfg.hyb_target_gap_s = 2.0;  // wants 5 points per interval
  ProtoHarness h(ProtocolKind::kHyb, 2, 50.0, cfg);
  // Interval 1 (10→20): no traffic ⇒ m adapts to needed minis (m > 1).
  h.sim_.run_until(20.5);
  const auto minis_no_traffic = h.server_->minis_sent();
  // Interval 2 (20→30): plenty of digest-bearing frames ⇒ the m chosen at the
  // t=30 full report collapses to 1.
  for (int i = 0; i < 10; ++i) {
    h.sim_.run_until(21.0 + i);
    h.server_->on_downlink_frame(TrafficFrame{1, 4000});
  }
  h.sim_.run_until(30.5);
  const auto* hyb = dynamic_cast<const ServerHyb*>(h.server_.get());
  ASSERT_NE(hyb, nullptr);
  EXPECT_EQ(hyb->current_m(), 1u);
  EXPECT_GT(minis_no_traffic, 0u);
  // Interval 4 (40→50): traffic gone ⇒ m grows back.
  h.sim_.run_until(50.5);
  EXPECT_GT(hyb->current_m(), 1u);
}

TEST(HybSemantics, MiniAndDigestBothWork) {
  ProtoHarness h(ProtocolKind::kHyb);
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(25.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(45.0);
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
  // Minis exist (no traffic ⇒ m > 1) and shorten the wait below the full-report
  // bound of ≈ 10 s.
  EXPECT_GT(h.server_->minis_sent(), 0u);
  EXPECT_LT(h.sink_->hit_latency().mean(), 6.0);
}

}  // namespace
}  // namespace wdc
