#include <gtest/gtest.h>

#include "harness.hpp"
#include "proto/cbl.hpp"

namespace wdc {
namespace {

ProtoConfig cbl_cfg(double lease_s = 60.0) {
  ProtoConfig cfg = ProtoHarness::default_proto();
  cfg.cbl_lease_s = lease_s;
  return cfg;
}

TEST(CblSemantics, LeasedReadAnswersInstantly) {
  ProtoHarness h(ProtocolKind::kCbl, 2, 50.0, cbl_cfg());
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(3.0);  // fetched + leased
  EXPECT_EQ(h.sink_->misses(), 1u);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(3.5);
  // Zero-wait: answered at the query instant.
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_DOUBLE_EQ(h.sink_->hit_latency().mean(), 0.0);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(CblSemantics, NoReportsEverBroadcast) {
  ProtoHarness h(ProtocolKind::kCbl, 2, 50.0, cbl_cfg());
  h.sim_.run_until(50.0);
  EXPECT_EQ(h.server_->reports_sent(), 0u);
}

TEST(CblSemantics, UpdateTriggersNoticeAndRevocation) {
  ProtoHarness h(ProtocolKind::kCbl, 2, 50.0, cbl_cfg());
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(3.0);
  auto* client = dynamic_cast<ClientCbl*>(h.clients_[0].get());
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->holds_lease(5));
  h.db_->apply_update(5);
  h.sim_.run_until(4.0);  // notice delivered
  auto* server = dynamic_cast<ServerCbl*>(h.server_.get());
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->notices_sent(), 1u);
  EXPECT_FALSE(client->holds_lease(5));
  // The revoked read refetches — and is never stale.
  h.clients_[0]->on_query(5);
  h.sim_.run_until(6.0);
  EXPECT_EQ(h.sink_->misses(), 2u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(CblSemantics, LeaseExpiryForcesRefetch) {
  ProtoHarness h(ProtocolKind::kCbl, 2, 50.0, cbl_cfg(5.0));  // 5 s leases
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(10.0);  // lease (granted ~1.1) long expired
  h.clients_[0]->on_query(5);
  h.sim_.run_until(12.0);
  EXPECT_EQ(h.sink_->misses(), 2u);
  EXPECT_EQ(h.sink_->hits(), 0u);
}

TEST(CblSemantics, SleepVoidsLeases) {
  ProtoHarness h(ProtocolKind::kCbl, 2, 50.0, cbl_cfg());
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(3.0);
  h.set_awake(0, false);
  h.sim_.run_until(4.0);
  h.set_awake(0, true);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(6.0);
  // No lease after the nap ⇒ refetch, even though nothing changed.
  EXPECT_EQ(h.sink_->misses(), 2u);
  EXPECT_EQ(h.sink_->stale_serves(), 0u);
}

TEST(CblSemantics, InFlightNoticeWindowProducesMeasurableStaleness) {
  // The callback promise has a hole: between an update committing and its
  // notice reaching the client, a leased read returns the old version. Force
  // the window open by queueing the notice behind a long transmission.
  ProtoHarness h(ProtocolKind::kCbl, 2, 50.0, cbl_cfg());
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.sim_.run_until(3.0);
  Message blocker;
  blocker.kind = MsgKind::kDownlinkData;
  blocker.bits = 200000;
  h.mac_->enqueue(std::move(blocker));
  h.db_->apply_update(5);      // notice enqueued behind the blocker
  h.clients_[0]->on_query(5);  // read during the in-flight window
  EXPECT_EQ(h.sink_->hits(), 1u);
  EXPECT_EQ(h.sink_->stale_serves(), 1u);  // the oracle catches it
}

TEST(CblSemantics, ServerLeaseTableTracksState) {
  ProtoHarness h(ProtocolKind::kCbl, 2, 50.0, cbl_cfg());
  auto* server = dynamic_cast<ServerCbl*>(h.server_.get());
  h.sim_.run_until(1.0);
  h.clients_[0]->on_query(5);
  h.clients_[1]->on_query(7);
  h.sim_.run_until(3.0);
  EXPECT_EQ(server->outstanding_leases(), 2u);
  EXPECT_EQ(server->peak_leases(), 2u);
  h.db_->apply_update(5);  // revokes client 0's lease
  h.sim_.run_until(4.0);
  EXPECT_EQ(server->outstanding_leases(), 1u);
}

}  // namespace
}  // namespace wdc
