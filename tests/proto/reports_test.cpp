#include "proto/reports.hpp"

#include <gtest/gtest.h>

namespace wdc {
namespace {

ProtoConfig sizes() {
  ProtoConfig cfg;
  cfg.report_header_bits = 128;
  cfg.id_bits = 32;
  cfg.ts_bits = 32;
  cfg.sig_bits_per_item = 8;
  return cfg;
}

TEST(ReportSizes, FullReportScalesWithEntries) {
  FullReport r;
  EXPECT_EQ(r.wire_bits(sizes()), 128u);
  r.updates = {{1, 1.0}, {2, 2.0}, {3, 3.0}};
  EXPECT_EQ(r.wire_bits(sizes()), 128u + 3u * 64u);
}

TEST(ReportSizes, MiniReportUsesBareIds) {
  MiniReport r;
  r.updated = {1, 2, 3, 4};
  EXPECT_EQ(r.wire_bits(sizes()), 128u + 4u * 32u);
}

TEST(ReportSizes, MiniSmallerThanFullForSameCount) {
  FullReport f;
  MiniReport m;
  for (ItemId i = 0; i < 10; ++i) {
    f.updates.emplace_back(i, 1.0);
    m.updated.push_back(i);
  }
  EXPECT_LT(m.wire_bits(sizes()), f.wire_bits(sizes()));
}

TEST(ReportSizes, SigReportIsFixedSize) {
  SigReport r;
  const Bits empty = r.wire_bits(sizes(), 1000);
  r.updated = std::vector<ItemId>(500, 1);
  EXPECT_EQ(r.wire_bits(sizes(), 1000), empty);  // truth set rides free
  EXPECT_EQ(empty, 128u + 1000u * 8u);
}

TEST(ReportSizes, DigestScalesWithIds) {
  PiggyDigest d;
  EXPECT_EQ(d.wire_bits(sizes()), 48u);
  d.updated = {1, 2};
  EXPECT_EQ(d.wire_bits(sizes()), 48u + 64u);
}

TEST(ReportSizes, DigestMuchSmallerThanSigReport) {
  PiggyDigest d;
  d.updated = std::vector<ItemId>(32, 1);
  SigReport s;
  EXPECT_LT(d.wire_bits(sizes()), s.wire_bits(sizes(), 1000) / 4);
}

}  // namespace
}  // namespace wdc
