/// Schedule misuse is loud, never silent: structural nonsense throws from
/// validate()/FaultConfig::validate(), and lifecycle misuse (re-arming a
/// schedule after the simulation started, double-starting the injector)
/// trips WDC_CHECKs — a skipped scripted event must never just not happen.

#include <gtest/gtest.h>

#include <stdexcept>

#include "faults/fault_injector.hpp"
#include "faults/fault_schedule.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace wdc {
namespace {

FaultScheduleEvent outage(double t0, double t1) {
  FaultScheduleEvent e;
  e.kind = FaultScheduleKind::kOutage;
  e.t0 = t0;
  e.t1 = t1;
  return e;
}

FaultScheduleEvent disconnect(ClientId c, double t0, double t1) {
  FaultScheduleEvent e;
  e.kind = FaultScheduleKind::kDisconnect;
  e.client = c;
  e.t0 = t0;
  e.t1 = t1;
  return e;
}

TEST(ScheduleMisuse, EventBeforeTimeZeroThrows) {
  FaultSchedule s;
  s.events.push_back(outage(-0.5, 2.0));
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ScheduleMisuse, OverlappingOutageWindowsThrow) {
  FaultSchedule s;
  s.events.push_back(outage(10.0, 30.0));
  s.events.push_back(outage(20.0, 40.0));  // starts inside the first
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ScheduleMisuse, OverlappingCrashWindowsThrow) {
  FaultSchedule s;
  FaultScheduleEvent a = outage(10.0, 30.0);
  a.kind = FaultScheduleKind::kServerCrash;
  FaultScheduleEvent b = outage(25.0, 40.0);
  b.kind = FaultScheduleKind::kServerCrash;
  s.events.push_back(a);
  s.events.push_back(b);
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ScheduleMisuse, OverlappingDisconnectsSameClientThrow) {
  FaultSchedule s;
  s.events.push_back(disconnect(3, 10.0, 30.0));
  s.events.push_back(disconnect(3, 20.0, 40.0));
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ScheduleMisuse, OverlappingDisconnectsDifferentClientsAreFine) {
  FaultSchedule s;
  s.events.push_back(disconnect(3, 10.0, 30.0));
  s.events.push_back(disconnect(4, 20.0, 40.0));
  EXPECT_NO_THROW(s.validate());
}

TEST(ScheduleMisuse, ScriptedDisconnectsExcludeRandomChurn) {
  FaultConfig f;
  f.churn_rate = 0.01;
  f.schedule.events.push_back(disconnect(0, 10.0, 20.0));
  EXPECT_THROW(f.validate(), std::invalid_argument);
  // Either axis alone is fine.
  f.schedule.events.clear();
  EXPECT_NO_THROW(f.validate());
  f.churn_rate = 0.0;
  f.schedule.events.push_back(disconnect(0, 10.0, 20.0));
  EXPECT_NO_THROW(f.validate());
}

#if WDC_FAULTS_ENABLED

using ScheduleMisuseDeathTest = ::testing::Test;

TEST(ScheduleMisuseDeathTest, LoadScheduleAfterStartTrips) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        Simulator sim;
        FaultConfig cfg;
        cfg.enabled = true;
        FaultInjector inj(sim, cfg, /*num_clients=*/4, Rng(7));
        inj.start();
        FaultSchedule late;
        late.events.push_back(outage(1.0, 2.0));
        inj.load_schedule(late);
      },
      "replayed after simulation start");
#endif
}

TEST(ScheduleMisuseDeathTest, DoubleStartTrips) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        Simulator sim;
        FaultConfig cfg;
        cfg.enabled = true;
        FaultInjector inj(sim, cfg, /*num_clients=*/4, Rng(7));
        inj.start();
        inj.start();
      },
      "start\\(\\) called twice");
#endif
}

#endif  // WDC_FAULTS_ENABLED

}  // namespace
}  // namespace wdc
