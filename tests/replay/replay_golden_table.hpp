#ifndef WDC_TESTS_REPLAY_REPLAY_GOLDEN_TABLE_HPP
#define WDC_TESTS_REPLAY_REPLAY_GOLDEN_TABLE_HPP

/// Pinned per-protocol metric digests for the checked-in incident fixtures
/// (tests/replay/fixtures/*.wdcsched) replayed at the shared golden operating
/// point (tests/engine/golden_table.hpp). Because a schedule replay consumes
/// no randomness, these digests are exactly as stable as kGolden — any drift
/// means the incident no longer reproduces bit-identically.
///
/// To re-pin after an INTENTIONAL behaviour change, run replay_tests with
/// WDC_PRINT_REPLAY=1 and paste the printed tables over the arrays below
/// (same contract as WDC_PRINT_GOLDEN for kGolden).

#include <cstdint>

#include "golden_table.hpp"

namespace wdc {

/// fixtures/blackout.wdcsched at golden_scenario(p). Pinned 2026-08-08.
/// kTs == kLair is genuine, not a collision: the blackout's churn window
/// changes the one report tick where LAIR would have deferred, so LAIR
/// degenerates to TS bit-for-bit under this incident (0 deferrals).
constexpr GoldenEntry kReplayBlackout[] = {
    {ProtocolKind::kTs, 0x478cf75c4328c9c4ull},
    {ProtocolKind::kAt, 0x903fb23c965baa5aull},
    {ProtocolKind::kSig, 0x8ede9baf37d8772dull},
    {ProtocolKind::kUir, 0x54e97ca71f4d6a0cull},
    {ProtocolKind::kLair, 0x478cf75c4328c9c4ull},
    {ProtocolKind::kPig, 0xe42442727698ebc8ull},
    {ProtocolKind::kHyb, 0xe3edd172766a9c55ull},
    {ProtocolKind::kNc, 0xe77ae560b5bdcc03ull},
    {ProtocolKind::kPer, 0x969b86c9afd32284ull},
    {ProtocolKind::kBs, 0x0a38639c3d11f608ull},
    {ProtocolKind::kCbl, 0xf3609bcee998e0b4ull},
};

/// fixtures/server_crash.wdcsched at golden_scenario(p). Pinned 2026-08-08.
constexpr GoldenEntry kReplayServerCrash[] = {
    {ProtocolKind::kTs, 0x96d5a0ad77f9c5ecull},
    {ProtocolKind::kAt, 0xfd9b29336bdb22dfull},
    {ProtocolKind::kSig, 0x75b3d245115a62c8ull},
    {ProtocolKind::kUir, 0x206f0dff13eb56c1ull},
    {ProtocolKind::kLair, 0x5f0e80999f586dc0ull},
    {ProtocolKind::kPig, 0xd5b5ed83eb072b4aull},
    {ProtocolKind::kHyb, 0x3337a20b2418baefull},
    {ProtocolKind::kNc, 0x7e07e4dfc41cdfceull},
    {ProtocolKind::kPer, 0x223e9381db53f019ull},
    {ProtocolKind::kBs, 0x2b7135ef98dd0c11ull},
    {ProtocolKind::kCbl, 0x79a0d1763c8e1720ull},
};

static_assert(sizeof(kReplayBlackout) / sizeof(kReplayBlackout[0]) ==
                  sizeof(kGolden) / sizeof(kGolden[0]),
              "replay tables must cover every protocol and baseline");
static_assert(sizeof(kReplayServerCrash) / sizeof(kReplayServerCrash[0]) ==
                  sizeof(kGolden) / sizeof(kGolden[0]),
              "replay tables must cover every protocol and baseline");

}  // namespace wdc

#endif  // WDC_TESTS_REPLAY_REPLAY_GOLDEN_TABLE_HPP
