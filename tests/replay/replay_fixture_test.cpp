/// Incident-replay regression tier (ctest label `replay`): the checked-in
/// incident fixtures (fixtures/*.wdcsched) replayed across every protocol at
/// the shared golden operating point. A schedule replay consumes no
/// randomness, so each (fixture, protocol) digest is pinned exactly like the
/// golden tier — plus the invariants every incident must uphold:
///
///  * zero stale reads outside CBL (faults slow queries, never lie to them);
///  * the corruption canary: every byzantine frame the codec accepted is
///    counted, and the expectation is ZERO (the checksum catches 3-bit
///    damage — an acceptance here is a codec regression, not bad luck);
///  * recovery accounting closes (every crash recovers, every rejoin is
///    preceded by a disconnect, no scripted point goes unmatched);
///  * the replay is live: its digest differs from the fault-free pin.
///
/// Under -DWDC_FAULTS=OFF the tier skips (replay_inertness_test.cpp carries
/// the stripped build's proof obligation instead).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/digest.hpp"
#include "engine/simulation.hpp"
#include "faults/fault_injector.hpp"
#include "replay_golden_table.hpp"

namespace wdc {
namespace {

std::string fixture_path(const char* name) {
  return std::string(WDC_REPLAY_FIXTURE_DIR) + "/" + name;
}

#if WDC_FAULTS_ENABLED

struct ReplayCase {
  const char* fixture;     ///< file under fixtures/
  const char* table_name;  ///< identifier to print for WDC_PRINT_REPLAY
  const GoldenEntry* table;
  GoldenEntry expect;  ///< this protocol's pinned entry
};

class ReplayFixture : public ::testing::TestWithParam<ReplayCase> {};

Metrics run_fixture(const ReplayCase& rc) {
  Scenario s = golden_scenario(rc.expect.protocol);
  s.faults.enabled = true;
  s.faults.schedule = FaultSchedule::load_file(fixture_path(rc.fixture));
  return run_scenario(s);
}

TEST_P(ReplayFixture, DigestIsPinnedAndInvariantsHold) {
  const ReplayCase& rc = GetParam();
  const Metrics m = run_fixture(rc);
  const std::uint64_t actual = metrics_digest(m);
  if (std::getenv("WDC_PRINT_REPLAY") != nullptr) {
    std::printf("%s: {ProtocolKind::%s, 0x%016llxull},\n", rc.table_name,
                enum_name(rc.expect.protocol),
                static_cast<unsigned long long>(actual));
  }
  EXPECT_EQ(actual, rc.expect.digest)
      << rc.fixture << " no longer replays bit-identically for "
      << to_string(rc.expect.protocol)
      << " (re-pin with WDC_PRINT_REPLAY=1 ONLY for intentional changes)";

  // The incident must actually bite: a replay whose digest equals the
  // fault-free pin means the schedule was silently ignored.
  std::uint64_t clean = 0;
  for (const GoldenEntry& g : kGolden)
    if (g.protocol == rc.expect.protocol) clean = g.digest;
  EXPECT_NE(actual, clean)
      << rc.fixture << " left " << to_string(rc.expect.protocol)
      << " bit-identical to the fault-free run — replay hooks are dead";

  // Faults may slow queries arbitrarily but never lie to them.
  if (rc.expect.protocol != ProtocolKind::kCbl) {
    EXPECT_EQ(m.stale_serves, 0u);
  }

  // Corruption canary: the codec must catch every damaged frame.
  EXPECT_EQ(m.fault_corrupt_accepted, 0u)
      << "a byzantine report frame decoded successfully — checksum regression";

  // Recovery accounting closes.
  EXPECT_EQ(m.server_recoveries, m.server_crashes);
  EXPECT_LE(m.recoveries, m.churn_rejoins);
  EXPECT_LE(m.churn_rejoins, m.churn_events);

  // Window-only fixtures: no scripted point can go unmatched.
  EXPECT_EQ(m.schedule_misses, 0u);
}

TEST(ReplayFixtureDeterminism, SameScheduleSameBits) {
  ReplayCase rc{"blackout.wdcsched", "blackout", kReplayBlackout,
                kReplayBlackout[0]};
  const Metrics a = run_fixture(rc);
  const Metrics b = run_fixture(rc);
  EXPECT_EQ(metrics_digest(a), metrics_digest(b));
  EXPECT_EQ(a.fault_ir_drops, b.fault_ir_drops);
  EXPECT_EQ(a.fault_corrupt_rejected, b.fault_corrupt_rejected);
  EXPECT_EQ(a.churn_events, b.churn_events);
}

TEST(ReplayFixtureCrash, ServerCrashSuppressesAndRecovers) {
  Scenario s = golden_scenario(ProtocolKind::kTs);
  s.faults.enabled = true;
  s.faults.schedule =
      FaultSchedule::load_file(fixture_path("server_crash.wdcsched"));
  const Metrics m = run_scenario(s);
  EXPECT_EQ(m.server_crashes, 1u);
  EXPECT_EQ(m.server_recoveries, 1u);
  // 50 s down at L = 20 s: at least two periodic reports were swallowed.
  EXPECT_GE(m.crash_suppressed, 2u);
  EXPECT_EQ(m.stale_serves, 0u);
}

std::vector<ReplayCase> all_cases() {
  std::vector<ReplayCase> cases;
  constexpr std::size_t n = sizeof(kGolden) / sizeof(kGolden[0]);
  for (std::size_t i = 0; i < n; ++i) {
    cases.push_back({"blackout.wdcsched", "blackout", kReplayBlackout,
                     kReplayBlackout[i]});
    cases.push_back({"server_crash.wdcsched", "server_crash",
                     kReplayServerCrash, kReplayServerCrash[i]});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllFixturesAllProtocols, ReplayFixture, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<ReplayCase>& tpi) {
      return std::string(tpi.param.table_name) + "_" +
             to_string(tpi.param.expect.protocol);
    });

#else  // !WDC_FAULTS_ENABLED

TEST(ReplayFixture, SkippedWhenFaultLayerCompiledOut) {
  GTEST_SKIP() << "built with -DWDC_FAULTS=OFF";
}

#endif  // WDC_FAULTS_ENABLED

}  // namespace
}  // namespace wdc
