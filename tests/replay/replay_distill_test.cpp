/// Record → distill → replay: the end-to-end contract of the incident-replay
/// subsystem. A randomized-fault run is traced; FaultSchedule::distill turns
/// the observed fault events into a schedule; replaying that schedule with
/// every random axis OFF must reproduce the run bit-identically — the same
/// metrics digest and the exact same fault event sequence, with zero
/// scripted points left unmatched. This is what makes a one-off incident
/// (observed once, in a trace) a permanent regression test.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/digest.hpp"
#include "engine/simulation.hpp"
#include "faults/fault_injector.hpp"
#include "golden_table.hpp"
#include "trace/trace_io.hpp"

namespace wdc {
namespace {

#if WDC_FAULTS_ENABLED

bool is_fault_kind(std::uint8_t kind) {
  return kind >= static_cast<std::uint8_t>(TraceEventKind::kFaultDownlinkDrop);
}

/// The fault-layer subsequence of a trace, bitwise-comparable.
std::vector<TraceEvent> fault_events(const std::string& path) {
  TraceFile tf;
  std::string error;
  EXPECT_TRUE(read_trace_file(path, &tf, &error)) << error;
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : tf.events)
    if (is_fault_kind(ev.kind)) out.push_back(ev);
  return out;
}

bool bitwise_equal(const TraceEvent& a, const TraceEvent& b) {
  return a.t == b.t && a.a == b.a && a.b == b.b && a.c == b.c && a.d == b.d &&
         a.item == b.item && a.client == b.client && a.kind == b.kind &&
         a.flags == b.flags;
}

TEST(ReplayDistill, RandomizedRunReplaysBitIdentically) {
  const std::string dir = ::testing::TempDir();
  const std::string recorded_wdct = dir + "wdc_distill_recorded.wdct";
  const std::string replayed_wdct = dir + "wdc_distill_replayed.wdct";
  const std::string sched_path = dir + "wdc_distill.wdcsched";

  // --- record: random loss + uplink drops + churn, plus a scripted
  // byzantine window so the distilled schedule carries corruption points.
  Scenario rec = golden_scenario(ProtocolKind::kTs);
  rec.faults.enabled = true;
  rec.faults.ir_loss = 0.3;
  rec.faults.bcast_loss = 0.1;
  rec.faults.uplink_drop = 0.2;
  rec.faults.churn_rate = 0.005;
  rec.faults.churn_mean_down_s = 20.0;
  rec.faults.rejoin = RejoinPolicy::kSuspect;
  rec.faults.schedule = FaultSchedule::parse(
      "wdcsched v1 1\n"
      "corrupt client=all t0=60 t1=200 rate=0.4\n");
  rec.trace.enabled = true;
  rec.trace.file = recorded_wdct;
  const Metrics recorded = run_scenario(rec);
  if (recorded.trace_events == 0) GTEST_SKIP() << "tracing compiled out";

  // The run must have exercised every distillable axis, or the round trip
  // proves nothing.
  ASSERT_GT(recorded.fault_ir_drops + recorded.fault_bcast_drops, 0u);
  ASSERT_GT(recorded.fault_uplink_drops, 0u);
  ASSERT_GT(recorded.churn_events, 0u);
  ASSERT_GT(recorded.fault_corrupt_rejected, 0u);

  // --- distill, with a save/load round trip on the way.
  TraceFile tf;
  std::string error;
  ASSERT_TRUE(read_trace_file(recorded_wdct, &tf, &error)) << error;
  const FaultSchedule distilled =
      FaultSchedule::distill(tf.events, tf.header.sim_time_s);
  ASSERT_FALSE(distilled.empty());
  distilled.save_file(sched_path);
  const FaultSchedule reloaded = FaultSchedule::load_file(sched_path);
  EXPECT_EQ(distilled, reloaded)
      << "distilled schedule does not survive its own file format";

  // --- replay: every random axis off, the schedule alone drives the faults.
  Scenario rep = golden_scenario(ProtocolKind::kTs);
  rep.faults.enabled = true;
  rep.faults.rejoin = RejoinPolicy::kSuspect;
  rep.faults.schedule = reloaded;
  rep.trace.enabled = true;
  rep.trace.file = replayed_wdct;
  const Metrics replayed = run_scenario(rep);

  EXPECT_EQ(metrics_digest(recorded), metrics_digest(replayed))
      << "replaying the distilled schedule diverged from the recorded run";
  EXPECT_EQ(recorded.fault_ir_drops, replayed.fault_ir_drops);
  EXPECT_EQ(recorded.fault_bcast_drops, replayed.fault_bcast_drops);
  EXPECT_EQ(recorded.fault_uplink_drops, replayed.fault_uplink_drops);
  EXPECT_EQ(recorded.churn_events, replayed.churn_events);
  EXPECT_EQ(recorded.churn_rejoins, replayed.churn_rejoins);
  EXPECT_EQ(recorded.fault_corrupt_rejected, replayed.fault_corrupt_rejected);
  EXPECT_EQ(recorded.fault_corrupt_accepted, replayed.fault_corrupt_accepted);
  EXPECT_EQ(replayed.schedule_misses, 0u)
      << "a distilled point event never found its hook call";

  // --- the fault event sequences must match bit-for-bit.
  const std::vector<TraceEvent> a = fault_events(recorded_wdct);
  const std::vector<TraceEvent> b = fault_events(replayed_wdct);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(a[i], b[i]))
        << "fault event " << i << " diverged: t=" << a[i].t << " vs " << b[i].t
        << ", kind=" << static_cast<int>(a[i].kind) << " vs "
        << static_cast<int>(b[i].kind);
  }
}

#else  // !WDC_FAULTS_ENABLED

TEST(ReplayDistill, SkippedWhenFaultLayerCompiledOut) {
  GTEST_SKIP() << "built with -DWDC_FAULTS=OFF";
}

#endif  // WDC_FAULTS_ENABLED

}  // namespace
}  // namespace wdc
