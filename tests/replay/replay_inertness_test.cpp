/// Three-way digest-inertness proof for the schedule layer, against the SAME
/// pinned table the golden tier uses (tests/engine/golden_table.hpp):
///
///  1. schedule loaded but the master switch off — every protocol digests
///     bit-identically to the fault-free pin (runs in ALL builds, including
///     -DWDC_FAULTS=OFF: FaultSchedule is compiled unconditionally, so the
///     stripped build parses the same file and must also match the pin —
///     that run IS the compiled-out leg of the differential);
///  2. enabled with an explicitly empty schedule — still bit-identical
///     (indexing zero events arms nothing and draws nothing);
///  3. enabled with a real schedule — the digest MUST move (the live-hook
///     leg lives in replay_fixture_test.cpp's DigestIsPinned EXPECT_NE).
///
/// Together with the fault tier's existing proofs this pins the contract:
/// disabled-with-schedule == enabled-empty == compiled-out == kGolden.

#include <gtest/gtest.h>

#include <string>

#include "engine/digest.hpp"
#include "engine/simulation.hpp"
#include "faults/fault_injector.hpp"
#include "replay_golden_table.hpp"

namespace wdc {
namespace {

std::string fixture_path(const char* name) {
  return std::string(WDC_REPLAY_FIXTURE_DIR) + "/" + name;
}

class ReplayInertness : public ::testing::TestWithParam<GoldenEntry> {};

TEST_P(ReplayInertness, DisabledLayerIgnoresLoadedSchedule) {
  const GoldenEntry& expect = GetParam();
  Scenario s = golden_scenario(expect.protocol);
  s.faults.schedule =
      FaultSchedule::load_file(fixture_path("blackout.wdcsched"));
  s.faults.enabled = false;  // the master switch is the ONLY gate
  const Metrics m = run_scenario(s);
  EXPECT_EQ(metrics_digest(m), expect.digest)
      << to_string(expect.protocol)
      << ": a loaded-but-disabled schedule perturbed the simulation";
  EXPECT_EQ(m.fault_ir_drops + m.fault_bcast_drops + m.fault_uplink_drops +
                m.churn_events + m.fault_corrupt_rejected +
                m.fault_corrupt_accepted + m.server_crashes +
                m.crash_suppressed + m.schedule_misses,
            0u);
}

#if WDC_FAULTS_ENABLED

TEST_P(ReplayInertness, EnabledWithEmptyScheduleIsStillPinned) {
  const GoldenEntry& expect = GetParam();
  Scenario s = golden_scenario(expect.protocol);
  s.faults.enabled = true;
  s.faults.backoff_mult = 1.0;
  ASSERT_TRUE(s.faults.schedule.empty());
  const Metrics m = run_scenario(s);
  EXPECT_EQ(metrics_digest(m), expect.digest)
      << to_string(expect.protocol)
      << ": an enabled injector with an empty schedule perturbed the "
         "simulation";
}

#endif  // WDC_FAULTS_ENABLED

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndBaselines, ReplayInertness, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenEntry>& tpi) {
      return to_string(tpi.param.protocol);
    });

}  // namespace
}  // namespace wdc
