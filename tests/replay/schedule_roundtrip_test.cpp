/// FaultSchedule file-format property tests: randomized parse → serialize →
/// parse identity (the %.17g contract means bit-exact doubles), plus
/// fuzz-style rejection of malformed inputs — truncation, out-of-order
/// timestamps, unknown event kinds, non-finite rates, duplicate/missing/
/// unknown keys, bad headers. The format is compiled unconditionally, so
/// this file runs in every build configuration.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "faults/fault_schedule.hpp"
#include "util/rng.hpp"

namespace wdc {
namespace {

/// A random valid schedule: kinds mixed freely, every window disjoint from
/// its predecessor (sufficient for the per-kind overlap rules), times drawn
/// continuously so round-tripping exercises full double precision.
FaultSchedule random_schedule(Rng& rng, std::size_t n_events) {
  FaultSchedule sched;
  double cursor = 0.0;
  for (std::size_t i = 0; i < n_events; ++i) {
    FaultScheduleEvent e;
    const std::uint64_t kind = rng.uniform_int(8);
    e.kind = static_cast<FaultScheduleKind>(kind);
    e.t0 = cursor + rng.uniform(0.001, 5.0);
    if (e.is_window()) {
      e.t1 = e.t0 + rng.uniform(0.001, 30.0);
      cursor = e.t1;
    } else {
      e.t1 = e.t0;
      cursor = e.t0;
    }
    switch (e.kind) {
      case FaultScheduleKind::kLossWindow:
      case FaultScheduleKind::kCorruptWindow:
        e.client = rng.bernoulli(0.3)
                       ? kInvalidClient
                       : static_cast<ClientId>(rng.uniform_int(16));
        e.rate = rng.uniform(0.0, 1.0);
        break;
      case FaultScheduleKind::kOutage:
      case FaultScheduleKind::kServerCrash:
        e.client = kInvalidClient;
        e.rate = 1.0;
        break;
      case FaultScheduleKind::kDisconnect:
      case FaultScheduleKind::kDropPoint:
      case FaultScheduleKind::kUplinkDropPoint:
      case FaultScheduleKind::kCorruptPoint:
        e.client = static_cast<ClientId>(rng.uniform_int(16));
        e.rate = 1.0;
        break;
    }
    if (e.kind == FaultScheduleKind::kLossWindow ||
        e.kind == FaultScheduleKind::kDropPoint) {
      const std::uint64_t m = rng.uniform_int(
          e.kind == FaultScheduleKind::kLossWindow ? 3 : 2);
      e.msgs = static_cast<FaultMsgClass>(m);
    }
    // Same-instant uplink-send ordinal; 0 stays implicit in the text form.
    if (e.kind == FaultScheduleKind::kUplinkDropPoint)
      e.ordinal = static_cast<std::uint32_t>(rng.uniform_int(4));
    sched.events.push_back(e);
  }
  sched.validate();
  return sched;
}

TEST(ScheduleRoundTrip, RandomSchedulesSurviveSerializeParse) {
  Rng rng(0x5c4edu);
  for (unsigned round = 0; round < 50; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const FaultSchedule original =
        random_schedule(rng, 1 + rng.uniform_int(40));
    const std::string text = original.serialize();
    const FaultSchedule reparsed = FaultSchedule::parse(text);
    EXPECT_EQ(original, reparsed) << text;
    // Canonical form is a fixed point: serialize ∘ parse ∘ serialize = id.
    EXPECT_EQ(text, reparsed.serialize());
  }
}

TEST(ScheduleRoundTrip, EmptyScheduleRoundTrips) {
  const FaultSchedule empty;
  const FaultSchedule reparsed = FaultSchedule::parse(empty.serialize());
  EXPECT_TRUE(reparsed.empty());
  EXPECT_EQ(empty, reparsed);
}

TEST(ScheduleRoundTrip, CommentsAndBlankLinesAreIgnored) {
  const FaultSchedule parsed = FaultSchedule::parse(
      "# leading comment\n"
      "\n"
      "wdcsched v1 2\n"
      "  # indented comment between events\n"
      "loss client=all t0=1 t1=2 rate=0.5 msgs=report\n"
      "\n"
      "outage t0=3 t1=4\n"
      "# trailing comment\n");
  ASSERT_EQ(parsed.events.size(), 2u);
  EXPECT_EQ(parsed.events[0].kind, FaultScheduleKind::kLossWindow);
  EXPECT_EQ(parsed.events[1].kind, FaultScheduleKind::kOutage);
}

// ---------------------------------------------------------------- rejection --

void expect_rejected(const std::string& text, const char* why) {
  EXPECT_THROW(FaultSchedule::parse(text), std::invalid_argument) << why;
}

TEST(ScheduleFuzz, TruncationIsRejected) {
  // Header declares 2 events, only 1 follows.
  expect_rejected(
      "wdcsched v1 2\n"
      "outage t0=1 t1=2\n",
      "truncated file");
  // More events than declared.
  expect_rejected(
      "wdcsched v1 1\n"
      "outage t0=1 t1=2\n"
      "outage t0=3 t1=4\n",
      "over-count");
}

TEST(ScheduleFuzz, BadHeadersAreRejected) {
  expect_rejected("", "empty input");
  expect_rejected("outage t0=1 t1=2\n", "missing header");
  expect_rejected("wdcsched v2 1\noutage t0=1 t1=2\n", "unsupported version");
  expect_rejected("wdcsched v1 many\noutage t0=1 t1=2\n", "garbage count");
}

TEST(ScheduleFuzz, OutOfOrderTimestampsAreRejected) {
  expect_rejected(
      "wdcsched v1 2\n"
      "outage t0=10 t1=12\n"
      "loss client=all t0=5 t1=6 rate=0.5 msgs=all\n",
      "events out of t0 order");
}

TEST(ScheduleFuzz, UnknownEventKindIsRejected) {
  expect_rejected("wdcsched v1 1\nmeteor t0=1 t1=2\n", "unknown kind");
}

TEST(ScheduleFuzz, NonFiniteAndGarbageNumbersAreRejected) {
  expect_rejected(
      "wdcsched v1 1\nloss client=all t0=1 t1=2 rate=nan msgs=all\n",
      "NaN rate");
  expect_rejected(
      "wdcsched v1 1\nloss client=all t0=inf t1=2 rate=0.5 msgs=all\n",
      "infinite t0");
  expect_rejected(
      "wdcsched v1 1\nloss client=all t0=1x t1=2 rate=0.5 msgs=all\n",
      "trailing garbage in a number");
}

TEST(ScheduleFuzz, KeyErrorsAreRejected) {
  expect_rejected("wdcsched v1 1\noutage t0=1\n", "missing t1");
  expect_rejected("wdcsched v1 1\noutage t0=1 t1=2 t1=3\n", "duplicate key");
  expect_rejected("wdcsched v1 1\noutage t0=1 t1=2 color=red\n",
                  "unknown key");
  expect_rejected(
      "wdcsched v1 1\nloss client=all t0=1 t1=2 rate=0.5 msgs=carrier\n",
      "unknown msgs class");
  expect_rejected("wdcsched v1 1\ndisconnect client=all t0=1 t1=2\n",
                  "disconnect needs a concrete client");
}

TEST(ScheduleFuzz, OrdinalsRoundTripAndErrorsAreRejected) {
  const FaultSchedule parsed =
      FaultSchedule::parse("wdcsched v1 1\nupdrop client=2 t=1.5 n=3\n");
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.events[0].ordinal, 3u);
  EXPECT_EQ(parsed.serialize(),
            "wdcsched v1 1\nupdrop client=2 t=1.5 n=3\n");

  expect_rejected("wdcsched v1 1\ndrop client=2 t=1 msgs=data n=1\n",
                  "n on a non-updrop event");
  expect_rejected("wdcsched v1 1\ncorruptat client=2 t=1 n=1\n",
                  "n on a non-updrop event");
  expect_rejected("wdcsched v1 1\nupdrop client=2 t=1 n=-1\n", "negative n");
  expect_rejected("wdcsched v1 1\nupdrop client=2 t=1 n=two\n", "garbage n");
}

TEST(ScheduleFuzz, SemanticRangeErrorsAreRejected) {
  expect_rejected(
      "wdcsched v1 1\nloss client=all t0=1 t1=2 rate=1.5 msgs=all\n",
      "rate > 1");
  expect_rejected("wdcsched v1 1\noutage t0=5 t1=2\n", "t1 < t0");
  expect_rejected("wdcsched v1 1\noutage t0=-1 t1=2\n", "negative t0");
}

}  // namespace
}  // namespace wdc
