#include "engine/scenario.hpp"

#include <gtest/gtest.h>

namespace wdc {
namespace {

TEST(Scenario, DefaultsValidate) {
  Scenario s;
  EXPECT_NO_THROW(s.validate());
}

TEST(Scenario, FromConfigParsesKnobs) {
  Config c;
  c.set("protocol", "HYB");
  c.set("clients", "10");
  c.set("items", "200");
  c.set("update_rate", "2.5");
  c.set("ir_interval", "15");
  c.set("traffic_model", "pareto");
  c.set("fading", "fsmc");
  c.set("amc", "false");
  c.set("fixed_mcs", "3");
  c.set("query_model", "zipf");
  c.set("seed", "99");
  const Scenario s = Scenario::from_config(c);
  EXPECT_EQ(s.protocol, ProtocolKind::kHyb);
  EXPECT_EQ(s.num_clients, 10u);
  EXPECT_EQ(s.db.num_items, 200u);
  EXPECT_DOUBLE_EQ(s.db.update_rate, 2.5);
  EXPECT_DOUBLE_EQ(s.proto.ir_interval_s, 15.0);
  EXPECT_EQ(s.traffic.model, TrafficModel::kParetoBurst);
  EXPECT_EQ(s.fading.model, FadingModel::kFsmc);
  EXPECT_FALSE(s.mac.amc.adaptive);
  EXPECT_EQ(s.mac.amc.fixed_mcs, 3u);
  EXPECT_EQ(s.query.model, QueryModel::kZipf);
  EXPECT_EQ(s.seed, 99u);
}

TEST(Scenario, FromConfigMarksKeysUsed) {
  Config c;
  c.set("clients", "5");
  c.set("definitely_not_a_key", "1");
  (void)Scenario::from_config(c);
  const auto unused = c.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "definitely_not_a_key");
}

TEST(Scenario, ValidateRejectsNonsense) {
  {
    Scenario s;
    s.num_clients = 0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s;
    s.warmup_s = s.sim_time_s;
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s;
    s.proto.window_mult = 0.5;
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s;
    s.proto.cache_capacity = 0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s;
    s.protocol = ProtocolKind::kLair;
    s.proto.lair_window_s = 100.0;  // exceeds (w−1)·L
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
}

TEST(Scenario, LairWindowGuardOnlyForSlidingProtocols) {
  Scenario s;
  s.protocol = ProtocolKind::kTs;
  s.proto.lair_window_s = 100.0;  // irrelevant for TS
  EXPECT_NO_THROW(s.validate());
}

TEST(ProtocolNames, RoundTrip) {
  for (const auto k : kAllProtocols)
    EXPECT_EQ(protocol_from_string(to_string(k)), k);
  EXPECT_THROW(protocol_from_string("XYZ"), std::invalid_argument);
}

TEST(SnrAssignmentNames, RoundTrip) {
  EXPECT_EQ(snr_assignment_from_string("uniform"), SnrAssignment::kUniform);
  EXPECT_EQ(snr_assignment_from_string("pathloss"), SnrAssignment::kPathLoss);
  EXPECT_THROW(snr_assignment_from_string("x"), std::invalid_argument);
}

}  // namespace
}  // namespace wdc
