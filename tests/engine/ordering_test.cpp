#include <gtest/gtest.h>

#include "engine/replication.hpp"
#include "engine/simulation.hpp"

/// The qualitative results the paper's lineage establishes — who must beat whom,
/// and in which regime. These are the reproduction's "shape" assertions
/// (EXPERIMENTS.md): each runs a few replications and compares means with
/// generous margins so the test is about ordering, not noise.

namespace wdc {
namespace {

Scenario base(std::uint64_t seed = 2024) {
  Scenario s;
  s.seed = seed;
  s.num_clients = 20;
  s.db.num_items = 400;
  s.db.update_rate = 0.5;
  s.sim_time_s = 1500.0;
  s.warmup_s = 200.0;
  return s;
}

double mean_latency(Scenario s, ProtocolKind kind, unsigned reps = 3) {
  s.protocol = kind;
  const auto rs = run_replications(s, reps, 1);
  return mean_of(rs).mean_latency_s;
}

TEST(Ordering, UirBeatsTsOnLatency) {
  // Cao's headline result: mini reports cut the deferral wait by ≈ m.
  const Scenario s = base();
  const double ts = mean_latency(s, ProtocolKind::kTs);
  const double uir = mean_latency(s, ProtocolKind::kUir);
  EXPECT_LT(uir, 0.75 * ts);
}

TEST(Ordering, PigBeatsTsUnderDownlinkTraffic) {
  Scenario s = base();
  s.traffic.offered_bps = 30e3;  // busy downlink: digests everywhere
  const double ts = mean_latency(s, ProtocolKind::kTs);
  const double pig = mean_latency(s, ProtocolKind::kPig);
  EXPECT_LT(pig, 0.6 * ts);
}

TEST(Ordering, HybNeverWorseThanUir) {
  Scenario s = base();
  s.traffic.offered_bps = 20e3;
  const double uir = mean_latency(s, ProtocolKind::kUir);
  const double hyb = mean_latency(s, ProtocolKind::kHyb);
  EXPECT_LT(hyb, 1.15 * uir);
}

TEST(Ordering, AtFragileUnderSleep) {
  // One missed report costs AT its whole cache; TS's window forgives.
  Scenario s = base();
  s.sleep.sleep_ratio = 0.2;
  s.sleep.mean_sleep_s = 30.0;
  s.protocol = ProtocolKind::kAt;
  const Metrics at = mean_of(run_replications(s, 3, 1));
  s.protocol = ProtocolKind::kTs;
  const Metrics ts = mean_of(run_replications(s, 3, 1));
  EXPECT_GT(at.cache_drops, 2 * ts.cache_drops);
  EXPECT_LE(at.hit_ratio, ts.hit_ratio + 0.02);
}

TEST(Ordering, SigSurvivesLongSleepsThatKillTs) {
  // Sleeps longer than TS's w·L window but inside SIG's coverage.
  Scenario s = base();
  s.sleep.sleep_ratio = 0.3;
  s.sleep.mean_sleep_s = 120.0;  // >> w·L = 60
  s.proto.sig_window_mult = 20.0;
  // Isolate the coverage-window property; the false-invalidation cost is
  // exercised separately (SigSemantics.*, TAB-1).
  s.proto.sig_fp_prob = 0.0;
  s.protocol = ProtocolKind::kSig;
  const Metrics sig = mean_of(run_replications(s, 3, 1));
  s.protocol = ProtocolKind::kTs;
  const Metrics ts = mean_of(run_replications(s, 3, 1));
  EXPECT_LT(sig.cache_drops, ts.cache_drops);
  EXPECT_GT(sig.hit_ratio, ts.hit_ratio);
}

TEST(Ordering, SigPaysConstantOverhead) {
  // SIG report bits dwarf TS's under a light update load.
  Scenario s = base();
  s.db.update_rate = 0.1;
  s.protocol = ProtocolKind::kSig;
  const Metrics sig = mean_of(run_replications(s, 2, 1));
  s.protocol = ProtocolKind::kTs;
  const Metrics ts = mean_of(run_replications(s, 2, 1));
  EXPECT_GT(sig.report_bits, 5 * ts.report_bits);
}

TEST(Ordering, LairReducesReportLossOnFadedChannel) {
  // Slow fading + low SNR + worst-listener coverage over a small population:
  // sliding past deep fades must cut IR losses (the FIG-7 regime). With many
  // independent listeners the percentile reference is statistically flat and
  // sliding cannot help — which is itself asserted in FIG-7's fast-fading end.
  Scenario s = base();
  s.num_clients = 8;
  s.mac.broadcast_percentile = 0.0;
  s.mean_snr_db = 12.0;
  s.snr_spread_db = 4.0;
  s.fading.doppler_hz = 0.8;  // slow fades: deferral can outwait them
  s.proto.lair_window_s = 8.0;
  s.proto.lair_min_snr_db = 7.0;
  s.protocol = ProtocolKind::kLair;
  const Metrics lair = mean_of(run_replications(s, 4, 1));
  s.protocol = ProtocolKind::kTs;
  const Metrics ts = mean_of(run_replications(s, 4, 1));
  EXPECT_GT(lair.lair_deferred, 0u);
  EXPECT_LT(lair.report_loss_rate, 0.75 * ts.report_loss_rate);
}

TEST(Ordering, HitLatencyTracksHalfInterval) {
  // Classic analytic check: TS hit latency ≈ L/2 (+ small MAC delays).
  Scenario s = base();
  for (const double L : {10.0, 20.0, 40.0}) {
    s.proto.ir_interval_s = L;
    s.protocol = ProtocolKind::kTs;
    const Metrics m = run_scenario(s);
    EXPECT_NEAR(m.mean_hit_latency_s, L / 2.0, 0.25 * L) << "L=" << L;
  }
}

TEST(Ordering, UpdateRateDegradesHitRatioMonotonically) {
  Scenario s = base();
  s.protocol = ProtocolKind::kTs;
  double prev = 1.0;
  for (const double u : {0.05, 0.5, 5.0}) {
    s.db.update_rate = u;
    const Metrics m = run_scenario(s);
    EXPECT_LT(m.hit_ratio, prev + 0.03) << "update_rate=" << u;
    prev = m.hit_ratio;
  }
}

}  // namespace
}  // namespace wdc
