#include "engine/replication.hpp"

#include <gtest/gtest.h>

namespace wdc {
namespace {

Scenario tiny() {
  Scenario s;
  s.num_clients = 5;
  s.db.num_items = 100;
  s.sim_time_s = 300.0;
  s.warmup_s = 50.0;
  s.seed = 77;
  return s;
}

TEST(Replication, ZeroRepsIsEmpty) {
  EXPECT_TRUE(run_replications(tiny(), 0).empty());
}

TEST(Replication, ProducesRequestedCount) {
  const auto rs = run_replications(tiny(), 3, 1);
  EXPECT_EQ(rs.size(), 3u);
  for (const auto& m : rs) EXPECT_GT(m.answered, 0u);
}

TEST(Replication, SeedsAreDistinctPerReplication) {
  const auto rs = run_replications(tiny(), 3, 1);
  EXPECT_NE(rs[0].seed, rs[1].seed);
  EXPECT_NE(rs[1].seed, rs[2].seed);
  EXPECT_NE(rs[0].events, rs[1].events);
}

TEST(Replication, ThreadCountDoesNotChangeResults) {
  const auto a = run_replications(tiny(), 4, 1);
  const auto b = run_replications(tiny(), 4, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].events, b[i].events);
    EXPECT_DOUBLE_EQ(a[i].mean_latency_s, b[i].mean_latency_s);
  }
}

TEST(Replication, CiOfExtractsField) {
  const auto rs = run_replications(tiny(), 4, 1);
  const auto ci = ci_of(rs, [](const Metrics& m) { return m.hit_ratio; });
  EXPECT_EQ(ci.n, 4u);
  EXPECT_GE(ci.mean, 0.0);
  EXPECT_LE(ci.mean, 1.0);
  EXPECT_GE(ci.half_width, 0.0);
}

TEST(Replication, MeanOfAveragesFields) {
  const auto rs = run_replications(tiny(), 3, 1);
  const Metrics m = mean_of(rs);
  double lat = 0.0;
  for (const auto& r : rs) lat += r.mean_latency_s;
  EXPECT_NEAR(m.mean_latency_s, lat / 3.0, 1e-12);
  EXPECT_EQ(m.stale_serves, 0u);
}

TEST(Replication, MeanOfEmptyIsDefault) {
  const Metrics m = mean_of({});
  EXPECT_EQ(m.answered, 0u);
}

}  // namespace
}  // namespace wdc
