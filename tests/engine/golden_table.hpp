#ifndef WDC_TESTS_ENGINE_GOLDEN_TABLE_HPP
#define WDC_TESTS_ENGINE_GOLDEN_TABLE_HPP

/// The pinned golden operating point and its per-protocol FNV-1a metric
/// digests, shared by the golden tier (engine/golden_digest_test.cpp) and the
/// fault tier's inertness proofs (tests/faults). One definition: a re-pin
/// updates every consumer at once.
///
/// To re-pin after an INTENTIONAL behaviour change, run golden_tests with
/// WDC_PRINT_GOLDEN=1 and paste the printed table over kGolden — and say so
/// loudly in the commit message: changed digests mean changed simulation
/// results for every figure in EXPERIMENTS.md.

#include <cstdint>

#include "engine/scenario.hpp"

namespace wdc {

/// The fixed operating point. Do not change without re-pinning every digest.
/// `v` selects the fading substrate generation: the default (jakes_v2) is
/// what every other consumer (fault tier, audit) runs; the v1 overload exists
/// only for the regression lock below.
inline Scenario golden_scenario(ProtocolKind p,
                                ChannelVersion v = ChannelVersion::kJakesV2) {
  Scenario s;
  s.protocol = p;
  s.seed = 321;
  s.num_clients = 8;
  s.db.num_items = 150;
  s.sim_time_s = 300.0;
  s.warmup_s = 50.0;
  s.sleep.sleep_ratio = 0.1;
  s.traffic.offered_bps = 10e3;
  s.fading.channel_version = v;
  return s;
}

struct GoldenEntry {
  ProtocolKind protocol;
  std::uint64_t digest;
};

/// Pinned 2026-08-05 from the pre-overhaul kernel (commit 021c777 lineage);
/// re-verified 2026-08-08 under the jakes_v2 default. The re-pin was a
/// measured no-op: v1 and v2 share the oscillator ensemble bit-for-bit (same
/// RNG draws) and differ only by the ≤ ~5e-9 dB cosine-kernel gap, which at
/// this operating point never crosses an MCS/decode decision boundary — all
/// eleven digests came out bit-identical (flip probability per run is ~1e-5;
/// if a future re-pin lands on a flip, the tables below legitimately fork).
constexpr GoldenEntry kGolden[] = {
    {ProtocolKind::kTs, 0xaf68560caa10c589ull},
    {ProtocolKind::kAt, 0x43462af3ebac66f1ull},
    {ProtocolKind::kSig, 0x2e3730d2c5631397ull},
    {ProtocolKind::kUir, 0xf40f168792e1732cull},
    {ProtocolKind::kLair, 0xdb92b79a74d3718eull},
    {ProtocolKind::kPig, 0xc00cd9b8f9a321cdull},
    {ProtocolKind::kHyb, 0x65abff179ad9e6f5ull},
    {ProtocolKind::kNc, 0x68cca8e4589a1142ull},
    {ProtocolKind::kPer, 0x95e6f474a6ba0dabull},
    {ProtocolKind::kBs, 0xc7c9fc0a4a1b43cdull},
    {ProtocolKind::kCbl, 0xda9a0fc1a1738696ull},
};

/// Regression lock for `channel_version = jakes_v1`: the original libm-cos
/// substrate must keep reproducing the pre-v2 pins exactly, or old
/// experiments stop being reproducible. Equal to kGolden today (see above);
/// kept as a separate table because the two CAN fork on any future re-pin.
constexpr GoldenEntry kGoldenV1[] = {
    {ProtocolKind::kTs, 0xaf68560caa10c589ull},
    {ProtocolKind::kAt, 0x43462af3ebac66f1ull},
    {ProtocolKind::kSig, 0x2e3730d2c5631397ull},
    {ProtocolKind::kUir, 0xf40f168792e1732cull},
    {ProtocolKind::kLair, 0xdb92b79a74d3718eull},
    {ProtocolKind::kPig, 0xc00cd9b8f9a321cdull},
    {ProtocolKind::kHyb, 0x65abff179ad9e6f5ull},
    {ProtocolKind::kNc, 0x68cca8e4589a1142ull},
    {ProtocolKind::kPer, 0x95e6f474a6ba0dabull},
    {ProtocolKind::kBs, 0xc7c9fc0a4a1b43cdull},
    {ProtocolKind::kCbl, 0xda9a0fc1a1738696ull},
};

static_assert(sizeof(kGolden) / sizeof(kGolden[0]) ==
                  sizeof(kAllProtocolsAndBaselines) /
                      sizeof(kAllProtocolsAndBaselines[0]),
              "golden table must cover every protocol and baseline");
static_assert(sizeof(kGoldenV1) / sizeof(kGoldenV1[0]) ==
                  sizeof(kGolden) / sizeof(kGolden[0]),
              "v1 lock must cover every protocol and baseline");

/// Enum spelling for the WDC_PRINT_GOLDEN paste-ready table.
inline const char* enum_name(ProtocolKind p) {
  switch (p) {
    case ProtocolKind::kTs: return "kTs";
    case ProtocolKind::kAt: return "kAt";
    case ProtocolKind::kSig: return "kSig";
    case ProtocolKind::kUir: return "kUir";
    case ProtocolKind::kLair: return "kLair";
    case ProtocolKind::kPig: return "kPig";
    case ProtocolKind::kHyb: return "kHyb";
    case ProtocolKind::kNc: return "kNc";
    case ProtocolKind::kPer: return "kPer";
    case ProtocolKind::kBs: return "kBs";
    case ProtocolKind::kCbl: return "kCbl";
  }
  return "?";
}

}  // namespace wdc

#endif  // WDC_TESTS_ENGINE_GOLDEN_TABLE_HPP
