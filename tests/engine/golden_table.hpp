#ifndef WDC_TESTS_ENGINE_GOLDEN_TABLE_HPP
#define WDC_TESTS_ENGINE_GOLDEN_TABLE_HPP

/// The pinned golden operating point and its per-protocol FNV-1a metric
/// digests, shared by the golden tier (engine/golden_digest_test.cpp) and the
/// fault tier's inertness proofs (tests/faults). One definition: a re-pin
/// updates every consumer at once.
///
/// To re-pin after an INTENTIONAL behaviour change, run golden_tests with
/// WDC_PRINT_GOLDEN=1 and paste the printed table over kGolden — and say so
/// loudly in the commit message: changed digests mean changed simulation
/// results for every figure in EXPERIMENTS.md.

#include <cstdint>

#include "engine/scenario.hpp"

namespace wdc {

/// The fixed operating point. Do not change without re-pinning every digest.
inline Scenario golden_scenario(ProtocolKind p) {
  Scenario s;
  s.protocol = p;
  s.seed = 321;
  s.num_clients = 8;
  s.db.num_items = 150;
  s.sim_time_s = 300.0;
  s.warmup_s = 50.0;
  s.sleep.sleep_ratio = 0.1;
  s.traffic.offered_bps = 10e3;
  return s;
}

struct GoldenEntry {
  ProtocolKind protocol;
  std::uint64_t digest;
};

/// Pinned 2026-08-05 from the pre-overhaul kernel (commit 021c777 lineage).
constexpr GoldenEntry kGolden[] = {
    {ProtocolKind::kTs, 0xaf68560caa10c589ull},
    {ProtocolKind::kAt, 0x43462af3ebac66f1ull},
    {ProtocolKind::kSig, 0x2e3730d2c5631397ull},
    {ProtocolKind::kUir, 0xf40f168792e1732cull},
    {ProtocolKind::kLair, 0xdb92b79a74d3718eull},
    {ProtocolKind::kPig, 0xc00cd9b8f9a321cdull},
    {ProtocolKind::kHyb, 0x65abff179ad9e6f5ull},
    {ProtocolKind::kNc, 0x68cca8e4589a1142ull},
    {ProtocolKind::kPer, 0x95e6f474a6ba0dabull},
    {ProtocolKind::kBs, 0xc7c9fc0a4a1b43cdull},
    {ProtocolKind::kCbl, 0xda9a0fc1a1738696ull},
};

static_assert(sizeof(kGolden) / sizeof(kGolden[0]) ==
                  sizeof(kAllProtocolsAndBaselines) /
                      sizeof(kAllProtocolsAndBaselines[0]),
              "golden table must cover every protocol and baseline");

/// Enum spelling for the WDC_PRINT_GOLDEN paste-ready table.
inline const char* enum_name(ProtocolKind p) {
  switch (p) {
    case ProtocolKind::kTs: return "kTs";
    case ProtocolKind::kAt: return "kAt";
    case ProtocolKind::kSig: return "kSig";
    case ProtocolKind::kUir: return "kUir";
    case ProtocolKind::kLair: return "kLair";
    case ProtocolKind::kPig: return "kPig";
    case ProtocolKind::kHyb: return "kHyb";
    case ProtocolKind::kNc: return "kNc";
    case ProtocolKind::kPer: return "kPer";
    case ProtocolKind::kBs: return "kBs";
    case ProtocolKind::kCbl: return "kCbl";
  }
  return "?";
}

}  // namespace wdc

#endif  // WDC_TESTS_ENGINE_GOLDEN_TABLE_HPP
