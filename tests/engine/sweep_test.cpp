/// @file sweep_test.cpp
/// The grid engine's core guarantees: results are bit-identical whatever the
/// worker thread count, ordered by (variant, point, replication), equal to
/// what run_replications produces cell by cell, and degenerate grids (no
/// variants, no points, zero replications) are handled without surprises.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/digest.hpp"
#include "engine/replication.hpp"
#include "engine/sweep.hpp"

namespace wdc {
namespace {

/// A small but non-trivial grid: 2 protocols × 2 points × 2 replications of a
/// short scenario — 8 tasks, several per worker even at 4 threads.
SweepSpec test_spec() {
  SweepSpec s;
  s.key = "test";
  s.id = "TEST";
  s.title = "sweep engine test grid";
  s.axis = {"L (s)",
            {5.0, 20.0},
            [](Scenario& sc, double L) { sc.proto.ir_interval_s = L; }};
  s.variants =
      protocol_variants({ProtocolKind::kTs, ProtocolKind::kUir});
  s.series = {{"mean query latency (s)", "",
               [](const Metrics& m) { return m.mean_latency_s; }, 3}};
  return s;
}

Scenario test_base() {
  Scenario s;
  s.seed = 42;
  s.num_clients = 5;
  s.sim_time_s = 60.0;
  s.warmup_s = 10.0;
  return s;
}

SweepOptions test_opts(unsigned threads) {
  SweepOptions o;
  o.reps = 2;
  o.threads = threads;
  o.base = test_base();
  return o;
}

std::vector<std::uint64_t> grid_digests(const SweepGrid& g) {
  std::vector<std::uint64_t> out;
  for (const auto& cell : g.cells)
    for (const auto& m : cell.reps) out.push_back(metrics_digest(m));
  return out;
}

TEST(SweepTest, GridShapeAndOrdering) {
  const auto grid = run_sweep(test_spec(), test_opts(1));
  ASSERT_EQ(grid.num_variants(), 2u);
  ASSERT_EQ(grid.num_points(), 2u);
  ASSERT_EQ(grid.cells.size(), 4u);
  EXPECT_EQ(grid.variant_names, (std::vector<std::string>{"TS", "UIR"}));
  EXPECT_EQ(grid.xs, (std::vector<double>{5.0, 20.0}));
  EXPECT_EQ(grid.reps, 2u);

  // Cells come back variant-major, replications by index within each cell.
  std::size_t i = 0;
  for (std::size_t v = 0; v < grid.num_variants(); ++v) {
    for (std::size_t p = 0; p < grid.num_points(); ++p, ++i) {
      const SweepCell& c = grid.cells[i];
      EXPECT_EQ(c.variant, v);
      EXPECT_EQ(c.point, p);
      EXPECT_EQ(c.x, grid.xs[p]);
      ASSERT_EQ(c.reps.size(), 2u);
      ASSERT_EQ(c.seeds.size(), 2u);
      EXPECT_EQ(&grid.cell(v, p), &c);
      // Each replication ran under the seed the grid reports for it.
      for (std::size_t r = 0; r < c.reps.size(); ++r)
        EXPECT_EQ(c.reps[r].seed, c.seeds[r]);
    }
  }
}

TEST(SweepTest, ThreadCountIndependence) {
  const auto spec = test_spec();
  const auto one = run_sweep(spec, test_opts(1));
  const auto four = run_sweep(spec, test_opts(4));
  EXPECT_EQ(one.threads_used, 1u);
  ASSERT_EQ(one.cells.size(), four.cells.size());
  EXPECT_EQ(grid_digests(one), grid_digests(four));
}

TEST(SweepTest, RepeatDeterminism) {
  const auto spec = test_spec();
  const auto a = run_sweep(spec, test_opts(2));
  const auto b = run_sweep(spec, test_opts(2));
  EXPECT_EQ(grid_digests(a), grid_digests(b));
}

TEST(SweepTest, MatchesRunReplicationsPerCell) {
  const auto spec = test_spec();
  const auto grid = run_sweep(spec, test_opts(4));
  for (std::size_t v = 0; v < grid.num_variants(); ++v) {
    for (std::size_t p = 0; p < grid.num_points(); ++p) {
      Scenario sc = test_base();
      spec.variants[v].apply(sc);
      spec.axis.apply(sc, spec.axis.values[p]);
      const auto ref = run_replications(sc, 2, 1);
      const SweepCell& cell = grid.cell(v, p);
      ASSERT_EQ(ref.size(), cell.reps.size());
      for (std::size_t r = 0; r < ref.size(); ++r)
        EXPECT_EQ(metrics_digest(ref[r]), metrics_digest(cell.reps[r]))
            << "variant " << v << " point " << p << " rep " << r;
    }
  }
}

TEST(SweepTest, ProgressFiresOncePerCell) {
  std::size_t calls = 0;
  std::size_t last_done = 0;
  const auto grid =
      run_sweep(test_spec(), test_opts(4), [&](const SweepProgress& p) {
        ++calls;
        EXPECT_EQ(p.cells_total, 4u);
        EXPECT_EQ(p.cells_done, calls);  // serialised, monotone
        ASSERT_NE(p.cell, nullptr);
        EXPECT_EQ(p.cell->reps.size(), 2u);
        last_done = p.cells_done;
      });
  EXPECT_EQ(calls, grid.cells.size());
  EXPECT_EQ(last_done, 4u);
}

TEST(SweepTest, EmptyGrids) {
  SweepSpec spec = test_spec();
  const auto opts = test_opts(2);

  {
    SweepSpec no_variants = spec;
    no_variants.variants.clear();
    const auto g = run_sweep(no_variants, opts);
    EXPECT_EQ(g.cells.size(), 0u);
    EXPECT_EQ(g.num_variants(), 0u);
    EXPECT_EQ(g.num_points(), 2u);
  }
  {
    SweepSpec no_points = spec;
    no_points.axis.values.clear();
    const auto g = run_sweep(no_points, opts);
    EXPECT_EQ(g.cells.size(), 0u);
    EXPECT_EQ(g.num_points(), 0u);
  }
  {
    SweepOptions zero_reps = opts;
    zero_reps.reps = 0;
    const auto g = run_sweep(spec, zero_reps);
    ASSERT_EQ(g.cells.size(), 4u);  // cells exist, but hold no replications
    for (const auto& c : g.cells) {
      EXPECT_TRUE(c.reps.empty());
      EXPECT_TRUE(c.seeds.empty());
    }
  }
}

TEST(SweepTest, SingleCellGrid) {
  SweepSpec spec = test_spec();
  spec.axis.values = {10.0};
  spec.variants.resize(1);
  SweepOptions opts = test_opts(3);
  opts.reps = 1;
  const auto g = run_sweep(spec, opts);
  ASSERT_EQ(g.cells.size(), 1u);
  EXPECT_EQ(g.cells[0].variant, 0u);
  EXPECT_EQ(g.cells[0].point, 0u);
  ASSERT_EQ(g.cells[0].reps.size(), 1u);
  EXPECT_GT(g.cells[0].reps[0].queries, 0u);
}

}  // namespace
}  // namespace wdc
