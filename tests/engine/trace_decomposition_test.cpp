/// End-to-end tests of the tracing subsystem at the Simulation level: the
/// latency-decomposition identity across every protocol, digest invariance
/// (traced vs untraced vs field mutation), and .wdct export round-trips.
/// Digest tests run in every build; assertions on the recorded decomposition
/// itself need the instrumented build (WDC_TRACE_ENABLED).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "engine/digest.hpp"
#include "engine/simulation.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_span.hpp"

namespace wdc {
namespace {

Scenario traced(ProtocolKind kind, std::uint64_t seed = 11) {
  Scenario s;
  s.protocol = kind;
  s.seed = seed;
  s.num_clients = 10;
  s.db.num_items = 200;
  s.sim_time_s = 400.0;
  s.warmup_s = 100.0;
  s.trace.enabled = true;
  return s;
}

#if WDC_TRACE_ENABLED

TEST(TraceDecomposition, ComponentsSumToMeanLatencyForEveryProtocol) {
  // The emit site clamps a monotone timestamp chain, so the four components
  // telescope to the answer latency exactly; the per-answer means must then
  // reproduce mean_latency_s up to accumulation rounding. This is the identity
  // that makes the decomposition trustworthy, checked over all 11 protocols.
  for (ProtocolKind kind : kAllProtocolsAndBaselines) {
    const Metrics m = run_scenario(traced(kind));
    ASSERT_GT(m.answered, 0u) << to_string(kind);
    EXPECT_GT(m.trace_events, 0u) << to_string(kind);
    const double sum = m.ir_wait_s + m.uplink_s + m.bcast_wait_s + m.airtime_s;
    EXPECT_NEAR(sum, m.mean_latency_s, 1e-6 + 1e-9 * m.mean_latency_s)
        << to_string(kind);
    EXPECT_GE(m.ir_wait_s, 0.0) << to_string(kind);
    EXPECT_GE(m.uplink_s, 0.0) << to_string(kind);
    EXPECT_GE(m.bcast_wait_s, 0.0) << to_string(kind);
    EXPECT_GE(m.airtime_s, 0.0) << to_string(kind);
  }
}

TEST(TraceDecomposition, UntracedRunRecordsNothing) {
  Scenario s = traced(ProtocolKind::kTs);
  s.trace.enabled = false;
  const Metrics m = run_scenario(s);
  EXPECT_EQ(m.trace_events, 0u);
  EXPECT_EQ(m.trace_dropped, 0u);
  EXPECT_DOUBLE_EQ(m.ir_wait_s + m.uplink_s + m.bcast_wait_s + m.airtime_s,
                   0.0);
}

TEST(TraceDecomposition, FileExportRoundTripsThroughSpans) {
  const std::string path = testing::TempDir() + "decomp_e2e.wdct";
  Scenario s = traced(ProtocolKind::kUir, 23);
  s.trace.file = path;
  const Metrics m = run_scenario(s);
  ASSERT_GT(m.answered, 0u);

  TraceFile tf;
  std::string error;
  ASSERT_TRUE(read_trace_file(path, &tf, &error)) << error;
  EXPECT_EQ(tf.protocol(), to_string(ProtocolKind::kUir));
  EXPECT_EQ(tf.header.seed, 23u);
  EXPECT_EQ(tf.header.num_clients, 10u);
  // A file sink drains the ring before any overwrite, so the file holds every
  // emitted event and the counted spans reproduce the Metrics answer count.
  EXPECT_EQ(m.trace_dropped, 0u);
  EXPECT_EQ(tf.events.size(), m.trace_events);

  const auto spans = derive_spans(tf.events);
  const auto counted = summarize_spans(spans, /*counted_only=*/true);
  EXPECT_EQ(counted.spans, m.answered);
  EXPECT_NEAR(counted.mean_latency_s, m.mean_latency_s,
              1e-4 + 1e-3 * m.mean_latency_s);  // parts travel as float32
  std::remove(path.c_str());
}

#endif  // WDC_TRACE_ENABLED

TEST(TraceDigest, TracingDoesNotPerturbTheDigest) {
  // Tracing must be a pure observer: the same seed run traced and untraced
  // (and in a -DWDC_TRACE=OFF build, where the traced run records nothing)
  // produces bit-identical simulation results.
  for (ProtocolKind kind :
       {ProtocolKind::kTs, ProtocolKind::kHyb, ProtocolKind::kCbl}) {
    Scenario on = traced(kind, 31);
    Scenario off = on;
    off.trace.enabled = false;
    const Metrics a = run_scenario(on);
    const Metrics b = run_scenario(off);
    EXPECT_EQ(metrics_digest(a), metrics_digest(b)) << to_string(kind);
    EXPECT_EQ(a.events, b.events) << to_string(kind);
    EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s) << to_string(kind);
  }
}

TEST(TraceDigest, DigestIgnoresTraceDerivedFields) {
  Metrics m = run_scenario(traced(ProtocolKind::kTs));
  const std::uint64_t base = metrics_digest(m);
  m.ir_wait_s += 1.0;
  m.uplink_s += 2.0;
  m.bcast_wait_s += 3.0;
  m.airtime_s += 4.0;
  m.trace_events += 5;
  m.trace_dropped += 6;
  EXPECT_EQ(metrics_digest(m), base);
}

}  // namespace
}  // namespace wdc
