#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "engine/digest.hpp"
#include "engine/simulation.hpp"
#include "golden_table.hpp"

/// Golden-digest regression tier (ctest label `golden`).
///
/// Every protocol runs once at a small fixed operating point; the FNV-1a
/// digest of its Metrics record must match the committed expectation. The
/// digests were pinned before the event-kernel hot-path overhaul, so passing
/// this tier proves a refactor is bit-identical — the same guarantee
/// tools/wdc_audit gives, but cheap enough for every ctest invocation.
///
/// The digest covers the model-visible metrics only; kernel perf counters and
/// fault/recovery counters are deliberately excluded (see engine/digest.cpp)
/// so instrumentation builds and plain builds agree.
///
/// The operating point and the pinned table live in golden_table.hpp, shared
/// with the fault tier's inertness proofs (tests/faults).

namespace wdc {
namespace {

class GoldenDigest : public ::testing::TestWithParam<GoldenEntry> {};

TEST_P(GoldenDigest, MatchesPinnedMetricsDigest) {
  const GoldenEntry& expect = GetParam();
  const Metrics m = run_scenario(golden_scenario(expect.protocol));
  const std::uint64_t actual = metrics_digest(m);
  if (std::getenv("WDC_PRINT_GOLDEN") != nullptr) {
    std::printf("    {ProtocolKind::%s, 0x%016llxull},\n",
                enum_name(expect.protocol),
                static_cast<unsigned long long>(actual));
  }
  EXPECT_EQ(actual, expect.digest)
      << to_string(expect.protocol) << " metrics digest drifted: expected 0x"
      << std::hex << expect.digest << ", got 0x" << actual << std::dec
      << " — the simulation is no longer bit-identical at the pinned "
         "operating point (re-pin ONLY for intentional model changes)";
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndBaselines, GoldenDigest, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenEntry>& tpi) {
      return to_string(tpi.param.protocol);
    });

/// Regression lock for the previous substrate generation: the same operating
/// point forced to `channel_version = jakes_v1` must keep reproducing the
/// pre-v2 pins (kGoldenV1) exactly. This is what keeps experiments recorded
/// before the v2 switch reproducible from a current checkout.
class GoldenDigestV1 : public ::testing::TestWithParam<GoldenEntry> {};

TEST_P(GoldenDigestV1, V1SubstrateMatchesPreV2Pins) {
  const GoldenEntry& expect = GetParam();
  const Metrics m = run_scenario(
      golden_scenario(expect.protocol, ChannelVersion::kJakesV1));
  const std::uint64_t actual = metrics_digest(m);
  if (std::getenv("WDC_PRINT_GOLDEN") != nullptr) {
    std::printf("v1: {ProtocolKind::%s, 0x%016llxull},\n",
                enum_name(expect.protocol),
                static_cast<unsigned long long>(actual));
  }
  EXPECT_EQ(actual, expect.digest)
      << to_string(expect.protocol)
      << " jakes_v1 digest drifted from its pre-v2 pin — the legacy "
         "substrate is no longer reproducing old experiments";
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndBaselines, GoldenDigestV1, ::testing::ValuesIn(kGoldenV1),
    [](const ::testing::TestParamInfo<GoldenEntry>& tpi) {
      return to_string(tpi.param.protocol);
    });

}  // namespace
}  // namespace wdc
