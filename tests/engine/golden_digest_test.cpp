#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "engine/digest.hpp"
#include "engine/simulation.hpp"

/// Golden-digest regression tier (ctest label `golden`).
///
/// Every protocol runs once at a small fixed operating point; the FNV-1a
/// digest of its Metrics record must match the committed expectation. The
/// digests were pinned before the event-kernel hot-path overhaul, so passing
/// this tier proves a refactor is bit-identical — the same guarantee
/// tools/wdc_audit gives, but cheap enough for every ctest invocation.
///
/// The digest covers the model-visible metrics only; kernel perf counters are
/// deliberately excluded (see engine/digest.cpp) so instrumentation builds and
/// plain builds agree.
///
/// To re-pin after an INTENTIONAL behaviour change, run with
/// WDC_PRINT_GOLDEN=1 and paste the printed table over kGolden below —
/// and say so loudly in the commit message: changed digests mean changed
/// simulation results for every figure in EXPERIMENTS.md.

namespace wdc {
namespace {

/// The fixed operating point. Do not change without re-pinning every digest.
Scenario golden_scenario(ProtocolKind p) {
  Scenario s;
  s.protocol = p;
  s.seed = 321;
  s.num_clients = 8;
  s.db.num_items = 150;
  s.sim_time_s = 300.0;
  s.warmup_s = 50.0;
  s.sleep.sleep_ratio = 0.1;
  s.traffic.offered_bps = 10e3;
  return s;
}

struct GoldenEntry {
  ProtocolKind protocol;
  std::uint64_t digest;
};

/// Pinned 2026-08-05 from the pre-overhaul kernel (commit 021c777 lineage).
constexpr GoldenEntry kGolden[] = {
    {ProtocolKind::kTs, 0xaf68560caa10c589ull},
    {ProtocolKind::kAt, 0x43462af3ebac66f1ull},
    {ProtocolKind::kSig, 0x2e3730d2c5631397ull},
    {ProtocolKind::kUir, 0xf40f168792e1732cull},
    {ProtocolKind::kLair, 0xdb92b79a74d3718eull},
    {ProtocolKind::kPig, 0xc00cd9b8f9a321cdull},
    {ProtocolKind::kHyb, 0x65abff179ad9e6f5ull},
    {ProtocolKind::kNc, 0x68cca8e4589a1142ull},
    {ProtocolKind::kPer, 0x95e6f474a6ba0dabull},
    {ProtocolKind::kBs, 0xc7c9fc0a4a1b43cdull},
    {ProtocolKind::kCbl, 0xda9a0fc1a1738696ull},
};

static_assert(sizeof(kGolden) / sizeof(kGolden[0]) ==
                  sizeof(kAllProtocolsAndBaselines) /
                      sizeof(kAllProtocolsAndBaselines[0]),
              "golden table must cover every protocol and baseline");

/// Enum spelling for the WDC_PRINT_GOLDEN paste-ready table.
const char* enum_name(ProtocolKind p) {
  switch (p) {
    case ProtocolKind::kTs: return "kTs";
    case ProtocolKind::kAt: return "kAt";
    case ProtocolKind::kSig: return "kSig";
    case ProtocolKind::kUir: return "kUir";
    case ProtocolKind::kLair: return "kLair";
    case ProtocolKind::kPig: return "kPig";
    case ProtocolKind::kHyb: return "kHyb";
    case ProtocolKind::kNc: return "kNc";
    case ProtocolKind::kPer: return "kPer";
    case ProtocolKind::kBs: return "kBs";
    case ProtocolKind::kCbl: return "kCbl";
  }
  return "?";
}

class GoldenDigest : public ::testing::TestWithParam<GoldenEntry> {};

TEST_P(GoldenDigest, MatchesPinnedMetricsDigest) {
  const GoldenEntry& expect = GetParam();
  const Metrics m = run_scenario(golden_scenario(expect.protocol));
  const std::uint64_t actual = metrics_digest(m);
  if (std::getenv("WDC_PRINT_GOLDEN") != nullptr) {
    std::printf("    {ProtocolKind::%s, 0x%016llxull},\n",
                enum_name(expect.protocol),
                static_cast<unsigned long long>(actual));
  }
  EXPECT_EQ(actual, expect.digest)
      << to_string(expect.protocol) << " metrics digest drifted: expected 0x"
      << std::hex << expect.digest << ", got 0x" << actual << std::dec
      << " — the simulation is no longer bit-identical at the pinned "
         "operating point (re-pin ONLY for intentional model changes)";
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndBaselines, GoldenDigest, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenEntry>& tpi) {
      return to_string(tpi.param.protocol);
    });

}  // namespace
}  // namespace wdc
