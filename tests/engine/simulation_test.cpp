#include "engine/simulation.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace wdc {
namespace {

Scenario small(ProtocolKind kind = ProtocolKind::kTs, std::uint64_t seed = 7) {
  Scenario s;
  s.protocol = kind;
  s.seed = seed;
  s.num_clients = 10;
  s.db.num_items = 200;
  s.sim_time_s = 600.0;
  s.warmup_s = 100.0;
  return s;
}

TEST(Simulation, RunsAndServesQueries) {
  const Metrics m = run_scenario(small());
  EXPECT_GT(m.queries, 100u);
  EXPECT_GT(m.answered, 100u);
  EXPECT_EQ(m.hits + m.misses, m.answered);
  EXPECT_EQ(m.stale_serves, 0u);
  EXPECT_GT(m.events, 1000u);
}

TEST(Simulation, SameSeedIsBitReproducible) {
  const Metrics a = run_scenario(small(ProtocolKind::kHyb, 42));
  const Metrics b = run_scenario(small(ProtocolKind::kHyb, 42));
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.answered, b.answered);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.reports_missed, b.reports_missed);
}

TEST(Simulation, DifferentSeedsDiffer) {
  const Metrics a = run_scenario(small(ProtocolKind::kTs, 1));
  const Metrics b = run_scenario(small(ProtocolKind::kTs, 2));
  EXPECT_NE(a.events, b.events);
}

TEST(Simulation, RunTwiceThrows) {
  Simulation sim(small());
  (void)sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulation, IncrementalRunMatchesCollect) {
  Simulation sim(small());
  sim.run_until(300.0);
  const Metrics mid = sim.collect();
  sim.run_until(600.0);
  const Metrics end = sim.collect();
  EXPECT_LT(mid.queries, end.queries);
  EXPECT_DOUBLE_EQ(mid.sim_time_s, 300.0);
  EXPECT_DOUBLE_EQ(end.sim_time_s, 600.0);
}

TEST(Simulation, AccessorsExposeComponents) {
  Simulation sim(small());
  EXPECT_EQ(sim.num_clients(), 10u);
  EXPECT_EQ(sim.database().num_items(), 200u);
  EXPECT_EQ(sim.client(0).id(), 0u);
  EXPECT_EQ(sim.client(9).id(), 9u);
  EXPECT_THROW(sim.client(10), std::out_of_range);
}

TEST(Simulation, WarmupExcludesEarlyQueries) {
  Scenario s = small();
  Scenario s2 = s;
  s2.warmup_s = 500.0;
  const Metrics full = run_scenario(s);
  const Metrics late = run_scenario(s2);
  EXPECT_GT(full.queries, late.queries);
}

TEST(Simulation, PathLossAssignmentRuns) {
  Scenario s = small();
  s.snr_assignment = SnrAssignment::kPathLoss;
  s.tx_power_dbm = 30.0;
  const Metrics m = run_scenario(s);
  EXPECT_GT(m.answered, 0u);
  EXPECT_EQ(m.stale_serves, 0u);
}

TEST(Simulation, FixedMcsModeRuns) {
  Scenario s = small();
  s.mac.amc.adaptive = false;
  s.mac.amc.fixed_mcs = 2;
  const Metrics m = run_scenario(s);
  EXPECT_GT(m.answered, 0u);
  EXPECT_NEAR(m.mean_broadcast_mcs, 2.0, 1e-9);
}

TEST(Simulation, MetricsPrintProducesOutput) {
  const Metrics m = run_scenario(small());
  std::ostringstream os;
  m.print(os);
  EXPECT_NE(os.str().find("hit ratio"), std::string::npos);
  EXPECT_NE(os.str().find("latency"), std::string::npos);
}

}  // namespace
}  // namespace wdc
