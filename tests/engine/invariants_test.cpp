#include <gtest/gtest.h>

#include "engine/simulation.hpp"

/// Property tests run against EVERY protocol under a hostile environment
/// (fading + sleep + background traffic): whatever the scheme, the consistency
/// contract and the accounting identities must hold.

namespace wdc {
namespace {

struct InvariantCase {
  ProtocolKind protocol;
  FadingModel fading;
  double sleep_ratio;
};

std::string case_name(const ::testing::TestParamInfo<InvariantCase>& info) {
  std::string n = to_string(info.param.protocol) + std::string("_") +
                  to_string(info.param.fading);
  n += info.param.sleep_ratio > 0.0 ? "_sleep" : "_nosleep";
  for (auto& ch : n)
    if (ch == '-') ch = '_';
  return n;
}

class ProtocolInvariants : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(ProtocolInvariants, HoldUnderHostileEnvironment) {
  const InvariantCase& param = GetParam();
  Scenario s;
  s.protocol = param.protocol;
  s.seed = 1234;
  s.num_clients = 15;
  s.db.num_items = 300;
  s.db.update_rate = 1.0;
  s.sim_time_s = 800.0;
  s.warmup_s = 100.0;
  s.fading.model = param.fading;
  s.sleep.sleep_ratio = param.sleep_ratio;
  s.sleep.mean_sleep_s = 40.0;
  s.traffic.offered_bps = 15e3;

  const Metrics m = run_scenario(s);

  // THE invariant: no protocol in the IR family (or the strongly consistent
  // baselines) ever serves a stale answer. CBL is best-effort by design: its
  // violations must stay rare (that measured rate is TAB-3's point).
  if (param.protocol == ProtocolKind::kCbl) {
    EXPECT_LT(static_cast<double>(m.stale_serves),
              0.02 * static_cast<double>(m.answered) + 5.0);
  } else {
    EXPECT_EQ(m.stale_serves, 0u);
  }

  // Accounting identities.
  EXPECT_EQ(m.hits + m.misses, m.answered);
  EXPECT_LE(m.answered + m.dropped_queries, m.queries);
  EXPECT_GE(m.hit_ratio, 0.0);
  EXPECT_LE(m.hit_ratio, 1.0);
  EXPECT_GE(m.report_loss_rate, 0.0);
  EXPECT_LT(m.report_loss_rate, 1.0);
  EXPECT_GE(m.mac_busy_frac, 0.0);
  EXPECT_LE(m.mac_busy_frac, 1.0 + 1e-9);

  // Latency sanity: bounded below by 0 and above by a few report periods under
  // a functioning system.
  EXPECT_GE(m.mean_latency_s, 0.0);
  EXPECT_GT(m.answered, 50u);
  EXPECT_LT(m.p50_latency_s, 5.0 * s.proto.ir_interval_s);

  // Misses require an uplink request (retries can add more, never fewer).
  EXPECT_GE(m.uplink_requests + m.coalesced_requests, m.misses / 2);

  // Report-based schemes actually broadcast reports and clients heard some
  // (the NC/PER baselines are report-free by design).
  const bool report_free = param.protocol == ProtocolKind::kNc ||
                           param.protocol == ProtocolKind::kPer ||
                           param.protocol == ProtocolKind::kCbl;
  if (!report_free) {
    EXPECT_GT(m.reports_sent, 0u);
    EXPECT_GT(m.reports_heard, 0u);
  } else {
    EXPECT_EQ(m.reports_sent, 0u);
  }

  // Energy accounting only grows.
  EXPECT_GE(m.listen_airtime_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolInvariants,
    ::testing::Values(
        InvariantCase{ProtocolKind::kTs, FadingModel::kRayleigh, 0.0},
        InvariantCase{ProtocolKind::kAt, FadingModel::kRayleigh, 0.0},
        InvariantCase{ProtocolKind::kSig, FadingModel::kRayleigh, 0.0},
        InvariantCase{ProtocolKind::kUir, FadingModel::kRayleigh, 0.0},
        InvariantCase{ProtocolKind::kLair, FadingModel::kRayleigh, 0.0},
        InvariantCase{ProtocolKind::kPig, FadingModel::kRayleigh, 0.0},
        InvariantCase{ProtocolKind::kHyb, FadingModel::kRayleigh, 0.0},
        InvariantCase{ProtocolKind::kTs, FadingModel::kRayleigh, 0.2},
        InvariantCase{ProtocolKind::kAt, FadingModel::kRayleigh, 0.2},
        InvariantCase{ProtocolKind::kSig, FadingModel::kRayleigh, 0.2},
        InvariantCase{ProtocolKind::kUir, FadingModel::kRayleigh, 0.2},
        InvariantCase{ProtocolKind::kLair, FadingModel::kRayleigh, 0.2},
        InvariantCase{ProtocolKind::kPig, FadingModel::kRayleigh, 0.2},
        InvariantCase{ProtocolKind::kHyb, FadingModel::kRayleigh, 0.2},
        InvariantCase{ProtocolKind::kTs, FadingModel::kFsmc, 0.1},
        InvariantCase{ProtocolKind::kUir, FadingModel::kFsmc, 0.1},
        InvariantCase{ProtocolKind::kHyb, FadingModel::kFsmc, 0.1},
        InvariantCase{ProtocolKind::kTs, FadingModel::kGilbertElliott, 0.1},
        InvariantCase{ProtocolKind::kHyb, FadingModel::kGilbertElliott, 0.1},
        InvariantCase{ProtocolKind::kTs, FadingModel::kNone, 0.0},
        InvariantCase{ProtocolKind::kHyb, FadingModel::kNone, 0.0},
        InvariantCase{ProtocolKind::kNc, FadingModel::kRayleigh, 0.0},
        InvariantCase{ProtocolKind::kPer, FadingModel::kRayleigh, 0.0},
        InvariantCase{ProtocolKind::kBs, FadingModel::kRayleigh, 0.0},
        InvariantCase{ProtocolKind::kNc, FadingModel::kRayleigh, 0.2},
        InvariantCase{ProtocolKind::kPer, FadingModel::kRayleigh, 0.2},
        InvariantCase{ProtocolKind::kBs, FadingModel::kRayleigh, 0.2},
        InvariantCase{ProtocolKind::kCbl, FadingModel::kRayleigh, 0.0},
        InvariantCase{ProtocolKind::kCbl, FadingModel::kRayleigh, 0.2}),
    case_name);

}  // namespace
}  // namespace wdc
