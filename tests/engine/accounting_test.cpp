#include <gtest/gtest.h>

#include "engine/simulation.hpp"

/// Coherence between Metrics and the underlying component counters — guards
/// against collect() drifting from the sources of truth as metrics are added.

namespace wdc {
namespace {

TEST(Accounting, MetricsAgreeWithComponents) {
  Scenario sc;
  sc.protocol = ProtocolKind::kUir;
  sc.num_clients = 12;
  sc.db.num_items = 200;
  sc.sim_time_s = 600.0;
  sc.warmup_s = 100.0;
  sc.seed = 99;
  Simulation sim(sc);
  const Metrics m = sim.run();

  // MAC transmission counts back the server's send counters (ARQ retries can
  // only add transmissions for unicast kinds; reports are broadcast = 1 tx).
  // Send counters tick at enqueue, MAC counters at transmission completion, so
  // the last report can still be queued when the clock stops.
  const auto& ir = sim.mac().stats(MsgKind::kInvalidationReport);
  const auto& mini = sim.mac().stats(MsgKind::kMiniReport);
  EXPECT_LE(ir.transmitted, m.reports_sent);
  EXPECT_GE(ir.transmitted + 1, m.reports_sent);
  EXPECT_LE(mini.transmitted, m.minis_sent);
  EXPECT_GE(mini.transmitted + 1, m.minis_sent);
  EXPECT_EQ(ir.bits + mini.bits, m.report_bits);

  // Report airtime equals the sum the MAC measured.
  EXPECT_DOUBLE_EQ(m.report_airtime_s, ir.airtime_s + mini.airtime_s);

  // Every item broadcast the server issued was transmitted exactly once
  // (modulo a queued tail at the cutoff).
  const auto& item = sim.mac().stats(MsgKind::kItemData);
  EXPECT_LE(item.transmitted, m.item_broadcasts);
  EXPECT_GE(item.transmitted + 3, m.item_broadcasts);

  // The sink's answer counters aggregate to the metric fields.
  EXPECT_EQ(sim.sink().hits(), m.hits);
  EXPECT_EQ(sim.sink().misses(), m.misses);
  EXPECT_EQ(sim.sink().answered(), m.answered);

  // Airtime by kind reconstructs the busy fraction (up to one in-flight frame).
  double total_airtime = 0.0;
  for (const auto kind :
       {MsgKind::kInvalidationReport, MsgKind::kMiniReport, MsgKind::kControl,
        MsgKind::kItemData, MsgKind::kDownlinkData})
    total_airtime += sim.mac().stats(kind).airtime_s;
  EXPECT_NEAR(total_airtime / m.sim_time_s, m.mac_busy_frac, 2e-3);

  // Conservation: counted queries are answered, dropped, or still pending (the
  // pending set may also hold uncounted warm-up stragglers, hence inequalities).
  std::size_t pending = 0;
  for (std::size_t i = 0; i < sim.num_clients(); ++i)
    pending += sim.client(i).pending_queries();
  EXPECT_LE(m.answered + m.dropped_queries, m.queries);
  EXPECT_GE(m.answered + m.dropped_queries + pending, m.queries);
}

TEST(Accounting, WarmupOnlyAffectsSinkNotMac) {
  // MAC counters cover the whole run; sink counters only the measured window.
  Scenario sc;
  sc.protocol = ProtocolKind::kTs;
  sc.num_clients = 10;
  sc.db.num_items = 150;
  sc.sim_time_s = 500.0;
  sc.warmup_s = 250.0;
  sc.seed = 5;
  Simulation sim(sc);
  const Metrics m = sim.run();
  // Reports are sent every 20 s over 500 s ⇒ 25 regardless of warm-up…
  EXPECT_EQ(m.reports_sent, 25u);
  // …but queries counted only from t=250 (≈ half of those generated).
  EXPECT_LT(m.queries, 10 * 0.1 * 400);
}

}  // namespace
}  // namespace wdc
