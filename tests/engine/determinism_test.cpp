#include <gtest/gtest.h>

#include "engine/simulation.hpp"

/// Same-seed bit-reproducibility for EVERY protocol (baselines included) — the
/// property the replication machinery and all regression comparisons rest on.

namespace wdc {
namespace {

class ProtocolDeterminism : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ProtocolDeterminism, SameSeedSameRun) {
  Scenario s;
  s.protocol = GetParam();
  s.seed = 321;
  s.num_clients = 8;
  s.db.num_items = 150;
  s.sim_time_s = 400.0;
  s.warmup_s = 50.0;
  s.sleep.sleep_ratio = 0.1;
  s.traffic.offered_bps = 10e3;

  const Metrics a = run_scenario(s);
  const Metrics b = run_scenario(s);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.answered, b.answered);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.reports_missed, b.reports_missed);
  EXPECT_EQ(a.uplink_requests, b.uplink_requests);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_DOUBLE_EQ(a.mac_busy_frac, b.mac_busy_frac);
  // CBL is deliberately best-effort (stale serves possible); determinism still
  // requires both runs to agree on the count.
  EXPECT_EQ(a.stale_serves, b.stale_serves);
  if (GetParam() != ProtocolKind::kCbl) {
    EXPECT_EQ(a.stale_serves, 0u);
  }
}

TEST_P(ProtocolDeterminism, WifiRadioAlsoRuns) {
  Scenario s;
  s.protocol = GetParam();
  s.radio = RadioTable::kWifi11b;
  s.mean_snr_db = 12.0;
  s.num_clients = 6;
  s.db.num_items = 100;
  s.sim_time_s = 300.0;
  s.warmup_s = 50.0;
  const Metrics m = run_scenario(s);
  EXPECT_GT(m.answered, 0u);
  if (GetParam() != ProtocolKind::kCbl) {
    EXPECT_EQ(m.stale_serves, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndBaselines, ProtocolDeterminism,
    ::testing::ValuesIn(std::begin(kAllProtocolsAndBaselines),
                        std::end(kAllProtocolsAndBaselines)),
    [](const ::testing::TestParamInfo<ProtocolKind>& tpi) {
      return to_string(tpi.param);
    });

}  // namespace
}  // namespace wdc
