#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "engine/epoch_ledger.hpp"
#include "util/check.hpp"

/// EpochLedger property and death tests (ctest label `scale`).
///
/// The bounded-lag barrier contract: cells step epochs in order, may run at
/// most `lag` epochs ahead of the slowest cell, publish a content seal per
/// epoch that later cells must match bit-for-bit, and may only consume seals
/// of epochs behind their own lag horizon — each violation is a WDC_CHECK
/// abort (death tests, compiled-checks builds only).

namespace wdc {
namespace {

TEST(EpochLedger, AdmitsExactlyOneEpochAheadAtLagOne) {
  EpochLedger ledger(/*cells=*/3, /*lag_epochs=*/1);
  EXPECT_EQ(ledger.min_completed(), 0u);
  // Nobody has completed anything: epochs 0 and 1 are inside the window,
  // epoch 2 would be two ahead of the slowest cell.
  EXPECT_TRUE(ledger.admissible(0));
  EXPECT_TRUE(ledger.admissible(1));
  EXPECT_FALSE(ledger.admissible(2));

  for (std::uint32_t c = 0; c < 3; ++c) {
    ledger.begin_epoch(c, 0);
    ledger.complete_epoch(c, 0, /*seal=*/42);
  }
  EXPECT_EQ(ledger.min_completed(), 1u);
  EXPECT_TRUE(ledger.admissible(2));
  EXPECT_FALSE(ledger.admissible(3));
}

TEST(EpochLedger, WiderLagWidensTheWindow) {
  EpochLedger ledger(/*cells=*/2, /*lag_epochs=*/3);
  EXPECT_TRUE(ledger.admissible(3));
  EXPECT_FALSE(ledger.admissible(4));
}

TEST(EpochLedger, FirstCompleterSealsLaterCellsVerify) {
  EpochLedger ledger(/*cells=*/2, /*lag_epochs=*/1);
  ledger.begin_epoch(0, 0);
  ledger.complete_epoch(0, 0, /*seal=*/0xabcdefull);
  ledger.begin_epoch(1, 0);
  ledger.complete_epoch(1, 0, /*seal=*/0xabcdefull);  // matches: fine
  EXPECT_EQ(ledger.consume_seal(0, 0), 0xabcdefull);
  EXPECT_EQ(ledger.consume_seal(1, 0), 0xabcdefull);
}

TEST(EpochLedger, BlockedBeginIsReleasedByTheSlowCellCompleting) {
  EpochLedger ledger(/*cells=*/2, /*lag_epochs=*/1);
  // Cell 0 sprints through epochs 0 and 1, then must block on epoch 2 until
  // cell 1 completes epoch 0 (lag-1 window).
  ledger.begin_epoch(0, 0);
  ledger.complete_epoch(0, 0, 7);
  ledger.begin_epoch(0, 1);
  ledger.complete_epoch(0, 1, 8);
  ASSERT_FALSE(ledger.admissible(2));

  std::atomic<bool> entered{false};
  std::thread fast([&] {
    ledger.begin_epoch(0, 2);  // blocks
    entered.store(true);
  });
  EXPECT_FALSE(entered.load());
  ledger.begin_epoch(1, 0);
  ledger.complete_epoch(1, 0, 7);  // slow cell catches up → window slides
  fast.join();
  EXPECT_TRUE(entered.load());
}

TEST(EpochLedger, AbandonReleasesWaiters) {
  EpochLedger ledger(/*cells=*/2, /*lag_epochs=*/1);
  ledger.begin_epoch(0, 0);
  ledger.complete_epoch(0, 0, 1);
  ledger.begin_epoch(0, 1);
  ledger.complete_epoch(0, 1, 2);
  std::thread fast([&] { ledger.begin_epoch(0, 2); });
  ledger.abandon(1);  // cell 1's executor died — nobody waits on it again
  fast.join();
  SUCCEED();
}

TEST(EpochLedger, RejectsDegenerateConfigurations) {
  EXPECT_THROW(EpochLedger(0, 1), std::invalid_argument);
  EXPECT_THROW(EpochLedger(2, 0), std::invalid_argument);
}

using EpochLedgerDeathTest = ::testing::Test;

TEST(EpochLedgerDeathTest, ConsumingASealAtOrBeyondTheLagHorizonAborts) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EpochLedger ledger(/*cells=*/2, /*lag_epochs=*/1);
  ledger.begin_epoch(0, 0);
  ledger.complete_epoch(0, 0, /*seal=*/99);
  // Cell 1 has completed nothing: epoch 0's seal was published at/after its
  // horizon, and a shard may never consume a broadcast sealed after its lag
  // horizon.
  EXPECT_DEATH(ledger.consume_seal(1, 0),
               "WDC invariant violated.*sealed at/after its lag horizon");
  // The publishing cell itself is behind its own horizon — allowed.
  EXPECT_EQ(ledger.consume_seal(0, 0), 99u);
#endif
}

TEST(EpochLedgerDeathTest, DivergingFromTheSealedReportStreamAborts) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EpochLedger ledger(/*cells=*/2, /*lag_epochs=*/1);
  ledger.begin_epoch(0, 0);
  ledger.complete_epoch(0, 0, /*seal=*/0x1111);
  ledger.begin_epoch(1, 0);
  EXPECT_DEATH(ledger.complete_epoch(1, 0, /*seal=*/0x2222),
               "WDC invariant violated.*diverged from the sealed report "
               "stream at epoch 0");
#endif
}

TEST(EpochLedgerDeathTest, OutOfOrderEpochsAbort) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EpochLedger ledger(/*cells=*/2, /*lag_epochs=*/2);
  EXPECT_DEATH(ledger.begin_epoch(0, 1),
               "WDC invariant violated.*out of order");
  ledger.begin_epoch(0, 0);
  EXPECT_DEATH(ledger.complete_epoch(0, 1, 0),
               "WDC invariant violated.*out of order");
#endif
}

}  // namespace
}  // namespace wdc
