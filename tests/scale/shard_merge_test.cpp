#include <gtest/gtest.h>

#include <cstdint>

#include "engine/digest.hpp"
#include "engine/run_stats.hpp"
#include "engine/sharded.hpp"
#include "engine/simulation.hpp"
#include "scale_scenario.hpp"

/// Ordered metrics-merge proofs (ctest label `scale`).
///
/// The collector folds per-cell RunStats in fixed cell order 0..C-1 — that
/// ordering (not commutativity of float reductions) is what makes the merged
/// digest permutation-proof: any executor/thread schedule produces the same
/// fold. These tests pin the fold's building blocks: merging into an empty
/// snapshot is a bit-exact copy (the C=1 identity), the sharded result equals
/// a manual ordered fold over the white-box cells, and epoch-stepped
/// execution is bit-identical to one-shot execution.

namespace wdc {
namespace {

TEST(ShardMerge, MergeIntoEmptySnapshotIsBitExact) {
  Simulation sim(golden_scenario(ProtocolKind::kTs));
  const Metrics direct = sim.run();
  RunStats total;
  total.merge(sim.run_stats());
  const Metrics folded = finalize_run(sim.scenario(), total);
  EXPECT_EQ(metrics_digest(folded), metrics_digest(direct))
      << "one-cell fold must reproduce the un-merged metrics bit-for-bit";
}

TEST(ShardMerge, ShardedResultEqualsManualOrderedFold) {
  Scenario s = scale_scenario(ProtocolKind::kHyb);
  s.shards = 4;
  s.shard_threads = 2;
  ShardedSimulation sim(s);
  const Metrics merged = sim.run();

  RunStats total;
  for (std::uint32_t c = 0; c < sim.num_cells(); ++c)
    total.merge(sim.cell(c).run_stats());
  EXPECT_EQ(metrics_digest(finalize_run(s, total)), metrics_digest(merged));
}

TEST(ShardMerge, CountersAggregateExactlyAcrossCells) {
  Scenario s = scale_scenario(ProtocolKind::kTs);
  s.shards = 2;
  s.shard_threads = 2;
  ShardedSimulation sim(s);
  const Metrics merged = sim.run();

  std::uint64_t queries = 0, answered = 0, uplink = 0, clients = 0;
  for (std::uint32_t c = 0; c < sim.num_cells(); ++c) {
    const RunStats rs = sim.cell(c).run_stats();
    queries += rs.sink.queries();
    answered += rs.sink.answered();
    uplink += rs.uplink_requests;
    clients += rs.clients;
  }
  EXPECT_EQ(merged.queries, queries);
  EXPECT_EQ(merged.answered, answered);
  EXPECT_EQ(merged.uplink_requests, uplink);
  EXPECT_EQ(clients, s.num_clients);
  EXPECT_EQ(merged.hits + merged.misses, merged.answered);
}

TEST(ShardMerge, CellSpansPartitionThePopulationContiguously) {
  for (const std::uint32_t cells : {1u, 2u, 4u, 8u, 7u}) {
    for (const std::uint32_t clients : {8u, 96u, 97u, 1000u}) {
      if (cells > clients) continue;
      std::uint32_t next = 0;
      for (std::uint32_t c = 0; c < cells; ++c) {
        const ClientSpan span = ShardedSimulation::cell_span(c, cells, clients);
        EXPECT_EQ(span.begin, next) << cells << " cells, " << clients
                                    << " clients, cell " << c;
        EXPECT_GE(span.size(), clients / cells);
        EXPECT_LE(span.size(), clients / cells + 1);
        next = span.end;
      }
      EXPECT_EQ(next, clients);
    }
  }
}

/// Why C=1 golden identity holds: Simulator::run_until is inclusive of its
/// limit, so stepping the legacy engine on the sharded core's epoch grid
/// executes the identical event sequence as one uninterrupted run.
TEST(ShardMerge, EpochSteppedRunIsBitIdenticalToOneShotRun) {
  const Scenario s = golden_scenario(ProtocolKind::kUir);
  Simulation stepped(s);
  const double epoch_s = s.proto.ir_interval_s;
  for (double t = epoch_s; t < s.sim_time_s; t += epoch_s)
    stepped.run_until(t);
  stepped.run_until(s.sim_time_s);
  Simulation oneshot(s);
  const Metrics reference = oneshot.run();
  EXPECT_EQ(metrics_digest(stepped.collect()), metrics_digest(reference));
}

/// Per-client randomness is pinned to the GLOBAL client index: the cell that
/// owns a client derives the same streams the legacy full-span construction
/// would have given it (out-of-span draws are burned in legacy order).
TEST(ShardMerge, ClientSpansPreserveGlobalRngStreams) {
  Scenario s = scale_scenario(ProtocolKind::kTs);
  s.shard_cells = 1;  // construct single cells directly
  const ClientSpan span = ShardedSimulation::cell_span(2, 4, s.num_clients);
  Simulation cell(s, span);
  EXPECT_EQ(cell.num_clients(), span.size());
  EXPECT_EQ(cell.span().begin, span.begin);
  EXPECT_EQ(cell.global_client_id(0), span.begin);
  // Same scenario, same span, fresh construction: the derived streams are a
  // pure function of (seed, global index), so a rebuilt cell runs identically.
  Simulation cell2(s, span);
  cell.run_until(60.0);
  cell2.run_until(60.0);
  EXPECT_EQ(metrics_digest(cell.collect()), metrics_digest(cell2.collect()));
}

}  // namespace
}  // namespace wdc
