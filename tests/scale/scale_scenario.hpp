#ifndef WDC_TESTS_SCALE_SCALE_SCENARIO_HPP
#define WDC_TESTS_SCALE_SCALE_SCENARIO_HPP

/// Shared operating point of the `-L scale` tier: a population large enough
/// that 8-way sharding leaves every cell a real simulation (12 clients), yet
/// cheap enough to run 4 executor/thread combinations for all 11 protocols in
/// every ctest invocation.
///
/// WDC_SCALE_PROTOCOLS=<csv of protocol names> narrows the parameterized
/// suites (the TSan CI job sets it — sanitized shard threads are ~10× slower,
/// and three protocols already exercise every barrier path).

#include <cstdlib>
#include <string>
#include <vector>

#include "engine/scenario.hpp"
#include "golden_table.hpp"
#include "util/string_util.hpp"

namespace wdc {

inline Scenario scale_scenario(ProtocolKind p) {
  Scenario s;
  s.protocol = p;
  s.seed = 777;
  s.num_clients = 96;
  s.db.num_items = 120;
  s.sim_time_s = 120.0;
  s.warmup_s = 30.0;
  s.sleep.sleep_ratio = 0.1;
  s.traffic.offered_bps = 10e3;
  s.shard_cells = 8;
  return s;
}

/// kGolden filtered by WDC_SCALE_PROTOCOLS (all entries when unset).
inline std::vector<GoldenEntry> scale_entries() {
  std::vector<GoldenEntry> out(std::begin(kGolden), std::end(kGolden));
  const char* env = std::getenv("WDC_SCALE_PROTOCOLS");
  if (env == nullptr || *env == '\0') return out;
  std::vector<GoldenEntry> picked;
  for (const auto& tok : split(env, ',')) {
    const std::string name(trim(tok));
    if (name.empty()) continue;
    const ProtocolKind p = protocol_from_string(name);
    for (const auto& e : out)
      if (e.protocol == p) picked.push_back(e);
  }
  return picked.empty() ? out : picked;
}

}  // namespace wdc

#endif  // WDC_TESTS_SCALE_SCALE_SCENARIO_HPP
