#include <gtest/gtest.h>

#include <cstdint>

#include "engine/digest.hpp"
#include "engine/replication.hpp"
#include "engine/sharded.hpp"
#include "engine/simulation.hpp"
#include "scale_scenario.hpp"
#include "util/config.hpp"

/// Shard-invariance proofs (ctest label `scale`).
///
/// The sharded core's determinism contract: results are a pure function of
/// (scenario, seed, shard map) — `shards` (executors) and `shard_threads`
/// (OS threads) are pure execution knobs. Every protocol runs the scaled
/// 8-cell operating point under K ∈ {1,2,4,8} executors and {1,2,4} threads
/// and must digest bit-identically; and at shard_cells=1 the sharded engine
/// must reproduce the 11 pinned golden digests of the legacy serial engine
/// exactly (golden_table.hpp).

namespace wdc {
namespace {

std::uint64_t digest_with(ProtocolKind p, std::uint32_t shards,
                          std::uint32_t threads) {
  Scenario s = scale_scenario(p);
  s.shards = shards;
  s.shard_threads = threads;
  return metrics_digest(run_scenario(s));
}

class ShardInvariance : public ::testing::TestWithParam<GoldenEntry> {};

TEST_P(ShardInvariance, DigestIndependentOfExecutorsAndThreads) {
  const ProtocolKind p = GetParam().protocol;
  const std::uint64_t ref = digest_with(p, /*shards=*/1, /*threads=*/1);
  // Covers K ∈ {1,2,4,8} and thread counts ∈ {1,2,4}.
  const struct {
    std::uint32_t shards, threads;
  } grid[] = {{2, 2}, {4, 4}, {8, 2}};
  for (const auto& g : grid) {
    EXPECT_EQ(digest_with(p, g.shards, g.threads), ref)
        << to_string(p) << " digest changed at shards=" << g.shards
        << " shard_threads=" << g.threads
        << " — execution knobs leaked into the result";
  }
}

/// K=1 bit-identity: the sharded engine at one cell IS the legacy serial
/// simulation — same seed chain, same event order, same pinned digest. This
/// also proves epoch-stepped run_until is bit-identical to one-shot run().
TEST_P(ShardInvariance, SingleCellReproducesGoldenPinBitIdentically) {
  const GoldenEntry& expect = GetParam();
  Scenario s = golden_scenario(expect.protocol);  // shard_cells = 1
  ShardedSimulation sim(s);
  EXPECT_EQ(metrics_digest(sim.run()), expect.digest)
      << to_string(expect.protocol)
      << " sharded engine at shard_cells=1 drifted from the golden pin";
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndBaselines, ShardInvariance,
    ::testing::ValuesIn(scale_entries()),
    [](const ::testing::TestParamInfo<GoldenEntry>& tpi) {
      return to_string(tpi.param.protocol);
    });

TEST(ShardDispatch, RunScenarioRoutesShardedScenariosThroughShardedCore) {
  Scenario s = scale_scenario(ProtocolKind::kTs);
  s.shards = 4;
  ASSERT_TRUE(s.sharded());
  const Metrics via_dispatch = run_scenario(s);
  ShardedSimulation sim(s);
  EXPECT_EQ(metrics_digest(sim.run()), metrics_digest(via_dispatch));
}

TEST(ShardDispatch, ScenarioKeysParseAndValidate) {
  Config c;
  c.set("shard_cells", "8");
  c.set("shards", "4");
  c.set("shard_threads", "2");
  c.set("shard_lag", "2");
  const Scenario s = Scenario::from_config(c);
  EXPECT_EQ(s.shard_cells, 8u);
  EXPECT_EQ(s.shards, 4u);
  EXPECT_EQ(s.shard_threads, 2u);
  EXPECT_EQ(s.shard_lag, 2u);
  EXPECT_TRUE(s.sharded());
  EXPECT_TRUE(c.unused_keys().empty());

  Scenario bad = s;
  bad.shard_cells = bad.num_clients + 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = s;
  bad.shard_lag = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = s;
  bad.shards = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

/// The bounded lag itself is execution-only: any lag >= 1 admits the same
/// per-cell event order, so widening the window must not move the digest.
TEST(ShardDispatch, LagWindowIsExecutionOnly) {
  Scenario s = scale_scenario(ProtocolKind::kUir);
  s.shards = 4;
  s.shard_threads = 2;
  const std::uint64_t ref = metrics_digest(run_scenario(s));
  s.shard_lag = 3;
  EXPECT_EQ(metrics_digest(run_scenario(s)), ref);
}

/// Replication layer inherits the sharded path through run_scenario: per-rep
/// digests stay independent of the replication pool size with shard threads
/// nested inside each worker.
TEST(ShardDispatch, ReplicationThreadIndependenceWithNestedShardThreads) {
  Scenario s = scale_scenario(ProtocolKind::kTs);
  s.shards = 4;
  s.shard_threads = 2;
  const auto one = run_replications(s, /*reps=*/2, /*threads=*/1);
  const auto many = run_replications(s, /*reps=*/2, /*threads=*/2);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i)
    EXPECT_EQ(metrics_digest(one[i]), metrics_digest(many[i]))
        << "replication " << i << " depends on the worker pool size";
}

}  // namespace
}  // namespace wdc
