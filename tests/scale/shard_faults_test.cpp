#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "engine/digest.hpp"
#include "engine/simulation.hpp"
#include "faults/fault_injector.hpp"
#include "scale_scenario.hpp"

/// Fault accounting under sharding (ctest label `scale`).
///
/// Each cell owns its own FaultInjector over its local client span, so the
/// `-L faults` tier's accounting identities must survive the per-cell split
/// and ordered re-merge: the consistency oracle (zero stale serves, CBL
/// exempt), closed hit/miss accounting, churn lifecycle ordering, and the
/// loss ledgers. Faulted sharded runs must also stay deterministic and
/// executor/thread-invariant — faults are part of the scenario, not of the
/// execution schedule.

namespace wdc {
namespace {

#if WDC_FAULTS_ENABLED

/// One fixed lossy schedule (loss + drops + churn all active) so failures
/// reproduce without a seed hunt.
FaultConfig lossy_fault_config() {
  FaultConfig f;
  f.enabled = true;
  f.loss_mode = FaultLossMode::kBernoulli;
  f.ir_loss = 0.3;
  f.bcast_loss = 0.1;
  f.uplink_drop = 0.2;
  f.backoff_mult = 2.0;
  f.backoff_cap_s = 60.0;
  f.churn_rate = 1.0 / 150.0;
  f.churn_mean_down_s = 20.0;
  f.rejoin = RejoinPolicy::kSuspect;
  f.validate();
  return f;
}

Scenario faulted_scale_scenario(ProtocolKind p) {
  Scenario s = scale_scenario(p);
  s.faults = lossy_fault_config();
  s.shards = 4;
  s.shard_threads = 2;
  return s;
}

void check_invariants(const Scenario& s, const Metrics& m) {
  // The consistency oracle holds per cell, hence over the merged counters:
  // CBL is exempt by design (leases bound, not eliminate, staleness).
  if (s.protocol != ProtocolKind::kCbl) {
    EXPECT_EQ(m.stale_serves, 0u);
  }

  EXPECT_EQ(m.hits + m.misses, m.answered);
  EXPECT_LE(m.answered + m.dropped_queries, m.queries);

  for (const double r : {m.hit_ratio, m.report_loss_rate, m.mac_busy_frac,
                         m.radio_on_frac}) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }

  EXPECT_LE(m.recoveries, m.churn_rejoins);
  EXPECT_LE(m.churn_rejoins, m.churn_events);
  EXPECT_GE(m.mean_recovery_s, 0.0);
  EXPECT_TRUE(std::isfinite(m.mean_recovery_s));
  if (m.recoveries == 0) {
    EXPECT_EQ(m.mean_recovery_s, 0.0);
  }
}

class ShardFaults : public ::testing::TestWithParam<GoldenEntry> {};

TEST_P(ShardFaults, AccountingIdentitiesHoldUnderShardedExecution) {
  const Scenario s = faulted_scale_scenario(GetParam().protocol);
  SCOPED_TRACE(to_string(s.protocol));
  check_invariants(s, run_scenario(s));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndBaselines, ShardFaults,
    ::testing::ValuesIn(scale_entries()),
    [](const ::testing::TestParamInfo<GoldenEntry>& tpi) {
      return to_string(tpi.param.protocol);
    });

TEST(ShardFaults, FaultedShardedRunsAreDeterministic) {
  const Scenario s = faulted_scale_scenario(ProtocolKind::kTs);
  const Metrics a = run_scenario(s);
  const Metrics b = run_scenario(s);
  EXPECT_EQ(metrics_digest(a), metrics_digest(b))
      << "same scenario + same fault schedule must be bit-identical under "
         "sharded execution";
  EXPECT_EQ(a.fault_ir_drops, b.fault_ir_drops);
  EXPECT_EQ(a.churn_events, b.churn_events);
  EXPECT_EQ(a.recoveries, b.recoveries);
}

TEST(ShardFaults, FaultedDigestIndependentOfExecutorsAndThreads) {
  Scenario s = faulted_scale_scenario(ProtocolKind::kLair);
  s.shards = 1;
  s.shard_threads = 1;
  const std::uint64_t ref = metrics_digest(run_scenario(s));
  const struct {
    std::uint32_t shards, threads;
  } grid[] = {{4, 2}, {8, 4}};
  for (const auto& g : grid) {
    s.shards = g.shards;
    s.shard_threads = g.threads;
    EXPECT_EQ(metrics_digest(run_scenario(s)), ref)
        << "faulted digest changed at shards=" << g.shards
        << " shard_threads=" << g.threads;
  }
}

TEST(ShardFaults, ChurnActivityActuallyExercisedAtTheScalePoint) {
  // Guard against the tier silently degenerating: the fixed schedule must
  // inject real churn and real drops, otherwise the identities above are
  // vacuous.
  const Metrics m = run_scenario(faulted_scale_scenario(ProtocolKind::kTs));
  EXPECT_GT(m.churn_events, 0u);
  EXPECT_GT(m.fault_ir_drops, 0u);
}

#else  // !WDC_FAULTS_ENABLED

TEST(ShardFaults, SkippedWhenFaultLayerCompiledOut) {
  GTEST_SKIP() << "built with -DWDC_FAULTS=OFF";
}

#endif  // WDC_FAULTS_ENABLED

}  // namespace
}  // namespace wdc
