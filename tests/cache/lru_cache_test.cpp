#include "cache/lru_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace wdc {
namespace {

CacheEntry entry(ItemId id, Version v = 1, SimTime vt = 0.0) {
  return CacheEntry{id, v, vt, vt};
}

TEST(LruCache, RejectsZeroCapacity) {
  EXPECT_THROW(LruCache(0), std::invalid_argument);
}

TEST(LruCache, PutThenGet) {
  LruCache c(4);
  c.put(entry(1, 7, 3.0));
  CacheEntry* e = c.get(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, 7u);
  EXPECT_DOUBLE_EQ(e->version_time, 3.0);
  EXPECT_EQ(c.size(), 1u);
}

TEST(LruCache, GetMissReturnsNull) {
  LruCache c(4);
  EXPECT_EQ(c.get(5), nullptr);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(LruCache, PutOverwritesExisting) {
  LruCache c(4);
  c.put(entry(1, 1));
  c.put(entry(1, 2));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.get(1)->version, 2u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache c(2);
  c.put(entry(1));
  c.put(entry(2));
  const auto victim = c.put(entry(3));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);
  EXPECT_EQ(c.peek(1), nullptr);
  EXPECT_NE(c.peek(2), nullptr);
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(LruCache, GetRefreshesRecency) {
  LruCache c(2);
  c.put(entry(1));
  c.put(entry(2));
  c.get(1);  // 1 becomes MRU; 2 is now LRU
  const auto victim = c.put(entry(3));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
}

TEST(LruCache, PeekDoesNotRefreshRecency) {
  LruCache c(2);
  c.put(entry(1));
  c.put(entry(2));
  c.peek(1);  // no recency change: 1 stays LRU
  const auto victim = c.put(entry(3));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);
}

TEST(LruCache, EraseRemoves) {
  LruCache c(4);
  c.put(entry(1));
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_EQ(c.size(), 0u);
}

TEST(LruCache, ClearEmptiesAndCounts) {
  LruCache c(4);
  c.put(entry(1));
  c.put(entry(2));
  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.clears(), 1u);
  c.clear();  // clearing empty cache is not counted
  EXPECT_EQ(c.clears(), 1u);
}

TEST(LruCache, RevalidateAllStampsEveryEntry) {
  LruCache c(4);
  c.put(entry(1, 1, 1.0));
  c.put(entry(2, 1, 2.0));
  c.revalidate_all(9.0);
  EXPECT_DOUBLE_EQ(c.peek(1)->validated_at, 9.0);
  EXPECT_DOUBLE_EQ(c.peek(2)->validated_at, 9.0);
  // version_time untouched
  EXPECT_DOUBLE_EQ(c.peek(1)->version_time, 1.0);
}

TEST(LruCache, ResidentListsAll) {
  LruCache c(4);
  c.put(entry(3));
  c.put(entry(1));
  auto ids = c.resident();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<ItemId>{1, 3}));
}

TEST(LruCache, RejectsInvalidId) {
  LruCache c(4);
  EXPECT_THROW(c.put(entry(kInvalidItem)), std::invalid_argument);
}

TEST(LruCache, HitMissCounters) {
  LruCache c(4);
  c.put(entry(1));
  c.get(1);
  c.get(2);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(LruCache, StressCapacityNeverExceeded) {
  LruCache c(16);
  for (ItemId i = 0; i < 1000; ++i) {
    c.put(entry(i % 64));
    ASSERT_LE(c.size(), 16u);
  }
  EXPECT_EQ(c.size(), 16u);
}

}  // namespace
}  // namespace wdc
