#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cache/lru_cache.hpp"
#include "util/rng.hpp"

/// Differential test of the slab/intrusive-list LruCache against a naive
/// vector reference (MRU-first ordering by explicit reordering), driven by a
/// randomized query/invalidate/evict script. The reference is obviously
/// correct; the cache must agree on every observable: presence, entry fields,
/// the full MRU→LRU order, the evicted victim of each put, and the lifetime
/// counters. Death tests then prove audit() catches seeded slab corruption,
/// injected through LruCacheTestPeer (a friend of LruCache).

namespace wdc {

struct LruCacheTestPeer {
  /// Point an id's index entry at the wrong slab slot.
  static void misdirect_index(LruCache& c, ItemId id) {
    c.index_[id] = (c.index_[id] + 1) % static_cast<std::uint32_t>(c.nodes_.size());
  }
  /// Snap a back-link in the recency list.
  static void break_back_link(LruCache& c) {
    c.nodes_[c.tail_].prev = LruCache::kNil;
  }
  /// Leak a node: claim one fewer resident entry than the list holds.
  static void deflate_size(LruCache& c) { --c.size_; }
};

namespace {

TEST(LruCacheModel, RandomScriptMatchesVectorReference) {
  constexpr std::size_t kCapacity = 8;
  constexpr ItemId kIdSpace = 24;  // small id space ⇒ frequent re-put/overwrite
  LruCache cache(kCapacity);
  std::vector<CacheEntry> model;  // front = MRU, back = LRU
  Rng rng(5150);
  std::uint64_t hits = 0, misses = 0, evictions = 0;

  const auto model_find = [&](ItemId id) {
    return std::find_if(model.begin(), model.end(),
                        [id](const CacheEntry& e) { return e.id == id; });
  };

  for (int step = 0; step < 20000; ++step) {
    const ItemId id = static_cast<ItemId>(rng.uniform_int(kIdSpace));
    const double u = rng.uniform();
    if (u < 0.35) {
      // Query: get() must agree with the model on presence and fields, and
      // promote the entry to MRU on a hit.
      CacheEntry* got = cache.get(id);
      const auto it = model_find(id);
      if (it == model.end()) {
        EXPECT_EQ(got, nullptr);
        ++misses;
      } else {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(got->id, it->id);
        EXPECT_EQ(got->version, it->version);
        EXPECT_DOUBLE_EQ(got->version_time, it->version_time);
        EXPECT_DOUBLE_EQ(got->validated_at, it->validated_at);
        std::rotate(model.begin(), it, it + 1);  // promote to front
        ++hits;
      }
    } else if (u < 0.65) {
      // Put (fetch after a miss, or refresh): insert/overwrite at MRU; the
      // victim, if any, must be the model's LRU tail.
      CacheEntry e;
      e.id = id;
      e.version = static_cast<Version>(step);
      e.version_time = 0.25 * step;
      e.validated_at = 0.25 * step;
      const auto victim = cache.put(e);
      if (const auto it = model_find(id); it != model.end()) {
        *it = e;
        std::rotate(model.begin(), it, it + 1);
        EXPECT_FALSE(victim.has_value());
      } else {
        model.insert(model.begin(), e);
        if (model.size() > kCapacity) {
          ASSERT_TRUE(victim.has_value());
          EXPECT_EQ(*victim, model.back().id);
          model.pop_back();
          ++evictions;
        } else {
          EXPECT_FALSE(victim.has_value());
        }
      }
    } else if (u < 0.85) {
      // Invalidate: erase() agrees on presence; recency of survivors intact.
      const auto it = model_find(id);
      EXPECT_EQ(cache.erase(id), it != model.end());
      if (it != model.end()) model.erase(it);
    } else if (u < 0.95) {
      // Report certifies the whole cache: stamps only move forward.
      const double stamp = 0.25 * step;
      cache.revalidate_all(stamp);
      for (auto& e : model) e.validated_at = std::max(e.validated_at, stamp);
    } else {
      // Losing report continuity drops everything.
      cache.clear();
      model.clear();
    }

    ASSERT_EQ(cache.size(), model.size());
    if (step % 250 == 0) {
      // Full-order comparison: resident() documents MRU→LRU order.
      const auto ids = cache.resident();
      ASSERT_EQ(ids.size(), model.size());
      for (std::size_t i = 0; i < ids.size(); ++i)
        ASSERT_EQ(ids[i], model[i].id) << "MRU order diverged at rank " << i;
      for (const auto& e : model) {
        const CacheEntry* p = cache.peek(e.id);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->version, e.version);
        EXPECT_DOUBLE_EQ(p->validated_at, e.validated_at);
      }
      cache.audit();
    }
  }

  EXPECT_EQ(cache.hits(), hits);
  EXPECT_EQ(cache.misses(), misses);
  EXPECT_EQ(cache.evictions(), evictions);
}

using LruCacheDeathTest = ::testing::Test;

TEST(LruCacheDeathTest, AuditCatchesMisdirectedIndex) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        LruCache c(4);
        for (ItemId id = 0; id < 3; ++id) c.put({id, 1, 0.0, 0.0});
        LruCacheTestPeer::misdirect_index(c, 1);
        c.audit();
      },
      "WDC invariant violated");
#endif
}

TEST(LruCacheDeathTest, AuditCatchesBrokenBackLink) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        LruCache c(4);
        for (ItemId id = 0; id < 3; ++id) c.put({id, 1, 0.0, 0.0});
        LruCacheTestPeer::break_back_link(c);
        c.audit();
      },
      "WDC invariant violated");
#endif
}

TEST(LruCacheDeathTest, AuditCatchesDeflatedSize) {
#if !WDC_CHECKS_ENABLED
  GTEST_SKIP() << "WDC checks compiled out of this build";
#else
  EXPECT_DEATH(
      {
        LruCache c(4);
        for (ItemId id = 0; id < 3; ++id) c.put({id, 1, 0.0, 0.0});
        LruCacheTestPeer::deflate_size(c);
        c.audit();
      },
      "WDC invariant violated");
#endif
}

}  // namespace
}  // namespace wdc
