/// Loopback end-to-end tests for the wdc_serve daemon core: an in-process
/// ServeApp on its own thread, exercised through the LoadDriver and through
/// raw blocking sockets (partial writes, corrupt frames, idle connections).
///
/// The big-fleet runs (≥1000 concurrent connections per protocol) live in the
/// serve_load_<protocol> script tests next to this file; these cases cover
/// the behavioural contracts at a size every ctest invocation can afford:
/// every request answered for all 11 protocols, framing survives arbitrary
/// write granularity, damage and idleness close connections instead of
/// wedging them, backpressure sheds instead of buffering without bound, and
/// the measured latency decomposition telescopes exactly.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/load_driver.hpp"
#include "net/serve_app.hpp"
#include "proto/protocol.hpp"
#include "proto/serve_codec.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_span.hpp"

namespace wdc::net {
namespace {

std::string uds_path(const std::string& name) {
  return "/tmp/wdc_e2e_" + std::to_string(::getpid()) + "_" + name + ".sock";
}

Scenario small_scenario(ProtocolKind protocol) {
  Scenario s;
  s.protocol = protocol;
  s.seed = 7;
  s.num_clients = 32;
  s.traffic.model = TrafficModel::kOff;
  return s;
}

ServeConfig serve_config(ProtocolKind protocol, const std::string& name) {
  ServeConfig cfg;
  cfg.unix_path = uds_path(name);
  cfg.time_scale = 20.0;  // compress report schedules for the test clock
  cfg.scenario = small_scenario(protocol);
  return cfg;
}

/// ServeApp::run() on its own thread; stop() joins (idempotent).
struct RunningApp {
  std::unique_ptr<ServeApp> app;
  std::thread thread;

  explicit RunningApp(ServeConfig cfg) {
    app = std::make_unique<ServeApp>(std::move(cfg));
    std::string error;
    started = app->start(&error);
    EXPECT_TRUE(started) << error;
    if (started) thread = std::thread([this] { app->run(); });
  }
  ~RunningApp() { stop(); }
  void stop() {
    if (thread.joinable()) {
      app->request_stop();
      thread.join();
    }
  }
  bool started = false;
};

LoadConfig load_config(const ServeConfig& sc) {
  LoadConfig lc;
  lc.unix_path = sc.unix_path;
  lc.connections = 8;
  lc.max_in_flight = 2;
  lc.requests_per_conn = 10;
  lc.seed = 11;
  return lc;
}

// --- raw blocking-socket helpers (test-side client) ---

int unix_dial(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  timeval tv{5, 0};  // keep a misbehaving server from hanging the test
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

void write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    ASSERT_GT(w, 0);
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void write_framed(int fd, const std::vector<std::uint8_t>& payload) {
  const auto framed = frame_encode(payload);
  write_all(fd, framed.data(), framed.size());
}

/// Read exactly n bytes; false on EOF (or timeout).
bool read_exact(int fd, std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

/// Read one length-prefixed frame payload; false on EOF.
bool read_framed(int fd, std::vector<std::uint8_t>* out) {
  std::uint32_t len = 0;
  if (!read_exact(fd, reinterpret_cast<std::uint8_t*>(&len), sizeof len))
    return false;
  out->resize(len);
  return len == 0 || read_exact(fd, out->data(), len);
}

/// Read serve frames until one of `kind` arrives; false on EOF first.
bool read_until_kind(int fd, ServeWireKind kind, ServeMessage* out) {
  std::vector<std::uint8_t> frame;
  while (read_framed(fd, &frame)) {
    ServeMessage m;
    if (!decode_serve(frame, &m)) return false;
    if (m.kind == kind) {
      *out = m;
      return true;
    }
  }
  return false;
}

ServeMessage hello(std::uint32_t nonce) {
  ServeMessage m;
  m.kind = ServeWireKind::kHello;
  m.client_nonce = nonce;
  return m;
}

TEST(ServeE2E, AllProtocolsAnswerEveryRequest) {
  for (const ProtocolKind protocol : kAllProtocolsAndBaselines) {
    SCOPED_TRACE(to_string(protocol));
    const ServeConfig sc = serve_config(protocol, "all");
    RunningApp server(sc);
    ASSERT_TRUE(server.started);

    LoadConfig lc = load_config(sc);
    if (protocol == ProtocolKind::kPer) lc.poll_fraction = 0.25;
    LoadDriver driver(lc);
    std::string error;
    ASSERT_TRUE(driver.run(&error)) << error;
    const LoadReport& r = driver.report();
    EXPECT_EQ(r.conn_failures, 0u);
    EXPECT_EQ(r.ops_sent(), 80u);
    EXPECT_EQ(r.dropped(), 0u) << "unanswered ops under "
                               << to_string(protocol);

    server.stop();
    const ServeStats& stats = server.app->stats();
    EXPECT_EQ(stats.hellos, 8u);
    EXPECT_EQ(stats.dropped_answers, 0u);
    EXPECT_EQ(stats.decode_errors, 0u);
    EXPECT_EQ(stats.shed_connections, 0u);
    EXPECT_EQ(stats.requests + stats.polls, 80u);
    EXPECT_EQ(stats.answers, 80u);  // poll acks count as answers too
  }
}

TEST(ServeE2E, ByteAtATimeWritesReassemble) {
  // The server must reassemble a frame fed one byte per write() — the frame
  // decoder's partial-read contract, proven over a real socket.
  const ServeConfig sc = serve_config(ProtocolKind::kTs, "partial");
  RunningApp server(sc);
  ASSERT_TRUE(server.started);

  const int fd = unix_dial(sc.unix_path);
  ASSERT_GE(fd, 0);
  const auto framed = frame_encode(encode_serve(hello(0x5eed)));
  for (const std::uint8_t b : framed) write_all(fd, &b, 1);

  ServeMessage ack;
  ASSERT_TRUE(read_until_kind(fd, ServeWireKind::kHelloAck, &ack));
  EXPECT_EQ(ack.client_nonce, 0x5eedu);
  EXPECT_EQ(ack.protocol,
            static_cast<std::uint8_t>(ProtocolKind::kTs));
  EXPECT_EQ(ack.num_items, sc.scenario.db.num_items);

  // And a request over the same drip-fed connection still gets its item.
  ServeMessage req;
  req.kind = ServeWireKind::kRequest;
  req.item = 3;
  req.seq = 1;
  const auto req_framed = frame_encode(encode_serve(req));
  for (const std::uint8_t b : req_framed) write_all(fd, &b, 1);
  ServeMessage item;
  ASSERT_TRUE(read_until_kind(fd, ServeWireKind::kItem, &item));
  EXPECT_EQ(item.item, 3u);
  ::close(fd);
}

TEST(ServeE2E, CorruptFrameClosesTheConnection) {
  const ServeConfig sc = serve_config(ProtocolKind::kTs, "corrupt");
  RunningApp server(sc);
  ASSERT_TRUE(server.started);

  const int fd = unix_dial(sc.unix_path);
  ASSERT_GE(fd, 0);
  write_framed(fd, encode_serve(hello(1)));
  ServeMessage ack;
  ASSERT_TRUE(read_until_kind(fd, ServeWireKind::kHelloAck, &ack));

  // A well-framed payload that is not a serve message: decode error → close.
  write_framed(fd, {0xde, 0xad, 0xbe, 0xef});
  ServeMessage unused;
  EXPECT_FALSE(read_until_kind(fd, ServeWireKind::kItem, &unused));  // EOF
  ::close(fd);

  server.stop();
  EXPECT_GE(server.app->stats().decode_errors, 1u);
  EXPECT_EQ(server.app->active_connections(), 0u);
}

TEST(ServeE2E, OversizedDeclaredLengthClosesTheConnection) {
  const ServeConfig sc = serve_config(ProtocolKind::kTs, "oversize");
  RunningApp server(sc);
  ASSERT_TRUE(server.started);

  const int fd = unix_dial(sc.unix_path);
  ASSERT_GE(fd, 0);
  const std::uint32_t huge = 0xffffffffu;
  write_all(fd, reinterpret_cast<const std::uint8_t*>(&huge), sizeof huge);
  ServeMessage unused;
  EXPECT_FALSE(read_until_kind(fd, ServeWireKind::kHelloAck, &unused));
  ::close(fd);

  server.stop();
  EXPECT_GE(server.app->stats().decode_errors, 1u);
}

TEST(ServeE2E, IdleConnectionIsReadTimedOut) {
  ServeConfig sc = serve_config(ProtocolKind::kTs, "idle");
  sc.read_timeout_s = 0.3;
  RunningApp server(sc);
  ASSERT_TRUE(server.started);

  const int fd = unix_dial(sc.unix_path);
  ASSERT_GE(fd, 0);
  write_framed(fd, encode_serve(hello(2)));
  ServeMessage ack;
  ASSERT_TRUE(read_until_kind(fd, ServeWireKind::kHelloAck, &ack));
  // Send nothing further: the sweep must close us (EOF before the 5 s
  // SO_RCVTIMEO guard trips).
  std::vector<std::uint8_t> frame;
  while (read_framed(fd, &frame)) {
  }
  ::close(fd);

  server.stop();
  EXPECT_GE(server.app->stats().read_timeouts, 1u);
}

TEST(ServeE2E, BackpressureShedsInsteadOfBuffering) {
  // Connection-level proof of the bounded write queue: a peer that never
  // reads gets frames shed once the backlog crosses the ceiling, the backlog
  // itself stays bounded, and `force` still admits the final shed notice.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int small = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
  ASSERT_TRUE(set_nonblocking(fds[0]));
  ASSERT_TRUE(set_nonblocking(fds[1]));

  constexpr std::size_t kCeiling = 16 * 1024;
  Connection conn(FdGuard{fds[0]}, kMaxFramePayload, kCeiling);
  const std::vector<std::uint8_t> chunk(2048, 0xab);
  bool shed = false;
  for (int i = 0; i < 1000 && !shed; ++i)
    shed = conn.queue_frame(chunk) == Connection::QueueResult::kShed;
  ASSERT_TRUE(shed) << "backlog never crossed the ceiling";
  EXPECT_GE(conn.frames_shed(), 1u);
  EXPECT_LE(conn.backlog_bytes(),
            kCeiling + chunk.size() + kFrameHeaderBytes);
  EXPECT_EQ(conn.queue_frame(chunk, /*force=*/true),
            Connection::QueueResult::kQueued);

  // Drain the peer: the queue flushes and the watermark callback fires
  // exactly when the kernel has accepted every queued byte.
  bool flushed_all = false;
  conn.on_flushed(conn.bytes_queued(), [&flushed_all] { flushed_all = true; });
  std::uint8_t sink[8192];
  while (conn.wants_write()) {
    ASSERT_EQ(conn.flush(), Connection::IoResult::kOk);
    while (::recv(fds[1], sink, sizeof sink, 0) > 0) {
    }
  }
  EXPECT_TRUE(flushed_all);
  EXPECT_EQ(conn.backlog_bytes(), 0u);
  ::close(fds[1]);
}

TEST(ServeE2E, MeasuredDecompositionTelescopesExactly) {
  // Every answered request's four measured parts must sum to its measured
  // latency — the last part is defined as the residual, so failure here
  // means the stamp chain lost monotonicity or derive_spans mispaired.
  ServeConfig sc = serve_config(ProtocolKind::kAt, "trace");
  sc.trace_path = "/tmp/wdc_e2e_" + std::to_string(::getpid()) + ".wdct";
  RunningApp server(sc);
  ASSERT_TRUE(server.started);

  LoadConfig lc = load_config(sc);
  lc.connections = 4;
  lc.max_in_flight = 1;
  lc.requests_per_conn = 25;
  LoadDriver driver(lc);
  std::string error;
  ASSERT_TRUE(driver.run(&error)) << error;
  EXPECT_EQ(driver.report().dropped(), 0u);
  server.stop();  // closes the trace file

  TraceFile tf;
  ASSERT_TRUE(read_trace_file(sc.trace_path, &tf, &error)) << error;
  EXPECT_EQ(tf.protocol(), std::string(to_string(ProtocolKind::kAt)));
  const auto spans = derive_spans(tf.events);
  std::size_t answered = 0;
  for (const QuerySpan& s : spans) {
    if (s.dropped) continue;
    ++answered;
    const double latency = s.latency_s();
    const double sum = s.parts.ir_wait_s + s.parts.uplink_s +
                       s.parts.bcast_wait_s + s.parts.airtime_s;
    EXPECT_GE(s.parts.ir_wait_s, 0.0);
    EXPECT_GE(s.parts.uplink_s, 0.0);
    EXPECT_GE(s.parts.bcast_wait_s, 0.0);
    EXPECT_GE(s.parts.airtime_s, 0.0);
    EXPECT_NEAR(sum, latency, 1e-6 + 1e-9 * latency);
  }
  EXPECT_EQ(answered, 100u);
  ::unlink(sc.trace_path.c_str());
}

}  // namespace
}  // namespace wdc::net
