/// Frame-layer tests: the length-prefixed reassembler under the serve codec.
///
/// Mirrors the report_codec corruption discipline one layer down — truncated
/// length prefixes, oversized declared lengths rejected before any payload
/// allocation, bit-flip storms over the header bytes, and byte-at-a-time
/// reassembly — because a TCP stream deals damage in different units than a
/// decoded frame (partial reads, not flipped fields).

#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "util/rng.hpp"

namespace wdc::net {
namespace {

std::vector<std::uint8_t> payload_of(std::size_t size, std::uint8_t fill) {
  std::vector<std::uint8_t> p(size);
  std::iota(p.begin(), p.end(), fill);
  return p;
}

std::vector<std::uint8_t> stream_of(
    const std::vector<std::vector<std::uint8_t>>& payloads) {
  std::vector<std::uint8_t> stream;
  for (const auto& p : payloads) {
    const auto f = frame_encode(p);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  return stream;
}

TEST(FrameDecoder, WholeFramesRoundTrip) {
  const std::vector<std::vector<std::uint8_t>> payloads = {
      payload_of(1, 7), payload_of(0, 0), payload_of(1000, 3)};
  const auto stream = stream_of(payloads);
  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(stream.data(), stream.size()));
  EXPECT_EQ(dec.frames_ready(), 3u);
  for (const auto& expect : payloads) {
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(dec.next(&got));
    EXPECT_EQ(got, expect);
  }
  std::vector<std::uint8_t> extra;
  EXPECT_FALSE(dec.next(&extra));
  EXPECT_EQ(dec.partial_bytes(), 0u);
}

TEST(FrameDecoder, ByteAtATimeReassembly) {
  // The length prefix itself can arrive one byte per read(); reassembly must
  // be byte-granular on both sides of the header boundary.
  const auto payloads = std::vector<std::vector<std::uint8_t>>{
      payload_of(5, 1), payload_of(257, 9)};
  const auto stream = stream_of(payloads);
  FrameDecoder dec;
  for (const std::uint8_t b : stream) ASSERT_TRUE(dec.feed(&b, 1));
  ASSERT_EQ(dec.frames_ready(), 2u);
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(dec.next(&got));
  EXPECT_EQ(got, payloads[0]);
  ASSERT_TRUE(dec.next(&got));
  EXPECT_EQ(got, payloads[1]);
}

TEST(FrameDecoder, TruncatedLengthPrefixStaysPending) {
  const auto frame = frame_encode(payload_of(32, 0));
  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(frame.data(), 2));  // half a length prefix
  EXPECT_EQ(dec.frames_ready(), 0u);
  EXPECT_EQ(dec.partial_bytes(), 2u);
  EXPECT_FALSE(dec.broken());
  // The rest of the stream completes the frame.
  ASSERT_TRUE(dec.feed(frame.data() + 2, frame.size() - 2));
  EXPECT_EQ(dec.frames_ready(), 1u);
}

TEST(FrameDecoder, TruncatedPayloadStaysPending) {
  const auto frame = frame_encode(payload_of(100, 0));
  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(frame.data(), kFrameHeaderBytes + 40));
  EXPECT_EQ(dec.frames_ready(), 0u);
  EXPECT_EQ(dec.partial_bytes(), 40u);
  EXPECT_FALSE(dec.broken());
}

TEST(FrameDecoder, OversizedDeclaredLengthRejectedBeforeAllocation) {
  // A hostile 4 GiB declaration must poison the stream at the header, with
  // zero payload bytes buffered — the ceiling check precedes any allocation.
  const std::uint32_t huge = 0xffffffffu;
  std::uint8_t header[kFrameHeaderBytes];
  std::memcpy(header, &huge, sizeof header);
  FrameDecoder dec(/*max_payload=*/1024);
  EXPECT_FALSE(dec.feed(header, sizeof header));
  EXPECT_TRUE(dec.broken());
  EXPECT_NE(dec.error().find("ceiling"), std::string::npos);
  EXPECT_EQ(dec.partial_bytes(), 0u);
}

TEST(FrameDecoder, ExactCeilingIsAccepted) {
  const auto payload = payload_of(1024, 0);
  const auto frame = frame_encode(payload);
  FrameDecoder dec(/*max_payload=*/1024);
  ASSERT_TRUE(dec.feed(frame.data(), frame.size()));
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(dec.next(&got));
  EXPECT_EQ(got.size(), 1024u);
}

TEST(FrameDecoder, PoisonIsPermanent) {
  // A stream that lied about a length has lost sync; nothing after the lie
  // can be trusted, even bytes that would parse as a valid frame.
  const std::uint32_t huge = 1u << 30;
  std::uint8_t header[kFrameHeaderBytes];
  std::memcpy(header, &huge, sizeof header);
  FrameDecoder dec(/*max_payload=*/4096);
  EXPECT_FALSE(dec.feed(header, sizeof header));
  const auto valid = frame_encode(payload_of(8, 0));
  EXPECT_FALSE(dec.feed(valid.data(), valid.size()));
  EXPECT_EQ(dec.frames_ready(), 0u);
  EXPECT_TRUE(dec.broken());
}

TEST(FrameDecoder, HeaderBitFlipsNeverOverAllocate) {
  // Flip every bit of the length prefix of a valid frame: each flip either
  // declares a length within the ceiling (decoder waits or completes a frame
  // of exactly that size) or poisons the stream. No outcome may buffer more
  // than ceiling bytes.
  constexpr std::size_t kCeiling = 4096;
  const auto frame = frame_encode(payload_of(64, 1));
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = frame;
      corrupted[i] = static_cast<std::uint8_t>(corrupted[i] ^ (1u << bit));
      FrameDecoder dec(kCeiling);
      dec.feed(corrupted.data(), corrupted.size());
      if (dec.broken()) {
        EXPECT_EQ(dec.partial_bytes(), 0u);
        continue;
      }
      EXPECT_LE(dec.partial_bytes(), kCeiling);
      std::vector<std::uint8_t> got;
      while (dec.next(&got)) EXPECT_LE(got.size(), kCeiling);
    }
  }
}

TEST(FrameDecoder, RandomMutationStorm) {
  // Randomized chunking + byte mutations over a multi-frame stream: the
  // decoder must never crash, never surface a frame above the ceiling, and
  // never buffer more than ceiling + header bytes.
  constexpr std::size_t kCeiling = 2048;
  Rng rng(0xf4a3e5);
  const auto clean = stream_of({payload_of(16, 0), payload_of(300, 5),
                                payload_of(0, 0), payload_of(900, 9)});
  for (int round = 0; round < 500; ++round) {
    auto stream = clean;
    const std::uint64_t mutations = 1 + rng.uniform_int(6);
    for (std::uint64_t m = 0; m < mutations; ++m)
      stream[rng.uniform_int(stream.size())] =
          static_cast<std::uint8_t>(rng.uniform_int(256));
    if (rng.bernoulli(0.3)) stream.resize(rng.uniform_int(stream.size() + 1));

    FrameDecoder dec(kCeiling);
    std::size_t pos = 0;
    bool ok = true;
    while (ok && pos < stream.size()) {
      const std::size_t chunk =
          1 + rng.uniform_int(std::min<std::size_t>(stream.size() - pos, 97));
      ok = dec.feed(stream.data() + pos, chunk);
      pos += chunk;
      EXPECT_LE(dec.partial_bytes(), kCeiling + kFrameHeaderBytes);
      std::vector<std::uint8_t> got;
      while (dec.next(&got)) EXPECT_LE(got.size(), kCeiling);
    }
    if (!ok) {
      EXPECT_TRUE(dec.broken());
      EXPECT_FALSE(dec.error().empty());
    }
  }
}

}  // namespace
}  // namespace wdc::net
