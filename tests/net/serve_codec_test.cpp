/// Round-trip and corruption tests for the serve envelope codec — the same
/// discipline as report_codec_test one layer up: every truncation prefix,
/// every single-bit flip, and a randomized mutation storm must decode cleanly
/// or fail with a reason, never crash or over-allocate (the sanitizer CI job
/// runs this file under ASan/UBSan).

#include "proto/serve_codec.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "proto/report_codec.hpp"
#include "proto/reports.hpp"
#include "proto/wire_bytes.hpp"
#include "util/rng.hpp"

namespace wdc {
namespace {

ServeMessage sample(ServeWireKind kind) {
  ServeMessage m;
  m.kind = kind;
  switch (kind) {
    case ServeWireKind::kHello:
      m.client_nonce = 0xfeedbeef;
      break;
    case ServeWireKind::kHelloAck:
      m.client_nonce = 0xfeedbeef;
      m.client_id = 41;
      m.num_items = 1000;
      m.protocol = 7;
      m.ir_interval_s = 20.0;
      break;
    case ServeWireKind::kRequest:
      m.item = 599;
      m.seq = 12;
      m.sent_at = 1234.5625;
      break;
    case ServeWireKind::kPoll:
      m.item = 3;
      m.version = 9001;
      m.seq = 13;
      m.sent_at = 77.25;
      break;
    case ServeWireKind::kBye:
      break;
    case ServeWireKind::kReport: {
      FullReport r;
      r.stamp = 120.25;
      r.updates = {{3, 61.5}, {17, 90.0}};
      m.report_frame = encode_report(r);
      break;
    }
    case ServeWireKind::kItem:
      m.item = 42;
      m.version = 5;
      m.content_time = 88.0;
      m.lease_s = 30.0;
      m.payload_bits = 65536;
      break;
    case ServeWireKind::kData:
      m.payload_bits = 1 << 20;
      break;
    case ServeWireKind::kInvalidate:
      m.item = 9;
      m.update_time = 301.5;
      break;
    case ServeWireKind::kPollAck:
      m.item = 3;
      m.version = 9002;
      m.content_time = 90.0;
      m.valid = true;
      break;
    case ServeWireKind::kShed:
      m.shed_reason = 1;
      break;
  }
  return m;
}

std::vector<std::vector<std::uint8_t>> all_samples() {
  std::vector<std::vector<std::uint8_t>> out;
  for (std::uint8_t k = 0; k <= kMaxServeWireKind; ++k)
    out.push_back(encode_serve(sample(static_cast<ServeWireKind>(k))));
  return out;
}

TEST(ServeCodec, EveryKindRoundTrips) {
  for (std::uint8_t k = 0; k <= kMaxServeWireKind; ++k) {
    const auto kind = static_cast<ServeWireKind>(k);
    const ServeMessage in = sample(kind);
    const auto bytes = encode_serve(in);
    ServeMessage out;
    std::string error;
    ASSERT_TRUE(decode_serve(bytes, &out, &error))
        << to_string(kind) << ": " << error;
    EXPECT_EQ(out.kind, kind);
    EXPECT_EQ(out.client_nonce, in.client_nonce);
    EXPECT_EQ(out.client_id, in.client_id);
    EXPECT_EQ(out.num_items, in.num_items);
    EXPECT_EQ(out.protocol, in.protocol);
    EXPECT_EQ(out.ir_interval_s, in.ir_interval_s);
    EXPECT_EQ(out.item, in.item);
    EXPECT_EQ(out.seq, in.seq);
    EXPECT_EQ(out.sent_at, in.sent_at);
    EXPECT_EQ(out.version, in.version);
    EXPECT_EQ(out.content_time, in.content_time);
    EXPECT_EQ(out.lease_s, in.lease_s);
    EXPECT_EQ(out.valid, in.valid);
    EXPECT_EQ(out.update_time, in.update_time);
    EXPECT_EQ(out.payload_bits, in.payload_bits);
    EXPECT_EQ(out.shed_reason, in.shed_reason);
    EXPECT_EQ(out.report_frame, in.report_frame);
    EXPECT_EQ(out.digest_frame, in.digest_frame);
  }
}

TEST(ServeCodec, NestedReportFrameStaysDecodable) {
  // The kReport envelope carries a report_codec frame verbatim: the nested
  // bytes must still satisfy the inner codec after the round trip.
  const auto bytes = encode_serve(sample(ServeWireKind::kReport));
  ServeMessage out;
  ASSERT_TRUE(decode_serve(bytes, &out));
  DecodedReport inner;
  std::string error;
  ASSERT_TRUE(decode_report(out.report_frame.data(), out.report_frame.size(),
                            &inner, &error))
      << error;
  EXPECT_EQ(inner.kind, ReportWireKind::kFull);
}

TEST(ServeCodecCorruption, EveryTruncationFailsCleanly) {
  for (const auto& bytes : all_samples()) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      ServeMessage out;
      std::string error;
      EXPECT_FALSE(decode_serve(bytes.data(), len, &out, &error))
          << "prefix of " << len << " bytes decoded";
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(ServeCodecCorruption, BadMagicVersionKind) {
  const auto bytes = encode_serve(sample(ServeWireKind::kRequest));
  ServeMessage out;
  std::string error;

  auto corrupted = bytes;
  corrupted[0] = 'X';
  EXPECT_FALSE(decode_serve(corrupted, &out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);

  corrupted = bytes;
  corrupted[2] = kServeCodecVersion + 1;
  EXPECT_FALSE(decode_serve(corrupted, &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos);

  corrupted = bytes;
  corrupted[3] = 200;  // no such ServeWireKind
  EXPECT_FALSE(decode_serve(corrupted, &out, &error));
  EXPECT_NE(error.find("kind"), std::string::npos);
}

TEST(ServeCodecCorruption, TrailingBytesRejected) {
  auto bytes = encode_serve(sample(ServeWireKind::kItem));
  bytes.push_back(0);
  ServeMessage out;
  std::string error;
  EXPECT_FALSE(decode_serve(bytes, &out, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(ServeCodecCorruption, HugeNestedCountRejectedBeforeAllocation) {
  // Hand-build a kReport envelope whose nested-frame byte run claims 2^32-1
  // bytes with nothing behind it: the remaining-bytes cap must reject it
  // before any allocation (the checksum is made valid so the count check is
  // what fires).
  std::vector<std::uint8_t> bytes = {'W', 'S', kServeCodecVersion,
                                     static_cast<std::uint8_t>(
                                         ServeWireKind::kReport)};
  const std::uint32_t huge = 0xffffffffu;
  const auto* p = reinterpret_cast<const std::uint8_t*>(&huge);
  bytes.insert(bytes.end(), p, p + sizeof huge);
  const std::uint32_t sum = wire::fnv1a32(bytes.data(), bytes.size());
  const auto* sp = reinterpret_cast<const std::uint8_t*>(&sum);
  bytes.insert(bytes.end(), sp, sp + sizeof sum);
  ServeMessage out;
  std::string error;
  EXPECT_FALSE(decode_serve(bytes, &out, &error));
  EXPECT_NE(error.find("overruns"), std::string::npos);
}

TEST(ServeCodecCorruption, EverySingleBitFlipIsHandled) {
  for (const auto& bytes : all_samples()) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        auto corrupted = bytes;
        corrupted[i] = static_cast<std::uint8_t>(corrupted[i] ^ (1u << bit));
        ServeMessage out;
        std::string error;
        // Either verdict is acceptable; the requirement is a clean return
        // with a reason on failure.
        if (!decode_serve(corrupted, &out, &error)) {
          EXPECT_FALSE(error.empty());
        }
      }
    }
  }
}

TEST(ServeCodecCorruption, RandomMutationStorm) {
  Rng rng(0x5e4e);
  const auto samples = all_samples();
  for (int round = 0; round < 2000; ++round) {
    auto bytes = samples[rng.uniform_int(samples.size())];
    const std::uint64_t mutations = 1 + rng.uniform_int(8);
    for (std::uint64_t m = 0; m < mutations; ++m)
      bytes[rng.uniform_int(bytes.size())] =
          static_cast<std::uint8_t>(rng.uniform_int(256));
    if (rng.bernoulli(0.3)) bytes.resize(rng.uniform_int(bytes.size() + 1));
    ServeMessage out;
    std::string error;
    if (!decode_serve(bytes.data(), bytes.size(), &out, &error)) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(ServeCodec, KindNames) {
  EXPECT_STREQ(to_string(ServeWireKind::kHello), "HELLO");
  EXPECT_STREQ(to_string(ServeWireKind::kShed), "SHED");
}

}  // namespace
}  // namespace wdc
