#!/bin/sh
# Digest-inertness guard for the serve subsystem: nothing outside src/net,
# tools/, and tests/net may include a net header, and the simulation libraries
# must never link wdc_net. Referenced from src/net/CMakeLists.txt; registered
# as the `net_isolation` ctest (label `serve`).
#
# Usage: check_net_isolation.sh <repo_root>
set -eu

root="${1:?usage: check_net_isolation.sh <repo_root>}"
fail=0

# 1. No `#include "net/...` leaks into the model code.
leaks=$(grep -rn '#include "net/' "$root/src" "$root/tests" \
  --include='*.hpp' --include='*.cpp' 2>/dev/null |
  grep -v "^$root/src/net/" |
  grep -v "^$root/tests/net/" || true)
if [ -n "$leaks" ]; then
  echo "net headers included outside src/net and tests/net:" >&2
  echo "$leaks" >&2
  fail=1
fi

# 2. No simulation-side CMake target links wdc_net (tools/ and tests/ choose
# their own links; src/net itself is of course allowed).
links=$(grep -rn 'wdc_net' "$root/src" --include='CMakeLists.txt' |
  grep -v "^$root/src/net/" |
  grep -v "^$root/src/CMakeLists.txt" || true)
if [ -n "$links" ]; then
  echo "simulation libraries must not link wdc_net:" >&2
  echo "$links" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "net isolation holds: src/net stays outside the simulation link graph"
