#!/bin/sh
# One serve_load_<protocol> ctest: boot wdc_serve on a Unix-domain socket,
# drive it with wdc_load at high concurrency, and require the zero-drop
# verdict (wdc_load exits 1 when any op goes unanswered outside configured
# shedding — the ≥1000-concurrent-connection acceptance contract).
#
# Usage: serve_load.sh <bindir> <protocol>
# Env:   WDC_SERVE_CONNS    concurrent connections   (default 1000)
#        WDC_SERVE_REQUESTS requests per connection  (default 10)
#        WDC_SERVE_SOAK_S   soak seconds; >0 switches wdc_load to duration
#                           mode at this length (default 0 = request-counted)
set -eu

bindir="${1:?usage: serve_load.sh <bindir> <protocol>}"
protocol="${2:?usage: serve_load.sh <bindir> <protocol>}"
conns="${WDC_SERVE_CONNS:-1000}"
requests="${WDC_SERVE_REQUESTS:-10}"
soak_s="${WDC_SERVE_SOAK_S:-0}"

workdir=$(mktemp -d)
sock="$workdir/serve.sock"
server_log="$workdir/server.log"
server_pid=""

cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

# Small items keep the simulated MAC's broadcast airtime from dominating the
# wall clock (the fleet's item fan-out is conns × requests frames either
# way); the generous read/write timeouts tolerate the single-threaded load
# driver draining millions of broadcast frames through one epoll loop — a
# quiet client here is one waiting out the broadcast queue, not a dead one.
"$bindir/wdc_serve" "unix=$sock" "protocol=$protocol" time_scale=50 \
  seed=7 clients=64 traffic_model=off item_bytes=64 \
  read_timeout_s=120 write_timeout_s=120 \
  >"$server_log" 2>&1 &
server_pid=$!

# Wait for the daemon's "listening on" line (it binds before printing).
i=0
while ! grep -q "listening on" "$server_log" 2>/dev/null; do
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "wdc_serve died before binding:" >&2
    cat "$server_log" >&2
    exit 1
  fi
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "wdc_serve never bound $sock" >&2
    exit 1
  fi
  sleep 0.1
done

if [ "$soak_s" -gt 0 ] 2>/dev/null; then
  load_args="duration_s=$soak_s"
else
  load_args="requests=$requests"
fi
if ! "$bindir/wdc_load" "unix=$sock" "conns=$conns" in_flight=1 \
  $load_args seed=11 stall_timeout_s=60; then
  echo "wdc_load failed against protocol=$protocol:" >&2
  cat "$server_log" >&2
  exit 1
fi

kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
# The daemon's exit report must agree: nothing dropped, nothing shed.
if ! grep -q "dropped_answers 0" "$server_log" ||
  ! grep -q "shed: frames 0, connections 0" "$server_log"; then
  echo "wdc_serve dropped or shed answers for protocol=$protocol:" >&2
  cat "$server_log" >&2
  exit 1
fi
echo "protocol=$protocol conns=$conns: zero dropped answers"
