#include "channel/shadowing.hpp"

#include <gtest/gtest.h>

namespace wdc {
namespace {

TEST(Shadowing, DisabledIsZero) {
  Shadowing sh(0.0, 30.0, Rng(1));
  EXPECT_DOUBLE_EQ(sh.gain_db(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sh.gain_db(100.0), 0.0);
}

TEST(Shadowing, StaticWhenNoDecorrelation) {
  Shadowing sh(8.0, 0.0, Rng(2));
  const double v = sh.gain_db(0.0);
  EXPECT_DOUBLE_EQ(sh.gain_db(50.0), v);
  EXPECT_DOUBLE_EQ(sh.gain_db(500.0), v);
}

TEST(Shadowing, StationaryVarianceMatchesSigma) {
  // Sample the OU process at widely spaced times: values ~ N(0, sigma²).
  Shadowing sh(6.0, 1.0, Rng(3));
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 1; i <= n; ++i) {
    const double v = sh.gain_db(static_cast<double>(i) * 20.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.15);
  EXPECT_NEAR(var, 36.0, 2.0);
}

TEST(Shadowing, ShortGapsAreCorrelated) {
  Shadowing sh(6.0, 100.0, Rng(4));
  const double a = sh.gain_db(1.0);
  const double b = sh.gain_db(1.5);  // dt << decorr time
  EXPECT_NEAR(a, b, 3.0);
}

TEST(Shadowing, DifferentSeedsDiffer) {
  Shadowing a(8.0, 0.0, Rng(5));
  Shadowing b(8.0, 0.0, Rng(6));
  EXPECT_NE(a.gain_db(0.0), b.gain_db(0.0));
}

}  // namespace
}  // namespace wdc
