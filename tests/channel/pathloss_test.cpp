#include "channel/pathloss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace wdc {
namespace {

TEST(PathLoss, ReferencePoint) {
  PathLossModel pl{30.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(pl.loss_db(1.0), 30.0);
}

TEST(PathLoss, TenXDistanceAddsTenN) {
  PathLossModel pl{30.0, 1.0, 3.0};
  EXPECT_NEAR(pl.loss_db(10.0), 60.0, 1e-9);
  EXPECT_NEAR(pl.loss_db(100.0), 90.0, 1e-9);
}

TEST(PathLoss, ClampedBelowReference) {
  PathLossModel pl{30.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(pl.loss_db(0.1), 30.0);
}

TEST(PathLoss, MonotoneInDistance) {
  PathLossModel pl{30.0, 1.0, 3.5};
  double prev = 0.0;
  for (double d = 1.0; d < 1000.0; d *= 1.5) {
    const double l = pl.loss_db(d);
    EXPECT_GT(l, prev);
    prev = l;
  }
}

TEST(CellGeometry, DistancesWithinAnnulus) {
  CellGeometry cell{500.0, 10.0};
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double d = cell.sample_distance(rng);
    ASSERT_GE(d, 10.0);
    ASSERT_LE(d, 500.0);
  }
}

TEST(CellGeometry, UniformByArea) {
  // P(d <= r) = (r²−r0²)/(R²−r0²); check the median radius.
  CellGeometry cell{100.0, 0.0};
  Rng rng(2);
  int inside = 0;
  const int n = 100000;
  const double median_r = 100.0 / std::sqrt(2.0);
  for (int i = 0; i < n; ++i)
    if (cell.sample_distance(rng) <= median_r) ++inside;
  EXPECT_NEAR(inside / static_cast<double>(n), 0.5, 0.01);
}

}  // namespace
}  // namespace wdc
