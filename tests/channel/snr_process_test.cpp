#include "channel/snr_process.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wdc {
namespace {

TEST(FixedSnr, Constant) {
  FixedSnr s(12.5);
  EXPECT_DOUBLE_EQ(s.snr_db(0.0), 12.5);
  EXPECT_DOUBLE_EQ(s.snr_db(100.0), 12.5);
  EXPECT_DOUBLE_EQ(s.mean_snr_db(), 12.5);
}

TEST(RayleighSnr, LongRunLinearMeanMatches) {
  Rng rng(1);
  RayleighSnr s(18.0, 15.0, 0.0, 0.0, rng);
  double acc = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i)
    acc += std::pow(10.0, s.snr_db(i * 0.091) / 10.0);
  EXPECT_NEAR(10.0 * std::log10(acc / n), 18.0, 0.6);
  EXPECT_DOUBLE_EQ(s.mean_snr_db(), 18.0);
}

TEST(FadingModelParsing, RoundTrips) {
  for (const auto m : {FadingModel::kNone, FadingModel::kRayleigh,
                       FadingModel::kFsmc, FadingModel::kGilbertElliott})
    EXPECT_EQ(fading_model_from_string(to_string(m)), m);
  EXPECT_THROW(fading_model_from_string("bogus"), std::invalid_argument);
}

TEST(MakeSnrProcess, BuildsEveryModel) {
  Rng rng(2);
  FadingConfig cfg;
  for (const auto m : {FadingModel::kNone, FadingModel::kRayleigh,
                       FadingModel::kFsmc, FadingModel::kGilbertElliott}) {
    cfg.model = m;
    auto p = make_snr_process(cfg, 15.0, rng);
    ASSERT_NE(p, nullptr);
    // All processes must return a finite SNR and remember a plausible mean.
    EXPECT_TRUE(std::isfinite(p->snr_db(1.0)));
    EXPECT_TRUE(std::isfinite(p->mean_snr_db()));
  }
}

TEST(MakeSnrProcess, NoneModelIgnoresFadingParams) {
  Rng rng(3);
  FadingConfig cfg;
  cfg.model = FadingModel::kNone;
  auto p = make_snr_process(cfg, 7.0, rng);
  EXPECT_DOUBLE_EQ(p->snr_db(0.0), 7.0);
  EXPECT_DOUBLE_EQ(p->snr_db(9.0), 7.0);
}

TEST(GilbertElliottSnr, MeanIsStationaryMix) {
  Rng rng(4);
  FadingConfig cfg;
  cfg.model = FadingModel::kGilbertElliott;
  cfg.ge_mean_good_s = 1.0;
  cfg.ge_mean_bad_s = 1.0;
  cfg.ge_bad_snr_db = -10.0;
  auto p = make_snr_process(cfg, 20.0, rng);
  // 50/50 mix of 20 dB (100x) and −10 dB (0.1x) ⇒ ≈ 50.05 linear ⇒ ≈ 17 dB.
  EXPECT_NEAR(p->mean_snr_db(), 10.0 * std::log10(50.05), 0.01);
}

TEST(RayleighSnr, ShadowingShiftsButKeepsFiniteness) {
  Rng rng(5);
  RayleighSnr s(10.0, 5.0, 8.0, 50.0, rng);
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(std::isfinite(s.snr_db(i * 0.5)));
}

}  // namespace
}  // namespace wdc
