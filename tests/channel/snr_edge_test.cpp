/// Edge cases of the block SNR path (fill_snr_db / SnrTrajectory), typed over
/// both fader generations: zero-length blocks are true no-ops (no crash, no
/// state perturbation), single-sample blocks equal the pointwise call, and a
/// block spanning the shadowing decorrelation boundary stays bit-identical
/// to the pointwise loop — the boundary is where the OU shadowing state
/// advances mid-block, the one place a block kernel could drift from the
/// per-sample path.

#include <gtest/gtest.h>

#include <vector>

#include "channel/snr_process.hpp"
#include "util/rng.hpp"

namespace wdc {
namespace {

constexpr double kMeanSnrDb = 18.0;
constexpr double kDopplerHz = 9.0;
constexpr double kShadowSigmaDb = 4.0;
constexpr double kShadowDecorrS = 2.0;  // boundary every 2 s

class SnrBlockEdge : public ::testing::TestWithParam<ChannelVersion> {
 protected:
  /// Twin processes built from identical seeds: mutate one, compare against
  /// the other.
  static RayleighSnr make(std::uint64_t seed, ChannelVersion v) {
    Rng rng(seed);
    return RayleighSnr(kMeanSnrDb, kDopplerHz, kShadowSigmaDb, kShadowDecorrS,
                       rng, /*oscillators=*/16, v);
  }
};

TEST_P(SnrBlockEdge, ZeroLengthBlockIsANoOp) {
  RayleighSnr probed = make(42, GetParam());
  RayleighSnr twin = make(42, GetParam());

  // Must not crash, must not write, must not advance any internal state.
  double canary = 123.5;
  probed.fill_snr_db(0.7, 0.01, 0, &canary);
  probed.fill_snr_db(1.4, 0.01, 0, nullptr);  // count == 0: out is never read
  EXPECT_EQ(canary, 123.5);

  // Identical futures: the zero-length calls consumed nothing.
  for (double t : {1.5, 2.25, 3.0, 7.75})
    EXPECT_EQ(probed.snr_db(t), twin.snr_db(t)) << "diverged at t=" << t;
}

TEST_P(SnrBlockEdge, SingleSampleBlockEqualsPointwiseCall) {
  RayleighSnr block = make(7, GetParam());
  RayleighSnr pointwise = make(7, GetParam());
  double out = 0.0;
  block.fill_snr_db(0.325, 0.01, 1, &out);
  EXPECT_EQ(out, pointwise.snr_db(0.325));
}

TEST_P(SnrBlockEdge, BlockSpanningShadowingDecorrelationBoundary) {
  RayleighSnr block = make(99, GetParam());
  RayleighSnr pointwise = make(99, GetParam());

  // 1.9 .. 2.3 s in 10 ms steps: crosses the 2 s decorrelation boundary where
  // the OU shadowing state advances mid-block.
  const double t0 = 1.9, dt = 0.01;
  const std::size_t count = 41;
  std::vector<double> blocked(count);
  block.fill_snr_db(t0, dt, count, blocked.data());
  for (std::size_t i = 0; i < count; ++i) {
    const double t = t0 + dt * static_cast<double>(i);
    EXPECT_EQ(blocked[i], pointwise.snr_db(t))
        << "block and pointwise paths diverged at sample " << i;
  }
}

TEST_P(SnrBlockEdge, TrajectoryEdgeSizes) {
  {
    RayleighSnr proc = make(11, GetParam());
    const SnrTrajectory empty(proc, 0.5, 0.01, 0);
    EXPECT_EQ(empty.size(), 0u);
    EXPECT_EQ(empty.t0(), 0.5);
    EXPECT_EQ(empty.dt(), 0.01);
  }
  {
    RayleighSnr proc = make(11, GetParam());
    RayleighSnr twin = make(11, GetParam());
    const SnrTrajectory one(proc, 0.5, 0.01, 1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one.time_at(0), 0.5);
    EXPECT_EQ(one.snr_db_at(0), twin.snr_db(0.5));
  }
}

TEST_P(SnrBlockEdge, TrajectorySpanningBoundaryMatchesPointwise) {
  RayleighSnr proc = make(5, GetParam());
  RayleighSnr twin = make(5, GetParam());
  const SnrTrajectory traj(proc, 1.95, 0.025, 8);  // 1.95 .. 2.125 s
  for (std::size_t i = 0; i < traj.size(); ++i)
    EXPECT_EQ(traj.snr_db_at(i), twin.snr_db(traj.time_at(i)));
}

INSTANTIATE_TEST_SUITE_P(BothGenerations, SnrBlockEdge,
                         ::testing::Values(ChannelVersion::kJakesV1,
                                           ChannelVersion::kJakesV2),
                         [](const ::testing::TestParamInfo<ChannelVersion>& i) {
                           return to_string(i.param);
                         });

}  // namespace
}  // namespace wdc
